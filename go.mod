module memdos

go 1.22
