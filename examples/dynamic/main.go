// Dynamic applications (the paper's future work, Section VIII): when a
// workload's demand level shifts drastically between phases, SDS/B's
// single profiled range cannot cover it — the paper proposes correlating
// resource utilization with the cache statistics instead. This example
// runs that extension (SDS/U): profile-free, self-calibrating, and driven
// by the two self-normalizing channels (CPU efficiency and LLC miss
// ratio).
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"memdos"
	"memdos/internal/workload"
)

func main() {
	params := memdos.DefaultParams()

	cfg := memdos.DefaultServerConfig()
	cfg.Seed = 9
	srv, err := memdos.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The dynamic service jumps between demand levels 0.5x, 1.0x and
	// 1.7x for tens of seconds at a time — hopeless for a single
	// profiled normal range.
	victim, err := srv.AddApp("victim", workload.Dynamic())
	if err != nil {
		log.Fatal(err)
	}
	atk, err := memdos.NewLLCCleansingAttack(memdos.AttackWindow{Start: 300, End: 600}, 0.6, 2e6)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := srv.AddAttacker("attacker", atk); err != nil {
		log.Fatal(err)
	}

	// SDS/U needs no profile: it reads the victim's CPU efficiency from
	// the hypervisor and self-calibrates during the first ~30 seconds.
	detector, err := memdos.NewSDSU(victim.LastSpeed, params)
	if err != nil {
		log.Fatal(err)
	}

	var firstAlarm, falseAlarms float64 = -1, 0
	decisions := 0
	srv.RunUntil(600, func(step memdos.ServerStep) {
		sample, ok := step.Samples[victim.ID()]
		if !ok {
			return
		}
		for _, d := range detector.Push(sample) {
			decisions++
			if d.Alarm && d.Time < 300 {
				falseAlarms++
			}
			if d.Alarm && d.Time >= 300 && firstAlarm < 0 {
				firstAlarm = d.Time
			}
		}
	})

	floor, ceil := detector.Thresholds()
	fmt.Printf("self-calibrated thresholds: CPU efficiency floor %.2f, miss-ratio ceiling %.3f\n", floor, ceil)
	fmt.Printf("pre-attack false alarms: %.0f of %d decisions\n", falseAlarms, decisions)
	if firstAlarm < 0 {
		fmt.Println("attack was NOT detected")
		return
	}
	fmt.Printf("LLC cleansing started at t=300s; SDS/U alarm at t=%.1fs (delay %.1fs)\n",
		firstAlarm, firstAlarm-300)
}
