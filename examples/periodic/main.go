// Periodic-application detection: FaceNet repeats identical per-batch
// computations, so its LLC access pattern is periodic. Memory DoS attacks
// slow the victim down and stretch that period (the paper's Observation 2)
// — SDS/P detects exactly this, independently of SDS/B's level bounds.
//
//	go run ./examples/periodic
package main

import (
	"fmt"
	"log"

	"memdos"
)

func main() {
	params := memdos.DefaultParams()

	profile, err := memdos.ProfileApplication("FN", 300, params)
	if err != nil {
		log.Fatal(err)
	}
	if !profile.Periodic {
		log.Fatalf("FaceNet not profiled as periodic: %+v", profile)
	}
	maSeconds := float64(params.DW) * params.TPCM
	fmt.Printf("FaceNet profiled period: %.1f MA windows (%.1f s per batch)\n",
		profile.Period, profile.Period*maSeconds)

	cfg := memdos.DefaultServerConfig()
	cfg.Seed = 7
	srv, err := memdos.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	appSpec, err := memdos.WorkloadByAbbrev("FN")
	if err != nil {
		log.Fatal(err)
	}
	victim, err := srv.AddApp("victim", appSpec.Service())
	if err != nil {
		log.Fatal(err)
	}
	// This time the attacker cleanses the LLC rather than locking the bus.
	atk, err := memdos.NewLLCCleansingAttack(memdos.AttackWindow{Start: 150, End: 360}, 0.6, 2e6)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := srv.AddAttacker("attacker", atk); err != nil {
		log.Fatal(err)
	}

	detector, err := memdos.NewSDSP(profile, params)
	if err != nil {
		log.Fatal(err)
	}
	var firstAlarm float64 = -1
	lastReport := 0.0
	srv.RunUntil(360, func(step memdos.ServerStep) {
		sample, ok := step.Samples[victim.ID()]
		if !ok {
			return
		}
		for _, d := range detector.Push(sample) {
			if d.Time-lastReport >= 30 {
				lastReport = d.Time
				fmt.Printf("t=%5.1fs  measured period: %5.1f MA windows (normal %.1f)\n",
					d.Time, detector.LastPeriod(), profile.Period)
			}
			if d.Alarm && firstAlarm < 0 {
				firstAlarm = d.Time
			}
		}
	})

	if firstAlarm < 0 {
		fmt.Println("attack was NOT detected")
		return
	}
	fmt.Printf("LLC cleansing started at t=150s; SDS/P alarm at t=%.1fs (delay %.1fs)\n",
		firstAlarm, firstAlarm-150)
}
