// Adaptive attacks (the paper's Scenario 2): the attacker toggles the
// attack on and off for random 10-50 s stretches to evade detection. This
// example compares how SDS and the KStest baseline cope, using the
// experiment harness directly.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"memdos"
)

func main() {
	params := memdos.DefaultParams()

	spec := memdos.DefaultRunSpec("TS", memdos.BusLock, 11)
	spec.Adaptive = true // Scenario 2 on/off schedule

	// Each scheme gets its own run (as in the paper — they are
	// alternative deployments, and KStest's execution throttling would
	// otherwise perturb SDS's sample stream). The seed fixes the
	// workload and attack schedule, so the runs are comparable.
	factories := map[string]memdos.DetectorFactory{
		"SDS":    memdos.SDSDetectorFactory,
		"KStest": memdos.KSDetectorFactory,
	}
	printedSchedule := false
	for _, name := range []string{"SDS", "KStest"} {
		res, err := memdos.RunExperiment(spec, params, map[string]memdos.DetectorFactory{name: factories[name]})
		if err != nil {
			log.Fatal(err)
		}
		if !printedSchedule {
			printedSchedule = true
			fmt.Printf("adaptive schedule produced %d attack bursts over %vs:\n", len(res.Truth), spec.Duration)
			for _, iv := range res.Truth {
				fmt.Printf("  attack on  [%6.1f, %6.1f)  (%.0fs)\n", iv.Start, iv.End, iv.End-iv.Start)
			}
		}
		a := memdos.ScoreRun(res, name, 5)
		fmt.Printf("%-7s recall %.3f  specificity %.3f  mean delay %.1fs\n",
			name, a.Recall, a.Specificity, a.MeanDelay)
	}
	fmt.Println("\nshort bursts routinely evade the statistical schemes —")
	fmt.Println("run ./examples/dnntrain to see the DNN detector handle them.")
}
