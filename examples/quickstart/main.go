// Quickstart: build the simulated testbed, profile an application, launch
// a bus locking attack, and detect it with SDS.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"memdos"
)

func main() {
	params := memdos.DefaultParams()

	// 1. Profile k-means while it is known to be safe (right after VM
	// start, before an adversary can co-locate).
	profile, err := memdos.ProfileApplication("KM", 300, params)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := profile.AccessBounds(params.K)
	fmt.Printf("profiled k-means: AccessNum EWMA normal range [%.0f, %.0f]\n", lo, hi)

	// 2. Build the testbed: victim + attacker + benign neighbours on one
	// simulated server.
	cfg := memdos.DefaultServerConfig()
	cfg.Seed = 42
	srv, err := memdos.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	appSpec, err := memdos.WorkloadByAbbrev("KM")
	if err != nil {
		log.Fatal(err)
	}
	victim, err := srv.AddApp("victim", appSpec.Service())
	if err != nil {
		log.Fatal(err)
	}
	atk, err := memdos.NewBusLockAttack(memdos.AttackWindow{Start: 120, End: 300}, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := srv.AddAttacker("attacker", atk); err != nil {
		log.Fatal(err)
	}

	// 3. Attach the SDS detector and stream the victim's PCM samples
	// through it while the simulation runs.
	detector, err := memdos.NewSDS(profile, params)
	if err != nil {
		log.Fatal(err)
	}
	var firstAlarm float64 = -1
	srv.RunUntil(300, func(step memdos.ServerStep) {
		sample, ok := step.Samples[victim.ID()]
		if !ok {
			return
		}
		for _, d := range detector.Push(sample) {
			if d.Alarm && firstAlarm < 0 {
				firstAlarm = d.Time
			}
		}
	})

	if firstAlarm < 0 {
		fmt.Println("attack was NOT detected")
		return
	}
	fmt.Printf("bus locking attack started at t=120s\n")
	fmt.Printf("SDS raised the alarm at t=%.1fs (detection delay %.1fs)\n",
		firstAlarm, firstAlarm-120)
}
