// DNN detection end to end: generate a labelled training corpus from the
// simulated testbed, train the cascaded LSTM-FCN classifiers (Section V of
// the paper) with the from-scratch deep-learning stack, then deploy the
// trained cascade as a live detector against an adaptive attacker.
//
// Training is CPU-only and takes a minute or two with the compact
// architecture (see DESIGN.md for the scale substitution).
//
//	go run ./examples/dnntrain
package main

import (
	"fmt"
	"log"

	"memdos"
	"memdos/internal/experiments"
)

func main() {
	// 1. Train a compact cascade on three applications.
	spec := experiments.DefaultTrainingSpec()
	spec.Apps = []string{"KM", "BA", "TS"}
	spec.RunSeconds = 90
	spec.Train.Epochs = 10
	spec.Train.Verbose = func(line string) { fmt.Println("  " + line) }

	samples, err := experiments.GenerateCascadeSamples(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d labelled windows (%d apps x 3 attack states)\n",
		len(samples), len(spec.Apps))
	fmt.Println("training cascade (app classifier, then attack classifier)...")
	cascade, err := experiments.TrainCascade(spec)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Deploy it against an adaptive bus-locking attacker on k-means.
	params := memdos.DefaultParams()
	run := memdos.DefaultRunSpec("KM", memdos.BusLock, 23)
	run.Adaptive = true
	factory := func(env *memdos.ExperimentEnv) (memdos.Detector, error) {
		return memdos.NewDNNDetector(cascade, env.Params)
	}
	res, err := memdos.RunExperiment(run, params, map[string]memdos.DetectorFactory{"DNN": factory})
	if err != nil {
		log.Fatal(err)
	}
	a := memdos.ScoreRun(res, "DNN", 5)
	fmt.Printf("\nadaptive Scenario 2 on k-means (%d attack bursts):\n", len(res.Truth))
	fmt.Printf("DNN recall %.3f  specificity %.3f  mean delay %.1fs\n",
		a.Recall, a.Specificity, a.MeanDelay)
	fmt.Println("\ncompare with ./examples/adaptive, where SDS and KStest face the same schedule.")
}
