// Command memdos-vet runs the project's custom static-analysis suite
// (internal/analysis) over Go packages and fails the build on findings.
//
// Usage:
//
//	memdos-vet [-checks list] [-format text|json|sarif] [-v] [packages...]
//
// With no package arguments it analyzes ./.... Exit status is 0 when no
// active findings remain, 1 on findings, 2 on usage or load errors — and
// on stale suppressions: a //memdos:ignore comment that no longer
// suppresses any finding is a contract hole, reported under the
// staleignore pseudo-check. Findings are suppressed, with a
// justification, by a comment on the flagged line or the line above it:
//
//	//memdos:ignore <check>[,<check>...] <why this is safe>
//
// -format json emits the memdos-vet/v1 report; -format sarif emits SARIF
// 2.1.0 for GitHub code-scanning annotations. -json is kept as an alias
// for -format json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"memdos/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("memdos-vet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit a memdos-vet/v1 JSON report (alias for -format json)")
	format := fs.String("format", "text", "output format: text, json or sarif")
	checksFlag := fs.String("checks", "", "comma-separated check names to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	verbose := fs.Bool("v", false, "also print suppressed findings")
	fs.Parse(os.Args[1:])
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "memdos-vet: unknown -format %q (valid: text, json, sarif)\n", *format)
		return 2
	}

	if *list {
		// Listing ignores -checks so a typo there cannot hide the very
		// names the user is trying to discover.
		for _, c := range analysis.Checkers() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	checks, err := analysis.Select(*checksFlag)
	if err != nil {
		// The error names the valid checkers; never fall through to an
		// empty run that would report a meaningless success.
		fmt.Fprintln(os.Stderr, "memdos-vet:", err)
		fmt.Fprintln(os.Stderr, "memdos-vet: run with -list to see every check and its description")
		return 2
	}

	pkgs, err := analysis.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res := analysis.Run(pkgs, checks)
	relativize(res.Findings)
	relativize(res.Suppressed)
	relativize(res.Stale)

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis.NewReport(pkgs, checks, res)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	case "sarif":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis.NewSARIF(checks, res)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	default:
		for _, d := range res.Findings {
			fmt.Println(d)
		}
		for _, d := range res.Stale {
			fmt.Println(d)
		}
		if *verbose {
			for _, d := range res.Suppressed {
				fmt.Printf("%s (suppressed)\n", d)
			}
		}
		if len(res.Findings) == 0 && len(res.Stale) == 0 {
			fmt.Printf("memdos-vet: %d packages clean (%d findings suppressed with justification)\n",
				len(pkgs), len(res.Suppressed))
		}
	}
	switch {
	case len(res.Stale) > 0:
		// Stale suppressions outrank findings: they mean the suppression
		// ledger itself is wrong, which is a configuration-class error.
		return 2
	case len(res.Findings) > 0:
		return 1
	}
	return 0
}

// relativize rewrites absolute file paths relative to the working
// directory so output is stable across machines and clickable locally.
func relativize(ds []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i, d := range ds {
		if rel, err := filepath.Rel(wd, d.File); err == nil && !filepath.IsAbs(rel) {
			ds[i].File = rel
		}
	}
}
