// Command memdos-vet runs the project's custom static-analysis suite
// (internal/analysis) over Go packages and fails the build on findings.
//
// Usage:
//
//	memdos-vet [-checks list] [-json] [-v] [packages...]
//
// With no package arguments it analyzes ./.... Exit status is 0 when no
// active findings remain, 1 on findings, 2 on usage or load errors.
// Findings are suppressed, with a justification, by a comment on the
// flagged line or the line above it:
//
//	//memdos:ignore <check>[,<check>...] <why this is safe>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"memdos/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("memdos-vet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit a memdos-vet/v1 JSON report instead of text")
	checksFlag := fs.String("checks", "", "comma-separated check names to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	verbose := fs.Bool("v", false, "also print suppressed findings")
	fs.Parse(os.Args[1:])

	checks, err := analysis.Select(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *list {
		for _, c := range checks {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	pkgs, err := analysis.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res := analysis.Run(pkgs, checks)
	relativize(res.Findings)
	relativize(res.Suppressed)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(analysis.NewReport(pkgs, checks, res)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range res.Findings {
			fmt.Println(d)
		}
		if *verbose {
			for _, d := range res.Suppressed {
				fmt.Printf("%s (suppressed)\n", d)
			}
		}
		if len(res.Findings) == 0 {
			fmt.Printf("memdos-vet: %d packages clean (%d findings suppressed with justification)\n",
				len(pkgs), len(res.Suppressed))
		}
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// relativize rewrites absolute file paths relative to the working
// directory so output is stable across machines and clickable locally.
func relativize(ds []analysis.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i, d := range ds {
		if rel, err := filepath.Rel(wd, d.File); err == nil && !filepath.IsAbs(rel) {
			ds[i].File = rel
		}
	}
}
