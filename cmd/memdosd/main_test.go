package main

import (
	"strings"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-policy", "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if err := run([]string{"-apps", "NOPE", "-policy", "drop"}); err == nil ||
		!strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("bogus app: %v", err)
	}
}
