// Command memdosd is the always-on memory-DoS detection daemon: the
// serving layer the paper assumes runs on every hypervisor. It exposes
// the multi-tenant streaming hub (internal/stream) over HTTP — PCM
// sample producers POST batches to /v1/ingest, operators inspect
// per-VM detector state and incidents under /v1/sessions, and the hub
// counters are scraped from /metrics. High-rate producers stream
// length-prefixed binary frames to /v1/ingest/stream instead of JSON
// (see memdos loadgen for the harness that measures both).
//
// Usage:
//
//	memdosd [-addr :9464] [-apps KM,FN] [-profile-dur 120]
//	        [-shards 0] [-queue 4096] [-policy drop|block] [-merge-gap 2]
//	        [-respond] [-respond-tick 1s]
//	        [-score-model cascade.bin] [-score-window 0] [-score-stride 0]
//	        [-score-batch 64] [-score-queue 1024] [-score-int8] [-score-workers 0]
//
// With -score-model the daemon loads a saved LSTM-FCN cascade and runs
// it as a batched scoring service: shard goroutines assemble per-session
// sliding counter windows, a scorer goroutine classifies them in fused
// batches, and the latest verdict appears as "cascade" in the
// /v1/sessions views next to the detector state. -score-int8 trades a
// little accuracy for quantized conv/dense kernels; memdos_dnn_* metrics
// track throughput, batch fill, queue depth and sheds.
//
// With -respond the daemon attaches a closed-loop mitigation engine
// (internal/respond) to the hub's alarm feed: alarm raises walk the
// suspect VM up a graduated throttle/partition/migrate ladder, clears
// back off with hysteresis. Stand-alone the engine drives a recording
// actuator — would-be actions are inspectable under GET /v1/responses
// and adjustable via POST /v1/responses/{vm}/override
// ({"mode":"pause"|"resume"|"force","level":N}); embedders wire a real
// hypervisor through respond.Actuator.
//
// Detector profiles available to sessions:
//
//	raw         profile-free naive threshold detector (no setup cost)
//	sdsb:<APP>  SDS/B with <APP>'s attack-free profile
//	sds:<APP>   combined SDS with <APP>'s attack-free profile
//
// The per-application profiles are built at startup by running the named
// workloads attack-free on the simulation substrate for -profile-dur
// simulated seconds — the paper's "profile right after the VM starts,
// before an adversary can co-locate" assumption.
//
// Shutdown (SIGINT/SIGTERM) is graceful: the listener stops accepting,
// in-flight requests finish, queued samples drain through the detectors,
// and the final per-session incident logs are printed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"memdos/internal/core"
	"memdos/internal/daemon"
	"memdos/internal/dnn"
	"memdos/internal/experiments"
	"memdos/internal/respond"
	"memdos/internal/stream"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memdosd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("memdosd", flag.ContinueOnError)
	addr := fs.String("addr", ":9464", "listen address")
	apps := fs.String("apps", "KM", "comma-separated Table II apps to pre-profile ('' for none)")
	profileDur := fs.Float64("profile-dur", 120, "attack-free profiling duration per app (simulated seconds)")
	shards := fs.Int("shards", 0, "worker shards (0 = one per CPU)")
	queue := fs.Int("queue", 4096, "per-session queue capacity in samples")
	policy := fs.String("policy", "drop", "full-queue policy: drop | block")
	mergeGap := fs.Float64("merge-gap", 2, "merge incident episodes separated by <= this many seconds")
	respondOn := fs.Bool("respond", false, "attach the closed-loop mitigation engine to the alarm feed")
	respondTick := fs.Duration("respond-tick", time.Second, "hysteresis tick interval for the mitigation engine")
	scoreModel := fs.String("score-model", "", "saved dnn cascade to attach as the batched scoring service ('' disables)")
	scoreWindow := fs.Int("score-window", 0, "cascade window length in samples (0 = the model's training window)")
	scoreStride := fs.Int("score-stride", 0, "samples between consecutive windows (0 = window, non-overlapping)")
	scoreBatch := fs.Int("score-batch", 0, "max windows fused per scorer call (0 = 64)")
	scoreQueue := fs.Int("score-queue", 0, "scoring queue capacity in windows (0 = 1024)")
	scoreInt8 := fs.Bool("score-int8", false, "quantize the cascade's conv/dense GEMMs to int8")
	scoreWorkers := fs.Int("score-workers", 0, "kernel worker goroutines for batched inference (0 = leave default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := stream.DefaultConfig()
	cfg.Shards = *shards
	cfg.QueueCap = *queue
	cfg.MergeGap = *mergeGap
	switch *policy {
	case "drop":
		cfg.Policy = stream.DropNewest
	case "block":
		cfg.Policy = stream.Block
	default:
		return fmt.Errorf("unknown -policy %q (want drop or block)", *policy)
	}

	hub := stream.NewHub(cfg)
	if err := registerProfiles(hub, splitApps(*apps), *profileDur); err != nil {
		return err
	}

	if *scoreModel != "" {
		if *scoreWorkers > 0 {
			dnn.SetKernelWorkers(*scoreWorkers)
		}
		cs, err := daemon.LoadCascadeScorer(*scoreModel, *scoreWindow, dnn.ScorerOptions{Int8: *scoreInt8})
		if err != nil {
			return err
		}
		scfg := stream.ScorerConfig{Stride: *scoreStride, Batch: *scoreBatch, QueueCap: *scoreQueue}
		if err := hub.AttachScorer(cs, scfg); err != nil {
			return err
		}
		fmt.Printf("memdosd: batched cascade scoring on (window %d, int8 %v)\n", cs.Window(), *scoreInt8)
	}

	var eng *respond.Engine
	if *respondOn {
		var err error
		if eng, err = respond.New(respond.DefaultConfig(), respond.NewLogActuator()); err != nil {
			return err
		}
		detach := respond.Attach(hub, eng, 256)
		defer detach()
		stopTicker := tickFromDecisions(hub, eng, *respondTick)
		defer stopTicker()
	}

	srv := &http.Server{Addr: *addr, Handler: daemon.New(hub, eng)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("memdosd: listening on %s (profiles: %s)\n", *addr, strings.Join(hub.Profiles(), ", "))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		hub.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Println("memdosd: shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	hub.Close() // drains queues, seals incident logs
	for _, in := range hub.Sessions() {
		fmt.Printf("memdosd: session %s (%s): %d samples, %d decisions, %d incidents\n",
			in.ID, in.Detector, in.Ingested, in.Decisions, len(in.Incidents))
	}
	st := hub.Stats()
	fmt.Printf("memdosd: bye (%d samples ingested, %d dropped, %d alarms raised)\n",
		st.SamplesIngested, st.SamplesDropped, st.AlarmsRaised)
	return nil
}

// tickFromDecisions periodically advances the mitigation engine's clock
// to the newest decision timestamp seen on the hub, so hysteresis
// back-off progresses even while the alarm feed is quiet (alarm events
// only fire on transitions). The engine stays in sample time — the
// daemon never feeds it the wall clock.
func tickFromDecisions(hub *stream.Hub, eng *respond.Engine, every time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				latest := eng.Now()
				for _, in := range hub.Sessions() {
					if in.LastDecision != nil && in.LastDecision.Time > latest {
						latest = in.LastDecision.Time
					}
				}
				eng.Tick(latest)
			}
		}
	}()
	return func() { close(done) }
}

func splitApps(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// registerProfiles installs the daemon's detector profiles: the
// profile-free "raw" fallback plus per-application SDS pipelines built
// from attack-free profiling runs.
func registerProfiles(hub *stream.Hub, apps []string, profileDur float64) error {
	if err := hub.RegisterProfile("raw", func() (core.Detector, error) {
		return core.NewRawThreshold(0.5)
	}); err != nil {
		return err
	}
	params := core.DefaultParams()
	for _, app := range apps {
		prof, err := experiments.ProfileApp(app, profileDur, params)
		if err != nil {
			return fmt.Errorf("profiling %s: %w", app, err)
		}
		if err := hub.RegisterProfile("sdsb:"+app, func() (core.Detector, error) {
			return core.NewSDSB(prof, params)
		}); err != nil {
			return err
		}
		if err := hub.RegisterProfile("sds:"+app, func() (core.Detector, error) {
			return core.NewSDS(prof, params)
		}); err != nil {
			return err
		}
	}
	return nil
}
