package main

import (
	"flag"
	"fmt"
	"math"
	"strconv"
	"strings"

	"memdos/internal/experiments"
)

// cmdMemBW runs the DRAM bandwidth study: detector scoring against the
// streaming hog on the requested topologies, then the closed loop with
// the membw-limit rung enabled.
func cmdMemBW(args []string) error {
	fs := flag.NewFlagSet("membw", flag.ExitOnError)
	app := fs.String("app", "KM", "victim application abbreviation")
	sockets := fs.String("sockets", "1,2", "comma-separated socket counts to run")
	dur := fs.Float64("dur", experiments.Scenario1Duration, "detection run duration (s); attack starts at the midpoint")
	seeds := fs.Int("seeds", 1, "seeds per cell")
	budget := fs.Float64("budget", experiments.MemBWBudget, "membw-limit rung budget (bytes/s)")
	withDNN := fs.Bool("dnn", false, "include the DNN detector (slow: trains first)")
	fs.Parse(args)

	spec := experiments.DefaultBandwidthSpec(*app)
	spec.Seeds = seedList(*seeds)
	spec.Duration = *dur
	spec.Budget = *budget
	spec.WithDNN = *withDNN
	spec.Sockets = spec.Sockets[:0]
	for _, part := range strings.Split(*sockets, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad socket count %q: %v", part, err)
		}
		spec.Sockets = append(spec.Sockets, n)
	}

	res, err := experiments.BandwidthStudy(spec)
	if err != nil {
		return err
	}
	fmt.Printf("DRAM bandwidth-hog study on %s (attack: sequential stream, %.0f GB/s requested):\n\n",
		res.App, experiments.MemBWBytesPerSec/1e9)
	fmt.Printf("detection (recall / specificity / delay):\n")
	fmt.Printf("  %-9s %-8s %-10s %8s %12s %9s\n", "TOPOLOGY", "PLACE", "DETECTOR", "RECALL", "SPECIFICITY", "DELAY")
	for _, c := range res.Cells {
		place := "local"
		if c.Remote {
			place = "remote"
		}
		fmt.Printf("  %-9s %-8s %-10s %8s %12s %9s\n",
			fmt.Sprintf("%d-socket", c.Sockets), place, c.Detector,
			fmtScore(c.Recall), fmtScore(c.Specificity), fmtDelay(c.Delay))
	}
	fmt.Printf("\nclosed loop (SDS -> respond engine, membw-limit rung at %.1f GB/s):\n", spec.Budget/1e9)
	fmt.Printf("  %-9s %-8s %-22s %9s %10s %10s %6s %6s\n",
		"TOPOLOGY", "PLACE", "LADDER", "ATTACKED", "MITIGATED", "RECOVERED", "PEAK", "MEMBW")
	for _, l := range res.Loops {
		place := "local"
		if l.Remote {
			place = "remote"
		}
		for _, v := range []struct {
			name string
			lp   *experiments.ClosedLoopResult
		}{
			{"full (with migration)", l.Full},
			{"contained, membw rung", l.Contained},
			{"contained, throttles", l.ThrottleOnly},
		} {
			fmt.Printf("  %-9s %-8s %-22s %9.2f %10.2f %9.0f%% %6d %6d\n",
				fmt.Sprintf("%d-socket", l.Sockets), place, v.name,
				v.lp.AttackedNormalized, v.lp.MitigatedNormalized,
				100*v.lp.Recovered, v.lp.PeakLevel, v.lp.Stats.BandwidthLimits)
		}
	}
	return nil
}

// fmtScore renders a possibly-NaN [0,1] score.
func fmtScore(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// fmtDelay renders a possibly-NaN detection delay.
func fmtDelay(v float64) string {
	if math.IsNaN(v) {
		return "never"
	}
	return fmt.Sprintf("%.1fs", v)
}
