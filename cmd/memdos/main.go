// Command memdos regenerates the paper's tables and figures from the
// simulation substrate. Each subcommand corresponds to one experiment; see
// DESIGN.md for the experiment index.
//
// Usage:
//
//	memdos [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-parallel N] <command> [args]
//
//	memdos apps
//	memdos trace    -app KM -attack buslock [-out trace.csv]
//	memdos detect   -app KM -attack buslock [-detector SDS] [-adaptive]
//	memdos fig1     [-dur 600] [-seeds 3]
//	memdos fig7
//	memdos fig8
//	memdos compare  [-attack buslock] [-scenario 1] [-apps KM,TS] [-dnn] [-seeds 2]
//	memdos overhead [-apps KM,BA]
//	memdos sweep    -param alpha|k|w|dw|wp|dwp|dnnw|dnndw [-app KM] [-seeds 1]
//	memdos train    [-apps KM,BA,TS] [-epochs 10]
//	memdos ablation -which raw|period|microsim
//	memdos migration [-app KM] [-delay 60]
//	memdos mitigate [-app KM] [-attack buslock] [-seed 7]
//	memdos membw    [-app KM] [-sockets 1,2] [-dur 600] [-budget 2e9] [-dnn]
//	memdos bench    [-quick] [-out BENCH.json] [-baseline BENCH_baseline.json]
//	memdos loadgen  [-addr URL] [-sessions 4] [-batch 256] [-dur 2s]
//	                [-codec json|binary|both] [-rate 0] [-min-ratio 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"memdos"
	"memdos/internal/core"
	"memdos/internal/dnn"
	"memdos/internal/experiments"
	"memdos/internal/trace"
	"memdos/internal/workload"
)

func main() {
	os.Exit(run())
}

// run parses the global profiling flags, dispatches the subcommand, and
// returns the exit code. It exists so the profile-writing defers run before
// the process exits (os.Exit in main would skip them).
func run() int {
	global := flag.NewFlagSet("memdos", flag.ExitOnError)
	global.Usage = usage
	cpuProfile := global.String("cpuprofile", "", "write a CPU profile of the subcommand to this file")
	memProfile := global.String("memprofile", "", "write a heap profile to this file when the subcommand finishes")
	parallel := global.Int("parallel", 0, "worker count for experiment sweeps (0 = all CPUs, 1 = serial)")
	global.Parse(os.Args[1:])
	if global.NArg() < 1 {
		usage()
		return 2
	}
	cmd, args := global.Arg(0), global.Args()[1:]
	experiments.SetParallelism(*parallel)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memdos: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memdos: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memdos: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memdos: %v\n", err)
			}
		}()
	}

	err := dispatch(cmd, args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memdos %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

func dispatch(cmd string, args []string) error {
	var err error
	switch cmd {
	case "apps":
		err = cmdApps()
	case "trace":
		err = cmdTrace(args)
	case "detect":
		err = cmdDetect(args)
	case "fig1":
		err = cmdFig1(args)
	case "fig7":
		err = cmdFig7()
	case "fig8":
		err = cmdFig8()
	case "compare":
		err = cmdCompare(args)
	case "overhead":
		err = cmdOverhead(args)
	case "sweep":
		err = cmdSweep(args)
	case "train":
		err = cmdTrain(args)
	case "ablation":
		err = cmdAblation(args)
	case "migration":
		err = cmdMigration(args)
	case "cluster":
		err = cmdCluster(args)
	case "mitigate":
		err = cmdMitigate(args)
	case "membw":
		err = cmdMemBW(args)
	case "containers":
		err = cmdContainers(args)
	case "report":
		err = cmdReport(args)
	case "bench":
		err = cmdBench(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "memdos: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	return err
}

func usage() {
	fmt.Fprintln(os.Stderr, `memdos — memory DoS attack & detection reproduction

commands:
  apps       list the application models (Table II)
  trace      120s counter trace with attack at 60s (Figs. 2-6)
  detect     run one scenario with one detector; print incidents
  fig1       KStest false positives with no attack (Fig. 1, Sec. III-B)
  fig7       SDS/B detection example on k-means (Fig. 7)
  fig8       SDS/P detection example on FaceNet (Fig. 8)
  compare    detector comparison, Scenario 1 or 2 (Figs. 11-13, 15-16)
  overhead   normalized execution times (Fig. 14)
  sweep      parameter sensitivity (Figs. 17-24)
  train      train the LSTM-FCN cascade and report accuracy
  ablation   design-choice ablations (raw threshold / period / microsim)
  migration  detect-and-migrate response study (why migration alone fails)
  cluster    datacenter placement x scheduling study with real VM migration
  mitigate   closed-loop mitigation study (stream alarms -> respond engine)
  membw      DRAM bandwidth-hog study on 1- and 2-socket NUMA topologies
  containers serverless/container future-work study (Sec. VIII)
  report     run the core experiment set, emit a markdown report
  bench      performance benchmarks, machine-readable JSON output
  loadgen    drive a memdosd daemon at fleet ingest rates (JSON vs binary)

global flags (before the command):
  -cpuprofile FILE   write a CPU profile of the subcommand
  -memprofile FILE   write a heap profile when the subcommand finishes
  -parallel N        worker count for experiment sweeps (0 = all CPUs, 1 = serial)`)
}

func parseMode(s string) (experiments.AttackMode, error) {
	switch s {
	case "buslock", "lock":
		return experiments.BusLock, nil
	case "cleansing", "llc":
		return experiments.Cleansing, nil
	case "membw", "dram":
		return experiments.MemBW, nil
	case "none":
		return experiments.NoAttack, nil
	default:
		return 0, fmt.Errorf("unknown attack %q (buslock|cleansing|membw|none)", s)
	}
}

func seedList(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

func cmdApps() error {
	fmt.Printf("%-8s %-32s %-9s %s\n", "ABBREV", "NAME", "PERIODIC", "NOMINAL RUNTIME")
	for _, s := range workload.All() {
		period := "-"
		if s.Periodic {
			period = fmt.Sprintf("%.1fs", s.PeriodSec)
		}
		fmt.Printf("%-8s %-32s %-9s %.0fs\n", s.Abbrev, s.Name, period, s.WorkSeconds)
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	app := fs.String("app", "KM", "application abbreviation")
	atk := fs.String("attack", "buslock", "attack kind (buslock|cleansing)")
	out := fs.String("out", "", "optional CSV output path")
	seed := fs.Uint64("seed", 1, "run seed")
	fs.Parse(args)
	mode, err := parseMode(*atk)
	if err != nil {
		return err
	}
	tr, err := experiments.MeasurementTrace(*app, mode, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("%s under %v: attacked channel mean %.0f -> %.0f (%.2fx)\n",
		tr.App, tr.Mode, tr.BeforeMean, tr.DuringMean, tr.DuringMean/tr.BeforeMean)
	if tr.CleanPeriod > 0 {
		fmt.Printf("period: %.1f -> %.1f MA windows\n", tr.CleanPeriod, tr.AttackedPeriod)
	}
	fmt.Printf("AccessNum  %s\n", trace.Sparkline(tr.Access, 80))
	fmt.Printf("MissNum    %s\n", trace.Sparkline(tr.Miss, 80))
	fmt.Println("            (attack starts at the midpoint)")
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, tr.Access, tr.Miss); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	app := fs.String("app", "KM", "application abbreviation")
	atk := fs.String("attack", "buslock", "attack kind (buslock|cleansing|none)")
	detName := fs.String("detector", "SDS", "SDS|KStest")
	adaptive := fs.Bool("adaptive", false, "use the Scenario 2 on/off schedule")
	seed := fs.Uint64("seed", 1, "run seed")
	fs.Parse(args)
	mode, err := parseMode(*atk)
	if err != nil {
		return err
	}
	var factory experiments.DetectorFactory
	switch *detName {
	case "SDS":
		factory = experiments.SDSFactory
	case "KStest":
		factory = experiments.KSFactory
	default:
		return fmt.Errorf("unknown detector %q (SDS|KStest; DNN via compare -dnn)", *detName)
	}
	spec := experiments.DefaultRunSpec(*app, mode, *seed)
	spec.Adaptive = *adaptive
	res, err := experiments.Run(spec, core.DefaultParams(), map[string]experiments.DetectorFactory{*detName: factory})
	if err != nil {
		return err
	}
	fmt.Printf("AccessNum  %s\n", trace.Sparkline(res.Access, 80))
	fmt.Printf("MissNum    %s\n", trace.Sparkline(res.Miss, 80))
	for _, iv := range res.Truth {
		fmt.Printf("attack on  [%6.1f, %6.1f)\n", iv.Start, iv.End)
	}
	incidents, err := core.Incidents(res.Decisions[*detName])
	if err != nil {
		return err
	}
	incidents = core.MergeIncidents(incidents, 10)
	if len(incidents) == 0 {
		fmt.Println("no alarms raised")
		return nil
	}
	fmt.Printf("%s incidents (gaps <= 10s merged):\n", *detName)
	for _, in := range incidents {
		fmt.Printf("  %v (%.0fs)\n", in, in.Duration())
	}
	a := experiments.Score(res, *detName, 30)
	fmt.Printf("recall %.3f  specificity %.3f  mean delay %.1fs\n", a.Recall, a.Specificity, a.MeanDelay)
	return nil
}

func cmdFig1(args []string) error {
	fs := flag.NewFlagSet("fig1", flag.ExitOnError)
	dur := fs.Float64("dur", 600, "run duration per app (s)")
	seeds := fs.Int("seeds", 3, "number of seeds")
	fs.Parse(args)
	res, err := experiments.Fig1KStestFalsePositives(*dur, seedList(*seeds))
	if err != nil {
		return err
	}
	fmt.Println("KStest false-alarm rate per L_R interval, no attack (paper Sec. III-B):")
	for _, r := range res.Rows {
		fmt.Printf("  %-6s %5.1f%%\n", r.App, 100*r.FalseAlarmRate)
	}
	return nil
}

func cmdFig7() error {
	res, err := experiments.Fig7SDSBExample()
	if err != nil {
		return err
	}
	fmt.Printf("k-means SDS/B example: normal range [%.0f, %.0f]\n", res.Lower, res.Upper)
	fmt.Printf("attack at window %d, alarm at window %d\n", res.AttackWindow, res.AlarmWindow)
	return nil
}

func cmdFig8() error {
	res, err := experiments.Fig8SDSPExample()
	if err != nil {
		return err
	}
	fmt.Printf("FaceNet SDS/P example: normal period %.1f MA windows\n", res.NormalPeriod)
	fmt.Printf("attack at window %d, alarm at window %d\n", res.AttackWindow, res.AlarmWindow)
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	atk := fs.String("attack", "buslock", "attack kind")
	scenario := fs.Int("scenario", 1, "1 (half-run attack) or 2 (adaptive)")
	appsFlag := fs.String("apps", strings.Join(workload.Abbrevs(), ","), "comma-separated apps")
	withDNN := fs.Bool("dnn", false, "include the DNN detector (trains on first use)")
	seeds := fs.Int("seeds", 2, "seeds per cell")
	fs.Parse(args)
	mode, err := parseMode(*atk)
	if err != nil {
		return err
	}
	apps := strings.Split(*appsFlag, ",")
	factories := experiments.StandardFactories(*withDNN)
	cells, err := experiments.CompareDetectors(apps, factories, mode, *scenario == 2, seedList(*seeds))
	if err != nil {
		return err
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].App != cells[j].App {
			return cells[i].App < cells[j].App
		}
		return cells[i].Detector < cells[j].Detector
	})
	fmt.Printf("%-6s %-8s %8s %8s %8s\n", "APP", "SCHEME", "RECALL", "SPEC", "DELAY(s)")
	for _, c := range cells {
		fmt.Printf("%-6s %-8s %8.3f %8.3f %8.1f\n", c.App, c.Detector, c.Recall.Median, c.Spec.Median, c.Delay)
	}
	return nil
}

func cmdOverhead(args []string) error {
	fs := flag.NewFlagSet("overhead", flag.ExitOnError)
	appsFlag := fs.String("apps", "KM,BA", "comma-separated apps")
	fs.Parse(args)
	rows, err := experiments.Fig14Overhead(strings.Split(*appsFlag, ","))
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-8s %s\n", "APP", "SCHEME", "NORMALIZED EXEC TIME")
	for _, r := range rows {
		fmt.Printf("%-6s %-8s %.3f\n", r.App, r.Detector, r.Normalized)
	}
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	param := fs.String("param", "alpha", "alpha|k|w|dw|wp|dwp|dnnw|dnndw")
	app := fs.String("app", "KM", "application (periodic sweeps use FN)")
	seeds := fs.Int("seeds", 1, "seeds per point")
	fs.Parse(args)
	sl := seedList(*seeds)
	var pts []experiments.SweepPoint
	var err error
	switch *param {
	case "alpha":
		pts, err = experiments.Fig17AlphaSweep(*app, []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}, sl)
	case "k":
		pts, err = experiments.Fig18KSweep(*app, []float64{1.1, 1.125, 1.2, 1.5, 2.0}, sl)
	case "w":
		pts, err = experiments.Fig19WSweep(*app, []int{100, 200, 400, 600, 1000}, sl)
	case "dw":
		pts, err = experiments.Fig21DWSweep(*app, []int{20, 50, 100, 200}, sl)
	case "wp":
		pts, err = experiments.Fig23WPSweep("FN", []int{2, 3, 4, 6}, sl)
	case "dwp":
		pts, err = experiments.Fig24DWPSweep("FN", []int{5, 10, 15, 25}, sl)
	case "dnnw":
		pts, err = experiments.Fig20WSweepDNN([]int{100, 200, 400}, sl)
	case "dnndw":
		pts, err = experiments.Fig22DWSweepDNN([]int{20, 50, 100, 200}, sl)
	default:
		return fmt.Errorf("unknown sweep parameter %q", *param)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %8s %8s %8s\n", strings.ToUpper(*param), "RECALL", "SPEC", "DELAY(s)")
	for _, p := range pts {
		fmt.Printf("%-10.4g %8.3f %8.3f %8.1f\n", p.Value, p.Recall, p.Specificity, p.Delay)
	}
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	appsFlag := fs.String("apps", strings.Join(workload.Abbrevs(), ","), "apps to train on")
	epochs := fs.Int("epochs", 12, "training epochs")
	verbose := fs.Bool("v", false, "per-epoch progress")
	fs.Parse(args)
	spec := experiments.DefaultTrainingSpec()
	spec.Apps = strings.Split(*appsFlag, ",")
	spec.Train.Epochs = *epochs
	if *verbose {
		spec.Train.Verbose = func(line string) { fmt.Println(line) }
	}
	samples, err := experiments.GenerateCascadeSamples(spec)
	if err != nil {
		return err
	}
	fmt.Printf("training corpus: %d windows across %d apps x 3 attack states\n", len(samples), len(spec.Apps))
	cascade, err := experiments.TrainCascade(spec)
	if err != nil {
		return err
	}
	// Held-out evaluation: fresh windows from disjoint seeds.
	var held []memdos.CascadeSample
	for appIdx, app := range spec.Apps {
		for _, mode := range []experiments.AttackMode{experiments.NoAttack, experiments.BusLock, experiments.Cleansing} {
			wins, err := experiments.HeldOutWindows(app, mode, spec)
			if err != nil {
				return err
			}
			for _, w := range wins {
				held = append(held, memdos.CascadeSample{
					Window: w, AppLabel: appIdx, AttackLabel: experiments.AttackClassOf(mode),
				})
			}
		}
	}
	appConf, atkConf, err := dnn.EvaluateCascade(cascade, held)
	if err != nil {
		return err
	}
	fmt.Printf("held-out application classifier: accuracy %.3f, per-class recall %v\n",
		appConf.Accuracy(), fmtRecalls(appConf.PerClassRecall()))
	fmt.Printf("held-out attack classifier:      accuracy %.3f, per-class recall %v\n",
		atkConf.Accuracy(), fmtRecalls(atkConf.PerClassRecall()))
	return nil
}

// fmtRecalls renders per-class recalls compactly.
func fmtRecalls(rs []float64) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%.2f", r)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func cmdMigration(args []string) error {
	fs := flag.NewFlagSet("migration", flag.ExitOnError)
	app := fs.String("app", "KM", "application")
	delay := fs.Float64("delay", 60, "attacker re-co-location delay (s)")
	dur := fs.Float64("dur", 600, "run duration (s)")
	fs.Parse(args)
	res, err := experiments.MigrationStudy(*app, *delay, *dur, 13)
	if err != nil {
		return err
	}
	fmt.Printf("detect-and-migrate against a persistent bus-locking attacker (%s, %gs re-co-location):\n", *app, *delay)
	fmt.Printf("  migrations triggered:            %d\n", res.Migrations)
	fmt.Printf("  time under attack, no response:  %.0f%%\n", 100*res.AttackedFractionNoResponse)
	fmt.Printf("  time under attack, migrating:    %.0f%%\n", 100*res.AttackedFraction)
	fmt.Printf("  victim mean speed, no response:  %.2f\n", res.MeanSpeedNoResponse)
	fmt.Printf("  victim mean speed, migrating:    %.2f\n", res.MeanSpeedWithResponse)
	fmt.Println("migration helps but cannot defeat the attack: the adversary re-co-locates (Sec. II).")
	return nil
}

func cmdMitigate(args []string) error {
	fs := flag.NewFlagSet("mitigate", flag.ExitOnError)
	app := fs.String("app", "KM", "application")
	atk := fs.String("attack", "buslock", "attack kind (buslock|cleansing)")
	seed := fs.Uint64("seed", 7, "run seed")
	start := fs.Float64("start", 30, "attack co-location time (s)")
	delay := fs.Float64("delay", 120, "attacker re-co-location delay after migration (s)")
	fs.Parse(args)
	mode, err := parseMode(*atk)
	if err != nil {
		return err
	}
	if mode == experiments.NoAttack {
		return fmt.Errorf("mitigate needs an attack (buslock|cleansing)")
	}
	spec := experiments.DefaultClosedLoopSpec(*app, mode, *seed)
	spec.AttackStart = *start
	spec.RelocationDelay = *delay
	res, err := experiments.ClosedLoop(spec)
	if err != nil {
		return err
	}
	fmt.Printf("closed-loop mitigation of %v on %s (SDS -> respond engine):\n", mode, res.App)
	fmt.Printf("  completion time, attack-free:    %7.1fs\n", res.CleanTime)
	fmt.Printf("  completion time, no mitigation:  %7.1fs  (normalized %.2f)\n", res.AttackedTime, res.AttackedNormalized)
	fmt.Printf("  completion time, closed loop:    %7.1fs  (normalized %.2f)\n", res.MitigatedTime, res.MitigatedNormalized)
	fmt.Printf("  slowdown recovered:              %6.0f%%\n", 100*res.Recovered)
	fmt.Printf("  alarms %d, peak rung %d, throttles %d, partitions %d, migrations %d\n",
		res.Alarms, res.PeakLevel, res.Stats.Throttles, res.Stats.Partitions, res.Stats.Migrations)
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	out := fs.String("out", "", "output path (default stdout)")
	appsFlag := fs.String("apps", "KM,TS,FN", "comma-separated apps")
	seeds := fs.Int("seeds", 1, "seeds per experiment")
	withDNN := fs.Bool("dnn", false, "include the DNN detector (slow: trains first)")
	fs.Parse(args)
	cfg := experiments.ReportConfig{
		Seeds:   seedList(*seeds),
		Apps:    strings.Split(*appsFlag, ","),
		WithDNN: *withDNN,
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	started := time.Now()
	if err := experiments.WriteReport(w, cfg, func() time.Duration { return time.Since(started) }); err != nil {
		return err
	}
	if *out != "" {
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdContainers(args []string) error {
	fs := flag.NewFlagSet("containers", flag.ExitOnError)
	atk := fs.String("attack", "buslock", "attack kind")
	fs.Parse(args)
	mode, err := parseMode(*atk)
	if err != nil {
		return err
	}
	res, err := experiments.ContainerStudy(mode, 600, 7)
	if err != nil {
		return err
	}
	fmt.Printf("serverless function under %v (4 instances, 2s invocations):\n", mode)
	fmt.Printf("  invocation throughput: %.2f/s -> %.2f/s\n", res.CleanThroughput, res.AttackedThroughput)
	fmt.Printf("  samples per instance:  %d (SDS/B needs W=200 just for one window)\n", res.SamplesPerInstance)
	fmt.Printf("  SDS/U on the per-function aggregate: recall %.3f, specificity %.3f, delay %.1fs\n",
		res.Accuracy.Recall, res.Accuracy.Specificity, res.Accuracy.MeanDelay)
	return nil
}

func cmdAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	which := fs.String("which", "raw", "raw|period|microsim")
	fs.Parse(args)
	switch *which {
	case "raw":
		accs, err := experiments.AblationRawThreshold("TS", seedList(1))
		if err != nil {
			return err
		}
		for _, name := range []string{"naive-coarse", "naive-fine", "SDS"} {
			a := accs[name]
			fmt.Printf("%-14s recall %.3f  specificity %.3f\n", name, a.Recall, a.Specificity)
		}
	case "period":
		dft, acf, both, err := experiments.PeriodEstimatorAblation("FN", seedList(3))
		if err != nil {
			return err
		}
		fmt.Printf("mean relative period error: DFT-only %.3f, ACF-only %.3f, DFT-ACF %.3f\n", dft, acf, both)
	case "microsim":
		micro, fast, err := experiments.MicrosimCalibration()
		if err != nil {
			return err
		}
		fmt.Printf("cleansing miss-ratio inflation: microsim %.2fx, fast model %.2fx\n", micro, fast)
	default:
		return fmt.Errorf("unknown ablation %q", *which)
	}
	return nil
}
