package main

import (
	"testing"
	"time"
)

// TestLoadgenInProcess smokes the whole loadgen path — spawned daemon,
// both codecs, drain verification, ratio computation — with a tiny
// window. The ratio gate itself is exercised with a bar any machine
// clears (>0), not the perf target; BenchmarkStreamIngest and the CI
// loadgen step own the real numbers.
func TestLoadgenInProcess(t *testing.T) {
	if err := cmdLoadgen([]string{
		"-sessions", "2", "-batch", "64", "-dur", "150ms", "-codec", "both",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	if err := cmdLoadgen([]string{"-codec", "carrier-pigeon"}); err == nil {
		t.Fatal("bogus codec accepted")
	}
	if err := cmdLoadgen([]string{"-sessions", "0"}); err == nil {
		t.Fatal("zero sessions accepted")
	}
}

func TestLoadgenRateLimiting(t *testing.T) {
	start := time.Now()
	// 2 sessions x 1000 samples/sec for 300ms: must not finish instantly
	// and must accept roughly rate*dur samples, not millions.
	if err := cmdLoadgen([]string{
		"-sessions", "1", "-batch", "50", "-rate", "1000", "-dur", "300ms", "-codec", "binary",
	}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 250*time.Millisecond {
		t.Fatalf("rate-limited run finished in %v", el)
	}
}

func TestLatencyStats(t *testing.T) {
	p50, p99, max := latencyStats([]float64{5, 1, 3, 2, 4})
	if p50 != 3 || max != 5 {
		t.Fatalf("p50=%v max=%v", p50, max)
	}
	if p99 != 4 { // index int(0.99*4)=3 of the sorted slice
		t.Fatalf("p99=%v", p99)
	}
	if p50, p99, max = latencyStats(nil); p50 != 0 || p99 != 0 || max != 0 {
		t.Fatal("empty latency slice must yield zeros")
	}
}
