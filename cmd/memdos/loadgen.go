package main

// The loadgen subcommand drives a memdosd daemon at fleet-scale ingest
// rates and reports what the paper's serving story needs measured:
// sustained samples/sec, per-batch send latency percentiles, and the
// daemon's GC pause accounting (bmgc-style: throughput means nothing if
// the collector eats it back in pauses).
//
// With -addr it targets a running daemon; without, it spawns the full
// daemon data path in-process on a loopback listener — same HTTP stack,
// same handlers — so CI can smoke the ingest path with one command.
//
// -codec selects the wire format: the original JSON route
// (POST /v1/ingest, one request per batch) or the binary streaming
// route (POST /v1/ingest/stream, length-prefixed pcm frames on one
// persistent connection). "both" runs JSON then binary on disjoint
// session names and reports the throughput ratio; -min-ratio turns the
// ratio into a pass/fail gate.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"memdos/internal/core"
	"memdos/internal/daemon"
	"memdos/internal/metrics"
	"memdos/internal/pcm"
	"memdos/internal/stream"
)

type loadgenConfig struct {
	base     string // daemon base URL
	sessions int
	batch    int
	rate     float64 // samples/sec per session; 0 = unthrottled
	dur      time.Duration
	profile  string
}

// loadgenResult is one codec's aggregate measurement.
type loadgenResult struct {
	codec      string
	accepted   int
	dropped    int
	errors     []string
	wall       float64 // seconds of load window
	p50        float64 // per-batch send latency, seconds
	p99        float64
	max        float64
	gc         metrics.GCStats // delta over the load window
	drainClean bool
}

func (r loadgenResult) throughput() float64 {
	if r.wall == 0 { //memdos:ignore floateq guard against division by an exactly-zero wall
		return 0
	}
	return float64(r.accepted) / r.wall
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL (e.g. http://127.0.0.1:9464); empty = spawn in-process")
	sessions := fs.Int("sessions", 4, "concurrent producer sessions per codec")
	batch := fs.Int("batch", 256, "samples per batch/frame")
	rate := fs.Float64("rate", 0, "samples/sec per session (0 = unthrottled)")
	dur := fs.Duration("dur", 2*time.Second, "load window per codec")
	codec := fs.String("codec", "both", "wire codec: json | binary | both")
	profile := fs.String("profile", "raw", "detector profile for auto-opened sessions")
	minRatio := fs.Float64("min-ratio", 0, "with -codec both: fail unless binary/json throughput ratio >= this")
	fs.Parse(args)
	if *sessions < 1 || *batch < 1 {
		return fmt.Errorf("need -sessions >= 1 and -batch >= 1")
	}

	base := strings.TrimSuffix(*addr, "/")
	if base == "" {
		var err error
		var shutdown func()
		base, shutdown, err = spawnDaemon()
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Printf("loadgen: spawned in-process daemon at %s\n", base)
	}

	cfg := loadgenConfig{
		base: base, sessions: *sessions, batch: *batch,
		rate: *rate, dur: *dur, profile: *profile,
	}

	var codecs []string
	switch *codec {
	case "json", "binary":
		codecs = []string{*codec}
	case "both":
		codecs = []string{"json", "binary"}
	default:
		return fmt.Errorf("unknown -codec %q (json|binary|both)", *codec)
	}

	results := make(map[string]loadgenResult, len(codecs))
	for _, c := range codecs {
		res, err := runLoad(cfg, c)
		if err != nil {
			return fmt.Errorf("%s load: %w", c, err)
		}
		printResult(res, cfg)
		if res.accepted == 0 {
			return fmt.Errorf("%s load accepted no samples", c)
		}
		if !res.drainClean {
			return fmt.Errorf("%s load did not drain cleanly", c)
		}
		results[c] = res
	}

	if len(codecs) == 2 {
		ratio := results["binary"].throughput() / results["json"].throughput()
		fmt.Printf("binary/json throughput ratio: %.1fx\n", ratio)
		if *minRatio > 0 && ratio < *minRatio {
			return fmt.Errorf("binary/json ratio %.2fx below required %.2fx", ratio, *minRatio)
		}
	}
	return nil
}

// spawnDaemon assembles the daemon data path — hub, profiles, HTTP
// handlers — on a loopback listener, the way cmd/memdosd's run() does
// minus workload profiling (the raw profile needs none).
func spawnDaemon() (base string, shutdown func(), err error) {
	cfg := stream.DefaultConfig()
	cfg.Policy = stream.Block
	hub := stream.NewHub(cfg)
	if err := hub.RegisterProfile("raw", func() (core.Detector, error) {
		return core.NewRawThreshold(0.5)
	}); err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		hub.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: daemon.New(hub, nil)}
	go srv.Serve(ln)
	shutdown = func() {
		srv.Close()
		hub.Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// runLoad drives one codec's load window: cfg.sessions producers, each
// on its own connection, until the deadline; then waits for the daemon
// to drain what it accepted.
func runLoad(cfg loadgenConfig, codec string) (loadgenResult, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.sessions + 2,
		MaxIdleConnsPerHost: cfg.sessions + 2,
	}}
	defer client.CloseIdleConnections()

	gcBefore, err := scrapeGC(client, cfg.base)
	if err != nil {
		return loadgenResult{}, err
	}

	type workerOut struct {
		resp stream.IngestResponse
		lats []float64
		err  error
	}
	outs := make([]workerOut, cfg.sessions)
	deadline := time.Now().Add(cfg.dur)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			session := fmt.Sprintf("lg-%s-%d", codec, i)
			o := &outs[i]
			switch codec {
			case "json":
				o.resp, o.lats, o.err = jsonWorker(client, cfg, session, deadline)
			default:
				o.resp, o.lats, o.err = binaryWorker(client, cfg, session, deadline)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	res := loadgenResult{codec: codec, wall: wall}
	var lats []float64
	for _, o := range outs {
		if o.err != nil {
			return res, o.err
		}
		res.accepted += o.resp.Accepted
		res.dropped += o.resp.Dropped
		res.errors = append(res.errors, o.resp.Errors...)
		lats = append(lats, o.lats...)
	}
	res.p50, res.p99, res.max = latencyStats(lats)

	res.drainClean, err = waitDrain(client, cfg.base, 30*time.Second)
	if err != nil {
		return res, err
	}
	gcAfter, err := scrapeGC(client, cfg.base)
	if err != nil {
		return res, err
	}
	res.gc = gcAfter.Sub(gcBefore)
	return res, nil
}

// loadSamples builds one batch worth of well-formed samples, timestamps
// advancing from t0 at 10ms per sample (alarm-free: steady counters).
func loadSamples(dst []pcm.Sample, n int, t0 float64) []pcm.Sample {
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, pcm.Sample{
			Time:      t0 + 0.01*float64(i+1),
			AccessNum: 100,
			MissNum:   10,
		})
	}
	return dst
}

// pace sleeps long enough to hold the per-session sample rate after
// sent samples since start. Unthrottled when rate is 0.
func pace(start time.Time, sent int, rate float64) {
	if rate <= 0 {
		return
	}
	due := start.Add(time.Duration(float64(sent) / rate * float64(time.Second)))
	if d := time.Until(due); d > 0 {
		time.Sleep(d)
	}
}

// jsonWorker POSTs one /v1/ingest request per batch over a persistent
// connection; latency is the full request round trip.
func jsonWorker(client *http.Client, cfg loadgenConfig, session string, deadline time.Time) (stream.IngestResponse, []float64, error) {
	var (
		total   stream.IngestResponse
		lats    []float64
		samples []pcm.Sample
		body    bytes.Buffer
		t0      float64
		sent    int
		start   = time.Now()
	)
	for time.Now().Before(deadline) {
		samples = loadSamples(samples, cfg.batch, t0)
		t0 += 0.01 * float64(cfg.batch)
		body.Reset()
		if err := json.NewEncoder(&body).Encode(stream.IngestRequest{Batches: []stream.IngestBatch{
			{Session: session, Profile: cfg.profile, Samples: samples},
		}}); err != nil {
			return total, lats, err
		}
		reqStart := time.Now()
		resp, err := client.Post(cfg.base+"/v1/ingest", "application/json", bytes.NewReader(body.Bytes()))
		if err != nil {
			return total, lats, err
		}
		var ir stream.IngestResponse
		err = json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		lats = append(lats, time.Since(reqStart).Seconds())
		if err != nil {
			return total, lats, err
		}
		if resp.StatusCode != http.StatusOK {
			return total, lats, fmt.Errorf("ingest status %d: %v", resp.StatusCode, ir.Errors)
		}
		total.Accepted += ir.Accepted
		total.Dropped += ir.Dropped
		total.Errors = append(total.Errors, ir.Errors...)
		sent += cfg.batch
		pace(start, sent, cfg.rate)
	}
	return total, lats, nil
}

// binaryWorker holds one streaming POST open for the whole window and
// writes one length-prefixed frame per batch; latency is the frame
// write (which absorbs transport backpressure). The server's response
// arrives once the body is closed.
func binaryWorker(client *http.Client, cfg loadgenConfig, session string, deadline time.Time) (stream.IngestResponse, []float64, error) {
	var total stream.IngestResponse
	pr, pw := io.Pipe()
	url := cfg.base + "/v1/ingest/stream"
	if cfg.profile != "" {
		url += "?profile=" + cfg.profile
	}
	type reply struct {
		resp *http.Response
		err  error
	}
	done := make(chan reply, 1)
	go func() {
		resp, err := client.Post(url, "application/octet-stream", pr)
		done <- reply{resp, err}
	}()

	var (
		lats    []float64
		samples []pcm.Sample
		frame   []byte
		t0      float64
		sent    int
		start   = time.Now()
	)
	for time.Now().Before(deadline) {
		samples = loadSamples(samples, cfg.batch, t0)
		t0 += 0.01 * float64(cfg.batch)
		var err error
		frame, err = pcm.AppendBatch(frame[:0], session, samples)
		if err != nil {
			pw.CloseWithError(err)
			<-done
			return total, lats, err
		}
		wStart := time.Now()
		if _, err := pw.Write(frame); err != nil {
			// Server closed on us; surface its response below.
			break
		}
		lats = append(lats, time.Since(wStart).Seconds())
		sent += cfg.batch
		pace(start, sent, cfg.rate)
	}
	pw.Close()
	rep := <-done
	if rep.err != nil {
		return total, lats, rep.err
	}
	defer rep.resp.Body.Close()
	if err := json.NewDecoder(rep.resp.Body).Decode(&total); err != nil {
		return total, lats, err
	}
	if rep.resp.StatusCode != http.StatusOK {
		return total, lats, fmt.Errorf("stream status %d: %v", rep.resp.StatusCode, total.Errors)
	}
	return total, lats, nil
}

// latencyStats sorts once and reads the percentiles off the slice
// (metrics.Quantile is an insertion sort meant for tiny inputs; a load
// window collects hundreds of thousands of points).
func latencyStats(lats []float64) (p50, p99, max float64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(lats)
	idx := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return idx(0.50), idx(0.99), lats[len(lats)-1]
}

// scrapeGC reads the daemon's GC counters off /metrics. Loadgen always
// measures the daemon process (which in in-process mode is this one).
func scrapeGC(client *http.Client, base string) (metrics.GCStats, error) {
	var st metrics.GCStats
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "memdos_gc_pause_seconds_total "); ok {
			if st.PauseTotal, err = strconv.ParseFloat(v, 64); err != nil {
				return st, fmt.Errorf("parsing %q: %w", line, err)
			}
		} else if v, ok := strings.CutPrefix(line, "memdos_gc_cycles_total "); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return st, fmt.Errorf("parsing %q: %w", line, err)
			}
			st.Cycles = uint64(f)
		}
	}
	return st, sc.Err()
}

// waitDrain polls the sessions list until every session's queue is
// empty — the accepted samples all reached their detectors.
func waitDrain(client *http.Client, base string, timeout time.Duration) (bool, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/v1/sessions")
		if err != nil {
			return false, err
		}
		var list struct {
			Sessions []stream.SessionInfo `json:"sessions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			return false, err
		}
		pending := int64(0)
		for _, in := range list.Sessions {
			pending += in.Pending
		}
		if pending == 0 {
			return true, nil
		}
		if time.Now().After(deadline) {
			return false, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func printResult(r loadgenResult, cfg loadgenConfig) {
	fmt.Printf("%-6s  %9.0f samples/sec  (%d accepted, %d dropped, %d batch errors in %.2fs)\n",
		r.codec, r.throughput(), r.accepted, r.dropped, len(r.errors), r.wall)
	fmt.Printf("        batch latency p50 %s  p99 %s  max %s\n",
		fmtDur(r.p50), fmtDur(r.p99), fmtDur(r.max))
	drain := "clean"
	if !r.drainClean {
		drain = "TIMED OUT"
	}
	fmt.Printf("        GC %d cycles, %.2fms pause total; drain %s\n",
		r.gc.Cycles, r.gc.PauseTotal*1e3, drain)
}

func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}
