package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"memdos/internal/analysis"
	"memdos/internal/attack"
	"memdos/internal/bus"
	"memdos/internal/cache"
	"memdos/internal/cluster"
	"memdos/internal/core"
	"memdos/internal/daemon"
	"memdos/internal/experiments"
	"memdos/internal/mem"
	"memdos/internal/pcm"
	"memdos/internal/stream"
	"memdos/internal/vmm"
	"memdos/internal/workload"
)

// The bench subcommand measures the simulation's hot paths and the
// experiment harness's parallel speedup, and emits a machine-readable JSON
// document (schema memdos-bench/v1). CI runs it with -quick and compares
// against the committed BENCH_baseline.json; developers run it after perf
// work and refresh the baseline when an improvement is intentional.

// benchSchema versions the JSON document.
const benchSchema = "memdos-bench/v1"

// benchReps is how many times each micro-benchmark repeats; the fastest
// repetition is reported.
const benchReps = 5

// benchResult is one benchmark's measurement. Sweep benchmarks are timed
// as one whole pass (ns_per_op is the wall time of the pass) and marked
// wall_only: their time depends on core count and sweep size, so
// compareBaseline excludes them from the regression checks.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
	WallSeconds float64 `json:"wall_seconds"`
	WallOnly    bool    `json:"wall_only,omitempty"`
}

// benchDoc is the emitted document.
type benchDoc struct {
	Schema string `json:"schema"`
	Quick  bool   `json:"quick"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	// SweepSpeedup is sweep/serial wall time over sweep/parallel wall
	// time: the experiment harness's parallel efficiency on this machine.
	SweepSpeedup float64       `json:"sweep_speedup"`
	Results      []benchResult `json:"results"`
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "reduced sweep sizes for CI smoke runs")
	out := fs.String("out", "", "write the JSON document to this file (default stdout)")
	baseline := fs.String("baseline", "", "compare against this baseline JSON; non-zero exit on regression")
	threshold := fs.Float64("threshold", 0.20, "allowed relative regression vs the baseline")
	fs.Parse(args)

	doc := benchDoc{
		Schema: benchSchema,
		Quick:  *quick,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}

	for _, mb := range microBenches {
		doc.Results = append(doc.Results, measure(mb.name, mb.fn))
	}

	serial, parallel, err := benchSweepPair(*quick)
	if err != nil {
		return err
	}
	recordWall := func(name string, wall float64) {
		fmt.Fprintf(os.Stderr, "%-24s %12.2f s (wall)\n", name, wall)
		doc.Results = append(doc.Results, benchResult{
			Name: name, NsPerOp: wall * 1e9, Iterations: 1,
			WallSeconds: wall, WallOnly: true,
		})
	}
	recordWall("sweep/alpha-serial", serial)
	recordWall("sweep/alpha-parallel", parallel)
	doc.SweepSpeedup = serial / parallel
	fmt.Fprintf(os.Stderr, "%-24s %.2fx (serial %.2fs / parallel %.2fs, %d CPUs)\n",
		"sweep speedup", doc.SweepSpeedup, serial, parallel, doc.CPUs)

	var failures []string
	if *baseline != "" {
		base, lerr := loadBaseline(*baseline)
		if lerr != nil {
			return lerr
		}
		failures = regressions(doc, base, *threshold)
		if len(failures) > 0 {
			// A suspect measurement on a shared runner is more often
			// scheduler noise than a real regression, so re-measure just
			// the suspects once before failing; a real regression
			// reproduces.
			fmt.Fprintf(os.Stderr, "re-measuring %d suspect benchmark(s)\n", len(failures))
			suspect := make(map[string]bool, len(failures))
			for _, f := range failures {
				suspect[benchNameOf(f)] = true
			}
			for i := range doc.Results {
				if !suspect[doc.Results[i].Name] {
					continue
				}
				for _, mb := range microBenches {
					if mb.name == doc.Results[i].Name {
						r := measure(mb.name, mb.fn)
						if r.NsPerOp < doc.Results[i].NsPerOp {
							doc.Results[i] = r
						}
					}
				}
			}
			failures = regressions(doc, base, *threshold)
		}
		if len(failures) == 0 {
			fmt.Fprintf(os.Stderr, "no regressions vs %s (threshold %.0f%%)\n", *baseline, 100**threshold)
		}
	}

	blob, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "regression: %s\n", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s",
			len(failures), 100**threshold, *baseline)
	}
	// The parallel harness must actually pay off on real multi-core
	// hardware; single-core machines (small CI runners) cannot show a
	// speedup, so the bar only applies from 8 CPUs up.
	if doc.CPUs >= 8 && doc.SweepSpeedup < 3 {
		return fmt.Errorf("sweep speedup %.2fx on %d CPUs, want >= 3x", doc.SweepSpeedup, doc.CPUs)
	}
	return nil
}

// microBenches are the hot-path benchmarks the regression gate tracks.
var microBenches = []struct {
	name string
	fn   func(*testing.B)
}{
	{"cache/access", benchCacheAccess},
	{"bus/resolve", benchBusResolve},
	{"mem/resolve-1024-vms", benchMemResolve},
	{"vmm/step", benchServerStep},
	{"cluster/step-256-hosts", benchClusterStep},
	{"probe/find-contested", benchFindContested},
	{"dnn/train-step", benchDNNTrainStep},
	{"dnn/infer", benchDNNInfer},
	{"dnn/infer-looped", benchDNNInferLooped},
	{"dnn/infer-batched", benchDNNInferBatched},
	{"dnn/infer-batched-int8", benchDNNInferBatchedInt8},
	{"ingest/decode-batch", benchDecodeBatch},
	{"ingest/stream", benchIngestStream},
	{"analysis/vet-repo", benchVetRepo},
}

// measure runs one micro-benchmark benchReps times and keeps the fastest
// repetition: minimum-of-N is the standard estimator for ns/op under
// scheduler noise, which would otherwise dominate on small shared runners.
// Allocation counts are deterministic, so any repetition works.
func measure(name string, bench func(*testing.B)) benchResult {
	best := testing.Benchmark(bench)
	for rep := 1; rep < benchReps; rep++ {
		if r := testing.Benchmark(bench); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	r := best
	fmt.Fprintf(os.Stderr, "%-24s %12.1f ns/op %8d B/op %6d allocs/op\n",
		name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
		WallSeconds: r.T.Seconds(),
	}
}

func benchCacheAccess(b *testing.B) {
	c := cache.MustNew(cache.GeometryScaled)
	g := c.Geometry()
	for o := cache.Owner(0); o < 4; o++ {
		c.Access(o, c.AddrForSet(0, uint64(o)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint64(i)
		c.Access(cache.Owner(u%4), c.AddrForSet(int(u)%g.Sets, u%64))
	}
}

func benchBusResolve(b *testing.B) {
	bb := bus.New(1e8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for o := bus.Owner(0); o < 9; o++ {
			bb.RequestAccesses(o, 1000)
		}
		bb.RequestLock(9, 0.007)
		bb.Resolve(0.01)
	}
}

// benchMemResolve mirrors internal/mem's BenchmarkResolve1024VMs: one
// arbitration round of a 2-socket, 8-channel controller with 1024 owners.
func benchMemResolve(b *testing.B) {
	cfg := mem.DefaultNUMAConfig(2)
	cfg.ChannelsPerSocket = 4
	c := mem.MustNew(cfg)
	const n = 1024
	for o := mem.Owner(0); o < n; o++ {
		if err := c.SetHome(o, int(o)%2); err != nil {
			b.Fatal(err)
		}
		if err := c.SetRemoteFraction(o, float64(int(o)%4)/10); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for o := mem.Owner(0); o < n; o++ {
			c.Request(o, 1e6, 0.7)
		}
		c.Resolve(0.01)
	}
}

func benchServerStep(b *testing.B) {
	s := vmm.MustNewServer(vmm.DefaultConfig())
	if _, err := s.AddApp("victim", workload.MustByAbbrev("BA").Service()); err != nil {
		b.Fatal(err)
	}
	atk, err := attack.NewBusLock(attack.Always{}, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.AddAttacker("attacker", atk); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := s.AddApp("util", workload.Utility()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// benchClusterStep times one lockstep tick of a 256-host cluster with
// 512 resident VMs. Workers is pinned to 1 so the number measures the
// per-host stepping cost itself, not this machine's core count.
func benchClusterStep(b *testing.B) {
	cfg := cluster.DefaultConfig()
	cfg.Hosts = 256
	cfg.SyncEvery = 1
	cfg.Workers = 1
	cfg.HostCapacity = 4
	c, err := cluster.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := c.AddVictim(fmt.Sprintf("victim%03d", i), "BA"); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		atk, err := attack.NewBusLock(attack.Always{}, 0.7)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.AddAttacker(fmt.Sprintf("attacker%03d", i), atk, fmt.Sprintf("victim%03d", i%32)); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 464; i++ {
		if err := c.AddUtility(fmt.Sprintf("util%03d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(1)
	}
}

func benchFindContested(b *testing.B) {
	c := cache.MustNew(cache.GeometryScaled)
	prober := attack.NewProber(c, 1)
	const victim cache.Owner = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prober.FindContested(func() {
			// Victim activity between fill and recheck: touch a band of
			// sets with fresh tags so they contest.
			for set := 0; set < 32; set++ {
				c.Access(victim, c.AddrForSet(set, uint64(i)<<8|uint64(set)))
			}
		}, 1)
	}
}

// benchDecodeBatch decodes one 64-sample binary frame into reused
// buffers — the per-frame cost of the fleet-scale ingest path. The
// codec contract is 0 allocs/op (TestDecodeBatchIntoZeroAlloc); the
// alloc gate here keeps it that way.
func benchDecodeBatch(b *testing.B) {
	samples := make([]pcm.Sample, 64)
	for i := range samples {
		samples[i] = pcm.Sample{
			Time: 0.01 * float64(i+1), AccessNum: 100 + float64(i%7), MissNum: 10,
			BWBytes: 6.4e7, AvgLatency: 3.2e-8,
		}
	}
	wire, err := pcm.AppendBatch(nil, "vm-bench", samples)
	if err != nil {
		b.Fatal(err)
	}
	body := wire[pcm.FramePrefixBytes:]
	dst := make([]pcm.Sample, 0, len(samples))
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pcm.DecodeBatchInto(dst[:0], body); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIngestStream pushes a 64-frame binary body through the full
// daemon handler — frame reader, decode, session intern, hub submit,
// detection. Shards is pinned to 1 so the number measures the ingest
// pipeline, not this machine's core count.
func benchIngestStream(b *testing.B) {
	cfg := stream.DefaultConfig()
	cfg.Policy = stream.Block
	cfg.Shards = 1
	hub := stream.NewHub(cfg)
	defer hub.Close()
	if err := hub.RegisterProfile("raw", func() (core.Detector, error) {
		return core.NewRawThreshold(0.5)
	}); err != nil {
		b.Fatal(err)
	}
	if err := hub.Open("vm-bench", "raw"); err != nil {
		b.Fatal(err)
	}
	srv := daemon.New(hub, nil)

	const framesPerReq, samplesPerFrame = 64, 64
	samples := make([]pcm.Sample, samplesPerFrame)
	var body []byte
	for f := 0; f < framesPerReq; f++ {
		for i := range samples {
			samples[i] = pcm.Sample{
				Time:      0.01 * float64(f*samplesPerFrame+i+1),
				AccessNum: 100, MissNum: 10,
			}
		}
		var err error
		body, err = pcm.AppendBatch(body, "vm-bench", samples)
		if err != nil {
			b.Fatal(err)
		}
	}
	rd := bytes.NewReader(body)
	req := httptest.NewRequest("POST", "/v1/ingest/stream", nil)
	req.Body = benchBody{rd}
	req.ContentLength = int64(len(body))
	w := &benchWriter{hdr: make(http.Header)}
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		w.reset()
		srv.ServeHTTP(w, req)
		if w.code != 0 && w.code != http.StatusOK {
			b.Fatalf("status %d: %s", w.code, &w.body)
		}
	}
}

// benchBody adapts the bench's reusable bytes.Reader to the request's
// ReadCloser without a per-iteration io.NopCloser wrapper.
type benchBody struct{ *bytes.Reader }

func (benchBody) Close() error { return nil }

// benchWriter is a resettable ResponseWriter for the ingest bench
// harness. A fresh httptest recorder (and request) per iteration cost
// thousands of allocs/op, burying the pipeline's own allocation count in
// harness noise — and the stock recorder cannot be reset because its
// wrote-header latch is private.
type benchWriter struct {
	hdr  http.Header
	body bytes.Buffer
	code int
}

func (w *benchWriter) Header() http.Header         { return w.hdr }
func (w *benchWriter) Write(p []byte) (int, error) { return w.body.Write(p) }

func (w *benchWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}

func (w *benchWriter) reset() {
	w.code = 0
	w.body.Reset()
	clear(w.hdr)
}

// benchVetRepo times one full memdos-vet pass over the module: loading
// every package through go list export data and running the complete
// checker suite (including the v2 hotalloc/golife/benchpin checkers and
// the stale-suppression audit). CI pays this cost on every run, so the
// gate keeps it in the ~1 s budget; it must be run from the module root,
// like the rest of the bench subcommand.
func benchVetRepo(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.Load("", "memdos/...")
		if err != nil {
			b.Fatal(err)
		}
		res := analysis.Run(pkgs, analysis.Checkers())
		if len(res.Findings) != 0 || len(res.Stale) != 0 {
			b.Fatalf("repo not vet-clean: %d findings, %d stale suppressions", len(res.Findings), len(res.Stale))
		}
	}
}

// benchSweepPair times one Fig. 17-style alpha sweep serially and in
// parallel and returns the two wall times. A warm-up pass runs first so
// neither timed pass pays for building the shared application profile.
func benchSweepPair(quick bool) (serial, parallel float64, err error) {
	alphas := []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	seeds := []uint64{1, 2}
	if quick {
		alphas = []float64{0.2, 0.6}
		seeds = []uint64{1}
	}
	timeOnce := func(workers int) (float64, error) {
		prev := experiments.SetParallelism(workers)
		defer experiments.SetParallelism(prev)
		start := time.Now()
		if _, err := experiments.Fig17AlphaSweep("KM", alphas, seeds); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	// Warm the shared profile cache so neither timed pass pays for it.
	if _, err = timeOnce(1); err != nil {
		return 0, 0, err
	}
	if serial, err = timeOnce(1); err != nil {
		return 0, 0, err
	}
	if parallel, err = timeOnce(0); err != nil { // 0 = all cores
		return 0, 0, err
	}
	return serial, parallel, nil
}

// loadBaseline reads and validates a baseline document.
func loadBaseline(path string) (benchDoc, error) {
	var base benchDoc
	blob, err := os.ReadFile(path)
	if err != nil {
		return base, fmt.Errorf("reading baseline: %w", err)
	}
	if err := json.Unmarshal(blob, &base); err != nil {
		return base, fmt.Errorf("parsing baseline: %w", err)
	}
	if base.Schema != benchSchema {
		return base, fmt.Errorf("baseline schema %q, want %q", base.Schema, benchSchema)
	}
	return base, nil
}

// benchNameOf extracts the benchmark name from a regressions message,
// which always starts "name: ...".
func benchNameOf(failure string) string {
	name, _, _ := strings.Cut(failure, ":")
	return name
}

// regressions lists the benchmarks that regressed versus the baseline,
// one message per failure, formatted "name: detail". Absolute ns/op is
// machine-dependent (the baseline may have been recorded on different
// hardware), so times are compared as each benchmark's share of the run's
// geometric mean: a benchmark only fails the check when it slowed down
// relative to the other benchmarks by more than the threshold. Allocation
// counts are machine-independent and compared directly. Wall-only sweep
// entries scale with core count and are skipped entirely; the sweep's
// health signal is SweepSpeedup, asserted by cmdBench itself.
func regressions(now, base benchDoc, threshold float64) []string {
	baseByName := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	type pair struct{ now, base benchResult }
	var common []pair
	for _, r := range now.Results {
		b, ok := baseByName[r.Name]
		if !ok || r.WallOnly || b.WallOnly {
			continue
		}
		common = append(common, pair{now: r, base: b})
	}
	if len(common) == 0 {
		return []string{"baseline: shares no benchmarks with this run"}
	}
	geomean := func(get func(pair) float64) float64 {
		s := 0.0
		for _, p := range common {
			s += math.Log(get(p))
		}
		return math.Exp(s / float64(len(common)))
	}
	gNow := geomean(func(p pair) float64 { return p.now.NsPerOp })
	gBase := geomean(func(p pair) float64 { return p.base.NsPerOp })

	var failures []string
	for _, p := range common {
		relNow := p.now.NsPerOp / gNow
		relBase := p.base.NsPerOp / gBase
		if relNow > relBase*(1+threshold) {
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f ns/op is %.0f%% above its baseline share of the run",
				p.now.Name, p.now.NsPerOp, 100*(relNow/relBase-1)))
		}
		// Allocation regressions are deterministic; allow a slack of 2
		// allocs/op for growth paths amortized differently across N.
		if p.base.AllocsPerOp >= 0 && p.now.AllocsPerOp > p.base.AllocsPerOp+2 &&
			float64(p.now.AllocsPerOp) > float64(p.base.AllocsPerOp)*(1+threshold) {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, baseline %d",
				p.now.Name, p.now.AllocsPerOp, p.base.AllocsPerOp))
		}
	}
	return failures
}
