package main

import (
	"flag"
	"fmt"

	"memdos/internal/experiments"
)

// cmdCluster runs the datacenter placement study: a multi-host cluster
// where attack VMs pursue co-residence under three placement strategies,
// the scheduler places and evacuates VMs under three policies, and the
// closed loop (SDS detection -> respond ladder -> real VM migration)
// drains attacked victims to clean hosts.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	hosts := fs.Int("hosts", 128, "number of simulated hosts")
	victims := fs.Int("victims", 64, "number of protected victim VMs")
	attackers := fs.Int("attackers", 32, "number of attack VMs")
	vms := fs.Int("vms", 1024, "total VM population (utilities fill the remainder)")
	app := fs.String("app", "KM", "victim application (Table II abbreviation)")
	dur := fs.Float64("dur", 240, "simulated duration (s)")
	delay := fs.Float64("delay", 120, "targeted attacker re-co-location delay (s)")
	churn := fs.Float64("churn", 60, "churn attacker relocation interval (s)")
	seed := fs.Uint64("seed", 7, "seed")
	fs.Parse(args)

	spec := experiments.DefaultClusterStudySpec()
	spec.Hosts = *hosts
	spec.Victims = *victims
	spec.Attackers = *attackers
	spec.Utilities = *vms - *victims - *attackers
	if spec.Utilities < 0 {
		return fmt.Errorf("-vms %d smaller than victims+attackers (%d)", *vms, *victims+*attackers)
	}
	spec.App = *app
	spec.Duration = *dur
	spec.RelocationDelay = *delay
	spec.ChurnInterval = *churn
	spec.Seed = *seed

	fmt.Printf("cluster study: %d hosts, %d VMs (%d victims / %d attackers / %d utilities), %s victims, %.0fs\n\n",
		spec.Hosts, spec.Victims+spec.Attackers+spec.Utilities, spec.Victims, spec.Attackers, spec.Utilities,
		spec.App, spec.Duration)

	res, err := experiments.ClusterStudy(spec)
	if err != nil {
		return err
	}

	fmt.Println("| scheduler | attacker placement | clean | attacked | mitigated | recovered | migrations | attacker moves | co-location |")
	fmt.Println("|---|---|---|---|---|---|---|---|---|")
	best := -1.0
	for _, c := range res.Cells {
		fmt.Printf("| %s | %s | %.3f | %.3f | %.3f | %.0f%% | %d | %d | %.0f%% |\n",
			c.Scheduler, c.Placement, c.CleanSpeed, c.AttackedSpeed, c.MitigatedSpeed,
			100*c.Recovered, c.Migrations, c.AttackerMoves, 100*c.Colocation)
		if c.Recovered > best {
			best = c.Recovered
		}
	}
	fmt.Printf("\nbest closed-loop recovery of attack-induced slowdown: %.0f%%\n", 100*best)
	fmt.Println("victim speeds are means over all victims (1.0 = unimpeded); the closed loop detects on the")
	fmt.Println("attacked host and live-migrates the victim to a clean host chosen by the scheduler policy.")
	return nil
}
