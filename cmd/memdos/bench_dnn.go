package main

import (
	"testing"

	"memdos/internal/dnn"
	"memdos/internal/sim"
)

// DNN hot-path benchmarks for the regression gate: one full training
// step (forward, loss, backward, Adam) and one inference forward over
// the compact LSTM-FCN. Both run on layer workspace arenas and must stay
// allocation-free in steady state — the gate's alloc comparison watches
// that as much as the timing.

// benchDNNSetup builds a warmed stepper over one synthetic batch.
func benchDNNSetup(b *testing.B) (*dnn.Stepper, *dnn.Tensor, []int) {
	b.Helper()
	rng := sim.NewRNG(77)
	m, err := dnn.NewLSTMFCN(dnn.CompactLSTMFCNConfig(2, 3), sim.NewRNG(78))
	if err != nil {
		b.Fatal(err)
	}
	const batch, window = 32, 50
	x := dnn.NewTensor(batch, window, 2)
	for i := range x.Data {
		x.Data[i] = rng.Normal(0, 1)
	}
	y := make([]int, batch)
	for i := range y {
		y[i] = i % 3
	}
	s := dnn.NewStepper(m, dnn.NewAdam(1e-3))
	s.Step(x, y) // warm-up: builds the lazy LSTM branch and every arena
	return s, x, y
}

func benchDNNTrainStep(b *testing.B) {
	s, x, y := benchDNNSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(x, y)
	}
}

func benchDNNInfer(b *testing.B) {
	s, x, _ := benchDNNSetup(b)
	s.M.Forward(x, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.M.Forward(x, false)
	}
}
