package main

import (
	"testing"

	"memdos/internal/dnn"
	"memdos/internal/sim"
)

// DNN hot-path benchmarks for the regression gate: one full training
// step (forward, loss, backward, Adam) and one inference forward over
// the compact LSTM-FCN. Both run on layer workspace arenas and must stay
// allocation-free in steady state — the gate's alloc comparison watches
// that as much as the timing.

// benchDNNSetup builds a warmed stepper over one synthetic batch.
func benchDNNSetup(b *testing.B) (*dnn.Stepper, *dnn.Tensor, []int) {
	b.Helper()
	rng := sim.NewRNG(77)
	m, err := dnn.NewLSTMFCN(dnn.CompactLSTMFCNConfig(2, 3), sim.NewRNG(78))
	if err != nil {
		b.Fatal(err)
	}
	const batch, window = 32, 50
	x := dnn.NewTensor(batch, window, 2)
	for i := range x.Data {
		x.Data[i] = rng.Normal(0, 1)
	}
	y := make([]int, batch)
	for i := range y {
		y[i] = i % 3
	}
	s := dnn.NewStepper(m, dnn.NewAdam(1e-3))
	s.Step(x, y) // warm-up: builds the lazy LSTM branch and every arena
	return s, x, y
}

func benchDNNTrainStep(b *testing.B) {
	s, x, y := benchDNNSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(x, y)
	}
}

func benchDNNInfer(b *testing.B) {
	s, x, _ := benchDNNSetup(b)
	s.M.Forward(x, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.M.Forward(x, false)
	}
}

// Batched cascade scoring benchmarks: the production inference service's
// hot path. dnn/infer-looped is the pre-scorer reference (per-window
// float64 graph forward through both cascade stages); dnn/infer-batched
// is the compiled batch scorer over the same 256 windows and must hold
// roughly an order of magnitude over it, at 0 allocs/op steady state.
// dnn/infer-batched-int8 tracks the quantized variant so the tradeoff
// stays measured rather than assumed.

const scoreBenchBatch, scoreBenchWindow = 256, 50

// benchScorerSetup builds a compact cascade with fitted normalization
// plus one synthetic 256-window batch, in both nested and flat layouts.
func benchScorerSetup(b *testing.B, quant bool) (*dnn.Cascade, *dnn.BatchScorer, [][][]float64, []float64) {
	b.Helper()
	rng := sim.NewRNG(79)
	c, err := dnn.NewCascade(2, dnn.CompactLSTMFCNConfig, sim.NewRNG(80))
	if err != nil {
		b.Fatal(err)
	}
	windows := make([][][]float64, scoreBenchBatch)
	flat := make([]float64, 0, scoreBenchBatch*scoreBenchWindow*2)
	for i := range windows {
		win := make([][]float64, scoreBenchWindow)
		for t := range win {
			acc := 100 + rng.Normal(0, 8)
			miss := 10 + rng.Normal(0, 1)
			win[t] = []float64{acc, miss}
			flat = append(flat, acc, miss)
		}
		windows[i] = win
	}
	if c.Norm, err = dnn.FitChannelNorm(windows); err != nil {
		b.Fatal(err)
	}
	s, err := c.Scorer(scoreBenchWindow, dnn.ScorerOptions{Int8: quant})
	if err != nil {
		b.Fatal(err)
	}
	return c, s, windows, flat
}

func benchDNNInferLooped(b *testing.B) {
	c, _, windows, _ := benchScorerSetup(b, false)
	c.ClassifyGraph(windows[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range windows {
			c.ClassifyGraph(w)
		}
	}
	b.ReportMetric(scoreBenchBatch*float64(b.N)/b.Elapsed().Seconds(), "windows/s")
}

func benchDNNInferBatched(b *testing.B) {
	_, s, _, flat := benchScorerSetup(b, false)
	apps := make([]int, scoreBenchBatch)
	attacks := make([]int, scoreBenchBatch)
	s.ScoreFlat(scoreBenchBatch, flat, apps, attacks) // warm the arenas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreFlat(scoreBenchBatch, flat, apps, attacks)
	}
	b.ReportMetric(scoreBenchBatch*float64(b.N)/b.Elapsed().Seconds(), "windows/s")
}

func benchDNNInferBatchedInt8(b *testing.B) {
	_, s, _, flat := benchScorerSetup(b, true)
	apps := make([]int, scoreBenchBatch)
	attacks := make([]int, scoreBenchBatch)
	s.ScoreFlat(scoreBenchBatch, flat, apps, attacks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreFlat(scoreBenchBatch, flat, apps, attacks)
	}
	b.ReportMetric(scoreBenchBatch*float64(b.N)/b.Elapsed().Seconds(), "windows/s")
}
