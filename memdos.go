// Package memdos is a simulation-backed reproduction of "Impact of Memory
// DoS Attacks on Cloud Applications and Real-Time Detection Schemes"
// (Li, Sen, Shen, Chuah — ICPP 2020 / IEEE-ACM ToN 2022).
//
// It provides, end to end and with no dependencies beyond the standard
// library:
//
//   - a virtualized-server substrate (set-associative LLC, lockable memory
//     bus, NUMA DRAM memory controller, VM scheduler with execution
//     throttling, PCM-style hardware counters),
//   - the two memory DoS attacks (atomic bus locking, LLC cleansing with
//     its probing phase), the paper's adaptive attack schedule, and a
//     beyond-the-paper DRAM bandwidth hog,
//   - counter-process models of the paper's ten cloud applications,
//   - the detection schemes: SDS/B, SDS/P, combined SDS, the LSTM-FCN
//     cascade DNN detector (including a from-scratch deep-learning stack),
//     and the prior-work KStest baseline, and
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// This file is a façade re-exporting the high-level API; the
// implementation lives under internal/. See README.md for a tour and
// examples/ for runnable programs.
package memdos

import (
	"memdos/internal/attack"
	"memdos/internal/cluster"
	"memdos/internal/container"
	"memdos/internal/core"
	"memdos/internal/daemon"
	"memdos/internal/dnn"
	"memdos/internal/experiments"
	"memdos/internal/mem"
	"memdos/internal/metrics"
	"memdos/internal/pcm"
	"memdos/internal/respond"
	"memdos/internal/stream"
	"memdos/internal/vmm"
	"memdos/internal/workload"
)

// Detection schemes (Sections IV and V).
type (
	// Detector is a real-time memory-DoS detection scheme consuming PCM
	// samples.
	Detector = core.Detector
	// Params is the Table I parameter set shared by the schemes.
	Params = core.Params
	// Profile is an application's attack-free counter profile.
	Profile = core.Profile
	// SDS is the combined boundary+period statistical scheme.
	SDS = core.SDS
	// SDSB is the boundary-based scheme alone.
	SDSB = core.SDSB
	// SDSP is the period-based scheme alone.
	SDSP = core.SDSP
	// KSTestDetector is the prior-work baseline (Zhang et al.).
	KSTestDetector = core.KSTestDetector
	// KSParams configures the baseline's protocol.
	KSParams = core.KSParams
	// DNNDetector wraps a trained LSTM-FCN cascade.
	DNNDetector = core.DNNDetector
	// SDSU is the utilization-correlated, profile-free extension for
	// dynamic applications (the paper's Section VIII future work).
	SDSU = core.SDSU
	// Decision is one dated alarm verdict.
	Decision = core.Decision
	// Ensemble combines detectors under a vote rule (Section VII's
	// deployment discussion as a first-class detector).
	Ensemble = core.Ensemble
	// Incident is one contiguous alarm episode.
	Incident = core.Incident
)

// Ensemble vote rules.
const (
	VoteAny      = core.Any
	VoteAll      = core.All
	VoteMajority = core.Majority
)

// Default and baseline parameter constructors.
var (
	// DefaultParams returns the paper's Table I values.
	DefaultParams = core.DefaultParams
	// DefaultKSParams is the Section III-B baseline protocol.
	DefaultKSParams = core.DefaultKSParams
	// EvaluationKSParams is the Section VI baseline cadence.
	EvaluationKSParams = core.EvaluationKSParams
	// BuildProfile derives a Profile from attack-free counter samples.
	BuildProfile = core.BuildProfile
	// NewSDS builds the combined detector from a profile.
	NewSDS = core.NewSDS
	// NewSDSB builds the boundary detector.
	NewSDSB = core.NewSDSB
	// NewSDSP builds the period detector (periodic profiles only).
	NewSDSP = core.NewSDSP
	// NewKSTestDetector builds the baseline.
	NewKSTestDetector = core.NewKSTestDetector
	// NewDNNDetector builds the DNN detector from a trained cascade.
	NewDNNDetector = core.NewDNNDetector
	// NewSDSU builds the utilization-correlated extension detector.
	NewSDSU = core.NewSDSU
	// LoadCascade reloads a cascade saved with (*Cascade).Save.
	LoadCascade = dnn.LoadCascade
	// NewEnsemble combines detectors under a vote rule.
	NewEnsemble = core.NewEnsemble
	// Incidents folds a decision time-line into alarm episodes.
	Incidents = core.Incidents
	// MergeIncidents joins episodes separated by short gaps.
	MergeIncidents = core.MergeIncidents
)

// Detector state management (live serving support).
type (
	// Resetter is implemented by detectors whose state can be cleared in
	// place (e.g. after a VM migration invalidates history).
	Resetter = core.Resetter
	// Snapshotter is implemented by detectors exposing internal state for
	// inspection.
	Snapshotter = core.Snapshotter
)

var (
	// ResetDetector clears a detector's state if it supports Reset.
	ResetDetector = core.ResetDetector
	// SnapshotDetector returns a detector's state snapshot, or nil.
	SnapshotDetector = core.SnapshotDetector
)

// Always-on streaming detection service (internal/stream, served by
// cmd/memdosd).
type (
	// StreamHub is the multi-tenant streaming detection hub.
	StreamHub = stream.Hub
	// StreamConfig configures a hub.
	StreamConfig = stream.Config
	// StreamPolicy is the full-queue backpressure policy.
	StreamPolicy = stream.Policy
	// StreamSessionInfo is a point-in-time view of one session.
	StreamSessionInfo = stream.SessionInfo
	// AlarmEvent is one alarm raise/clear delivered to subscribers.
	AlarmEvent = stream.AlarmEvent
	// IngestRequest is the wire form of a batched ingest call.
	IngestRequest = stream.IngestRequest
	// IngestBatch is one session's samples within an IngestRequest.
	IngestBatch = stream.IngestBatch
)

// Full-queue policies.
const (
	// StreamDropNewest drops incoming samples when a session queue is full.
	StreamDropNewest = stream.DropNewest
	// StreamBlock applies backpressure to the producer instead.
	StreamBlock = stream.Block
)

var (
	// NewStreamHub builds a streaming hub and starts its worker shards.
	NewStreamHub = stream.NewHub
	// DefaultStreamConfig returns serving defaults.
	DefaultStreamConfig = stream.DefaultConfig
	// DecodeIngest parses and validates a JSON ingest request body.
	DecodeIngest = stream.DecodeIngest
	// AcquireIngestRequest returns a pooled request for DecodeIngestInto.
	AcquireIngestRequest = stream.AcquireIngestRequest
	// DecodeIngestInto parses an ingest body into a reused request.
	DecodeIngestInto = stream.DecodeIngestInto
	// ReleaseIngestRequest recycles a request from AcquireIngestRequest.
	ReleaseIngestRequest = stream.ReleaseIngestRequest
)

// Fleet-scale binary ingest wire format (pcm frames carried by
// POST /v1/ingest/stream; see DESIGN.md §7b).
var (
	// AppendBatch encodes one session's batch as a length-prefixed
	// binary frame appended to dst.
	AppendBatch = pcm.AppendBatch
	// DecodeBatchInto decodes one frame body into a reused sample slice
	// with zero allocations.
	DecodeBatchInto = pcm.DecodeBatchInto
	// NewFrameReader reads length-prefixed frames off a stream into one
	// reused buffer.
	NewFrameReader = pcm.NewFrameReader
	// ReadGCStats snapshots the runtime's GC pause/cycle counters.
	ReadGCStats = metrics.ReadGCStats
)

// FrameReader reads length-prefixed binary ingest frames.
type FrameReader = pcm.FrameReader

// GCStats is a snapshot of the runtime's GC accounting.
type GCStats = metrics.GCStats

// NewDaemonServer assembles memdosd's HTTP serving layer (JSON +
// binary-streaming ingest, session API, metrics) around a hub and an
// optional mitigation engine.
var NewDaemonServer = daemon.New

// DaemonServer is memdosd's HTTP serving layer.
type DaemonServer = daemon.Server

// Closed-loop mitigation (internal/respond): the policy engine that
// turns stream alarms into graduated, reversible hypervisor actions.
type (
	// RespondEngine escalates suspect VMs through the mitigation ladder
	// (throttle steps, cache partition, migration) and backs off with
	// hysteresis.
	RespondEngine = respond.Engine
	// RespondConfig parameterizes the ladder and its timing.
	RespondConfig = respond.Config
	// RespondActuator applies mitigation to a hypervisor.
	RespondActuator = respond.Actuator
	// RespondSessionState is one session's mitigation state.
	RespondSessionState = respond.SessionState
	// RespondAction is one recorded policy transition.
	RespondAction = respond.Action
	// RespondLogActuator records would-be actions instead of applying
	// them (memdosd stand-alone mode).
	RespondLogActuator = respond.LogActuator
	// RespondMigrateResult reports where an actuator migrated a victim.
	RespondMigrateResult = respond.MigrateResult
)

// RespondForceNone unpins an operator-forced mitigation level.
const RespondForceNone = respond.ForceNone

// Recorded mitigation action kinds (RespondAction.Action values).
const (
	// RespondActionThrottle is an execution-throttle rung.
	RespondActionThrottle = respond.ActionThrottle
	// RespondActionBandwidth is the MemGuard-style DRAM bandwidth-budget
	// rung (requires RespondConfig.EnableBandwidth).
	RespondActionBandwidth = respond.ActionBandwidth
	// RespondActionPartition is the cache-partition rung.
	RespondActionPartition = respond.ActionPartition
	// RespondActionMigrate is the terminal migration rung.
	RespondActionMigrate = respond.ActionMigrate
	// RespondActionRelease is a hysteresis-driven back-off.
	RespondActionRelease = respond.ActionRelease
)

var (
	// NewRespondEngine builds a mitigation engine over an actuator.
	NewRespondEngine = respond.New
	// DefaultRespondConfig is the conservative default ladder.
	DefaultRespondConfig = respond.DefaultConfig
	// AttachRespond pumps a hub's alarm feed into an engine.
	AttachRespond = respond.Attach
	// NewRespondLogActuator builds a recording actuator.
	NewRespondLogActuator = respond.NewLogActuator
)

// Simulated testbed (substrates).
type (
	// Server is the simulated physical machine (hypervisor + VMs).
	Server = vmm.Server
	// ServerConfig configures a Server.
	ServerConfig = vmm.Config
	// VM is one virtual machine.
	VM = vmm.VM
	// ServerStep is one simulation step's completed PCM samples.
	ServerStep = vmm.StepResult
	// Sample is one PCM counter observation.
	Sample = pcm.Sample
	// WorkloadSpec statically describes an application model.
	WorkloadSpec = workload.Spec
	// Attacker is a configured attack program.
	Attacker = attack.Attacker
	// AttackSchedule decides when the attack is enabled.
	AttackSchedule = attack.Schedule
	// NUMAConfig parameterizes the DRAM memory-controller model
	// (ServerConfig.Mem; nil keeps the legacy LLC-only server).
	NUMAConfig = mem.NUMAConfig
	// MemController is the standalone DRAM memory-controller model.
	MemController = mem.Controller
	// MemStats is one owner's cumulative delivered-DRAM view.
	MemStats = mem.Stats
)

// Testbed constructors and registries.
var (
	// NewServer builds a simulated server.
	NewServer = vmm.NewServer
	// DefaultServerConfig matches the paper's testbed (T_PCM = 0.01 s).
	DefaultServerConfig = vmm.DefaultConfig
	// Workloads returns the ten application models of Table II.
	Workloads = workload.All
	// WorkloadByAbbrev resolves a Table II abbreviation.
	WorkloadByAbbrev = workload.ByAbbrev
	// NewBusLockAttack builds the atomic bus locking attacker.
	NewBusLockAttack = attack.NewBusLock
	// NewLLCCleansingAttack builds the LLC cleansing attacker.
	NewLLCCleansingAttack = attack.NewLLCCleansing
	// NewMemBandwidthAttack builds the DRAM bandwidth-hog attacker
	// (requires a server configured with a NUMAConfig).
	NewMemBandwidthAttack = attack.NewMemBandwidth
	// NewAdaptiveSchedule builds the Scenario 2 on/off schedule.
	NewAdaptiveSchedule = attack.NewAdaptive
	// DefaultNUMAConfig returns the reference DRAM topology for a socket
	// count (two 12.8 GB/s channels per socket).
	DefaultNUMAConfig = mem.DefaultNUMAConfig
	// NewMemController builds a standalone DRAM memory-controller model.
	NewMemController = mem.New
)

// Attack schedule values.
type (
	// AttackWindow enables the attack during [Start, End).
	AttackWindow = attack.Window
	// AlwaysAttack keeps the attack enabled.
	AlwaysAttack = attack.Always
	// NeverAttack disables the attack.
	NeverAttack = attack.Never
)

// Multi-host datacenter (internal/cluster): many simulated servers in
// deterministic lockstep, with placement scheduling, attacker co-location
// strategies, and real VM migration as the respond ladder's last rung.
type (
	// Cluster is the simulated multi-host datacenter.
	Cluster = cluster.Cluster
	// ClusterConfig sizes and parameterizes a cluster.
	ClusterConfig = cluster.Config
	// ClusterResult summarizes one cluster run.
	ClusterResult = cluster.Result
	// SchedulerPolicy selects how the cluster places and evacuates VMs.
	SchedulerPolicy = cluster.SchedulerPolicy
	// AttackerPolicy selects the attackers' co-location strategy.
	AttackerPolicy = cluster.AttackerPolicy
	// ClusterStudySpec sizes the placement x scheduling study.
	ClusterStudySpec = experiments.ClusterStudySpec
	// ClusterStudyResult is the study's full policy grid.
	ClusterStudyResult = experiments.ClusterStudyResult
	// ClusterCell is one policy combination's outcome.
	ClusterCell = experiments.ClusterCell
)

// Scheduler and attacker placement policies.
const (
	// ScheduleRoundRobin rotates new VMs across hosts.
	ScheduleRoundRobin = cluster.RoundRobin
	// ScheduleBinPack consolidates onto the fewest hosts under a cap.
	ScheduleBinPack = cluster.BinPack
	// ScheduleSpread places on the least-contended host by observed speed.
	ScheduleSpread = cluster.Spread
	// PlaceAttackersRandom lets attackers land like any other VM.
	PlaceAttackersRandom = cluster.AttackRandom
	// PlaceAttackersTargeted re-co-locates attackers with their victims.
	PlaceAttackersTargeted = cluster.AttackTargeted
	// PlaceAttackersChurn relocates attackers on a fixed period.
	PlaceAttackersChurn = cluster.AttackChurn
)

var (
	// NewCluster builds a multi-host datacenter simulation.
	NewCluster = cluster.New
	// DefaultClusterConfig returns a small deterministic cluster.
	DefaultClusterConfig = cluster.DefaultConfig
	// ClusterStudy runs the attacker-placement x scheduler-policy grid.
	ClusterStudy = experiments.ClusterStudy
	// DefaultClusterStudySpec sizes a small-but-meaningful study.
	DefaultClusterStudySpec = experiments.DefaultClusterStudySpec
)

// DNN stack (Section V).
type (
	// Cascade is the two-stage LSTM-FCN classifier of Fig. 10.
	Cascade = dnn.Cascade
	// CascadeSample is one labelled training window.
	CascadeSample = dnn.CascadeSample
	// TrainConfig controls training.
	TrainConfig = dnn.TrainConfig
)

// DNN constructors.
var (
	// NewCascade builds an untrained cascade.
	NewCascade = dnn.NewCascade
	// SetDNNKernelWorkers sets the worker count of the DNN stack's
	// tile-parallel GEMM kernels and returns the previous value. Any
	// value produces byte-identical results; workers only change wall
	// time.
	SetDNNKernelWorkers = dnn.SetKernelWorkers
	// TrainCascadeModel fits a cascade on labelled windows.
	TrainCascadeModel = dnn.TrainCascade
	// PaperLSTMFCNConfig is the paper's full-size architecture.
	PaperLSTMFCNConfig = dnn.PaperLSTMFCNConfig
	// CompactLSTMFCNConfig is the CPU-scale architecture.
	CompactLSTMFCNConfig = dnn.CompactLSTMFCNConfig
	// DefaultDNNTrainConfig returns CPU-friendly training settings.
	DefaultDNNTrainConfig = dnn.DefaultTrainConfig
)

// Evaluation (Section VI).
type (
	// Confusion is a binary confusion matrix.
	Confusion = metrics.Confusion
	// Interval is a ground-truth attack span.
	Interval = metrics.Interval
	// RunSpec describes one experiment run.
	RunSpec = experiments.RunSpec
	// RunResult is one run's decisions, truth and counter traces.
	RunResult = experiments.RunResult
	// Accuracy is a scored decision time-line.
	Accuracy = experiments.Accuracy
	// AttackMode selects the attack for a run.
	AttackMode = experiments.AttackMode
	// ExperimentEnv hands detector factories the run environment.
	ExperimentEnv = experiments.Env
	// DetectorFactory builds a detector for a concrete run.
	DetectorFactory = experiments.DetectorFactory
	// ClosedLoopSpec configures the closed-loop mitigation study.
	ClosedLoopSpec = experiments.ClosedLoopSpec
	// ClosedLoopResult reports recovered performance under mitigation.
	ClosedLoopResult = experiments.ClosedLoopResult
	// BandwidthSpec sizes the DRAM bandwidth-hog study.
	BandwidthSpec = experiments.BandwidthSpec
	// BandwidthResult is the study's detection matrix + closed loops.
	BandwidthResult = experiments.BandwidthResult
	// BandwidthCell is one (topology, placement, detector) score.
	BandwidthCell = experiments.BandwidthCell
	// BandwidthLoop is one placement's three closed-loop ladder variants.
	BandwidthLoop = experiments.BandwidthLoop
)

// Attack modes for RunSpec.
const (
	NoAttack     = experiments.NoAttack
	BusLock      = experiments.BusLock
	LLCCleansing = experiments.Cleansing
	MemBandwidth = experiments.MemBW
)

// Experiment harness entry points.
var (
	// RunExperiment executes one configured run.
	RunExperiment = experiments.Run
	// DefaultRunSpec builds a Scenario 1 run.
	DefaultRunSpec = experiments.DefaultRunSpec
	// ProfileApplication profiles an app on a clean server.
	ProfileApplication = experiments.ProfileApp
	// ScoreRun scores one detector's output against ground truth.
	ScoreRun = experiments.Score
	// Evaluate scores a decision time-line directly.
	Evaluate = metrics.Evaluate
	// DetectionDelay extracts per-attack detection delays.
	DetectionDelay = metrics.DetectionDelay
	// SDSDetectorFactory builds SDS for an experiment run.
	SDSDetectorFactory = experiments.SDSFactory
	// KSDetectorFactory builds the KStest baseline wired to throttling.
	KSDetectorFactory = experiments.KSFactory
	// DNNDetectorFactory builds the DNN detector (trains the shared
	// cascade on first use).
	DNNDetectorFactory = experiments.DNNFactory
	// CompareDetectors reproduces the Figs. 11-16 comparisons.
	CompareDetectors = experiments.CompareDetectors
	// MigrationStudy quantifies why migration alone cannot defeat the
	// attacks (Section II).
	MigrationStudy = experiments.MigrationStudy
	// ClosedLoopStudy runs attacker + victim with the respond engine in
	// the loop and reports the victim's recovered performance.
	ClosedLoopStudy = experiments.ClosedLoop
	// DefaultClosedLoopSpec configures the study for one app and attack.
	DefaultClosedLoopSpec = experiments.DefaultClosedLoopSpec
	// BandwidthStudy runs the DRAM bandwidth-hog study: detector scoring
	// plus the closed loop with the membw-limit rung, on 1- and
	// multi-socket NUMA topologies.
	BandwidthStudy = experiments.BandwidthStudy
	// DefaultBandwidthSpec sizes the study for one application.
	DefaultBandwidthSpec = experiments.DefaultBandwidthSpec
	// ContainerStudy runs the Section VIII serverless future-work
	// scenario.
	ContainerStudy = experiments.ContainerStudy
	// ReplayDetector re-runs a detector over a recorded counter trace.
	ReplayDetector = experiments.Replay
)

// Container substrate (Section VIII future work).
type (
	// ContainerPlatform is a container host with function churn.
	ContainerPlatform = container.Platform
	// FunctionSpec describes one deployed function.
	FunctionSpec = container.FunctionSpec
)

// Container constructors.
var (
	// NewContainerPlatform builds a container host.
	NewContainerPlatform = container.NewPlatform
	// DefaultContainerConfig mirrors the VM testbed parameters.
	DefaultContainerConfig = container.DefaultConfig
	// NewWorkloadBuilder starts a custom application spec.
	NewWorkloadBuilder = workload.NewBuilder
)
