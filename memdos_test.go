// Integration tests of the public façade: the API a downstream user sees,
// exercised end to end (profile -> attack -> detect -> score).
package memdos_test

import (
	"math"
	"testing"

	"memdos"
)

func TestPublicQuickstartFlow(t *testing.T) {
	params := memdos.DefaultParams()
	profile, err := memdos.ProfileApplication("KM", 300, params)
	if err != nil {
		t.Fatal(err)
	}

	cfg := memdos.DefaultServerConfig()
	cfg.Seed = 42
	srv, err := memdos.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	appSpec, err := memdos.WorkloadByAbbrev("KM")
	if err != nil {
		t.Fatal(err)
	}
	victim, err := srv.AddApp("victim", appSpec.Service())
	if err != nil {
		t.Fatal(err)
	}
	atk, err := memdos.NewBusLockAttack(memdos.AttackWindow{Start: 120, End: 300}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddAttacker("attacker", atk); err != nil {
		t.Fatal(err)
	}

	det, err := memdos.NewSDS(profile, params)
	if err != nil {
		t.Fatal(err)
	}
	var decisions []memdos.Decision
	srv.RunUntil(300, func(step memdos.ServerStep) {
		if s, ok := step.Samples[victim.ID()]; ok {
			decisions = append(decisions, det.Push(s)...)
		}
	})

	truth := []memdos.Interval{{Start: 120, End: 300}}
	conf := memdos.Evaluate(decisions, truth, 30)
	if conf.Recall() < 0.95 || conf.Specificity() < 0.9 {
		t.Errorf("quickstart accuracy: %v", conf)
	}
	delays := memdos.DetectionDelay(decisions, truth)
	if math.IsNaN(delays[0]) || delays[0] > 30 {
		t.Errorf("quickstart delay = %v", delays[0])
	}
}

func TestPublicExperimentHarness(t *testing.T) {
	params := memdos.DefaultParams()
	spec := memdos.DefaultRunSpec("TS", memdos.LLCCleansing, 3)
	res, err := memdos.RunExperiment(spec, params, map[string]memdos.DetectorFactory{
		"SDS": memdos.SDSDetectorFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := memdos.ScoreRun(res, "SDS", 30)
	if a.Recall < 0.9 || a.Specificity < 0.9 {
		t.Errorf("harness accuracy: %+v", a)
	}
}

func TestPublicWorkloadRegistry(t *testing.T) {
	if got := len(memdos.Workloads()); got != 10 {
		t.Errorf("registry size = %d", got)
	}
	if _, err := memdos.WorkloadByAbbrev("NOPE"); err == nil {
		t.Error("unknown abbrev accepted")
	}
}

func TestPublicMigrationStudy(t *testing.T) {
	res, err := memdos.MigrationStudy("KM", 60, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Error("no migrations triggered")
	}
}

func TestPublicSDSU(t *testing.T) {
	det, err := memdos.NewSDSU(func() float64 { return 1 }, memdos.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if det.Name() != "SDS/U" {
		t.Error("façade SDSU broken")
	}
}
