package analysis

// SARIF 2.1.0 output for memdos-vet (-format sarif): the interchange
// format GitHub code scanning ingests, so findings surface as inline PR
// annotations. Only the subset of the schema the upload path needs is
// emitted. Active findings are error-level results; suppressed findings
// are carried with an inSource suppression so the dashboard shows the
// audit trail; stale //memdos:ignore entries are warning-level results
// under the staleignore rule.

// SARIFLog is the document root.
type SARIFLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []SARIFRun `json:"runs"`
}

type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

type SARIFDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Version        string      `json:"version,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

type SARIFRule struct {
	ID               string            `json:"id"`
	ShortDescription SARIFMessage      `json:"shortDescription"`
	Properties       map[string]string `json:"properties,omitempty"`
}

type SARIFResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      SARIFMessage       `json:"message"`
	Locations    []SARIFLocation    `json:"locations"`
	Suppressions []SARIFSuppression `json:"suppressions,omitempty"`
}

type SARIFMessage struct {
	Text string `json:"text"`
}

type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type SARIFSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// NewSARIF converts one run's results into a SARIF log. File paths are
// emitted as given; the CLI relativizes them first so the URIs match the
// repository layout GitHub anchors annotations to.
func NewSARIF(checks []*Checker, res Result) SARIFLog {
	rules := make([]SARIFRule, 0, len(checks)+1)
	for _, c := range checks {
		rules = append(rules, SARIFRule{ID: c.Name, ShortDescription: SARIFMessage{Text: c.Doc}})
	}
	rules = append(rules, SARIFRule{
		ID:               StaleCheck,
		ShortDescription: SARIFMessage{Text: "flag //memdos:ignore suppressions that no longer suppress anything"},
	})

	results := make([]SARIFResult, 0, len(res.Findings)+len(res.Suppressed)+len(res.Stale))
	for _, d := range res.Findings {
		results = append(results, sarifResult(d, "error", nil))
	}
	for _, d := range res.Stale {
		results = append(results, sarifResult(d, "warning", nil))
	}
	for _, d := range res.Suppressed {
		results = append(results, sarifResult(d, "note", []SARIFSuppression{{
			Kind:          "inSource",
			Justification: "//memdos:ignore " + d.Check,
		}}))
	}

	return SARIFLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []SARIFRun{{
			Tool: SARIFTool{Driver: SARIFDriver{
				Name:           "memdos-vet",
				InformationURI: "https://github.com/memdos/memdos",
				Version:        ReportVersion,
				Rules:          rules,
			}},
			Results: results,
		}},
	}
}

func sarifResult(d Diagnostic, level string, sup []SARIFSuppression) SARIFResult {
	return SARIFResult{
		RuleID:  d.Check,
		Level:   level,
		Message: SARIFMessage{Text: d.Message},
		Locations: []SARIFLocation{{
			PhysicalLocation: SARIFPhysicalLocation{
				ArtifactLocation: SARIFArtifactLocation{URI: d.File},
				Region:           SARIFRegion{StartLine: d.Line, StartColumn: d.Col},
			},
		}},
		Suppressions: sup,
	}
}
