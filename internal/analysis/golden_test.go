package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"memdos/internal/analysis"
)

// goldenPackages pairs each testdata corpus with the -checks selection
// its markers were written against ("" = the full default suite). The
// staleignore corpus runs the full suite because the stale audit is not
// a selectable checker — it rides along with every run.
var goldenPackages = []struct {
	dir    string
	checks string
}{
	{"determinism", "determinism"},
	{"maporder", "maporder"},
	{"floateq", "floateq"},
	{"metricname", "metricname"},
	{"lockcopy", "lockcopy"},
	{"hotalloc", "hotalloc"},
	{"golife", "golife"},
	{"benchpin", "benchpin"},
	{"staleignore", ""},
}

// TestGolden diffs each checker's output over its golden package in
// testdata/ against the // want (active finding), // wantsup
// (suppressed finding) and // wantstale (stale-suppression audit)
// markers in the sources. Every marker must be hit exactly once and
// every diagnostic must be expected, so both false negatives and false
// positives fail, and suppression behavior (same-line and line-above
// //memdos:ignore forms) is pinned. Corpora without wantstale markers
// implicitly assert a clean stale audit.
func TestGolden(t *testing.T) {
	for _, g := range goldenPackages {
		t.Run(g.dir, func(t *testing.T) {
			pkgs, err := analysis.Load("", "memdos/internal/analysis/testdata/"+g.dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			checks, err := analysis.Select(g.checks)
			if err != nil {
				t.Fatal(err)
			}
			res := analysis.Run(pkgs, checks)
			exps := parseExpectations(t, pkgs[0].Dir)

			if len(res.Findings) == 0 {
				t.Error("no active findings: memdos-vet would exit 0 on this golden package")
			}
			matchDiagnostics(t, "finding", res.Findings, exps["want"])
			matchDiagnostics(t, "suppressed finding", res.Suppressed, exps["wantsup"])
			matchDiagnostics(t, "stale suppression", res.Stale, exps["wantstale"])
		})
	}
}

// TestTestdataFailsFullSuite pins the CI contract from the other side:
// the full default suite (what `memdos-vet <pkg>` runs) must report at
// least one active finding — i.e. exit nonzero — on every golden
// package.
func TestTestdataFailsFullSuite(t *testing.T) {
	for _, g := range goldenPackages {
		pkgs, err := analysis.Load("", "memdos/internal/analysis/testdata/"+g.dir)
		if err != nil {
			t.Fatal(err)
		}
		res := analysis.Run(pkgs, analysis.Checkers())
		if len(res.Findings) == 0 {
			t.Errorf("testdata/%s: full suite reports no findings; memdos-vet would exit 0", g.dir)
		}
	}
}

// TestSelectUnknownName pins the -checks typo experience: the error must
// name the bad check and list every valid one, including the v2
// checkers, so the user never has to guess at spellings.
func TestSelectUnknownName(t *testing.T) {
	_, err := analysis.Select("hotalloc,floateqq")
	if err == nil {
		t.Fatal("Select accepted an unknown check name")
	}
	for _, frag := range []string{`"floateqq"`, "determinism", "maporder", "floateq", "metricname", "lockcopy", "hotalloc", "golife", "benchpin"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("Select error %q does not mention %s", err, frag)
		}
	}
}

// TestRepoClean is the self-application gate: the full suite over the
// whole module must be finding-free, and every suppression must carry a
// justification beyond the bare check name.
func TestRepoClean(t *testing.T) {
	pkgs, err := analysis.Load("", "memdos/...")
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(pkgs, analysis.Checkers())
	for _, d := range res.Findings {
		t.Errorf("unexpected finding: %s", d)
	}
	for _, d := range res.Stale {
		t.Errorf("stale suppression: %s", d)
	}
	if len(res.Suppressed) == 0 {
		t.Error("expected justified suppressions in the repo, found none (did suppression matching break?)")
	}
}

// expectation is one parsed // want, // wantsup or // wantstale marker.
type expectation struct {
	file    string // base name
	line    int
	pattern *regexp.Regexp
	matched bool
}

var markerRE = regexp.MustCompile("// (want|wantsup|wantstale) `([^`]+)`")

// parseExpectations scans every .go file in dir for markers, keyed by
// marker kind.
func parseExpectations(t *testing.T, dir string) map[string][]*expectation {
	t.Helper()
	exps := map[string][]*expectation{"want": nil, "wantsup": nil, "wantstale": nil}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range markerRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad marker regexp %q: %v", e.Name(), i+1, m[2], err)
				}
				exps[m[1]] = append(exps[m[1]], &expectation{file: e.Name(), line: i + 1, pattern: re})
			}
		}
	}
	return exps
}

// matchDiagnostics pairs diagnostics with expectations one-to-one by
// (file, line, message-regexp) and reports both directions of mismatch.
func matchDiagnostics(t *testing.T, kind string, ds []analysis.Diagnostic, exps []*expectation) {
	t.Helper()
	for _, d := range ds {
		found := false
		for _, exp := range exps {
			if !exp.matched && exp.file == filepath.Base(d.File) && exp.line == d.Line && exp.pattern.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected %s: %s", kind, d)
		}
	}
	for _, exp := range exps {
		if !exp.matched {
			t.Errorf("missing %s at %s:%d matching %q", kind, exp.file, exp.line, exp.pattern)
		}
	}
}

// BenchmarkVetRepo times one full load-and-analyze pass over the whole
// module — the cost CI pays per memdos-vet run. It must stay in the
// single-digit seconds; the go list export-data path keeps it there.
func BenchmarkVetRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := analysis.Load("", "memdos/...")
		if err != nil {
			b.Fatal(err)
		}
		res := analysis.Run(pkgs, analysis.Checkers())
		if len(res.Findings) != 0 {
			b.Fatalf("repo not clean: %d findings (first: %s)", len(res.Findings), res.Findings[0])
		}
	}
}
