package analysis

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BenchPinChecker keeps the //memdos:hotpath annotation and its
// enforcement from drifting apart: every *annotated* function must be
// pinned by a regression gate that would catch an allocation creeping in.
// Two forms of pin are accepted:
//
//   - a zero-alloc test — a _test.go function in the same package that
//     calls testing.AllocsPerRun and references the hot function (by
//     name for functions, by selector for methods); or
//
//   - a bench-gate entry — the directive names it as bench=<name>, and
//     <name> must exist in the nearest BENCH_baseline.json (walking up
//     from the package directory), whose allocs/op regression gate CI
//     enforces via `memdos bench -baseline`.
//
// Functions merely *reached* from an annotated root inherit its pin and
// are not checked separately. Test files are parsed syntactically on
// demand (the loader only type-checks non-test sources); the reference
// match is by name, which is the documented, deliberately loose limit of
// the analysis.
func BenchPinChecker() *Checker {
	return &Checker{
		Name: "benchpin",
		Doc:  "require a zero-alloc test or bench-gate entry for every //memdos:hotpath function",
		Run:  runBenchPin,
	}
}

// BenchBaselineFile is the committed bench-gate document benchpin
// resolves bench=<name> pins against.
const BenchBaselineFile = "BENCH_baseline.json"

func runBenchPin(pass *Pass) {
	var annotated []*HotFunc
	for _, hf := range hotFuncs(pass.Pkg) {
		if hf.Annotated {
			annotated = append(annotated, hf)
		}
	}
	if len(annotated) == 0 {
		return
	}

	allocTested := allocTestedNames(pass.Pkg)
	var benchNames map[string]bool
	var benchErr string

	for _, hf := range annotated {
		if hf.Bench != "" {
			if benchNames == nil && benchErr == "" {
				benchNames, benchErr = loadBenchGate(pass.Pkg.Dir)
			}
			if benchErr != "" {
				pass.Reportf(hf.Pos, "hotpath %s pins bench=%s but %s", hf.Name, hf.Bench, benchErr)
				continue
			}
			if !benchNames[hf.Bench] {
				known := make([]string, 0, len(benchNames))
				for n := range benchNames {
					known = append(known, n)
				}
				sort.Strings(known)
				pass.Reportf(hf.Pos, "hotpath %s pins bench=%s, which is not a %s entry (have %s)",
					hf.Name, hf.Bench, BenchBaselineFile, strings.Join(known, ", "))
			}
			continue
		}
		if !allocTested[hf.Decl.Name.Name] {
			pass.Reportf(hf.Pos,
				"hotpath %s has no zero-alloc pin: no testing.AllocsPerRun test in the package references it and the directive names no bench= gate entry",
				hf.Name)
		}
	}
}

// allocTestedNames parses the package's _test.go files and returns the
// set of function/method names referenced inside test functions that
// call testing.AllocsPerRun (the reference may sit in a closure passed
// to AllocsPerRun or anywhere else in the same test).
func allocTestedNames(pkg *Package) map[string]bool {
	names := make(map[string]bool)
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		return names
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(pkg.Fset, filepath.Join(pkg.Dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			usesAllocsPerRun := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "AllocsPerRun" {
					usesAllocsPerRun = true
					return false
				}
				return true
			})
			if !usesAllocsPerRun {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					names[n.Name] = true
				case *ast.SelectorExpr:
					names[n.Sel.Name] = true
				}
				return true
			})
		}
	}
	return names
}

// loadBenchGate finds the nearest BENCH_baseline.json above dir and
// returns its benchmark names, or a diagnostic fragment on failure.
func loadBenchGate(dir string) (map[string]bool, string) {
	path := ""
	for d := dir; ; {
		cand := filepath.Join(d, BenchBaselineFile)
		if _, err := os.Stat(cand); err == nil {
			path = cand
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		// A go.mod marks the module root: the baseline lives at or below it.
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			break
		}
		d = parent
	}
	if path == "" {
		return nil, "no " + BenchBaselineFile + " exists between the package and the module root"
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, BenchBaselineFile + " is unreadable: " + err.Error()
	}
	var doc struct {
		Results []struct {
			Name string `json:"name"`
		} `json:"results"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, BenchBaselineFile + " is unparsable: " + err.Error()
	}
	names := make(map[string]bool, len(doc.Results))
	for _, r := range doc.Results {
		names[r.Name] = true
	}
	return names, ""
}
