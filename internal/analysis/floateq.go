package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqChecker flags == and != between floating-point operands
// outside _test.go files. Exact float comparison silently encodes an
// accumulation-order or rounding assumption — the failure mode that
// corrupts detector statistics without failing a test. Use an epsilon
// comparison (stats.ApproxEqual) or, where an exact bit-match is the
// intended semantics (sparsity fast paths, sentinel zeros), suppress
// with a justification.
func FloatEqChecker() *Checker {
	return &Checker{
		Name: "floateq",
		Doc:  "flag ==/!= between floating-point operands outside tests",
		Run:  runFloatEq,
	}
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloatExpr(be.X, info) || isFloatExpr(be.Y, info) {
				pass.Reportf(be.OpPos,
					"floating-point %s comparison; use stats.ApproxEqual (or justify exactness with //memdos:ignore floateq)",
					be.Op)
			}
			return true
		})
	}
}

func isFloatExpr(e ast.Expr, info *types.Info) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
