package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info carry full type-checking results.
	Types *types.Package
	Info  *types.Info
	// Deterministic marks packages bound by the determinism contract:
	// members of DeterministicPackages, or packages that opted in with a
	// //memdos:deterministic comment (used by analysis testdata).
	Deterministic bool
}

// DeterministicPackages is the contract list from DESIGN.md: the
// simulation core whose outputs must be bit-for-bit reproducible from a
// seed. The serving layer (stream, respond, metrics), the daemons and
// the CLIs legitimately read wall clocks and are exempt.
var DeterministicPackages = map[string]bool{
	"memdos/internal/attack":      true,
	"memdos/internal/bus":         true,
	"memdos/internal/cache":       true,
	"memdos/internal/cluster":     true,
	"memdos/internal/core":        true,
	"memdos/internal/dnn":         true,
	"memdos/internal/experiments": true,
	"memdos/internal/mem":         true,
	"memdos/internal/par":         true,
	"memdos/internal/pcm":         true,
	"memdos/internal/period":      true,
	"memdos/internal/sim":         true,
	"memdos/internal/stats":       true,
	"memdos/internal/vmm":         true,
	"memdos/internal/workload":    true,
}

// DeterministicPragma lets a package outside the built-in list opt into
// the determinism contract (analysis testdata packages use this).
const DeterministicPragma = "//memdos:deterministic"

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool (run in dir; "" = cwd),
// parses every matched package's non-test sources and type-checks them
// against compiler export data, so cross-package and stdlib types
// resolve exactly without re-checking dependencies from source. It
// shells out to `go list` once for the whole pattern set.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("analysis: go list %s: %s", strings.Join(patterns, " "), msg)
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:          t.ImportPath,
			Dir:           t.Dir,
			Fset:          fset,
			Files:         files,
			Types:         tpkg,
			Info:          info,
			Deterministic: DeterministicPackages[t.ImportPath] || hasPragma(files),
		})
	}
	return pkgs, nil
}

func hasPragma(files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == DeterministicPragma || strings.HasPrefix(c.Text, DeterministicPragma+" ") {
					return true
				}
			}
		}
	}
	return false
}
