// Package analysis is memdos-vet's static-analysis framework: a small,
// stdlib-only (go/ast + go/types) driver that runs project-specific
// checkers over type-checked packages and reports diagnostics.
//
// The checkers mechanically enforce the simulator's written contracts
// (see DESIGN.md "Determinism & analysis contract"): the deterministic
// core must not read wall clocks or the global math/rand source, must
// not let map iteration order leak into results, must not compare
// floats with ==, must register metrics under canonical memdos_* names,
// and must not copy locks or touch mutex-guarded fields unlocked.
//
// A finding can be suppressed where it is provably or deliberately
// benign with a justification comment on the flagged line or the line
// above it:
//
//	//memdos:ignore <check>[,<check>...] <why this is safe>
//
// Suppressions are counted and surfaced (memdos-vet -json) so they stay
// auditable rather than silent.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file position so editors and
// CI annotations can link straight to the offending line.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: [check] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Checker is one named analysis pass.
type Checker struct {
	// Name is the check ID used in -checks selection and ignore comments.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass hands one package to one checker and collects its diagnostics.
type Pass struct {
	// Check is the running checker's name; Reportf stamps it on findings.
	Check string
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Check:   p.Check,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Checkers returns the full suite in canonical order.
func Checkers() []*Checker {
	return []*Checker{
		DeterminismChecker(),
		MapOrderChecker(),
		FloatEqChecker(),
		MetricNameChecker(),
		LockCopyChecker(),
		HotAllocChecker(),
		GoLifeChecker(),
		BenchPinChecker(),
	}
}

// Select resolves comma-separated check names against the full suite.
func Select(names string) ([]*Checker, error) {
	all := Checkers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*Checker, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*Checker
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q (have %s)", n, strings.Join(checkNames(all), ", "))
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no checks selected from %q", names)
	}
	return out, nil
}

func checkNames(cs []*Checker) []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// Result is the outcome of running a checker suite over packages.
type Result struct {
	// Findings are the active diagnostics, sorted by position.
	Findings []Diagnostic
	// Suppressed are diagnostics neutralized by //memdos:ignore comments,
	// kept for auditing.
	Suppressed []Diagnostic
	// Stale are //memdos:ignore entries that suppressed nothing: entries
	// naming a checker that ran yet matched no diagnostic, or naming no
	// known checker at all. A suppression that outlives its finding is a
	// contract hole — memdos-vet reports it with exit status 2.
	Stale []Diagnostic
}

// StaleCheck is the pseudo-check name stale-suppression diagnostics are
// reported under. It is not selectable and cannot itself be ignored.
const StaleCheck = "staleignore"

// Run applies every checker to every package, resolves suppressions and
// returns position-sorted results. The output is deterministic for a
// given input regardless of checker-internal iteration order.
//
// After the checkers finish, every //memdos:ignore entry is audited:
// an entry for a checker that ran but suppressed nothing is stale (the
// finding it once justified is gone — delete the comment), and an entry
// naming no known checker is stale outright (it can never suppress
// anything). Entries for known checkers that did not run are left alone,
// so partial -checks runs never misreport live suppressions.
func Run(pkgs []*Package, checks []*Checker) Result {
	known := make(map[string]bool)
	for _, c := range Checkers() {
		known[c.Name] = true
	}
	selected := make(map[string]bool, len(checks))
	for _, c := range checks {
		selected[c.Name] = true
	}
	var res Result
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, c := range checks {
			pass := &Pass{Check: c.Name, Pkg: pkg}
			pass.report = func(d Diagnostic) {
				if ignores.covers(d) {
					res.Suppressed = append(res.Suppressed, d)
					return
				}
				res.Findings = append(res.Findings, d)
			}
			c.Run(pass)
		}
		res.Stale = append(res.Stale, ignores.stale(selected, known)...)
	}
	sortDiags(res.Findings)
	sortDiags(res.Suppressed)
	sortDiags(res.Stale)
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// IgnoreDirective is the comment prefix that suppresses findings.
const IgnoreDirective = "//memdos:ignore"

// ignoreEntry is one check name of one //memdos:ignore comment, with a
// usage bit so entries that suppress nothing can be reported stale.
type ignoreEntry struct {
	check string
	file  string
	line  int
	col   int
	used  bool
}

// ignoreIndex maps file -> line -> the ignore entries anchored there. A
// comment covers its own line and the line directly below it, so it can
// trail the flagged statement or sit on its own line above.
type ignoreIndex struct {
	byLine  map[string]map[int][]*ignoreEntry
	entries []*ignoreEntry // in source order, for the stale audit
}

func (ix *ignoreIndex) covers(d Diagnostic) bool {
	lines := ix.byLine[d.File]
	if lines == nil {
		return false
	}
	hit := false
	for _, ln := range [2]int{d.Line, d.Line - 1} {
		for _, e := range lines[ln] {
			if e.check == d.Check {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale returns diagnostics for entries that suppressed nothing: entries
// whose check ran (selected) yet matched no diagnostic, and entries
// naming no known checker at all.
func (ix *ignoreIndex) stale(selected, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range ix.entries {
		if e.used {
			continue
		}
		var msg string
		switch {
		case !known[e.check]:
			msg = fmt.Sprintf("suppression names unknown check %q; it can never suppress anything — fix or delete it", e.check)
		case selected[e.check]:
			msg = fmt.Sprintf("suppression for %s matches no finding; the justified code is gone — delete the comment", e.check)
		default:
			continue // the named checker did not run; cannot judge
		}
		out = append(out, Diagnostic{
			Check:   StaleCheck,
			File:    e.file,
			Line:    e.line,
			Col:     e.col,
			Message: msg,
		})
	}
	return out
}

func collectIgnores(pkg *Package) *ignoreIndex {
	ix := &ignoreIndex{byLine: make(map[string]map[int][]*ignoreEntry)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := ix.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*ignoreEntry)
					ix.byLine[pos.Filename] = lines
				}
				for _, check := range strings.Split(fields[0], ",") {
					e := &ignoreEntry{
						check: strings.TrimSpace(check),
						file:  pos.Filename,
						line:  pos.Line,
						col:   pos.Column,
					}
					lines[pos.Line] = append(lines[pos.Line], e)
					ix.entries = append(ix.entries, e)
				}
			}
		}
	}
	return ix
}

// isTestFile reports whether the position is inside a _test.go file.
// The loader only parses non-test sources, but checkers guard anyway so
// they stay correct if handed a test file directly.
func isTestFile(pkg *Package, f *ast.File) bool {
	return strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
}
