package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockCopyChecker enforces two mutex hygiene contracts:
//
//  1. lock copies — a value whose type (transitively, through struct
//     and array fields) carries Lock/Unlock methods must not be copied:
//     not passed or returned by value, not assigned from an existing
//     value, not produced by a range clause. A copied mutex guards
//     nothing.
//
//  2. guarded fields — a struct field annotated `// guarded by <mu>`
//     may only be touched inside a function that visibly locks <mu>
//     (calls <mu>.Lock or <mu>.RLock somewhere in its body, including
//     deferred pairs) or whose name ends in "Locked" (the convention
//     for helpers whose callers hold the lock). The analysis is
//     function-local and conservative by design: it cannot prove the
//     lock is held at the access, only that the function participates
//     in the locking discipline at all.
func LockCopyChecker() *Checker {
	return &Checker{
		Name: "lockcopy",
		Doc:  "flag by-value lock copies and guarded-field access outside locking functions",
		Run:  runLockCopy,
	}
}

func runLockCopy(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		checkLockCopies(pass, f)
	}
	checkGuardedFields(pass)
}

// ---- part 1: by-value lock copies ----

func checkLockCopies(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncType:
			checkFuncTypeLocks(pass, n)
		case *ast.FuncDecl:
			if n.Recv != nil {
				for _, field := range n.Recv.List {
					reportIfLockType(pass, field.Type, "method receiver")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true // multi-value from call: results are fresh values
			}
			for i, rhs := range n.Rhs {
				if isBlank(n.Lhs[i]) {
					continue // discarded: no second copy of the lock survives
				}
				reportIfLockCopy(pass, rhs, "assignment copies")
			}
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && (tv.IsBuiltin() || tv.IsType()) {
				return true
			}
			for _, arg := range n.Args {
				reportIfLockCopy(pass, arg, "call passes")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				reportIfLockCopy(pass, res, "return copies")
			}
		case *ast.RangeStmt:
			// The clause's value variable is a definition, so its type
			// lives in Info.Defs/Uses, not Info.Types — TypeOf checks all.
			if n.Value != nil && !isBlank(n.Value) {
				if t := info.TypeOf(n.Value); t != nil {
					if lock := lockKind(t); lock != "" {
						pass.Reportf(n.Value.Pos(), "range clause copies a value containing %s per iteration", lock)
					}
				}
			}
		}
		return true
	})
}

func checkFuncTypeLocks(pass *Pass, ft *ast.FuncType) {
	for _, field := range ft.Params.List {
		reportIfLockType(pass, field.Type, "parameter")
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			reportIfLockType(pass, field.Type, "result")
		}
	}
}

func reportIfLockType(pass *Pass, typeExpr ast.Expr, what string) {
	tv, ok := pass.Pkg.Info.Types[typeExpr]
	if !ok {
		return
	}
	if lock := lockKind(tv.Type); lock != "" {
		pass.Reportf(typeExpr.Pos(), "%s receives a value containing %s by value; pass a pointer", what, lock)
	}
}

func reportIfLockCopy(pass *Pass, e ast.Expr, how string) {
	if !isCopySource(e) {
		return
	}
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || !tv.IsValue() {
		return
	}
	if lock := lockKind(tv.Type); lock != "" {
		pass.Reportf(e.Pos(), "%s a value containing %s; use a pointer", how, lock)
	}
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isCopySource reports whether evaluating e yields a *pre-existing*
// value (so using it by value duplicates a lock someone may hold), as
// opposed to a fresh value from a composite literal or call.
func isCopySource(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return isCopySource(e.X)
	default:
		return false
	}
}

// lockKind returns the name of a Lock/Unlock-bearing type reachable
// by-value inside t ("" if none).
func lockKind(t types.Type) string {
	return lockKindRec(t, make(map[types.Type]bool))
}

func lockKindRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if hasLockMethods(t) {
		return typeString(t)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if k := lockKindRec(u.Field(i).Type(), seen); k != "" {
				return k
			}
		}
	case *types.Array:
		return lockKindRec(u.Elem(), seen)
	}
	return ""
}

func hasLockMethods(t types.Type) bool {
	if _, isPtr := t.(*types.Pointer); isPtr {
		return false // copying a pointer to a lock is fine
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	var lock, unlock bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Lock":
			lock = true
		case "Unlock":
			unlock = true
		}
	}
	return lock && unlock
}

// ---- part 2: guarded-field discipline ----

var guardedByRE = regexp.MustCompile(`(?i)guarded by (\w+)`)

// checkGuardedFields collects `// guarded by <mu>` field annotations
// and verifies every access goes through a function that locks <mu>.
func checkGuardedFields(pass *Pass) {
	info := pass.Pkg.Info
	guarded := make(map[types.Object]string) // field object -> mutex name
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // callers hold the lock by convention
			}
			locked := lockedMutexNames(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				mu, isGuarded := guarded[selection.Obj()]
				if !isGuarded || locked[mu] {
					return true
				}
				pass.Reportf(sel.Sel.Pos(),
					"%s accesses %s (guarded by %s) but never locks %s; lock it, rename the function *Locked, or justify with //memdos:ignore lockcopy",
					fd.Name.Name, selection.Obj().Name(), mu, mu)
				return true
			})
		}
	}
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedMutexNames returns the set of mutex field names on which the
// body calls Lock or RLock (directly or deferred).
func lockedMutexNames(body *ast.BlockStmt) map[string]bool {
	locked := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			locked[x.Name] = true
		case *ast.SelectorExpr:
			locked[x.Sel.Name] = true
		}
		return true
	})
	return locked
}
