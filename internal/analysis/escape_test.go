//go:build escapecheck

package analysis

// The escapecheck cross-check (run via `go test -tags escapecheck`):
// hotalloc's syntactic "this allocates" verdicts and the compiler's
// -gcflags=-m=2 escape analysis must agree line-for-line on the
// testdata/escape corpus. The corpus only contains constructs both
// views can see (everything escapes into package-level sinks), so the
// comparison runs in both directions: a compiler-reported heap
// allocation on a line hotalloc considers clean is a false negative in
// the checker; a hotalloc finding on a line the compiler proves
// allocation-free is a false positive. Either direction failing means
// the heuristics drifted from the real allocator and need fixing.

import (
	"path/filepath"
	"sort"
	"testing"
)

func TestHotAllocAgreesWithEscapeAnalysis(t *testing.T) {
	pkgs, err := Load("", "memdos/internal/analysis/testdata/escape")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	res := Run(pkgs, []*Checker{HotAllocChecker()})
	static := make(map[int]string)
	for _, d := range res.Findings {
		if filepath.Base(d.File) != "escape.go" {
			t.Fatalf("finding outside the corpus: %s", d)
		}
		static[d.Line] = d.Message
	}
	for _, d := range res.Suppressed {
		static[d.Line] = d.Message
	}

	sites, err := EscapeSites("", "memdos/internal/analysis/testdata/escape")
	if err != nil {
		t.Fatal(err)
	}
	compiler := make(map[int]string)
	for _, s := range sites {
		if filepath.Base(s.File) != "escape.go" {
			continue
		}
		compiler[s.Line] = s.Message
	}
	if len(compiler) == 0 {
		t.Fatal("compiler reported no escape sites; the -m=2 harness is broken")
	}

	for _, line := range sortedKeys(compiler) {
		if _, ok := static[line]; !ok {
			t.Errorf("escape.go:%d: compiler sees a heap allocation (%s) but hotalloc reports nothing — false negative",
				line, compiler[line])
		}
	}
	for _, line := range sortedKeys(static) {
		if _, ok := compiler[line]; !ok {
			t.Errorf("escape.go:%d: hotalloc reports %q but the compiler proves the line allocation-free — false positive",
				line, static[line])
		}
	}
}

func sortedKeys(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
