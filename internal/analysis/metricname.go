package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricNamePattern is the canonical shape of a memdos metric family
// name: the memdos_ namespace followed by lower_snake_case.
var MetricNamePattern = regexp.MustCompile(`^memdos_[a-z0-9_]+$`)

// metricRegisterMethods are the metrics.Registry constructors whose
// first argument is a metric family name.
var metricRegisterMethods = map[string]bool{
	"RegisterCounter":     true,
	"RegisterGauge":       true,
	"RegisterCounterFunc": true,
	"RegisterGaugeFunc":   true,
}

// MetricNameChecker verifies that every name handed to the metrics
// registry's Register* constructors is a compile-time string constant
// matching MetricNamePattern, so the /metrics namespace stays scrapable
// and greppable and can never be polluted by a runtime-built name.
func MetricNameChecker() *Checker {
	return &Checker{
		Name: "metricname",
		Doc:  "metric names passed to metrics.Registry constructors must be constants matching ^memdos_[a-z0-9_]+$",
		Run:  runMetricName,
	}
}

func runMetricName(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || !isRegistryConstructor(fn) {
				return true
			}
			arg := call.Args[0]
			tv, ok := info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name passed to %s is not a compile-time string constant; memdos-vet cannot audit the metric namespace",
					fn.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			if !MetricNamePattern.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"metric name %q does not match %s", name, MetricNamePattern)
			}
			return true
		})
	}
}

func isRegistryConstructor(fn *types.Func) bool {
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/metrics") {
		return false
	}
	if !metricRegisterMethods[fn.Name()] {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}
