package analysis

// This file is the shared infrastructure of the hot-path contract (see
// DESIGN.md "Hot-path & lifecycle contracts"): parsing the
// //memdos:hotpath function annotation and computing, per package, the
// set of functions bound by it — the annotated functions plus every
// same-package function they can reach through static calls, since an
// allocation in a callee is an allocation in the hot path.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPathDirective marks a function as allocation-free steady state:
//
//	//memdos:hotpath [bench=<gate-entry>] [free-text rationale]
//
// The directive goes in the function's doc comment. The optional
// bench=<name> key names the cmd/memdos bench-gate entry (a "name" in
// BENCH_baseline.json) whose allocs/op gate covers this function; without
// it, benchpin requires a testing.AllocsPerRun test in the package that
// references the function (see benchpin.go).
const HotPathDirective = "//memdos:hotpath"

// HotFunc is one function bound by the hot-path contract.
type HotFunc struct {
	// Decl is the function's declaration.
	Decl *ast.FuncDecl
	// Name is the display name ("Type.Method" or "Func").
	Name string
	// Annotated is true for functions carrying the directive themselves;
	// false for functions reached from one through intra-package calls.
	Annotated bool
	// Root is the display name of the annotated function this one was
	// reached from (== Name when Annotated).
	Root string
	// Bench is the bench=<name> value of the root's directive, "" if none.
	Bench string
	// Pos is where the directive (or for callees, the declaration) sits.
	Pos token.Pos
}

// funcDisplayName renders "Type.Method" for methods and "Func" otherwise.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver Type[T]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// hotPathAnnotation returns (found, bench) for fd's doc comment.
func hotPathAnnotation(fd *ast.FuncDecl) (bool, string) {
	if fd.Doc == nil {
		return false, ""
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, HotPathDirective)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		for _, f := range strings.Fields(rest) {
			if b, ok := strings.CutPrefix(f, "bench="); ok {
				return true, b
			}
		}
		return true, ""
	}
	return false, ""
}

// hotFuncs computes the package's hot set: annotated functions plus the
// same-package functions they reach through static calls (direct calls
// and method calls with a concrete receiver; calls through interfaces or
// function values are invisible to the propagation — the conservative,
// documented limit of the analysis). The result is sorted by position so
// downstream diagnostics are deterministic.
func hotFuncs(pkg *Package) []*HotFunc {
	// Map every function/method object to its declaration so calls
	// resolve to bodies.
	declOf := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				declOf[obj] = fd
			}
		}
	}

	byDecl := make(map[*ast.FuncDecl]*HotFunc)
	var queue []*HotFunc
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if ann, bench := hotPathAnnotation(fd); ann {
				name := funcDisplayName(fd)
				hf := &HotFunc{Decl: fd, Name: name, Annotated: true, Root: name, Bench: bench, Pos: fd.Pos()}
				byDecl[fd] = hf
				queue = append(queue, hf)
			}
		}
	}

	// BFS over intra-package static calls. An already-hot callee keeps
	// its first root (annotated status wins over reached status).
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		ast.Inspect(cur.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pkg.Info, call)
			if obj == nil {
				return true
			}
			fd, ok := declOf[obj]
			if !ok || byDecl[fd] != nil {
				return true
			}
			hf := &HotFunc{Decl: fd, Name: funcDisplayName(fd), Root: cur.Root, Bench: cur.Bench, Pos: fd.Pos()}
			byDecl[fd] = hf
			queue = append(queue, hf)
			return true
		})
	}

	out := make([]*HotFunc, 0, len(byDecl))
	for _, hf := range byDecl {
		out = append(out, hf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// calleeObject resolves the function or method object a call statically
// targets, or nil when the target is dynamic (function value, interface
// method) or a builtin/conversion.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fun]
		if ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			// Interface dispatch has no body to follow.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return sel.Obj()
		}
		// Package-qualified call (pkg.Func): only same-package decls are
		// in declOf, so resolving cross-package objects is harmless.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}
