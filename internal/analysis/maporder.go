package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrderChecker flags `for … range` over a map in deterministic
// packages, where Go's randomized iteration order can leak into
// results. A loop is exempt when its body provably cannot observe
// order: every statement writes through a map index, deletes a key, or
// accumulates into an integer (integer + and friends are commutative
// and associative even under wrap-around — float accumulation is NOT,
// which is exactly the bug class this check exists for).
//
// Loops whose order-insensitivity the analysis cannot see (e.g. keys
// collected into a slice that is sorted afterwards) carry a justified
// //memdos:ignore maporder comment.
func MapOrderChecker() *Checker {
	return &Checker{
		Name: "maporder",
		Doc:  "flag order-sensitive map iteration in deterministic packages",
		Run:  runMapOrder,
	}
}

func runMapOrder(pass *Pass) {
	if !pass.Pkg.Deterministic {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(rs.Body, info) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"iteration over map %s has randomized order that may leak into results; iterate sorted keys, or annotate //memdos:ignore maporder with why order cannot matter",
				typeString(tv.Type))
			return true
		})
	}
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// orderInsensitiveBody reports whether every statement in the loop body
// belongs to the conservative order-insensitive whitelist.
func orderInsensitiveBody(body *ast.BlockStmt, info *types.Info) bool {
	for _, stmt := range body.List {
		if !orderInsensitiveStmt(stmt, info) {
			return false
		}
	}
	return len(body.List) > 0
}

func orderInsensitiveStmt(stmt ast.Stmt, info *types.Info) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ASSIGN:
			// Plain assignment: order-blind only if every target is a
			// map entry (keyed writes commute across distinct keys; for
			// duplicate keys the last write wins identically).
			for _, lhs := range s.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					return false
				}
				tv, ok := info.Types[ix.X]
				if !ok {
					return false
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return false
				}
			}
			return true
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			// Commutative-and-associative accumulation, integers only.
			return len(s.Lhs) == 1 && isIntegerExpr(s.Lhs[0], info)
		default:
			return false
		}
	case *ast.IncDecStmt:
		return isIntegerExpr(s.X, info)
	case *ast.ExprStmt:
		// delete(m, k) commutes across iterations.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "delete"
	default:
		return false
	}
}

func isIntegerExpr(e ast.Expr, info *types.Info) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
