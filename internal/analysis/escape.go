package analysis

// The escape-analysis cross-check: hotalloc's AST heuristics decide
// "this construct allocates" syntactically, the compiler decides it for
// real. This file shells out to `go build -gcflags=-m=2` and parses the
// escape-analysis diagnostics, so a build-tag-gated test (escape_test.go)
// can diff the two views over the golden corpus — if the compiler sees a
// heap allocation on a hot line that hotalloc considers clean (or vice
// versa on the constructs hotalloc claims always allocate), the test
// fails and the heuristics get fixed instead of silently rotting.

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// EscapeSite is one compiler-reported heap allocation or heap move.
type EscapeSite struct {
	// File is the absolute path of the reporting position.
	File string
	// Line and Col anchor the allocation.
	Line, Col int
	// Message is the compiler's diagnostic text (e.g. "make([]int, n)
	// escapes to heap").
	Message string
}

// escapeLineRE matches `path:line:col: message` diagnostics.
var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// EscapeSites compiles the packages matched by patterns (resolved in
// dir; "" = cwd) with -gcflags=-m=2 and returns every "escapes to heap"
// / "moved to heap" site. The go tool caches compile diagnostics along
// with the artifact and replays them on cached builds, so repeated runs
// see the same output; -gcflags without a pattern prefix applies only to
// the packages named on the command line, keeping dependency noise out.
func EscapeSites(dir string, patterns ...string) ([]EscapeSite, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("analysis: EscapeSites needs package patterns")
	}
	args := append([]string{"build", "-gcflags=-m=2"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var sites []EscapeSite
	sc := bufio.NewScanner(&stderr)
	for sc.Scan() {
		m := escapeLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		file := m[1]
		if !filepath.IsAbs(file) {
			base := dir
			if base == "" {
				base = "."
			}
			file = filepath.Join(base, file)
		}
		sites = append(sites, EscapeSite{File: file, Line: line, Col: col, Message: msg})
	}
	return sites, nil
}
