// Package staleignore is golden-file input for the stale-suppression
// audit: a //memdos:ignore comment that suppresses nothing is itself a
// diagnostic (pseudo-check "staleignore", exit status 2). The package
// keeps one live finding and one live suppression so the audit's
// used/unused distinction is pinned, not just the unused half.
package staleignore

// Converged has the live finding the corpus needs to fail memdos-vet.
func Converged(prev, next float64) bool {
	return prev == next // want `floating-point == comparison`
}

// Sticky has a live suppression: the entry matches a finding, so the
// audit must not report it.
func Sticky(a, b float64) bool {
	return a == b //memdos:ignore floateq exact bit-match is the sentinel-zero semantics here // wantsup `floating-point == comparison`
}

// Quiet carries two dead suppressions: one whose check finds nothing on
// its line, one naming a check that does not exist.
func Quiet(x, y int) int {
	sum := x + y //memdos:ignore floateq this comparison was a float before the int refactor // wantstale `suppression for floateq matches no finding; the justified code is gone`
	gap := x - y //memdos:ignore nosuchcheck typo'd check name that can never match // wantstale `suppression names unknown check "nosuchcheck"`
	return sum * gap
}
