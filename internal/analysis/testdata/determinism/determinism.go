// Package determinism is golden-file input for the determinism check:
// wall-clock reads and the global math/rand source are forbidden in
// packages bound by the determinism contract.
//
//memdos:deterministic
package determinism

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock three different ways.
func Elapsed() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock in deterministic package determinism`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

// Roll draws from the shared global source.
func Roll() int {
	return rand.Intn(6) // want `math/rand\.Intn uses the global math/rand source in deterministic package determinism`
}

// Shuffle also hits the global source, via a different function.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle uses the global math/rand source`
}

// Seeded is fine: constructors of explicitly seeded generators are
// exempt, and methods on the resulting *rand.Rand are not package-level.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Durations shows that time's types and constants stay usable; only
// clock reads are forbidden.
func Durations(d time.Duration) float64 {
	return d.Seconds() + time.Second.Seconds()
}

// Justified keeps one wall-clock read alive with an audit trail.
func Justified() time.Time {
	return time.Now() //memdos:ignore determinism golden input for suppression behavior // wantsup `time\.Now reads the wall clock`
}
