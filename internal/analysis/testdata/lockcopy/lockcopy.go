// Package lockcopy is golden-file input for the lockcopy check: both
// halves — by-value copies of lock-bearing values, and access to
// `guarded by` fields from functions that never lock.
package lockcopy

import "sync"

// Guarded couples a mutex with the state it protects.
type Guarded struct {
	mu sync.Mutex
	// count is the number of hits. guarded by mu.
	count int
}

// Inc participates in the locking discipline.
func (g *Guarded) Inc() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.count++
}

// Peek reads the guarded field without ever locking.
func (g *Guarded) Peek() int {
	return g.count // want `Peek accesses count \(guarded by mu\) but never locks mu`
}

// countLocked is exempt by naming convention: callers hold the lock.
func (g *Guarded) countLocked() int {
	return g.count
}

// Sum drives the convention from the locking side.
func Sum(gs []*Guarded) int {
	total := 0
	for _, g := range gs {
		g.mu.Lock()
		total += g.countLocked()
		g.mu.Unlock()
	}
	return total
}

// Snapshot copies the whole struct — mutex state included: both the
// by-value result type and the dereferencing return are flagged.
func Snapshot(g *Guarded) Guarded { // want `result receives a value containing sync\.Mutex by value`
	return *g // want `return copies a value containing sync\.Mutex`
}

// ByValue smuggles a lock through a parameter.
func ByValue(g Guarded) int { // want `parameter receives a value containing sync\.Mutex by value`
	return 0
}

// Reassign duplicates an existing value holding a lock.
func Reassign(g *Guarded) {
	cp := *g // want `assignment copies a value containing sync\.Mutex`
	_ = cp
}

// RangeCopy copies one lock per iteration.
func RangeCopy(gs []Guarded) {
	for _, g := range gs { // want `range clause copies a value containing sync\.Mutex per iteration`
		_ = g
	}
}

// Fresh is exempt: composite literals are new values, and pointers to
// lock-bearing values copy freely.
func Fresh() *Guarded {
	g := Guarded{}
	return &g
}

// Racy tolerates a racy read on purpose, with an audit trail.
func Racy(g *Guarded) int {
	return g.count //memdos:ignore lockcopy golden input for suppression behavior // wantsup `Racy accesses count \(guarded by mu\)`
}
