// Package metricname is golden-file input for the metricname check:
// names handed to the metrics registry must be compile-time constants
// matching ^memdos_[a-z0-9_]+$.
package metricname

import (
	"fmt"

	"memdos/internal/metrics"
)

// goodName shows that named constants are resolved, not just literals.
const goodName = "memdos_testdata_ticks_total"

// Register exercises every outcome against one registry.
func Register(reg *metrics.Registry, c *metrics.Counter, g *metrics.Gauge, id int) {
	reg.RegisterCounter(goodName, "fine: constant, canonical shape", c)
	reg.RegisterGauge("memdos_testdata_depth", "fine: literal, canonical shape", g)

	reg.RegisterCounter("testdata_ticks_total", "missing namespace", c) // want `metric name "testdata_ticks_total" does not match`
	reg.RegisterGauge("memdos_Depth", "uppercase", g)                   // want `metric name "memdos_Depth" does not match`
	reg.RegisterCounterFunc("memdos-dashes", "bad separator", nil)      // want `metric name "memdos-dashes" does not match`

	reg.RegisterGaugeFunc(fmt.Sprintf("memdos_shard_%d", id), "runtime-built", nil) // want `metric name passed to RegisterGaugeFunc is not a compile-time string constant`

	reg.RegisterCounter("legacy_total", "grandfathered pre-namespace name", c) //memdos:ignore metricname golden input for suppression behavior // wantsup `metric name "legacy_total" does not match`
}
