// Package golife is golden-file input for the golife check: every
// spawned goroutine must be stoppable, teardown paths must not block
// forever, WaitGroup.Add must precede the go statement, and goroutines
// must not capture loop variables the loop clause assigns.
package golife

import "sync"

type pump struct {
	work chan int
	done chan struct{}
	wg   sync.WaitGroup
}

// Leak spawns a goroutine nothing can ever stop.
func (p *pump) Leak() {
	go func() { // want `goroutine loops forever with no shutdown path`
		n := 0
		for {
			n++
		}
	}()
}

// spin loops forever; only a blocking send, which is not a shutdown
// observation, sits in the loop.
func (p *pump) spin() {
	for {
		p.work <- 1
	}
}

// LeakNamed spawns a named same-package function with the same defect.
func (p *pump) LeakNamed() {
	go p.spin() // want `goroutine pump\.spin loops forever with no shutdown path`
}

// Run is clean: the select observes the done channel.
func (p *pump) Run() {
	go func() {
		for {
			select {
			case <-p.done:
				return
			case v := <-p.work:
				_ = v
			}
		}
	}()
}

// RunRange is clean: a channel range ends when the channel closes.
func (p *pump) RunRange() {
	go func() {
		for v := range p.work {
			_ = v
		}
	}()
}

// Close has the blocking-teardown defect: if the worker already exited,
// this send never completes.
func (p *pump) Close() {
	p.work <- 0 // want `channel send in shutdown path Close blocks forever`
	close(p.done)
}

// Stop is clean: the default clause gives the send an escape hatch.
func (p *pump) Stop() {
	select {
	case p.work <- 0:
	default:
	}
	close(p.done)
}

// Spawn has the Add/Wait race: by the time the goroutine runs Add, Wait
// may already have returned.
func (p *pump) Spawn() {
	go func() {
		p.wg.Add(1) // want `WaitGroup\.Add inside the spawned goroutine races Wait`
		defer p.wg.Done()
		<-p.done
	}()
	p.wg.Wait()
}

// Broadcast captures a range variable the loop clause assigns rather
// than declares — one shared cell across iterations in every Go version.
func (p *pump) Broadcast(keys []int) {
	var k int
	for _, k = range keys {
		go func() {
			p.work <- k // want `goroutine captures loop variable k`
		}()
	}
}

// Index has the same defect through a 3-clause loop mutating a variable
// declared outside it.
func (p *pump) Index(n int) {
	var i int
	for i = 0; i < n; i++ {
		go func() {
			p.work <- i // want `goroutine captures loop variable i`
		}()
	}
}

// IndexFresh is clean: := loop variables are per-iteration (Go >= 1.22).
func (p *pump) IndexFresh(n int) {
	for i := 0; i < n; i++ {
		go func() {
			p.work <- i
		}()
	}
}

// Forever documents a process-lifetime goroutine with the sanctioned
// justification.
func (p *pump) Forever() {
	go func() { //memdos:ignore golife process-lifetime metronome by design, reaped only at exit // wantsup `goroutine loops forever with no shutdown path`
		for {
			p.work <- 1
		}
	}()
}
