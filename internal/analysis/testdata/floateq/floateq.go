// Package floateq is golden-file input for the floateq check: exact
// ==/!= between floating-point operands outside tests.
package floateq

// Converged compares accumulated floats exactly — the classic
// rounding-order trap.
func Converged(prev, next float64) bool {
	return prev == next // want `floating-point == comparison`
}

// Changed flags float32 and != just the same.
func Changed(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

// MixedWidth flags when only one operand is floating-point after
// untyped conversion.
func MixedWidth(x float64) bool {
	return x == 1 // want `floating-point == comparison`
}

// IntsFine is exempt: integer equality is exact.
func IntsFine(a, b int) bool {
	return a == b
}

// OrderingFine is exempt: the check targets equality, not ordering.
func OrderingFine(a, b float64) bool {
	return a < b
}

// SentinelZero documents an intentional exact bit-pattern test.
func SentinelZero(x float64) bool {
	return x == 0 //memdos:ignore floateq zero is the untouched-sentinel bit pattern, never computed // wantsup `floating-point == comparison`
}

// PlateauWalk shows the standalone line-above suppression form: stored
// values are compared bit-identically, never recomputed.
func PlateauWalk(xs []float64) int {
	n := 0
	for i := 1; i < len(xs); i++ {
		//memdos:ignore floateq stored values compared bit-for-bit, never recomputed
		if xs[i] == xs[0] { // wantsup `floating-point == comparison`
			n++
		}
	}
	return n
}
