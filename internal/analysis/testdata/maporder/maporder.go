// Package maporder is golden-file input for the maporder check: map
// iteration in a deterministic package is flagged unless the loop body
// provably cannot observe iteration order.
//
//memdos:deterministic
package maporder

import "sort"

// SumFloats is the canonical bug: float accumulation is neither
// commutative nor associative, so randomized order leaks into the sum.
func SumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `iteration over map map\[string\]float64 has randomized order`
		total += v
	}
	return total
}

// Collect appends in iteration order, so the slice order is random.
func Collect(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `iteration over map map\[string\]int has randomized order`
		out = append(out, v)
	}
	return out
}

// CountInts is exempt: integer accumulation commutes even under
// wrap-around.
func CountInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert is exempt: every statement writes through a map index.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Clear is exempt: delete commutes across iterations.
func Clear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// SortedKeys collects then sorts; the analysis cannot see through the
// later sort, so the loop carries a justified suppression.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //memdos:ignore maporder keys are sorted on the next line before any use // wantsup `iteration over map map\[string\]int has randomized order`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
