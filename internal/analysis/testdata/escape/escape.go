// Package escape is the corpus for the escapecheck build-tag test: a
// set of constructs where hotalloc's syntactic verdict and the
// compiler's -gcflags=-m=2 escape analysis must agree line-for-line.
// Every construct here definitely heap-allocates (the results land in
// package-level sinks, so nothing can be proven stack-local), and the
// file deliberately avoids the constructs only one of the two views can
// see (string concatenation, append growth, cold error paths).
package escape

type box struct {
	vals []float64
	n    int
}

var (
	sinkAny    any
	sinkFloats []float64
	sinkBox    *box
	sinkFn     func() int
	sinkString string
)

// Definite heap-allocates on every line of its body.
//
//memdos:hotpath
func Definite(n int, b *box) {
	sinkFloats = make([]float64, n)
	sinkAny = n
	sinkBox = &box{n: n}
	sinkFn = b.length
}

func (b *box) length() int { return b.n }

// Convert exercises the allocating string conversion.
//
//memdos:hotpath
func Convert(bs []byte) {
	sinkString = string(bs)
}
