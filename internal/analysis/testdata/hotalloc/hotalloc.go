// Package hotalloc is golden-file input for the hotalloc check: heap-
// allocating constructs are forbidden in //memdos:hotpath functions and
// in the same-package functions they reach through static calls. Cold
// exits (panic arguments, error construction) are exempt by design, and
// amortized growth carries a //memdos:ignore hotalloc justification.
package hotalloc

import "fmt"

type counter struct {
	vals []float64
	sink any
	fn   func() int
}

// Grow is an annotated root; ensure below inherits the contract from it.
//
//memdos:hotpath
func (c *counter) Grow(n int) {
	c.vals = make([]float64, n) // want `make allocates in hotpath counter\.Grow`
	c.ensure(n)
	c.sink = n // want `assigning n boxes a int into an interface in hotpath counter\.Grow`
}

// ensure is never annotated itself: it is hot because Grow reaches it.
func (c *counter) ensure(n int) {
	grown := make([]float64, n) // want `make allocates in counter\.ensure \(reached from hotpath counter\.Grow\)`
	c.vals = grown
}

// Format exercises the fmt and string-building rules.
//
//memdos:hotpath
func Format(id int, buf []byte) []byte {
	s := fmt.Sprintf("vm-%d", id) // want `fmt\.Sprintf allocates in hotpath Format`
	name := "vm" + s              // want `string concatenation allocates in hotpath Format`
	buf = append(buf, name...)
	return buf
}

// Transform exercises closures and the diverging-append rule; the
// self-append in Format above stays legal.
//
//memdos:hotpath
func Transform(xs []float64) []float64 {
	scale := xs[0]
	double := func(v float64) float64 { return scale * v } // want `function literal allocates its closure in hotpath Transform`
	out := append(xs, 1)                                   // want `append result lands in out but grows xs in hotpath Transform`
	for i := range out {
		out[i] = double(out[i])
	}
	return out
}

// Index exercises the literal and new rules.
//
//memdos:hotpath
func Index(n int) int {
	idx := map[string]int{}    // want `map literal allocates in hotpath Index`
	weights := []float64{1, 2} // want `slice literal allocates its backing array in hotpath Index`
	pt := &counter{}           // want `&hotalloc\.counter literal allocates in hotpath Index`
	box := new(counter)        // want `new allocates in hotpath Index`
	idx["w"] = len(weights) + len(pt.vals) + len(box.vals) + n
	return idx["w"]
}

func sink(v any) { _ = v }

// Box exercises interface boxing at a call boundary; sink becomes hot
// by being reached.
//
//memdos:hotpath
func Box(n int) {
	sink(n) // want `passing n boxes a int into an interface in hotpath Box`
}

// Key exercises the allocating-conversion rule.
//
//memdos:hotpath
func Key(b []byte) string {
	return string(b) // want `conversion \[\]byte -> string copies its data in hotpath Key`
}

// AsAny exercises interface boxing at a return.
//
//memdos:hotpath
func AsAny(c counter) any {
	return c // want `returning c boxes a hotalloc\.counter into an interface in hotpath AsAny`
}

// Hook exercises the method-value rule.
//
//memdos:hotpath
func Hook(c *counter) {
	c.fn = c.length // want `method value c\.length allocates a bound closure in hotpath Hook`
}

func (c *counter) length() int { return len(c.vals) }

// Checked is clean: error construction and panic arguments are cold
// exits, and the self-append is the amortized caller-managed idiom.
//
//memdos:hotpath
func Checked(xs []float64, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("hotalloc: negative count %d", n)
	}
	if n > 1<<20 {
		panic(fmt.Sprintf("hotalloc: absurd count %d", n))
	}
	xs = append(xs, float64(n))
	return xs, nil
}

// Amortized shows the sanctioned escape hatch: a grow-once allocation
// with a justification that names the amortization argument.
//
//memdos:hotpath
func Amortized(c *counter, n int) {
	if cap(c.vals) < n {
		c.vals = make([]float64, n) //memdos:ignore hotalloc grow-once: capacity is kept across calls, so the steady state is allocation-free // wantsup `make allocates in hotpath Amortized`
	}
	c.vals = c.vals[:n]
}
