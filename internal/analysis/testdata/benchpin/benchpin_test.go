package benchpin

import "testing"

// TestTestedZeroAlloc is the zero-alloc pin for Tested: benchpin sees
// the AllocsPerRun call and the reference by name.
func TestTestedZeroAlloc(t *testing.T) {
	xs := []float64{1, 2, 3}
	if n := testing.AllocsPerRun(100, func() { _ = Tested(xs) }); n != 0 {
		t.Fatalf("Tested allocates %v/op", n)
	}
}
