// Package benchpin is golden-file input for the benchpin check: every
// annotated //memdos:hotpath function needs a pin that would catch an
// allocation creeping in — a testing.AllocsPerRun test in the package
// or a bench=<name> entry resolved against the nearest
// BENCH_baseline.json (a local one sits in this directory so the corpus
// is self-contained).
package benchpin

// Unpinned carries the contract but nothing enforces it.
//
//memdos:hotpath
func Unpinned(xs []float64) float64 { // want `hotpath Unpinned has no zero-alloc pin: no testing\.AllocsPerRun test in the package references it and the directive names no bench= gate entry`
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// BadGate names a gate entry the baseline does not have.
//
//memdos:hotpath bench=demo/missing
func BadGate() int { // want `hotpath BadGate pins bench=demo/missing, which is not a BENCH_baseline\.json entry \(have demo/covered\)`
	return 1
}

// Gated is pinned by the demo/covered allocs/op gate entry.
//
//memdos:hotpath bench=demo/covered
func Gated() int {
	return 2
}

// Tested is pinned by the AllocsPerRun test in benchpin_test.go.
//
//memdos:hotpath
func Tested(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// Waived documents why no pin exists; the justification keeps it
// auditable.
//
//memdos:hotpath
func Waived() int { //memdos:ignore benchpin exercised end-to-end by the daemon soak harness, which asserts zero steady-state allocations // wantsup `hotpath Waived has no zero-alloc pin`
	return 3
}
