package analysis_test

import (
	"encoding/json"
	"testing"

	"memdos/internal/analysis"
)

// TestReportSchema pins the memdos-vet/v1 JSON schema: key names, the
// version string, and the guarantee that findings/suppressed are
// arrays (never null) so consumers can index unconditionally.
func TestReportSchema(t *testing.T) {
	diag := analysis.Diagnostic{
		Check: "floateq", File: "x.go", Line: 3, Col: 9,
		Message: "floating-point == comparison",
	}
	rep := analysis.NewReport(nil, analysis.Checkers(), analysis.Result{
		Findings: []analysis.Diagnostic{diag},
	})

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"version", "checks", "packages", "findings", "suppressed", "stale"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report JSON missing %q key; got keys %v", key, keys(doc))
		}
	}
	if string(doc["suppressed"]) != "[]" {
		t.Errorf("empty suppressed list marshals as %s, want []", doc["suppressed"])
	}
	if string(doc["stale"]) != "[]" {
		t.Errorf("empty stale list marshals as %s, want []", doc["stale"])
	}

	var version string
	if err := json.Unmarshal(doc["version"], &version); err != nil {
		t.Fatal(err)
	}
	if version != analysis.ReportVersion {
		t.Errorf("version = %q, want %q", version, analysis.ReportVersion)
	}

	var checks []string
	if err := json.Unmarshal(doc["checks"], &checks); err != nil {
		t.Fatal(err)
	}
	want := []string{"determinism", "maporder", "floateq", "metricname", "lockcopy", "hotalloc", "golife", "benchpin"}
	if len(checks) != len(want) {
		t.Fatalf("checks = %v, want %v", checks, want)
	}
	for i := range want {
		if checks[i] != want[i] {
			t.Errorf("checks[%d] = %q, want %q", i, checks[i], want[i])
		}
	}

	var findings []map[string]json.RawMessage
	if err := json.Unmarshal(doc["findings"], &findings); err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %s, want one entry", doc["findings"])
	}
	for _, key := range []string{"check", "file", "line", "col", "message"} {
		if _, ok := findings[0][key]; !ok {
			t.Errorf("finding JSON missing %q key; got keys %v", key, keys(findings[0]))
		}
	}

	// Round-trip: the same document decodes back into an equal Report.
	var back analysis.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Findings) != 1 || back.Findings[0] != diag {
		t.Errorf("round-trip findings = %+v, want [%+v]", back.Findings, diag)
	}
}

func keys(m map[string]json.RawMessage) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
