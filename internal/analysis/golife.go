package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLifeChecker enforces the goroutine-lifecycle discipline of the
// serving layer (see DESIGN.md "Hot-path & lifecycle contracts"): every
// goroutine the code spawns must be stoppable, and the teardown paths
// that stop them must not deadlock. Four patterns are flagged:
//
//  1. no shutdown path — a go statement whose body (a function literal,
//     or a same-package function resolved statically) loops forever with
//     no select, channel receive, return or break inside the loop: such
//     a goroutine can never observe a close/done signal and leaks.
//
//  2. blocking send on a shutdown path — a bare channel send inside a
//     Close/Stop/Shutdown/Drain function blocks forever if the receiver
//     already exited; sends there must sit in a select (with a default
//     or a done case), or the path should close the channel instead.
//
//  3. WaitGroup.Add inside the spawned goroutine — Add racing Wait: by
//     the time the goroutine runs, Wait may already have returned. Add
//     belongs before the go statement.
//
//  4. shared loop-variable capture — a goroutine literal that captures a
//     range/for variable assigned (not declared) by the loop clause;
//     such variables are one shared cell across iterations in every Go
//     version (Go 1.22 per-iteration semantics only covers := forms).
//
// Like the lock discipline in lockcopy, the analysis is function-local
// and conservative: it proves participation in a shutdown protocol, not
// liveness. Goroutines whose lifetime is genuinely the process lifetime
// carry a //memdos:ignore golife justification.
func GoLifeChecker() *Checker {
	return &Checker{
		Name: "golife",
		Doc:  "flag unstoppable goroutines, blocking shutdown sends, in-goroutine WaitGroup.Add, shared loop-var capture",
		Run:  runGoLife,
	}
}

func runGoLife(pass *Pass) {
	declOf := packageFuncDecls(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStatements(pass, fd, declOf)
			if isShutdownFunc(fd.Name.Name) {
				checkShutdownSends(pass, fd)
			}
		}
	}
}

// packageFuncDecls maps function objects to declarations for resolving
// `go f()` spawns of named same-package functions.
func packageFuncDecls(pkg *Package) map[types.Object]*ast.FuncDecl {
	declOf := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pkg.Files {
		if isTestFile(pkg, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					declOf[obj] = fd
				}
			}
		}
	}
	return declOf
}

// checkGoStatements inspects every go statement in fd's body.
func checkGoStatements(pass *Pass, fd *ast.FuncDecl, declOf map[types.Object]*ast.FuncDecl) {
	// Track the loop stack so goroutine literals can be checked for
	// shared loop-variable capture.
	var loops []ast.Stmt
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case nil:
			return true
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			for _, child := range loopChildren(n.(ast.Stmt)) {
				ast.Inspect(child, visit)
			}
			loops = loops[:len(loops)-1]
			return false // children already walked
		case *ast.GoStmt:
			checkOneGo(pass, n, declOf, loops)
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// loopChildren returns the AST nodes under a for/range statement.
func loopChildren(s ast.Stmt) []ast.Node {
	var out []ast.Node
	switch s := s.(type) {
	case *ast.ForStmt:
		for _, n := range []ast.Node{s.Init, s.Cond, s.Post, s.Body} {
			if n != nil {
				out = append(out, n)
			}
		}
	case *ast.RangeStmt:
		// Key/Value idents need no lifecycle checks themselves.
		if s.X != nil {
			out = append(out, s.X)
		}
		out = append(out, s.Body)
	}
	return out
}

func checkOneGo(pass *Pass, g *ast.GoStmt, declOf map[types.Object]*ast.FuncDecl, loops []ast.Stmt) {
	info := pass.Pkg.Info

	// Resolve the spawned body: a literal, or a named same-package
	// function. Dynamic targets (interface methods, function values)
	// cannot be checked.
	var body *ast.BlockStmt
	var what string
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
		what = "goroutine"
		checkLoopVarCapture(pass, g, lit, loops)
		checkWaitGroupAdd(pass, lit)
	} else if obj := calleeObject(info, g.Call); obj != nil {
		if fd, ok := declOf[obj]; ok {
			body = fd.Body
			what = "goroutine " + funcDisplayName(fd)
		}
	}
	if body == nil {
		return
	}
	for _, loop := range endlessLoops(body) {
		if !loopHasShutdownPath(loop) {
			pass.Reportf(g.Pos(),
				"%s loops forever with no shutdown path (no select, channel receive, return, or break in the loop); give it a done channel or context",
				what)
			return // one finding per go statement is enough
		}
	}
}

// endlessLoops returns the for-loops in body with no condition (for {}).
// Nested function literals are someone else's goroutine problem and are
// not descended into.
func endlessLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil {
			out = append(out, f)
		}
		return true
	})
	return out
}

// loopHasShutdownPath reports whether the loop body contains a construct
// that can observe a stop signal or leave the loop: a select statement,
// a channel receive, a range over anything (channel ranges end on close;
// other ranges bound the pass), a return, or a break.
func loopHasShutdownPath(loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		}
		return !found
	})
	return found
}

// isShutdownFunc reports whether name is a teardown entry point.
func isShutdownFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range []string{"close", "stop", "shutdown", "drain"} {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

// checkShutdownSends flags bare channel sends in a shutdown function.
// Sends appearing as a select communication clause are fine: the select
// gives them an escape hatch (default or a competing done case).
func checkShutdownSends(pass *Pass, fd *ast.FuncDecl) {
	selectSends := make(map[*ast.SendStmt]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if comm, ok := clause.(*ast.CommClause); ok {
				if send, ok := comm.Comm.(*ast.SendStmt); ok {
					selectSends[send] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok || selectSends[send] {
			return true
		}
		pass.Reportf(send.Arrow,
			"channel send in shutdown path %s blocks forever if the receiver already exited; use a select (or close the channel) — or justify the rendezvous with //memdos:ignore golife",
			fd.Name.Name)
		return true
	})
}

// checkWaitGroupAdd flags wg.Add calls lexically inside the spawned
// goroutine literal.
func checkWaitGroupAdd(pass *Pass, lit *ast.FuncLit) {
	info := pass.Pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if t := info.TypeOf(sel.X); t != nil && isWaitGroup(t) {
			pass.Reportf(call.Pos(),
				"WaitGroup.Add inside the spawned goroutine races Wait; Add before the go statement")
		}
		return true
	})
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// checkLoopVarCapture flags references inside the goroutine literal to
// variables that an enclosing loop clause assigns (rather than declares):
// those stay one shared cell across iterations in every Go version.
func checkLoopVarCapture(pass *Pass, g *ast.GoStmt, lit *ast.FuncLit, loops []ast.Stmt) {
	info := pass.Pkg.Info
	shared := make(map[types.Object]bool)
	for _, loop := range loops {
		switch loop := loop.(type) {
		case *ast.RangeStmt:
			if loop.Tok == token.ASSIGN {
				for _, e := range []ast.Expr{loop.Key, loop.Value} {
					if id, ok := e.(*ast.Ident); ok && !isBlank(id) {
						if obj := info.Uses[id]; obj != nil {
							shared[obj] = true
						}
					}
				}
			}
		case *ast.ForStmt:
			// A 3-clause loop shares its variable only when the variable
			// outlives the statement (declared before it, mutated by Post).
			if loop.Post == nil {
				continue
			}
			ast.Inspect(loop.Post, func(n ast.Node) bool {
				var targets []ast.Expr
				switch n := n.(type) {
				case *ast.IncDecStmt:
					targets = []ast.Expr{n.X}
				case *ast.AssignStmt:
					targets = n.Lhs
				default:
					return true
				}
				for _, t := range targets {
					id, ok := t.(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Uses[id]
					if obj == nil {
						continue
					}
					// Declared by the loop's own Init => per-iteration
					// since Go 1.22; declared outside => shared.
					if obj.Pos() < loop.Pos() || obj.Pos() > loop.End() {
						shared[obj] = true
					}
				}
				return true
			})
		}
	}
	if len(shared) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil && shared[obj] {
			pass.Reportf(id.Pos(),
				"goroutine captures loop variable %s, one shared cell across iterations (assigned, not declared, by the loop clause); pass it as an argument",
				id.Name)
			shared[obj] = false // one finding per variable per goroutine
		}
		return true
	})
}
