package analysis_test

import (
	"encoding/json"
	"testing"

	"memdos/internal/analysis"
)

// TestSARIFSchema pins the shape GitHub code scanning ingests: one run,
// a driver with one rule per checker plus the staleignore pseudo-rule,
// error-level results for findings, warning-level for stale
// suppressions, and note-level results carrying an inSource suppression
// for justified ignores.
func TestSARIFSchema(t *testing.T) {
	find := analysis.Diagnostic{Check: "hotalloc", File: "a.go", Line: 3, Col: 9, Message: "make allocates"}
	sup := analysis.Diagnostic{Check: "golife", File: "b.go", Line: 7, Col: 2, Message: "goroutine loops forever"}
	stale := analysis.Diagnostic{Check: analysis.StaleCheck, File: "c.go", Line: 1, Col: 5, Message: "suppression matches no finding"}

	log := analysis.NewSARIF(analysis.Checkers(), analysis.Result{
		Findings:   []analysis.Diagnostic{find},
		Suppressed: []analysis.Diagnostic{sup},
		Stale:      []analysis.Diagnostic{stale},
	})

	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "memdos-vet" {
		t.Errorf("driver name = %q, want memdos-vet", run.Tool.Driver.Name)
	}
	if want := len(analysis.Checkers()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d (every checker plus staleignore)", len(run.Tool.Driver.Rules), want)
	}

	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(run.Results))
	}
	byRule := make(map[string]analysis.SARIFResult)
	for _, r := range run.Results {
		byRule[r.RuleID] = r
	}
	if r := byRule["hotalloc"]; r.Level != "error" || len(r.Suppressions) != 0 {
		t.Errorf("finding result = %+v, want level error without suppressions", r)
	}
	if r := byRule[analysis.StaleCheck]; r.Level != "warning" {
		t.Errorf("stale result = %+v, want level warning", r)
	}
	r, ok := byRule["golife"]
	if !ok || r.Level != "note" || len(r.Suppressions) != 1 || r.Suppressions[0].Kind != "inSource" {
		t.Errorf("suppressed result = %+v, want level note with one inSource suppression", r)
	}
	if loc := r.Locations[0].PhysicalLocation; loc.ArtifactLocation.URI != "b.go" || loc.Region.StartLine != 7 {
		t.Errorf("suppressed location = %+v, want b.go:7", loc)
	}

	// The document must be valid JSON with the $schema key GitHub checks.
	raw, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"version", "$schema", "runs"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("SARIF JSON missing %q key", key)
		}
	}
}
