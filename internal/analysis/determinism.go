package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package functions that read or depend on
// the wall clock / OS timers. Types like time.Duration remain usable —
// only these calls make a deterministic package's output run-dependent.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// globalRandExempt are math/rand functions that do NOT touch the
// process-global source: constructors for explicitly seeded generators.
var globalRandExempt = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// DeterminismChecker forbids wall-clock reads (time.Now, time.Since, …)
// and the global math/rand source inside the deterministic core
// packages. Simulated time must come from internal/sim.Clock and
// randomness from a seeded internal/sim.RNG, so that every figure is
// reproducible bit-for-bit from its seed.
func DeterminismChecker() *Checker {
	return &Checker{
		Name: "determinism",
		Doc:  "forbid time.Now/time.Since and global math/rand in deterministic packages",
		Run:  runDeterminism,
	}
}

func runDeterminism(pass *Pass) {
	if !pass.Pkg.Deterministic {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"time.%s reads the wall clock in deterministic package %s; use the sim.Clock (or take the value as a parameter)",
						fn.Name(), pass.Pkg.Types.Name())
				}
			case "math/rand", "math/rand/v2":
				// Package-level functions draw from the shared global
				// source; methods on an explicitly constructed *rand.Rand
				// have a non-nil receiver and are not package-level.
				if fn.Type().(*types.Signature).Recv() == nil && !globalRandExempt[fn.Name()] {
					pass.Reportf(id.Pos(),
						"%s.%s uses the global math/rand source in deterministic package %s; use a seeded sim.RNG",
						fn.Pkg().Path(), fn.Name(), pass.Pkg.Types.Name())
				}
			}
			return true
		})
	}
}
