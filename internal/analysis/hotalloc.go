package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocChecker enforces the zero-allocation steady-state contract on
// functions annotated //memdos:hotpath and every same-package function
// they reach through static calls. It flags the constructs that heap-
// allocate (or conditionally heap-allocate) in compiled code:
//
//   - make and new
//   - map, slice and pointer-to-composite literals
//   - function literals (closure environments escape)
//   - append whose result lands in a different variable than its source
//     (self-appends x = append(x, ...) are the amortized caller-managed
//     growth idiom and stay legal; a diverging append is a fresh backing
//     array or an aliasing bug)
//   - fmt.* calls and string concatenation / string<->[]byte conversions
//   - interface boxing of non-pointer-shaped values (call arguments,
//     assignments and returns where a concrete value meets an interface)
//   - method values (x.M used as a value allocates a bound closure)
//
// Error and panic exits are exempt: any construct inside a panic(...)
// argument or inside an expression that produces an error value is a
// cold path by definition — the contract is about the steady state the
// zero-alloc benchmarks measure, and misconfiguration exits may spend
// freely. Amortized warm-up allocations (grow-once tables, pooled-buffer
// misses) are expected to carry a //memdos:ignore hotalloc suppression
// whose justification names the amortization argument.
//
// The companion escape-analysis harness (escape.go, run under the
// escapecheck build tag) cross-checks these AST heuristics against the
// compiler's own -gcflags=-m=2 output on the golden corpus, so the two
// views of "allocates" cannot drift apart silently.
func HotAllocChecker() *Checker {
	return &Checker{
		Name: "hotalloc",
		Doc:  "flag heap-allocating constructs in //memdos:hotpath functions and their callees",
		Run:  runHotAlloc,
	}
}

func runHotAlloc(pass *Pass) {
	for _, hf := range hotFuncs(pass.Pkg) {
		checkHotBody(pass, hf)
	}
}

// where renders the function context for a diagnostic.
func where(hf *HotFunc) string {
	if hf.Annotated {
		return fmt.Sprintf("in hotpath %s", hf.Name)
	}
	return fmt.Sprintf("in %s (reached from hotpath %s)", hf.Name, hf.Root)
}

// checkHotBody walks one hot function's body with an explicit parent
// stack, maintaining a cold-exit depth under which findings are muted.
func checkHotBody(pass *Pass, hf *HotFunc) {
	info := pass.Pkg.Info
	var stack []ast.Node
	cold := 0 // >0 while inside a panic argument or error construction

	var coldEntry func(n ast.Node) bool
	coldEntry = func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		// A call that produces an error value is error construction or
		// propagation: a cold exit.
		if tv, ok := info.Types[call]; ok && tv.Type != nil && isErrorType(tv.Type) {
			return true
		}
		return false
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if coldEntry(top) {
				cold--
			}
			return true
		}
		parent := ast.Node(nil)
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		entering := coldEntry(n)
		if entering {
			cold++
		}
		stack = append(stack, n)
		if cold > 0 && !entering {
			return true // muted, but keep walking to balance the stack
		}

		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, hf, n, cold > 0)
		case *ast.CompositeLit:
			if cold == 0 {
				checkHotCompositeLit(pass, hf, n, parent)
			}
		case *ast.FuncLit:
			if cold == 0 {
				pass.Reportf(n.Pos(), "function literal allocates its closure %s", where(hf))
			}
		case *ast.BinaryExpr:
			if cold == 0 && n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				pass.Reportf(n.OpPos, "string concatenation allocates %s; build into a reused []byte", where(hf))
			}
		case *ast.AssignStmt:
			if cold == 0 {
				checkHotAssign(pass, hf, n)
			}
		case *ast.ReturnStmt:
			if cold == 0 {
				checkHotReturn(pass, hf, n)
			}
		case *ast.SelectorExpr:
			if cold == 0 {
				checkMethodValue(pass, hf, n, parent)
			}
		}
		return true
	}
	ast.Inspect(hf.Decl.Body, visit)
}

// checkHotCall handles builtin allocators, fmt calls, allocating
// conversions and interface boxing of arguments. Builtins and boxing are
// still muted on cold paths; the call is inspected here (rather than in
// visit) so argument classification happens once.
func checkHotCall(pass *Pass, hf *HotFunc, call *ast.CallExpr, muted bool) {
	if muted {
		return
	}
	info := pass.Pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); ok {
			switch fun.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates %s; hoist it to setup or a reused buffer", where(hf))
				return
			case "new":
				pass.Reportf(call.Pos(), "new allocates %s; hoist it to setup or a reused buffer", where(hf))
				return
			case "append":
				// Bare append whose result is unused or flows into
				// neither a self-assignment nor a return is handled at
				// the assignment; nothing to do for the call itself.
				return
			}
		}
	case *ast.SelectorExpr:
		if obj := calleeObject(info, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates %s; format off the hot path", obj.Name(), where(hf))
			return
		}
	}

	// Allocating conversions: string(bytes), []byte(s), []rune(s).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if convAllocates(to, from) {
			pass.Reportf(call.Pos(), "conversion %s -> %s copies its data %s",
				typeString(from), typeString(to), where(hf))
		}
		return
	}

	// Interface boxing of arguments.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if at := info.TypeOf(arg); boxes(info, arg, at) {
			pass.Reportf(arg.Pos(), "passing %s boxes a %s into an interface %s",
				exprString(arg), typeString(at), where(hf))
		}
	}
}

func checkHotCompositeLit(pass *Pass, hf *HotFunc, lit *ast.CompositeLit, parent ast.Node) {
	t := pass.Pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates its backing array %s", where(hf))
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates %s", where(hf))
	default:
		// Struct/array literals are values; they only allocate when the
		// address is taken.
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == lit {
			pass.Reportf(u.Pos(), "&%s literal allocates %s", typeString(t), where(hf))
		}
	}
}

// checkHotAssign flags appends that diverge from their source slice and
// interface boxing through assignment.
func checkHotAssign(pass *Pass, hf *HotFunc, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lhs := as.Lhs[i]
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinNamed(info, call, "append") && len(call.Args) > 0 {
			if !sameSliceTarget(lhs, call.Args[0]) {
				pass.Reportf(call.Pos(),
					"append result lands in %s but grows %s %s; a diverging append allocates (or aliases) — append in place",
					exprString(lhs), exprString(call.Args[0]), where(hf))
			}
			continue
		}
		if isBlank(lhs) {
			continue
		}
		if lt := info.TypeOf(lhs); lt != nil && types.IsInterface(lt) {
			if rt := info.TypeOf(rhs); boxes(info, rhs, rt) {
				pass.Reportf(rhs.Pos(), "assigning %s boxes a %s into an interface %s",
					exprString(rhs), typeString(rt), where(hf))
			}
		}
	}
}

func checkHotReturn(pass *Pass, hf *HotFunc, ret *ast.ReturnStmt) {
	info := pass.Pkg.Info
	ft := hf.Decl.Type
	if ft.Results == nil || len(ret.Results) == 0 {
		return
	}
	// Expand the flat result-type list (a result field may declare
	// several names of one type).
	var resTypes []types.Type
	for _, field := range ft.Results.List {
		n := max(len(field.Names), 1)
		t := info.TypeOf(field.Type)
		for k := 0; k < n; k++ {
			resTypes = append(resTypes, t)
		}
	}
	if len(resTypes) != len(ret.Results) {
		return // naked or tuple-forwarding return
	}
	for i, res := range ret.Results {
		rt := resTypes[i]
		if rt == nil || !types.IsInterface(rt) || isErrorType(rt) {
			continue // error results are the cold exit, exempt by design
		}
		if at := info.TypeOf(res); boxes(info, res, at) {
			pass.Reportf(res.Pos(), "returning %s boxes a %s into an interface %s",
				exprString(res), typeString(at), where(hf))
		}
	}
}

// checkMethodValue flags x.M used as a value (not called): the bound
// method allocates its receiver closure.
func checkMethodValue(pass *Pass, hf *HotFunc, sel *ast.SelectorExpr, parent ast.Node) {
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	if call, ok := parent.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == sel {
		return // ordinary method call
	}
	pass.Reportf(sel.Sel.Pos(), "method value %s allocates a bound closure %s; call it directly or use a method expression",
		exprString(sel), where(hf))
}

// ---- classification helpers ----

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// convAllocates reports whether converting from -> to copies data.
func convAllocates(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if isStringType(to) && isByteOrRuneSlice(from) {
		return true
	}
	if isByteOrRuneSlice(to) && isStringType(from) {
		return true
	}
	return false
}

// callSignature resolves the signature a call applies, nil for builtins
// and conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType maps argument index i to its parameter type, expanding the
// variadic tail. Calls with a ... spread pass the slice through without
// boxing, so they return nil for the spread argument.
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	if sig.Variadic() {
		if call.Ellipsis.IsValid() {
			return nil
		}
		if i >= params.Len()-1 {
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.Underlying().(*types.Slice); ok {
				return s.Elem()
			}
			return nil
		}
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// boxes reports whether storing e (of type t) in an interface allocates:
// true for non-pointer-shaped concrete values. Pointers, channels, maps,
// funcs and unsafe pointers are single words stored directly; nil and
// existing interface values never re-box.
func boxes(info *types.Info, e ast.Expr, t types.Type) bool {
	if t == nil {
		return false
	}
	if tv, ok := info.Types[e]; ok && tv.IsNil() {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Tuple:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		if b.Kind() == types.UnsafePointer || b.Kind() == types.Invalid || b.Kind() == types.UntypedNil {
			return false
		}
		return true
	default:
		return true
	}
}

// isBuiltinNamed reports whether call invokes the named builtin.
func isBuiltinNamed(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// sameSliceTarget reports whether the append destination lhs names the
// same slice as the append source src, treating re-slices of the target
// (x = append(x[:0], ...), x = append(x[:n], ...)) as self-appends.
func sameSliceTarget(lhs, src ast.Expr) bool {
	src = ast.Unparen(src)
	if sl, ok := src.(*ast.SliceExpr); ok {
		src = sl.X
	}
	return exprString(ast.Unparen(lhs)) == exprString(src)
}

// exprString renders a (short) expression for diagnostics.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
