package analysis

// ReportVersion identifies the memdos-vet JSON output schema.
const ReportVersion = "memdos-vet/v1"

// Report is the stable machine-readable output of a memdos-vet run
// (the -json flag). Findings and Suppressed are always present (empty
// arrays, never null) so consumers can index unconditionally.
type Report struct {
	Version  string   `json:"version"`
	Checks   []string `json:"checks"`
	Packages int      `json:"packages"`
	// Findings are active diagnostics; a non-empty list means exit 1.
	Findings []Diagnostic `json:"findings"`
	// Suppressed are diagnostics neutralized by //memdos:ignore
	// comments, surfaced so suppressions stay auditable.
	Suppressed []Diagnostic `json:"suppressed"`
	// Stale are //memdos:ignore entries that suppressed nothing (check
	// "staleignore"); a non-empty list means exit 2.
	Stale []Diagnostic `json:"stale"`
}

// NewReport assembles the JSON document for one run.
func NewReport(pkgs []*Package, checks []*Checker, res Result) Report {
	r := Report{
		Version:    ReportVersion,
		Checks:     checkNames(checks),
		Packages:   len(pkgs),
		Findings:   res.Findings,
		Suppressed: res.Suppressed,
		Stale:      res.Stale,
	}
	if r.Findings == nil {
		r.Findings = []Diagnostic{}
	}
	if r.Suppressed == nil {
		r.Suppressed = []Diagnostic{}
	}
	if r.Stale == nil {
		r.Stale = []Diagnostic{}
	}
	return r
}
