// Package respond closes the loop from detection to mitigation: a policy
// engine consumes alarm raise/clear events from the streaming detection
// hub (internal/stream) and drives graduated, reversible hypervisor
// actions against the suspect VM of each protected session.
//
// The paper detects memory DoS attacks but leaves the response open. Its
// Section II argument — reproduced by experiments.MigrationStudy — is
// that migration alone fails because the adversary re-co-locates, while
// Zhang et al. ("Memory DoS Attacks in Multi-tenant Clouds", arXiv:
// 1603.03404) show execution throttling of the suspect VM is the
// effective mitigation. The engine therefore escalates each session
// through a ladder of increasingly strong actions
//
//	idle → throttle(d_1) → … → throttle(d_T) → membw-limit → cache partition → migrate
//
// (the membw-limit rung — a MemGuard-style DRAM bandwidth budget on the
// suspect, after Zhang et al. — and the partition rung are each present
// only when enabled in Config)
//
// and backs off the same ladder with hysteresis and a cooldown:
//
//   - a raise on an idle session applies the first throttle step;
//   - a re-raise while mitigated (the current step was not enough), or a
//     raise within Cooldown seconds of the last full release (a flapping
//     detector), escalates one step instead of restarting at the bottom;
//   - an alarm sustained for EscalateAfter seconds escalates one step;
//   - after a clear, the current step is held for ClearAfter seconds of
//     quiet, then the engine de-escalates one step per further
//     ClearAfter, so a flapping detector cannot thrash the hypervisor;
//   - migration is terminal for the episode: the suspect loses
//     co-residence, so all local mitigation is released and the session
//     re-enters the ladder from the cooldown state.
//
// The engine never reads the wall clock. It advances only on event
// timestamps and explicit Tick calls, and processes sessions in sorted
// name order, so closed-loop simulation runs are bit-reproducible (see
// experiments.ClosedLoop). All methods are safe for concurrent use.
package respond

import (
	"fmt"
	"sort"
	"sync"

	"memdos/internal/metrics"
)

// Config parameterizes the mitigation ladder and its timing. All times
// are in the seconds of whatever time domain feeds the engine (simulated
// seconds in the experiments, sample timestamps in memdosd).
type Config struct {
	// ThrottleDuties are the escalating execution-throttle steps applied
	// to the suspect VM: duty d withholds fraction d of its execution.
	// Must be ascending, each in (0, 1].
	ThrottleDuties []float64
	// EnableBandwidth adds a MemGuard-style DRAM bandwidth-budget rung
	// between the last throttle step and the partition rung: the suspect
	// VM's delivered memory bandwidth is capped at BandwidthBudget
	// (effective against a DRAM bandwidth hog that execution throttling
	// alone only dents; see vmm.SetMemBandwidthLimit).
	EnableBandwidth bool
	// BandwidthBudget is the bytes-per-second cap the bandwidth rung
	// applies. Must be positive when EnableBandwidth is set.
	BandwidthBudget float64
	// EnablePartition adds a pseudo cache-partitioning rung above the
	// last throttle step (effective against LLC cleansing; a bus-locking
	// attacker is unaffected by it, see vmm.SetCachePartition).
	EnablePartition bool
	// EnableMigration adds victim migration as the final rung. Migration
	// is one-shot: the engine releases all local mitigation afterwards.
	EnableMigration bool
	// EscalateAfter escalates one rung when an alarm stays raised this
	// many seconds at the current rung. Must be positive.
	EscalateAfter float64
	// ClearAfter is the hysteresis hold: after a clear, the current rung
	// is kept for this many seconds, then the engine steps down one rung
	// per further ClearAfter of quiet. Must be positive.
	ClearAfter float64
	// Cooldown is the flap guard: a raise within Cooldown seconds of the
	// last full release re-enters the ladder one rung above where the
	// session left it. Non-negative.
	Cooldown float64
	// MaxLog bounds each session's retained action log (<= 0 means 64).
	MaxLog int
}

// DefaultConfig returns a conservative ladder: three throttle steps,
// partitioning and migration enabled, 30 s escalation, 10 s hysteresis,
// 60 s flap cooldown.
func DefaultConfig() Config {
	return Config{
		ThrottleDuties:  []float64{0.25, 0.5, 0.75},
		EnablePartition: true,
		EnableMigration: true,
		EscalateAfter:   30,
		ClearAfter:      10,
		Cooldown:        60,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.ThrottleDuties) == 0 {
		return fmt.Errorf("respond: need at least one throttle duty")
	}
	prev := 0.0
	for i, d := range c.ThrottleDuties {
		if d <= prev || d > 1 {
			return fmt.Errorf("respond: throttle duties must be ascending in (0,1], got %v at %d", d, i)
		}
		prev = d
	}
	if c.EnableBandwidth && c.BandwidthBudget <= 0 {
		return fmt.Errorf("respond: bandwidth rung enabled with non-positive budget %v", c.BandwidthBudget)
	}
	if c.EscalateAfter <= 0 {
		return fmt.Errorf("respond: non-positive EscalateAfter %v", c.EscalateAfter)
	}
	if c.ClearAfter <= 0 {
		return fmt.Errorf("respond: non-positive ClearAfter %v", c.ClearAfter)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("respond: negative Cooldown %v", c.Cooldown)
	}
	return nil
}

// Action kinds, as recorded in Action.Kind and the JSON action log.
const (
	ActionThrottle  = "throttle"
	ActionBandwidth = "membw-limit"
	ActionPartition = "partition"
	ActionRelease   = "release"
	ActionMigrate   = "migrate"
)

// Action is one recorded policy transition of a session.
type Action struct {
	Time float64 `json:"t"`
	// Kind is one of the Action* constants (ActionThrottle,
	// ActionBandwidth, ActionPartition, ActionRelease, ActionMigrate).
	Kind string `json:"kind"`
	// Level is the ladder rung after the transition.
	Level int `json:"level"`
	// Duty is the applied throttle duty (throttle/release kinds).
	Duty float64 `json:"duty"`
	// Reason is why the transition happened: "raise", "flap-raise",
	// "re-raise", "sustained", "backoff", "override" or "migrated".
	Reason string `json:"reason"`
	// Dest is the destination host reported by the actuator (migrate
	// kind only; empty when the actuator has no host notion).
	Dest string `json:"dest,omitempty"`
	// Err carries the actuator failure, if any.
	Err string `json:"err,omitempty"`
}

// Transition reasons.
const (
	reasonRaise     = "raise"
	reasonFlapRaise = "flap-raise"
	reasonReRaise   = "re-raise"
	reasonSustained = "sustained"
	reasonBackoff   = "backoff"
	reasonOverride  = "override"
	reasonMigrated  = "migrated"
)

// ForceNone is the Force level meaning "no forced level" (auto policy).
const ForceNone = -1

// SessionState is a point-in-time view of one session's response state.
type SessionState struct {
	Session string `json:"session"`
	// Level is the current ladder rung (0 = no mitigation).
	Level     int    `json:"level"`
	LevelName string `json:"levelName"`
	// AlarmActive mirrors the last observed alarm transition.
	AlarmActive bool `json:"alarmActive"`
	// Paused: the operator disabled mitigation for this session.
	Paused bool `json:"paused"`
	// Forced is the operator-pinned rung, or ForceNone.
	Forced int `json:"forced"`
	// PeakLevel is the highest rung reached so far.
	PeakLevel int `json:"peakLevel"`
	// Since is when the session last changed rung.
	Since float64 `json:"since"`
	// Escalations / Deescalations / Migrations count transitions.
	Escalations   uint64 `json:"escalations"`
	Deescalations uint64 `json:"deescalations"`
	Migrations    int    `json:"migrations"`
	// Actions is the bounded, most-recent-last transition log.
	Actions []Action `json:"actions,omitempty"`
}

// session is the engine's per-session mutable state.
type session struct {
	name  string
	level int
	alarm bool

	raisedAt   float64
	clearedAt  float64
	levelSince float64
	// memLevel/memUntil remember the ladder position at the last full
	// release; a raise before memUntil re-enters one rung above it.
	memLevel int
	memUntil float64

	peak   int
	paused bool
	forced int

	partitionOn bool
	bandwidthOn bool
	curDuty     float64

	migrations    int
	escalations   uint64
	deescalations uint64
	actions       []Action
}

// Engine is the closed-loop mitigation policy engine.
type Engine struct {
	cfg Config
	act Actuator

	// Ladder geometry: rungs 1..throttleTop are throttle steps,
	// bandwidthLevel/partitionLevel/migrateLevel are 0 when disabled.
	throttleTop    int
	bandwidthLevel int
	partitionLevel int
	migrateLevel   int
	maxLevel       int

	mu sync.Mutex
	// now is the engine's monotonic clock. guarded by mu.
	now float64
	// sessions holds per-VM response state. guarded by mu.
	sessions map[string]*session

	events           metrics.Counter
	throttles        metrics.Counter
	bwLimits         metrics.Counter
	partitions       metrics.Counter
	releases         metrics.Counter
	migrations       metrics.Counter
	escalations      metrics.Counter
	deescalations    metrics.Counter
	overrides        metrics.Counter
	actuatorErrors   metrics.Counter
	eventsSuppressed metrics.Counter
}

// New builds an engine driving the given actuator.
func New(cfg Config, act Actuator) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if act == nil {
		return nil, fmt.Errorf("respond: nil actuator")
	}
	if cfg.MaxLog <= 0 {
		cfg.MaxLog = 64
	}
	e := &Engine{cfg: cfg, act: act, sessions: make(map[string]*session)}
	e.throttleTop = len(cfg.ThrottleDuties)
	e.maxLevel = e.throttleTop
	if cfg.EnableBandwidth {
		e.maxLevel++
		e.bandwidthLevel = e.maxLevel
	}
	if cfg.EnablePartition {
		e.maxLevel++
		e.partitionLevel = e.maxLevel
	}
	if cfg.EnableMigration {
		e.maxLevel++
		e.migrateLevel = e.maxLevel
	}
	return e, nil
}

// MaxLevel returns the top ladder rung.
func (e *Engine) MaxLevel() int { return e.maxLevel }

// LevelName names a ladder rung.
func (e *Engine) LevelName(level int) string {
	switch {
	case level <= 0:
		return "idle"
	case level <= e.throttleTop:
		return fmt.Sprintf("throttle(%.2f)", e.cfg.ThrottleDuties[level-1])
	case level == e.bandwidthLevel:
		return "membw-limit"
	case level == e.partitionLevel:
		return "partition"
	case level == e.migrateLevel:
		return "migrate"
	default:
		return fmt.Sprintf("level(%d)", level)
	}
}

// Ladder lists every rung name from idle to the top.
func (e *Engine) Ladder() []string {
	out := make([]string, e.maxLevel+1)
	for i := range out {
		out[i] = e.LevelName(i)
	}
	return out
}

// Now returns the engine's current (monotonic) time.
func (e *Engine) Now() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// validName bounds session names the same way internal/stream does.
func validName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("respond: session name must be 1-128 bytes")
	}
	return nil
}

// sessionLocked returns the state record for name, creating it at
// idle. Caller holds e.mu.
func (e *Engine) sessionLocked(name string) *session {
	s, ok := e.sessions[name]
	if !ok {
		s = &session{name: name, forced: ForceNone, memLevel: 0, memUntil: -1}
		e.sessions[name] = s
	}
	return s
}

// Observe feeds one alarm transition: raised true for a raise, false for
// a clear. Time-based transitions due strictly before t are applied
// first (Observe implies Tick(t)). Times before the engine's current
// time are clamped forward — the engine is monotonic.
func (e *Engine) Observe(name string, t float64, raised bool) error {
	if err := validName(name); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if t > e.now {
		e.now = t
	}
	now := e.now
	e.tickLocked(now)
	e.events.Inc()
	s := e.sessionLocked(name)
	if raised {
		if s.alarm {
			return nil // duplicate raise
		}
		s.alarm = true
		s.raisedAt = now
		if s.paused || s.forced != ForceNone {
			e.eventsSuppressed.Inc()
			return nil
		}
		if s.level == 0 {
			entry, reason := 1, reasonRaise
			if now <= s.memUntil && s.memLevel+1 > 1 {
				entry, reason = s.memLevel+1, reasonFlapRaise
			}
			e.escalate(s, entry, now, reason)
		} else {
			e.escalate(s, s.level+1, now, reasonReRaise)
		}
		return nil
	}
	if !s.alarm {
		return nil // duplicate clear
	}
	s.alarm = false
	s.clearedAt = now
	// No immediate action: back-off happens through tick hysteresis.
	return nil
}

// Tick advances the engine to now, applying any sustained-alarm
// escalations and quiet-period de-escalations that have come due.
func (e *Engine) Tick(now float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if now > e.now {
		e.now = now
	}
	e.tickLocked(e.now)
}

// tickLocked runs the time-based transitions for every session, in
// sorted name order for determinism. Caller holds e.mu.
func (e *Engine) tickLocked(now float64) {
	names := make([]string, 0, len(e.sessions))
	for name := range e.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := e.sessions[name]
		if s.paused || s.forced != ForceNone {
			continue
		}
		switch {
		case s.alarm && s.level > 0 && s.level < e.maxLevel &&
			now-s.levelSince >= e.cfg.EscalateAfter:
			e.escalate(s, s.level+1, now, reasonSustained)
		case s.alarm && s.level == 0 &&
			now-max(s.raisedAt, s.levelSince) >= e.cfg.EscalateAfter:
			// Alarm still raised after a migration released everything
			// (or the raise was suppressed): re-enter the ladder.
			e.escalate(s, 1, now, reasonSustained)
		case !s.alarm && s.level > 0 &&
			now-max(s.clearedAt, s.levelSince) >= e.cfg.ClearAfter:
			e.deescalate(s, now)
		}
	}
}

// escalate raises the session to the target rung (capped at the top) and
// applies it. Caller holds e.mu.
func (e *Engine) escalate(s *session, to int, now float64, reason string) {
	if to > e.maxLevel {
		to = e.maxLevel
	}
	if to <= s.level {
		return
	}
	s.escalations++
	e.escalations.Inc()
	e.apply(s, to, now, reason)
}

// deescalate steps the session down one rung. Caller holds e.mu.
func (e *Engine) deescalate(s *session, now float64) {
	s.deescalations++
	e.deescalations.Inc()
	from := s.level
	e.apply(s, s.level-1, now, reasonBackoff)
	if s.level == 0 {
		s.memLevel = from
		s.memUntil = now + e.cfg.Cooldown
	}
}

// apply moves the session to the given rung, invoking the actuator with
// only the calls needed for the transition. Caller holds e.mu.
func (e *Engine) apply(s *session, level int, now float64, reason string) {
	if level < 0 {
		level = 0
	}
	if level == e.migrateLevel && e.migrateLevel > 0 {
		// Terminal rung: migrate the victim away, then release all local
		// mitigation — the suspect has lost co-residence. A flap raise
		// within Cooldown re-enters at the top throttle step, never an
		// immediate re-migration.
		res, err := e.act.Migrate(s.name)
		e.migrations.Inc()
		s.migrations++
		e.record(s, Action{Time: now, Kind: ActionMigrate, Level: 0, Reason: reasonMigrated, Dest: res.Dest}, err)
		e.releaseLocked(s, now, reasonMigrated)
		s.level = 0
		s.levelSince = now
		s.memLevel = e.throttleTop - 1
		s.memUntil = now + e.cfg.Cooldown
		if s.peak < e.migrateLevel {
			s.peak = e.migrateLevel
		}
		return
	}
	if s.partitionOn && (e.partitionLevel == 0 || level < e.partitionLevel) {
		err := e.act.Partition(s.name, false)
		e.partitions.Inc()
		e.record(s, Action{Time: now, Kind: ActionPartition, Level: level, Reason: reason}, err)
		s.partitionOn = false
	}
	if s.bandwidthOn && (e.bandwidthLevel == 0 || level < e.bandwidthLevel) {
		err := e.act.LimitBandwidth(s.name, 0)
		e.bwLimits.Inc()
		e.record(s, Action{Time: now, Kind: ActionBandwidth, Level: level, Reason: reason}, err)
		s.bandwidthOn = false
	}
	// stackThrottle holds the session at the given throttle duty — the
	// rungs above throttleTop keep the strongest throttle underneath.
	stackThrottle := func(duty float64, level int) {
		// curDuty only ever holds 0 or a value copied verbatim from
		// ThrottleDuties, so exact comparison detects no-op transitions.
		if s.curDuty != duty { //memdos:ignore floateq
			err := e.act.Throttle(s.name, duty)
			e.throttles.Inc()
			e.record(s, Action{Time: now, Kind: ActionThrottle, Level: level, Duty: duty, Reason: reason}, err)
			s.curDuty = duty
		}
	}
	// stackBandwidth applies the MemGuard budget — the partition rung
	// keeps the bandwidth cap of the rung below it active.
	stackBandwidth := func(level int) {
		if e.bandwidthLevel > 0 && !s.bandwidthOn {
			err := e.act.LimitBandwidth(s.name, e.cfg.BandwidthBudget)
			e.bwLimits.Inc()
			e.record(s, Action{Time: now, Kind: ActionBandwidth, Level: level, Duty: e.cfg.BandwidthBudget, Reason: reason}, err)
			s.bandwidthOn = true
		}
	}
	switch {
	case level == 0:
		if s.curDuty != 0 { //memdos:ignore floateq curDuty holds literal 0 or a cfg value copied verbatim; exact no-op detection
			err := e.act.Throttle(s.name, 0)
			e.releases.Inc()
			e.record(s, Action{Time: now, Kind: ActionRelease, Level: 0, Reason: reason}, err)
			s.curDuty = 0
		}
	case level <= e.throttleTop:
		stackThrottle(e.cfg.ThrottleDuties[level-1], level)
	case level == e.bandwidthLevel:
		stackThrottle(e.cfg.ThrottleDuties[e.throttleTop-1], level)
		stackBandwidth(level)
	case level == e.partitionLevel:
		stackThrottle(e.cfg.ThrottleDuties[e.throttleTop-1], level)
		stackBandwidth(level)
		if !s.partitionOn {
			err := e.act.Partition(s.name, true)
			e.partitions.Inc()
			e.record(s, Action{Time: now, Kind: ActionPartition, Level: level, Reason: reason}, err)
			s.partitionOn = true
		}
	}
	s.level = level
	s.levelSince = now
	if level > s.peak {
		s.peak = level
	}
}

// releaseLocked clears every active mitigation of the session.
func (e *Engine) releaseLocked(s *session, now float64, reason string) {
	if s.partitionOn {
		err := e.act.Partition(s.name, false)
		e.partitions.Inc()
		e.record(s, Action{Time: now, Kind: ActionPartition, Level: 0, Reason: reason}, err)
		s.partitionOn = false
	}
	if s.bandwidthOn {
		err := e.act.LimitBandwidth(s.name, 0)
		e.bwLimits.Inc()
		e.record(s, Action{Time: now, Kind: ActionBandwidth, Level: 0, Reason: reason}, err)
		s.bandwidthOn = false
	}
	if s.curDuty != 0 { //memdos:ignore floateq curDuty holds literal 0 or a cfg value copied verbatim; exact no-op detection
		err := e.act.Throttle(s.name, 0)
		e.releases.Inc()
		e.record(s, Action{Time: now, Kind: ActionRelease, Level: 0, Reason: reason}, err)
		s.curDuty = 0
	}
}

// record appends the action (annotated with any actuator error) to the
// session's bounded log. Caller holds e.mu.
func (e *Engine) record(s *session, a Action, err error) {
	if err != nil {
		a.Err = err.Error()
		e.actuatorErrors.Inc()
	}
	s.actions = append(s.actions, a)
	if over := len(s.actions) - e.cfg.MaxLog; over > 0 {
		s.actions = append(s.actions[:0], s.actions[over:]...)
	}
}

// Pause releases the session's mitigation and ignores its alarms until
// Resume — the operator's "hands off this VM" override.
func (e *Engine) Pause(name string) (SessionState, error) {
	return e.override(name, func(s *session, now float64) {
		s.paused = true
		s.forced = ForceNone
		e.releaseLocked(s, now, reasonOverride)
		s.level = 0
		s.levelSince = now
	})
}

// Force pins the session at the given rung regardless of alarms, until
// Resume (or Force with ForceNone). The migration rung cannot be forced.
func (e *Engine) Force(name string, level int) (SessionState, error) {
	top := e.maxLevel
	if e.migrateLevel > 0 {
		top = e.migrateLevel - 1
	}
	if level != ForceNone && (level < 0 || level > top) {
		return SessionState{}, fmt.Errorf("respond: force level %d outside [0,%d]", level, top)
	}
	return e.override(name, func(s *session, now float64) {
		s.paused = false
		s.forced = level
		if level == ForceNone {
			s.levelSince = now
			if s.alarm {
				e.escalate(s, 1, now, reasonOverride)
			}
			return
		}
		e.apply(s, level, now, reasonOverride)
	})
}

// Resume returns the session to automatic policy. If its alarm is still
// raised, mitigation re-enters the ladder at the first rung.
func (e *Engine) Resume(name string) (SessionState, error) {
	return e.override(name, func(s *session, now float64) {
		s.paused = false
		s.forced = ForceNone
		s.levelSince = now
		if s.alarm {
			e.escalate(s, 1, now, reasonOverride)
		}
	})
}

// override runs fn under e.mu, handing it the engine's current time so
// override closures never reach for the guarded clock themselves.
func (e *Engine) override(name string, fn func(*session, float64)) (SessionState, error) {
	if err := validName(name); err != nil {
		return SessionState{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.overrides.Inc()
	s := e.sessionLocked(name)
	fn(s, e.now)
	return e.stateLocked(s), nil
}

// Forget drops the session's state, releasing any active mitigation
// (e.g. when its detection session closes).
func (e *Engine) Forget(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sessions[name]
	if !ok {
		return
	}
	e.releaseLocked(s, e.now, reasonOverride)
	delete(e.sessions, name)
}

// State returns one session's response state.
func (e *Engine) State(name string) (SessionState, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.sessions[name]
	if !ok {
		return SessionState{}, false
	}
	return e.stateLocked(s), true
}

// States returns every session's response state, sorted by name.
func (e *Engine) States() []SessionState {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SessionState, 0, len(e.sessions))
	for _, s := range e.sessions {
		out = append(out, e.stateLocked(s))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	return out
}

func (e *Engine) stateLocked(s *session) SessionState {
	return SessionState{
		Session:       s.name,
		Level:         s.level,
		LevelName:     e.LevelName(s.level),
		AlarmActive:   s.alarm,
		Paused:        s.paused,
		Forced:        s.forced,
		PeakLevel:     s.peak,
		Since:         s.levelSince,
		Escalations:   s.escalations,
		Deescalations: s.deescalations,
		Migrations:    s.migrations,
		Actions:       append([]Action(nil), s.actions...),
	}
}

// Stats is a programmatic snapshot of the engine counters.
type Stats struct {
	Sessions        int
	Mitigated       int
	Events          uint64
	Throttles       uint64
	BandwidthLimits uint64
	Partitions      uint64
	Releases        uint64
	Migrations      uint64
	Escalations     uint64
	Deescalations   uint64
	Overrides       uint64
	ActuatorErrors  uint64
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	n, mit := len(e.sessions), 0
	for _, s := range e.sessions {
		if s.level > 0 {
			mit++
		}
	}
	e.mu.Unlock()
	return Stats{
		Sessions:        n,
		Mitigated:       mit,
		Events:          e.events.Value(),
		Throttles:       e.throttles.Value(),
		BandwidthLimits: e.bwLimits.Value(),
		Partitions:      e.partitions.Value(),
		Releases:        e.releases.Value(),
		Migrations:      e.migrations.Value(),
		Escalations:     e.escalations.Value(),
		Deescalations:   e.deescalations.Value(),
		Overrides:       e.overrides.Value(),
		ActuatorErrors:  e.actuatorErrors.Value(),
	}
}

// RegisterMetrics exposes the engine counters and per-session levels on
// a metrics registry (the /metrics endpoint).
func (e *Engine) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("memdos_respond_events_total",
		"Alarm transitions observed by the respond engine.", &e.events)
	reg.RegisterCounter("memdos_respond_throttle_actions_total",
		"Suspect-VM throttle actions applied.", &e.throttles)
	reg.RegisterCounter("memdos_respond_bandwidth_actions_total",
		"DRAM bandwidth-budget applications and clears.", &e.bwLimits)
	reg.RegisterCounter("memdos_respond_partition_actions_total",
		"Cache partition toggles applied.", &e.partitions)
	reg.RegisterCounter("memdos_respond_release_actions_total",
		"Full mitigation releases applied.", &e.releases)
	reg.RegisterCounter("memdos_respond_migrations_total",
		"Victim migrations triggered.", &e.migrations)
	reg.RegisterCounter("memdos_respond_escalations_total",
		"Ladder escalations.", &e.escalations)
	reg.RegisterCounter("memdos_respond_deescalations_total",
		"Ladder de-escalations.", &e.deescalations)
	reg.RegisterCounter("memdos_respond_overrides_total",
		"Operator pause/force/resume overrides.", &e.overrides)
	reg.RegisterCounter("memdos_respond_actuator_errors_total",
		"Actuator invocations that returned an error.", &e.actuatorErrors)
	reg.RegisterCounter("memdos_respond_events_suppressed_total",
		"Raises ignored because the session was paused or forced.", &e.eventsSuppressed)
	reg.RegisterGaugeFunc("memdos_respond_mitigated_sessions",
		"Sessions with active mitigation (level > 0).", func() []metrics.Point {
			e.mu.Lock()
			n := 0
			for _, s := range e.sessions {
				if s.level > 0 {
					n++
				}
			}
			e.mu.Unlock()
			return []metrics.Point{{Value: float64(n)}}
		})
	reg.RegisterGaugeFunc("memdos_respond_level",
		"Current mitigation ladder rung, per session.", func() []metrics.Point {
			e.mu.Lock()
			pts := make([]metrics.Point, 0, len(e.sessions))
			for name, s := range e.sessions {
				pts = append(pts, metrics.Point{Labels: fmt.Sprintf("session=%q", name), Value: float64(s.level)})
			}
			e.mu.Unlock()
			return pts
		})
}
