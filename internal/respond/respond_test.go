package respond

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// call is one recorded actuator invocation.
type call struct {
	kind string
	sess string
	duty float64
	on   bool
	dest string
}

// fakeAct records every actuator call; with fail set, all calls error.
type fakeAct struct {
	mu    sync.Mutex
	calls []call
	fail  bool
}

func (f *fakeAct) add(c call) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, c)
	if f.fail {
		return fmt.Errorf("actuator down")
	}
	return nil
}

func (f *fakeAct) Throttle(sess string, duty float64) error {
	return f.add(call{kind: "throttle", sess: sess, duty: duty})
}

func (f *fakeAct) LimitBandwidth(sess string, bytesPerSec float64) error {
	return f.add(call{kind: "membw", sess: sess, duty: bytesPerSec})
}

func (f *fakeAct) Partition(sess string, on bool) error {
	return f.add(call{kind: "partition", sess: sess, on: on})
}

func (f *fakeAct) Migrate(sess string) (MigrateResult, error) {
	err := f.add(call{kind: "migrate", sess: sess, dest: "fake-dst"})
	return MigrateResult{Dest: "fake-dst"}, err
}

func (f *fakeAct) log() []call {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]call(nil), f.calls...)
}

// testConfig is the default ladder with handy short names in tests.
func testConfig() Config { return DefaultConfig() }

func newTestEngine(t *testing.T, cfg Config) (*Engine, *fakeAct) {
	t.Helper()
	act := &fakeAct{}
	eng, err := New(cfg, act)
	if err != nil {
		t.Fatal(err)
	}
	return eng, act
}

func raise(t *testing.T, e *Engine, name string, at float64) {
	t.Helper()
	if err := e.Observe(name, at, true); err != nil {
		t.Fatalf("raise(%s,%v): %v", name, at, err)
	}
}

func clear(t *testing.T, e *Engine, name string, at float64) {
	t.Helper()
	if err := e.Observe(name, at, false); err != nil {
		t.Fatalf("clear(%s,%v): %v", name, at, err)
	}
}

func level(t *testing.T, e *Engine, name string) int {
	t.Helper()
	st, ok := e.State(name)
	if !ok {
		t.Fatalf("session %s unknown", name)
	}
	return st.Level
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{ThrottleDuties: []float64{0.5, 0.25}, EscalateAfter: 1, ClearAfter: 1},
		{ThrottleDuties: []float64{0.5, 0.5}, EscalateAfter: 1, ClearAfter: 1},
		{ThrottleDuties: []float64{0}, EscalateAfter: 1, ClearAfter: 1},
		{ThrottleDuties: []float64{1.5}, EscalateAfter: 1, ClearAfter: 1},
		{ThrottleDuties: []float64{0.5}, EscalateAfter: 0, ClearAfter: 1},
		{ThrottleDuties: []float64{0.5}, EscalateAfter: 1, ClearAfter: 0},
		{ThrottleDuties: []float64{0.5}, EscalateAfter: 1, ClearAfter: 1, Cooldown: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil actuator accepted")
	}
}

func TestLadderGeometry(t *testing.T) {
	eng, _ := newTestEngine(t, testConfig())
	if eng.MaxLevel() != 5 {
		t.Fatalf("MaxLevel = %d, want 5", eng.MaxLevel())
	}
	want := []string{"idle", "throttle(0.25)", "throttle(0.50)", "throttle(0.75)", "partition", "migrate"}
	if got := eng.Ladder(); !reflect.DeepEqual(got, want) {
		t.Errorf("Ladder = %v, want %v", got, want)
	}

	cfg := testConfig()
	cfg.EnablePartition, cfg.EnableMigration = false, false
	throttleOnly, _ := newTestEngine(t, cfg)
	if throttleOnly.MaxLevel() != 3 {
		t.Errorf("throttle-only MaxLevel = %d, want 3", throttleOnly.MaxLevel())
	}
}

// TestEscalationLadder walks a sustained alarm through every rung:
// raise → throttle 0.25 → 0.5 → 0.75 → partition → migrate-and-release.
func TestEscalationLadder(t *testing.T) {
	eng, act := newTestEngine(t, testConfig())
	raise(t, eng, "vm", 0)
	if got := level(t, eng, "vm"); got != 1 {
		t.Fatalf("level after raise = %d, want 1", got)
	}
	eng.Tick(29)
	if got := level(t, eng, "vm"); got != 1 {
		t.Fatalf("level before EscalateAfter = %d, want 1", got)
	}
	eng.Tick(30) // sustained → 0.5
	eng.Tick(60) // sustained → 0.75
	eng.Tick(90) // sustained → partition
	if got := level(t, eng, "vm"); got != 4 {
		t.Fatalf("level at partition rung = %d, want 4", got)
	}
	eng.Tick(120) // sustained → migrate, then full release

	want := []call{
		{kind: "throttle", sess: "vm", duty: 0.25},
		{kind: "throttle", sess: "vm", duty: 0.5},
		{kind: "throttle", sess: "vm", duty: 0.75},
		{kind: "partition", sess: "vm", on: true},
		{kind: "migrate", sess: "vm", dest: "fake-dst"},
		{kind: "partition", sess: "vm", on: false},
		{kind: "throttle", sess: "vm", duty: 0},
	}
	if got := act.log(); !reflect.DeepEqual(got, want) {
		t.Fatalf("actuator calls:\n got %+v\nwant %+v", got, want)
	}
	st, _ := eng.State("vm")
	if st.Level != 0 || st.PeakLevel != 5 || st.Migrations != 1 {
		t.Errorf("post-migration state = %+v", st)
	}
	// The action log records the destination host the actuator reported.
	var mig *Action
	for i, a := range st.Actions {
		if a.Kind == "migrate" {
			mig = &st.Actions[i]
		}
	}
	if mig == nil || mig.Dest != "fake-dst" {
		t.Errorf("migrate action dest = %+v, want fake-dst", mig)
	}

	// The alarm never cleared: after EscalateAfter of continued noise the
	// session re-enters the ladder (migration is not a permanent fix when
	// the adversary re-co-locates).
	eng.Tick(149)
	if got := level(t, eng, "vm"); got != 0 {
		t.Fatalf("re-entered too early: level %d", got)
	}
	eng.Tick(150)
	if got := level(t, eng, "vm"); got != 1 {
		t.Fatalf("no re-entry after sustained alarm: level %d", got)
	}
}

// TestHysteresisBackoff checks the quiet-period de-escalation: hold for
// ClearAfter, then one rung per further ClearAfter.
func TestHysteresisBackoff(t *testing.T) {
	eng, act := newTestEngine(t, testConfig())
	raise(t, eng, "vm", 0)
	eng.Tick(30)
	eng.Tick(60) // level 3 (0.75)
	clear(t, eng, "vm", 65)
	eng.Tick(74) // 9s of quiet: hold
	if got := level(t, eng, "vm"); got != 3 {
		t.Fatalf("backed off before ClearAfter: level %d", got)
	}
	eng.Tick(75)
	if got := level(t, eng, "vm"); got != 2 {
		t.Fatalf("level after first back-off = %d, want 2", got)
	}
	eng.Tick(84)
	if got := level(t, eng, "vm"); got != 2 {
		t.Fatalf("double back-off within one ClearAfter: level %d", got)
	}
	eng.Tick(85) // → 1
	eng.Tick(95) // → 0, full release
	if got := level(t, eng, "vm"); got != 0 {
		t.Fatalf("final level = %d, want 0", got)
	}
	calls := act.log()
	last := calls[len(calls)-1]
	if last.kind != "throttle" || last.duty != 0 {
		t.Errorf("last call = %+v, want release", last)
	}
	st, _ := eng.State("vm")
	if st.Deescalations != 3 {
		t.Errorf("deescalations = %d, want 3", st.Deescalations)
	}
}

// TestFlapCooldown checks the flap guard: a raise shortly after a full
// release re-enters one rung above where the session left the ladder.
func TestFlapCooldown(t *testing.T) {
	eng, act := newTestEngine(t, testConfig())
	raise(t, eng, "vm", 0) // level 1
	clear(t, eng, "vm", 1)
	eng.Tick(11) // release; memory: left at 1, cooldown until 71
	if got := level(t, eng, "vm"); got != 0 {
		t.Fatalf("level after release = %d, want 0", got)
	}

	raise(t, eng, "vm", 20) // within cooldown → enter at 2
	if got := level(t, eng, "vm"); got != 2 {
		t.Fatalf("flap re-entry level = %d, want 2", got)
	}
	st, _ := eng.State("vm")
	lastAct := st.Actions[len(st.Actions)-1]
	if lastAct.Reason != "flap-raise" || lastAct.Duty != 0.5 {
		t.Errorf("flap action = %+v", lastAct)
	}

	clear(t, eng, "vm", 21)
	eng.Tick(31) // → 1
	eng.Tick(41) // → 0; memory: left at 2, cooldown until 101

	raise(t, eng, "vm", 200) // cooldown long expired → normal entry
	if got := level(t, eng, "vm"); got != 1 {
		t.Fatalf("post-cooldown entry level = %d, want 1", got)
	}
	calls := act.log()
	last := calls[len(calls)-1]
	if last.kind != "throttle" || last.duty != 0.25 {
		t.Errorf("post-cooldown call = %+v, want throttle 0.25", last)
	}
}

// TestReRaiseEscalates: an alarm that clears and re-raises while the
// session is still mitigated means the current rung was not enough.
func TestReRaiseEscalates(t *testing.T) {
	eng, _ := newTestEngine(t, testConfig())
	raise(t, eng, "vm", 0)
	clear(t, eng, "vm", 2)
	raise(t, eng, "vm", 5) // still at level 1 (ClearAfter not elapsed)
	if got := level(t, eng, "vm"); got != 2 {
		t.Fatalf("re-raise level = %d, want 2", got)
	}
	st, _ := eng.State("vm")
	lastAct := st.Actions[len(st.Actions)-1]
	if lastAct.Reason != "re-raise" {
		t.Errorf("re-raise action = %+v", lastAct)
	}
}

func TestDuplicateEventsIgnored(t *testing.T) {
	eng, act := newTestEngine(t, testConfig())
	raise(t, eng, "vm", 0)
	raise(t, eng, "vm", 1) // duplicate raise: no escalation
	if got := level(t, eng, "vm"); got != 1 {
		t.Fatalf("level after duplicate raise = %d, want 1", got)
	}
	clear(t, eng, "vm", 2)
	clear(t, eng, "vm", 3) // duplicate clear
	if n := len(act.log()); n != 1 {
		t.Errorf("actuator calls = %d, want 1", n)
	}
	if st := eng.Stats(); st.Events != 4 {
		t.Errorf("events = %d, want 4", st.Events)
	}
}

func TestOverridePauseForceResume(t *testing.T) {
	cfg := testConfig()
	cfg.EnablePartition, cfg.EnableMigration = false, false // maxLevel 3
	eng, act := newTestEngine(t, cfg)

	raise(t, eng, "vm", 0)
	st, err := eng.Pause("vm")
	if err != nil || !st.Paused || st.Level != 0 {
		t.Fatalf("Pause = %+v, %v", st, err)
	}
	calls := act.log()
	if last := calls[len(calls)-1]; last.kind != "throttle" || last.duty != 0 {
		t.Fatalf("pause did not release: %+v", last)
	}
	eng.Tick(100) // alarm still raised, but paused: stays idle
	if got := level(t, eng, "vm"); got != 0 {
		t.Fatalf("paused session mitigated: level %d", got)
	}

	st, err = eng.Resume("vm")
	if err != nil || st.Paused || st.Level != 1 {
		t.Fatalf("Resume (alarm active) = %+v, %v", st, err)
	}

	st, err = eng.Force("vm", 3)
	if err != nil || st.Forced != 3 || st.Level != 3 {
		t.Fatalf("Force(3) = %+v, %v", st, err)
	}
	eng.Tick(200) // forced sessions never auto-transition
	if got := level(t, eng, "vm"); got != 3 {
		t.Fatalf("forced session moved: level %d", got)
	}
	if _, err := eng.Force("vm", 4); err == nil {
		t.Error("force above top accepted")
	}
	if _, err := eng.Force("vm", -2); err == nil {
		t.Error("negative force accepted")
	}

	// Back to auto policy: level is kept, hysteresis resumes after clear.
	if st, err = eng.Force("vm", ForceNone); err != nil || st.Forced != ForceNone || st.Level != 3 {
		t.Fatalf("Force(ForceNone) = %+v, %v", st, err)
	}
	clear(t, eng, "vm", 201)
	eng.Tick(211)
	eng.Tick(221)
	eng.Tick(231)
	if got := level(t, eng, "vm"); got != 0 {
		t.Fatalf("level after resume+clear hysteresis = %d, want 0", got)
	}
}

func TestForceMigrationRungRejected(t *testing.T) {
	eng, _ := newTestEngine(t, testConfig()) // migrate = rung 5
	if _, err := eng.Force("vm", 5); err == nil {
		t.Error("forcing the migration rung accepted")
	}
	if _, err := eng.Force("vm", 4); err != nil {
		t.Errorf("forcing partition rung rejected: %v", err)
	}
}

func TestForget(t *testing.T) {
	eng, act := newTestEngine(t, testConfig())
	raise(t, eng, "vm", 0)
	eng.Forget("vm")
	if _, ok := eng.State("vm"); ok {
		t.Error("session survived Forget")
	}
	calls := act.log()
	if last := calls[len(calls)-1]; last.kind != "throttle" || last.duty != 0 {
		t.Errorf("Forget did not release: %+v", last)
	}
	eng.Forget("vm") // idempotent
	if n := len(eng.States()); n != 0 {
		t.Errorf("states = %d, want 0", n)
	}
}

func TestActuatorErrorsRecorded(t *testing.T) {
	act := &fakeAct{fail: true}
	eng, err := New(testConfig(), act)
	if err != nil {
		t.Fatal(err)
	}
	raise(t, eng, "vm", 0)
	st, _ := eng.State("vm")
	if len(st.Actions) == 0 || st.Actions[0].Err == "" {
		t.Errorf("actuator error not recorded: %+v", st.Actions)
	}
	if got := eng.Stats().ActuatorErrors; got != 1 {
		t.Errorf("actuator errors = %d, want 1", got)
	}
	// Policy still advanced despite the failed actuation.
	if st.Level != 1 {
		t.Errorf("level = %d, want 1", st.Level)
	}
}

func TestMonotonicTime(t *testing.T) {
	eng, _ := newTestEngine(t, testConfig())
	raise(t, eng, "a", 10)
	raise(t, eng, "b", 5) // behind the engine clock: clamped to 10
	if now := eng.Now(); now != 10 {
		t.Fatalf("Now = %v, want 10", now)
	}
	st, _ := eng.State("b")
	if len(st.Actions) != 1 || st.Actions[0].Time != 10 {
		t.Errorf("clamped action = %+v", st.Actions)
	}
}

func TestObserveValidation(t *testing.T) {
	eng, _ := newTestEngine(t, testConfig())
	if err := eng.Observe("", 0, true); err == nil {
		t.Error("empty session name accepted")
	}
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'x'
	}
	if err := eng.Observe(string(long), 0, true); err == nil {
		t.Error("oversized session name accepted")
	}
}

// driveScript exercises a representative mix of raises, clears, flaps,
// ticks and overrides against an engine.
func driveScript(t *testing.T, eng *Engine) {
	t.Helper()
	raise(t, eng, "vm-a", 0)
	raise(t, eng, "vm-b", 1)
	eng.Tick(15)
	clear(t, eng, "vm-b", 16)
	eng.Tick(31) // vm-a sustained → 2; vm-b hysteresis starts
	eng.Tick(40) // vm-b releases (26+... quiet)
	raise(t, eng, "vm-b", 45)
	clear(t, eng, "vm-a", 50)
	if _, err := eng.Force("vm-b", 2); err != nil {
		t.Fatal(err)
	}
	eng.Tick(70)
	if _, err := eng.Resume("vm-b"); err != nil {
		t.Fatal(err)
	}
	clear(t, eng, "vm-b", 80)
	eng.Tick(200)
	eng.Tick(400)
}

// TestDeterminism: the same event script produces bit-identical state and
// actuator call sequences.
func TestDeterminism(t *testing.T) {
	run := func() ([]SessionState, []call) {
		eng, act := newTestEngine(t, testConfig())
		driveScript(t, eng)
		return eng.States(), act.log()
	}
	st1, calls1 := run()
	st2, calls2 := run()
	if !reflect.DeepEqual(st1, st2) {
		t.Errorf("states diverged:\n%+v\n%+v", st1, st2)
	}
	if !reflect.DeepEqual(calls1, calls2) {
		t.Errorf("actuator calls diverged:\n%+v\n%+v", calls1, calls2)
	}
}

func TestActionLogBounded(t *testing.T) {
	cfg := testConfig()
	cfg.MaxLog = 4
	eng, _ := newTestEngine(t, cfg)
	for i := 0; i < 20; i++ {
		at := float64(100 * i)
		raise(t, eng, "vm", at)
		clear(t, eng, "vm", at+1)
		eng.Tick(at + 99) // full release each cycle
	}
	st, _ := eng.State("vm")
	if len(st.Actions) > 4 {
		t.Errorf("action log grew to %d (cap 4)", len(st.Actions))
	}
}

// TestConcurrentAccess drives overlapping raise/clear streams, ticks and
// state reads from many goroutines (meaningful under -race).
func TestConcurrentAccess(t *testing.T) {
	eng, _ := newTestEngine(t, testConfig())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("vm-%d", g)
			for i := 0; i < 200; i++ {
				at := float64(i)
				if err := eng.Observe(name, at, i%2 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			eng.Tick(float64(i))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			eng.States()
			eng.Stats()
			if i%10 == 0 {
				if _, err := eng.Pause("vm-0"); err != nil {
					t.Error(err)
					return
				}
				if _, err := eng.Resume("vm-0"); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
}

// TestBandwidthRung walks the full ladder with the membw-limit rung
// enabled: it sits between the last throttle step and partition, stacks
// the strongest throttle underneath, stays applied while partitioned,
// and is released in reverse order on hysteresis back-off.
func TestBandwidthRung(t *testing.T) {
	cfg := testConfig()
	cfg.EnableBandwidth = true
	cfg.BandwidthBudget = 2e9
	eng, act := newTestEngine(t, cfg)

	// Geometry: 3 throttles, then membw-limit, partition, migrate.
	if eng.MaxLevel() != 6 {
		t.Fatalf("MaxLevel = %d, want 6", eng.MaxLevel())
	}
	if got := eng.LevelName(4); got != "membw-limit" {
		t.Fatalf("LevelName(4) = %q", got)
	}
	if got := eng.LevelName(5); got != "partition" {
		t.Fatalf("LevelName(5) = %q", got)
	}

	// Sustained alarm climbs one rung per EscalateAfter.
	raise(t, eng, "v", 0)
	eng.Tick(30)
	eng.Tick(60)
	eng.Tick(90) // level 4: membw-limit
	if got := level(t, eng, "v"); got != 4 {
		t.Fatalf("level after 90s = %d, want 4 (membw-limit)", got)
	}
	// The rung stacked the top throttle and the budget.
	calls := act.log()
	last := calls[len(calls)-1]
	if last.kind != "membw" || last.duty != 2e9 {
		t.Fatalf("last call at membw rung = %+v, want membw budget 2e9", last)
	}
	if prev := calls[len(calls)-2]; prev.kind != "throttle" || prev.duty != 0.75 {
		t.Fatalf("membw rung did not stack top throttle: %+v", prev)
	}

	// Partition rung keeps the budget: no extra membw call, one partition.
	eng.Tick(120)
	if got := level(t, eng, "v"); got != 5 {
		t.Fatalf("level after 120s = %d, want 5 (partition)", got)
	}
	newCalls := act.log()[len(calls):]
	for _, c := range newCalls {
		if c.kind == "membw" {
			t.Fatalf("partition rung re-applied membw: %+v", newCalls)
		}
	}
	if last := newCalls[len(newCalls)-1]; last.kind != "partition" || !last.on {
		t.Fatalf("partition rung calls = %+v", newCalls)
	}

	// Hysteresis back-off releases in reverse order: partition off first
	// (budget still held), then the budget cleared, then weaker throttles.
	clear(t, eng, "v", 121)
	eng.Tick(131) // back to 4
	if got := level(t, eng, "v"); got != 4 {
		t.Fatalf("level after first backoff = %d, want 4", got)
	}
	calls = act.log()
	if last := calls[len(calls)-1]; last.kind != "partition" || last.on {
		t.Fatalf("backoff to membw rung should only drop partition, got %+v", last)
	}
	eng.Tick(141) // back to 3: budget cleared, throttle 0.75 kept
	if got := level(t, eng, "v"); got != 3 {
		t.Fatalf("level after second backoff = %d, want 3", got)
	}
	calls = act.log()
	if last := calls[len(calls)-1]; last.kind != "membw" || last.duty != 0 {
		t.Fatalf("backoff past membw rung should clear the budget, got %+v", last)
	}
	eng.Tick(151) // level 2: throttle weakens
	if got := level(t, eng, "v"); got != 2 {
		t.Fatalf("level = %d, want 2", got)
	}
	calls = act.log()
	if last := calls[len(calls)-1]; last.kind != "throttle" || last.duty != 0.5 {
		t.Fatalf("expected throttle 0.5, got %+v", last)
	}

	st := eng.Stats()
	if st.BandwidthLimits != 2 { // one apply, one clear
		t.Fatalf("BandwidthLimits = %d, want 2", st.BandwidthLimits)
	}
}

// TestBandwidthRungDisabled pins that without EnableBandwidth the ladder
// is byte-for-byte the old geometry and never calls LimitBandwidth.
func TestBandwidthRungDisabled(t *testing.T) {
	eng, act := newTestEngine(t, testConfig())
	if eng.MaxLevel() != 5 {
		t.Fatalf("MaxLevel = %d, want 5", eng.MaxLevel())
	}
	raise(t, eng, "v", 0)
	for tt := 30.0; tt <= 150; tt += 30 {
		eng.Tick(tt)
	}
	for _, c := range act.log() {
		if c.kind == "membw" {
			t.Fatalf("LimitBandwidth called with rung disabled: %+v", c)
		}
	}
	if eng.Stats().BandwidthLimits != 0 {
		t.Fatal("BandwidthLimits counter moved with rung disabled")
	}
}

// TestBandwidthRungFlapReentry pins the flap-cooldown interaction: a
// session that backed off from the membw rung re-enters one rung above
// where it left when the alarm flaps back within Cooldown.
func TestBandwidthRungFlapReentry(t *testing.T) {
	cfg := testConfig()
	cfg.EnableBandwidth = true
	cfg.BandwidthBudget = 1e9
	eng, _ := newTestEngine(t, cfg)
	raise(t, eng, "v", 0)
	eng.Tick(30)
	eng.Tick(60)
	eng.Tick(90) // membw rung (4)
	clear(t, eng, "v", 91)
	// Walk all the way down: 4 releases at 101, 111, 121, 131.
	for tt := 101.0; tt <= 131; tt += 10 {
		eng.Tick(tt)
	}
	if got := level(t, eng, "v"); got != 0 {
		t.Fatalf("did not fully release: level %d", got)
	}
	// Flap back within Cooldown: re-enter at memLevel+1 = 2.
	raise(t, eng, "v", 140)
	if got := level(t, eng, "v"); got != 2 {
		t.Fatalf("flap re-entry level = %d, want 2", got)
	}
}
