package respond

import "memdos/internal/stream"

// Attach subscribes the engine to a hub's alarm feed and pumps raise and
// clear events into Observe until the returned stop function is called
// (or the hub closes). buffer sizes the subscription channel; events
// beyond it are shed by the hub's best-effort delivery (see the
// guarantee documented in internal/stream/api.go) and counted in the
// hub's subscriber_dropped metric — the engine self-heals from a missed
// raise via its sustained-alarm tick rule, and from a missed clear via
// the next raise.
//
// The pump advances engine time from event timestamps only. Deployments
// whose alarm stream can go quiet while mitigation is active must also
// call Tick periodically (as cmd/memdosd does from the hub's decision
// timestamps) so back-off hysteresis keeps progressing.
func Attach(hub *stream.Hub, eng *Engine, buffer int) (stop func()) {
	ch, cancel := hub.Subscribe(buffer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			eng.Observe(ev.Session, ev.Time, ev.Raised)
		}
	}()
	return func() {
		cancel()
		<-done
	}
}
