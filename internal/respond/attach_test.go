package respond

import (
	"testing"
	"time"

	"memdos/internal/core"
	"memdos/internal/pcm"
	"memdos/internal/stream"
)

// flipDet alarms whenever MissNum exceeds 50 — a trivially controllable
// detector for wiring tests.
type flipDet struct{}

func (flipDet) Name() string { return "flip" }

func (flipDet) Push(s pcm.Sample) []core.Decision {
	return []core.Decision{{Time: s.Time, Alarm: s.MissNum > 50}}
}

func (flipDet) Overhead() float64 { return 0 }

// waitFor polls cond until it holds or the deadline passes. The Attach
// pump is asynchronous, so hub-side effects need a grace period.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

// TestAttachClosesTheLoop is the stream→respond integration test: a
// raised alarm on the hub throttles the session's suspect VM through the
// actuator, and the clear (plus hysteresis ticks) un-throttles it.
func TestAttachClosesTheLoop(t *testing.T) {
	hub := stream.NewHub(stream.Config{Shards: 1, QueueCap: 1024, ShardBuffer: 8, Policy: stream.Block})
	defer hub.Close()
	if err := hub.RegisterProfile("flip", func() (core.Detector, error) { return flipDet{}, nil }); err != nil {
		t.Fatal(err)
	}
	if err := hub.Open("vm-a", "flip"); err != nil {
		t.Fatal(err)
	}

	cfg := Config{ThrottleDuties: []float64{0.5}, EscalateAfter: 30, ClearAfter: 10}
	act := &fakeAct{}
	eng, err := New(cfg, act)
	if err != nil {
		t.Fatal(err)
	}
	stop := Attach(hub, eng, 16)
	defer stop()

	// Raise: an anomalous sample flips the detector, the hub publishes the
	// transition, the pump feeds the engine, the engine throttles.
	if _, err := hub.Ingest("vm-a", []pcm.Sample{{Time: 1, AccessNum: 100, MissNum: 100}}); err != nil {
		t.Fatal(err)
	}
	if err := hub.Drain(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		calls := act.log()
		return len(calls) == 1 && calls[0].kind == "throttle" && calls[0].sess == "vm-a" && calls[0].duty == 0.5
	}, "raised alarm did not throttle the suspect VM")

	// Clear: a clean sample flips the detector back; the engine holds the
	// throttle through the hysteresis window, then releases on tick.
	if _, err := hub.Ingest("vm-a", []pcm.Sample{{Time: 2, AccessNum: 100, MissNum: 10}}); err != nil {
		t.Fatal(err)
	}
	if err := hub.Drain(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st, ok := eng.State("vm-a")
		return ok && !st.AlarmActive
	}, "clear event never reached the engine")
	if got := level(t, eng, "vm-a"); got != 1 {
		t.Fatalf("throttle dropped before hysteresis: level %d", got)
	}

	eng.Tick(12) // ClearAfter elapsed since the clear at t=2
	calls := act.log()
	if len(calls) != 2 || calls[1].kind != "throttle" || calls[1].duty != 0 {
		t.Fatalf("clear did not un-throttle: calls %+v", calls)
	}
	if got := level(t, eng, "vm-a"); got != 0 {
		t.Fatalf("level after release = %d, want 0", got)
	}

	// After stop, further hub alarms no longer reach the engine.
	stop()
	if _, err := hub.Ingest("vm-a", []pcm.Sample{{Time: 3, AccessNum: 100, MissNum: 100}}); err != nil {
		t.Fatal(err)
	}
	if err := hub.Drain(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if n := len(act.log()); n != 2 {
		t.Errorf("detached engine still actuated: %d calls", n)
	}
}
