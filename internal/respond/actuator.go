package respond

import "sync"

// Actuator applies mitigation to the hypervisor. The engine addresses
// actions by *detection session* (one session protects one VM); the
// actuator is responsible for resolving the session to the concrete
// suspect VM(s) — in the simulation experiments that mapping is exact
// (the co-located attack VM), on a real hypervisor it would come from
// per-VM counter attribution.
//
// Calls happen with the engine lock held, in deterministic order, and
// must not call back into the engine. Implementations should be fast;
// a slow actuator delays alarm processing.
type Actuator interface {
	// Throttle caps the suspect VM's execution to (1-duty) of its share.
	// duty 0 clears the throttle.
	Throttle(session string, duty float64) error
	// LimitBandwidth caps the suspect VM's delivered DRAM bandwidth at
	// bytesPerSec — the MemGuard-style budget of Zhang et al.
	// (arXiv:1603.03404). bytesPerSec 0 clears the cap. Actuators on
	// hosts without a memory-controller model report an error, which the
	// engine records in the action log and keeps climbing past.
	LimitBandwidth(session string, bytesPerSec float64) error
	// Partition toggles pseudo cache-partitioning around the suspect VM,
	// containing its LLC evictions (no effect on bus locking).
	Partition(session string, on bool) error
	// Migrate moves the protected VM to another host and reports where
	// it landed. One-shot per episode: the engine releases all local
	// mitigation afterwards.
	Migrate(session string) (MigrateResult, error)
}

// MigrateResult describes the outcome of an Actuator.Migrate call.
type MigrateResult struct {
	// Dest names the destination host the protected VM was moved to
	// (e.g. "host07"). Empty when the actuator has no host notion, such
	// as the stand-alone LogActuator.
	Dest string `json:"dest,omitempty"`
}

// Applied is the mitigation state a LogActuator currently holds for one
// session.
type Applied struct {
	Duty float64 `json:"duty"`
	// BandwidthLimit is the recorded DRAM budget in bytes/second
	// (0 = no cap).
	BandwidthLimit float64 `json:"bandwidth_limit,omitempty"`
	Partition      bool    `json:"partition"`
	Migrations     int     `json:"migrations"`
	// LastDest is the destination reported for the most recent migration
	// (always empty for LogActuator itself, which has no host notion, but
	// kept in the record so mixed deployments serialize uniformly).
	LastDest string `json:"last_dest,omitempty"`
}

// LogActuator is an Actuator for deployments without a hypervisor
// hookup (e.g. memdosd run stand-alone): it records the mitigation it
// was asked to apply so operators and tests can inspect the would-be
// actions. All methods are safe for concurrent use and never fail.
type LogActuator struct {
	mu sync.Mutex
	// state is the per-session record of applied actions. guarded by mu.
	state map[string]Applied
}

// NewLogActuator returns an empty recording actuator.
func NewLogActuator() *LogActuator {
	return &LogActuator{state: make(map[string]Applied)}
}

// Throttle records the duty.
func (l *LogActuator) Throttle(session string, duty float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state[session]
	st.Duty = duty
	l.state[session] = st
	return nil
}

// LimitBandwidth records the DRAM budget.
func (l *LogActuator) LimitBandwidth(session string, bytesPerSec float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state[session]
	st.BandwidthLimit = bytesPerSec
	l.state[session] = st
	return nil
}

// Partition records the partition state.
func (l *LogActuator) Partition(session string, on bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state[session]
	st.Partition = on
	l.state[session] = st
	return nil
}

// Migrate counts the migration. LogActuator has no host notion, so the
// reported destination is empty.
func (l *LogActuator) Migrate(session string) (MigrateResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state[session]
	st.Migrations++
	st.LastDest = ""
	l.state[session] = st
	return MigrateResult{}, nil
}

// Applied returns the currently recorded mitigation for the session.
func (l *LogActuator) Applied(session string) Applied {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state[session]
}
