package mem

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"memdos/internal/par"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func newTest(t *testing.T, sockets int) *Controller {
	t.Helper()
	c, err := New(DefaultNUMAConfig(sockets))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	bad := []func(*NUMAConfig){
		func(c *NUMAConfig) { c.Sockets = 0 },
		func(c *NUMAConfig) { c.ChannelsPerSocket = 0 },
		func(c *NUMAConfig) { c.ChannelBandwidth = 0 },
		func(c *NUMAConfig) { c.LineBytes = -1 },
		func(c *NUMAConfig) { c.RowHitLatency = 0 },
		func(c *NUMAConfig) { c.RowMissLatency = c.RowHitLatency / 2 },
		func(c *NUMAConfig) { c.RowConflictLatency = c.RowMissLatency / 2 },
		func(c *NUMAConfig) { c.RemoteLatencyFactor = 0.5 },
		func(c *NUMAConfig) { c.RemoteBandwidthFactor = 0 },
		func(c *NUMAConfig) { c.RemoteBandwidthFactor = 1.5 },
	}
	for i, mut := range bad {
		cfg := DefaultNUMAConfig(2)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
	if err := DefaultNUMAConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// An uncontended owner under capacity gets everything it asked for at
// its baseline latency.
func TestSoloUncontended(t *testing.T) {
	c := newTest(t, 1)
	cfg := c.Config()
	const hit = 0.8
	bytesWanted := 0.25 * cfg.SocketCapacity() * cfg.LineBytes // quarter load
	c.Request(0, bytesWanted, hit)
	res := c.Resolve(1.0)
	if got, want := res.LinesOf(0), bytesWanted/cfg.LineBytes; !almost(got, want) {
		t.Fatalf("delivered %v lines, want %v", got, want)
	}
	if r := res.RatioOf(0); !almost(r, 1) {
		t.Fatalf("ratio %v, want 1", r)
	}
	if got, want := res.LatencyOf(0), cfg.BaselineLatency(hit); !almost(got, want) {
		t.Fatalf("latency %v, want baseline %v", got, want)
	}
	st := c.Stats(0)
	if !almost(st.DeliveryRatio(), 1) || !almost(st.AvgLatency(), cfg.BaselineLatency(hit)) {
		t.Fatalf("stats %+v inconsistent with resolution", st)
	}
	if !almost(st.Bytes, bytesWanted) {
		t.Fatalf("stats bytes %v, want %v", st.Bytes, bytesWanted)
	}
}

// Idle owners read as ratio 1 / latency 0, including out-of-range ids.
func TestIdleOwnerReads(t *testing.T) {
	c := newTest(t, 1)
	c.Request(3, 1024, 0.5)
	res := c.Resolve(1.0)
	for _, o := range []Owner{0, 7, 100} {
		if res.RatioOf(o) != 1 || res.LatencyOf(o) != 0 || res.LinesOf(o) != 0 {
			t.Fatalf("idle owner %d not neutral: ratio=%v lat=%v lines=%v",
				o, res.RatioOf(o), res.LatencyOf(o), res.LinesOf(o))
		}
	}
	if s := c.Stats(99); s.DeliveryRatio() != 1 || s.AvgLatency() != 0 {
		t.Fatalf("idle stats not neutral: %+v", s)
	}
}

// Two equal streams over capacity split the channel evenly, and each
// sees worse-than-baseline latency (row-buffer interference + queueing).
func TestFairShareUnderOverload(t *testing.T) {
	c := newTest(t, 1)
	cfg := c.Config()
	over := 1.5 * cfg.SocketCapacity() * cfg.LineBytes
	c.Request(0, over, 0.9)
	c.Request(1, over, 0.9)
	res := c.Resolve(1.0)
	half := cfg.SocketCapacity() / 2
	if !almost(res.LinesOf(0), half) || !almost(res.LinesOf(1), half) {
		t.Fatalf("uneven split: %v vs %v, want %v each", res.LinesOf(0), res.LinesOf(1), half)
	}
	base := cfg.BaselineLatency(0.9)
	if l := res.LatencyOf(0); l <= base {
		t.Fatalf("contended latency %v not above baseline %v", l, base)
	}
	if !almost(res.LatencyOf(0), res.LatencyOf(1)) {
		t.Fatalf("symmetric streams got different latencies: %v vs %v",
			res.LatencyOf(0), res.LatencyOf(1))
	}
}

// Max-min: a small flow is satisfied in full; the hogs split the rest.
func TestMaxMinProtectsSmallFlow(t *testing.T) {
	c := newTest(t, 1)
	cfg := c.Config()
	capLines := cfg.SocketCapacity()
	c.Request(0, 0.1*capLines*cfg.LineBytes, 0.5) // small
	c.Request(1, capLines*cfg.LineBytes, 0.9)     // hog
	c.Request(2, capLines*cfg.LineBytes, 0.9)     // hog
	res := c.Resolve(1.0)
	if !almost(res.RatioOf(0), 1) {
		t.Fatalf("small flow squeezed: ratio %v", res.RatioOf(0))
	}
	rest := (capLines - 0.1*capLines) / 2
	if !almost(res.LinesOf(1), rest) || !almost(res.LinesOf(2), rest) {
		t.Fatalf("hog grants %v/%v, want %v each", res.LinesOf(1), res.LinesOf(2), rest)
	}
}

// A sequential hog keeps most of its row-buffer locality while the
// victim sharing the channel loses its open rows — the victim's latency
// rises much more than the hog's (the Bechtel & Yun asymmetry).
func TestRowBufferAsymmetry(t *testing.T) {
	c := newTest(t, 1)
	cfg := c.Config()
	capB := cfg.SocketCapacity() * cfg.LineBytes
	c.Request(0, 0.05*capB, 0.6) // victim: modest demand
	c.Request(1, 1.5*capB, 0.95) // streaming hog
	res := c.Resolve(1.0)
	victimStretch := res.LatencyOf(0) / cfg.BaselineLatency(0.6)
	hogStretch := res.LatencyOf(1) / cfg.BaselineLatency(0.95)
	if victimStretch <= hogStretch {
		t.Fatalf("victim stretch %v not above hog stretch %v", victimStretch, hogStretch)
	}
	if victimStretch < 1.5 {
		t.Fatalf("victim latency stretch %v implausibly small under a 1.5x-capacity hog", victimStretch)
	}
}

// MemGuard budget: capping the hog restores the victim's delivery and
// most of its latency, and the capped hog's delivered bandwidth obeys
// the budget.
func TestBudgetRestoresVictim(t *testing.T) {
	c := newTest(t, 1)
	cfg := c.Config()
	capB := cfg.SocketCapacity() * cfg.LineBytes
	victimB := 0.3 * capB
	run := func() (vRatio, vLat, hogBytes float64) {
		c.Request(0, victimB, 0.6)
		c.Request(1, 2*capB, 0.95)
		res := c.Resolve(1.0)
		return res.RatioOf(0), res.LatencyOf(0), res.LinesOf(1) * cfg.LineBytes
	}
	_, hotLat, _ := run()
	budget := 0.1 * capB
	if err := c.SetBudget(1, budget); err != nil {
		t.Fatal(err)
	}
	vRatio, coldLat, hogBytes := run()
	if !almost(vRatio, 1) {
		t.Fatalf("victim ratio %v under budgeted hog, want 1", vRatio)
	}
	if coldLat >= hotLat {
		t.Fatalf("budget did not reduce victim latency: %v -> %v", hotLat, coldLat)
	}
	if hogBytes > budget*1.0000001 {
		t.Fatalf("hog delivered %v bytes above budget %v", hogBytes, budget)
	}
	// The hog's per-step ratio must reflect the clamp (pre-budget
	// denominator), or the respond rung could never slow it.
	c.Request(1, 2*capB, 0.95)
	res := c.Resolve(1.0)
	if r := res.RatioOf(1); r > 0.06 {
		t.Fatalf("budgeted hog ratio %v, want ~0.05", r)
	}
	if err := c.SetBudget(1, 0); err != nil { // clear
		t.Fatal(err)
	}
	c.Request(1, 2*capB, 0.95)
	if r := c.Resolve(1.0).RatioOf(1); !almost(r, 0.5) {
		t.Fatalf("cleared budget: ratio %v, want 0.5 (capacity-bound)", r)
	}
}

// NUMA: the same demand is strictly worse (slower, lower-bandwidth) when
// issued remotely, at demands straddling the socket capacity boundary.
func TestNUMARemotePenaltyAtChannelBoundary(t *testing.T) {
	cfg := DefaultNUMAConfig(2)
	capB := cfg.SocketCapacity() * cfg.LineBytes
	// Below, at, and above one socket group's capacity.
	for _, load := range []float64{0.5 * capB, capB, 1.5 * capB} {
		local := MustNew(cfg)
		local.Request(0, load, 0.8)
		lres := local.Resolve(1.0)

		remote := MustNew(cfg)
		if err := remote.SetRemoteFraction(0, 1); err != nil {
			t.Fatal(err)
		}
		remote.Request(0, load, 0.8)
		rres := remote.Resolve(1.0)

		if rres.LatencyOf(0) <= lres.LatencyOf(0) {
			t.Errorf("load %v: remote latency %v not above local %v",
				load, rres.LatencyOf(0), lres.LatencyOf(0))
		}
		if rres.LinesOf(0) > lres.LinesOf(0)*(1+1e-12) {
			t.Errorf("load %v: remote delivered %v above local %v",
				load, rres.LinesOf(0), lres.LinesOf(0))
		}
		if load > capB && rres.LinesOf(0) >= lres.LinesOf(0)*(1-1e-12) {
			t.Errorf("load %v: over capacity, remote delivery %v should be strictly below local %v",
				load, rres.LinesOf(0), lres.LinesOf(0))
		}
	}
}

// The interconnect caps remote inflow: a fully-remote hog is bounded by
// InterSocketBandwidth even when the target socket's channels are idle.
func TestInterSocketBandwidthCap(t *testing.T) {
	cfg := DefaultNUMAConfig(2)
	cfg.InterSocketBandwidth = 0.25 * cfg.SocketCapacity() * cfg.LineBytes
	c := MustNew(cfg)
	if err := c.SetHome(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRemoteFraction(0, 1); err != nil { // homed on 1, all traffic to 0
		t.Fatal(err)
	}
	c.Request(0, 2*cfg.SocketCapacity()*cfg.LineBytes, 0.9)
	res := c.Resolve(1.0)
	capLines := cfg.InterSocketBandwidth / cfg.LineBytes
	if res.LinesOf(0) > capLines*(1+1e-12) {
		t.Fatalf("remote hog moved %v lines, interconnect cap is %v", res.LinesOf(0), capLines)
	}
	if !almost(res.LinesOf(0), capLines) {
		t.Fatalf("remote hog moved %v lines, want the full interconnect cap %v", res.LinesOf(0), capLines)
	}
}

// A remote attacker must hurt a local victim less than a co-resident
// (same-socket) attacker: the interconnect and the remote bandwidth
// factor blunt its pressure. This pins the attack-reach direction the
// NUMA study depends on.
func TestRemoteAttackerWeakerThanLocal(t *testing.T) {
	cfg := DefaultNUMAConfig(2)
	capB := cfg.SocketCapacity() * cfg.LineBytes
	victim := func(c *Controller) (ratio, lat float64) {
		c.Request(0, 0.3*capB, 0.6)
		c.Request(1, 2.5*capB, 0.95)
		res := c.Resolve(1.0)
		return res.RatioOf(0), res.LatencyOf(0)
	}
	localC := MustNew(cfg) // both on socket 0
	lr, ll := victim(localC)

	remoteC := MustNew(cfg)
	if err := remoteC.SetHome(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := remoteC.SetRemoteFraction(1, 1); err != nil {
		t.Fatal(err)
	}
	rr, rl := victim(remoteC)

	if rr < lr {
		t.Fatalf("remote attacker starves victim harder than local: ratio %v < %v", rr, lr)
	}
	if rl > ll {
		t.Fatalf("remote attacker stretches victim latency more than local: %v > %v", rl, ll)
	}
	if lr >= 0.999 && ll <= cfg.BaselineLatency(0.6)*1.01 {
		t.Fatal("local attacker had no effect; test is vacuous")
	}
}

// Request accumulation is sharding-invariant: many small Requests equal
// one big one, bit for bit in the stats that feed telemetry.
func TestRequestAccumulation(t *testing.T) {
	one := newTest(t, 2)
	many := newTest(t, 2)
	one.Request(0, 64e6, 0.75)
	for i := 0; i < 1000; i++ {
		many.Request(0, 64e3, 0.75)
	}
	r1 := one.Resolve(0.01)
	r2 := many.Resolve(0.01)
	if !almost(r1.LinesOf(0), r2.LinesOf(0)) || !almost(r1.LatencyOf(0), r2.LatencyOf(0)) {
		t.Fatalf("sharded requests diverge: lines %v vs %v, lat %v vs %v",
			r1.LinesOf(0), r2.LinesOf(0), r1.LatencyOf(0), r2.LatencyOf(0))
	}
}

func TestPanicsAndErrors(t *testing.T) {
	c := newTest(t, 2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative bytes", func() { c.Request(0, -1, 0.5) })
	mustPanic("bad hit frac", func() { c.Request(0, 1, 1.5) })
	mustPanic("negative owner", func() { c.Request(-1, 1, 0.5) })
	mustPanic("zero dt", func() { c.Resolve(0) })
	if err := c.SetHome(0, 2); err == nil {
		t.Error("out-of-range socket accepted")
	}
	if err := c.SetRemoteFraction(0, 1.5); err == nil {
		t.Error("remote fraction > 1 accepted")
	}
	if err := c.SetBudget(0, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

// fingerprint runs a deterministic multi-owner workload and returns the
// exact bytes of every per-step resolution and the final stats.
func fingerprint(owners, steps int, sockets int) []byte {
	cfg := DefaultNUMAConfig(sockets)
	c := MustNew(cfg)
	var buf bytes.Buffer
	w := func(v float64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	for o := 0; o < owners; o++ {
		_ = c.SetHome(Owner(o), o%sockets)
		_ = c.SetRemoteFraction(Owner(o), float64(o%5)/10)
		if o%7 == 0 {
			_ = c.SetBudget(Owner(o), 1e9)
		}
	}
	for s := 0; s < steps; s++ {
		for o := 0; o < owners; o++ {
			amt := float64((o*2654435761+s*40503)%1000) * 1e6
			hit := 0.5 + 0.4*float64(o%2)
			c.Request(Owner(o), amt, hit)
		}
		res := c.Resolve(0.01)
		for o := 0; o < owners; o++ {
			w(res.LinesOf(Owner(o)))
			w(res.LatencyOf(Owner(o)))
		}
	}
	for o := 0; o < owners; o++ {
		st := c.Stats(Owner(o))
		w(st.Requested)
		w(st.Delivered)
		w(st.Bytes)
		w(st.LatencySum)
	}
	return buf.Bytes()
}

// TestMemDeterminismAcrossWorkers pins the byte-identical-at-any-worker-
// count contract: independent controller simulations fanned across the
// shared pool at 8 workers produce exactly the serial bytes (run with
// -race to also prove the cells share no state).
func TestMemDeterminismAcrossWorkers(t *testing.T) {
	const cells = 16
	run := func(workers int) [][]byte {
		out := make([][]byte, cells)
		r := par.Runner{Workers: workers}
		err := r.Do(cells, func(i int) error {
			out[i] = fingerprint(8+i%5, 50, 1+i%2)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Fatalf("cell %d diverges between 1 and 8 workers", i)
		}
	}
	again := run(8)
	for i := range serial {
		if !bytes.Equal(serial[i], again[i]) {
			t.Fatalf("cell %d not reproducible across runs", i)
		}
	}
}

// Resolve must not allocate in steady state.
func TestResolveZeroAlloc(t *testing.T) {
	c := newTest(t, 2)
	for o := Owner(0); o < 64; o++ {
		_ = c.SetHome(o, int(o)%2)
		_ = c.SetRemoteFraction(o, 0.2)
	}
	load := func() {
		for o := Owner(0); o < 64; o++ {
			c.Request(o, 1e7, 0.7)
		}
		c.Resolve(0.01)
	}
	load() // warm up scratch
	load()
	allocs := testing.AllocsPerRun(100, load)
	if allocs != 0 {
		t.Fatalf("Resolve allocates %v times per step, want 0", allocs)
	}
}

func TestResetStats(t *testing.T) {
	c := newTest(t, 1)
	c.Request(0, 1e6, 0.5)
	c.Resolve(1.0)
	if c.Stats(0).Delivered == 0 {
		t.Fatal("no stats accumulated")
	}
	c.ResetStats()
	if s := c.Stats(0); s != (Stats{}) {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func BenchmarkResolve1024VMs(b *testing.B) {
	cfg := DefaultNUMAConfig(2)
	cfg.ChannelsPerSocket = 4
	c := MustNew(cfg)
	const n = 1024
	for o := Owner(0); o < n; o++ {
		_ = c.SetHome(o, int(o)%2)
		_ = c.SetRemoteFraction(o, float64(int(o)%4)/10)
	}
	for o := Owner(0); o < n; o++ {
		c.Request(o, 1e6, 0.7)
	}
	c.Resolve(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for o := Owner(0); o < n; o++ {
			c.Request(o, 1e6, 0.7)
		}
		c.Resolve(0.01)
	}
}
