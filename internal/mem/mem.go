// Package mem models the DRAM memory controllers that sit behind the
// shared LLC: cache misses become line-sized DRAM requests routed to the
// per-channel queues of the owner's home socket (and, for NUMA-remote
// pages, across the socket interconnect), where row-buffer locality,
// bounded per-channel bandwidth and fair-share arbitration decide how
// fast they complete.
//
// The model exists because memory DoS does not stop at the cache: Bechtel
// & Yun (arXiv:2005.10864) show a DRAM bandwidth hog is at least as
// damaging as cache-level contention while barely moving LLC-centric
// counters, and Zhang et al. (arXiv:1603.03404) locate both the damage
// and the effective mitigation (MemGuard-style per-VM bandwidth budgets)
// at the memory controller.
//
// Like internal/bus, the controller is a per-step arbiter: components
// accumulate byte demands during a step, Resolve(dt) arbitrates them and
// returns a reused-scratch view of what each owner received and at what
// average per-line latency. The model is deterministic and allocation
// free in steady state.
//
// # Arbitration model
//
// Requests interleave line addresses evenly across the channels of one
// socket, so the per-channel demand composition equals the socket-group
// composition and the group can be arbitrated as one pool of
// ChannelsPerSocket x ChannelBandwidth (this symmetry is exact for the
// even-interleaving assumption and keeps Resolve closed-form).
//
// Row-buffer interference: an owner that has the channel to itself keeps
// its intrinsic row-buffer hit fraction. Requests collide with another
// tenant's stream with probability interf = utilization x (1 - share):
// at idle channels streams rarely interleave regardless of tenant count,
// while on a saturated channel an owner keeps only its demand share of
// its locality (effHit = hit x (1 - interf)), and the colliding fraction
// of its misses are row conflicts rather than plain misses. A streaming
// hog therefore keeps its own locality while destroying everyone else's
// — the asymmetry that makes bandwidth DoS effective.
//
// NUMA: each owner has a home socket; a configurable fraction of its
// traffic targets remotely-homed pages, paying the remote latency factor,
// consuming channel time at 1/RemoteBandwidthFactor per line, and passing
// through the bounded socket interconnect first.
//
// MemGuard budgets: a per-owner bytes/second cap is applied to the
// owner's demand before fair-share arbitration — the reversible
// mitigation primitive the respond ladder's bandwidth rung actuates.
package mem

import "fmt"

// Owner identifies a memory-controller client (a VM id); it matches
// bus.Owner and cache.Owner numerically but is declared separately so the
// packages stay decoupled.
type Owner int32

// NUMAConfig describes the socket/channel topology and its timing.
type NUMAConfig struct {
	// Sockets is the number of NUMA nodes (>= 1).
	Sockets int
	// ChannelsPerSocket is the number of DRAM channels per socket (>= 1).
	ChannelsPerSocket int
	// ChannelBandwidth is one channel's peak bandwidth in bytes per
	// simulated second.
	ChannelBandwidth float64
	// LineBytes is the size of one DRAM request (a cache line).
	LineBytes float64
	// RowHitLatency / RowMissLatency / RowConflictLatency are the
	// per-request service latencies in seconds for an open-row hit, a
	// closed-row miss (activate + access) and a row conflict
	// (precharge + activate + access). Must be ascending.
	RowHitLatency      float64
	RowMissLatency     float64
	RowConflictLatency float64
	// RemoteLatencyFactor multiplies the latency of requests served by a
	// non-home socket (>= 1).
	RemoteLatencyFactor float64
	// RemoteBandwidthFactor is the channel-time efficiency of remote
	// requests in (0, 1]: one remote line occupies 1/factor line-slots of
	// the serving socket's channels.
	RemoteBandwidthFactor float64
	// InterSocketBandwidth caps the total remote traffic *into* each
	// socket in bytes per second (the QPI/UPI link). <= 0 means unbounded.
	// Ignored with one socket.
	InterSocketBandwidth float64
}

// DefaultNUMAConfig returns a topology loosely modelled on a two-channel
// DDR4 socket: 12.8 GB/s per channel, 15/45/75 ns row hit/miss/conflict,
// and a one-channel-wide interconnect with a 1.6x remote latency penalty.
func DefaultNUMAConfig(sockets int) NUMAConfig {
	return NUMAConfig{
		Sockets:               sockets,
		ChannelsPerSocket:     2,
		ChannelBandwidth:      12.8e9,
		LineBytes:             64,
		RowHitLatency:         15e-9,
		RowMissLatency:        45e-9,
		RowConflictLatency:    75e-9,
		RemoteLatencyFactor:   1.6,
		RemoteBandwidthFactor: 0.6,
		InterSocketBandwidth:  12.8e9,
	}
}

// Validate checks the topology.
func (c NUMAConfig) Validate() error {
	if c.Sockets < 1 {
		return fmt.Errorf("mem: need >= 1 socket, got %d", c.Sockets)
	}
	if c.ChannelsPerSocket < 1 {
		return fmt.Errorf("mem: need >= 1 channel per socket, got %d", c.ChannelsPerSocket)
	}
	if c.ChannelBandwidth <= 0 {
		return fmt.Errorf("mem: non-positive channel bandwidth %v", c.ChannelBandwidth)
	}
	if c.LineBytes <= 0 {
		return fmt.Errorf("mem: non-positive line size %v", c.LineBytes)
	}
	if c.RowHitLatency <= 0 || c.RowMissLatency < c.RowHitLatency || c.RowConflictLatency < c.RowMissLatency {
		return fmt.Errorf("mem: row latencies must be ascending positive, got %v/%v/%v",
			c.RowHitLatency, c.RowMissLatency, c.RowConflictLatency)
	}
	if c.RemoteLatencyFactor < 1 {
		return fmt.Errorf("mem: remote latency factor %v < 1", c.RemoteLatencyFactor)
	}
	if c.RemoteBandwidthFactor <= 0 || c.RemoteBandwidthFactor > 1 {
		return fmt.Errorf("mem: remote bandwidth factor %v outside (0,1]", c.RemoteBandwidthFactor)
	}
	return nil
}

// BaselineLatency returns the per-line latency an owner with the given
// intrinsic row-buffer hit fraction sees on an otherwise idle local
// socket — the reference point contention stalls are measured against.
func (c NUMAConfig) BaselineLatency(rowHitFrac float64) float64 {
	return rowHitFrac*c.RowHitLatency + (1-rowHitFrac)*c.RowMissLatency
}

// SocketCapacity returns one socket group's line capacity per simulated
// second.
func (c NUMAConfig) SocketCapacity() float64 {
	return float64(c.ChannelsPerSocket) * c.ChannelBandwidth / c.LineBytes
}

// Stats accumulates per-owner delivered traffic and latency.
type Stats struct {
	// Requested / Delivered are line counts (after budget clamping for
	// Delivered's denominator semantics, see DeliveryRatio).
	Requested float64
	Delivered float64
	// Bytes is the delivered traffic in bytes.
	Bytes float64
	// LatencySum is the delivered-line-weighted total latency in seconds;
	// LatencySum/Delivered is the average per-line latency.
	LatencySum float64
}

// DeliveryRatio returns Delivered/Requested, or 1 when nothing was
// requested (an idle client is not considered throttled).
func (s Stats) DeliveryRatio() float64 {
	if s.Requested == 0 { //memdos:ignore floateq exact zero means no request was ever recorded; division guard
		return 1
	}
	return s.Delivered / s.Requested
}

// AvgLatency returns the average per-line latency in seconds, or 0 when
// nothing was delivered.
func (s Stats) AvgLatency() float64 {
	if s.Delivered == 0 { //memdos:ignore floateq exact zero means nothing was delivered; division guard
		return 0
	}
	return s.LatencySum / s.Delivered
}

// Resolution is the per-owner outcome of one Resolve. It is a view over
// the controller's scratch buffers: valid until the next Resolve call,
// which is the lifetime every per-step caller needs. Owners that
// requested nothing read as zero (ratio 1).
type Resolution struct {
	req, lines, latSum []float64
}

// LinesOf returns the DRAM lines delivered to owner this step.
func (r Resolution) LinesOf(o Owner) float64 {
	if o >= 0 && int(o) < len(r.lines) {
		return r.lines[o]
	}
	return 0
}

// RatioOf returns delivered/requested lines for owner this step (1 when
// the owner requested nothing).
func (r Resolution) RatioOf(o Owner) float64 {
	if o < 0 || int(o) >= len(r.req) || r.req[o] == 0 { //memdos:ignore floateq exact zero means no request this step; division guard
		return 1
	}
	return r.lines[o] / r.req[o]
}

// LatencyOf returns owner's average per-line latency this step in
// seconds, or 0 when nothing was delivered.
func (r Resolution) LatencyOf(o Owner) float64 {
	if o < 0 || int(o) >= len(r.lines) || r.lines[o] == 0 { //memdos:ignore floateq exact zero means nothing was delivered; division guard
		return 0
	}
	return r.latSum[o] / r.lines[o]
}

// LatencySumOf returns owner's delivered-line-weighted latency total this
// step in seconds.
func (r Resolution) LatencySumOf(o Owner) float64 {
	if o >= 0 && int(o) < len(r.latSum) {
		return r.latSum[o]
	}
	return 0
}

// Controller is the multi-socket memory-controller arbiter. It is not
// safe for concurrent use.
//
// Per-owner state lives in dense slices indexed by Owner (owners are
// small VM ids), mirroring internal/bus: Resolve runs once per simulation
// step and must not allocate in steady state.
type Controller struct {
	cfg NUMAConfig

	// Per-owner configuration (grown on first touch).
	homes      []int32   // home socket
	remoteFrac []float64 // fraction of traffic on remotely-homed pages
	budgets    []float64 // MemGuard cap in bytes/second (0 = unlimited)

	// Per-step demand, cleared by Resolve.
	reqLines []float64 // lines wanted this step (pre-budget)
	hitSum   []float64 // rowHitFrac x lines, for the demand-weighted mean

	stats []Stats

	// Resolve scratch, reused across steps and returned as a view.
	capped   []float64 // budget-clamped lines
	resReq   []float64 // pre-budget lines (ratio denominator)
	resLines []float64
	resLat   []float64

	// Per-socket waterfill scratch.
	sockLines []float64 // owner's line demand on the socket under arbitration
	sockUnits []float64 // the same demand in channel-time units
	grant     []float64 // granted units
}

// New returns a controller for the topology.
func New(cfg NUMAConfig) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// MustNew is New but panics on invalid configuration.
func MustNew(cfg NUMAConfig) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the controller's topology.
func (c *Controller) Config() NUMAConfig { return c.cfg }

// grow extends s with zeros so index n is addressable.
func grow(s []float64, n int) []float64 {
	for len(s) <= n {
		s = append(s, 0)
	}
	return s
}

// touch makes owner o addressable in every per-owner slice.
func (c *Controller) touch(o Owner) {
	if o < 0 {
		panic(fmt.Sprintf("mem: invalid owner %d", o))
	}
	for len(c.homes) <= int(o) {
		c.homes = append(c.homes, 0)
	}
	c.remoteFrac = grow(c.remoteFrac, int(o))
	c.budgets = grow(c.budgets, int(o))
	c.reqLines = grow(c.reqLines, int(o))
	c.hitSum = grow(c.hitSum, int(o))
}

// SetHome assigns the owner's home socket (NUMA affinity). New owners
// default to socket 0.
func (c *Controller) SetHome(o Owner, socket int) error {
	if socket < 0 || socket >= c.cfg.Sockets {
		return fmt.Errorf("mem: socket %d outside [0,%d)", socket, c.cfg.Sockets)
	}
	c.touch(o)
	c.homes[o] = int32(socket)
	return nil
}

// Home returns the owner's home socket.
func (c *Controller) Home(o Owner) int {
	if o >= 0 && int(o) < len(c.homes) {
		return int(c.homes[o])
	}
	return 0
}

// SetRemoteFraction declares what fraction of the owner's traffic targets
// remotely-homed pages (split evenly across the other sockets). Ignored
// on single-socket topologies.
func (c *Controller) SetRemoteFraction(o Owner, frac float64) error {
	if frac < 0 || frac > 1 {
		return fmt.Errorf("mem: remote fraction %v outside [0,1]", frac)
	}
	c.touch(o)
	c.remoteFrac[o] = frac
	return nil
}

// RemoteFraction returns the owner's remote-traffic fraction.
func (c *Controller) RemoteFraction(o Owner) float64 {
	if o >= 0 && int(o) < len(c.remoteFrac) {
		return c.remoteFrac[o]
	}
	return 0
}

// SetBudget applies a MemGuard-style delivered-bandwidth cap to the owner
// in bytes per simulated second; 0 clears the cap. The cap clamps the
// owner's demand before fair-share arbitration, so a capped hog stops
// crowding the channel rather than merely receiving less.
func (c *Controller) SetBudget(o Owner, bytesPerSec float64) error {
	if bytesPerSec < 0 {
		return fmt.Errorf("mem: negative bandwidth budget %v", bytesPerSec)
	}
	c.touch(o)
	c.budgets[o] = bytesPerSec
	return nil
}

// Budget returns the owner's bandwidth budget (0 = unlimited).
func (c *Controller) Budget(o Owner) float64 {
	if o >= 0 && int(o) < len(c.budgets) {
		return c.budgets[o]
	}
	return 0
}

// Request records that owner wants to transfer n bytes of DRAM traffic
// this step, with the given intrinsic row-buffer hit fraction (the
// locality its stream achieves on an idle channel: ~0.9+ for sequential
// streaming, lower for pointer-chasing). Calls accumulate; the hit
// fraction is demand-weighted across calls.
func (c *Controller) Request(o Owner, bytes, rowHitFrac float64) {
	if bytes < 0 {
		panic(fmt.Sprintf("mem: negative byte request %v", bytes))
	}
	if rowHitFrac < 0 || rowHitFrac > 1 {
		panic(fmt.Sprintf("mem: row-hit fraction %v outside [0,1]", rowHitFrac))
	}
	c.touch(o)
	lines := bytes / c.cfg.LineBytes
	c.reqLines[o] += lines
	c.hitSum[o] += rowHitFrac * lines
}

// Resolve arbitrates the current step of length dt seconds and returns
// the per-owner delivered lines and average latency. Request state is
// cleared for the next step; the returned view is valid until the next
// Resolve.
//
// Arbitration order: per-owner MemGuard budgets clamp demand; remote
// flows into each socket are scaled down to the interconnect cap; each
// socket group then max-min fair-shares its channel-time among the flows
// it serves. Latencies come from the post-budget demand composition
// (row-buffer interference + congestion), so they are identical at any
// caller-side sharding of the same demand.
//
//memdos:hotpath bench=mem/resolve-1024-vms
func (c *Controller) Resolve(dt float64) Resolution {
	if dt <= 0 {
		panic(fmt.Sprintf("mem: non-positive step %v", dt))
	}
	n := len(c.reqLines)
	c.capped = growTo(c.capped, n)
	c.resReq = growTo(c.resReq, n)
	c.resLines = growTo(c.resLines, n)
	c.resLat = growTo(c.resLat, n)
	c.sockLines = growTo(c.sockLines, n)
	c.sockUnits = growTo(c.sockUnits, n)
	c.grant = growTo(c.grant, n)

	// Budget clamp: a MemGuard cap bounds the lines an owner may move
	// this step before any of its demand reaches a channel.
	for o := 0; o < n; o++ {
		c.resLines[o], c.resLat[o] = 0, 0
		c.resReq[o] = c.reqLines[o]
		c.capped[o] = c.reqLines[o]
		if b := c.budgets[o]; b > 0 {
			if lim := b * dt / c.cfg.LineBytes; c.capped[o] > lim {
				c.capped[o] = lim
			}
		}
	}

	sockets := c.cfg.Sockets
	capUnits := c.cfg.SocketCapacity() * dt
	interCap := 0.0
	if sockets > 1 && c.cfg.InterSocketBandwidth > 0 {
		interCap = c.cfg.InterSocketBandwidth * dt / c.cfg.LineBytes
	}

	for s := 0; s < sockets; s++ {
		// Gather this socket's flows: each owner's local or remote line
		// demand, and the interconnect-capped remote total.
		var remoteTotal float64
		for o := 0; o < n; o++ {
			lines := c.capped[o]
			if lines == 0 { //memdos:ignore floateq exact-zero sparsity fast path: skip idle owners
				c.sockLines[o] = 0
				continue
			}
			r := c.remoteFrac[o]
			if sockets == 1 {
				r = 0
			}
			if int(c.homes[o]) == s {
				c.sockLines[o] = lines * (1 - r)
			} else {
				rem := lines * r / float64(sockets-1)
				c.sockLines[o] = rem
				remoteTotal += rem
			}
		}
		// Interconnect cap: remote flows into this socket scale down
		// proportionally; the capped-out portion never reaches a channel.
		remScale := 1.0
		if interCap > 0 && remoteTotal > interCap {
			remScale = interCap / remoteTotal
		}
		var total float64
		for o := 0; o < n; o++ {
			lines := c.sockLines[o]
			if lines == 0 { //memdos:ignore floateq exact-zero sparsity fast path: skip idle owners
				c.sockUnits[o] = 0
				continue
			}
			if int(c.homes[o]) != s {
				lines *= remScale
				c.sockLines[o] = lines
				c.sockUnits[o] = lines / c.cfg.RemoteBandwidthFactor
			} else {
				c.sockUnits[o] = lines
			}
			total += c.sockLines[o]
		}
		if total == 0 { //memdos:ignore floateq exact zero means the socket is idle this step
			continue
		}
		c.waterfill(n, capUnits)

		// Demand-composition latency: collisions with other tenants'
		// streams decide row-buffer survival (scaled by utilization, so
		// idle channels don't interfere); congestion stretches everything.
		var unitsDemand float64
		for o := 0; o < n; o++ {
			unitsDemand += c.sockUnits[o]
		}
		congestion := 1.0
		util := 1.0
		if capUnits > 0 {
			if unitsDemand > capUnits {
				congestion = unitsDemand / capUnits
			} else {
				util = unitsDemand / capUnits
			}
		}
		for o := 0; o < n; o++ {
			if c.sockUnits[o] == 0 { //memdos:ignore floateq exact-zero sparsity fast path: skip idle owners
				continue
			}
			grantedLines := c.grant[o]
			if int(c.homes[o]) != s {
				grantedLines *= c.cfg.RemoteBandwidthFactor
			}
			share := c.sockLines[o] / total
			hit := 0.0
			if c.capped[o] > 0 && c.reqLines[o] > 0 {
				hit = c.hitSum[o] / c.reqLines[o]
			}
			interf := util * (1 - share)
			effHit := hit * (1 - interf)
			lat := effHit*c.cfg.RowHitLatency +
				(1-effHit)*((1-interf)*c.cfg.RowMissLatency+interf*c.cfg.RowConflictLatency)
			lat *= congestion
			if int(c.homes[o]) != s {
				lat *= c.cfg.RemoteLatencyFactor
			}
			c.resLines[o] += grantedLines
			c.resLat[o] += lat * grantedLines
		}
	}

	for o := 0; o < n; o++ {
		st := c.statsFor(Owner(o))
		st.Requested += c.reqLines[o]
		st.Delivered += c.resLines[o]
		st.Bytes += c.resLines[o] * c.cfg.LineBytes
		st.LatencySum += c.resLat[o]
	}

	for o := 0; o < n; o++ {
		c.reqLines[o], c.hitSum[o] = 0, 0
	}
	return Resolution{req: c.resReq, lines: c.resLines, latSum: c.resLat}
}

// waterfill max-min fair-shares capUnits of channel time among the
// per-owner unit demands in c.sockUnits, writing grants to c.grant.
// Exact max-min: repeatedly satisfy every flow below the current fair
// share in full, then split what remains evenly. Deterministic in owner
// order; terminates in at most n rounds.
func (c *Controller) waterfill(n int, capUnits float64) {
	remaining := capUnits
	active := 0
	var demand float64
	for o := 0; o < n; o++ {
		c.grant[o] = 0
		if c.sockUnits[o] > 0 {
			active++
			demand += c.sockUnits[o]
		}
	}
	for active > 0 {
		if demand <= remaining {
			for o := 0; o < n; o++ {
				if c.sockUnits[o] > 0 && c.grant[o] == 0 { //memdos:ignore floateq grant is exactly 0 until assigned below
					c.grant[o] = c.sockUnits[o]
				}
			}
			return
		}
		fair := remaining / float64(active)
		progressed := false
		for o := 0; o < n; o++ {
			d := c.sockUnits[o]
			if d > 0 && c.grant[o] == 0 && d <= fair { //memdos:ignore floateq grant is exactly 0 until assigned
				c.grant[o] = d
				remaining -= d
				demand -= d
				active--
				progressed = true
			}
		}
		if !progressed {
			for o := 0; o < n; o++ {
				if c.sockUnits[o] > 0 && c.grant[o] == 0 { //memdos:ignore floateq grant is exactly 0 until assigned
					c.grant[o] = fair
				}
			}
			return
		}
	}
}

// growTo resizes s to exactly n elements, reusing capacity.
func growTo(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //memdos:ignore hotalloc grow-once scratch: capacity tracks the owner count; TestResolveZeroAlloc pins the steady state
	}
	return s[:n]
}

func (c *Controller) statsFor(o Owner) *Stats {
	for len(c.stats) <= int(o) {
		c.stats = append(c.stats, Stats{})
	}
	return &c.stats[o]
}

// Stats returns a copy of the accumulated statistics for owner.
func (c *Controller) Stats(o Owner) Stats {
	if o >= 0 && int(o) < len(c.stats) {
		return c.stats[o]
	}
	return Stats{}
}

// ResetStats zeroes the accumulated statistics.
func (c *Controller) ResetStats() {
	for i := range c.stats {
		c.stats[i] = Stats{}
	}
}
