package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(500)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1500 {
		t.Fatalf("counter = %d, want %d", got, 8*1500)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	g.Set(100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(0.5)
				g.Add(-0.5)
			}
		}()
	}
	wg.Wait()
	// +0.5/-0.5 pairs cancel exactly in binary floating point.
	if got := g.Value(); got != 100 {
		t.Fatalf("gauge = %v, want 100", got)
	}
	g.Set(-3)
	if g.Value() != -3 {
		t.Fatalf("gauge after Set = %v", g.Value())
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	var g Gauge
	g.Set(2.5)
	r.RegisterCounter("demo_total", "demo counter", &c)
	r.RegisterGauge("demo_depth", "demo gauge", &g)
	r.RegisterGaugeFunc("demo_shards", "per-shard", func() []Point {
		// Deliberately unsorted: WriteTo must sort by label set.
		return []Point{{Labels: `shard="1"`, Value: 2}, {Labels: `shard="0"`, Value: 1}}
	})

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP demo_total demo counter",
		"# TYPE demo_total counter",
		"demo_total 7",
		"# TYPE demo_depth gauge",
		"demo_depth 2.5",
		"demo_shards{shard=\"0\"} 1",
		"demo_shards{shard=\"1\"} 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Label sets render in sorted order.
	if strings.Index(out, `shard="0"`) > strings.Index(out, `shard="1"`) {
		t.Error("labelled points not sorted")
	}
	// Families render in registration order.
	if strings.Index(out, "demo_total") > strings.Index(out, "demo_depth") {
		t.Error("families not in registration order")
	}
}

func TestRegistryEmptyFamilyOmitted(t *testing.T) {
	r := NewRegistry()
	r.RegisterGaugeFunc("empty_family", "nothing yet", func() []Point { return nil })
	var sb strings.Builder
	r.WriteTo(&sb)
	if strings.Contains(sb.String(), "empty_family") {
		t.Errorf("empty family rendered: %s", sb.String())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.RegisterCounter("dup_total", "", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.RegisterCounter("dup_total", "", &c)
}
