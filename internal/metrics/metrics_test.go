package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FN
	c.Add(false, true)  // FP
	c.Add(false, false) // TN
	c.Add(true, true)   // TP
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Errorf("confusion = %v", c)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", got)
	}
	if got := c.Specificity(); got != 0.5 {
		t.Errorf("specificity = %v", got)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", got)
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestConfusionNaNWhenUndefined(t *testing.T) {
	var c Confusion
	if !math.IsNaN(c.Recall()) || !math.IsNaN(c.Specificity()) || !math.IsNaN(c.Precision()) {
		t.Error("empty confusion should yield NaN rates")
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Start: 10, End: 20}
	if iv.Contains(9.99) || !iv.Contains(10) || !iv.Contains(19.99) || iv.Contains(20) {
		t.Error("interval bounds wrong")
	}
	if InAny([]Interval{{0, 5}, {10, 15}}, 12) != true {
		t.Error("InAny missed")
	}
	if InAny(nil, 12) {
		t.Error("InAny on nil")
	}
}

func decisionsEvery(step, until float64, alarmFrom, alarmTo float64) []Decision {
	var out []Decision
	for ts := step; ts <= until; ts += step {
		out = append(out, Decision{Time: ts, Alarm: ts >= alarmFrom && ts < alarmTo})
	}
	return out
}

func TestEvaluatePerfectDetector(t *testing.T) {
	truth := []Interval{{Start: 50, End: 100}}
	dec := decisionsEvery(1, 100, 50, 100)
	c := Evaluate(dec, truth, 0)
	if c.FP != 0 || c.FN != 0 {
		t.Errorf("perfect detector scored %v", c)
	}
	if c.Recall() != 1 || c.Specificity() != 1 {
		t.Errorf("rates = %v / %v", c.Recall(), c.Specificity())
	}
}

func TestEvaluateGraceSkipsReactionTime(t *testing.T) {
	truth := []Interval{{Start: 50, End: 100}}
	// Detector alarms 10s late — with a 15s grace that is not an FN.
	dec := decisionsEvery(1, 100, 60, 100)
	noGrace := Evaluate(dec, truth, 0)
	if noGrace.FN == 0 {
		t.Error("late detector should have FNs without grace")
	}
	withGrace := Evaluate(dec, truth, 15)
	if withGrace.FN != 0 {
		t.Errorf("grace did not absorb reaction time: %v", withGrace)
	}
	// Grace also applies after the attack ends.
	decay := decisionsEvery(1, 120, 50, 105)
	c := Evaluate(decay, []Interval{{Start: 50, End: 100}}, 10)
	if c.FP != 0 {
		t.Errorf("post-attack alarm decay counted as FP: %v", c)
	}
}

func TestDetectionDelay(t *testing.T) {
	truth := []Interval{{Start: 50, End: 100}, {Start: 200, End: 250}}
	dec := []Decision{
		{Time: 40, Alarm: false},
		{Time: 55, Alarm: false},
		{Time: 70, Alarm: true}, // first alarm in attack 1: delay 20
		{Time: 150, Alarm: false},
		// attack 2 never detected
		{Time: 220, Alarm: false},
	}
	delays := DetectionDelay(dec, truth)
	if len(delays) != 2 {
		t.Fatalf("%d delays", len(delays))
	}
	if delays[0] != 20 {
		t.Errorf("delay[0] = %v, want 20", delays[0])
	}
	if !math.IsNaN(delays[1]) {
		t.Errorf("delay[1] = %v, want NaN", delays[1])
	}
	if got := MeanDelay(delays); got != 20 {
		t.Errorf("mean delay = %v", got)
	}
	if !math.IsNaN(MeanDelay([]float64{math.NaN()})) {
		t.Error("all-NaN mean should be NaN")
	}
}

func TestNormalizedExecTime(t *testing.T) {
	got, err := NormalizedExecTime(100, 103)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.03) > 1e-12 {
		t.Errorf("normalized = %v", got)
	}
	if _, err := NormalizedExecTime(0, 1); err == nil {
		t.Error("zero baseline accepted")
	}
	if _, err := NormalizedExecTime(1, -1); err == nil {
		t.Error("negative time accepted")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Quantile(xs, 0.5); got != 2 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := Quantile(xs, 1); got != 3 {
		t.Errorf("max = %v", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median = %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Error("Quantile mutated input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 11)
	for i := range xs {
		xs[i] = float64(i) // 0..10
	}
	s := Summarize(xs)
	if s.Median != 5 || s.P10 != 1 || s.P90 != 9 {
		t.Errorf("summary = %+v", s)
	}
}

func TestQuantileOrderedProperty(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		xs := make([]float64, n)
		x := float64(seed % 100)
		for i := range xs {
			x = math.Mod(x*37+11, 1000)
			xs[i] = x
		}
		return Quantile(xs, 0.1) <= Quantile(xs, 0.5) && Quantile(xs, 0.5) <= Quantile(xs, 0.9)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestEvaluateConsistencyProperty(t *testing.T) {
	// Property: total scored decisions + skipped = len(decisions).
	check := func(alarmSeed uint8) bool {
		truth := []Interval{{Start: 30, End: 60}}
		dec := decisionsEvery(1, 100, float64(alarmSeed%80), 100)
		c := Evaluate(dec, truth, 5)
		scored := c.TP + c.FP + c.TN + c.FN
		return scored <= len(dec) && scored >= len(dec)-20 // 2 boundaries x 5s grace x 1/s + margin
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
