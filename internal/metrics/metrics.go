// Package metrics computes the evaluation measures of the paper: recall,
// specificity, detection delay, and normalized execution time (performance
// overhead).
//
// Ground truth and detector output are both represented as boolean
// time-lines sampled at the detector's decision instants; recall and
// specificity are computed instant-by-instant (Section VI-B of the paper),
// detection delay as the gap between an attack's start and the first alarm
// inside that attack's window.
package metrics

import (
	"fmt"
	"math"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add folds one (truth, predicted) decision into the matrix.
func (c *Confusion) Add(truth, predicted bool) {
	switch {
	case truth && predicted:
		c.TP++
	case truth && !predicted:
		c.FN++
	case !truth && predicted:
		c.FP++
	default:
		c.TN++
	}
}

// Recall returns TP/(TP+FN): the ability to detect an attack when present.
// It returns NaN when no positive instants exist.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Specificity returns TN/(TN+FP): the ability to infer "no attack" when the
// attack is absent. It returns NaN when no negative instants exist.
func (c Confusion) Specificity() float64 {
	if c.TN+c.FP == 0 {
		return math.NaN()
	}
	return float64(c.TN) / float64(c.TN+c.FP)
}

// Precision returns TP/(TP+FP), NaN when the detector never alarmed.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// String formats the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d", c.TP, c.FP, c.TN, c.FN)
}

// Interval is a half-open time span [Start, End).
type Interval struct {
	Start, End float64
}

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t float64) bool { return t >= iv.Start && t < iv.End }

// InAny reports whether t falls inside any of the intervals.
func InAny(ivs []Interval, t float64) bool {
	for _, iv := range ivs {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// Decision is one detector output: at Time the detector believed
// Alarm (attack present or not).
type Decision struct {
	Time  float64
	Alarm bool
}

// Evaluate scores a decision time-line against ground-truth attack
// intervals. Decisions within grace seconds after an attack starts or ends
// are skipped: the paper's detectors are allowed their inherent reaction
// time (H_C windows etc.) without it counting as misclassification, and
// symmetric grace after an attack ends avoids punishing alarm decay.
func Evaluate(decisions []Decision, truth []Interval, grace float64) Confusion {
	var c Confusion
	for _, d := range decisions {
		if inGrace(truth, d.Time, grace) {
			continue
		}
		c.Add(InAny(truth, d.Time), d.Alarm)
	}
	return c
}

// inGrace reports whether t is within grace seconds after any attack
// boundary (start or end).
func inGrace(truth []Interval, t, grace float64) bool {
	if grace <= 0 {
		return false
	}
	for _, iv := range truth {
		if t >= iv.Start && t < iv.Start+grace {
			return true
		}
		if t >= iv.End && t < iv.End+grace {
			return true
		}
	}
	return false
}

// DetectionDelay returns, for each ground-truth attack interval, the delay
// from its start to the first alarm decision inside it; attacks never
// detected yield NaN entries.
func DetectionDelay(decisions []Decision, truth []Interval) []float64 {
	out := make([]float64, len(truth))
	for i, iv := range truth {
		out[i] = math.NaN()
		for _, d := range decisions {
			if d.Alarm && iv.Contains(d.Time) {
				out[i] = d.Time - iv.Start
				break
			}
		}
	}
	return out
}

// MeanDelay averages the finite delays; NaN if none are finite.
func MeanDelay(delays []float64) float64 {
	var sum float64
	n := 0
	for _, d := range delays {
		if !math.IsNaN(d) {
			sum += d
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// NormalizedExecTime returns withDetector/baseline, the paper's
// performance-overhead metric (Fig. 14); 1.0 means no overhead.
func NormalizedExecTime(baseline, withDetector float64) (float64, error) {
	if baseline <= 0 || withDetector <= 0 {
		return 0, fmt.Errorf("metrics: non-positive execution times %v/%v", baseline, withDetector)
	}
	return withDetector / baseline, nil
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear
// interpolation; it panics on empty input or out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: bad quantile args (n=%d, q=%v)", len(xs), q))
	}
	sorted := append([]float64(nil), xs...)
	insertionSort(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// insertionSort keeps the package free of a sort import for tiny inputs;
// quantiles here are over at most tens of runs.
func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Summary aggregates a batch of per-run accuracy results, as plotted in the
// paper's box-style figures (median with 10th/90th percentiles).
type Summary struct {
	Median, P10, P90 float64
}

// Summarize computes the Summary of xs; it panics on empty input.
func Summarize(xs []float64) Summary {
	return Summary{
		Median: Quantile(xs, 0.5),
		P10:    Quantile(xs, 0.1),
		P90:    Quantile(xs, 0.9),
	}
}
