package metrics

// GC accounting for the serving path. The ingest work in this repo is
// judged bmgc-style — throughput plus GC pause totals — so the daemon
// exposes the runtime's collector counters and the load generator reads
// them directly for before/after deltas.

import "runtime"

// GCStats is a point-in-time snapshot of the Go runtime's garbage
// collector accounting, the two numbers a bmgc-style benchmark report
// needs: cumulative stop-the-world pause time and completed cycles.
type GCStats struct {
	// PauseTotal is the cumulative stop-the-world pause time in seconds
	// since process start.
	PauseTotal float64
	// Cycles is the number of completed GC cycles since process start.
	Cycles uint64
}

// ReadGCStats snapshots the runtime's GC counters.
func ReadGCStats() GCStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return GCStats{
		PauseTotal: float64(ms.PauseTotalNs) / 1e9,
		Cycles:     uint64(ms.NumGC),
	}
}

// Sub returns the delta g minus earlier, for before/after measurements
// around a load window.
func (g GCStats) Sub(earlier GCStats) GCStats {
	return GCStats{
		PauseTotal: g.PauseTotal - earlier.PauseTotal,
		Cycles:     g.Cycles - earlier.Cycles,
	}
}

// RegisterRuntimeGC exposes the runtime's GC counters on r:
//
//	memdos_gc_pause_seconds_total  cumulative stop-the-world pause time
//	memdos_gc_cycles_total         completed GC cycles
//
// Both are sampled at exposition time via runtime.ReadMemStats; one
// read covers both families, but the registry collects them
// independently and a scrape is rare enough that two reads do not
// matter.
func RegisterRuntimeGC(r *Registry) {
	r.RegisterCounterFunc("memdos_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time in seconds.",
		func() []Point {
			return []Point{{Value: ReadGCStats().PauseTotal}}
		})
	r.RegisterCounterFunc("memdos_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() []Point {
			return []Point{{Value: float64(ReadGCStats().Cycles)}}
		})
}
