package metrics

// This file adds *serving-path* metrics — lock-free counters and gauges
// with Prometheus-style text exposition — as opposed to the paper's
// evaluation metrics in metrics.go. The streaming hub (internal/stream)
// and the memdosd daemon use them for their /metrics endpoint; they are
// deliberately tiny so hot-path increments cost one atomic add.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta using a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Point is one exposed time-series value. Labels, when non-empty, is a
// pre-formatted Prometheus label set without braces (`shard="3"`).
type Point struct {
	Labels string
	Value  float64
}

// collector yields the current points of one registered metric family.
type collector func() []Point

type family struct {
	name, help, typ string
	collect         collector
}

// Registry holds named metric families and renders them in the Prometheus
// text exposition format. Register* calls may happen at any time; WriteTo
// is safe concurrently with them.
type Registry struct {
	mu sync.Mutex
	// families and byName hold the registered metric families, in
	// registration order and by name. guarded by mu.
	families []family
	byName   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

func (r *Registry) register(name, help, typ string, c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.byName[name] = len(r.families)
	r.families = append(r.families, family{name: name, help: help, typ: typ, collect: c})
}

// RegisterCounter exposes c under name.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.register(name, help, "counter", func() []Point {
		return []Point{{Value: float64(c.Value())}}
	})
}

// RegisterGauge exposes g under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.register(name, help, "gauge", func() []Point {
		return []Point{{Value: g.Value()}}
	})
}

// RegisterGaugeFunc exposes the result of fn — which may return several
// labelled points — under name, sampled at exposition time.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() []Point) {
	r.register(name, help, "gauge", fn)
}

// RegisterCounterFunc is RegisterGaugeFunc with counter semantics.
func (r *Registry) RegisterCounterFunc(name, help string, fn func() []Point) {
	r.register(name, help, "counter", fn)
}

// WriteTo renders every family in the Prometheus text format, families in
// registration order and labelled points sorted by label set.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()

	var n int64
	for _, f := range fams {
		pts := f.collect()
		if len(pts) == 0 {
			continue
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Labels < pts[j].Labels })
		m, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		n += int64(m)
		if err != nil {
			return n, err
		}
		for _, p := range pts {
			if p.Labels == "" {
				m, err = fmt.Fprintf(w, "%s %v\n", f.name, p.Value)
			} else {
				m, err = fmt.Fprintf(w, "%s{%s} %v\n", f.name, p.Labels, p.Value)
			}
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}
