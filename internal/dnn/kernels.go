package dnn

// Kernel layer: cache-blocked GEMM/GEMV and fused vector primitives over
// float64 slices, shared by every layer's forward and backward pass. All
// matrices are dense row-major with an explicit leading dimension (row
// stride), so strided views — a time step sliced out of a [B][T][C]
// tensor, a transposed weight block — feed the kernels without copies.
//
// Determinism contract: for a fixed kernel, every output element
// accumulates its k-terms in ascending k order, and the tile-parallel
// path partitions *output rows* into contiguous shards (shardBounds, the
// same fixed-shard scheme GradShards uses) without ever splitting the
// k-loop. A worker therefore owns its rows outright — no reduction across
// workers exists — and results are byte-identical at workers=1 vs N.

import (
	"math"
	"sync"
	"sync/atomic"
)

// Blocking parameters. C is held in mc-row slabs so one slab (mc×n
// float64) stays cache-resident across a K-block, while each K-block's
// kc-row B-panel is re-streamed once per slab instead of once per row.
const (
	gemmMC = 64  // output rows per C slab
	gemmKC = 256 // K depth per B panel
	// kernelParallelFlops gates the tile-parallel path: below ~256k
	// multiply-adds the fork/join overhead exceeds the win.
	kernelParallelFlops = 1 << 18
)

// kernelWorkers is the worker count for the tile-parallel GEMM path; 1
// keeps every kernel serial (and allocation-free).
var kernelWorkers atomic.Int32

func init() { kernelWorkers.Store(1) }

// SetKernelWorkers sets the tile-parallel GEMM worker count and returns
// the previous value. n <= 1 selects the serial path. Any value yields
// byte-identical results (see the determinism contract above); workers
// only change wall time.
func SetKernelWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(kernelWorkers.Swap(int32(n)))
}

// shardWorkers returns how many workers the tile-parallel path should use
// for an m-row kernel costing flops multiply-adds; 1 selects the serial
// path (below the threshold the fork/join overhead exceeds the win).
func shardWorkers(m, flops int) int {
	w := int(kernelWorkers.Load())
	if w > m {
		w = m
	}
	if flops < kernelParallelFlops {
		return 1
	}
	return w
}

// forkRows runs body over [0, m) output rows, one contiguous shard per
// worker. Only the tile-parallel path pays the closure and goroutine
// costs; serial callers invoke their range kernel directly so the
// workers=1 path stays allocation-free.
func forkRows(m, w int, body func(lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(w)
	for j := 0; j < w; j++ {
		lo, hi := shardBounds(m, w, j)
		go func(lo, hi int) { //memdos:ignore hotalloc only the tile-parallel path pays the spawn; the workers=1 path never reaches forkRows
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmNN computes C += A·B with A m×k (row stride lda), B k×n (ldb) and
// C m×n (ldc), blocked over K and over C rows.
func gemmNN(m, n, k int, a []float64, lda int, bm []float64, ldb int, c []float64, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if w := shardWorkers(m, m*n*k); w > 1 {
		forkRows(m, w, func(lo, hi int) { //memdos:ignore hotalloc closure exists only on the tile-parallel path; the serial path calls the range kernel directly
			gemmNNRange(lo, hi, n, k, a, lda, bm, ldb, c, ldc)
		})
		return
	}
	gemmNNRange(0, m, n, k, a, lda, bm, ldb, c, ldc)
}

func gemmNNRange(rlo, rhi, n, k int, a []float64, lda int, bm []float64, ldb int, c []float64, ldc int) {
	for kk := 0; kk < k; kk += gemmKC {
		kHi := min(kk+gemmKC, k)
		for ii := rlo; ii < rhi; ii += gemmMC {
			iHi := min(ii+gemmMC, rhi)
			for i := ii; i < iHi; i++ {
				ar := a[i*lda : i*lda+k]
				cr := c[i*ldc : i*ldc+n]
				// Four k-steps per pass quarter the C load/store traffic;
				// each element still accumulates in ascending k order, and
				// the unroll phase depends only on kk (a gemmKC multiple),
				// never on the row shard, so worker counts cannot change
				// the result.
				kc := kk
				for ; kc+3 < kHi; kc += 4 {
					a0, a1, a2, a3 := ar[kc], ar[kc+1], ar[kc+2], ar[kc+3]
					b0 := bm[kc*ldb : kc*ldb+n]
					b1 := bm[(kc+1)*ldb : (kc+1)*ldb+n]
					b2 := bm[(kc+2)*ldb : (kc+2)*ldb+n]
					b3 := bm[(kc+3)*ldb : (kc+3)*ldb+n]
					for j, bv := range b0 {
						cr[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; kc < kHi; kc++ {
					aik := ar[kc]
					br := bm[kc*ldb : kc*ldb+n]
					for j, bv := range br {
						cr[j] += aik * bv
					}
				}
			}
		}
	}
}

// gemmTN computes C += Aᵀ·B with A k×m (lda), B k×n (ldb), C m×n (ldc):
// the dW kernel (activationsᵀ · output gradients). K runs outermost so A
// and B stream exactly once while the small C block stays resident.
func gemmTN(m, n, k int, a []float64, lda int, bm []float64, ldb int, c []float64, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if w := shardWorkers(m, m*n*k); w > 1 {
		forkRows(m, w, func(lo, hi int) { //memdos:ignore hotalloc closure exists only on the tile-parallel path; the serial path calls the range kernel directly
			gemmTNRange(lo, hi, n, k, a, lda, bm, ldb, c, ldc)
		})
		return
	}
	gemmTNRange(0, m, n, k, a, lda, bm, ldb, c, ldc)
}

func gemmTNRange(rlo, rhi, n, k int, a []float64, lda int, bm []float64, ldb int, c []float64, ldc int) {
	// Four k-steps per pass as in gemmNNRange: the unroll phase depends
	// only on k, so every row shard performs identical per-element
	// arithmetic.
	kc := 0
	for ; kc+3 < k; kc += 4 {
		a0, a1 := a[kc*lda:], a[(kc+1)*lda:]
		a2, a3 := a[(kc+2)*lda:], a[(kc+3)*lda:]
		b0 := bm[kc*ldb : kc*ldb+n]
		b1 := bm[(kc+1)*ldb : (kc+1)*ldb+n]
		b2 := bm[(kc+2)*ldb : (kc+2)*ldb+n]
		b3 := bm[(kc+3)*ldb : (kc+3)*ldb+n]
		for i := rlo; i < rhi; i++ {
			av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
			cr := c[i*ldc : i*ldc+n]
			for j, bv := range b0 {
				cr[j] += av0*bv + av1*b1[j] + av2*b2[j] + av3*b3[j]
			}
		}
	}
	for ; kc < k; kc++ {
		arow := a[kc*lda:]
		br := bm[kc*ldb : kc*ldb+n]
		for i := rlo; i < rhi; i++ {
			av := arow[i]
			cr := c[i*ldc : i*ldc+n]
			for j, bv := range br {
				cr[j] += av * bv
			}
		}
	}
}

// gemmNT computes C += A·Bᵀ with A m×k (lda), B n×k (ldb), C m×n (ldc):
// the dX kernel (output gradients · weightsᵀ). Each C element is one dot
// product of contiguous rows.
func gemmNT(m, n, k int, a []float64, lda int, bm []float64, ldb int, c []float64, ldc int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if w := shardWorkers(m, m*n*k); w > 1 {
		forkRows(m, w, func(lo, hi int) { //memdos:ignore hotalloc closure exists only on the tile-parallel path; the serial path calls the range kernel directly
			gemmNTRange(lo, hi, n, k, a, lda, bm, ldb, c, ldc)
		})
		return
	}
	gemmNTRange(0, m, n, k, a, lda, bm, ldb, c, ldc)
}

func gemmNTRange(rlo, rhi, n, k int, a []float64, lda int, bm []float64, ldb int, c []float64, ldc int) {
	// Column pairs share the A-row loads. Pairing depends only on n —
	// rows are what shards partition — and each column's accumulation
	// pattern matches dotVec exactly, so a column computes the same bits
	// in the paired and tail paths at any worker count.
	for i := rlo; i < rhi; i++ {
		ar := a[i*lda : i*lda+k]
		cr := c[i*ldc : i*ldc+n]
		j := 0
		for ; j+1 < n; j += 2 {
			s, t := dotVec2(ar, bm[j*ldb:j*ldb+k], bm[(j+1)*ldb:(j+1)*ldb+k])
			cr[j] += s
			cr[j+1] += t
		}
		if j < n {
			cr[j] += dotVec(ar, bm[j*ldb:j*ldb+k])
		}
	}
}

// gemv computes y += A·x with A m×n (lda), x length n, y length m.
func gemv(m, n int, a []float64, lda int, x, y []float64) {
	for i := 0; i < m; i++ {
		y[i] += dotVec(a[i*lda:i*lda+n], x)
	}
}

// gemvT computes y += Aᵀ·x with A m×n (lda), x length m, y length n.
func gemvT(m, n int, a []float64, lda int, x, y []float64) {
	for i := 0; i < m; i++ {
		axpy(x[i], a[i*lda:i*lda+n], y)
	}
}

// axpy computes y += alpha·x over equal-length slices.
func axpy(alpha float64, x, y []float64) {
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// dotVec returns x·y over equal-length slices, with four independent
// accumulators to break the FP-add latency chain. The accumulation
// pattern is a pure function of the length, so every caller — any shard,
// any worker count — sums a given pair of slices identically.
func dotVec(x, y []float64) float64 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// dotVec2 returns (x·y, x·z) in one pass, each accumulated with exactly
// dotVec's pattern, sharing the x loads.
func dotVec2(x, y, z []float64) (float64, float64) {
	y = y[:len(x)]
	z = z[:len(x)]
	var s0, s1, s2, s3 float64
	var t0, t1, t2, t3 float64
	i := 0
	for ; i+3 < len(x); i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		s0 += x0 * y[i]
		s1 += x1 * y[i+1]
		s2 += x2 * y[i+2]
		s3 += x3 * y[i+3]
		t0 += x0 * z[i]
		t1 += x1 * z[i+1]
		t2 += x2 * z[i+2]
		t3 += x3 * z[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
		t0 += x[i] * z[i]
	}
	return (s0 + s1) + (s2 + s3), (t0 + t1) + (t2 + t3)
}

// addTo computes dst += src over equal-length slices.
func addTo(dst, src []float64) {
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] += v
	}
}

// addBiasRows initializes each of the m rows of C (ldc) to the bias
// vector (length n), the beta=0 preamble of every bias-affine GEMM.
func addBiasRows(m, n int, c []float64, ldc int, bias []float64) {
	for i := 0; i < m; i++ {
		copy(c[i*ldc:i*ldc+n], bias)
	}
}

// colSums computes dst[j] += Σ_i A[i][j] over the m×n matrix A (lda):
// the db kernel (column sums of the output gradient).
func colSums(m, n int, a []float64, lda int, dst []float64) {
	for i := 0; i < m; i++ {
		addTo(dst[:n], a[i*lda:i*lda+n])
	}
}

// tanhRowDot replaces row with tanh(row) element-wise and returns
// tanh(row)·v — the fused add-bias-activation/score kernel of the
// attention layer (row already holds the pre-activations).
func tanhRowDot(row, v []float64) float64 {
	_ = v[len(row)-1]
	var s float64
	for i, p := range row {
		t := math.Tanh(p)
		row[i] = t
		s += v[i] * t
	}
	return s
}

// transposeRows writes dst = srcᵀ for one row-major rows×cols matrix,
// tiled so both the strided reads and the sequential writes stay within a
// cache-line-sized window.
func transposeRows(dst, src []float64, rows, cols int) {
	const tile = 16
	for i0 := 0; i0 < rows; i0 += tile {
		iHi := min(i0+tile, rows)
		for j0 := 0; j0 < cols; j0 += tile {
			jHi := min(j0+tile, cols)
			for i := i0; i < iHi; i++ {
				for j := j0; j < jHi; j++ {
					dst[j*rows+i] = src[i*cols+j]
				}
			}
		}
	}
}
