package dnn

import (
	"math"
	"testing"

	"memdos/internal/sim"
)

func TestChannelNormRoundTrip(t *testing.T) {
	windows := [][][]float64{
		{{100, 10}, {120, 12}},
		{{80, 9}, {110, 11}},
	}
	n, err := FitChannelNorm(windows)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized training data should be ~zero-mean unit-std per channel.
	var sum, sq [2]float64
	count := 0
	for _, w := range windows {
		for _, row := range n.Apply(w) {
			for c := 0; c < 2; c++ {
				sum[c] += row[c]
				sq[c] += row[c] * row[c]
			}
			count++
		}
	}
	for c := 0; c < 2; c++ {
		mean := sum[c] / float64(count)
		if math.Abs(mean) > 1e-9 {
			t.Errorf("channel %d mean = %v", c, mean)
		}
		if v := sq[c]/float64(count) - mean*mean; math.Abs(v-1) > 1e-9 {
			t.Errorf("channel %d variance = %v", c, v)
		}
	}
}

func TestChannelNormErrors(t *testing.T) {
	if _, err := FitChannelNorm(nil); err == nil {
		t.Error("empty data accepted")
	}
}

func TestChannelNormConstantChannel(t *testing.T) {
	n, err := FitChannelNorm([][][]float64{{{5, 5}, {5, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	// Constant channel: std floor avoids division by zero.
	out := n.Apply([][]float64{{5, 5}})
	if math.IsNaN(out[0][0]) || math.IsInf(out[0][0], 0) {
		t.Errorf("constant channel normalization = %v", out[0][0])
	}
}

func TestConditionWindow(t *testing.T) {
	w := [][]float64{{1, 2}, {3, 4}}
	out := conditionWindow(w, 1, 3)
	if len(out[0]) != 5 {
		t.Fatalf("conditioned width = %d", len(out[0]))
	}
	if out[0][3] != 1 || out[0][2] != 0 || out[0][4] != 0 {
		t.Errorf("one-hot wrong: %v", out[0])
	}
	if out[1][0] != 3 || out[1][1] != 4 {
		t.Errorf("data not copied: %v", out[1])
	}
}

func TestNewCascadeValidation(t *testing.T) {
	if _, err := NewCascade(1, CompactLSTMFCNConfig, sim.NewRNG(1)); err == nil {
		t.Error("single-app cascade accepted")
	}
}

// synthCascadeSamples builds windows for 2 synthetic apps x 3 attack
// states. App identity is carried by the access *pattern* (app 1
// oscillates, app 0 is flat) so it survives the attacks' level scaling —
// as with the real workloads, where shape outlives scale. Bus lock scales
// accesses by 0.3, cleansing inflates misses 5x.
func synthCascadeSamples(rng *sim.RNG, n, w int) []CascadeSample {
	var out []CascadeSample
	for i := 0; i < n; i++ {
		app := i % 2
		atk := (i / 2) % 3
		win := make([][]float64, w)
		for t := range win {
			shape := 1.0
			if app == 1 {
				shape = 1 + 0.6*math.Sin(2*math.Pi*float64(t)/5)
			}
			acc := shape * (100 + rng.Normal(0, 8))
			miss := shape * (10 + rng.Normal(0, 1))
			switch atk {
			case ClassBusLock:
				acc *= 0.3
				miss *= 0.3
			case ClassCleansing:
				acc *= 0.6
				miss *= 5
			}
			win[t] = []float64{acc, miss}
		}
		out = append(out, CascadeSample{Window: win, AppLabel: app, AttackLabel: atk})
	}
	return out
}

func tinyArch(channels, classes int) LSTMFCNConfig {
	return LSTMFCNConfig{
		Channels:    channels,
		Classes:     classes,
		ConvFilters: [3]int{6, 8, 6},
		Kernels:     [3]int{9, 5, 3},
		LSTMCells:   8,
		Dropout:     0.1,
	}
}

func TestCascadeEndToEnd(t *testing.T) {
	rng := sim.NewRNG(50)
	samples := synthCascadeSamples(rng, 360, 20)
	c, err := NewCascade(2, tinyArch, sim.NewRNG(51))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 12
	appRes, atkRes, err := TrainCascade(c, samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if appRes.BestValAcc < 0.95 {
		t.Errorf("app classifier val acc = %v", appRes.BestValAcc)
	}
	if atkRes.BestValAcc < 0.85 {
		t.Errorf("attack classifier val acc = %v", atkRes.BestValAcc)
	}
	// Fresh windows through the full cascade.
	test := synthCascadeSamples(sim.NewRNG(52), 60, 20)
	appOK, atkOK := 0, 0
	for _, s := range test {
		app, atk := c.Classify(s.Window)
		if app == s.AppLabel {
			appOK++
		}
		if atk == s.AttackLabel {
			atkOK++
		}
	}
	if frac := float64(appOK) / float64(len(test)); frac < 0.9 {
		t.Errorf("cascade app accuracy = %v", frac)
	}
	if frac := float64(atkOK) / float64(len(test)); frac < 0.8 {
		t.Errorf("cascade attack accuracy = %v", frac)
	}
}

func TestTrainCascadeEmpty(t *testing.T) {
	c, _ := NewCascade(2, tinyArch, sim.NewRNG(1))
	if _, _, err := TrainCascade(c, nil, DefaultTrainConfig()); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestClassConfusion(t *testing.T) {
	if _, err := NewClassConfusion(1); err == nil {
		t.Error("K=1 accepted")
	}
	c, err := NewClassConfusion(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Accuracy() != 0 {
		t.Error("empty matrix accuracy should be 0")
	}
	pairs := [][2]int{{0, 0}, {0, 0}, {0, 1}, {1, 1}, {2, 0}, {2, 2}}
	for _, p := range pairs {
		if err := c.Add(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Add(5, 0); err == nil {
		t.Error("out-of-range class accepted")
	}
	if got := c.Accuracy(); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
	rec := c.PerClassRecall()
	if math.Abs(rec[0]-2.0/3) > 1e-12 || rec[1] != 1 || rec[2] != 0.5 {
		t.Errorf("per-class recall = %v", rec)
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestEvaluateCascade(t *testing.T) {
	rng := sim.NewRNG(70)
	samples := synthCascadeSamples(rng, 360, 20)
	c, _ := NewCascade(2, tinyArch, sim.NewRNG(71))
	cfg := DefaultTrainConfig()
	cfg.Epochs = 12
	if _, _, err := TrainCascade(c, samples, cfg); err != nil {
		t.Fatal(err)
	}
	test := synthCascadeSamples(sim.NewRNG(72), 60, 20)
	app, atk, err := EvaluateCascade(c, test)
	if err != nil {
		t.Fatal(err)
	}
	if app.Accuracy() < 0.85 {
		t.Errorf("app confusion accuracy = %v", app.Accuracy())
	}
	if atk.Accuracy() < 0.75 {
		t.Errorf("attack confusion accuracy = %v", atk.Accuracy())
	}
	if _, _, err := EvaluateCascade(c, nil); err == nil {
		t.Error("empty samples accepted")
	}
}
