package dnn

import (
	"fmt"
	"math"

	"memdos/internal/sim"
)

// Dense is a fully connected layer applied per (batch, time) position:
// y = x*W + b with W of shape [Cin][Cout]. The (B, T) positions are one
// flat [B·T × Cin] matrix, so forward and backward are single GEMMs.
type Dense struct {
	In, Out int
	w, b    *Param
	x       *Tensor
	y, dx   *Tensor // workspaces
}

// NewDense returns a Dense layer with Glorot-uniform initialization.
func NewDense(in, out int, rng *sim.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		w: newParam(fmt.Sprintf("dense%dx%d.w", in, out), in*out),
		b: newParam(fmt.Sprintf("dense%dx%d.b", in, out), out),
	}
	limit := math.Sqrt(6 / float64(in+out))
	for i := range d.w.W {
		d.w.W[i] = rng.Uniform(-limit, limit)
	}
	return d
}

// Forward computes the affine map as one GEMM over the flattened batch.
func (d *Dense) Forward(x *Tensor, train bool) *Tensor {
	if x.C != d.In {
		panic(fmt.Sprintf("dnn: dense expects %d channels, got %d", d.In, x.C))
	}
	d.x = x
	m := x.B * x.T
	y := ensureTensor(&d.y, x.B, x.T, d.Out)
	addBiasRows(m, d.Out, y.Data, d.Out, d.b.W)
	gemmNN(m, d.Out, d.In, x.Data, d.In, d.w.W, d.Out, y.Data, d.Out)
	return y
}

// Backward propagates gradients and accumulates dW, db:
// dW += xᵀ·g, db += colsums(g), dx = g·Wᵀ.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	x := d.x
	m := x.B * x.T
	dx := ensureTensor(&d.dx, x.B, x.T, d.In)
	colSums(m, d.Out, grad.Data, d.Out, d.b.Grad)
	gemmTN(d.In, d.Out, m, x.Data, d.In, grad.Data, d.Out, d.w.Grad, d.Out)
	gemmNT(m, d.In, d.Out, grad.Data, d.Out, d.w.W, d.Out, dx.Data, d.In)
	return dx
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// ReLU is the rectified linear activation. With InPlace set it mutates the
// incoming tensor (the upstream layer's workspace) instead of writing to
// its own, saving a full activation pass; the model enables this on the
// arena path, where the upstream buffer is dead after the activation.
type ReLU struct {
	InPlace bool
	mask    []bool
	y, dx   *Tensor // workspaces (out-of-place mode only)
}

// Forward zeroes negative inputs.
func (r *ReLU) Forward(x *Tensor, train bool) *Tensor {
	y := x
	if !r.InPlace {
		y = ensureTensor(&r.y, x.B, x.T, x.C)
	}
	mask := ensureBools(&r.mask, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			mask[i] = true
			y.Data[i] = v
		} else {
			mask[i] = false
			y.Data[i] = 0
		}
	}
	return y
}

// Backward gates the gradient by the forward mask.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	dx := grad
	if !r.InPlace {
		dx = ensureTensor(&r.dx, grad.B, grad.T, grad.C)
	}
	for i, v := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil.
func (r *ReLU) Params() []*Param { return nil }

// Dropout zeroes a fraction of activations during training and scales the
// survivors (inverted dropout). InPlace mutates the incoming tensor like
// ReLU.InPlace does.
type Dropout struct {
	Rate    float64
	InPlace bool
	rng     *sim.RNG
	mask    []float64
	y, dx   *Tensor // workspaces (out-of-place mode only)
}

// NewDropout returns a dropout layer with the given drop rate.
func NewDropout(rate float64, rng *sim.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("dnn: dropout rate %v outside [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Forward applies the mask during training; identity at inference.
func (d *Dropout) Forward(x *Tensor, train bool) *Tensor {
	if !train || d.Rate == 0 { //memdos:ignore floateq Rate is a config literal; exact zero means dropout disabled
		d.mask = nil
		return x
	}
	y := x
	if !d.InPlace {
		y = ensureTensor(&d.y, x.B, x.T, x.C)
	}
	mask := ensureFloats(&d.mask, len(x.Data))
	scale := 1 / (1 - d.Rate)
	for i, v := range x.Data {
		if d.rng.Float64() < d.Rate {
			mask[i] = 0
			y.Data[i] = 0
		} else {
			mask[i] = scale
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *Tensor) *Tensor {
	if d.mask == nil {
		return grad
	}
	dx := grad
	if !d.InPlace {
		dx = ensureTensor(&d.dx, grad.B, grad.T, grad.C)
	}
	for i, v := range grad.Data {
		dx.Data[i] = v * d.mask[i]
	}
	return dx
}

// Params returns nil.
func (d *Dropout) Params() []*Param { return nil }

// GlobalAvgPool averages over the time axis: [B][T][C] -> [B][1][C].
type GlobalAvgPool struct {
	t     int
	y, dx *Tensor // workspaces
}

// Forward computes per-channel time averages.
func (g *GlobalAvgPool) Forward(x *Tensor, train bool) *Tensor {
	g.t = x.T
	y := ensureTensor(&g.y, x.B, 1, x.C)
	inv := 1 / float64(x.T)
	for b := 0; b < x.B; b++ {
		yr := y.Row(b, 0)
		for t := 0; t < x.T; t++ {
			addTo(yr, x.Row(b, t))
		}
		for c := range yr {
			yr[c] *= inv
		}
	}
	return y
}

// Backward spreads the gradient uniformly over time.
func (g *GlobalAvgPool) Backward(grad *Tensor) *Tensor {
	dx := ensureTensor(&g.dx, grad.B, g.t, grad.C)
	inv := 1 / float64(g.t)
	for b := 0; b < grad.B; b++ {
		gr := grad.Row(b, 0)
		for t := 0; t < g.t; t++ {
			dxr := dx.Row(b, t)
			for c := range gr {
				dxr[c] = gr[c] * inv
			}
		}
	}
	return dx
}

// Params returns nil.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Transpose is the LSTM-FCN "dimension shuffle": it swaps the time and
// channel axes, so the LSTM branch perceives the same window from the
// transposed view ([B][T][C] -> [B][C][T]). The input must not alias the
// layer's own previous output (each call reuses its workspace).
type Transpose struct {
	y, dx *Tensor // workspaces
}

// Forward swaps axes.
func (tr *Transpose) Forward(x *Tensor, train bool) *Tensor {
	y := ensureTensor(&tr.y, x.B, x.C, x.T)
	for b := 0; b < x.B; b++ {
		off := b * x.T * x.C
		transposeRows(y.Data[off:off+x.T*x.C], x.Data[off:off+x.T*x.C], x.T, x.C)
	}
	return y
}

// Backward swaps axes of the gradient.
func (tr *Transpose) Backward(grad *Tensor) *Tensor {
	dx := ensureTensor(&tr.dx, grad.B, grad.C, grad.T)
	for b := 0; b < grad.B; b++ {
		off := b * grad.T * grad.C
		transposeRows(dx.Data[off:off+grad.T*grad.C], grad.Data[off:off+grad.T*grad.C], grad.T, grad.C)
	}
	return dx
}

// Params returns nil.
func (tr *Transpose) Params() []*Param { return nil }

// concatChannelsInto concatenates vector activations ([B][1][*]) along the
// channel axis into the workspace at *ws.
func concatChannelsInto(ws **Tensor, a, b *Tensor) *Tensor {
	if a.B != b.B || a.T != 1 || b.T != 1 {
		panic("dnn: concat expects matching [B][1][*] tensors")
	}
	y := ensureTensor(ws, a.B, 1, a.C+b.C)
	for i := 0; i < a.B; i++ {
		copy(y.Row(i, 0)[:a.C], a.Row(i, 0))
		copy(y.Row(i, 0)[a.C:], b.Row(i, 0))
	}
	return y
}

// splitChannelsInto splits a gradient produced against concatChannelsInto
// output into the two workspaces.
func splitChannelsInto(wsA, wsB **Tensor, grad *Tensor, ca, cb int) (*Tensor, *Tensor) {
	if grad.C != ca+cb {
		panic(fmt.Sprintf("dnn: split %d != %d+%d", grad.C, ca, cb))
	}
	ga := ensureTensor(wsA, grad.B, 1, ca)
	gb := ensureTensor(wsB, grad.B, 1, cb)
	for i := 0; i < grad.B; i++ {
		copy(ga.Row(i, 0), grad.Row(i, 0)[:ca])
		copy(gb.Row(i, 0), grad.Row(i, 0)[ca:])
	}
	return ga, gb
}
