package dnn

import (
	"fmt"
	"math"

	"memdos/internal/sim"
)

// Dense is a fully connected layer applied per (batch, time) position:
// y = x*W + b with W of shape [Cin][Cout].
type Dense struct {
	In, Out int
	w, b    *Param
	x       *Tensor
}

// NewDense returns a Dense layer with Glorot-uniform initialization.
func NewDense(in, out int, rng *sim.RNG) *Dense {
	d := &Dense{
		In: in, Out: out,
		w: newParam(fmt.Sprintf("dense%dx%d.w", in, out), in*out),
		b: newParam(fmt.Sprintf("dense%dx%d.b", in, out), out),
	}
	limit := math.Sqrt(6 / float64(in+out))
	for i := range d.w.W {
		d.w.W[i] = rng.Uniform(-limit, limit)
	}
	return d
}

// Forward computes the affine map.
func (d *Dense) Forward(x *Tensor, train bool) *Tensor {
	if x.C != d.In {
		panic(fmt.Sprintf("dnn: dense expects %d channels, got %d", d.In, x.C))
	}
	d.x = x
	y := NewTensor(x.B, x.T, d.Out)
	for b := 0; b < x.B; b++ {
		for t := 0; t < x.T; t++ {
			xr, yr := x.Row(b, t), y.Row(b, t)
			for o := 0; o < d.Out; o++ {
				sum := d.b.W[o]
				for i := 0; i < d.In; i++ {
					sum += xr[i] * d.w.W[i*d.Out+o]
				}
				yr[o] = sum
			}
		}
	}
	return y
}

// Backward propagates gradients and accumulates dW, db.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	x := d.x
	dx := NewTensor(x.B, x.T, d.In)
	for b := 0; b < x.B; b++ {
		for t := 0; t < x.T; t++ {
			xr, gr, dxr := x.Row(b, t), grad.Row(b, t), dx.Row(b, t)
			for o := 0; o < d.Out; o++ {
				g := gr[o]
				d.b.Grad[o] += g
				for i := 0; i < d.In; i++ {
					d.w.Grad[i*d.Out+o] += xr[i] * g
					dxr[i] += d.w.W[i*d.Out+o] * g
				}
			}
		}
	}
	return dx
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// Forward zeroes negative inputs.
func (r *ReLU) Forward(x *Tensor, train bool) *Tensor {
	y := x.Clone()
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			y.Data[i] = 0
		}
	}
	return y
}

// Backward gates the gradient by the forward mask.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	dx := grad.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params returns nil.
func (r *ReLU) Params() []*Param { return nil }

// Dropout zeroes a fraction of activations during training and scales the
// survivors (inverted dropout).
type Dropout struct {
	Rate float64
	rng  *sim.RNG
	mask []float64
}

// NewDropout returns a dropout layer with the given drop rate.
func NewDropout(rate float64, rng *sim.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("dnn: dropout rate %v outside [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng}
}

// Forward applies the mask during training; identity at inference.
func (d *Dropout) Forward(x *Tensor, train bool) *Tensor {
	if !train || d.Rate == 0 { //memdos:ignore floateq Rate is a config literal; exact zero means dropout disabled
		d.mask = nil
		return x
	}
	y := x.Clone()
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float64, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := 1 / (1 - d.Rate)
	for i := range x.Data {
		if d.rng.Float64() < d.Rate {
			d.mask[i] = 0
			y.Data[i] = 0
		} else {
			d.mask[i] = scale
			y.Data[i] *= scale
		}
	}
	return y
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *Tensor) *Tensor {
	if d.mask == nil {
		return grad
	}
	dx := grad.Clone()
	for i := range dx.Data {
		dx.Data[i] *= d.mask[i]
	}
	return dx
}

// Params returns nil.
func (d *Dropout) Params() []*Param { return nil }

// GlobalAvgPool averages over the time axis: [B][T][C] -> [B][1][C].
type GlobalAvgPool struct {
	t int
}

// Forward computes per-channel time averages.
func (g *GlobalAvgPool) Forward(x *Tensor, train bool) *Tensor {
	g.t = x.T
	y := NewTensor(x.B, 1, x.C)
	for b := 0; b < x.B; b++ {
		yr := y.Row(b, 0)
		for t := 0; t < x.T; t++ {
			xr := x.Row(b, t)
			for c := range yr {
				yr[c] += xr[c]
			}
		}
		for c := range yr {
			yr[c] /= float64(x.T)
		}
	}
	return y
}

// Backward spreads the gradient uniformly over time.
func (g *GlobalAvgPool) Backward(grad *Tensor) *Tensor {
	dx := NewTensor(grad.B, g.t, grad.C)
	inv := 1 / float64(g.t)
	for b := 0; b < grad.B; b++ {
		gr := grad.Row(b, 0)
		for t := 0; t < g.t; t++ {
			dxr := dx.Row(b, t)
			for c := range gr {
				dxr[c] = gr[c] * inv
			}
		}
	}
	return dx
}

// Params returns nil.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Transpose is the LSTM-FCN "dimension shuffle": it swaps the time and
// channel axes, so the LSTM branch perceives the same window from the
// transposed view ([B][T][C] -> [B][C][T]).
type Transpose struct{}

// Forward swaps axes.
func (Transpose) Forward(x *Tensor, train bool) *Tensor {
	y := NewTensor(x.B, x.C, x.T)
	for b := 0; b < x.B; b++ {
		for t := 0; t < x.T; t++ {
			for c := 0; c < x.C; c++ {
				y.Set(b, c, t, x.At(b, t, c))
			}
		}
	}
	return y
}

// Backward swaps axes of the gradient.
func (Transpose) Backward(grad *Tensor) *Tensor {
	return Transpose{}.Forward(grad, false)
}

// Params returns nil.
func (Transpose) Params() []*Param { return nil }

// concatChannels concatenates vector activations ([B][1][*]) along the
// channel axis and splits gradients back.
func concatChannels(a, b *Tensor) *Tensor {
	if a.B != b.B || a.T != 1 || b.T != 1 {
		panic("dnn: concat expects matching [B][1][*] tensors")
	}
	y := NewTensor(a.B, 1, a.C+b.C)
	for i := 0; i < a.B; i++ {
		copy(y.Row(i, 0)[:a.C], a.Row(i, 0))
		copy(y.Row(i, 0)[a.C:], b.Row(i, 0))
	}
	return y
}

// splitChannels splits a gradient produced against concatChannels output.
func splitChannels(grad *Tensor, ca, cb int) (*Tensor, *Tensor) {
	if grad.C != ca+cb {
		panic(fmt.Sprintf("dnn: split %d != %d+%d", grad.C, ca, cb))
	}
	ga := NewTensor(grad.B, 1, ca)
	gb := NewTensor(grad.B, 1, cb)
	for i := 0; i < grad.B; i++ {
		copy(ga.Row(i, 0), grad.Row(i, 0)[:ca])
		copy(gb.Row(i, 0), grad.Row(i, 0)[ca:])
	}
	return ga, gb
}
