package dnn

import (
	"fmt"
	"math"
)

// SoftmaxCrossEntropy couples the softmax activation with categorical
// cross-entropy loss: Loss(logits, labels) returns the mean loss, the
// per-sample probabilities, and the gradient w.r.t. the logits. The
// returned tensors are freshly allocated; hot loops use LossBuffers.
func SoftmaxCrossEntropy(logits *Tensor, labels []int) (loss float64, probs *Tensor, grad *Tensor) {
	var lb LossBuffers
	return lb.SoftmaxCrossEntropy(logits, labels)
}

// LossBuffers holds the probability and gradient workspaces of the
// softmax cross-entropy head, reused across training steps. The returned
// tensors are valid until the next call on the same buffers.
type LossBuffers struct {
	probs, grad *Tensor
}

// SoftmaxCrossEntropy is the workspace-reusing form of the package-level
// function.
func (lb *LossBuffers) SoftmaxCrossEntropy(logits *Tensor, labels []int) (loss float64, probs *Tensor, grad *Tensor) {
	if logits.T != 1 {
		panic(fmt.Sprintf("dnn: loss expects [B][1][K] logits, got T=%d", logits.T))
	}
	if len(labels) != logits.B {
		panic(fmt.Sprintf("dnn: %d labels for batch of %d", len(labels), logits.B))
	}
	B, K := logits.B, logits.C
	probs = ensureTensor(&lb.probs, B, 1, K)
	grad = ensureTensor(&lb.grad, B, 1, K)
	for b := 0; b < B; b++ {
		if labels[b] < 0 || labels[b] >= K {
			panic(fmt.Sprintf("dnn: label %d out of range [0,%d)", labels[b], K))
		}
		lr := logits.Row(b, 0)
		pr := probs.Row(b, 0)
		maxL := lr[0]
		for _, v := range lr[1:] {
			if v > maxL {
				maxL = v
			}
		}
		var sum float64
		for k := 0; k < K; k++ {
			pr[k] = math.Exp(lr[k] - maxL)
			sum += pr[k]
		}
		for k := 0; k < K; k++ {
			pr[k] /= sum
		}
		p := pr[labels[b]]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		gr := grad.Row(b, 0)
		for k := 0; k < K; k++ {
			gr[k] = pr[k] / float64(B)
		}
		gr[labels[b]] -= 1 / float64(B)
	}
	return loss / float64(B), probs, grad
}

// Argmax returns the index of the largest value in xs.
func Argmax(xs []float64) int {
	best := 0
	for i, v := range xs[1:] {
		if v > xs[best] {
			best = i + 1
		}
	}
	return best
}
