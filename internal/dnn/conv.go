package dnn

import (
	"fmt"
	"math"

	"memdos/internal/sim"
)

// Conv1D is a temporal convolution with "same" zero padding:
// y[b][t][o] = bias[o] + sum_{dt, i} w[o][dt][i] * x[b][t+dt-k/2][i].
type Conv1D struct {
	In, Out, K int
	w, b       *Param
	x          *Tensor
}

// NewConv1D returns a Conv1D with He-uniform initialization (the layers are
// followed by ReLU).
func NewConv1D(in, out, k int, rng *sim.RNG) *Conv1D {
	if k <= 0 || k%2 == 0 {
		panic(fmt.Sprintf("dnn: conv kernel %d must be odd and positive", k))
	}
	c := &Conv1D{
		In: in, Out: out, K: k,
		w: newParam(fmt.Sprintf("conv%dx%dx%d.w", out, k, in), out*k*in),
		b: newParam(fmt.Sprintf("conv%dx%dx%d.b", out, k, in), out),
	}
	limit := math.Sqrt(6 / float64(in*k))
	for i := range c.w.W {
		c.w.W[i] = rng.Uniform(-limit, limit)
	}
	return c
}

// widx returns the flat index of w[o][dt][i].
func (c *Conv1D) widx(o, dt, i int) int { return (o*c.K+dt)*c.In + i }

// Forward computes the padded convolution.
func (c *Conv1D) Forward(x *Tensor, train bool) *Tensor {
	if x.C != c.In {
		panic(fmt.Sprintf("dnn: conv expects %d channels, got %d", c.In, x.C))
	}
	c.x = x
	y := NewTensor(x.B, x.T, c.Out)
	half := c.K / 2
	for b := 0; b < x.B; b++ {
		for t := 0; t < x.T; t++ {
			yr := y.Row(b, t)
			for o := 0; o < c.Out; o++ {
				sum := c.b.W[o]
				for dt := 0; dt < c.K; dt++ {
					src := t + dt - half
					if src < 0 || src >= x.T {
						continue
					}
					xr := x.Row(b, src)
					base := c.widx(o, dt, 0)
					for i := 0; i < c.In; i++ {
						sum += c.w.W[base+i] * xr[i]
					}
				}
				yr[o] = sum
			}
		}
	}
	return y
}

// Backward accumulates parameter gradients and returns dL/dx.
func (c *Conv1D) Backward(grad *Tensor) *Tensor {
	x := c.x
	dx := NewTensor(x.B, x.T, c.In)
	half := c.K / 2
	for b := 0; b < x.B; b++ {
		for t := 0; t < x.T; t++ {
			gr := grad.Row(b, t)
			for o := 0; o < c.Out; o++ {
				g := gr[o]
				if g == 0 { //memdos:ignore floateq exact-zero sparsity fast path; a tolerance would skip real gradient
					continue
				}
				c.b.Grad[o] += g
				for dt := 0; dt < c.K; dt++ {
					src := t + dt - half
					if src < 0 || src >= x.T {
						continue
					}
					xr := x.Row(b, src)
					dxr := dx.Row(b, src)
					base := c.widx(o, dt, 0)
					for i := 0; i < c.In; i++ {
						c.w.Grad[base+i] += xr[i] * g
						dxr[i] += c.w.W[base+i] * g
					}
				}
			}
		}
	}
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.w, c.b} }
