package dnn

import (
	"fmt"
	"math"

	"memdos/internal/sim"
)

// Conv1D is a temporal convolution with "same" zero padding:
// y[b][t][o] = bias[o] + sum_{dt, i} w[o][dt][i] * x[b][t+dt-k/2][i].
//
// Forward lowers the input to an im2col matrix — row (b, t) holds the K·In
// receptive field of output position (b, t), zero where the field hangs
// over the window edge — so the convolution is one [B·T × K·In]·[Out ×
// K·In]ᵀ GEMM. Backward reuses the same matrix for dW and scatters the
// GEMM-produced dcols back through col2im. Both buffers live in the layer
// and are reused across steps.
type Conv1D struct {
	In, Out, K int
	w, b       *Param
	x          *Tensor

	// workspaces
	cols, dcols []float64
	y, dx       *Tensor
}

// NewConv1D returns a Conv1D with He-uniform initialization (the layers are
// followed by ReLU).
func NewConv1D(in, out, k int, rng *sim.RNG) *Conv1D {
	if k <= 0 || k%2 == 0 {
		panic(fmt.Sprintf("dnn: conv kernel %d must be odd and positive", k))
	}
	c := &Conv1D{
		In: in, Out: out, K: k,
		w: newParam(fmt.Sprintf("conv%dx%dx%d.w", out, k, in), out*k*in),
		b: newParam(fmt.Sprintf("conv%dx%dx%d.b", out, k, in), out),
	}
	limit := math.Sqrt(6 / float64(in*k))
	for i := range c.w.W {
		c.w.W[i] = rng.Uniform(-limit, limit)
	}
	return c
}

// widx returns the flat index of w[o][dt][i].
func (c *Conv1D) widx(o, dt, i int) int { return (o*c.K+dt)*c.In + i }

// im2col fills c.cols with the receptive fields of x; rows are (b, t) in
// batch-major order, columns are (dt, i). Out-of-window taps stay zero.
func (c *Conv1D) im2col(x *Tensor) {
	ki := c.K * c.In
	cols := ensureFloats(&c.cols, x.B*x.T*ki)
	half := c.K / 2
	for b := 0; b < x.B; b++ {
		for t := 0; t < x.T; t++ {
			base := (b*x.T + t) * ki
			for dt := 0; dt < c.K; dt++ {
				src := t + dt - half
				if src < 0 || src >= x.T {
					continue
				}
				copy(cols[base+dt*c.In:base+(dt+1)*c.In], x.Row(b, src))
			}
		}
	}
}

// Forward computes the padded convolution as im2col + GEMM.
func (c *Conv1D) Forward(x *Tensor, train bool) *Tensor {
	if x.C != c.In {
		panic(fmt.Sprintf("dnn: conv expects %d channels, got %d", c.In, x.C))
	}
	c.x = x
	c.im2col(x)
	m, ki := x.B*x.T, c.K*c.In
	y := ensureTensor(&c.y, x.B, x.T, c.Out)
	addBiasRows(m, c.Out, y.Data, c.Out, c.b.W)
	gemmNT(m, c.Out, ki, c.cols, ki, c.w.W, ki, y.Data, c.Out)
	return y
}

// Backward accumulates parameter gradients and returns dL/dx:
// db += colsums(g), dW += gᵀ·cols, dcols = g·W, dx = col2im(dcols).
func (c *Conv1D) Backward(grad *Tensor) *Tensor {
	x := c.x
	m, ki := x.B*x.T, c.K*c.In
	colSums(m, c.Out, grad.Data, c.Out, c.b.Grad)
	gemmTN(c.Out, ki, m, grad.Data, c.Out, c.cols, ki, c.w.Grad, ki)

	dcols := ensureFloats(&c.dcols, m*ki)
	gemmNN(m, ki, c.Out, grad.Data, c.Out, c.w.W, ki, dcols, ki)

	dx := ensureTensor(&c.dx, x.B, x.T, c.In)
	half := c.K / 2
	for b := 0; b < x.B; b++ {
		for t := 0; t < x.T; t++ {
			base := (b*x.T + t) * ki
			for dt := 0; dt < c.K; dt++ {
				src := t + dt - half
				if src < 0 || src >= x.T {
					continue
				}
				addTo(dx.Row(b, src), dcols[base+dt*c.In:base+(dt+1)*c.In])
			}
		}
	}
	return dx
}

// Params returns the kernel and bias parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.w, c.b} }
