package dnn

import (
	"bytes"
	"strings"
	"testing"

	"memdos/internal/sim"
)

func trainedTestCascade(t *testing.T) (*Cascade, []CascadeSample) {
	t.Helper()
	rng := sim.NewRNG(60)
	samples := synthCascadeSamples(rng, 180, 16)
	c, err := NewCascade(2, tinyArch, sim.NewRNG(61))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 6
	if _, _, err := TrainCascade(c, samples, cfg); err != nil {
		t.Fatal(err)
	}
	return c, samples
}

func TestCascadeSaveLoadRoundTrip(t *testing.T) {
	c, samples := trainedTestCascade(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCascade(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumApps != c.NumApps {
		t.Errorf("NumApps = %d, want %d", loaded.NumApps, c.NumApps)
	}
	// The reloaded cascade must classify identically to the original.
	for i, s := range samples {
		if i >= 40 {
			break
		}
		a1, k1 := c.Classify(s.Window)
		a2, k2 := loaded.Classify(s.Window)
		if a1 != a2 || k1 != k2 {
			t.Fatalf("sample %d: original (%d,%d) vs loaded (%d,%d)", i, a1, k1, a2, k2)
		}
	}
}

func TestSaveUnbuiltModelFails(t *testing.T) {
	c, err := NewCascade(2, tinyArch, sim.NewRNG(62))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err == nil {
		t.Error("saving an untrained (never-run) cascade should fail")
	}
}

func TestLoadCascadeErrors(t *testing.T) {
	if _, err := LoadCascade(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadCascade(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := LoadCascade(strings.NewReader(`{"version": 1, "num_apps": 1}`)); err == nil {
		t.Error("single-app snapshot accepted")
	}
}

func TestSnapshotTamperDetection(t *testing.T) {
	c, _ := trainedTestCascade(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Rename a parameter key: restore must fail, not silently load.
	tampered := strings.Replace(buf.String(), `"conv1.w"`, `"xonv1.w"`, 1)
	if tampered == buf.String() {
		t.Fatal("expected conv1.w key in snapshot")
	}
	if _, err := LoadCascade(strings.NewReader(tampered)); err == nil {
		t.Error("tampered snapshot accepted")
	}
}
