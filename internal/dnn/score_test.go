package dnn

import (
	"fmt"
	"sync"
	"testing"

	"memdos/internal/sim"
)

// scorerFixture builds an untrained (random-weight) cascade with fitted
// normalization — enough for exact-equivalence tests that only compare
// the scorer against itself or the graph.
func scorerFixture(t testing.TB, w int) (*Cascade, []CascadeSample) {
	t.Helper()
	samples := synthCascadeSamples(sim.NewRNG(91), 64, w)
	c, err := NewCascade(2, tinyArch, sim.NewRNG(92))
	if err != nil {
		t.Fatal(err)
	}
	raw := make([][][]float64, len(samples))
	for i, s := range samples {
		raw[i] = s.Window
	}
	c.Norm, err = FitChannelNorm(raw)
	if err != nil {
		t.Fatal(err)
	}
	return c, samples
}

func flattenWindows(samples []CascadeSample) []float64 {
	w := len(samples[0].Window)
	flat := make([]float64, 0, len(samples)*w*2)
	for _, s := range samples {
		for _, row := range s.Window {
			flat = append(flat, row[0], row[1])
		}
	}
	return flat
}

// ScoreBatch over N windows must be byte-identical to N batch-1 calls —
// logits included, not just verdicts — and invariant under the kernel
// worker count. This is the tentpole's float32 determinism guarantee.
func TestScoreBatchMatchesLooped(t *testing.T) {
	const w = 20
	c, samples := scorerFixture(t, w)
	s, err := c.Scorer(w, ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := len(samples)
	flat := flattenWindows(samples)

	apps := make([]int, n)
	attacks := make([]int, n)
	s.ScoreFlat(n, flat, apps, attacks)
	batchedApp := append([]float32(nil), s.app.logits[:n*s.app.classes]...)
	batchedAtk := append([]float32(nil), s.atk.logits[:n*s.atk.classes]...)

	defer SetKernelWorkers(1)
	for _, workers := range []int{1, 8} {
		SetKernelWorkers(workers)

		// Batched at this worker count.
		gotApps := make([]int, n)
		gotAtks := make([]int, n)
		s.ScoreFlat(n, flat, gotApps, gotAtks)
		for i := 0; i < n*s.app.classes; i++ {
			if s.app.logits[i] != batchedApp[i] {
				t.Fatalf("workers=%d: app logit %d differs from workers=1 batch: %v vs %v",
					workers, i, s.app.logits[i], batchedApp[i])
			}
		}
		for i := 0; i < n*s.atk.classes; i++ {
			if s.atk.logits[i] != batchedAtk[i] {
				t.Fatalf("workers=%d: attack logit %d differs: %v vs %v", workers, i, s.atk.logits[i], batchedAtk[i])
			}
		}

		// Looped batch-1 at this worker count.
		a1 := make([]int, 1)
		k1 := make([]int, 1)
		for i := 0; i < n; i++ {
			s.ScoreFlat(1, flat[i*w*2:(i+1)*w*2], a1, k1)
			if a1[0] != apps[i] || k1[0] != attacks[i] {
				t.Fatalf("workers=%d window %d: looped verdict (%d,%d) != batched (%d,%d)",
					workers, i, a1[0], k1[0], apps[i], attacks[i])
			}
			for o := 0; o < s.app.classes; o++ {
				if s.app.logits[o] != batchedApp[i*s.app.classes+o] {
					t.Fatalf("workers=%d window %d: batch-1 app logit %d differs: %v vs %v",
						workers, i, o, s.app.logits[o], batchedApp[i*s.app.classes+o])
				}
			}
			for o := 0; o < s.atk.classes; o++ {
				if s.atk.logits[o] != batchedAtk[i*s.atk.classes+o] {
					t.Fatalf("workers=%d window %d: batch-1 attack logit %d differs: %v vs %v",
						workers, i, o, s.atk.logits[o], batchedAtk[i*s.atk.classes+o])
				}
			}
		}
	}
}

// Cascade.Classify (the compiled batch-1 path) must agree with the
// float64 graph path on all but rounding-marginal windows.
func TestScorerMatchesGraph(t *testing.T) {
	const w = 20
	c, samples := scorerFixture(t, w)
	agree := 0
	for _, s := range samples {
		app, atk := c.Classify(s.Window)
		gApp, gAtk := c.ClassifyGraph(s.Window)
		if app == gApp && atk == gAtk {
			agree++
		}
	}
	// Random weights leave tiny margins; trained models agree essentially
	// always (TestCascadeEndToEnd exercises that via Classify).
	if agree < len(samples)*9/10 {
		t.Fatalf("scorer agrees with graph on %d/%d windows", agree, len(samples))
	}
}

// trainedOnce shares one trained tiny cascade across the accuracy tests;
// training is the expensive part.
var trainedOnce struct {
	sync.Once
	c   *Cascade
	err error
}

func trainedCascade(t *testing.T) *Cascade {
	t.Helper()
	trainedOnce.Do(func() {
		samples := synthCascadeSamples(sim.NewRNG(50), 360, 20)
		c, err := NewCascade(2, tinyArch, sim.NewRNG(53))
		if err != nil {
			trainedOnce.err = err
			return
		}
		cfg := DefaultTrainConfig()
		cfg.Epochs = 12
		if _, _, err := TrainCascade(c, samples, cfg); err != nil {
			trainedOnce.err = err
			return
		}
		trainedOnce.c = c
	})
	if trainedOnce.err != nil {
		t.Fatal(trainedOnce.err)
	}
	return trainedOnce.c
}

// Int8 quantization is a speed/accuracy tradeoff: on the cascade corpus
// its accuracy must stay within 5 points of float32, and its verdicts
// must agree with float32 on the overwhelming majority of windows.
func TestInt8AccuracyDelta(t *testing.T) {
	c := trainedCascade(t)
	const w = 20
	test := synthCascadeSamples(sim.NewRNG(52), 120, w)

	f32, err := c.Scorer(w, ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.Scorer(w, ScorerOptions{Int8: true})
	if err != nil {
		t.Fatal(err)
	}

	windows := make([][][]float64, len(test))
	for i, s := range test {
		windows[i] = s.Window
	}
	n := len(test)
	fApps, fAtks := make([]int, n), make([]int, n)
	qApps, qAtks := make([]int, n), make([]int, n)
	f32.ScoreBatch(windows, fApps, fAtks)
	q.ScoreBatch(windows, qApps, qAtks)

	var fAcc, qAcc, agree int
	for i, s := range test {
		if fApps[i] == s.AppLabel && fAtks[i] == s.AttackLabel {
			fAcc++
		}
		if qApps[i] == s.AppLabel && qAtks[i] == s.AttackLabel {
			qAcc++
		}
		if fApps[i] == qApps[i] && fAtks[i] == qAtks[i] {
			agree++
		}
	}
	delta := float64(fAcc-qAcc) / float64(n)
	t.Logf("float32 %d/%d, int8 %d/%d, agreement %d/%d", fAcc, n, qAcc, n, agree, n)
	if delta > 0.05 {
		t.Errorf("int8 accuracy %.3f below float32 %.3f by more than 0.05",
			float64(qAcc)/float64(n), float64(fAcc)/float64(n))
	}
	if agree < n*9/10 {
		t.Errorf("int8 agrees with float32 on only %d/%d windows", agree, n)
	}
}

// Classify routes through the batch-1 scorer and must not allocate at
// steady state (the benchpin companion of //memdos:hotpath on the Score
// path).
func TestClassifyZeroAllocs(t *testing.T) {
	const w = 20
	c, samples := scorerFixture(t, w)
	win := samples[0].Window
	c.Classify(win) // build + warm the scorer and arenas
	if allocs := testing.AllocsPerRun(50, func() {
		c.Classify(win)
	}); allocs != 0 {
		t.Errorf("Classify allocates %v per run at steady state", allocs)
	}
}

// ScoreFlat at a steady batch size must not allocate either.
func TestScoreFlatZeroAllocs(t *testing.T) {
	const w, n = 20, 16
	c, samples := scorerFixture(t, w)
	s, err := c.Scorer(w, ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flat := flattenWindows(samples[:n])
	apps, attacks := make([]int, n), make([]int, n)
	s.ScoreFlat(n, flat, apps, attacks)
	if allocs := testing.AllocsPerRun(20, func() {
		s.ScoreFlat(n, flat, apps, attacks)
	}); allocs != 0 {
		t.Errorf("ScoreFlat allocates %v per run at steady state", allocs)
	}

	q, err := c.Scorer(w, ScorerOptions{Int8: true})
	if err != nil {
		t.Fatal(err)
	}
	q.ScoreFlat(n, flat, apps, attacks)
	if allocs := testing.AllocsPerRun(20, func() {
		q.ScoreFlat(n, flat, apps, attacks)
	}); allocs != 0 {
		t.Errorf("int8 ScoreFlat allocates %v per run at steady state", allocs)
	}
}

func benchScorerSetup(b *testing.B, batch int, opts ScorerOptions) (*BatchScorer, []float64, []int, []int) {
	b.Helper()
	const w = 50
	samples := synthCascadeSamples(sim.NewRNG(7), batch, w)
	c, err := NewCascade(2, tinyArch, sim.NewRNG(8))
	if err != nil {
		b.Fatal(err)
	}
	raw := make([][][]float64, len(samples))
	for i, s := range samples {
		raw[i] = s.Window
	}
	if c.Norm, err = FitChannelNorm(raw); err != nil {
		b.Fatal(err)
	}
	s, err := c.Scorer(w, opts)
	if err != nil {
		b.Fatal(err)
	}
	flat := flattenWindows(samples)
	apps, attacks := make([]int, batch), make([]int, batch)
	s.ScoreFlat(batch, flat, apps, attacks) // warm arenas
	return s, flat, apps, attacks
}

// BenchmarkInferBatched* are the CI smoke companions of the
// cmd/memdos bench entries dnn/infer-batched{,-int8}.
func BenchmarkInferBatched(b *testing.B) {
	for _, batch := range []int{1, 32, 256} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			s, flat, apps, attacks := benchScorerSetup(b, batch, ScorerOptions{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ScoreFlat(batch, flat, apps, attacks)
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "windows/s")
		})
	}
}

func BenchmarkInferBatchedInt8(b *testing.B) {
	const batch = 256
	s, flat, apps, attacks := benchScorerSetup(b, batch, ScorerOptions{Int8: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreFlat(batch, flat, apps, attacks)
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "windows/s")
}
