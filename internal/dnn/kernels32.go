package dnn

// Float32 inference kernel layer: the serving-path counterpart of
// kernels.go. Training stays float64 (optimizer stability), but the
// batched scorer (score.go) runs the cascade in float32 — halved memory
// traffic, and on amd64 an AVX2/FMA microkernel (kernels32_amd64.s) that
// the scalar float64 path cannot approach.
//
// The float32 GEMM is NN-form: C += A·B with B stored [k][n], so each
// C row is computed as a running vector sum of broadcast(A[i][kc])·B[kc]
// rank-1 updates. Output elements live in vector lanes end to end — no
// horizontal reductions — which is what makes small-model inference
// fast: the epilogue per 16 outputs is two vector add/stores, not a
// per-element shuffle tree. Weight matrices are staged in [k][n] layout
// at scorer build time (for the LSTM, attention, and dense layers that
// is their natural storage order already).
//
// Determinism contract, mirroring kernels.go: every output element
// accumulates its k-terms in strictly ascending k order through a single
// accumulator chain — identical in every register-block shape of the
// assembly kernel — and the tile-parallel path shards output rows only
// (forkRows), never the k-loop. Results are therefore byte-identical at
// workers=1 vs N and independent of batch size. The int8 path
// accumulates in exact integer arithmetic, so it is trivially
// deterministic.

import "math"

// f32SIMD selects the assembly microkernel; set by the amd64 init when
// the CPU has AVX2+FMA (kernels32_amd64.go), false elsewhere.
var f32SIMD = false

// GEMM epilogues: plain accumulate, or accumulate + ReLU fused into the
// store (valid only when the call is the sole writer of each output
// element, as in the convolution panels).
const (
	epiAdd = iota
	epiAddRelu
)

// sgemm computes C += A·B over float32 with an optional fused epilogue:
// A m×k (row stride lda), B k×n (ldb), C m×n (ldc). Rows shard across
// kernel workers exactly like the float64 gemmNT.
func sgemm(m, n, k int, a []float32, lda int, bm []float32, ldb int, c []float32, ldc int, epi int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if w := shardWorkers(m, m*n*k); w > 1 {
		forkRows(m, w, func(lo, hi int) { //memdos:ignore hotalloc closure exists only on the tile-parallel path; the serial path calls the block kernel directly
			sgemmBlock(hi-lo, n, k, a[lo*lda:], lda, bm, ldb, c[lo*ldc:], ldc, epi)
		})
		return
	}
	sgemmBlock(m, n, k, a, lda, bm, ldb, c, ldc, epi)
}

// sgemmBlock is the serial (already-sharded) GEMM panel: the whole
// m-row loop runs inside the assembly kernel, amortizing the call
// overhead that dominates small-model inference when dispatching one
// row at a time.
func sgemmBlock(m, n, k int, a []float32, lda int, bm []float32, ldb int, c []float32, ldc int, epi int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	if f32SIMD {
		f32NNBlockFMA(&a[0], lda, &bm[0], ldb, &c[0], ldc, m, n, k, epi)
		return
	}
	sgemmGeneric(m, n, k, a, lda, bm, ldb, c, ldc, epi)
}

// sgemmGeneric is the portable scalar kernel: per output row, a running
// sum of broadcast(a)·B[kc] updates in ascending k order — the same
// per-element schedule as the SIMD path, just not the same rounding
// (FMA fuses; scalar does not).
func sgemmGeneric(m, n, k int, a []float32, lda int, bm []float32, ldb int, c []float32, ldc int, epi int) {
	for i := 0; i < m; i++ {
		ar := a[i*lda : i*lda+k]
		cr := c[i*ldc : i*ldc+n]
		for kc, av := range ar {
			if av == 0 { //memdos:ignore floateq exact-zero sparsity fast path: skip multiplies by untouched weights
				continue
			}
			br := bm[kc*ldb : kc*ldb+n]
			for j, bv := range br {
				cr[j] += av * bv
			}
		}
		if epi == epiAddRelu {
			for j, v := range cr {
				if v < 0 {
					cr[j] = 0
				}
			}
		}
	}
}

// i8NTBlock computes C += A·Bᵀ in int32 over int8 operands: the
// quantized GEMM. It keeps the NT layout (B rows are weight channels,
// each output a dot product) because VPMADDWD is a horizontal pairwise
// instruction — the natural int8 shape is the opposite of the float32
// one. The assembly kernel handles the 16-aligned k-prefix for the whole
// panel (VPMOVSXBW + VPMADDWD, the widened A chunk shared across four B
// columns); the scalar loop finishes the tail and is the full fallback.
// Integer accumulation is exact, so the split cannot change the result.
func i8NTBlock(m, n, k int, a []int8, lda int, bm []int8, ldb int, c []int32, ldc int) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	k16 := 0
	if f32SIMD && k >= 16 {
		k16 = k &^ 15
		i8NTBlockAVX2(&a[0], lda, &bm[0], ldb, &c[0], ldc, m, n, k16)
	}
	if k16 == k {
		return
	}
	for i := 0; i < m; i++ {
		ar := a[i*lda : i*lda+k]
		cr := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			br := bm[j*ldb : j*ldb+k]
			var s int32
			for kc := k16; kc < k; kc++ {
				s += int32(ar[kc]) * int32(br[kc])
			}
			cr[j] += s
		}
	}
}

// i8NTRow is the single-row panel of i8NTBlock.
func i8NTRow(a, bm []int8, ldb int, c []int32, n, k int) {
	i8NTBlock(1, n, k, a, k, bm, ldb, c, n)
}

// sbiasRows initializes each of the m rows of C (ldc) to the bias vector
// (length n): the beta=0 preamble of every float32 bias-affine GEMM.
func sbiasRows(m, n int, c []float32, ldc int, bias []float32) {
	for i := 0; i < m; i++ {
		copy(c[i*ldc:i*ldc+n], bias)
	}
}

// saddTo computes dst += src over equal-length slices.
func saddTo(dst, src []float32) {
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] += v
	}
}

// saxpy computes y += alpha·x over equal-length slices.
func saxpy(alpha float32, x, y []float32) {
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// stransposeRows writes dst = srcᵀ for one row-major rows×cols matrix,
// tiled like transposeRows.
func stransposeRows(dst, src []float32, rows, cols int) {
	const tile = 16
	for i0 := 0; i0 < rows; i0 += tile {
		iHi := min(i0+tile, rows)
		for j0 := 0; j0 < cols; j0 += tile {
			jHi := min(j0+tile, cols)
			for i := i0; i < iHi; i++ {
				for j := j0; j < jHi; j++ {
					dst[j*rows+i] = src[i*cols+j]
				}
			}
		}
	}
}

// vsigmoid applies the logistic function in place. Lengths that are
// multiples of 8 take the 8-lane assembly kernel; anything else falls
// back to the scalar expf. The two round differently (the kernel fuses
// with FMA), but the choice depends only on the slice length — fixed by
// model shape — never on batch size, so batched-equals-looped holds.
func vsigmoid(x []float32) {
	if f32SIMD && len(x) >= 8 && len(x)&7 == 0 {
		sigmoidAVX2(&x[0], len(x))
		return
	}
	for i, v := range x {
		x[i] = sigmoidf(v)
	}
}

// vtanh applies tanh in place, with the same dispatch rule as vsigmoid.
func vtanh(x []float32) {
	if f32SIMD && len(x) >= 8 && len(x)&7 == 0 {
		tanhAVX2(&x[0], len(x))
		return
	}
	for i, v := range x {
		x[i] = tanhf(v)
	}
}

// sdot returns x·v over equal-length slices.
func sdot(x, v []float32) float32 {
	_ = v[len(x)-1]
	var s float32
	for i, p := range x {
		s += v[i] * p
	}
	return s
}

// sargmax returns the index of the largest element (first on ties).
func sargmax(row []float32) int {
	best, arg := row[0], 0
	for i, v := range row[1:] {
		if v > best {
			best, arg = v, i+1
		}
	}
	return arg
}

// ---- normalization ----

// normVec is the broadcast pattern the vectorized normalization kernel
// reads: eight mean lanes then eight reciprocal-std lanes, the
// two-channel pattern repeated four times (an octet always starts on an
// even element, so lane parity equals channel parity).
type normVec [16]float32

func makeNormVec(mean, inv [2]float32) normVec {
	var v normVec
	for l := 0; l < 8; l++ {
		v[l] = mean[l&1]
		v[8+l] = inv[l&1]
	}
	return v
}

// snormLog1p writes dst[i] = (log1p(src[i]) - mean[ch])*inv[ch] with
// ch = i&1: the scorer's input normalization. src must start on an even
// channel boundary. On SIMD machines every element goes through the
// 8-lane kernel — the sub-octet tail is re-run through it from a padded
// stack buffer — so results are bitwise independent of how the batch was
// chunked. The scalar fallback is elementwise and trivially so.
func snormLog1p(dst []float32, src []float64, nv *normVec) {
	if len(src) == 0 {
		return
	}
	if f32SIMD {
		n8 := len(src) &^ 7
		if n8 > 0 {
			normLog1pAVX2(&dst[0], &src[0], n8, &nv[0])
		}
		if rem := len(src) - n8; rem > 0 {
			var pad [8]float64
			var out [8]float32
			copy(pad[:], src[n8:])
			normLog1pAVX2(&out[0], &pad[0], 8, &nv[0])
			copy(dst[n8:], out[:rem])
		}
		return
	}
	for i, v := range src {
		dst[i] = (log1pf(float32(v)) - nv[i&7]) * nv[8+(i&7)]
	}
}

// ---- fast float32 transcendentals ----
//
// The gate activations run a few hundred sigmoids/tanhs per window;
// math.Exp at ~15ns each would cost more than an entire conv layer. The
// Cephes-style expf below is exact to ~1 ulp of float32 over the clamped
// range, which keeps the scorer's decisions indistinguishable from the
// float64 graph on the cascade corpus (TestScorerMatchesGraph).

const (
	expf32Log2e  = 1.4426950408889634
	expf32Ln2Hi  = 6.9314575195e-1
	expf32Ln2Lo  = 1.4286067653e-6
	expf32MaxArg = 88.02
	expf32MinArg = -87.33

	// 1.5·2^23: adding it rounds a small float to the nearest integer
	// (ties to even) and leaves that integer in the low mantissa bits.
	expf32Magic     = 12582912.0
	expf32MagicBits = 0x4b400000
)

// expf is e^x in float32 with a degree-5 minimax polynomial on the
// reduced range and exponent reassembly through the float bit pattern.
// Rounding to the nearest octave uses the 1.5·2^23 magic-number trick,
// keeping the hot path branch-free.
func expf(x float32) float32 {
	if x > expf32MaxArg {
		x = expf32MaxArg
	}
	if x < expf32MinArg {
		return 0
	}
	t := x*expf32Log2e + expf32Magic
	n := int32(math.Float32bits(t)) - expf32MagicBits
	rf := t - expf32Magic
	r := x - rf*expf32Ln2Hi
	r -= rf * expf32Ln2Lo
	p := float32(1.9875691500e-4)
	p = p*r + 1.3981999507e-3
	p = p*r + 8.3334519073e-3
	p = p*r + 4.1665795894e-2
	p = p*r + 1.6666665459e-1
	p = p*r + 5.0000001201e-1
	p = p*r*r + r + 1
	return p * math.Float32frombits(uint32(n+127)<<23)
}

// sigmoidf is the logistic function over expf.
func sigmoidf(x float32) float32 { return 1 / (1 + expf(-x)) }

// tanhf is tanh over expf: 1 - 2/(e^{2x}+1), with the argument clamp
// folded into expf's own.
func tanhf(x float32) float32 {
	if x > 9 {
		return 1
	}
	if x < -9 {
		return -1
	}
	return 1 - 2/(expf(2*x)+1)
}

// logf is the natural logarithm in float32 (Cephes polynomial over the
// [sqrt(1/2), sqrt(2)) mantissa range). Inputs <= 0 return -inf/NaN like
// math.Log; the scorer only feeds it 1+counter >= 1.
func logf(x float32) float32 {
	if x <= 0 {
		if x == 0 { //memdos:ignore floateq exact zero maps to -inf like math.Log
			return float32(math.Inf(-1))
		}
		return float32(math.NaN())
	}
	bits := math.Float32bits(x)
	exp := int32(bits>>23) - 126
	m := math.Float32frombits(bits&0x007fffff | 0x3f000000) // [0.5, 1)
	if m < 0.70710677 {
		m *= 2
		exp--
	}
	z := m - 1
	zz := z * z
	p := float32(7.0376836292e-2)
	p = p*z - 1.1514610310e-1
	p = p*z + 1.1676998740e-1
	p = p*z - 1.2420140846e-1
	p = p*z + 1.4249322787e-1
	p = p*z - 1.6668057665e-1
	p = p*z + 2.0000714765e-1
	p = p*z - 2.4999993993e-1
	p = p*z + 3.3333331174e-1
	y := z * zz * p
	e := float32(exp)
	y += e * -2.12194440e-4
	y -= 0.5 * zz
	y += z
	y += e * 0.693359375
	return y
}

// log1pf is ln(1+x) for x >= 0: the counter-normalization transform in
// float32. Counters are either zero or order-one and larger, so the
// naive form loses nothing that the norm statistics could see.
func log1pf(x float32) float32 {
	if x == 0 { //memdos:ignore floateq exact zero short-circuits log1p(0) = 0
		return 0
	}
	return logf(1 + x)
}
