package dnn

import (
	"encoding/json"
	"fmt"
	"io"

	"memdos/internal/sim"
)

// Model serialization: a trained cascade can be saved after training and
// reloaded for deployment (the cloud provider trains once, then ships the
// model to every hypervisor). The format is a versioned JSON document of
// the architecture, the normalization statistics, and every parameter
// block keyed by name.

// serialFormatVersion guards against loading incompatible snapshots.
const serialFormatVersion = 1

// modelSnapshot is the serialized form of one LSTMFCN.
type modelSnapshot struct {
	Config LSTMFCNConfig        `json:"config"`
	Window int                  `json:"window"`
	Params map[string][]float64 `json:"params"`
	// BatchNorm running statistics, keyed like params.
	RunningStats map[string][]float64 `json:"running_stats"`
}

// cascadeSnapshot is the serialized form of a Cascade.
type cascadeSnapshot struct {
	Version int           `json:"version"`
	NumApps int           `json:"num_apps"`
	Norm    ChannelNorm   `json:"norm"`
	App     modelSnapshot `json:"app_model"`
	Attack  modelSnapshot `json:"attack_model"`
}

// snapshot captures an LSTMFCN's state. The model must have been run at
// least once (so the lazily built LSTM exists).
func (m *LSTMFCN) snapshot() (modelSnapshot, error) {
	if m.lstm == nil {
		return modelSnapshot{}, fmt.Errorf("dnn: cannot snapshot a model that has never run (LSTM not built)")
	}
	s := modelSnapshot{
		Config:       m.cfg,
		Window:       m.lstm.In,
		Params:       make(map[string][]float64),
		RunningStats: make(map[string][]float64),
	}
	for _, p := range m.Params() {
		if _, dup := s.Params[p.Name]; dup {
			return modelSnapshot{}, fmt.Errorf("dnn: duplicate parameter name %q", p.Name)
		}
		s.Params[p.Name] = append([]float64(nil), p.W...)
	}
	for i, bn := range []*BatchNorm{m.bn1, m.bn2, m.bn3} {
		key := fmt.Sprintf("bn%d", i)
		s.RunningStats[key+".mean"] = append([]float64(nil), bn.runMean...)
		s.RunningStats[key+".var"] = append([]float64(nil), bn.runVar...)
	}
	return s, nil
}

// restore loads a snapshot into a freshly constructed LSTMFCN.
func (m *LSTMFCN) restore(s modelSnapshot) error {
	if m.cfg != s.Config {
		return fmt.Errorf("dnn: config mismatch: built %+v, snapshot %+v", m.cfg, s.Config)
	}
	m.ensureLSTM(s.Window)
	for _, p := range m.Params() {
		w, ok := s.Params[p.Name]
		if !ok {
			return fmt.Errorf("dnn: snapshot missing parameter %q", p.Name)
		}
		if len(w) != len(p.W) {
			return fmt.Errorf("dnn: parameter %q has %d weights, snapshot %d", p.Name, len(p.W), len(w))
		}
		copy(p.W, w)
	}
	for i, bn := range []*BatchNorm{m.bn1, m.bn2, m.bn3} {
		key := fmt.Sprintf("bn%d", i)
		mean, ok1 := s.RunningStats[key+".mean"]
		variance, ok2 := s.RunningStats[key+".var"]
		if !ok1 || !ok2 || len(mean) != len(bn.runMean) || len(variance) != len(bn.runVar) {
			return fmt.Errorf("dnn: snapshot missing running stats for %s", key)
		}
		copy(bn.runMean, mean)
		copy(bn.runVar, variance)
	}
	return nil
}

// Save serializes a trained cascade to w.
func (c *Cascade) Save(w io.Writer) error {
	app, err := c.App.snapshot()
	if err != nil {
		return fmt.Errorf("dnn: app model: %w", err)
	}
	atk, err := c.Attack.snapshot()
	if err != nil {
		return fmt.Errorf("dnn: attack model: %w", err)
	}
	snap := cascadeSnapshot{
		Version: serialFormatVersion,
		NumApps: c.NumApps,
		Norm:    c.Norm,
		App:     app,
		Attack:  atk,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// LoadCascade reconstructs a cascade saved with Save. The returned cascade
// is ready for Classify.
func LoadCascade(r io.Reader) (*Cascade, error) {
	var snap cascadeSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dnn: decoding cascade: %w", err)
	}
	if snap.Version != serialFormatVersion {
		return nil, fmt.Errorf("dnn: snapshot version %d, want %d", snap.Version, serialFormatVersion)
	}
	if snap.NumApps <= 1 {
		return nil, fmt.Errorf("dnn: snapshot has %d apps", snap.NumApps)
	}
	// Architectures are embedded, so reconstruct with them directly.
	mk := func(ms modelSnapshot) (*LSTMFCN, error) {
		m, err := NewLSTMFCN(ms.Config, newRestoreRNG())
		if err != nil {
			return nil, err
		}
		if err := m.restore(ms); err != nil {
			return nil, err
		}
		return m, nil
	}
	app, err := mk(snap.App)
	if err != nil {
		return nil, fmt.Errorf("dnn: app model: %w", err)
	}
	atk, err := mk(snap.Attack)
	if err != nil {
		return nil, fmt.Errorf("dnn: attack model: %w", err)
	}
	return &Cascade{NumApps: snap.NumApps, Norm: snap.Norm, App: app, Attack: atk}, nil
}

// newRestoreRNG seeds the throwaway initializer used before weights are
// overwritten by a snapshot.
func newRestoreRNG() *sim.RNG { return sim.NewRNG(0xdecade) }

// Clone returns an independent deep copy of a trained cascade. Forward
// passes cache per-layer state, so a single cascade must not be shared by
// concurrent detectors; cloning gives each its own. The cascade must have
// run (or been trained) at least once.
func (c *Cascade) Clone() (*Cascade, error) {
	mk := func(m *LSTMFCN) (*LSTMFCN, error) {
		snap, err := m.snapshot()
		if err != nil {
			return nil, err
		}
		fresh, err := NewLSTMFCN(snap.Config, newRestoreRNG())
		if err != nil {
			return nil, err
		}
		if err := fresh.restore(snap); err != nil {
			return nil, err
		}
		return fresh, nil
	}
	app, err := mk(c.App)
	if err != nil {
		return nil, fmt.Errorf("dnn: cloning app model: %w", err)
	}
	atk, err := mk(c.Attack)
	if err != nil {
		return nil, fmt.Errorf("dnn: cloning attack model: %w", err)
	}
	norm := ChannelNorm{
		Mean: append([]float64(nil), c.Norm.Mean...),
		Std:  append([]float64(nil), c.Norm.Std...),
	}
	return &Cascade{NumApps: c.NumApps, Norm: norm, App: app, Attack: atk}, nil
}
