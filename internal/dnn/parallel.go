package dnn

import (
	"fmt"
	"sync"

	"memdos/internal/sim"
)

// Data-parallel minibatch training. Every minibatch is split into
// cfg.GradShards contiguous shards; shard j is always processed by model
// replica j, which forwards and backwards its shard concurrently with the
// others. The per-replica gradients are then reduced into the master model
// in fixed shard order, weighted by shard size, and the optimizer steps the
// master once.
//
// Semantics: for every layer except BatchNorm the reduced gradient equals
// the full-batch gradient exactly (SoftmaxCrossEntropy produces mean-over-
// batch gradients, and a shard-size-weighted sum of shard means is the
// batch mean). BatchNorm normalizes over its shard rather than the full
// batch — the "ghost batch" semantics standard in data-parallel training —
// so GradShards > 1 is a different (still fully deterministic) training
// trajectory than the serial path. GradShards therefore defaults to off:
// results depend only on the configured shard count, never on GOMAXPROCS
// or goroutine scheduling, but shard count is part of the experiment
// configuration, not a runtime convenience.

// shardBounds returns the [lo, hi) range of shard j when n items are split
// into s contiguous shards, the first n%s shards taking one extra item.
func shardBounds(n, s, j int) (int, int) {
	base := n / s
	extra := n % s
	lo := j*base + min(j, extra)
	size := base
	if j < extra {
		size++
	}
	return lo, lo + size
}

// copyRunningStats copies src's BatchNorm running statistics into m. The
// master model never runs a training forward under data-parallel training,
// so it inherits the stats stream of the replica that always sees shard 0.
func (m *LSTMFCN) copyRunningStats(src *LSTMFCN) {
	dst := []*BatchNorm{m.bn1, m.bn2, m.bn3}
	from := []*BatchNorm{src.bn1, src.bn2, src.bn3}
	for i := range dst {
		copy(dst[i].runMean, from[i].runMean)
		copy(dst[i].runVar, from[i].runVar)
	}
}

// trainDataParallel is Train's GradShards > 1 path.
func trainDataParallel(m *LSTMFCN, train, val *Dataset, cfg TrainConfig) (TrainResult, error) {
	shards := cfg.GradShards

	// Warm the master once in inference mode so the lazily built LSTM
	// exists (no weight or running-stat side effects), then replicate.
	x0, _ := train.batchTensor([]int{0})
	m.Forward(x0, false)
	snap, err := m.snapshot()
	if err != nil {
		return TrainResult{}, err
	}
	reps := make([]*LSTMFCN, shards)
	repPs := make([][]*Param, shards)
	masterPs := m.Params()
	for j := range reps {
		// Distinct construction seeds decorrelate the replicas' dropout
		// streams; restore overwrites the weights with the master's.
		r, err := NewLSTMFCN(m.cfg, sim.NewRNG(cfg.Seed^uint64(0xd00d+j)))
		if err != nil {
			return TrainResult{}, err
		}
		if err := r.restore(snap); err != nil {
			return TrainResult{}, err
		}
		reps[j] = r
		repPs[j] = r.Params()
		if len(repPs[j]) != len(masterPs) {
			return TrainResult{}, fmt.Errorf("dnn: replica has %d params, master %d", len(repPs[j]), len(masterPs))
		}
	}

	rng := sim.NewRNG(cfg.Seed)
	opt := NewAdam(cfg.InitialLR)
	bestVal := -1.0
	sincePlateau := 0
	var res TrainResult

	type shardOut struct {
		loss    float64
		correct int
		n       int
	}
	outs := make([]shardOut, shards)

	// Per-replica batch and loss workspaces: shard j always runs on replica
	// j, so each goroutine reuses its own buffers across all batches.
	repX := make([]*Tensor, shards)
	repY := make([][]int, shards)
	repLoss := make([]LossBuffers, shards)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		idx := rng.Perm(train.Len())
		var epochLoss float64
		batches := 0
		correct := 0
		for lo := 0; lo < len(idx); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			batch := idx[lo:hi]

			var wg sync.WaitGroup
			for j := 0; j < shards; j++ {
				slo, shi := shardBounds(len(batch), shards, j)
				outs[j] = shardOut{}
				if slo >= shi {
					continue
				}
				wg.Add(1)
				go func(j, slo, shi int) {
					defer wg.Done()
					for k, p := range repPs[j] {
						copy(p.W, masterPs[k].W)
						p.ZeroGrad()
					}
					repX[j], repY[j] = train.batchTensorInto(repX[j], repY[j], batch[slo:shi])
					x, y := repX[j], repY[j]
					logits := reps[j].Forward(x, true)
					loss, probs, grad := repLoss[j].SoftmaxCrossEntropy(logits, y)
					reps[j].Backward(grad)
					n := 0
					for b := 0; b < x.B; b++ {
						if Argmax(probs.Row(b, 0)) == y[b] {
							n++
						}
					}
					outs[j] = shardOut{loss: loss, correct: n, n: shi - slo}
				}(j, slo, shi)
			}
			wg.Wait()

			// Reduce in fixed shard order so the sum is independent of
			// which goroutine finished first.
			for _, p := range masterPs {
				p.ZeroGrad()
			}
			batchN := float64(len(batch))
			var batchLoss float64
			for j := 0; j < shards; j++ {
				if outs[j].n == 0 {
					continue
				}
				w := float64(outs[j].n) / batchN
				batchLoss += w * outs[j].loss
				for k, p := range masterPs {
					g := repPs[j][k].Grad
					for i := range p.Grad {
						p.Grad[i] += w * g[i]
					}
				}
				correct += outs[j].correct
			}
			// Shard 0 is never empty while the batch is non-empty, so the
			// master's inference statistics follow replica 0's stream.
			m.copyRunningStats(reps[0])
			opt.Step(masterPs)
			epochLoss += batchLoss
			batches++
		}
		res.FinalLoss = epochLoss / float64(batches)
		res.TrainAccuracy = float64(correct) / float64(train.Len())

		valAcc := res.TrainAccuracy
		if val != nil && val.Len() > 0 {
			valAcc = Evaluate(m, val)
		}
		if valAcc > bestVal {
			bestVal = valAcc
			sincePlateau = 0
		} else {
			sincePlateau++
			if sincePlateau >= cfg.Patience {
				opt.ReduceLR()
				sincePlateau = 0
			}
		}
		if cfg.Verbose != nil {
			cfg.Verbose(fmt.Sprintf("epoch %d: loss=%.4f trainAcc=%.3f valAcc=%.3f lr=%g shards=%d",
				epoch, res.FinalLoss, res.TrainAccuracy, valAcc, opt.LR, shards))
		}
	}
	res.Epochs = cfg.Epochs
	res.BestValAcc = bestVal
	res.FinalLR = opt.LR
	return res, nil
}
