//go:build !amd64

package dnn

// Non-amd64 builds never set f32SIMD, so these stubs are unreachable;
// they exist only to satisfy the linker.

func f32NNBlockFMA(a *float32, lda int, b *float32, ldb int, c *float32, ldc int, m, n, k, epi int) {
	panic("dnn: f32NNBlockFMA called without SIMD support")
}

func normLog1pAVX2(dst *float32, src *float64, n int, nv *float32) {
	panic("dnn: normLog1pAVX2 called without SIMD support")
}

func sigmoidAVX2(x *float32, n int) {
	panic("dnn: sigmoidAVX2 called without SIMD support")
}

func tanhAVX2(x *float32, n int) {
	panic("dnn: tanhAVX2 called without SIMD support")
}

func i8NTBlockAVX2(a *int8, lda int, b *int8, ldb int, c *int32, ldc int, m, n, k16 int) {
	panic("dnn: i8NTBlockAVX2 called without SIMD support")
}

var normConsts [17 * 8]float32
