// Package dnn is a from-scratch, stdlib-only deep-learning stack
// implementing the LSTM-FCN time-series classifier (Karim et al., IEEE
// Access 2018) that the paper's DNN-based detection scheme builds on:
// temporal convolution blocks with batch normalization and ReLU, global
// average pooling, an attention LSTM branch fed through a dimension
// shuffle, dropout, a softmax classifier, and the Adam optimizer with the
// paper's plateau learning-rate schedule.
//
// The paper trains with TensorFlow; no Go binding exists, so the stack is
// reimplemented here. Every layer has a hand-written backward pass,
// verified against numerical gradients in the test suite.
package dnn

import "fmt"

// Tensor is a dense rank-3 array laid out [batch][time][channel].
// Vector-shaped activations use T == 1.
type Tensor struct {
	B, T, C int
	Data    []float64
}

// NewTensor returns a zeroed tensor of the given shape.
func NewTensor(b, t, c int) *Tensor {
	if b <= 0 || t <= 0 || c <= 0 {
		panic(fmt.Sprintf("dnn: invalid tensor shape (%d,%d,%d)", b, t, c))
	}
	return &Tensor{B: b, T: t, C: c, Data: make([]float64, b*t*c)} //memdos:ignore hotalloc allocation is this constructor's contract; hot steady state goes through the ensure* workspace reuse instead
}

// At returns the element at (b, t, c).
func (x *Tensor) At(b, t, c int) float64 { return x.Data[(b*x.T+t)*x.C+c] }

// Set stores v at (b, t, c).
func (x *Tensor) Set(b, t, c int, v float64) { x.Data[(b*x.T+t)*x.C+c] = v }

// Add accumulates v at (b, t, c).
func (x *Tensor) Add(b, t, c int, v float64) { x.Data[(b*x.T+t)*x.C+c] += v }

// Row returns the channel slice at (b, t); mutations write through.
func (x *Tensor) Row(b, t int) []float64 {
	off := (b*x.T + t) * x.C
	return x.Data[off : off+x.C]
}

// Clone returns a deep copy.
func (x *Tensor) Clone() *Tensor {
	y := NewTensor(x.B, x.T, x.C)
	copy(y.Data, x.Data)
	return y
}

// ShapeEquals reports whether y has the same shape as x.
func (x *Tensor) ShapeEquals(y *Tensor) bool {
	return x.B == y.B && x.T == y.T && x.C == y.C
}

// ensureTensor reshapes the workspace tensor at *ws to (b, t, c), reusing
// the backing array when its capacity suffices, and zeroes the data. Every
// layer keeps its outputs and input gradients in such workspaces, so a
// steady-state training step allocates nothing: the returned tensor is
// valid until the next call that reuses the same workspace.
func ensureTensor(ws **Tensor, b, t, c int) *Tensor {
	n := b * t * c
	w := *ws
	if w == nil || cap(w.Data) < n {
		w = NewTensor(b, t, c)
		*ws = w
		return w
	}
	w.B, w.T, w.C = b, t, c
	w.Data = w.Data[:n]
	clear(w.Data)
	return w
}

// ensureFloats resizes the workspace slice at *ws to length n, reusing
// capacity, and zeroes it.
func ensureFloats(ws *[]float64, n int) []float64 {
	s := *ws
	if cap(s) < n {
		s = make([]float64, n) //memdos:ignore hotalloc grow-once workspace: capacity sticks to the high-water mark, zero allocs at steady shape
	} else {
		s = s[:n]
		clear(s)
	}
	*ws = s
	return s
}

// ensureBools resizes the workspace slice at *ws to length n, reusing
// capacity. The contents are unspecified; callers overwrite every element.
func ensureBools(ws *[]bool, n int) []bool {
	s := *ws
	if cap(s) < n {
		s = make([]bool, n) //memdos:ignore hotalloc grow-once workspace: capacity sticks to the high-water mark, zero allocs at steady shape
	} else {
		s = s[:n]
	}
	*ws = s
	return s
}

// Param is one trainable parameter block with its gradient accumulator.
type Param struct {
	Name string
	W    []float64
	Grad []float64
}

// newParam allocates a parameter of n weights.
func newParam(name string, n int) *Param {
	return &Param{Name: name, W: make([]float64, n), Grad: make([]float64, n)} //memdos:ignore hotalloc parameters are built once at model construction, never per step
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Layer is a differentiable module. Forward stores whatever state Backward
// needs; layers are therefore stateful and not safe for concurrent use.
type Layer interface {
	// Forward computes the layer output. train enables training-only
	// behaviour (dropout masks, batch statistics).
	Forward(x *Tensor, train bool) *Tensor
	// Backward receives dL/d(output) and returns dL/d(input), adding
	// parameter gradients into Params().
	Backward(grad *Tensor) *Tensor
	// Params returns the trainable parameters (nil if none).
	Params() []*Param
}
