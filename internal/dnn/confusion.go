package dnn

import (
	"fmt"
	"strings"
)

// ClassConfusion is a multi-class confusion matrix for classifier
// evaluation (the per-class view behind the cascade's accuracy numbers).
type ClassConfusion struct {
	// K is the number of classes; Counts[truth][predicted] the tallies.
	K      int
	Counts [][]int
}

// NewClassConfusion returns an empty K-class matrix.
func NewClassConfusion(k int) (*ClassConfusion, error) {
	if k < 2 {
		return nil, fmt.Errorf("dnn: confusion matrix needs >= 2 classes, got %d", k)
	}
	c := &ClassConfusion{K: k, Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	return c, nil
}

// Add tallies one (truth, predicted) pair.
func (c *ClassConfusion) Add(truth, predicted int) error {
	if truth < 0 || truth >= c.K || predicted < 0 || predicted >= c.K {
		return fmt.Errorf("dnn: class out of range: truth %d, predicted %d (K=%d)", truth, predicted, c.K)
	}
	c.Counts[truth][predicted]++
	return nil
}

// Accuracy returns overall accuracy (0 with no samples).
func (c *ClassConfusion) Accuracy() float64 {
	correct, total := 0, 0
	for i := range c.Counts {
		for j, n := range c.Counts[i] {
			total += n
			if i == j {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PerClassRecall returns recall per class (NaN-free: classes with no truth
// samples report 0).
func (c *ClassConfusion) PerClassRecall() []float64 {
	out := make([]float64, c.K)
	for i := range c.Counts {
		total := 0
		for _, n := range c.Counts[i] {
			total += n
		}
		if total > 0 {
			out[i] = float64(c.Counts[i][i]) / float64(total)
		}
	}
	return out
}

// String renders the matrix with optional class labels.
func (c *ClassConfusion) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "accuracy %.3f\n", c.Accuracy())
	for i, row := range c.Counts {
		fmt.Fprintf(&sb, "class %d: %v\n", i, row)
	}
	return sb.String()
}

// EvaluateCascade scores a trained cascade on labelled samples and returns
// the application and attack confusion matrices.
func EvaluateCascade(c *Cascade, samples []CascadeSample) (app, atk *ClassConfusion, err error) {
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("dnn: no evaluation samples")
	}
	app, err = NewClassConfusion(c.NumApps)
	if err != nil {
		return nil, nil, err
	}
	atk, err = NewClassConfusion(NumAttackClasses)
	if err != nil {
		return nil, nil, err
	}
	for _, s := range samples {
		gotApp, gotAtk := c.Classify(s.Window)
		if err := app.Add(s.AppLabel, gotApp); err != nil {
			return nil, nil, err
		}
		if err := atk.Add(s.AttackLabel, gotAtk); err != nil {
			return nil, nil, err
		}
	}
	return app, atk, nil
}
