package dnn

import (
	"fmt"
	"math"
)

// BatchNorm normalizes each channel over the (batch, time) axes during
// training and tracks running statistics for inference, with learned scale
// (gamma) and shift (beta).
type BatchNorm struct {
	C        int
	Momentum float64
	Eps      float64

	gamma, beta *Param
	runMean     []float64
	runVar      []float64

	// forward cache
	x      *Tensor
	mean   []float64
	invStd []float64
	xhat   []float64

	// workspaces
	variance, sumDy, sumDyXhat []float64
	y, dx                      *Tensor
}

// NewBatchNorm returns a batch-normalization layer over c channels.
func NewBatchNorm(c int) *BatchNorm {
	bn := &BatchNorm{
		C:        c,
		Momentum: 0.9,
		Eps:      1e-5,
		gamma:    newParam(fmt.Sprintf("bn%d.gamma", c), c),
		beta:     newParam(fmt.Sprintf("bn%d.beta", c), c),
		runMean:  make([]float64, c),
		runVar:   make([]float64, c),
	}
	for i := range bn.gamma.W {
		bn.gamma.W[i] = 1
		bn.runVar[i] = 1
	}
	return bn
}

// Forward normalizes x. In training mode the batch statistics are used and
// folded into the running estimates; at inference the running estimates
// are used.
func (bn *BatchNorm) Forward(x *Tensor, train bool) *Tensor {
	if x.C != bn.C {
		panic(fmt.Sprintf("dnn: batchnorm expects %d channels, got %d", bn.C, x.C))
	}
	n := x.B * x.T
	y := ensureTensor(&bn.y, x.B, x.T, x.C)
	if !train {
		for i := 0; i < n; i++ {
			off := i * x.C
			for c := 0; c < x.C; c++ {
				xh := (x.Data[off+c] - bn.runMean[c]) / math.Sqrt(bn.runVar[c]+bn.Eps)
				y.Data[off+c] = bn.gamma.W[c]*xh + bn.beta.W[c]
			}
		}
		bn.x = nil
		return y
	}

	bn.x = x
	bn.mean = ensureFloats(&bn.mean, x.C)
	variance := ensureFloats(&bn.variance, x.C)
	for i := 0; i < n; i++ {
		off := i * x.C
		for c := 0; c < x.C; c++ {
			bn.mean[c] += x.Data[off+c]
		}
	}
	for c := range bn.mean {
		bn.mean[c] /= float64(n)
	}
	for i := 0; i < n; i++ {
		off := i * x.C
		for c := 0; c < x.C; c++ {
			d := x.Data[off+c] - bn.mean[c]
			variance[c] += d * d
		}
	}
	bn.invStd = ensureFloats(&bn.invStd, x.C)
	for c := range variance {
		variance[c] /= float64(n)
		bn.invStd[c] = 1 / math.Sqrt(variance[c]+bn.Eps)
		bn.runMean[c] = bn.Momentum*bn.runMean[c] + (1-bn.Momentum)*bn.mean[c]
		bn.runVar[c] = bn.Momentum*bn.runVar[c] + (1-bn.Momentum)*variance[c]
	}
	bn.xhat = ensureFloats(&bn.xhat, len(x.Data))
	for i := 0; i < n; i++ {
		off := i * x.C
		for c := 0; c < x.C; c++ {
			xh := (x.Data[off+c] - bn.mean[c]) * bn.invStd[c]
			bn.xhat[off+c] = xh
			y.Data[off+c] = bn.gamma.W[c]*xh + bn.beta.W[c]
		}
	}
	return y
}

// Backward implements the standard batch-norm gradient.
func (bn *BatchNorm) Backward(grad *Tensor) *Tensor {
	if bn.x == nil {
		panic("dnn: batchnorm backward without training forward")
	}
	x := bn.x
	n := x.B * x.T
	nf := float64(n)
	dx := ensureTensor(&bn.dx, x.B, x.T, x.C)

	sumDy := ensureFloats(&bn.sumDy, x.C)
	sumDyXhat := ensureFloats(&bn.sumDyXhat, x.C)
	for i := 0; i < n; i++ {
		off := i * x.C
		for c := 0; c < x.C; c++ {
			g := grad.Data[off+c]
			sumDy[c] += g
			sumDyXhat[c] += g * bn.xhat[off+c]
		}
	}
	for c := 0; c < x.C; c++ {
		bn.beta.Grad[c] += sumDy[c]
		bn.gamma.Grad[c] += sumDyXhat[c]
	}
	for i := 0; i < n; i++ {
		off := i * x.C
		for c := 0; c < x.C; c++ {
			g := grad.Data[off+c]
			dx.Data[off+c] = bn.gamma.W[c] * bn.invStd[c] / nf *
				(nf*g - sumDy[c] - bn.xhat[off+c]*sumDyXhat[c])
		}
	}
	return dx
}

// Params returns gamma and beta.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.gamma, bn.beta} }
