package dnn

import (
	"testing"

	"memdos/internal/sim"
)

// Steady-state benchmarks for the training stack. Every layer owns
// workspace arenas, so after one warm-up step the forward/backward/update
// cycle runs without allocating; the benchmarks report allocs to keep
// that property visible, and TestTrainStepZeroAllocs pins it exactly.

// benchStepper builds a compact model plus a ready-to-run training step
// on one synthetic batch, warmed so every arena exists.
func benchStepper(tb testing.TB, batch, w int) (*Stepper, *Tensor, []int) {
	tb.Helper()
	rng := sim.NewRNG(77)
	m, err := NewLSTMFCN(CompactLSTMFCNConfig(2, 3), sim.NewRNG(78))
	if err != nil {
		tb.Fatal(err)
	}
	x := NewTensor(batch, w, 2)
	for i := range x.Data {
		x.Data[i] = rng.Normal(0, 1)
	}
	y := make([]int, batch)
	for i := range y {
		y[i] = i % 3
	}
	s := NewStepper(m, NewAdam(1e-3))
	s.Step(x, y) // warm-up: builds the lazy LSTM and every workspace
	return s, x, y
}

func BenchmarkTrainStep(b *testing.B) {
	s, x, y := benchStepper(b, 32, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(x, y)
	}
}

func BenchmarkInfer(b *testing.B) {
	s, x, _ := benchStepper(b, 32, 50)
	s.M.Forward(x, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.M.Forward(x, false)
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := sim.NewRNG(80)
	l := NewLSTM(32, 32, sim.NewRNG(81))
	x := NewTensor(8, 20, 32)
	for i := range x.Data {
		x.Data[i] = rng.Normal(0, 1)
	}
	h := l.Forward(x, true)
	g := h.Clone()
	l.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Forward(x, true)
		l.Backward(g)
	}
}

func BenchmarkConv1DForwardBackward(b *testing.B) {
	rng := sim.NewRNG(82)
	c := NewConv1D(16, 32, 5, sim.NewRNG(83))
	x := NewTensor(8, 100, 16)
	for i := range x.Data {
		x.Data[i] = rng.Normal(0, 1)
	}
	y := c.Forward(x, true)
	g := y.Clone()
	c.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x, true)
		c.Backward(g)
	}
}

// TestTrainStepZeroAllocs pins the arena contract: a steady-state
// training step — forward, loss, backward, Adam — performs zero heap
// allocations once the warm-up step has built every workspace.
func TestTrainStepZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is slow under -short")
	}
	s, x, y := benchStepper(t, 16, 30)
	s.Step(x, y) // second warm-up: Adam moment vectors exist after step 1
	if avg := testing.AllocsPerRun(10, func() { s.Step(x, y) }); avg != 0 {
		t.Errorf("steady-state training step allocates %.1f times/op, want 0", avg)
	}
}
