package dnn

import (
	"fmt"
	"math"

	"memdos/internal/sim"
)

// Attack-class labels produced by the cascade's second stage.
const (
	ClassNoAttack = iota
	ClassBusLock
	ClassCleansing
	NumAttackClasses
)

// ChannelNorm standardizes counter windows channel-wise in log space:
// x' = (log1p(x) - Mean[c]) / Std[c]. Log-scaling keeps level information
// (the attacks' signature) while taming the counters' dynamic range.
type ChannelNorm struct {
	Mean []float64
	Std  []float64
}

// FitChannelNorm computes normalization statistics over a dataset of raw
// windows.
func FitChannelNorm(windows [][][]float64) (ChannelNorm, error) {
	if len(windows) == 0 || len(windows[0]) == 0 {
		return ChannelNorm{}, fmt.Errorf("dnn: cannot fit norm on empty data")
	}
	c := len(windows[0][0])
	n := ChannelNorm{Mean: make([]float64, c), Std: make([]float64, c)}
	count := 0
	for _, w := range windows {
		for _, row := range w {
			for i := 0; i < c; i++ {
				n.Mean[i] += math.Log1p(row[i])
			}
			count++
		}
	}
	for i := range n.Mean {
		n.Mean[i] /= float64(count)
	}
	for _, w := range windows {
		for _, row := range w {
			for i := 0; i < c; i++ {
				d := math.Log1p(row[i]) - n.Mean[i]
				n.Std[i] += d * d
			}
		}
	}
	for i := range n.Std {
		n.Std[i] = math.Sqrt(n.Std[i] / float64(count))
		if n.Std[i] < 1e-9 {
			n.Std[i] = 1
		}
	}
	return n, nil
}

// Apply returns the normalized copy of a raw window.
func (n ChannelNorm) Apply(window [][]float64) [][]float64 {
	out := make([][]float64, len(window))
	for t, row := range window {
		nr := make([]float64, len(row))
		for c, v := range row {
			nr[c] = (math.Log1p(v) - n.Mean[c]) / n.Std[c]
		}
		out[t] = nr
	}
	return out
}

// Cascade is the paper's Fig. 10 architecture: the first LSTM-FCN
// classifies the application from a normalized counter window; its output
// conditions the second LSTM-FCN, which classifies the attack state
// (none / bus locking / LLC cleansing). Conditioning appends the
// application one-hot as constant channels, shrinking the second stage's
// search space as the paper describes.
type Cascade struct {
	NumApps int
	Norm    ChannelNorm

	App    *LSTMFCN
	Attack *LSTMFCN

	// Compiled batch-1 scorer backing Classify, built lazily from the
	// current weights and invalidated whenever they change
	// (InvalidateScorer). scorerTried latches a failed build so exotic
	// shapes fall back to the graph path without recompiling per call.
	scorer      *BatchScorer
	scorerTried bool
	flatBuf     []float64
	app1, atk1  [1]int
}

// NewCascade builds an untrained cascade. arch chooses the per-stage
// architecture (PaperLSTMFCNConfig or CompactLSTMFCNConfig).
func NewCascade(numApps int, arch func(channels, classes int) LSTMFCNConfig, rng *sim.RNG) (*Cascade, error) {
	if numApps <= 1 {
		return nil, fmt.Errorf("dnn: cascade needs at least 2 applications, got %d", numApps)
	}
	app, err := NewLSTMFCN(arch(2, numApps), rng.Split())
	if err != nil {
		return nil, err
	}
	atk, err := NewLSTMFCN(arch(2+numApps, NumAttackClasses), rng.Split())
	if err != nil {
		return nil, err
	}
	return &Cascade{NumApps: numApps, App: app, Attack: atk}, nil
}

// conditionWindow appends the app one-hot to every row of a normalized
// window.
func conditionWindow(window [][]float64, app, numApps int) [][]float64 {
	out := make([][]float64, len(window))
	for t, row := range window {
		nr := make([]float64, len(row)+numApps)
		copy(nr, row)
		nr[len(row)+app] = 1
		out[t] = nr
	}
	return out
}

// Classify runs the full cascade on one raw window and returns the
// predicted application and attack class. It routes through the compiled
// batch-1 scorer (allocation-free at steady state; see
// TestClassifyZeroAllocs); windows the scorer cannot compile for fall
// back to ClassifyGraph.
func (c *Cascade) Classify(window [][]float64) (app, attackClass int) {
	s := c.ensureScorer(len(window))
	if s == nil {
		return c.ClassifyGraph(window)
	}
	need := 2 * len(window)
	if cap(c.flatBuf) < need {
		c.flatBuf = make([]float64, need) // grow-once workspace: capacity sticks to the high-water mark, zero allocs at steady shape
	}
	flat := c.flatBuf[:need]
	for t, row := range window {
		flat[2*t] = row[0]
		flat[2*t+1] = row[1]
	}
	s.ScoreFlat(1, flat, c.app1[:], c.atk1[:])
	return c.app1[0], c.atk1[0]
}

// ClassifyGraph runs the cascade through the float64 training graph: the
// unbatched reference implementation Classify's compiled path is
// validated (TestScorerMatchesGraph) and benchmarked (dnn/infer-looped)
// against.
func (c *Cascade) ClassifyGraph(window [][]float64) (app, attackClass int) {
	norm := c.Norm.Apply(window)
	app = c.classifyOne(c.App, norm)
	attackClass = c.classifyOne(c.Attack, conditionWindow(norm, app, c.NumApps))
	return app, attackClass
}

// Scorer returns a compiled batch scorer for the given window length and
// options, building the LSTM branches if needed.
func (c *Cascade) Scorer(window int, opts ScorerOptions) (*BatchScorer, error) {
	return NewBatchScorer(c, window, opts)
}

// Window returns the window length the cascade's LSTM branch was built
// for, or 0 if it has never seen data.
func (c *Cascade) Window() int {
	if c.App == nil || c.App.lstm == nil {
		return 0
	}
	return c.App.lstm.In
}

// InvalidateScorer drops the compiled scorer backing Classify; callers
// that mutate weights directly must invalidate before classifying again.
// TrainCascade and restore do this automatically.
func (c *Cascade) InvalidateScorer() {
	c.scorer = nil
	c.scorerTried = false
}

// ensureScorer lazily compiles the batch-1 scorer for window length w,
// returning nil when compilation is impossible (unfitted norm, window
// shorter than the conv edge split).
func (c *Cascade) ensureScorer(w int) *BatchScorer {
	if c.scorer != nil {
		if c.scorer.w == w {
			return c.scorer
		}
		// Window length changed mid-stream: the underlying models panic
		// on mismatch in the graph path too, so recompile attempts are
		// fine to make loudly.
		c.InvalidateScorer()
	}
	if c.scorerTried {
		return nil
	}
	c.scorerTried = true
	s, err := NewBatchScorer(c, w, ScorerOptions{})
	if err != nil {
		return nil
	}
	c.scorer = s
	return s
}

func (c *Cascade) classifyOne(m *LSTMFCN, window [][]float64) int {
	x := NewTensor(1, len(window), len(window[0]))
	for t, row := range window {
		copy(x.Row(0, t), row)
	}
	return m.Classify(x)[0]
}

// CascadeSample is one training example for the cascade.
type CascadeSample struct {
	// Window is the raw (unnormalized) counter window, [W][2].
	Window [][]float64
	// AppLabel identifies the application (0..NumApps-1).
	AppLabel int
	// AttackLabel is the attack class (ClassNoAttack, ...).
	AttackLabel int
}

// TrainCascade fits the normalization, the application classifier, and the
// attack classifier (conditioned on ground-truth application labels, i.e.
// teacher forcing) on the samples.
func TrainCascade(c *Cascade, samples []CascadeSample, cfg TrainConfig) (appRes, atkRes TrainResult, err error) {
	if len(samples) == 0 {
		return TrainResult{}, TrainResult{}, fmt.Errorf("dnn: no cascade training samples")
	}
	raw := make([][][]float64, len(samples))
	for i, s := range samples {
		raw[i] = s.Window
	}
	c.Norm, err = FitChannelNorm(raw)
	if err != nil {
		return TrainResult{}, TrainResult{}, err
	}

	appData := &Dataset{}
	atkData := &Dataset{}
	for _, s := range samples {
		norm := c.Norm.Apply(s.Window)
		appData.Add(norm, s.AppLabel)
		atkData.Add(conditionWindow(norm, s.AppLabel, c.NumApps), s.AttackLabel)
	}
	rng := sim.NewRNG(cfg.Seed + 101)
	appTrain, appVal := appData.Split(0.15, rng)
	atkTrain, atkVal := atkData.Split(0.15, rng)

	appRes, err = Train(c.App, appTrain, appVal, cfg)
	if err != nil {
		return appRes, TrainResult{}, err
	}
	atkRes, err = Train(c.Attack, atkTrain, atkVal, cfg)
	c.InvalidateScorer()
	return appRes, atkRes, err
}
