package dnn

import (
	"fmt"
	"math"

	"memdos/internal/sim"
)

// Attack-class labels produced by the cascade's second stage.
const (
	ClassNoAttack = iota
	ClassBusLock
	ClassCleansing
	NumAttackClasses
)

// ChannelNorm standardizes counter windows channel-wise in log space:
// x' = (log1p(x) - Mean[c]) / Std[c]. Log-scaling keeps level information
// (the attacks' signature) while taming the counters' dynamic range.
type ChannelNorm struct {
	Mean []float64
	Std  []float64
}

// FitChannelNorm computes normalization statistics over a dataset of raw
// windows.
func FitChannelNorm(windows [][][]float64) (ChannelNorm, error) {
	if len(windows) == 0 || len(windows[0]) == 0 {
		return ChannelNorm{}, fmt.Errorf("dnn: cannot fit norm on empty data")
	}
	c := len(windows[0][0])
	n := ChannelNorm{Mean: make([]float64, c), Std: make([]float64, c)}
	count := 0
	for _, w := range windows {
		for _, row := range w {
			for i := 0; i < c; i++ {
				n.Mean[i] += math.Log1p(row[i])
			}
			count++
		}
	}
	for i := range n.Mean {
		n.Mean[i] /= float64(count)
	}
	for _, w := range windows {
		for _, row := range w {
			for i := 0; i < c; i++ {
				d := math.Log1p(row[i]) - n.Mean[i]
				n.Std[i] += d * d
			}
		}
	}
	for i := range n.Std {
		n.Std[i] = math.Sqrt(n.Std[i] / float64(count))
		if n.Std[i] < 1e-9 {
			n.Std[i] = 1
		}
	}
	return n, nil
}

// Apply returns the normalized copy of a raw window.
func (n ChannelNorm) Apply(window [][]float64) [][]float64 {
	out := make([][]float64, len(window))
	for t, row := range window {
		nr := make([]float64, len(row))
		for c, v := range row {
			nr[c] = (math.Log1p(v) - n.Mean[c]) / n.Std[c]
		}
		out[t] = nr
	}
	return out
}

// Cascade is the paper's Fig. 10 architecture: the first LSTM-FCN
// classifies the application from a normalized counter window; its output
// conditions the second LSTM-FCN, which classifies the attack state
// (none / bus locking / LLC cleansing). Conditioning appends the
// application one-hot as constant channels, shrinking the second stage's
// search space as the paper describes.
type Cascade struct {
	NumApps int
	Norm    ChannelNorm

	App    *LSTMFCN
	Attack *LSTMFCN
}

// NewCascade builds an untrained cascade. arch chooses the per-stage
// architecture (PaperLSTMFCNConfig or CompactLSTMFCNConfig).
func NewCascade(numApps int, arch func(channels, classes int) LSTMFCNConfig, rng *sim.RNG) (*Cascade, error) {
	if numApps <= 1 {
		return nil, fmt.Errorf("dnn: cascade needs at least 2 applications, got %d", numApps)
	}
	app, err := NewLSTMFCN(arch(2, numApps), rng.Split())
	if err != nil {
		return nil, err
	}
	atk, err := NewLSTMFCN(arch(2+numApps, NumAttackClasses), rng.Split())
	if err != nil {
		return nil, err
	}
	return &Cascade{NumApps: numApps, App: app, Attack: atk}, nil
}

// conditionWindow appends the app one-hot to every row of a normalized
// window.
func conditionWindow(window [][]float64, app, numApps int) [][]float64 {
	out := make([][]float64, len(window))
	for t, row := range window {
		nr := make([]float64, len(row)+numApps)
		copy(nr, row)
		nr[len(row)+app] = 1
		out[t] = nr
	}
	return out
}

// Classify runs the full cascade on one raw window and returns the
// predicted application and attack class.
func (c *Cascade) Classify(window [][]float64) (app, attackClass int) {
	norm := c.Norm.Apply(window)
	app = c.classifyOne(c.App, norm)
	attackClass = c.classifyOne(c.Attack, conditionWindow(norm, app, c.NumApps))
	return app, attackClass
}

func (c *Cascade) classifyOne(m *LSTMFCN, window [][]float64) int {
	x := NewTensor(1, len(window), len(window[0]))
	for t, row := range window {
		copy(x.Row(0, t), row)
	}
	return m.Classify(x)[0]
}

// CascadeSample is one training example for the cascade.
type CascadeSample struct {
	// Window is the raw (unnormalized) counter window, [W][2].
	Window [][]float64
	// AppLabel identifies the application (0..NumApps-1).
	AppLabel int
	// AttackLabel is the attack class (ClassNoAttack, ...).
	AttackLabel int
}

// TrainCascade fits the normalization, the application classifier, and the
// attack classifier (conditioned on ground-truth application labels, i.e.
// teacher forcing) on the samples.
func TrainCascade(c *Cascade, samples []CascadeSample, cfg TrainConfig) (appRes, atkRes TrainResult, err error) {
	if len(samples) == 0 {
		return TrainResult{}, TrainResult{}, fmt.Errorf("dnn: no cascade training samples")
	}
	raw := make([][][]float64, len(samples))
	for i, s := range samples {
		raw[i] = s.Window
	}
	c.Norm, err = FitChannelNorm(raw)
	if err != nil {
		return TrainResult{}, TrainResult{}, err
	}

	appData := &Dataset{}
	atkData := &Dataset{}
	for _, s := range samples {
		norm := c.Norm.Apply(s.Window)
		appData.Add(norm, s.AppLabel)
		atkData.Add(conditionWindow(norm, s.AppLabel, c.NumApps), s.AttackLabel)
	}
	rng := sim.NewRNG(cfg.Seed + 101)
	appTrain, appVal := appData.Split(0.15, rng)
	atkTrain, atkVal := atkData.Split(0.15, rng)

	appRes, err = Train(c.App, appTrain, appVal, cfg)
	if err != nil {
		return appRes, TrainResult{}, err
	}
	atkRes, err = Train(c.Attack, atkTrain, atkVal, cfg)
	return appRes, atkRes, err
}
