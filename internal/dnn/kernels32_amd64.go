//go:build amd64

package dnn

import "math"

// AVX2/FMA microkernel bindings. The feature probe follows the full
// OS-support dance: AVX needs OSXSAVE plus XCR0 bits 1|2 (the OS saves
// ymm state across context switches), AVX2 is CPUID leaf 7 EBX bit 5,
// FMA is leaf 1 ECX bit 12. Absent any of those the package falls back
// to the portable scalar kernels, bit-for-bit deterministically — just
// slower.

func init() {
	_, _, c1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	const fma = 1 << 12
	if c1&osxsave == 0 || c1&avx == 0 || c1&fma == 0 {
		return
	}
	xlo, _ := xgetbv0()
	if xlo&6 != 6 { // XMM and YMM state enabled by the OS
		return
	}
	_, b7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	if b7&avx2 == 0 {
		return
	}
	f32SIMD = true
}

// normConsts is the coefficient table normLog1pAVX2 reads: 17 rows of 8
// identical lanes — the nine Cephes logf polynomial coefficients, the
// ln2 reassembly constants, 1.0, and the integer bit patterns for the
// branch-free mantissa/exponent split. Offsets are hard-coded in the
// assembly; keep the order in sync.
var normConsts [17 * 8]float32

func init() {
	rows := [17]float32{
		7.0376836292e-2, // c0 (rows 0-8: poly, Horner order)
		-1.1514610310e-1,
		1.1676998740e-1,
		-1.2420140846e-1,
		1.4249322787e-1,
		-1.6668057665e-1,
		2.0000714765e-1,
		-2.4999993993e-1,
		3.3333331174e-1,
		-2.12194440e-4,                   // row 9: e * ln2 correction (low)
		0.5,                              // row 10
		0.693359375,                      // row 11: e * ln2 (high)
		1.0,                              // row 12
		math.Float32frombits(0x004afb0d), // row 13: bits(1.0) - bits(sqrt2/2)
		math.Float32frombits(0x007fffff), // row 14: mantissa mask
		math.Float32frombits(127),        // row 15: exponent bias (int lanes)
		math.Float32frombits(0x3f3504f3), // row 16: bits(sqrt2/2)
	}
	for r, v := range rows {
		for l := 0; l < 8; l++ {
			normConsts[r*8+l] = v
		}
	}
}

// expConsts is the coefficient table the expf-core assembly kernels
// (sigmoidAVX2, tanhAVX2) read: 16 rows of 8 identical lanes. Offsets
// are hard-coded in the assembly; keep the order in sync.
var expConsts [16 * 8]float32

func init() {
	rows := [16]float32{
		expf32Log2e,     // row 0
		expf32Magic,     // row 1: 1.5*2^23 rounding constant
		expf32Ln2Hi,     // row 2
		expf32Ln2Lo,     // row 3
		1.9875691500e-4, // rows 4-9: poly, Horner order
		1.3981999507e-3,
		8.3334519073e-3,
		4.1665795894e-2,
		1.6666665459e-1,
		5.0000001201e-1,
		1.0,          // row 10
		expf32MaxArg, // row 11
		expf32MinArg, // row 12
		math.Float32frombits(expf32MagicBits - 127), // row 13: magic bits minus exponent bias
		2.0,                           // row 14
		math.Float32frombits(1 << 31), // row 15: sign mask
	}
	for r, v := range rows {
		for l := 0; l < 8; l++ {
			expConsts[r*8+l] = v
		}
	}
}

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE).
func xgetbv0() (eax, edx uint32)

// f32NNBlockFMA computes C[i][j] += A[i]·B[·][j] for i in [0,m), j in
// [0,n), with B stored [k][n] and ldb its row stride. Register-blocked
// two A rows by sixteen B columns; epi != 0 fuses ReLU into the store.
// Every output element accumulates in strictly ascending k order through
// a single FMA chain in every block shape, so results are byte-identical
// to any other call shape that reaches the same (A row, B) pair: the
// batched-equals-looped guarantee of the scorer.
//
//go:noescape
func f32NNBlockFMA(a *float32, lda int, b *float32, ldb int, c *float32, ldc int, m, n, k, epi int)

// normLog1pAVX2 writes dst[i] = (log1p(float32(src[i])) - nv[i&7]) *
// nv[8+(i&7)] for i in [0,n); n must be a positive multiple of 8.
//
//go:noescape
func normLog1pAVX2(dst *float32, src *float64, n int, nv *float32)

// sigmoidAVX2 replaces x[i] with 1/(1+exp(-x[i])) for i in [0,n);
// n must be a positive multiple of 8.
//
//go:noescape
func sigmoidAVX2(x *float32, n int)

// tanhAVX2 replaces x[i] with tanh(x[i]) for i in [0,n); n must be a
// positive multiple of 8.
//
//go:noescape
func tanhAVX2(x *float32, n int)

// i8NTBlockAVX2 computes C[i][j] += Σ A[i][kc]·B[j][kc] over int8
// inputs with int32 accumulation, for kc in [0,k16) where k16 is a
// multiple of 16 (the caller handles the remainder in scalar code).
// Widening is VPMOVSXBW into 16-bit lanes shared across four B columns,
// then VPMADDWD pairwise multiply-add, which cannot overflow:
// |a·b| <= 127·127 and the pairwise sum stays within int32 for any
// realistic k.
//
//go:noescape
func i8NTBlockAVX2(a *int8, lda int, b *int8, ldb int, c *int32, ldc int, m, n, k16 int)
