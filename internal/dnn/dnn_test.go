package dnn

import (
	"math"
	"testing"

	"memdos/internal/sim"
)

func randTensor(rng *sim.RNG, b, t, c int) *Tensor {
	x := NewTensor(b, t, c)
	for i := range x.Data {
		x.Data[i] = rng.Normal(0, 1)
	}
	return x
}

// lossOf squares-and-sums an output tensor against fixed random targets —
// a simple differentiable scalar head for gradient checking.
func lossOf(y *Tensor, targets []float64) float64 {
	var l float64
	for i, v := range y.Data {
		d := v - targets[i]
		l += 0.5 * d * d
	}
	return l
}

func lossGrad(y *Tensor, targets []float64) *Tensor {
	g := NewTensor(y.B, y.T, y.C)
	for i, v := range y.Data {
		g.Data[i] = v - targets[i]
	}
	return g
}

// checkLayerGradients verifies both parameter and input gradients of a
// layer against central finite differences.
func checkLayerGradients(t *testing.T, name string, layer Layer, x *Tensor, rng *sim.RNG) {
	t.Helper()
	y := layer.Forward(x, true)
	targets := make([]float64, len(y.Data))
	for i := range targets {
		targets[i] = rng.Normal(0, 1)
	}
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	dx := layer.Backward(lossGrad(y, targets))

	const eps = 1e-5
	const tol = 1e-3
	// Parameter gradients.
	for _, p := range layer.Params() {
		for i := 0; i < len(p.W); i += 1 + len(p.W)/17 { // sample indices
			orig := p.W[i]
			p.W[i] = orig + eps
			lp := lossOf(layer.Forward(x, true), targets)
			p.W[i] = orig - eps
			lm := lossOf(layer.Forward(x, true), targets)
			p.W[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad[i]) > tol*(1+math.Abs(num)) {
				t.Errorf("%s: param %s[%d] grad = %v, numeric %v", name, p.Name, i, p.Grad[i], num)
			}
		}
	}
	// Input gradients.
	for i := 0; i < len(x.Data); i += 1 + len(x.Data)/17 {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(layer.Forward(x, true), targets)
		x.Data[i] = orig - eps
		lm := lossOf(layer.Forward(x, true), targets)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Errorf("%s: input grad[%d] = %v, numeric %v", name, i, dx.Data[i], num)
		}
	}
}

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3, 4)
	x.Set(1, 2, 3, 7)
	if x.At(1, 2, 3) != 7 {
		t.Error("Set/At broken")
	}
	x.Add(1, 2, 3, 1)
	if x.At(1, 2, 3) != 8 {
		t.Error("Add broken")
	}
	r := x.Row(1, 2)
	r[0] = 5
	if x.At(1, 2, 0) != 5 {
		t.Error("Row should alias")
	}
	c := x.Clone()
	c.Set(0, 0, 0, 9)
	if x.At(0, 0, 0) == 9 {
		t.Error("Clone should copy")
	}
	if !x.ShapeEquals(c) || x.ShapeEquals(NewTensor(1, 1, 1)) {
		t.Error("ShapeEquals broken")
	}
}

func TestTensorPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTensor(0, 1, 1)
}

func TestDenseGradients(t *testing.T) {
	rng := sim.NewRNG(1)
	checkLayerGradients(t, "dense", NewDense(5, 3, rng), randTensor(rng, 2, 1, 5), rng)
}

func TestConvGradients(t *testing.T) {
	rng := sim.NewRNG(2)
	checkLayerGradients(t, "conv", NewConv1D(3, 4, 5, rng), randTensor(rng, 2, 7, 3), rng)
}

func TestBatchNormGradients(t *testing.T) {
	rng := sim.NewRNG(3)
	checkLayerGradients(t, "batchnorm", NewBatchNorm(4), randTensor(rng, 3, 5, 4), rng)
}

func TestReLUGradients(t *testing.T) {
	rng := sim.NewRNG(4)
	checkLayerGradients(t, "relu", &ReLU{}, randTensor(rng, 2, 4, 3), rng)
}

func TestPoolGradients(t *testing.T) {
	rng := sim.NewRNG(5)
	checkLayerGradients(t, "pool", &GlobalAvgPool{}, randTensor(rng, 2, 6, 3), rng)
}

func TestLSTMGradients(t *testing.T) {
	rng := sim.NewRNG(6)
	checkLayerGradients(t, "lstm", NewLSTM(3, 4, rng), randTensor(rng, 2, 5, 3), rng)
}

func TestAttentionGradients(t *testing.T) {
	rng := sim.NewRNG(7)
	checkLayerGradients(t, "attention", NewAttention(4, rng), randTensor(rng, 2, 5, 4), rng)
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := sim.NewRNG(8)
	x := randTensor(rng, 2, 3, 5)
	// Two instances: a Transpose must not read from its own output
	// workspace, which feeding y back into the first one would do.
	fwd, back := &Transpose{}, &Transpose{}
	y := fwd.Forward(x, false)
	if y.T != 5 || y.C != 3 {
		t.Fatalf("transpose shape (%d,%d,%d)", y.B, y.T, y.C)
	}
	z := back.Forward(y, false)
	for i := range x.Data {
		if x.Data[i] != z.Data[i] {
			t.Fatal("double transpose not identity")
		}
	}
}

func TestDropout(t *testing.T) {
	rng := sim.NewRNG(9)
	d := NewDropout(0.5, rng)
	x := randTensor(rng, 4, 10, 8)
	// Inference: identity.
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("inference dropout not identity")
		}
	}
	// Training: ~half zeroed, survivors scaled by 2.
	y = d.Forward(x, true)
	zeros := 0
	for i := range x.Data {
		switch y.Data[i] {
		case 0:
			zeros++
		case 2 * x.Data[i]:
		default:
			t.Fatalf("dropout output %v for input %v", y.Data[i], x.Data[i])
		}
	}
	frac := float64(zeros) / float64(len(x.Data))
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("dropout rate = %v, want ~0.5", frac)
	}
	// Backward uses the same mask.
	g := d.Backward(lossGrad(y, make([]float64, len(y.Data))))
	for i := range g.Data {
		if y.Data[i] == 0 && g.Data[i] != 0 {
			t.Fatal("gradient leaked through dropped unit")
		}
	}
}

func TestDropoutPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDropout(1.0, sim.NewRNG(1))
}

func TestBatchNormNormalizes(t *testing.T) {
	rng := sim.NewRNG(10)
	bn := NewBatchNorm(2)
	x := NewTensor(8, 10, 2)
	for i := range x.Data {
		x.Data[i] = rng.Normal(50, 7)
	}
	y := bn.Forward(x, true)
	// With gamma=1, beta=0 the output should be ~zero-mean unit-variance.
	var mean, sq float64
	for i := 0; i < len(y.Data); i += 2 {
		mean += y.Data[i]
		sq += y.Data[i] * y.Data[i]
	}
	n := float64(len(y.Data) / 2)
	mean /= n
	if math.Abs(mean) > 1e-9 {
		t.Errorf("normalized mean = %v", mean)
	}
	if v := sq/n - mean*mean; math.Abs(v-1) > 0.01 {
		t.Errorf("normalized variance = %v", v)
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := sim.NewRNG(11)
	bn := NewBatchNorm(1)
	for i := 0; i < 200; i++ {
		x := NewTensor(16, 1, 1)
		for j := range x.Data {
			x.Data[j] = rng.Normal(10, 2)
		}
		bn.Forward(x, true)
	}
	x := NewTensor(1, 1, 1)
	x.Data[0] = 10 // at the running mean -> ~0 output
	y := bn.Forward(x, false)
	if math.Abs(y.Data[0]) > 0.2 {
		t.Errorf("inference at running mean = %v, want ~0", y.Data[0])
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := NewTensor(2, 1, 3)
	copy(logits.Row(0, 0), []float64{10, 0, 0})
	copy(logits.Row(1, 0), []float64{0, 0, 10})
	loss, probs, grad := SoftmaxCrossEntropy(logits, []int{0, 2})
	if loss > 0.01 {
		t.Errorf("confident correct loss = %v", loss)
	}
	if probs.At(0, 0, 0) < 0.99 || probs.At(1, 0, 2) < 0.99 {
		t.Errorf("probs = %v", probs.Data)
	}
	// Gradient signs: correct class negative, others positive.
	if grad.At(0, 0, 0) >= 0 || grad.At(0, 0, 1) < 0 {
		t.Errorf("gradient signs wrong: %v", grad.Row(0, 0))
	}
}

func TestSoftmaxCrossEntropyGradNumeric(t *testing.T) {
	rng := sim.NewRNG(12)
	logits := randTensor(rng, 3, 1, 4)
	labels := []int{1, 3, 0}
	_, _, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		lm, _, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-5 {
			t.Fatalf("loss grad[%d] = %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 5, 3}) != 1 || Argmax([]float64{9}) != 0 {
		t.Error("argmax broken")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 per coordinate.
	p := newParam("w", 4)
	opt := NewAdam(0.05)
	for i := 0; i < 2000; i++ {
		for j := range p.W {
			p.Grad[j] = 2 * (p.W[j] - 3)
		}
		opt.Step([]*Param{p})
	}
	for j := range p.W {
		if math.Abs(p.W[j]-3) > 0.01 {
			t.Fatalf("Adam did not converge: w[%d] = %v", j, p.W[j])
		}
	}
}

func TestAdamReduceLR(t *testing.T) {
	opt := NewAdam(1e-3)
	if !opt.ReduceLR() {
		t.Error("first reduction should change LR")
	}
	want := 1e-3 / math.Cbrt(2)
	if math.Abs(opt.LR-want) > 1e-12 {
		t.Errorf("LR = %v, want %v", opt.LR, want)
	}
	for i := 0; i < 50; i++ {
		opt.ReduceLR()
	}
	if opt.LR != opt.MinLR {
		t.Errorf("LR floor = %v, want %v", opt.LR, opt.MinLR)
	}
	if opt.ReduceLR() {
		t.Error("reduction at floor should report false")
	}
	if opt.String() == "" {
		t.Error("empty String()")
	}
}

func TestLSTMFCNConfigValidation(t *testing.T) {
	if err := PaperLSTMFCNConfig(2, 10).Validate(); err != nil {
		t.Error(err)
	}
	bad := CompactLSTMFCNConfig(2, 3)
	bad.Kernels[0] = 4 // even
	if err := bad.Validate(); err == nil {
		t.Error("even kernel accepted")
	}
	bad2 := CompactLSTMFCNConfig(0, 3)
	if err := bad2.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
}

// synthDataset builds a trivially separable 3-class dataset: class 0 flat,
// class 1 collapsed level, class 2 inflated second channel — shaped like
// the detection problem (normal / bus lock / cleansing).
func synthDataset(rng *sim.RNG, n, w int) *Dataset {
	d := &Dataset{}
	for i := 0; i < n; i++ {
		label := i % 3
		win := make([][]float64, w)
		for t := range win {
			acc := 1.0 + rng.Normal(0, 0.1)
			miss := 0.1 + rng.Normal(0, 0.02)
			switch label {
			case 1:
				acc *= 0.3
				miss *= 0.3
			case 2:
				acc *= 0.7
				miss *= 5
			}
			win[t] = []float64{acc, miss}
		}
		d.Add(win, label)
	}
	return d
}

func TestLSTMFCNLearnsSeparableClasses(t *testing.T) {
	rng := sim.NewRNG(20)
	data := synthDataset(rng, 240, 20)
	train, val := data.Split(0.25, rng)
	m, err := NewLSTMFCN(LSTMFCNConfig{
		Channels: 2, Classes: 3,
		ConvFilters: [3]int{6, 8, 6},
		Kernels:     [3]int{9, 5, 3},
		LSTMCells:   8,
		Dropout:     0.1,
	}, sim.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 15
	res, err := Train(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(m, val); acc < 0.9 {
		t.Errorf("validation accuracy = %v (result %+v)", acc, res)
	}
}

func TestTrainValidation(t *testing.T) {
	m, _ := NewLSTMFCN(CompactLSTMFCNConfig(2, 3), sim.NewRNG(1))
	if _, err := Train(m, &Dataset{}, nil, DefaultTrainConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	d := synthDataset(sim.NewRNG(2), 6, 8)
	bad := DefaultTrainConfig()
	bad.Epochs = 0
	if _, err := Train(m, d, nil, bad); err == nil {
		t.Error("zero epochs accepted")
	}
}

func TestModelRejectsWindowMismatch(t *testing.T) {
	rng := sim.NewRNG(30)
	m, _ := NewLSTMFCN(CompactLSTMFCNConfig(2, 3), rng)
	m.Forward(randTensor(rng, 1, 10, 2), false)
	defer func() {
		if recover() == nil {
			t.Fatal("window length change should panic")
		}
	}()
	m.Forward(randTensor(rng, 1, 20, 2), false)
}

func TestDatasetSplit(t *testing.T) {
	d := synthDataset(sim.NewRNG(3), 100, 5)
	train, val := d.Split(0.2, sim.NewRNG(4))
	if train.Len()+val.Len() != 100 {
		t.Errorf("split sizes %d+%d", train.Len(), val.Len())
	}
	if val.Len() != 20 {
		t.Errorf("val size %d, want 20", val.Len())
	}
}

func TestTrainingDeterministic(t *testing.T) {
	mk := func() float64 {
		rng := sim.NewRNG(40)
		data := synthDataset(rng, 60, 10)
		m, _ := NewLSTMFCN(LSTMFCNConfig{
			Channels: 2, Classes: 3,
			ConvFilters: [3]int{4, 4, 4},
			Kernels:     [3]int{3, 3, 3},
			LSTMCells:   4,
			Dropout:     0.1,
		}, sim.NewRNG(41))
		cfg := DefaultTrainConfig()
		cfg.Epochs = 3
		res, _ := Train(m, data, nil, cfg)
		return res.FinalLoss
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("training not deterministic: %v vs %v", a, b)
	}
}

func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ n, s int }{
		{10, 4}, {32, 4}, {1, 4}, {7, 8}, {0, 2}, {5, 1},
	} {
		covered := 0
		prevHi := 0
		for j := 0; j < tc.s; j++ {
			lo, hi := shardBounds(tc.n, tc.s, j)
			if lo != prevHi {
				t.Errorf("n=%d s=%d shard %d starts at %d, want %d", tc.n, tc.s, j, lo, prevHi)
			}
			if hi < lo {
				t.Errorf("n=%d s=%d shard %d inverted [%d,%d)", tc.n, tc.s, j, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n {
			t.Errorf("n=%d s=%d shards cover %d items", tc.n, tc.s, covered)
		}
		// Shard sizes differ by at most one, largest first.
		lo0, hi0 := shardBounds(tc.n, tc.s, 0)
		loL, hiL := shardBounds(tc.n, tc.s, tc.s-1)
		if d := (hi0 - lo0) - (hiL - loL); tc.n > 0 && (d < 0 || d > 1) {
			t.Errorf("n=%d s=%d first/last shard sizes differ by %d", tc.n, tc.s, d)
		}
	}
}

func TestDataParallelTrainingDeterministic(t *testing.T) {
	// The sharded trajectory must depend only on GradShards, not on
	// scheduling: two runs with the same config are bit-identical. Run
	// under -race this also exercises the reduction for data races.
	mk := func(shards int) (float64, []float64) {
		rng := sim.NewRNG(50)
		data := synthDataset(rng, 60, 10)
		m, _ := NewLSTMFCN(LSTMFCNConfig{
			Channels: 2, Classes: 3,
			ConvFilters: [3]int{4, 4, 4},
			Kernels:     [3]int{3, 3, 3},
			LSTMCells:   4,
			Dropout:     0.1,
		}, sim.NewRNG(51))
		cfg := DefaultTrainConfig()
		cfg.Epochs = 3
		cfg.GradShards = shards
		res, err := Train(m, data, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalLoss, append([]float64(nil), m.Params()[0].W...)
	}
	lossA, wA := mk(4)
	lossB, wB := mk(4)
	if lossA != lossB {
		t.Errorf("sharded training not deterministic: loss %v vs %v", lossA, lossB)
	}
	for i := range wA {
		if wA[i] != wB[i] {
			t.Fatalf("weight %d differs between identical sharded runs: %v vs %v", i, wA[i], wB[i])
		}
	}
}

func TestDataParallelTrainingLearns(t *testing.T) {
	// Sharded BatchNorm is a different trajectory than serial, but it must
	// still solve the separable problem.
	rng := sim.NewRNG(60)
	data := synthDataset(rng, 240, 20)
	train, val := data.Split(0.25, rng)
	m, err := NewLSTMFCN(LSTMFCNConfig{
		Channels: 2, Classes: 3,
		ConvFilters: [3]int{6, 8, 6},
		Kernels:     [3]int{9, 5, 3},
		LSTMCells:   8,
		Dropout:     0.1,
	}, sim.NewRNG(61))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 15
	cfg.GradShards = 4
	res, err := Train(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(m, val); acc < 0.9 {
		t.Errorf("sharded validation accuracy = %v (result %+v)", acc, res)
	}
}
