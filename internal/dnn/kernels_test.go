package dnn

import (
	"math"
	"testing"

	"memdos/internal/sim"
)

func fillNormal(rng *sim.RNG, xs []float64) {
	for i := range xs {
		xs[i] = rng.Normal(0, 1)
	}
}

// closeTo compares against a naive reference: the blocked kernels fuse
// unrolled multiply-adds, so they round differently than a plain
// ascending loop, but only at the last few bits.
func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// gemmShapes cross the gemmMC (64) and gemmKC (256) block boundaries,
// the 4-way k unroll tails, and the paired-column tail of gemmNT.
var gemmShapes = []struct{ m, n, k int }{
	{1, 1, 1}, {3, 5, 7}, {64, 16, 256}, {65, 2, 257}, {67, 33, 301}, {130, 9, 513},
}

func TestGemmNNMatchesNaive(t *testing.T) {
	rng := sim.NewRNG(100)
	for _, tc := range gemmShapes {
		a := make([]float64, tc.m*tc.k)
		b := make([]float64, tc.k*tc.n)
		c := make([]float64, tc.m*tc.n)
		fillNormal(rng, a)
		fillNormal(rng, b)
		fillNormal(rng, c)
		want := append([]float64(nil), c...)
		for i := 0; i < tc.m; i++ {
			for j := 0; j < tc.n; j++ {
				for kc := 0; kc < tc.k; kc++ {
					want[i*tc.n+j] += a[i*tc.k+kc] * b[kc*tc.n+j]
				}
			}
		}
		gemmNN(tc.m, tc.n, tc.k, a, tc.k, b, tc.n, c, tc.n)
		for i := range c {
			if !closeTo(c[i], want[i]) {
				t.Fatalf("gemmNN %dx%dx%d: c[%d] = %v, want %v", tc.m, tc.n, tc.k, i, c[i], want[i])
			}
		}
	}
}

func TestGemmTNMatchesNaive(t *testing.T) {
	rng := sim.NewRNG(101)
	for _, tc := range gemmShapes {
		a := make([]float64, tc.k*tc.m) // k×m, transposed operand
		b := make([]float64, tc.k*tc.n)
		c := make([]float64, tc.m*tc.n)
		fillNormal(rng, a)
		fillNormal(rng, b)
		fillNormal(rng, c)
		want := append([]float64(nil), c...)
		for i := 0; i < tc.m; i++ {
			for j := 0; j < tc.n; j++ {
				for kc := 0; kc < tc.k; kc++ {
					want[i*tc.n+j] += a[kc*tc.m+i] * b[kc*tc.n+j]
				}
			}
		}
		gemmTN(tc.m, tc.n, tc.k, a, tc.m, b, tc.n, c, tc.n)
		for i := range c {
			if !closeTo(c[i], want[i]) {
				t.Fatalf("gemmTN %dx%dx%d: c[%d] = %v, want %v", tc.m, tc.n, tc.k, i, c[i], want[i])
			}
		}
	}
}

func TestGemmNTMatchesNaive(t *testing.T) {
	rng := sim.NewRNG(102)
	for _, tc := range gemmShapes {
		a := make([]float64, tc.m*tc.k)
		b := make([]float64, tc.n*tc.k) // n×k, transposed operand
		c := make([]float64, tc.m*tc.n)
		fillNormal(rng, a)
		fillNormal(rng, b)
		fillNormal(rng, c)
		want := append([]float64(nil), c...)
		for i := 0; i < tc.m; i++ {
			for j := 0; j < tc.n; j++ {
				for kc := 0; kc < tc.k; kc++ {
					want[i*tc.n+j] += a[i*tc.k+kc] * b[j*tc.k+kc]
				}
			}
		}
		gemmNT(tc.m, tc.n, tc.k, a, tc.k, b, tc.k, c, tc.n)
		for i := range c {
			if !closeTo(c[i], want[i]) {
				t.Fatalf("gemmNT %dx%dx%d: c[%d] = %v, want %v", tc.m, tc.n, tc.k, i, c[i], want[i])
			}
		}
	}
}

func TestGemmStridedViews(t *testing.T) {
	// Leading dimensions wider than the logical row: the time-step slices
	// the LSTM feeds the kernels. Compare a strided multiply against the
	// same multiply over compacted copies.
	const m, n, k, pad = 9, 11, 13, 5
	rng := sim.NewRNG(103)
	aw := make([]float64, m*(k+pad))
	bw := make([]float64, k*(n+pad))
	cw := make([]float64, m*(n+pad))
	fillNormal(rng, aw)
	fillNormal(rng, bw)
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		copy(a[i*k:(i+1)*k], aw[i*(k+pad):])
	}
	for i := 0; i < k; i++ {
		copy(b[i*n:(i+1)*n], bw[i*(n+pad):])
	}
	gemmNN(m, n, k, aw, k+pad, bw, n+pad, cw, n+pad)
	gemmNN(m, n, k, a, k, b, n, c, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if cw[i*(n+pad)+j] != c[i*n+j] {
				t.Fatalf("strided gemmNN differs at (%d,%d)", i, j)
			}
		}
	}
}

// TestGemmWorkerCountInvariant pins the determinism contract at the
// kernel level: the tile-parallel path must produce bytes identical to
// the serial path. The shape is large enough (m·n·k ≈ 666k flops) to
// clear kernelParallelFlops, so workers=8 genuinely forks.
func TestGemmWorkerCountInvariant(t *testing.T) {
	const m, n, k = 67, 33, 301
	rng := sim.NewRNG(104)
	a := make([]float64, m*k)
	bNN := make([]float64, k*n)
	fillNormal(rng, a)
	fillNormal(rng, bNN)
	aTN := make([]float64, k*m)
	bNT := make([]float64, n*k)
	fillNormal(rng, aTN)
	fillNormal(rng, bNT)

	run := func(workers int) [3][]float64 {
		prev := SetKernelWorkers(workers)
		defer SetKernelWorkers(prev)
		var out [3][]float64
		for i := range out {
			out[i] = make([]float64, m*n)
		}
		gemmNN(m, n, k, a, k, bNN, n, out[0], n)
		gemmTN(m, n, k, aTN, m, bNN, n, out[1], n)
		gemmNT(m, n, k, a, k, bNT, k, out[2], n)
		return out
	}
	serial := run(1)
	parallel := run(8)
	names := [3]string{"gemmNN", "gemmTN", "gemmNT"}
	for v := range serial {
		for i := range serial[v] {
			if serial[v][i] != parallel[v][i] {
				t.Fatalf("%s: workers=1 and workers=8 differ at %d: %v vs %v",
					names[v], i, serial[v][i], parallel[v][i])
			}
		}
	}
}

func TestVectorKernels(t *testing.T) {
	rng := sim.NewRNG(105)
	const m, n = 7, 13
	a := make([]float64, m*n)
	x := make([]float64, n)
	xm := make([]float64, m)
	fillNormal(rng, a)
	fillNormal(rng, x)
	fillNormal(rng, xm)

	y := make([]float64, m)
	gemv(m, n, a, n, x, y)
	for i := 0; i < m; i++ {
		var want float64
		for j := 0; j < n; j++ {
			want += a[i*n+j] * x[j]
		}
		if !closeTo(y[i], want) {
			t.Errorf("gemv[%d] = %v, want %v", i, y[i], want)
		}
	}

	yt := make([]float64, n)
	gemvT(m, n, a, n, xm, yt)
	for j := 0; j < n; j++ {
		var want float64
		for i := 0; i < m; i++ {
			want += a[i*n+j] * xm[i]
		}
		if !closeTo(yt[j], want) {
			t.Errorf("gemvT[%d] = %v, want %v", j, yt[j], want)
		}
	}

	cs := make([]float64, n)
	colSums(m, n, a, n, cs)
	for j := 0; j < n; j++ {
		var want float64
		for i := 0; i < m; i++ {
			want += a[i*n+j]
		}
		if !closeTo(cs[j], want) {
			t.Errorf("colSums[%d] = %v, want %v", j, cs[j], want)
		}
	}

	// dotVec2 must reproduce dotVec bit-for-bit on both columns.
	u, v, w := make([]float64, 29), make([]float64, 29), make([]float64, 29)
	fillNormal(rng, u)
	fillNormal(rng, v)
	fillNormal(rng, w)
	s, tt := dotVec2(u, v, w)
	if s != dotVec(u, v) || tt != dotVec(u, w) {
		t.Error("dotVec2 disagrees with dotVec")
	}

	// transposeRows round-trips across a non-multiple-of-tile shape.
	const rows, cols = 19, 23
	src := make([]float64, rows*cols)
	fillNormal(rng, src)
	dst := make([]float64, rows*cols)
	back := make([]float64, rows*cols)
	transposeRows(dst, src, rows, cols)
	transposeRows(back, dst, cols, rows)
	for i := range src {
		if src[i] != back[i] {
			t.Fatalf("transposeRows round trip differs at %d", i)
		}
	}
}

// TestReLUInPlaceMatchesOutOfPlace pins the flag-gated in-place mode to
// the out-of-place semantics: identical outputs and identical gradients.
func TestReLUInPlaceMatchesOutOfPlace(t *testing.T) {
	rng := sim.NewRNG(110)
	x := randTensor(rng, 3, 7, 5)
	grad := randTensor(rng, 3, 7, 5)

	out := &ReLU{}
	in := &ReLU{InPlace: true}
	yOut := out.Forward(x, true)
	yIn := in.Forward(x.Clone(), true) // in-place mutates its input
	for i := range yOut.Data {
		if yOut.Data[i] != yIn.Data[i] {
			t.Fatalf("forward differs at %d: %v vs %v", i, yOut.Data[i], yIn.Data[i])
		}
	}
	gOut := out.Backward(grad)
	gIn := in.Backward(grad.Clone())
	for i := range gOut.Data {
		if gOut.Data[i] != gIn.Data[i] {
			t.Fatalf("backward differs at %d: %v vs %v", i, gOut.Data[i], gIn.Data[i])
		}
	}
}

func TestDropoutInPlaceMatchesOutOfPlace(t *testing.T) {
	rng := sim.NewRNG(111)
	x := randTensor(rng, 3, 7, 5)
	grad := randTensor(rng, 3, 7, 5)

	// Same-seed RNG streams so both layers draw identical masks.
	out := NewDropout(0.4, sim.NewRNG(7))
	in := NewDropout(0.4, sim.NewRNG(7))
	in.InPlace = true
	yOut := out.Forward(x, true)
	yIn := in.Forward(x.Clone(), true)
	for i := range yOut.Data {
		if yOut.Data[i] != yIn.Data[i] {
			t.Fatalf("forward differs at %d: %v vs %v", i, yOut.Data[i], yIn.Data[i])
		}
	}
	gOut := out.Backward(grad)
	gIn := in.Backward(grad.Clone())
	for i := range gOut.Data {
		if gOut.Data[i] != gIn.Data[i] {
			t.Fatalf("backward differs at %d: %v vs %v", i, gOut.Data[i], gIn.Data[i])
		}
	}
}

// TestTrainingKernelWorkerInvariant trains the full model over the GEMM
// layer at kernel workers 1 and 8 and requires byte-identical parameters
// — the end-to-end form of the determinism contract, exercised at both
// serial and sharded gradient configurations (run under -race this also
// checks the forked kernels for data races). Batch 32 over window 12
// puts the large conv GEMMs above kernelParallelFlops, so the parallel
// path genuinely engages.
func TestTrainingKernelWorkerInvariant(t *testing.T) {
	trainedParams := func(shards, workers int) map[string][]float64 {
		prev := SetKernelWorkers(workers)
		defer SetKernelWorkers(prev)
		rng := sim.NewRNG(120)
		data := synthDataset(rng, 64, 12)
		m, err := NewLSTMFCN(CompactLSTMFCNConfig(2, 3), sim.NewRNG(121))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultTrainConfig()
		cfg.Epochs = 2 // 2 epochs × 2 batches = 4 Adam steps
		cfg.GradShards = shards
		if _, err := Train(m, data, nil, cfg); err != nil {
			t.Fatal(err)
		}
		out := map[string][]float64{}
		for _, p := range m.Params() {
			out[p.Name] = append([]float64(nil), p.W...)
		}
		return out
	}
	for _, shards := range []int{1, 8} {
		serial := trainedParams(shards, 1)
		parallel := trainedParams(shards, 8)
		if len(serial) != len(parallel) {
			t.Fatalf("shards=%d: param count differs", shards)
		}
		for name, w1 := range serial {
			w8 := parallel[name]
			for i := range w1 {
				if w1[i] != w8[i] {
					t.Fatalf("shards=%d: %s[%d] differs between kernel workers 1 and 8: %v vs %v",
						shards, name, i, w1[i], w8[i])
				}
			}
		}
	}
}
