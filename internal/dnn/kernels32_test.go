package dnn

import (
	"fmt"
	"math"
	"testing"

	"memdos/internal/sim"
)

func randF32(rng *sim.RNG, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.Normal(0, 1))
	}
	return out
}

// The SIMD block kernel and the portable scalar kernel use the same
// per-element k-schedule but different rounding (FMA fuses, scalar does
// not), so they agree only to rounding; the contract is that each is
// internally deterministic, not that they match each other bit-for-bit.
func TestSgemmBlockSIMDMatchesGeneric(t *testing.T) {
	if !f32SIMD {
		t.Skip("no AVX2/FMA on this machine")
	}
	rng := sim.NewRNG(7)
	for _, m := range []int{1, 2, 3, 5, 8, 17} {
		for _, k := range []int{1, 3, 7, 8, 9, 15, 16, 17, 24, 50} {
			for _, n := range []int{1, 2, 3, 5, 7, 8, 9, 13, 16, 17, 24, 33, 64} {
				a := randF32(rng, m*k)
				bm := randF32(rng, k*n)
				want := make([]float32, m*n)
				got := make([]float32, m*n)
				sgemmGeneric(m, n, k, a, k, bm, n, want, n, epiAdd)
				f32NNBlockFMA(&a[0], k, &bm[0], n, &got[0], n, m, n, k, epiAdd)
				for j := range want {
					diff := math.Abs(float64(want[j] - got[j]))
					scale := math.Max(1, math.Abs(float64(want[j])))
					if diff/scale > 1e-5 {
						t.Fatalf("m=%d k=%d n=%d elem %d: generic %v simd %v", m, k, n, j, want[j], got[j])
					}
				}
			}
		}
	}
}

// Every register-block shape (2x16, 2xmask, 1x16, 1xmask) must produce
// the same bits for the same (A row, B column) pair: a panel call must
// equal per-element 1x1 calls exactly. The 1x1 call lands in the 1xmask
// body with rem=1, so this crosses every body boundary.
func TestSgemmBlockShapeInvariance(t *testing.T) {
	if !f32SIMD {
		t.Skip("no AVX2/FMA on this machine")
	}
	rng := sim.NewRNG(17)
	for _, k := range []int{5, 8, 19, 61} {
		for _, n := range []int{7, 8, 9, 16, 17, 24, 25, 39} {
			const m = 7 // odd row count exercises the 1-row tail
			a := randF32(rng, m*k)
			bm := randF32(rng, k*n)
			panel := make([]float32, m*n)
			single := make([]float32, m*n)
			f32NNBlockFMA(&a[0], k, &bm[0], n, &panel[0], n, m, n, k, epiAdd)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					f32NNBlockFMA(&a[i*k], k, &bm[j], n, &single[i*n+j], 1, 1, 1, k, epiAdd)
				}
			}
			for i := range panel {
				if panel[i] != single[i] {
					t.Fatalf("k=%d n=%d elem %d: panel %v != 1x1 %v", k, n, i, panel[i], single[i])
				}
			}
		}
	}
}

// The fused ReLU epilogue must clamp exactly where the plain epilogue
// goes negative and nowhere else.
func TestSgemmEpilogueRelu(t *testing.T) {
	rng := sim.NewRNG(29)
	const m, n, k = 9, 21, 17
	a := randF32(rng, m*k)
	bm := randF32(rng, k*n)
	bias := randF32(rng, n)
	plain := make([]float32, m*n)
	fused := make([]float32, m*n)
	sbiasRows(m, n, plain, n, bias)
	sbiasRows(m, n, fused, n, bias)
	sgemmBlock(m, n, k, a, k, bm, n, plain, n, epiAdd)
	sgemmBlock(m, n, k, a, k, bm, n, fused, n, epiAddRelu)
	sawNeg := false
	for i, v := range plain {
		want := v
		if want < 0 {
			want = 0
			sawNeg = true
		}
		if fused[i] != want {
			t.Fatalf("elem %d: plain %v fused %v", i, v, fused[i])
		}
	}
	if !sawNeg {
		t.Fatal("test inputs produced no negative outputs; ReLU not exercised")
	}
}

// The same output element must come out byte-identical whether it was
// computed in a batch-256 call, a batch-1 call, or under a different
// worker count: the scorer's batched-equals-looped guarantee bottoms out
// here.
func TestSgemmBatchAndWorkerInvariance(t *testing.T) {
	rng := sim.NewRNG(11)
	const m, n, k = 96, 13, 61
	a := randF32(rng, m*k)
	bm := randF32(rng, k*n)

	ref := make([]float32, m*n)
	sgemm(m, n, k, a, k, bm, n, ref, n, epiAdd)

	// Row-at-a-time, batch of one.
	loop := make([]float32, m*n)
	for i := 0; i < m; i++ {
		sgemm(1, n, k, a[i*k:i*k+k], k, bm, n, loop[i*n:i*n+n], n, epiAdd)
	}
	for i := range ref {
		if ref[i] != loop[i] {
			t.Fatalf("batched vs looped differ at %d: %v vs %v", i, ref[i], loop[i])
		}
	}

	// Different worker counts.
	defer SetKernelWorkers(1)
	for _, w := range []int{2, 4, 8} {
		SetKernelWorkers(w)
		got := make([]float32, m*n)
		sgemm(m, n, k, a, k, bm, n, got, n, epiAdd)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("workers=%d differ at %d: %v vs %v", w, i, ref[i], got[i])
			}
		}
	}
}

// Integer accumulation is exact: the AVX2 path must equal the scalar
// reference bit-for-bit.
func TestI8NTBlockExact(t *testing.T) {
	rng := sim.NewRNG(13)
	for _, m := range []int{1, 2, 5} {
		for _, k := range []int{1, 15, 16, 17, 31, 32, 60, 72, 100} {
			for _, n := range []int{1, 3, 8, 24} {
				a := make([]int8, m*k)
				bm := make([]int8, n*k)
				for i := range a {
					a[i] = int8(rng.Intn(255) - 127)
				}
				for i := range bm {
					bm[i] = int8(rng.Intn(255) - 127)
				}
				want := make([]int32, m*n)
				for i := 0; i < m; i++ {
					for j := 0; j < n; j++ {
						var s int32
						for kc := 0; kc < k; kc++ {
							s += int32(a[i*k+kc]) * int32(bm[j*k+kc])
						}
						want[i*n+j] = s
					}
				}
				got := make([]int32, m*n)
				i8NTBlock(m, n, k, a, k, bm, k, got, n)
				for j := range want {
					if want[j] != got[j] {
						t.Fatalf("m=%d k=%d n=%d elem %d: want %d got %d", m, k, n, j, want[j], got[j])
					}
				}
			}
		}
	}
}

// The vectorized normalization must be accurate against float64
// log1p and — critically — bitwise independent of how the input was
// chunked: element i of a length-100 call must equal element i of a
// length-25600 call. The padded-tail re-vectorization exists for exactly
// this property.
func TestSnormLog1p(t *testing.T) {
	rng := sim.NewRNG(23)
	nv := makeNormVec([2]float32{1.25, -0.5}, [2]float32{0.75, 1.5})
	const total = 1600
	src := make([]float64, total)
	for i := range src {
		src[i] = math.Floor(rng.Uniform(0, 1e5)) // counter-like values
	}

	full := make([]float32, total)
	snormLog1p(full, src, &nv)

	// Accuracy vs float64 reference.
	for i, v := range src {
		want := (math.Log1p(v) - float64(nv[i&7])) * float64(nv[8+(i&7)])
		diff := math.Abs(float64(full[i]) - want)
		if scale := math.Abs(want); scale > 1 {
			diff /= scale
		}
		if diff > 3e-6 {
			t.Fatalf("elem %d (x=%v): got %v want %v", i, v, full[i], want)
		}
	}

	// Chunk invariance: odd-length pieces force the padded-tail path.
	// Chunks must start on even (channel-aligned) offsets.
	for _, chunk := range []int{2, 4, 10, 100, 738} {
		got := make([]float32, total)
		for lo := 0; lo < total; lo += chunk {
			hi := min(lo+chunk, total)
			snormLog1p(got[lo:hi], src[lo:hi], &nv)
		}
		for i := range full {
			if got[i] != full[i] {
				t.Fatalf("chunk=%d elem %d: %v != %v", chunk, i, got[i], full[i])
			}
		}
	}
}

func TestFastTranscendentals(t *testing.T) {
	for x := -30.0; x <= 30.0; x += 0.0137 {
		if e := math.Exp(x); e > 0 {
			rel := math.Abs(float64(expf(float32(x)))-e) / e
			if rel > 3e-6 {
				t.Fatalf("expf(%v): rel err %v", x, rel)
			}
		}
		if d := math.Abs(float64(tanhf(float32(x))) - math.Tanh(x)); d > 3e-6 {
			t.Fatalf("tanhf(%v): abs err %v", x, d)
		}
		if d := math.Abs(float64(sigmoidf(float32(x))) - 1/(1+math.Exp(-x))); d > 3e-6 {
			t.Fatalf("sigmoidf(%v): abs err %v", x, d)
		}
	}
	for x := 0.0; x <= 1e6; x = x*1.7 + 0.013 {
		want := math.Log1p(x)
		rel := math.Abs(float64(log1pf(float32(x))) - want)
		if want > 1 {
			rel /= want
		}
		if rel > 3e-6 {
			t.Fatalf("log1pf(%v): err %v", x, rel)
		}
	}
	if log1pf(0) != 0 {
		t.Fatalf("log1pf(0) = %v", log1pf(0))
	}
}

func BenchmarkSgemmBlock(b *testing.B) {
	rng := sim.NewRNG(3)
	for _, sz := range []struct{ m, n, k int }{{1, 24, 60}, {42, 8, 40}, {256, 32, 50}, {256, 64, 16}, {42, 12, 18}, {46, 24, 60}, {48, 12, 72}} {
		b.Run(fmt.Sprintf("m%dn%dk%d", sz.m, sz.n, sz.k), func(b *testing.B) {
			a := randF32(rng, sz.m*sz.k)
			bm := randF32(rng, sz.k*sz.n)
			c := make([]float32, sz.m*sz.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sgemmBlock(sz.m, sz.n, sz.k, a, sz.k, bm, sz.n, c, sz.n, epiAdd)
			}
			b.ReportMetric(float64(sz.m*sz.n*sz.k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GMAC/s")
		})
	}
}
