package dnn

import (
	"fmt"

	"memdos/internal/sim"
)

// LSTMFCNConfig sizes one LSTM-FCN classifier.
type LSTMFCNConfig struct {
	// Channels is the number of input channels (2 for AccessNum+MissNum;
	// the cascade's second stage appends the application one-hot).
	Channels int
	// Classes is the softmax width.
	Classes int
	// ConvFilters are the three temporal convolution block widths; the
	// paper uses {128, 256, 128}.
	ConvFilters [3]int
	// Kernels are the corresponding kernel sizes; LSTM-FCN uses {8, 5, 3}
	// (rounded here to odd sizes for symmetric padding).
	Kernels [3]int
	// LSTMCells is the attention-LSTM width; the paper uses 256.
	LSTMCells int
	// Dropout is the rate after the LSTM block.
	Dropout float64
}

// PaperLSTMFCNConfig returns the full-size architecture of the paper.
func PaperLSTMFCNConfig(channels, classes int) LSTMFCNConfig {
	return LSTMFCNConfig{
		Channels:    channels,
		Classes:     classes,
		ConvFilters: [3]int{128, 256, 128},
		Kernels:     [3]int{9, 5, 3},
		LSTMCells:   256,
		Dropout:     0.2,
	}
}

// CompactLSTMFCNConfig returns a reduced architecture with the same
// topology, sized for CPU-only training (see DESIGN.md on the TensorFlow
// substitution).
func CompactLSTMFCNConfig(channels, classes int) LSTMFCNConfig {
	return LSTMFCNConfig{
		Channels:    channels,
		Classes:     classes,
		ConvFilters: [3]int{12, 24, 12},
		Kernels:     [3]int{9, 5, 3},
		LSTMCells:   16,
		Dropout:     0.2,
	}
}

// Validate reports whether the configuration is usable.
func (c LSTMFCNConfig) Validate() error {
	if c.Channels <= 0 || c.Classes <= 1 {
		return fmt.Errorf("dnn: invalid channels %d / classes %d", c.Channels, c.Classes)
	}
	for i, f := range c.ConvFilters {
		if f <= 0 {
			return fmt.Errorf("dnn: conv filter %d non-positive", i)
		}
		if c.Kernels[i] <= 0 || c.Kernels[i]%2 == 0 {
			return fmt.Errorf("dnn: kernel %d must be odd positive, got %d", i, c.Kernels[i])
		}
	}
	if c.LSTMCells <= 0 {
		return fmt.Errorf("dnn: non-positive LSTM cells")
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("dnn: dropout %v outside [0,1)", c.Dropout)
	}
	return nil
}

// LSTMFCN is the two-branch classifier of Fig. 9: a fully convolutional
// branch (three conv+BN+ReLU blocks and global average pooling) views the
// window as a multivariate time series, while the dimension-shuffled
// attention-LSTM branch views each channel as one step of a C-step
// sequence of W-dimensional observations. The branch outputs are
// concatenated into a softmax classifier.
type LSTMFCN struct {
	cfg LSTMFCNConfig

	conv1, conv2, conv3 *Conv1D
	bn1, bn2, bn3       *BatchNorm
	relu1, relu2, relu3 *ReLU
	pool                *GlobalAvgPool

	shuffle Transpose
	lstm    *LSTM
	attn    *Attention
	drop    *Dropout

	out *Dense

	// lstmRNG seeds the lazily constructed LSTM/attention pair (the LSTM
	// input size equals the window length, which is data-dependent).
	lstmRNG *sim.RNG

	// backward bookkeeping
	fcnC, lstmC int

	// workspaces for the branch join
	joint, gF, gCtx *Tensor
}

// NewLSTMFCN builds the model with the given configuration. The window
// length is not fixed at construction; any T works.
func NewLSTMFCN(cfg LSTMFCNConfig, rng *sim.RNG) (*LSTMFCN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &LSTMFCN{cfg: cfg}
	// The ReLUs and the dropout run in place on the arena path: their
	// upstream workspace (batch-norm output, attention context) is dead
	// after the activation, so mutating it saves a full tensor pass.
	m.conv1 = NewConv1D(cfg.Channels, cfg.ConvFilters[0], cfg.Kernels[0], rng.Split())
	m.bn1 = NewBatchNorm(cfg.ConvFilters[0])
	m.relu1 = &ReLU{InPlace: true}
	m.conv2 = NewConv1D(cfg.ConvFilters[0], cfg.ConvFilters[1], cfg.Kernels[1], rng.Split())
	m.bn2 = NewBatchNorm(cfg.ConvFilters[1])
	m.relu2 = &ReLU{InPlace: true}
	m.conv3 = NewConv1D(cfg.ConvFilters[1], cfg.ConvFilters[2], cfg.Kernels[2], rng.Split())
	m.bn3 = NewBatchNorm(cfg.ConvFilters[2])
	m.relu3 = &ReLU{InPlace: true}
	m.pool = &GlobalAvgPool{}

	// The LSTM input size is the window length after the dimension
	// shuffle; it is data-dependent, so the LSTM is built lazily on the
	// first Forward. See ensureLSTM.
	m.drop = NewDropout(cfg.Dropout, rng.Split())
	m.drop.InPlace = true
	m.out = NewDense(cfg.ConvFilters[2]+cfg.LSTMCells, cfg.Classes, rng.Split())
	m.fcnC = cfg.ConvFilters[2]
	m.lstmC = cfg.LSTMCells
	m.lstmRNG = rng.Split()

	// Canonical, position-based parameter names: the shape-derived
	// default names can collide between layers of equal width, and
	// serialization keys parameters by name.
	rename := func(prefix string, layers ...Layer) {
		for i, l := range layers {
			for _, p := range l.Params() {
				p.Name = fmt.Sprintf("%s%d.%s", prefix, i+1, paramSuffix(p.Name))
			}
		}
	}
	rename("conv", m.conv1, m.conv2, m.conv3)
	rename("bn", m.bn1, m.bn2, m.bn3)
	rename("out", m.out)
	return m, nil
}

// paramSuffix extracts the trailing role ("w", "b", "gamma", ...) from a
// default parameter name like "conv12x5x3.w".
func paramSuffix(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

// ensureLSTM builds the LSTM branch for window length w on first use and
// rejects mismatched window lengths afterwards.
func (m *LSTMFCN) ensureLSTM(w int) {
	if m.lstm == nil {
		m.lstm = NewLSTM(w, m.cfg.LSTMCells, m.lstmRNG.Split())
		m.attn = NewAttention(m.cfg.LSTMCells, m.lstmRNG.Split())
		return
	}
	if m.lstm.In != w {
		panic(fmt.Sprintf("dnn: model built for window %d, got %d", m.lstm.In, w))
	}
}

// Forward classifies a batch of windows [B][W][C] into logits [B][1][K].
func (m *LSTMFCN) Forward(x *Tensor, train bool) *Tensor {
	// FCN branch.
	f := m.relu1.Forward(m.bn1.Forward(m.conv1.Forward(x, train), train), train)
	f = m.relu2.Forward(m.bn2.Forward(m.conv2.Forward(f, train), train), train)
	f = m.relu3.Forward(m.bn3.Forward(m.conv3.Forward(f, train), train), train)
	f = m.pool.Forward(f, train)

	// LSTM branch through the dimension shuffle: [B][W][C] -> [B][C][W].
	s := m.shuffle.Forward(x, train)
	m.ensureLSTM(s.C)
	h := m.lstm.Forward(s, train)
	ctx := m.attn.Forward(h, train)
	ctx = m.drop.Forward(ctx, train)

	joint := concatChannelsInto(&m.joint, f, ctx)
	return m.out.Forward(joint, train)
}

// Backward propagates from the logit gradient back to (discarded) input
// gradients, accumulating parameter gradients.
func (m *LSTMFCN) Backward(grad *Tensor) {
	dJoint := m.out.Backward(grad)
	dF, dCtx := splitChannelsInto(&m.gF, &m.gCtx, dJoint, m.fcnC, m.lstmC)

	dCtx = m.drop.Backward(dCtx)
	dH := m.attn.Backward(dCtx)
	dS := m.lstm.Backward(dH)
	m.shuffle.Backward(dS) // input gradient, discarded

	df := m.pool.Backward(dF)
	df = m.conv3.Backward(m.bn3.Backward(m.relu3.Backward(df)))
	df = m.conv2.Backward(m.bn2.Backward(m.relu2.Backward(df)))
	m.conv1.Backward(m.bn1.Backward(m.relu1.Backward(df)))
}

// Params returns all trainable parameters.
func (m *LSTMFCN) Params() []*Param {
	ps := []*Param{}                                                                   //memdos:ignore hotalloc called once per stepper: Stepper.Step caches the parameter list
	for _, l := range []Layer{m.conv1, m.bn1, m.conv2, m.bn2, m.conv3, m.bn3, m.out} { //memdos:ignore hotalloc called once per stepper: Stepper.Step caches the parameter list
		ps = append(ps, l.Params()...)
	}
	if m.lstm != nil {
		ps = append(ps, m.lstm.Params()...)
		ps = append(ps, m.attn.Params()...)
	}
	return ps
}

// Predict returns the class probabilities for a batch (inference mode).
func (m *LSTMFCN) Predict(x *Tensor) *Tensor {
	logits := m.Forward(x, false)
	_, probs, _ := SoftmaxCrossEntropy(logits, make([]int, x.B))
	return probs
}

// Classify returns the argmax class per sample.
func (m *LSTMFCN) Classify(x *Tensor) []int {
	probs := m.Predict(x)
	out := make([]int, x.B)
	for b := 0; b < x.B; b++ {
		out[b] = Argmax(probs.Row(b, 0))
	}
	return out
}
