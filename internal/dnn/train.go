package dnn

import (
	"fmt"

	"memdos/internal/sim"
)

// Dataset is a labelled set of fixed-length windows.
type Dataset struct {
	// X[i] is window i, [W][C]; Y[i] its class label.
	X [][][]float64
	Y []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Add appends one labelled window.
func (d *Dataset) Add(window [][]float64, label int) {
	d.X = append(d.X, window)
	d.Y = append(d.Y, label)
}

// Split partitions the dataset into train/validation parts with the given
// validation fraction, shuffled by rng.
func (d *Dataset) Split(valFrac float64, rng *sim.RNG) (train, val *Dataset) {
	idx := rng.Perm(d.Len())
	nVal := int(valFrac * float64(d.Len()))
	train, val = &Dataset{}, &Dataset{}
	for i, j := range idx {
		if i < nVal {
			val.Add(d.X[j], d.Y[j])
		} else {
			train.Add(d.X[j], d.Y[j])
		}
	}
	return train, val
}

// batchTensor packs samples idx[lo:hi] into a tensor and label slice.
func (d *Dataset) batchTensor(idx []int) (*Tensor, []int) {
	w := len(d.X[idx[0]])
	c := len(d.X[idx[0]][0])
	x := NewTensor(len(idx), w, c)
	y := make([]int, len(idx))
	for bi, j := range idx {
		for t := 0; t < w; t++ {
			copy(x.Row(bi, t), d.X[j][t])
		}
		y[bi] = d.Y[j]
	}
	return x, y
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// InitialLR follows the paper (1e-3); the plateau schedule reduces it
	// by 1/cbrt(2) after Patience epochs without validation improvement,
	// flooring at the paper's final rate 1e-4.
	InitialLR float64
	// Patience is the plateau length; the paper uses 150 epochs (of
	// 3000). Scale it with Epochs for shorter runs.
	Patience int
	// Seed drives shuffling.
	Seed uint64
	// GradShards > 1 enables data-parallel minibatch gradients: each batch
	// is split into this many shards computed concurrently on model
	// replicas and reduced in fixed shard order (see parallel.go). 0 or 1
	// keeps the exact serial trajectory. The result depends only on the
	// shard count, never on core count or scheduling — but BatchNorm
	// normalizes per shard, so shard counts are different (deterministic)
	// trajectories and GradShards is part of the experiment configuration.
	GradShards int
	// Verbose, if non-nil, receives one line per epoch.
	Verbose func(string)
}

// DefaultTrainConfig returns a CPU-friendly configuration with the paper's
// learning-rate schedule shape.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, BatchSize: 32, InitialLR: 1e-3, Patience: 5, Seed: 1}
}

// TrainResult reports the training outcome.
type TrainResult struct {
	Epochs        int
	FinalLoss     float64
	BestValAcc    float64
	FinalLR       float64
	TrainAccuracy float64
}

// Train fits the model on train, tracking accuracy on val for the plateau
// schedule, and returns the result. Training is deterministic given the
// seed.
func Train(m *LSTMFCN, train, val *Dataset, cfg TrainConfig) (TrainResult, error) {
	if train.Len() == 0 {
		return TrainResult{}, fmt.Errorf("dnn: empty training set")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.GradShards < 0 {
		return TrainResult{}, fmt.Errorf("dnn: invalid training config %+v", cfg)
	}
	if cfg.GradShards > 1 {
		return trainDataParallel(m, train, val, cfg)
	}
	rng := sim.NewRNG(cfg.Seed)
	opt := NewAdam(cfg.InitialLR)
	bestVal := -1.0
	sincePlateau := 0
	var res TrainResult

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		idx := rng.Perm(train.Len())
		var epochLoss float64
		batches := 0
		correct := 0
		for lo := 0; lo < len(idx); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			x, y := train.batchTensor(idx[lo:hi])
			logits := m.Forward(x, true)
			loss, probs, grad := SoftmaxCrossEntropy(logits, y)
			m.Backward(grad)
			opt.Step(m.Params())
			epochLoss += loss
			batches++
			for b := 0; b < x.B; b++ {
				if Argmax(probs.Row(b, 0)) == y[b] {
					correct++
				}
			}
		}
		res.FinalLoss = epochLoss / float64(batches)
		res.TrainAccuracy = float64(correct) / float64(train.Len())

		valAcc := res.TrainAccuracy
		if val != nil && val.Len() > 0 {
			valAcc = Evaluate(m, val)
		}
		if valAcc > bestVal {
			bestVal = valAcc
			sincePlateau = 0
		} else {
			sincePlateau++
			if sincePlateau >= cfg.Patience {
				opt.ReduceLR()
				sincePlateau = 0
			}
		}
		if cfg.Verbose != nil {
			cfg.Verbose(fmt.Sprintf("epoch %d: loss=%.4f trainAcc=%.3f valAcc=%.3f lr=%g",
				epoch, res.FinalLoss, res.TrainAccuracy, valAcc, opt.LR))
		}
	}
	res.Epochs = cfg.Epochs
	res.BestValAcc = bestVal
	res.FinalLR = opt.LR
	return res, nil
}

// Evaluate returns the model's accuracy on the dataset.
func Evaluate(m *LSTMFCN, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	const chunk = 64
	for lo := 0; lo < d.Len(); lo += chunk {
		hi := lo + chunk
		if hi > d.Len() {
			hi = d.Len()
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, y := d.batchTensor(idx)
		pred := m.Classify(x)
		for i := range pred {
			if pred[i] == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(d.Len())
}
