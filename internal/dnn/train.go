package dnn

import (
	"fmt"

	"memdos/internal/sim"
)

// Dataset is a labelled set of fixed-length windows.
type Dataset struct {
	// X[i] is window i, [W][C]; Y[i] its class label.
	X [][][]float64
	Y []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Add appends one labelled window.
func (d *Dataset) Add(window [][]float64, label int) {
	d.X = append(d.X, window)
	d.Y = append(d.Y, label)
}

// Split partitions the dataset into train/validation parts with the given
// validation fraction, shuffled by rng.
func (d *Dataset) Split(valFrac float64, rng *sim.RNG) (train, val *Dataset) {
	idx := rng.Perm(d.Len())
	nVal := int(valFrac * float64(d.Len()))
	train, val = &Dataset{}, &Dataset{}
	for i, j := range idx {
		if i < nVal {
			val.Add(d.X[j], d.Y[j])
		} else {
			train.Add(d.X[j], d.Y[j])
		}
	}
	return train, val
}

// batchTensor packs samples idx into a fresh tensor and label slice.
func (d *Dataset) batchTensor(idx []int) (*Tensor, []int) {
	return d.batchTensorInto(nil, nil, idx)
}

// batchTensorInto packs samples idx into x and y, reusing their backing
// storage when capacity allows (x may be nil on the first call). The
// returned tensor and slice are valid until the next call reusing them.
func (d *Dataset) batchTensorInto(x *Tensor, y []int, idx []int) (*Tensor, []int) {
	w := len(d.X[idx[0]])
	c := len(d.X[idx[0]][0])
	x = ensureTensor(&x, len(idx), w, c)
	if cap(y) < len(idx) {
		y = make([]int, len(idx))
	}
	y = y[:len(idx)]
	for bi, j := range idx {
		for t := 0; t < w; t++ {
			copy(x.Row(bi, t), d.X[j][t])
		}
		y[bi] = d.Y[j]
	}
	return x, y
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	// InitialLR follows the paper (1e-3); the plateau schedule reduces it
	// by 1/cbrt(2) after Patience epochs without validation improvement,
	// flooring at the paper's final rate 1e-4.
	InitialLR float64
	// Patience is the plateau length; the paper uses 150 epochs (of
	// 3000). Scale it with Epochs for shorter runs.
	Patience int
	// Seed drives shuffling.
	Seed uint64
	// GradShards > 1 enables data-parallel minibatch gradients: each batch
	// is split into this many shards computed concurrently on model
	// replicas and reduced in fixed shard order (see parallel.go). 0 or 1
	// keeps the exact serial trajectory. The result depends only on the
	// shard count, never on core count or scheduling — but BatchNorm
	// normalizes per shard, so shard counts are different (deterministic)
	// trajectories and GradShards is part of the experiment configuration.
	GradShards int
	// Verbose, if non-nil, receives one line per epoch.
	Verbose func(string)
}

// DefaultTrainConfig returns a CPU-friendly configuration with the paper's
// learning-rate schedule shape.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, BatchSize: 32, InitialLR: 1e-3, Patience: 5, Seed: 1}
}

// TrainResult reports the training outcome.
type TrainResult struct {
	Epochs        int
	FinalLoss     float64
	BestValAcc    float64
	FinalLR       float64
	TrainAccuracy float64
}

// Stepper drives single-batch optimization steps on one model with fully
// reused buffers: after the first (warm-up) step, Step performs the
// forward pass, the loss, the backward pass and the Adam update without
// allocating. It is the unit both Train and the train-step benchmarks
// build on.
type Stepper struct {
	M   *LSTMFCN
	Opt *Adam

	loss   LossBuffers
	params []*Param
}

// NewStepper returns a stepper for m driven by opt.
func NewStepper(m *LSTMFCN, opt *Adam) *Stepper {
	return &Stepper{M: m, Opt: opt}
}

// Step runs one forward/loss/backward/update cycle on the batch and
// returns the mean loss and the per-sample probabilities. The probability
// tensor is workspace-backed: it is valid until the next Step.
//
//memdos:hotpath bench=dnn/train-step
func (s *Stepper) Step(x *Tensor, y []int) (float64, *Tensor) {
	logits := s.M.Forward(x, true)
	if s.params == nil {
		// The LSTM branch is built lazily on the first forward, so the
		// parameter list is only complete now.
		s.params = s.M.Params()
	}
	loss, probs, grad := s.loss.SoftmaxCrossEntropy(logits, y)
	s.M.Backward(grad)
	s.Opt.Step(s.params)
	return loss, probs
}

// Train fits the model on train, tracking accuracy on val for the plateau
// schedule, and returns the result. Training is deterministic given the
// seed.
func Train(m *LSTMFCN, train, val *Dataset, cfg TrainConfig) (TrainResult, error) {
	if train.Len() == 0 {
		return TrainResult{}, fmt.Errorf("dnn: empty training set")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.GradShards < 0 {
		return TrainResult{}, fmt.Errorf("dnn: invalid training config %+v", cfg)
	}
	if cfg.GradShards > 1 {
		return trainDataParallel(m, train, val, cfg)
	}
	rng := sim.NewRNG(cfg.Seed)
	opt := NewAdam(cfg.InitialLR)
	stepper := NewStepper(m, opt)
	bestVal := -1.0
	sincePlateau := 0
	var res TrainResult
	var x *Tensor
	var y []int

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		idx := rng.Perm(train.Len())
		var epochLoss float64
		batches := 0
		correct := 0
		for lo := 0; lo < len(idx); lo += cfg.BatchSize {
			hi := min(lo+cfg.BatchSize, len(idx))
			x, y = train.batchTensorInto(x, y, idx[lo:hi])
			loss, probs := stepper.Step(x, y)
			epochLoss += loss
			batches++
			for b := 0; b < x.B; b++ {
				if Argmax(probs.Row(b, 0)) == y[b] {
					correct++
				}
			}
		}
		res.FinalLoss = epochLoss / float64(batches)
		res.TrainAccuracy = float64(correct) / float64(train.Len())

		valAcc := res.TrainAccuracy
		if val != nil && val.Len() > 0 {
			valAcc = Evaluate(m, val)
		}
		if valAcc > bestVal {
			bestVal = valAcc
			sincePlateau = 0
		} else {
			sincePlateau++
			if sincePlateau >= cfg.Patience {
				opt.ReduceLR()
				sincePlateau = 0
			}
		}
		if cfg.Verbose != nil {
			cfg.Verbose(fmt.Sprintf("epoch %d: loss=%.4f trainAcc=%.3f valAcc=%.3f lr=%g",
				epoch, res.FinalLoss, res.TrainAccuracy, valAcc, opt.LR))
		}
	}
	res.Epochs = cfg.Epochs
	res.BestValAcc = bestVal
	res.FinalLR = opt.LR
	return res, nil
}

// Evaluate returns the model's accuracy on the dataset. Inference runs
// batched over minibatches with the batch tensor, label and index buffers
// reused across chunks, and classifies straight from the logits (softmax
// is monotone, so the argmax is the same) — no per-sample tensors, no
// probability pass.
func Evaluate(m *LSTMFCN, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	const chunk = 64
	var x *Tensor
	var y, idx []int
	for lo := 0; lo < d.Len(); lo += chunk {
		hi := min(lo+chunk, d.Len())
		idx = idx[:0]
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		x, y = d.batchTensorInto(x, y, idx)
		logits := m.Forward(x, false)
		for b, label := range y {
			if Argmax(logits.Row(b, 0)) == label {
				correct++
			}
		}
	}
	return float64(correct) / float64(d.Len())
}
