package dnn

import (
	"fmt"
	"math"

	"memdos/internal/sim"
)

// LSTM is a single-layer long short-term memory network. Forward consumes
// [B][T][C] and emits every hidden state, [B][T][H]; pair it with Attention
// (or take the final step) for classification.
type LSTM struct {
	In, Hidden int
	wx, wh, b  *Param

	// forward cache for BPTT
	x          *Tensor
	hs, cs     *Tensor // hidden and cell states, [B][T][H]
	gates      []float64
	batch, tln int
}

// Gate order within the fused weight matrices.
const (
	gateI = iota
	gateF
	gateO
	gateG
	numGates
)

// NewLSTM returns an LSTM with Glorot-initialized weights and forget-gate
// bias 1.
func NewLSTM(in, hidden int, rng *sim.RNG) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		wx: newParam(fmt.Sprintf("lstm%dx%d.wx", in, hidden), in*numGates*hidden),
		wh: newParam(fmt.Sprintf("lstm%dx%d.wh", in, hidden), hidden*numGates*hidden),
		b:  newParam(fmt.Sprintf("lstm%dx%d.b", in, hidden), numGates*hidden),
	}
	limX := math.Sqrt(6 / float64(in+hidden))
	for i := range l.wx.W {
		l.wx.W[i] = rng.Uniform(-limX, limX)
	}
	limH := math.Sqrt(6 / float64(2*hidden))
	for i := range l.wh.W {
		l.wh.W[i] = rng.Uniform(-limH, limH)
	}
	for h := 0; h < hidden; h++ {
		l.b.W[gateF*hidden+h] = 1
	}
	return l
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// gateAt returns the cached activation of the given gate at (b, t, h).
func (l *LSTM) gateAt(b, t, g, h int) float64 {
	return l.gates[((b*l.tln+t)*numGates+g)*l.Hidden+h]
}

func (l *LSTM) setGate(b, t, g, h int, v float64) {
	l.gates[((b*l.tln+t)*numGates+g)*l.Hidden+h] = v
}

// Forward runs the recurrence from zero initial state.
func (l *LSTM) Forward(x *Tensor, train bool) *Tensor {
	if x.C != l.In {
		panic(fmt.Sprintf("dnn: lstm expects %d channels, got %d", l.In, x.C))
	}
	B, T, H := x.B, x.T, l.Hidden
	l.x = x
	l.batch, l.tln = B, T
	l.hs = NewTensor(B, T, H)
	l.cs = NewTensor(B, T, H)
	l.gates = make([]float64, B*T*numGates*H)

	pre := make([]float64, numGates*H)
	for b := 0; b < B; b++ {
		var hPrev, cPrev []float64
		for t := 0; t < T; t++ {
			xr := x.Row(b, t)
			for j := range pre {
				pre[j] = l.b.W[j]
			}
			for i, xv := range xr {
				if xv == 0 { //memdos:ignore floateq exact-zero sparsity fast path over the input row
					continue
				}
				base := i * numGates * H
				for j := 0; j < numGates*H; j++ {
					pre[j] += l.wx.W[base+j] * xv
				}
			}
			if hPrev != nil {
				for i, hv := range hPrev {
					if hv == 0 { //memdos:ignore floateq exact-zero sparsity fast path over the hidden state
						continue
					}
					base := i * numGates * H
					for j := 0; j < numGates*H; j++ {
						pre[j] += l.wh.W[base+j] * hv
					}
				}
			}
			hr := l.hs.Row(b, t)
			cr := l.cs.Row(b, t)
			for h := 0; h < H; h++ {
				ig := sigmoid(pre[gateI*H+h])
				fg := sigmoid(pre[gateF*H+h])
				og := sigmoid(pre[gateO*H+h])
				gg := math.Tanh(pre[gateG*H+h])
				l.setGate(b, t, gateI, h, ig)
				l.setGate(b, t, gateF, h, fg)
				l.setGate(b, t, gateO, h, og)
				l.setGate(b, t, gateG, h, gg)
				c := ig * gg
				if cPrev != nil {
					c += fg * cPrev[h]
				}
				cr[h] = c
				hr[h] = og * math.Tanh(c)
			}
			hPrev, cPrev = hr, cr
		}
	}
	return l.hs
}

// Backward runs truncated-free full BPTT over the stored sequence.
func (l *LSTM) Backward(grad *Tensor) *Tensor {
	x := l.x
	B, T, H := l.batch, l.tln, l.Hidden
	dx := NewTensor(B, T, x.C)
	dh := make([]float64, H)
	dc := make([]float64, H)
	dpre := make([]float64, numGates*H)

	for b := 0; b < B; b++ {
		for i := range dh {
			dh[i], dc[i] = 0, 0
		}
		for t := T - 1; t >= 0; t-- {
			gr := grad.Row(b, t)
			cr := l.cs.Row(b, t)
			var cPrev []float64
			if t > 0 {
				cPrev = l.cs.Row(b, t-1)
			}
			for h := 0; h < H; h++ {
				dhT := dh[h] + gr[h]
				ig := l.gateAt(b, t, gateI, h)
				fg := l.gateAt(b, t, gateF, h)
				og := l.gateAt(b, t, gateO, h)
				gg := l.gateAt(b, t, gateG, h)
				tc := math.Tanh(cr[h])
				dcT := dc[h] + dhT*og*(1-tc*tc)
				dpre[gateO*H+h] = dhT * tc * og * (1 - og)
				dpre[gateI*H+h] = dcT * gg * ig * (1 - ig)
				dpre[gateG*H+h] = dcT * ig * (1 - gg*gg)
				if cPrev != nil {
					dpre[gateF*H+h] = dcT * cPrev[h] * fg * (1 - fg)
					dc[h] = dcT * fg
				} else {
					dpre[gateF*H+h] = 0
					dc[h] = 0
				}
			}
			// Parameter and input gradients.
			xr := x.Row(b, t)
			dxr := dx.Row(b, t)
			for j := 0; j < numGates*H; j++ {
				l.b.Grad[j] += dpre[j]
			}
			for i, xv := range xr {
				base := i * numGates * H
				var di float64
				for j := 0; j < numGates*H; j++ {
					l.wx.Grad[base+j] += xv * dpre[j]
					di += l.wx.W[base+j] * dpre[j]
				}
				dxr[i] = di
			}
			for i := range dh {
				dh[i] = 0
			}
			if t > 0 {
				hPrev := l.hs.Row(b, t-1)
				for i, hv := range hPrev {
					base := i * numGates * H
					var dhi float64
					for j := 0; j < numGates*H; j++ {
						l.wh.Grad[base+j] += hv * dpre[j]
						dhi += l.wh.W[base+j] * dpre[j]
					}
					dh[i] = dhi
				}
			}
		}
	}
	return dx
}

// Params returns the fused gate weights and biases.
func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }

// Attention pools a hidden-state sequence [B][T][H] into a context vector
// [B][1][H] with additive (Bahdanau-style) attention:
// score_t = v . tanh(Wa h_t), a = softmax(score), ctx = sum_t a_t h_t.
type Attention struct {
	H      int
	wa, va *Param

	h     *Tensor
	tanhW *Tensor
	attn  [][]float64
}

// NewAttention returns an attention layer over H-dimensional states.
func NewAttention(h int, rng *sim.RNG) *Attention {
	a := &Attention{
		H:  h,
		wa: newParam(fmt.Sprintf("attn%d.w", h), h*h),
		va: newParam(fmt.Sprintf("attn%d.v", h), h),
	}
	limit := math.Sqrt(6 / float64(2*h))
	for i := range a.wa.W {
		a.wa.W[i] = rng.Uniform(-limit, limit)
	}
	for i := range a.va.W {
		a.va.W[i] = rng.Uniform(-limit, limit)
	}
	return a
}

// Forward computes the attention-weighted context.
func (a *Attention) Forward(h *Tensor, train bool) *Tensor {
	if h.C != a.H {
		panic(fmt.Sprintf("dnn: attention expects %d channels, got %d", a.H, h.C))
	}
	B, T, H := h.B, h.T, a.H
	a.h = h
	a.tanhW = NewTensor(B, T, H)
	a.attn = make([][]float64, B)
	y := NewTensor(B, 1, H)
	for b := 0; b < B; b++ {
		scores := make([]float64, T)
		for t := 0; t < T; t++ {
			hr := h.Row(b, t)
			tw := a.tanhW.Row(b, t)
			var score float64
			for o := 0; o < H; o++ {
				var s float64
				for i := 0; i < H; i++ {
					s += a.wa.W[i*H+o] * hr[i]
				}
				tw[o] = math.Tanh(s)
				score += a.va.W[o] * tw[o]
			}
			scores[t] = score
		}
		// softmax
		maxS := scores[0]
		for _, s := range scores[1:] {
			if s > maxS {
				maxS = s
			}
		}
		var sum float64
		for t := range scores {
			scores[t] = math.Exp(scores[t] - maxS)
			sum += scores[t]
		}
		for t := range scores {
			scores[t] /= sum
		}
		a.attn[b] = scores
		yr := y.Row(b, 0)
		for t := 0; t < T; t++ {
			hr := h.Row(b, t)
			for i := 0; i < H; i++ {
				yr[i] += scores[t] * hr[i]
			}
		}
	}
	return y
}

// Backward propagates through the weighted sum, the softmax, and the score
// network.
func (a *Attention) Backward(grad *Tensor) *Tensor {
	h := a.h
	B, T, H := h.B, h.T, a.H
	dh := NewTensor(B, T, H)
	for b := 0; b < B; b++ {
		gr := grad.Row(b, 0)
		attn := a.attn[b]
		// d/d attn_t = gr . h_t; d/d h_t (direct) = attn_t * gr.
		dAttn := make([]float64, T)
		for t := 0; t < T; t++ {
			hr := h.Row(b, t)
			dhr := dh.Row(b, t)
			var g float64
			for i := 0; i < H; i++ {
				g += gr[i] * hr[i]
				dhr[i] += attn[t] * gr[i]
			}
			dAttn[t] = g
		}
		// Softmax backward: dScore_t = attn_t * (dAttn_t - sum_j attn_j dAttn_j).
		var dot float64
		for t := 0; t < T; t++ {
			dot += attn[t] * dAttn[t]
		}
		for t := 0; t < T; t++ {
			dScore := attn[t] * (dAttn[t] - dot)
			if dScore == 0 { //memdos:ignore floateq exact-zero sparsity fast path in the attention backward pass
				continue
			}
			hr := h.Row(b, t)
			tw := a.tanhW.Row(b, t)
			dhr := dh.Row(b, t)
			for o := 0; o < H; o++ {
				a.va.Grad[o] += dScore * tw[o]
				dTanh := dScore * a.va.W[o] * (1 - tw[o]*tw[o])
				for i := 0; i < H; i++ {
					a.wa.Grad[i*H+o] += dTanh * hr[i]
					dhr[i] += dTanh * a.wa.W[i*H+o]
				}
			}
		}
	}
	return dh
}

// Params returns the score-network parameters.
func (a *Attention) Params() []*Param { return []*Param{a.wa, a.va} }
