package dnn

import (
	"fmt"
	"math"

	"memdos/internal/sim"
)

// LSTM is a single-layer long short-term memory network. Forward consumes
// [B][T][C] and emits every hidden state, [B][T][H]; pair it with Attention
// (or take the final step) for classification.
//
// The recurrence is batched: at each time step the [B × 4H] gate
// pre-activations are two GEMMs (X_t·Wx and H_{t-1}·Wh, both sliced
// strided out of the [B][T][*] tensors) plus the broadcast bias, and the
// backward pass mirrors them as gemmTN (dW) / gemmNT (dX, dH) calls. All
// state lives in layer workspaces reused across steps.
type LSTM struct {
	In, Hidden int
	wx, wh, b  *Param

	// forward cache for BPTT
	x          *Tensor
	hs, cs     *Tensor // hidden and cell states, [B][T][H]
	gates      []float64
	batch, tln int

	// workspaces
	pre, dpre, dh, dc []float64
	dx                *Tensor
}

// Gate order within the fused weight matrices.
const (
	gateI = iota
	gateF
	gateO
	gateG
	numGates
)

// NewLSTM returns an LSTM with Glorot-initialized weights and forget-gate
// bias 1.
func NewLSTM(in, hidden int, rng *sim.RNG) *LSTM {
	l := &LSTM{ //memdos:ignore hotalloc constructor runs once, on the lazy first forward; steps after that reuse the layer
		In: in, Hidden: hidden,
		wx: newParam(fmt.Sprintf("lstm%dx%d.wx", in, hidden), in*numGates*hidden),     //memdos:ignore hotalloc constructor runs once, on the lazy first forward
		wh: newParam(fmt.Sprintf("lstm%dx%d.wh", in, hidden), hidden*numGates*hidden), //memdos:ignore hotalloc constructor runs once, on the lazy first forward
		b:  newParam(fmt.Sprintf("lstm%dx%d.b", in, hidden), numGates*hidden),         //memdos:ignore hotalloc constructor runs once, on the lazy first forward
	}
	limX := math.Sqrt(6 / float64(in+hidden))
	for i := range l.wx.W {
		l.wx.W[i] = rng.Uniform(-limX, limX)
	}
	limH := math.Sqrt(6 / float64(2*hidden))
	for i := range l.wh.W {
		l.wh.W[i] = rng.Uniform(-limH, limH)
	}
	for h := 0; h < hidden; h++ {
		l.b.W[gateF*hidden+h] = 1
	}
	return l
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// gateRow returns the cached [4H] gate activations of step (b, t).
func (l *LSTM) gateRow(b, t int) []float64 {
	g4 := numGates * l.Hidden
	off := (b*l.tln + t) * g4
	return l.gates[off : off+g4]
}

// gateAt returns the cached activation of the given gate at (b, t, h).
func (l *LSTM) gateAt(b, t, g, h int) float64 {
	return l.gateRow(b, t)[g*l.Hidden+h]
}

// Forward runs the recurrence from zero initial state.
func (l *LSTM) Forward(x *Tensor, train bool) *Tensor {
	if x.C != l.In {
		panic(fmt.Sprintf("dnn: lstm expects %d channels, got %d", l.In, x.C))
	}
	B, T, H := x.B, x.T, l.Hidden
	g4 := numGates * H
	l.x = x
	l.batch, l.tln = B, T
	hs := ensureTensor(&l.hs, B, T, H)
	cs := ensureTensor(&l.cs, B, T, H)
	l.gates = ensureFloats(&l.gates, B*T*g4)
	pre := ensureFloats(&l.pre, B*g4)

	for t := 0; t < T; t++ {
		// pre[b] = bias + x_t[b]·Wx + h_{t-1}[b]·Wh, all b at once.
		addBiasRows(B, g4, pre, g4, l.b.W)
		gemmNN(B, g4, l.In, x.Data[t*x.C:], T*x.C, l.wx.W, g4, pre, g4)
		if t > 0 {
			gemmNN(B, g4, H, hs.Data[(t-1)*H:], T*H, l.wh.W, g4, pre, g4)
		}
		for b := 0; b < B; b++ {
			pr := pre[b*g4 : (b+1)*g4]
			gr := l.gateRow(b, t)
			hr := hs.Row(b, t)
			cr := cs.Row(b, t)
			var cPrev []float64
			if t > 0 {
				cPrev = cs.Row(b, t-1)
			}
			for h := 0; h < H; h++ {
				ig := sigmoid(pr[gateI*H+h])
				fg := sigmoid(pr[gateF*H+h])
				og := sigmoid(pr[gateO*H+h])
				gg := math.Tanh(pr[gateG*H+h])
				gr[gateI*H+h] = ig
				gr[gateF*H+h] = fg
				gr[gateO*H+h] = og
				gr[gateG*H+h] = gg
				c := ig * gg
				if cPrev != nil {
					c += fg * cPrev[h]
				}
				cr[h] = c
				hr[h] = og * math.Tanh(c)
			}
		}
	}
	return hs
}

// Backward runs truncated-free full BPTT over the stored sequence, one
// batched step at a time.
func (l *LSTM) Backward(grad *Tensor) *Tensor {
	x := l.x
	B, T, H := l.batch, l.tln, l.Hidden
	g4 := numGates * H
	dx := ensureTensor(&l.dx, B, T, x.C)
	dh := ensureFloats(&l.dh, B*H)
	dc := ensureFloats(&l.dc, B*H)
	dpre := ensureFloats(&l.dpre, B*g4)

	for t := T - 1; t >= 0; t-- {
		for b := 0; b < B; b++ {
			gr := grad.Row(b, t)
			cr := l.cs.Row(b, t)
			gate := l.gateRow(b, t)
			dhr := dh[b*H : (b+1)*H]
			dcr := dc[b*H : (b+1)*H]
			dpr := dpre[b*g4 : (b+1)*g4]
			var cPrev []float64
			if t > 0 {
				cPrev = l.cs.Row(b, t-1)
			}
			for h := 0; h < H; h++ {
				dhT := dhr[h] + gr[h]
				ig := gate[gateI*H+h]
				fg := gate[gateF*H+h]
				og := gate[gateO*H+h]
				gg := gate[gateG*H+h]
				tc := math.Tanh(cr[h])
				dcT := dcr[h] + dhT*og*(1-tc*tc)
				dpr[gateO*H+h] = dhT * tc * og * (1 - og)
				dpr[gateI*H+h] = dcT * gg * ig * (1 - ig)
				dpr[gateG*H+h] = dcT * ig * (1 - gg*gg)
				if cPrev != nil {
					dpr[gateF*H+h] = dcT * cPrev[h] * fg * (1 - fg)
					dcr[h] = dcT * fg
				} else {
					dpr[gateF*H+h] = 0
					dcr[h] = 0
				}
			}
		}
		// Parameter, input and recurrent gradients for the whole batch.
		colSums(B, g4, dpre, g4, l.b.Grad)
		gemmTN(l.In, g4, B, x.Data[t*x.C:], T*x.C, dpre, g4, l.wx.Grad, g4)
		gemmNT(B, l.In, g4, dpre, g4, l.wx.W, g4, dx.Data[t*x.C:], T*x.C)
		clear(dh)
		if t > 0 {
			gemmTN(H, g4, B, l.hs.Data[(t-1)*H:], T*H, dpre, g4, l.wh.Grad, g4)
			gemmNT(B, H, g4, dpre, g4, l.wh.W, g4, dh, H)
		}
	}
	return dx
}

// Params returns the fused gate weights and biases.
func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} } //memdos:ignore hotalloc called once per stepper: Stepper.Step caches the parameter list

// Attention pools a hidden-state sequence [B][T][H] into a context vector
// [B][1][H] with additive (Bahdanau-style) attention:
// score_t = v . tanh(Wa h_t), a = softmax(score), ctx = sum_t a_t h_t.
//
// The score network runs as one [B·T × H] GEMM against Wa with a fused
// tanh+dot epilogue, and the context/gradient reductions over time are
// GEMV calls against each sample's [T × H] hidden block.
type Attention struct {
	H      int
	wa, va *Param

	h     *Tensor
	tanhW *Tensor
	attn  []float64 // flat [B][T] softmax weights

	// workspaces
	y, dh *Tensor
	dAttn []float64
}

// NewAttention returns an attention layer over H-dimensional states.
func NewAttention(h int, rng *sim.RNG) *Attention {
	a := &Attention{ //memdos:ignore hotalloc constructor runs once, on the lazy first forward; steps after that reuse the layer
		H:  h,
		wa: newParam(fmt.Sprintf("attn%d.w", h), h*h), //memdos:ignore hotalloc constructor runs once, on the lazy first forward
		va: newParam(fmt.Sprintf("attn%d.v", h), h),   //memdos:ignore hotalloc constructor runs once, on the lazy first forward
	}
	limit := math.Sqrt(6 / float64(2*h))
	for i := range a.wa.W {
		a.wa.W[i] = rng.Uniform(-limit, limit)
	}
	for i := range a.va.W {
		a.va.W[i] = rng.Uniform(-limit, limit)
	}
	return a
}

// Forward computes the attention-weighted context.
func (a *Attention) Forward(h *Tensor, train bool) *Tensor {
	if h.C != a.H {
		panic(fmt.Sprintf("dnn: attention expects %d channels, got %d", a.H, h.C))
	}
	B, T, H := h.B, h.T, a.H
	a.h = h
	// Score pre-activations for every (b, t) in one GEMM, then the fused
	// tanh + v-dot epilogue per row.
	tw := ensureTensor(&a.tanhW, B, T, H)
	gemmNN(B*T, H, H, h.Data, H, a.wa.W, H, tw.Data, H)
	attn := ensureFloats(&a.attn, B*T)
	y := ensureTensor(&a.y, B, 1, H)
	for b := 0; b < B; b++ {
		scores := attn[b*T : (b+1)*T]
		for t := 0; t < T; t++ {
			scores[t] = tanhRowDot(tw.Row(b, t), a.va.W)
		}
		// softmax
		maxS := scores[0]
		for _, s := range scores[1:] {
			if s > maxS {
				maxS = s
			}
		}
		var sum float64
		for t := range scores {
			scores[t] = math.Exp(scores[t] - maxS)
			sum += scores[t]
		}
		for t := range scores {
			scores[t] /= sum
		}
		// ctx = attnᵀ · H_b as a transposed GEMV over the hidden block.
		gemvT(T, H, h.Data[b*T*H:], H, scores, y.Row(b, 0))
	}
	return y
}

// Backward propagates through the weighted sum, the softmax, and the score
// network.
func (a *Attention) Backward(grad *Tensor) *Tensor {
	h := a.h
	B, T, H := h.B, h.T, a.H
	dh := ensureTensor(&a.dh, B, T, H)
	dAttn := ensureFloats(&a.dAttn, T)
	for b := 0; b < B; b++ {
		gr := grad.Row(b, 0)
		attn := a.attn[b*T : (b+1)*T]
		// d/d attn = H_b · gr (a GEMV); d/d h_t (direct) = attn_t * gr.
		clear(dAttn)
		gemv(T, H, h.Data[b*T*H:], H, gr, dAttn)
		for t := 0; t < T; t++ {
			axpy(attn[t], gr, dh.Row(b, t))
		}
		// Softmax backward: dScore_t = attn_t * (dAttn_t - sum_j attn_j dAttn_j).
		dot := dotVec(attn, dAttn)
		for t := 0; t < T; t++ {
			dScore := attn[t] * (dAttn[t] - dot)
			// va gradient, and tanhW overwritten in place with
			// dTanh = dScore * va * (1 - tanh²) for the two GEMMs below.
			twr := a.tanhW.Row(b, t)
			for o := 0; o < H; o++ {
				tv := twr[o]
				a.va.Grad[o] += dScore * tv
				twr[o] = dScore * a.va.W[o] * (1 - tv*tv)
			}
		}
	}
	// wa.Grad += hᵀ·dTanh and dh += dTanh·Waᵀ over all (b, t) rows.
	gemmTN(H, H, B*T, h.Data, H, a.tanhW.Data, H, a.wa.Grad, H)
	gemmNT(B*T, H, H, a.tanhW.Data, H, a.wa.W, H, dh.Data, H)
	return dh
}

// Params returns the score-network parameters.
func (a *Attention) Params() []*Param { return []*Param{a.wa, a.va} } //memdos:ignore hotalloc called once per stepper: Stepper.Step caches the parameter list
