// AVX2/FMA microkernels for the float32 inference layer. See
// kernels32.go for the determinism contract. In the NN-form GEMM every
// output element lives in one vector lane end to end: it accumulates its
// k-terms in strictly ascending k order through a single FMA chain, in
// every register-block shape below (4-row, 2-row and 1-row variants), so
// a given (A row, B matrix) pair produces bit-identical results no
// matter how the call was batched, blocked, or sharded.

#include "textflag.h"

// maskTab is a sliding window of 8 set dwords followed by 8 clear ones;
// loading at offset 32-rem*4 yields a VMASKMOVPS mask covering the first
// rem lanes.
DATA maskTab<>+0(SB)/4, $0xffffffff
DATA maskTab<>+4(SB)/4, $0xffffffff
DATA maskTab<>+8(SB)/4, $0xffffffff
DATA maskTab<>+12(SB)/4, $0xffffffff
DATA maskTab<>+16(SB)/4, $0xffffffff
DATA maskTab<>+20(SB)/4, $0xffffffff
DATA maskTab<>+24(SB)/4, $0xffffffff
DATA maskTab<>+28(SB)/4, $0xffffffff
DATA maskTab<>+32(SB)/4, $0x00000000
DATA maskTab<>+36(SB)/4, $0x00000000
DATA maskTab<>+40(SB)/4, $0x00000000
DATA maskTab<>+44(SB)/4, $0x00000000
DATA maskTab<>+48(SB)/4, $0x00000000
DATA maskTab<>+52(SB)/4, $0x00000000
DATA maskTab<>+56(SB)/4, $0x00000000
DATA maskTab<>+60(SB)/4, $0x00000000
GLOBL maskTab<>(SB), RODATA, $64

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func f32NNBlockFMA(a *float32, lda int, b *float32, ldb int, c *float32, ldc int, m, n, k, epi int)
//
// C[i][j] += sum over kc of A[i][kc]*B[kc][j] for i in [0,m), j in
// [0,n), with B stored [k][n]. Register blocking: two A rows by sixteen
// B columns, each k step a pair of broadcast A scalars FMA'd against two
// B row vectors into four accumulators; column remainders (<16) run
// masked eight at a time, row remainders single-row. epi != 0 fuses a
// ReLU (max with zero) into the store.
//
// Persistent registers: R11 = i, SI = j, Y13 = packed zeros. Everything
// else reloads from the frame per block, keeping the four block bodies
// self-contained.
TEXT ·f32NNBlockFMA(SB), NOSPLIT, $0-80
	VXORPS Y13, Y13, Y13
	XORQ   R11, R11

row_loop:
	MOVQ m+48(FP), DX
	LEAQ 3(R11), AX
	CMPQ AX, DX
	JL   p4_row            // 4+ rows left
	LEAQ 1(R11), AX
	CMPQ AX, DX
	JGE  row_single        // 0 or 1 rows left
	XORQ SI, SI
	JMP  p2_col

	// ==== 4-row panel: amortizes each B row load over four A
	// broadcasts, halving per-MAC overhead vs the 2-row bodies ====
p4_row:
	XORQ SI, SI

p4_col:
	MOVQ n+56(FP), DX
	LEAQ 15(SI), AX
	CMPQ AX, DX
	JGE  p4_coltail

	// ---- 4x16 block ----
	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI   // a0 = a + i*lda
	LEAQ  (DI)(DX*4), R15  // a1
	LEAQ  (R15)(DX*4), R12 // a2
	LEAQ  (R12)(DX*4), R13 // a3
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b416_loop:
	VMOVUPS      (BX), Y10
	VMOVUPS      32(BX), Y11
	VBROADCASTSS (DI)(AX*4), Y8
	VBROADCASTSS (R15)(AX*4), Y9
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y11, Y8, Y1
	VFMADD231PS  Y10, Y9, Y2
	VFMADD231PS  Y11, Y9, Y3
	VBROADCASTSS (R12)(AX*4), Y8
	VBROADCASTSS (R13)(AX*4), Y9
	VFMADD231PS  Y10, Y8, Y4
	VFMADD231PS  Y11, Y8, Y5
	VFMADD231PS  Y10, Y9, Y6
	VFMADD231PS  Y11, Y9, Y7
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b416_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX   // c0
	SHLQ  $2, DX
	LEAQ  (CX)(DX*1), R10  // c1
	LEAQ  (R10)(DX*1), R8  // c2
	LEAQ  (R8)(DX*1), R15  // c3
	VADDPS (CX), Y0, Y0
	VADDPS 32(CX), Y1, Y1
	VADDPS (R10), Y2, Y2
	VADDPS 32(R10), Y3, Y3
	VADDPS (R8), Y4, Y4
	VADDPS 32(R8), Y5, Y5
	VADDPS (R15), Y6, Y6
	VADDPS 32(R15), Y7, Y7
	MOVQ   epi+72(FP), AX
	TESTQ  AX, AX
	JZ     b416_store
	VMAXPS Y13, Y0, Y0
	VMAXPS Y13, Y1, Y1
	VMAXPS Y13, Y2, Y2
	VMAXPS Y13, Y3, Y3
	VMAXPS Y13, Y4, Y4
	VMAXPS Y13, Y5, Y5
	VMAXPS Y13, Y6, Y6
	VMAXPS Y13, Y7, Y7

b416_store:
	VMOVUPS Y0, (CX)
	VMOVUPS Y1, 32(CX)
	VMOVUPS Y2, (R10)
	VMOVUPS Y3, 32(R10)
	VMOVUPS Y4, (R8)
	VMOVUPS Y5, 32(R8)
	VMOVUPS Y6, (R15)
	VMOVUPS Y7, 32(R15)
	ADDQ    $16, SI
	JMP     p4_col

p4_coltail:
	MOVQ n+56(FP), DX
	CMPQ SI, DX
	JGE  p4_done
	SUBQ SI, DX            // cols left
	CMPQ DX, $8
	JG   p4_col8m          // 9..15: one full vector + one masked
	JE   p4_col8

	// ---- 4 x rem (1..7, masked) block ----
	MOVQ    DX, R14
	LEAQ    maskTab<>+32(SB), R10
	SHLQ    $2, DX
	SUBQ    DX, R10
	VMOVUPS (R10), Y12

	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI
	LEAQ  (DI)(DX*4), R15
	LEAQ  (R15)(DX*4), R12
	LEAQ  (R12)(DX*4), R13
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX

	VXORPS Y0, Y0, Y0
	VXORPS Y2, Y2, Y2
	VXORPS Y4, Y4, Y4
	VXORPS Y6, Y6, Y6
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b4m_loop:
	VMASKMOVPS   (BX), Y12, Y10
	VBROADCASTSS (DI)(AX*4), Y8
	VBROADCASTSS (R15)(AX*4), Y9
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y10, Y9, Y2
	VBROADCASTSS (R12)(AX*4), Y8
	VBROADCASTSS (R13)(AX*4), Y9
	VFMADD231PS  Y10, Y8, Y4
	VFMADD231PS  Y10, Y9, Y6
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b4m_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX
	SHLQ  $2, DX
	LEAQ  (CX)(DX*1), R10
	LEAQ  (R10)(DX*1), R8
	LEAQ  (R8)(DX*1), R15
	VMASKMOVPS (CX), Y12, Y8
	VADDPS     Y8, Y0, Y0
	VMASKMOVPS (R10), Y12, Y9
	VADDPS     Y9, Y2, Y2
	VMASKMOVPS (R8), Y12, Y8
	VADDPS     Y8, Y4, Y4
	VMASKMOVPS (R15), Y12, Y9
	VADDPS     Y9, Y6, Y6
	MOVQ       epi+72(FP), AX
	TESTQ      AX, AX
	JZ         b4m_store
	VMAXPS     Y13, Y0, Y0
	VMAXPS     Y13, Y2, Y2
	VMAXPS     Y13, Y4, Y4
	VMAXPS     Y13, Y6, Y6

b4m_store:
	VMASKMOVPS Y0, Y12, (CX)
	VMASKMOVPS Y2, Y12, (R10)
	VMASKMOVPS Y4, Y12, (R8)
	VMASKMOVPS Y6, Y12, (R15)
	ADDQ       R14, SI
	JMP        p4_coltail

	// ---- 4x8 (full-vector remainder) block ----
p4_col8:
	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI
	LEAQ  (DI)(DX*4), R15
	LEAQ  (R15)(DX*4), R12
	LEAQ  (R12)(DX*4), R13
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX

	VXORPS Y0, Y0, Y0
	VXORPS Y2, Y2, Y2
	VXORPS Y4, Y4, Y4
	VXORPS Y6, Y6, Y6
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b48_loop:
	VMOVUPS      (BX), Y10
	VBROADCASTSS (DI)(AX*4), Y8
	VBROADCASTSS (R15)(AX*4), Y9
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y10, Y9, Y2
	VBROADCASTSS (R12)(AX*4), Y8
	VBROADCASTSS (R13)(AX*4), Y9
	VFMADD231PS  Y10, Y8, Y4
	VFMADD231PS  Y10, Y9, Y6
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b48_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX
	SHLQ  $2, DX
	LEAQ  (CX)(DX*1), R10
	LEAQ  (R10)(DX*1), R8
	LEAQ  (R8)(DX*1), R15
	VADDPS (CX), Y0, Y0
	VADDPS (R10), Y2, Y2
	VADDPS (R8), Y4, Y4
	VADDPS (R15), Y6, Y6
	MOVQ   epi+72(FP), AX
	TESTQ  AX, AX
	JZ     b48_store
	VMAXPS Y13, Y0, Y0
	VMAXPS Y13, Y2, Y2
	VMAXPS Y13, Y4, Y4
	VMAXPS Y13, Y6, Y6

b48_store:
	VMOVUPS Y0, (CX)
	VMOVUPS Y2, (R10)
	VMOVUPS Y4, (R8)
	VMOVUPS Y6, (R15)
	ADDQ    $8, SI
	JMP     p4_coltail

	// ---- 4 x (8+rem) combined block, 9..15 columns ----
p4_col8m:
	MOVQ    DX, R14        // advance = cols left
	SUBQ    $8, DX         // rem = left - 8 (1..7)
	LEAQ    maskTab<>+32(SB), R10
	SHLQ    $2, DX
	SUBQ    DX, R10
	VMOVUPS (R10), Y12

	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI
	LEAQ  (DI)(DX*4), R15
	LEAQ  (R15)(DX*4), R12
	LEAQ  (R12)(DX*4), R13
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b48m_loop:
	VMOVUPS      (BX), Y10
	VMASKMOVPS   32(BX), Y12, Y11
	VBROADCASTSS (DI)(AX*4), Y8
	VBROADCASTSS (R15)(AX*4), Y9
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y11, Y8, Y1
	VFMADD231PS  Y10, Y9, Y2
	VFMADD231PS  Y11, Y9, Y3
	VBROADCASTSS (R12)(AX*4), Y8
	VBROADCASTSS (R13)(AX*4), Y9
	VFMADD231PS  Y10, Y8, Y4
	VFMADD231PS  Y11, Y8, Y5
	VFMADD231PS  Y10, Y9, Y6
	VFMADD231PS  Y11, Y9, Y7
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b48m_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX
	SHLQ  $2, DX
	LEAQ  (CX)(DX*1), R10
	LEAQ  (R10)(DX*1), R8
	LEAQ  (R8)(DX*1), R15
	VADDPS     (CX), Y0, Y0
	VMASKMOVPS 32(CX), Y12, Y9
	VADDPS     Y9, Y1, Y1
	VADDPS     (R10), Y2, Y2
	VMASKMOVPS 32(R10), Y12, Y9
	VADDPS     Y9, Y3, Y3
	VADDPS     (R8), Y4, Y4
	VMASKMOVPS 32(R8), Y12, Y9
	VADDPS     Y9, Y5, Y5
	VADDPS     (R15), Y6, Y6
	VMASKMOVPS 32(R15), Y12, Y9
	VADDPS     Y9, Y7, Y7
	MOVQ       epi+72(FP), AX
	TESTQ      AX, AX
	JZ         b48m_store
	VMAXPS     Y13, Y0, Y0
	VMAXPS     Y13, Y1, Y1
	VMAXPS     Y13, Y2, Y2
	VMAXPS     Y13, Y3, Y3
	VMAXPS     Y13, Y4, Y4
	VMAXPS     Y13, Y5, Y5
	VMAXPS     Y13, Y6, Y6
	VMAXPS     Y13, Y7, Y7

b48m_store:
	VMOVUPS    Y0, (CX)
	VMASKMOVPS Y1, Y12, 32(CX)
	VMOVUPS    Y2, (R10)
	VMASKMOVPS Y3, Y12, 32(R10)
	VMOVUPS    Y4, (R8)
	VMASKMOVPS Y5, Y12, 32(R8)
	VMOVUPS    Y6, (R15)
	VMASKMOVPS Y7, Y12, 32(R15)
	ADDQ       R14, SI
	JMP        p4_coltail

p4_done:
	ADDQ $4, R11
	JMP  row_loop

p2_col:
	MOVQ n+56(FP), DX
	LEAQ 15(SI), AX
	CMPQ AX, DX
	JGE  p2_coltail

	// ---- 2x16 block ----
	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI   // a0 = a + i*lda
	LEAQ  (DI)(DX*4), R15  // a1 = a0 + lda
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX   // b + j
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX           // ldb in bytes

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b216_loop:
	VBROADCASTSS (DI)(AX*4), Y8
	VBROADCASTSS (R15)(AX*4), Y9
	VMOVUPS      (BX), Y10
	VMOVUPS      32(BX), Y11
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y11, Y8, Y1
	VFMADD231PS  Y10, Y9, Y2
	VFMADD231PS  Y11, Y9, Y3
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b216_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX   // c0 = c + i*ldc + j
	SHLQ  $2, DX
	LEAQ  (CX)(DX*1), R10  // c1
	VADDPS (CX), Y0, Y0
	VADDPS 32(CX), Y1, Y1
	VADDPS (R10), Y2, Y2
	VADDPS 32(R10), Y3, Y3
	MOVQ   epi+72(FP), AX
	TESTQ  AX, AX
	JZ     b216_store
	VMAXPS Y13, Y0, Y0
	VMAXPS Y13, Y1, Y1
	VMAXPS Y13, Y2, Y2
	VMAXPS Y13, Y3, Y3

b216_store:
	VMOVUPS Y0, (CX)
	VMOVUPS Y1, 32(CX)
	VMOVUPS Y2, (R10)
	VMOVUPS Y3, 32(R10)
	ADDQ    $16, SI
	JMP     p2_col

p2_coltail:
	MOVQ n+56(FP), DX
	CMPQ SI, DX
	JGE  p2_done
	SUBQ SI, DX            // cols left
	CMPQ DX, $8
	JG   p2_col8m          // 9..15: one full vector + one masked
	JE   p2_col8

	// ---- 2 x rem (1..7, masked) block ----
	MOVQ    $8, R8
	CMPQ    DX, R8
	CMOVQGT R8, DX         // rem = min(left, 8)
	MOVQ    DX, R14
	LEAQ    maskTab<>+32(SB), R10
	SHLQ    $2, DX
	SUBQ    DX, R10
	VMOVUPS (R10), Y12

	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI
	LEAQ  (DI)(DX*4), R15
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX

	VXORPS Y0, Y0, Y0
	VXORPS Y2, Y2, Y2
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b2m_loop:
	VBROADCASTSS (DI)(AX*4), Y8
	VBROADCASTSS (R15)(AX*4), Y9
	VMASKMOVPS   (BX), Y12, Y10
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y10, Y9, Y2
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b2m_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX
	SHLQ  $2, DX
	LEAQ  (CX)(DX*1), R10
	VMASKMOVPS (CX), Y12, Y8
	VADDPS     Y8, Y0, Y0
	VMASKMOVPS (R10), Y12, Y9
	VADDPS     Y9, Y2, Y2
	MOVQ       epi+72(FP), AX
	TESTQ      AX, AX
	JZ         b2m_store
	VMAXPS     Y13, Y0, Y0
	VMAXPS     Y13, Y2, Y2

b2m_store:
	VMASKMOVPS Y0, Y12, (CX)
	VMASKMOVPS Y2, Y12, (R10)
	ADDQ       R14, SI
	JMP        p2_coltail

	// ---- 2x8 (full-vector remainder) block ----
p2_col8:
	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI
	LEAQ  (DI)(DX*4), R15
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX

	VXORPS Y0, Y0, Y0
	VXORPS Y2, Y2, Y2
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b28_loop:
	VBROADCASTSS (DI)(AX*4), Y8
	VBROADCASTSS (R15)(AX*4), Y9
	VMOVUPS      (BX), Y10
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y10, Y9, Y2
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b28_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX
	SHLQ  $2, DX
	LEAQ  (CX)(DX*1), R10
	VADDPS (CX), Y0, Y0
	VADDPS (R10), Y2, Y2
	MOVQ   epi+72(FP), AX
	TESTQ  AX, AX
	JZ     b28_store
	VMAXPS Y13, Y0, Y0
	VMAXPS Y13, Y2, Y2

b28_store:
	VMOVUPS Y0, (CX)
	VMOVUPS Y2, (R10)
	ADDQ    $8, SI
	JMP     p2_coltail

	// ---- 2 x (8+rem) combined block, 9..15 columns ----
	// One full b vector plus one masked vector in the same k pass: a
	// narrow-n panel (the convolution widths) pays the A broadcasts once
	// instead of twice.
p2_col8m:
	MOVQ    DX, R14        // advance = cols left
	SUBQ    $8, DX         // rem = left - 8 (1..7)
	LEAQ    maskTab<>+32(SB), R10
	SHLQ    $2, DX
	SUBQ    DX, R10
	VMOVUPS (R10), Y12

	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI
	LEAQ  (DI)(DX*4), R15
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b28m_loop:
	VBROADCASTSS (DI)(AX*4), Y8
	VBROADCASTSS (R15)(AX*4), Y9
	VMOVUPS      (BX), Y10
	VMASKMOVPS   32(BX), Y12, Y11
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y11, Y8, Y1
	VFMADD231PS  Y10, Y9, Y2
	VFMADD231PS  Y11, Y9, Y3
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b28m_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX
	SHLQ  $2, DX
	LEAQ  (CX)(DX*1), R10
	VADDPS     (CX), Y0, Y0
	VMASKMOVPS 32(CX), Y12, Y8
	VADDPS     Y8, Y1, Y1
	VADDPS     (R10), Y2, Y2
	VMASKMOVPS 32(R10), Y12, Y9
	VADDPS     Y9, Y3, Y3
	MOVQ       epi+72(FP), AX
	TESTQ      AX, AX
	JZ         b28m_store
	VMAXPS     Y13, Y0, Y0
	VMAXPS     Y13, Y1, Y1
	VMAXPS     Y13, Y2, Y2
	VMAXPS     Y13, Y3, Y3

b28m_store:
	VMOVUPS    Y0, (CX)
	VMASKMOVPS Y1, Y12, 32(CX)
	VMOVUPS    Y2, (R10)
	VMASKMOVPS Y3, Y12, 32(R10)
	ADDQ       R14, SI
	JMP        p2_coltail

p2_done:
	ADDQ $2, R11
	JMP  row_loop

row_single:
	MOVQ m+48(FP), DX
	CMPQ R11, DX
	JGE  done
	XORQ SI, SI

p1_col:
	MOVQ n+56(FP), DX
	LEAQ 15(SI), AX
	CMPQ AX, DX
	JGE  p1_coltail

	// ---- 1x16 block ----
	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b116_loop:
	VBROADCASTSS (DI)(AX*4), Y8
	VMOVUPS      (BX), Y10
	VMOVUPS      32(BX), Y11
	VFMADD231PS  Y10, Y8, Y0
	VFMADD231PS  Y11, Y8, Y1
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b116_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX
	VADDPS (CX), Y0, Y0
	VADDPS 32(CX), Y1, Y1
	MOVQ   epi+72(FP), AX
	TESTQ  AX, AX
	JZ     b116_store
	VMAXPS Y13, Y0, Y0
	VMAXPS Y13, Y1, Y1

b116_store:
	VMOVUPS Y0, (CX)
	VMOVUPS Y1, 32(CX)
	ADDQ    $16, SI
	JMP     p1_col

p1_coltail:
	MOVQ n+56(FP), DX
	CMPQ SI, DX
	JGE  p1_rownext
	SUBQ SI, DX
	CMPQ DX, $8
	JGE  p1_col8

	// ---- 1 x rem (1..7, masked) block ----
	MOVQ    $8, R8
	CMPQ    DX, R8
	CMOVQGT R8, DX
	MOVQ    DX, R14
	LEAQ    maskTab<>+32(SB), R10
	SHLQ    $2, DX
	SUBQ    DX, R10
	VMOVUPS (R10), Y12

	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX

	VXORPS Y0, Y0, Y0
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b1m_loop:
	VBROADCASTSS (DI)(AX*4), Y8
	VMASKMOVPS   (BX), Y12, Y10
	VFMADD231PS  Y10, Y8, Y0
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b1m_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX
	VMASKMOVPS (CX), Y12, Y8
	VADDPS     Y8, Y0, Y0
	MOVQ       epi+72(FP), AX
	TESTQ      AX, AX
	JZ         b1m_store
	VMAXPS     Y13, Y0, Y0

b1m_store:
	VMASKMOVPS Y0, Y12, (CX)
	ADDQ       R14, SI
	JMP        p1_coltail

	// ---- 1x8 (full-vector remainder) block ----
p1_col8:
	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	LEAQ  (DI)(AX*4), DI
	MOVQ  b+16(FP), BX
	LEAQ  (BX)(SI*4), BX
	MOVQ  ldb+24(FP), DX
	SHLQ  $2, DX

	VXORPS Y0, Y0, Y0
	MOVQ   k+64(FP), R9
	XORQ   AX, AX

b18_loop:
	VBROADCASTSS (DI)(AX*4), Y8
	VMOVUPS      (BX), Y10
	VFMADD231PS  Y10, Y8, Y0
	INCQ         AX
	ADDQ         DX, BX
	CMPQ         AX, R9
	JL           b18_loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX
	VADDPS (CX), Y0, Y0
	MOVQ   epi+72(FP), AX
	TESTQ  AX, AX
	JZ     b18_store
	VMAXPS Y13, Y0, Y0

b18_store:
	VMOVUPS Y0, (CX)
	ADDQ    $8, SI
	JMP     p1_coltail

p1_rownext:
	INCQ R11
	JMP  row_single

done:
	VZEROUPPER
	RET

// func normLog1pAVX2(dst *float32, src *float64, n int, nv *float32)
//
// dst[i] = (log1p(float32(src[i])) - nv[i&7]) * nv[8+(i&7)] for i in
// [0,n), n a positive multiple of 8. The log1p is the same Cephes
// polynomial as the scalar logf, with the mantissa/exponent split done
// branch-free via the sqrt(2)/2 bit-offset trick; the coefficient table
// lives in the Go-side normConsts (kernels32_amd64.go).
//
// Lane layout of nv: eight mean values then eight 1/std values (the
// two-channel normalization pattern repeated; see makeNormVec).
TEXT ·normLog1pAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ nv+24(FP), R8
	VMOVUPS (R8), Y14          // mean lanes
	VMOVUPS 32(R8), Y15        // inv lanes
	LEAQ    ·normConsts(SB), R9
	VMOVUPS 384(R9), Y13       // 1.0

nl_loop:
	VCVTPD2PSY (SI), X0        // 4 doubles -> 4 floats
	VCVTPD2PSY 32(SI), X1
	VINSERTF128 $1, X1, Y0, Y0
	VADDPS Y13, Y0, Y0         // y = 1 + x

	// Branch-free split y = m * 2^e, m in [sqrt(2)/2, sqrt(2)).
	VPADDD 416(R9), Y0, Y1     // ibits = bits(y) + (bits(1.0) - bits(sqrt2/2))
	VPSRLD $23, Y1, Y2
	VPSUBD 480(R9), Y2, Y2     // e = biased exponent - 127
	VCVTDQ2PS Y2, Y2
	VPAND  448(R9), Y1, Y1     // mantissa field of ibits
	VPADDD 512(R9), Y1, Y1     // m bits = mantissa + bits(sqrt2/2)
	VSUBPS Y13, Y1, Y3         // z = m - 1

	VMOVUPS     0(R9), Y4      // p = c0, then Horner through c8
	VFMADD213PS 32(R9), Y3, Y4
	VFMADD213PS 64(R9), Y3, Y4
	VFMADD213PS 96(R9), Y3, Y4
	VFMADD213PS 128(R9), Y3, Y4
	VFMADD213PS 160(R9), Y3, Y4
	VFMADD213PS 192(R9), Y3, Y4
	VFMADD213PS 224(R9), Y3, Y4
	VFMADD213PS 256(R9), Y3, Y4

	VMULPS Y3, Y3, Y5          // zz
	VMULPS Y3, Y5, Y6          // z*zz
	VMULPS Y4, Y6, Y6          // y = z*zz*p
	VFMADD231PS  288(R9), Y2, Y6 // y += e * ln2 low part
	VFNMADD231PS 320(R9), Y5, Y6 // y -= 0.5*zz
	VADDPS Y3, Y6, Y6          // y += z
	VFMADD231PS  352(R9), Y2, Y6 // y += e * ln2 high part

	VSUBPS Y14, Y6, Y6         // (y - mean) * inv
	VMULPS Y15, Y6, Y6
	VMOVUPS Y6, (DI)

	ADDQ $64, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  nl_loop
	VZEROUPPER
	RET

// func i8NTBlockAVX2(a *int8, lda int, b *int8, ldb int, c *int32, ldc int, m, n, k16 int)
//
// C[i][j] += sum over kc < k16 of A[i][kc]*B[j][kc], int32 accumulation.
// k16 must be a positive multiple of 16; the Go caller finishes the
// scalar remainder. One A row by four B rows per block: the sign-extended
// A chunk (VPMOVSXBW) is shared across the four VPMADDWD columns.
// Integer adds commute, so there is no schedule to pin — results are
// exact.
TEXT ·i8NTBlockAVX2(SB), NOSPLIT, $0-72
	XORQ R11, R11          // i

i8_row:
	MOVQ m+48(FP), DX
	CMPQ R11, DX
	JGE  i8_done
	XORQ SI, SI            // j

i8_col4:
	MOVQ n+56(FP), DX
	LEAQ 3(SI), AX
	CMPQ AX, DX
	JGE  i8_coltail

	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  AX, DI
	MOVQ  b+16(FP), BX
	MOVQ  ldb+24(FP), DX
	MOVQ  SI, AX
	IMULQ DX, AX
	ADDQ  AX, BX
	LEAQ  (BX)(DX*1), R12
	LEAQ  (R12)(DX*1), R13
	LEAQ  (R13)(DX*1), R14

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	MOVQ  k16+64(FP), R9
	XORQ  AX, AX

i8_b4loop:
	VPMOVSXBW (DI)(AX*1), Y8
	VPMOVSXBW (BX)(AX*1), Y10
	VPMADDWD  Y10, Y8, Y10
	VPADDD    Y10, Y0, Y0
	VPMOVSXBW (R12)(AX*1), Y10
	VPMADDWD  Y10, Y8, Y10
	VPADDD    Y10, Y1, Y1
	VPMOVSXBW (R13)(AX*1), Y10
	VPMADDWD  Y10, Y8, Y10
	VPADDD    Y10, Y2, Y2
	VPMOVSXBW (R14)(AX*1), Y10
	VPMADDWD  Y10, Y8, Y10
	VPADDD    Y10, Y3, Y3
	ADDQ      $16, AX
	CMPQ      AX, R9
	JL        i8_b4loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX

	VEXTRACTI128 $1, Y0, X8
	VPADDD       X8, X0, X0
	VPHADDD      X0, X0, X0
	VPHADDD      X0, X0, X0
	VMOVD        X0, DX
	ADDL         DX, (CX)
	VEXTRACTI128 $1, Y1, X8
	VPADDD       X8, X1, X1
	VPHADDD      X1, X1, X1
	VPHADDD      X1, X1, X1
	VMOVD        X1, DX
	ADDL         DX, 4(CX)
	VEXTRACTI128 $1, Y2, X8
	VPADDD       X8, X2, X2
	VPHADDD      X2, X2, X2
	VPHADDD      X2, X2, X2
	VMOVD        X2, DX
	ADDL         DX, 8(CX)
	VEXTRACTI128 $1, Y3, X8
	VPADDD       X8, X3, X3
	VPHADDD      X3, X3, X3
	VPHADDD      X3, X3, X3
	VMOVD        X3, DX
	ADDL         DX, 12(CX)

	ADDQ $4, SI
	JMP  i8_col4

i8_coltail:
	MOVQ n+56(FP), DX
	CMPQ SI, DX
	JGE  i8_rownext

	MOVQ  a+0(FP), DI
	MOVQ  lda+8(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  AX, DI
	MOVQ  b+16(FP), BX
	MOVQ  ldb+24(FP), DX
	MOVQ  SI, AX
	IMULQ DX, AX
	ADDQ  AX, BX

	VPXOR Y0, Y0, Y0
	MOVQ  k16+64(FP), R9
	XORQ  AX, AX

i8_b1loop:
	VPMOVSXBW (DI)(AX*1), Y8
	VPMOVSXBW (BX)(AX*1), Y10
	VPMADDWD  Y10, Y8, Y10
	VPADDD    Y10, Y0, Y0
	ADDQ      $16, AX
	CMPQ      AX, R9
	JL        i8_b1loop

	MOVQ  c+32(FP), CX
	MOVQ  ldc+40(FP), DX
	MOVQ  R11, AX
	IMULQ DX, AX
	ADDQ  SI, AX
	LEAQ  (CX)(AX*4), CX

	VEXTRACTI128 $1, Y0, X8
	VPADDD       X8, X0, X0
	VPHADDD      X0, X0, X0
	VPHADDD      X0, X0, X0
	VMOVD        X0, DX
	ADDL         DX, (CX)

	INCQ SI
	JMP  i8_coltail

i8_rownext:
	INCQ R11
	JMP  i8_row

i8_done:
	VZEROUPPER
	RET

// Vectorized gate activations. Both kernels share the branch-free expf
// core: magic-number rounding (adding 1.5*2^23 leaves round(x*log2e) in
// the low mantissa bits), the scalar expf's Cephes polynomial, and
// exponent reassembly through the float bit pattern. Arguments below the
// underflow cutoff are zeroed by mask instead of by branch; arguments
// above the overflow cutoff clamp to it (exp(88.02) is finite in
// float32). Coefficients live in the Go-side expConsts table
// (kernels32_amd64.go); offsets are hard-coded here.
//
// The core consumes Y0 (argument) and leaves exp(Y0) in Y0, using
// Y1-Y3 and the keep-mask in Y7; R9 holds &expConsts.

// func sigmoidAVX2(x *float32, n int)
//
// x[i] = 1/(1+exp(-x[i])) in place; n a positive multiple of 8.
TEXT ·sigmoidAVX2(SB), NOSPLIT, $0-16
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), CX
	LEAQ ·expConsts(SB), R9

sg_loop:
	VMOVUPS (DI), Y0
	VXORPS  480(R9), Y0, Y0      // -x

	// ---- expf core ----
	VMINPS       352(R9), Y0, Y0 // clamp to max arg
	VCMPPS       $0x0D, 384(R9), Y0, Y7 // keep-mask: arg >= min arg
	VMOVUPS      32(R9), Y1      // t = magic
	VFMADD231PS  0(R9), Y0, Y1   // t += arg*log2e
	VPSUBD       416(R9), Y1, Y2 // bits(t) - (magicbits - 127) = n+127
	VPSLLD       $23, Y2, Y2     // 2^n bit pattern
	VSUBPS       32(R9), Y1, Y1  // rf = t - magic
	VFNMADD231PS 64(R9), Y1, Y0  // r = arg - rf*ln2hi
	VFNMADD231PS 96(R9), Y1, Y0  // r -= rf*ln2lo
	VMOVUPS      128(R9), Y3     // p = c0, Horner through c5
	VFMADD213PS  160(R9), Y0, Y3
	VFMADD213PS  192(R9), Y0, Y3
	VFMADD213PS  224(R9), Y0, Y3
	VFMADD213PS  256(R9), Y0, Y3
	VFMADD213PS  288(R9), Y0, Y3
	VMULPS       Y0, Y3, Y3      // p*r
	VFMADD213PS  Y0, Y0, Y3      // p*r*r + r
	VADDPS       320(R9), Y3, Y3 // + 1
	VMULPS       Y2, Y3, Y0      // * 2^n
	VANDPS       Y7, Y0, Y0      // underflow to exactly 0
	// ---- end expf core ----

	VADDPS  320(R9), Y0, Y0      // e + 1
	VMOVUPS 320(R9), Y1
	VDIVPS  Y0, Y1, Y0           // 1/(e+1)
	VMOVUPS Y0, (DI)

	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  sg_loop
	VZEROUPPER
	RET

// func tanhAVX2(x *float32, n int)
//
// x[i] = tanh(x[i]) = 1 - 2/(exp(2x)+1) in place; n a positive multiple
// of 8. No saturation branch: the expf core's own clamp drives the
// quotient to 0 or 2 at the extremes, giving exactly +/-1.
TEXT ·tanhAVX2(SB), NOSPLIT, $0-16
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), CX
	LEAQ ·expConsts(SB), R9

th_loop:
	VMOVUPS (DI), Y0
	VADDPS  Y0, Y0, Y0           // 2x

	// ---- expf core ----
	VMINPS       352(R9), Y0, Y0
	VCMPPS       $0x0D, 384(R9), Y0, Y7
	VMOVUPS      32(R9), Y1
	VFMADD231PS  0(R9), Y0, Y1
	VPSUBD       416(R9), Y1, Y2
	VPSLLD       $23, Y2, Y2
	VSUBPS       32(R9), Y1, Y1
	VFNMADD231PS 64(R9), Y1, Y0
	VFNMADD231PS 96(R9), Y1, Y0
	VMOVUPS      128(R9), Y3
	VFMADD213PS  160(R9), Y0, Y3
	VFMADD213PS  192(R9), Y0, Y3
	VFMADD213PS  224(R9), Y0, Y3
	VFMADD213PS  256(R9), Y0, Y3
	VFMADD213PS  288(R9), Y0, Y3
	VMULPS       Y0, Y3, Y3
	VFMADD213PS  Y0, Y0, Y3
	VADDPS       320(R9), Y3, Y3
	VMULPS       Y2, Y3, Y0
	VANDPS       Y7, Y0, Y0
	// ---- end expf core ----

	VADDPS  320(R9), Y0, Y0      // e + 1
	VMOVUPS 448(R9), Y1          // 2.0
	VDIVPS  Y0, Y1, Y0           // 2/(e+1)
	VMOVUPS 320(R9), Y1
	VSUBPS  Y0, Y1, Y0           // 1 - 2/(e+1)
	VMOVUPS Y0, (DI)

	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  th_loop
	VZEROUPPER
	RET
