package dnn

import (
	"fmt"
	"math"
)

// Adam is the Adam optimizer (Kingma & Ba, 2014), the optimizer the paper
// trains with (initial learning rate 1e-3, final 1e-4, reduced by a factor
// of 1/cbrt(2) after every 150 epochs without validation improvement).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	MinLR   float64
	ClipVal float64 // per-element gradient clip; 0 disables

	step int
	m, v map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the paper's defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		MinLR:   1e-4,
		ClipVal: 5,
		m:       make(map[*Param][]float64),
		v:       make(map[*Param][]float64),
	}
}

// Step applies one update to every parameter and clears the gradients.
func (a *Adam) Step(params []*Param) {
	a.step++
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m := a.m[p]
		if m == nil {
			m = make([]float64, len(p.W)) //memdos:ignore hotalloc first-touch init of the moment buffers; every later step reuses them
			a.m[p] = m
			a.v[p] = make([]float64, len(p.W)) //memdos:ignore hotalloc first-touch init of the moment buffers; every later step reuses them
		}
		v := a.v[p]
		for i, g := range p.Grad {
			if a.ClipVal > 0 {
				if g > a.ClipVal {
					g = a.ClipVal
				} else if g < -a.ClipVal {
					g = -a.ClipVal
				}
			}
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mhat := m[i] / b1c
			vhat := v[i] / b2c
			p.W[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ReduceLR multiplies the learning rate by 1/cbrt(2), flooring at MinLR,
// per the paper's plateau schedule. It reports whether the rate changed.
func (a *Adam) ReduceLR() bool {
	if a.LR <= a.MinLR {
		// At (or, if misconfigured, below) the floor: clamp and report
		// whether the clamp moved the rate.
		changed := a.LR < a.MinLR
		a.LR = a.MinLR
		return changed
	}
	next := a.LR / math.Cbrt(2)
	if next < a.MinLR {
		next = a.MinLR
	}
	a.LR = next
	return true
}

// String describes the optimizer state.
func (a *Adam) String() string {
	return fmt.Sprintf("Adam(lr=%g, step=%d)", a.LR, a.step)
}
