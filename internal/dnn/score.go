package dnn

import (
	"fmt"
	"math"
)

// BatchScorer is the cascade's production inference engine: a compiled,
// float32, allocation-free forward path that fuses N session windows into
// single [N·T × C] tensors and runs them through AVX2/FMA GEMM
// microkernels (kernels32). It exists because the training graph —
// float64, im2col copies, per-element BatchNorm, cached activations for
// backward — is an order of magnitude too slow to serve a fleet.
//
// Compilation folds each BatchNorm into its convolution (w' = w·γ/σ,
// b' = β + γ(b−μ)/σ), stages every weight matrix in the [k][n] layout
// the NN-form C += A·B kernel wants (for the LSTM, attention, and dense
// layers that is their natural storage order; only conv weights
// transpose), fuses the convolution ReLUs into the GEMM epilogue, and
// drops everything inference never reads: ReLU masks, dropout,
// activation caches. Interior convolution rows skip im2col entirely — a
// window row's receptive field is already a contiguous slice of the
// input tensor — so only the K/2 edge rows per side are staged into a
// zero-padded arena.
//
// Scoring is split into two stages so a pipeline can overlap them:
// Prepare normalizes raw counter windows into one of two input slots
// (the double buffer), Score runs the compiled cascade on a prepared
// slot. Prepare touches only slot storage and Score only model arenas,
// so one Prepare may run concurrently with one Score on a different
// slot; neither may run concurrently with itself.
//
// Determinism: the float32 path inherits the kernel layer's schedule
// guarantee — every output element accumulates identically regardless of
// batch size or kernel worker count — so ScoreBatch over N windows is
// byte-identical to N batch-1 calls. The int8 path (ScorerOptions.Int8)
// trades that away across batch shapes: activation scales are computed
// per batch, so grouping affects rounding; within a fixed batch it is
// still exactly deterministic (integer accumulation).
type BatchScorer struct {
	w       int // window length
	numApps int
	quant   bool

	nmean, ninv [2]float32 // folded ChannelNorm: x' = (log1p(x)-mean)*inv
	nvec        normVec    // the same, in the vector kernel's lane pattern

	app, atk *modelProg

	prep  [2]PreparedBatch
	slot  int
	cond  []float32 // conditioned attack-stage input [n][w][2+numApps]
	stage []float64 // contiguous staging for PrepareWindows rows
}

// ScorerOptions selects scorer variants.
type ScorerOptions struct {
	// Int8 quantizes the convolution and dense GEMMs to symmetric
	// per-output-channel int8 weights with per-tensor dynamic activation
	// scales. The LSTM and attention stay float32 (they are a small
	// fraction of the MACs and the recurrence compounds rounding).
	Int8 bool
}

// PreparedBatch is a normalized input batch staged in one of the
// scorer's two slots. It is valid until the slot is reused: at most two
// Prepare results are live at a time.
type PreparedBatch struct {
	owner *BatchScorer
	n     int
	x     []float32 // [n][w][2]
}

// N returns the number of windows in the batch.
func (p *PreparedBatch) N() int { return p.n }

// NewBatchScorer compiles the cascade for the given window length. The
// cascade must have fitted normalization statistics (train or load
// first); its lazily built LSTM branches are materialized here if needed.
// Returns an error for windows shorter than the convolution stack's edge
// region, where the compiled edge/interior split does not apply.
func NewBatchScorer(c *Cascade, window int, opts ScorerOptions) (*BatchScorer, error) {
	if window <= 0 {
		return nil, fmt.Errorf("dnn: scorer window must be positive, got %d", window)
	}
	if len(c.Norm.Mean) != 2 || len(c.Norm.Std) != 2 {
		return nil, fmt.Errorf("dnn: cascade has no fitted channel normalization")
	}
	if c.App.lstm == nil {
		c.App.Forward(NewTensor(1, window, 2), false)
	}
	if c.Attack.lstm == nil {
		c.Attack.Forward(NewTensor(1, window, 2+c.NumApps), false)
	}
	app, err := compileModel(c.App, window, opts.Int8)
	if err != nil {
		return nil, fmt.Errorf("dnn: compiling app stage: %w", err)
	}
	atk, err := compileModel(c.Attack, window, opts.Int8)
	if err != nil {
		return nil, fmt.Errorf("dnn: compiling attack stage: %w", err)
	}
	s := &BatchScorer{
		w:       window,
		numApps: c.NumApps,
		quant:   opts.Int8,
		app:     app,
		atk:     atk,
	}
	for ch := 0; ch < 2; ch++ {
		s.nmean[ch] = float32(c.Norm.Mean[ch])
		s.ninv[ch] = float32(1 / c.Norm.Std[ch])
	}
	s.nvec = makeNormVec(s.nmean, s.ninv)
	s.prep[0].owner = s
	s.prep[1].owner = s
	return s, nil
}

// Window returns the window length the scorer was compiled for.
func (s *BatchScorer) Window() int { return s.w }

// Quantized reports whether the conv/dense GEMMs run in int8.
func (s *BatchScorer) Quantized() bool { return s.quant }

// Prepare normalizes n raw windows, given flat as [n][w][2] row-major
// counter values, into the next input slot and returns the staged batch.
// Runs concurrently with Score on the other slot.
//
//memdos:hotpath bench=dnn/infer-batched
func (s *BatchScorer) Prepare(n int, flat []float64) *PreparedBatch {
	if len(flat) != n*s.w*2 {
		panic(fmt.Sprintf("dnn: Prepare got %d values, want %d windows x %d x 2", len(flat), n, s.w))
	}
	p := &s.prep[s.slot]
	s.slot ^= 1
	x := ensureF32(&p.x, n*s.w*2)
	snormLog1p(x, flat, &s.nvec)
	p.n = n
	return p
}

// PrepareWindows is Prepare over [][][]float64 windows ([w][2] each).
//
//memdos:hotpath bench=dnn/infer-batched
func (s *BatchScorer) PrepareWindows(windows [][][]float64) *PreparedBatch {
	n := len(windows)
	p := &s.prep[s.slot]
	s.slot ^= 1
	x := ensureF32(&p.x, n*s.w*2)
	stage := ensureF64(&s.stage, n*s.w*2)
	for b, w := range windows {
		if len(w) != s.w {
			panic(fmt.Sprintf("dnn: scorer compiled for window %d, got %d", s.w, len(w)))
		}
		base := b * s.w * 2
		for t, row := range w {
			stage[base+2*t] = row[0]
			stage[base+2*t+1] = row[1]
		}
	}
	snormLog1p(x, stage, &s.nvec)
	p.n = n
	return p
}

// Score runs the full cascade on a prepared batch: the app stage
// classifies every window, the one-hot conditioned attack stage follows,
// and the argmax verdicts land in apps[i] and attacks[i]. Zero
// allocations at steady state; arena capacity sticks to the high-water
// batch size.
//
//memdos:hotpath bench=dnn/infer-batched
func (s *BatchScorer) Score(p *PreparedBatch, apps, attacks []int) {
	if p.owner != s {
		panic("dnn: PreparedBatch from a different scorer")
	}
	n := p.n
	if len(apps) < n || len(attacks) < n {
		panic(fmt.Sprintf("dnn: Score needs %d result slots, got %d/%d", n, len(apps), len(attacks)))
	}
	// Tile the batch so the forward pass's working set (conv ping-pong
	// buffers and friends, ~10KB per window) stays L2-resident: one
	// monolithic batch-256 pass streams megabytes through every layer and
	// loses more to cache misses than it gains in GEMM amortization.
	// Tiling cannot change results — batched-equals-looped holds at every
	// chunk size (see the determinism contract in kernels32.go).
	ca := 2 + s.numApps
	cond := ensureF32(&s.cond, min(n, scoreTile)*s.w*ca)
	// Logits cover the whole batch (callers read them after Score); the
	// per-tile forward passes write their slice of it.
	appLog := ensureF32(&s.app.logits, n*s.app.classes)
	atkLog := ensureF32(&s.atk.logits, n*s.atk.classes)
	for lo := 0; lo < n; lo += scoreTile {
		hi := min(lo+scoreTile, n)
		s.app.forward(hi-lo, p.x[lo*s.w*2:hi*s.w*2], apps[lo:hi], appLog[lo*s.app.classes:hi*s.app.classes])
		clear(cond[:(hi-lo)*s.w*ca])
		for b := lo; b < hi; b++ {
			hot := 2 + apps[b]
			for t := 0; t < s.w; t++ {
				src := p.x[(b*s.w+t)*2:]
				dst := cond[((b-lo)*s.w+t)*ca:]
				dst[0] = src[0]
				dst[1] = src[1]
				dst[hot] = 1
			}
		}
		s.atk.forward(hi-lo, cond, attacks[lo:hi], atkLog[lo*s.atk.classes:hi*s.atk.classes])
	}
}

// scoreTile bounds how many windows one forward pass carries. Chosen so
// the per-tile arena footprint sits comfortably inside a per-core L2
// while the GEMM panels stay wide enough to amortize kernel entry.
const scoreTile = 32

// ScoreBatch is the one-call convenience: normalize and score a batch of
// raw windows. Equivalent to Score(PrepareWindows(windows), ...).
//
//memdos:hotpath bench=dnn/infer-batched
func (s *BatchScorer) ScoreBatch(windows [][][]float64, apps, attacks []int) {
	s.Score(s.PrepareWindows(windows), apps, attacks)
}

// ScoreFlat normalizes and scores n windows given flat as [n][w][2].
//
//memdos:hotpath bench=dnn/infer-batched
func (s *BatchScorer) ScoreFlat(n int, flat []float64, apps, attacks []int) {
	s.Score(s.Prepare(n, flat), apps, attacks)
}

// ---- compiled model program ----

// modelProg is one LSTMFCN compiled to the float32 kernel layer.
type modelProg struct {
	T, cin, classes int
	quant           bool

	convs [3]convProg

	// LSTM over the dimension-shuffled input: T' = cin steps of
	// T-dimensional observations. Weights stay in their natural [k][n]
	// storage order — exactly what the NN-form GEMM consumes.
	H, g4  int
	wx, wh []float32 // [T][4H], [H][4H]
	lb     []float32 // [4H]
	wa, va []float32 // [H][H], [H]

	fcnC, J    int       // FCN branch width, joint width fcnC+H
	outW, outB []float32 // [J][classes], [classes]
	outWQ      []int8    // quantized output weights, NT layout [classes][J]
	outWS      []float32 // per-class dequant scale

	// arenas (grow-once, high-water sized)
	bufA, bufB []float32 // conv ping-pong, [n][T][maxC]
	edge       []float32 // zero-padded conv edge rows
	shuf       []float32 // [n][cin][T]
	hs         []float32 // [n][cin][H]
	cs         []float32 // [n][H]
	pre        []float32 // [n][4H]
	tw         []float32 // [n][cin][H]
	attnBuf    []float32 // [cin]
	joint      []float32 // [n][J]: pooled FCN channels then attention ctx
	logits     []float32 // [n][classes]

	// int8 arenas
	qIn   []int8
	qEdge []int8
	ci32  []int32
}

// convProg is one convolution with its BatchNorm folded in. The float
// weights transpose to the NN layout [k*in][out]; the int8 copy keeps
// the NT layout [out][k*in] that VPMADDWD's horizontal shape wants.
type convProg struct {
	in, out, k, half int
	w                []float32 // [k*in][out]
	b                []float32 // [out]
	wq               []int8    // symmetric per-output-channel quantized, [out][k*in]
	ws               []float32 // [out] weight scales
}

func compileModel(m *LSTMFCN, T int, quant bool) (*modelProg, error) {
	if m.lstm == nil {
		return nil, fmt.Errorf("model LSTM branch not built")
	}
	if m.lstm.In != T {
		return nil, fmt.Errorf("model built for window %d, scorer wants %d", m.lstm.In, T)
	}
	p := &modelProg{
		T:       T,
		cin:     m.cfg.Channels,
		classes: m.cfg.Classes,
		quant:   quant,
		H:       m.cfg.LSTMCells,
		fcnC:    m.fcnC,
	}
	p.g4 = numGates * p.H
	p.J = p.fcnC + p.H

	convs := [3]*Conv1D{m.conv1, m.conv2, m.conv3}
	bns := [3]*BatchNorm{m.bn1, m.bn2, m.bn3}
	for i := range convs {
		if T <= convs[i].K-1 {
			return nil, fmt.Errorf("window %d too short for kernel %d edge split", T, convs[i].K)
		}
		p.convs[i] = compileConv(convs[i], bns[i], quant)
	}

	// LSTM gate weights, attention, and output dense are stored [k][n]
	// row-major in the training graph already — straight narrowing copies.
	l := m.lstm
	p.wx = f64to32(l.wx.W)
	p.wh = f64to32(l.wh.W)
	p.lb = f64to32(l.b.W)
	p.wa = f64to32(m.attn.wa.W)
	p.va = f64to32(m.attn.va.W)
	p.outW = f64to32(m.out.w.W)
	p.outB = f64to32(m.out.b.W)
	if quant {
		// The int8 GEMM wants NT rows (one per class); build a transposed
		// scratch just for quantization.
		outNT := make([]float32, p.classes*p.J)
		for o := 0; o < p.classes; o++ {
			for j := 0; j < p.J; j++ {
				outNT[o*p.J+j] = p.outW[j*p.classes+o]
			}
		}
		p.outWQ, p.outWS = quantRows(outNT, p.classes, p.J)
	}
	return p, nil
}

func compileConv(c *Conv1D, bn *BatchNorm, quant bool) convProg {
	ki := c.K * c.In
	cp := convProg{in: c.In, out: c.Out, k: c.K, half: c.K / 2}
	cp.w = make([]float32, ki*c.Out)
	cp.b = make([]float32, c.Out)
	var wNT []float32
	if quant {
		wNT = make([]float32, c.Out*ki)
	}
	for o := 0; o < c.Out; o++ {
		g := bn.gamma.W[o] / math.Sqrt(bn.runVar[o]+bn.Eps)
		for j := 0; j < ki; j++ {
			f := float32(c.w.W[o*ki+j] * g)
			cp.w[j*c.Out+o] = f
			if quant {
				wNT[o*ki+j] = f
			}
		}
		cp.b[o] = float32(bn.beta.W[o] + g*(c.b.W[o]-bn.runMean[o]))
	}
	if quant {
		cp.wq, cp.ws = quantRows(wNT, c.Out, ki)
	}
	return cp
}

func f64to32(src []float64) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// quantRows quantizes rows of a [rows][k] matrix to symmetric int8 with
// one scale per row (per output channel).
func quantRows(w []float32, rows, k int) ([]int8, []float32) {
	q := make([]int8, len(w))
	scales := make([]float32, rows)
	for r := 0; r < rows; r++ {
		row := w[r*k : (r+1)*k]
		s := maxAbs32(row) / 127
		if s == 0 { //memdos:ignore floateq exact zero means an all-zero row; scale 1 avoids division by zero
			s = 1
		}
		scales[r] = s
		inv := 1 / s
		quantizeTo(q[r*k:(r+1)*k], row, inv)
	}
	return q, scales
}

func maxAbs32(x []float32) float32 {
	var mx float32
	for _, v := range x {
		if v > mx {
			mx = v
		} else if -v > mx {
			mx = -v
		}
	}
	return mx
}

// quantizeTo rounds src*inv half-away-from-zero into int8. inv must map
// src into [-127, 127].
func quantizeTo(dst []int8, src []float32, inv float32) {
	for i, v := range src {
		f := v * inv
		if f >= 0 {
			dst[i] = int8(f + 0.5)
		} else {
			dst[i] = int8(f - 0.5)
		}
	}
}

// forward classifies n windows ([n][T][cin] in x) into out[0:n], writing
// raw class scores to logits ([n][classes], provided by the caller so a
// tiled Score can assemble the full batch's logits across calls).
func (p *modelProg) forward(n int, x []float32, out []int, logits []float32) {
	T, cin, H := p.T, p.cin, p.H

	// FCN branch: conv+foldedBN x3 into the ping-pong arenas, each ReLU
	// fused into its convolution's GEMM epilogue (every output element has
	// exactly one GEMM-panel writer, so clamping at the store is exact).
	maxC := cin
	for _, cp := range p.convs {
		maxC = max(maxC, cp.out)
	}
	bufA := ensureF32(&p.bufA, n*T*maxC)
	bufB := ensureF32(&p.bufB, n*T*maxC)
	p.convForward(&p.convs[0], n, x, bufA)
	p.convForward(&p.convs[1], n, bufA, bufB)
	p.convForward(&p.convs[2], n, bufB, bufA)

	// Global average pool straight into the joint rows.
	joint := ensureF32(&p.joint, n*p.J)
	fcnOut := p.convs[2].out
	invT := 1 / float32(T)
	for b := 0; b < n; b++ {
		jr := joint[b*p.J : b*p.J+fcnOut]
		clear(jr)
		for t := 0; t < T; t++ {
			saddTo(jr, bufA[(b*T+t)*fcnOut:(b*T+t+1)*fcnOut])
		}
		for c := range jr {
			jr[c] *= invT
		}
	}

	// Dimension shuffle: [n][T][cin] -> [n][cin][T].
	shuf := ensureF32(&p.shuf, n*cin*T)
	for b := 0; b < n; b++ {
		stransposeRows(shuf[b*cin*T:(b+1)*cin*T], x[b*T*cin:(b+1)*T*cin], T, cin)
	}

	// LSTM recurrence over cin steps of T-dimensional observations.
	hs := ensureF32(&p.hs, n*cin*H)
	cs := ensureF32(&p.cs, n*H)
	pre := ensureF32(&p.pre, n*p.g4)
	for t := 0; t < cin; t++ {
		sbiasRows(n, p.g4, pre, p.g4, p.lb)
		sgemm(n, p.g4, T, shuf[t*T:], cin*T, p.wx, p.g4, pre, p.g4, epiAdd)
		if t > 0 {
			sgemm(n, p.g4, H, hs[(t-1)*H:], cin*H, p.wh, p.g4, pre, p.g4, epiAdd)
		}
		for b := 0; b < n; b++ {
			pr := pre[b*p.g4 : (b+1)*p.g4]
			// Gate order is I, F, O, G: sigmoid on the first three blocks,
			// tanh on the last, each a single vectorized pass.
			vsigmoid(pr[gateI*H : (gateO+1)*H])
			vtanh(pr[gateG*H : (gateG+1)*H])
			ig := pr[gateI*H : gateI*H+H]
			fg := pr[gateF*H : gateF*H+H]
			og := pr[gateO*H : gateO*H+H]
			gg := pr[gateG*H : gateG*H+H]
			hr := hs[(b*cin+t)*H : (b*cin+t)*H+H]
			cr := cs[b*H : (b+1)*H]
			if t > 0 {
				for h := 0; h < H; h++ {
					cr[h] = ig[h]*gg[h] + fg[h]*cr[h]
				}
			} else {
				for h := 0; h < H; h++ {
					cr[h] = ig[h] * gg[h]
				}
			}
			copy(hr, cr)
			vtanh(hr)
			for h := 0; h < H; h++ {
				hr[h] *= og[h]
			}
		}
	}

	// Attention: scores from one fused GEMM + tanh·v epilogue, softmax,
	// context accumulated into the joint rows after the FCN channels.
	tw := ensureF32(&p.tw, n*cin*H)
	clear(tw)
	sgemm(n*cin, H, H, hs, H, p.wa, H, tw, H, epiAdd)
	scores := ensureF32(&p.attnBuf, cin)
	for b := 0; b < n; b++ {
		// Per-sample vtanh: the slice length (cin*H) is fixed by model
		// shape, so the SIMD/scalar dispatch cannot vary with batch size.
		vtanh(tw[b*cin*H : (b+1)*cin*H])
		for t := 0; t < cin; t++ {
			scores[t] = sdot(tw[(b*cin+t)*H:(b*cin+t+1)*H], p.va)
		}
		maxS := scores[0]
		for _, v := range scores[1:] {
			if v > maxS {
				maxS = v
			}
		}
		var sum float32
		for t := range scores {
			scores[t] = expf(scores[t] - maxS)
			sum += scores[t]
		}
		inv := 1 / sum
		ctx := joint[b*p.J+fcnOut : (b+1)*p.J]
		clear(ctx)
		for t := 0; t < cin; t++ {
			saxpy(scores[t]*inv, hs[(b*cin+t)*H:(b*cin+t+1)*H], ctx)
		}
	}

	// Output dense + argmax.
	if p.quant {
		p.denseForwardQ(n, joint, logits)
	} else {
		sbiasRows(n, p.classes, logits, p.classes, p.outB)
		sgemm(n, p.classes, p.J, joint, p.J, p.outW, p.classes, logits, p.classes, epiAdd)
	}
	for b := 0; b < n; b++ {
		out[b] = sargmax(logits[b*p.classes : (b+1)*p.classes])
	}
}

// edgeT maps an edge-row index e in [0, 2·half) to its time step: the
// first half rows at the window head, the rest at the tail.
func edgeT(e, T, half int) int {
	if e < half {
		return e
	}
	return T - 2*half + e
}

// convForward computes y = conv(x) with folded bias, [n][T][in] ->
// [n][T][out]. Interior rows read their receptive field directly from x
// (it is contiguous); edge rows go through the zero-padded staging
// arena. Sample ranges shard across kernel workers like every other
// kernel; the k-schedule per output element is unchanged by sharding.
func (p *modelProg) convForward(cp *convProg, n int, x, y []float32) {
	T := p.T
	in, out, K, half := cp.in, cp.out, cp.k, cp.half
	ki := K * in
	er := 2 * half

	if p.quant {
		p.convForwardQ(cp, n, x, y)
		return
	}

	// Stage the zero-padded edge rows for the whole batch.
	edge := ensureF32(&p.edge, n*er*ki)
	for b := 0; b < n; b++ {
		src := x[b*T*in : (b+1)*T*in]
		for e := 0; e < er; e++ {
			dst := edge[(b*er+e)*ki : (b*er+e+1)*ki]
			clear(dst)
			stageEdgeF32(dst, src, edgeT(e, T, half), T, K, half, in)
		}
	}

	sbiasRows(n*T, out, y, out, cp.b)

	if half < T-half {
		if w := shardWorkers(n, n*T*out*ki); w > 1 {
			forkRows(n, w, func(lo, hi int) { //memdos:ignore hotalloc closure exists only on the tile-parallel path; the serial path calls the range body directly
				p.convInterior(cp, lo, hi, x, y)
			})
		} else {
			p.convInterior(cp, 0, n, x, y)
		}
	}
	// Edge rows are contiguous per side in both the staging arena and the
	// output, so each side is one GEMM panel per sample.
	for b := 0; b < n; b++ {
		sgemmBlock(half, out, ki, edge[b*er*ki:], ki, cp.w, out, y[b*T*out:], out, epiAddRelu)
		sgemmBlock(half, out, ki, edge[(b*er+half)*ki:], ki, cp.w, out, y[(b*T+T-half)*out:], out, epiAddRelu)
	}
}

// convInterior runs the interior output rows of samples [blo, bhi) as
// one GEMM panel per sample: consecutive rows' receptive fields overlap
// in x at stride `in`, which the panel expresses as lda=in.
func (p *modelProg) convInterior(cp *convProg, blo, bhi int, x, y []float32) {
	T := p.T
	in, out, half := cp.in, cp.out, cp.half
	ki := cp.k * in
	inner := T - 2*half
	for b := blo; b < bhi; b++ {
		sgemmBlock(inner, out, ki, x[b*T*in:], in, cp.w, out, y[(b*T+half)*out:], out, epiAddRelu)
	}
}

// stageEdgeF32 copies the valid taps of output row t into a zeroed
// [K*in] staging row.
func stageEdgeF32(dst, src []float32, t, T, K, half, in int) {
	lo := t - half
	d0 := 0
	if lo < 0 {
		d0 = -lo
	}
	d1 := K
	if over := t + half - (T - 1); over > 0 {
		d1 = K - over
	}
	copy(dst[d0*in:d1*in], src[(lo+d0)*in:(lo+d1)*in])
}

func stageEdgeI8(dst, src []int8, t, T, K, half, in int) {
	lo := t - half
	d0 := 0
	if lo < 0 {
		d0 = -lo
	}
	d1 := K
	if over := t + half - (T - 1); over > 0 {
		d1 = K - over
	}
	copy(dst[d0*in:d1*in], src[(lo+d0)*in:(lo+d1)*in])
}

// convForwardQ is convForward with int8 GEMMs: per-tensor dynamic
// activation scale, per-output-channel weight scales, int32
// accumulation, float32 epilogue y = b + acc·ws·sx.
func (p *modelProg) convForwardQ(cp *convProg, n int, x, y []float32) {
	T := p.T
	in, out, K, half := cp.in, cp.out, cp.k, cp.half
	ki := K * in
	er := 2 * half
	nx := n * T * in

	mx := maxAbs32(x[:nx])
	if mx == 0 { //memdos:ignore floateq exact zero means an all-zero activation block; scale 1 avoids division by zero
		mx = 1
	}
	sx := mx / 127
	q := ensureI8(&p.qIn, nx)
	quantizeTo(q, x[:nx], 1/sx)

	qEdge := ensureI8(&p.qEdge, n*er*ki)
	for b := 0; b < n; b++ {
		src := q[b*T*in : (b+1)*T*in]
		for e := 0; e < er; e++ {
			dst := qEdge[(b*er+e)*ki : (b*er+e+1)*ki]
			clear(dst)
			stageEdgeI8(dst, src, edgeT(e, T, half), T, K, half, in)
		}
	}

	acc := ensureI32(&p.ci32, n*T*out)
	clear(acc)
	if half < T-half {
		if w := shardWorkers(n, n*T*out*ki); w > 1 {
			forkRows(n, w, func(lo, hi int) { //memdos:ignore hotalloc closure exists only on the tile-parallel path; the serial path calls the range body directly
				p.convInteriorQ(cp, lo, hi, q, acc)
			})
		} else {
			p.convInteriorQ(cp, 0, n, q, acc)
		}
	}
	for b := 0; b < n; b++ {
		i8NTBlock(half, out, ki, qEdge[b*er*ki:], ki, cp.wq, ki, acc[b*T*out:], out)
		i8NTBlock(half, out, ki, qEdge[(b*er+half)*ki:], ki, cp.wq, ki, acc[(b*T+T-half)*out:], out)
	}

	for r := 0; r < n*T; r++ {
		yr := y[r*out : (r+1)*out]
		ar := acc[r*out : (r+1)*out]
		for o := range yr {
			v := cp.b[o] + float32(ar[o])*cp.ws[o]*sx
			if v < 0 {
				v = 0
			}
			yr[o] = v
		}
	}
}

func (p *modelProg) convInteriorQ(cp *convProg, blo, bhi int, q []int8, acc []int32) {
	T := p.T
	in, out, half := cp.in, cp.out, cp.half
	ki := cp.k * in
	inner := T - 2*half
	for b := blo; b < bhi; b++ {
		i8NTBlock(inner, out, ki, q[b*T*in:], in, cp.wq, ki, acc[(b*T+half)*out:], out)
	}
}

// denseForwardQ is the int8 output layer: quantize the joint rows,
// integer GEMM, dequantizing epilogue with the float bias.
func (p *modelProg) denseForwardQ(n int, joint, logits []float32) {
	nj := n * p.J
	mx := maxAbs32(joint[:nj])
	if mx == 0 { //memdos:ignore floateq exact zero means an all-zero activation block; scale 1 avoids division by zero
		mx = 1
	}
	sx := mx / 127
	q := ensureI8(&p.qIn, nj)
	quantizeTo(q, joint[:nj], 1/sx)
	acc := ensureI32(&p.ci32, n*p.classes)
	clear(acc)
	for b := 0; b < n; b++ {
		i8NTRow(q[b*p.J:(b+1)*p.J], p.outWQ, p.J, acc[b*p.classes:(b+1)*p.classes], p.classes, p.J)
	}
	for b := 0; b < n; b++ {
		lr := logits[b*p.classes : (b+1)*p.classes]
		ar := acc[b*p.classes : (b+1)*p.classes]
		for o := range lr {
			lr[o] = p.outB[o] + float32(ar[o])*p.outWS[o]*sx
		}
	}
}

// ---- grow-once float32/int arenas ----

func ensureF32(ws *[]float32, n int) []float32 {
	s := *ws
	if cap(s) < n {
		s = make([]float32, n) //memdos:ignore hotalloc grow-once workspace: capacity sticks to the high-water mark, zero allocs at steady shape
		*ws = s
	}
	return s[:n]
}

func ensureF64(ws *[]float64, n int) []float64 {
	s := *ws
	if cap(s) < n {
		s = make([]float64, n) //memdos:ignore hotalloc grow-once workspace: capacity sticks to the high-water mark, zero allocs at steady shape
		*ws = s
	}
	return s[:n]
}

func ensureI8(ws *[]int8, n int) []int8 {
	s := *ws
	if cap(s) < n {
		s = make([]int8, n) //memdos:ignore hotalloc grow-once workspace: capacity sticks to the high-water mark, zero allocs at steady shape
		*ws = s
	}
	return s[:n]
}

func ensureI32(ws *[]int32, n int) []int32 {
	s := *ws
	if cap(s) < n {
		s = make([]int32, n) //memdos:ignore hotalloc grow-once workspace: capacity sticks to the high-water mark, zero allocs at steady shape
		*ws = s
	}
	return s[:n]
}
