// Package vmm models the virtualized server of the paper's testbed: a KVM
// hypervisor hosting a protected (victim) VM, an attack VM, and several
// benign utility VMs, all sharing the memory bus and LLC.
//
// The server advances in fixed steps of T_PCM seconds. Each step it:
//
//  1. collects the attack VM's demands (atomic bus-lock time and/or LLC
//     cleansing pressure),
//  2. collects every application VM's intrinsic memory demand, attenuated
//     by the stall caused by cleansing-inflated misses,
//  3. arbitrates the shared bus (bus locking throttles everyone else),
//  4. advances each application at the resulting effective speed — so
//     attacks slow victims down, stretch periodic patterns, and lengthen
//     completion times, and
//  5. feeds each VM's delivered accesses and misses to its PCM counter.
//
// The hypervisor also exposes the two mechanisms detectors need: execution
// throttling (used by the KStest baseline to collect clean reference
// samples — pausing every VM except the protected one) and a hypervisor CPU
// load knob that models the detector's own processing cost, which steals a
// fraction of every VM's progress.
package vmm

import (
	"fmt"

	"memdos/internal/attack"
	"memdos/internal/bus"
	"memdos/internal/mem"
	"memdos/internal/pcm"
	"memdos/internal/sim"
	"memdos/internal/workload"
)

// DRAM-side modelling constants, active only when Config.Mem is set.
const (
	// memAppRowHit is the intrinsic row-buffer hit fraction of a mixed
	// application workload (moderate spatial locality).
	memAppRowHit = 0.55
	// memHogRowHit is the sequential bandwidth hog's intrinsic row-buffer
	// hit fraction (streaming keeps the row open almost always).
	memHogRowHit = 0.92
	// memWriteCost is the channel-time multiplier of a written line
	// relative to a read (read-for-ownership + writeback).
	memWriteCost = 1.5
	// memIssueFloor bounds how far DRAM stalls can suppress a VM's issue
	// rate: even a fully memory-stalled core keeps memIssueFloor of its
	// LLC access rate in flight (MLP + prefetchers keep requests issuing
	// while retirement stalls). This gap between issue rate and progress
	// is what lets a DRAM hog slow a victim far more than its AccessNum
	// dips — the detector-evasion asymmetry of Bechtel & Yun
	// (arXiv:2005.10864).
	memIssueFloor = 0.55
)

// VMID identifies a VM on one server.
type VMID int

// Config configures a Server.
type Config struct {
	// TPCM is the PCM sampling interval and simulation step (seconds).
	TPCM float64
	// MissPenalty converts excess miss ratio into progress stall:
	// speed = 1 / (1 + MissPenalty * (missRatio - intrinsicMissRatio)).
	MissPenalty float64
	// BusCapacity caps total bus throughput in accesses per second
	// (0 = uncapped).
	BusCapacity float64
	// Seed seeds the server's RNG; every VM derives its own stream.
	Seed uint64
	// Mem, when non-nil, puts a DRAM memory-controller model behind the
	// bus/cache layer: application misses and bandwidth-hog streams become
	// line-sized DRAM requests arbitrated per NUMA socket, and every VM's
	// PCM samples grow delivered-bandwidth and average-latency counters.
	// nil (the default) keeps the original bus-only server, bit for bit.
	Mem *mem.NUMAConfig
	// DisableHistory turns off PCM series retention for this server's
	// counters: samples are still produced with correct timestamps, but
	// no per-VM history accumulates. The cluster simulator sets this —
	// thousands of VMs stepping for minutes would otherwise retain
	// hundreds of megabytes of trace data nothing reads.
	DisableHistory bool
}

// DefaultConfig returns the configuration matching the paper's testbed
// parameters (T_PCM = 0.01 s).
func DefaultConfig() Config {
	return Config{TPCM: 0.01, MissPenalty: 1.2, Seed: 1}
}

// VM is one virtual machine. Exactly one of app/attacker is non-nil.
type VM struct {
	id       VMID
	name     string
	app      *workload.Instance
	attacker *attack.Attacker

	// doneAt records when a finite app completed (0 = not yet).
	doneAt float64
	// lastSpeed is the effective speed of the most recent step.
	lastSpeed float64
	// departed marks a VM whose state was exported for migration: the
	// slot remains (VM ids are dense slice indices) but the husk no
	// longer runs, demands bus time, or produces samples.
	departed bool
}

// ID returns the VM's identifier.
func (v *VM) ID() VMID { return v.id }

// Name returns the VM's name.
func (v *VM) Name() string { return v.name }

// App returns the VM's workload instance (nil for attack VMs).
func (v *VM) App() *workload.Instance { return v.app }

// DoneAt returns the simulated time the VM's finite app completed, or 0.
func (v *VM) DoneAt() float64 { return v.doneAt }

// Completed reports whether the VM's finite app has completed. Callers
// should prefer it over comparing DoneAt against the zero sentinel.
func (v *VM) Completed() bool { return v.doneAt > 0 }

// LastSpeed returns the effective execution speed of the last step.
func (v *VM) LastSpeed() float64 { return v.lastSpeed }

// Departed reports whether the VM's state was exported for migration;
// a departed VM is an inert placeholder keeping its slot's id stable.
func (v *VM) Departed() bool { return v.departed }

// Server is one simulated physical machine.
type Server struct {
	cfg   Config
	clock *sim.Clock
	bus   *bus.Bus
	rng   *sim.RNG

	// vms, counters, execThrottle and partitioned are dense slices
	// indexed by VMID (a VM's id is its index in vms): no map iteration
	// anywhere near the step loop, so per-VM state can never acquire a
	// randomized visit order, and the hot path stays allocation-free.
	vms      []*VM
	counters []*pcm.Counter

	hyperLoad      float64
	throttleUntil  float64
	throttleExcept VMID

	// execThrottle is the per-VM execution-throttle fraction in [0,1):
	// the mitigation primitive of Zhang et al. (arXiv:1603.03404) — the
	// suspect VM runs at (1-frac) of its share, which scales an
	// attacker's effective intensity and an application's progress alike.
	execThrottle []float64
	// partitioned marks VMs whose LLC footprint is pseudo-partitioned
	// away from the other tenants: their cleansing pressure is contained.
	partitioned []bool

	// mc is the DRAM model (nil unless Config.Mem is set); memStall is the
	// one-step-lagged issue attenuation each app VM carries into the next
	// step (floored at memIssueFloor, see the constant); memBaseLat is the
	// uncontended per-line latency progress is measured against.
	mc         *mem.Controller
	memStall   []float64
	memBaseLat float64

	// Per-step scratch, reused across Step calls so the per-tick hot loop
	// does not allocate: stepStates is indexed by VMID (VM ids are their
	// index in vms), stepSamples backs StepResult.Samples.
	stepStates  []appState
	stepSamples map[VMID]pcm.Sample
}

// appState is the per-VM demand bookkeeping of one step's phase 2. The
// active flag distinguishes "VM ran this step" from the zero value.
type appState struct {
	requested float64
	miss      float64
	stall     float64
	thr       float64
	active    bool
}

// NewServer returns an empty server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.TPCM <= 0 {
		return nil, fmt.Errorf("vmm: non-positive TPCM %v", cfg.TPCM)
	}
	if cfg.MissPenalty < 0 {
		return nil, fmt.Errorf("vmm: negative miss penalty %v", cfg.MissPenalty)
	}
	s := &Server{
		cfg:            cfg,
		clock:          sim.NewClock(cfg.TPCM),
		bus:            bus.New(cfg.BusCapacity),
		rng:            sim.NewRNG(cfg.Seed),
		throttleExcept: -1,
	}
	if cfg.Mem != nil {
		mc, err := mem.New(*cfg.Mem)
		if err != nil {
			return nil, err
		}
		s.mc = mc
		s.memBaseLat = cfg.Mem.BaselineLatency(memAppRowHit)
	}
	return s, nil
}

// MustNewServer is NewServer but panics on bad configuration.
func MustNewServer(cfg Config) *Server {
	s, err := NewServer(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// AddApp creates a VM running the given application spec and returns it.
func (s *Server) AddApp(name string, spec workload.Spec) (*VM, error) {
	in, err := spec.New(s.rng.Split())
	if err != nil {
		return nil, err
	}
	vm := &VM{id: VMID(len(s.vms)), name: name, app: in, lastSpeed: 1}
	s.addVM(vm, name)
	return vm, nil
}

// AddAttacker creates a VM running the given attacker and returns it.
func (s *Server) AddAttacker(name string, a *attack.Attacker) (*VM, error) {
	if a == nil {
		return nil, fmt.Errorf("vmm: nil attacker")
	}
	vm := &VM{id: VMID(len(s.vms)), name: name, attacker: a, lastSpeed: 1}
	s.addVM(vm, name)
	return vm, nil
}

// addVM registers the VM in the dense per-VM state slices.
func (s *Server) addVM(vm *VM, name string) {
	c := pcm.MustNewCounter(name, s.cfg.TPCM, s.cfg.TPCM)
	if s.cfg.DisableHistory {
		c.SetRetainHistory(false)
	}
	s.vms = append(s.vms, vm)
	s.counters = append(s.counters, c)
	s.execThrottle = append(s.execThrottle, 0)
	s.partitioned = append(s.partitioned, false)
	s.memStall = append(s.memStall, 1)
	if s.mc != nil {
		// Default NUMA affinity: round-robin over sockets, overridable via
		// SetVMSocket.
		_ = s.mc.SetHome(mem.Owner(vm.id), int(vm.id)%s.cfg.Mem.Sockets)
	}
}

// Counter returns the PCM counter of the given VM, or nil if unknown.
func (s *Server) Counter(id VMID) *pcm.Counter {
	if int(id) < 0 || int(id) >= len(s.counters) {
		return nil
	}
	return s.counters[id]
}

// VMs returns the server's VMs in creation order.
func (s *Server) VMs() []*VM { return append([]*VM(nil), s.vms...) }

// Now returns the current simulated time.
func (s *Server) Now() float64 { return s.clock.Now() }

// TPCM returns the sampling/step interval.
func (s *Server) TPCM() float64 { return s.cfg.TPCM }

// SetHypervisorLoad declares that detector processing consumes the given
// fraction of every VM's CPU, slowing all applications accordingly. This is
// how the performance overhead of each detection scheme is modelled.
func (s *Server) SetHypervisorLoad(frac float64) error {
	if frac < 0 || frac >= 1 {
		return fmt.Errorf("vmm: hypervisor load %v outside [0,1)", frac)
	}
	s.hyperLoad = frac
	return nil
}

// ThrottleOthers pauses every VM except keep for the next dur seconds —
// the execution-throttling primitive the KStest baseline uses to gather
// attack-free reference samples. Pausing stops the attack too, and costs
// all other applications real progress.
func (s *Server) ThrottleOthers(keep VMID, dur float64) error {
	if dur <= 0 {
		return fmt.Errorf("vmm: non-positive throttle duration %v", dur)
	}
	s.throttleUntil = s.clock.Now() + dur
	s.throttleExcept = keep
	return nil
}

// Throttled reports whether the VM is currently paused by throttling.
func (s *Server) Throttled(id VMID) bool {
	return s.clock.Now() < s.throttleUntil && id != s.throttleExcept
}

// SetExecThrottle caps one VM's execution to (1-frac) of its share until
// changed — the graduated per-VM mitigation primitive (Zhang et al.,
// arXiv:1603.03404) the respond engine escalates through. frac 0 clears
// the throttle; frac must be in [0,1). For an attack VM the throttle
// scales the attack's effective intensity and access storm; for an
// application VM it scales progress.
func (s *Server) SetExecThrottle(id VMID, frac float64) error {
	if frac < 0 || frac >= 1 {
		return fmt.Errorf("vmm: exec throttle %v outside [0,1)", frac)
	}
	if int(id) < 0 || int(id) >= len(s.vms) {
		return fmt.Errorf("vmm: no VM %d", id)
	}
	s.execThrottle[id] = frac
	return nil
}

// ExecThrottle returns the VM's current execution-throttle fraction.
func (s *Server) ExecThrottle(id VMID) float64 {
	if int(id) < 0 || int(id) >= len(s.execThrottle) {
		return 0
	}
	return s.execThrottle[id]
}

// SetCachePartition toggles pseudo cache-partitioning around one VM:
// while on, its LLC evictions are contained to its own partition, so a
// cleansing attacker stops inflating the other tenants' miss ratios. Bus
// locking is unaffected — the lock is a bus-level mechanism, which is
// why the respond ladder keeps throttling underneath the partition rung.
func (s *Server) SetCachePartition(id VMID, on bool) error {
	if int(id) < 0 || int(id) >= len(s.vms) {
		return fmt.Errorf("vmm: no VM %d", id)
	}
	s.partitioned[id] = on
	return nil
}

// CachePartitioned reports whether the VM is pseudo-partitioned.
func (s *Server) CachePartitioned(id VMID) bool {
	return int(id) >= 0 && int(id) < len(s.partitioned) && s.partitioned[id]
}

// StepResult carries the PCM samples completed during a step, keyed by VM.
//
// Samples is a view over the server's per-step scratch map: it is valid
// until the next Step call and must not be retained across steps (every
// in-tree caller consumes it inside the step callback).
type StepResult struct {
	Time    float64
	Samples map[VMID]pcm.Sample
}

// Step advances the server by one T_PCM tick and returns any completed PCM
// samples.
//
//memdos:hotpath bench=vmm/step
func (s *Server) Step() StepResult {
	now := s.clock.Now()
	dt := s.cfg.TPCM

	// Phase 1: attacker demands, scaled by any per-VM execution throttle.
	cleansePressure := 0.0
	for _, vm := range s.vms {
		if vm.attacker == nil || s.Throttled(vm.id) || !vm.attacker.Active(now) {
			continue
		}
		thr := 1 - s.execThrottle[vm.id]
		switch vm.attacker.Kind() {
		case attack.BusLock:
			s.bus.RequestLock(bus.Owner(vm.id), vm.attacker.IntensityAt(now)*thr*dt)
			s.bus.RequestAccesses(bus.Owner(vm.id), vm.attacker.AccessRate()*thr*dt)
		case attack.LLCCleansing:
			// IntensityAt is always evaluated so ramp edges stay tracked;
			// a partitioned VM's evictions are contained, so its pressure
			// never reaches the other tenants.
			if p := vm.attacker.IntensityAt(now) * thr; p > cleansePressure && !s.partitioned[vm.id] {
				cleansePressure = p
			}
			s.bus.RequestAccesses(bus.Owner(vm.id), vm.attacker.AccessRate()*thr*dt)
		case attack.MemBandwidth:
			// The hog's stream lives below the LLC: its DRAM demand is the
			// raw bytes times the duty cycle (IntensityAt), with written
			// lines costing extra channel time. Without a memory model the
			// stream has nowhere to land and only the modest bus-side
			// access storm remains.
			duty := vm.attacker.IntensityAt(now) * thr
			s.bus.RequestAccesses(bus.Owner(vm.id), vm.attacker.AccessRate()*duty*dt)
			if s.mc != nil {
				rf := vm.attacker.ReadFraction()
				bytes := vm.attacker.BWRate() * duty * dt * (rf + memWriteCost*(1-rf))
				s.mc.Request(mem.Owner(vm.id), bytes, memHogRowHit)
			}
		}
	}

	// Phase 2: application demands, attenuated by cleansing stalls.
	if len(s.stepStates) < len(s.vms) {
		s.stepStates = make([]appState, len(s.vms)) //memdos:ignore hotalloc grow-once scratch sized to the VM population; reused every step
	}
	states := s.stepStates[:len(s.vms)]
	for i := range states {
		states[i] = appState{}
	}
	for _, vm := range s.vms {
		if vm.app == nil || s.Throttled(vm.id) || vm.app.Done() {
			continue
		}
		demand, m0 := vm.app.Demand(dt)
		m := m0 + (1-m0)*cleansePressure
		stall := 1.0
		if excess := m - m0; excess > 0 {
			stall = 1 / (1 + s.cfg.MissPenalty*excess)
		}
		thr := 1 - s.execThrottle[vm.id]
		requested := demand * stall * thr
		if s.mc != nil {
			// DRAM back-pressure from the previous step attenuates this
			// step's issue rate, floored at memIssueFloor (see constant).
			requested *= s.memStall[vm.id]
			// Each LLC miss is one line of DRAM traffic.
			s.mc.Request(mem.Owner(vm.id), requested*m*s.cfg.Mem.LineBytes, memAppRowHit)
		}
		s.bus.RequestAccesses(bus.Owner(vm.id), requested)
		states[vm.id] = appState{requested: requested, miss: m, stall: stall, thr: thr, active: true}
	}

	// Phase 3: bus arbitration, then DRAM arbitration behind it.
	delivered := s.bus.Resolve(dt)
	var memRes mem.Resolution
	if s.mc != nil {
		memRes = s.mc.Resolve(dt)
	}

	// Phase 4: progress and PCM accounting.
	if s.stepSamples == nil {
		s.stepSamples = make(map[VMID]pcm.Sample, len(s.vms)) //memdos:ignore hotalloc built once, then cleared and reused every step
	}
	clear(s.stepSamples)
	res := StepResult{Time: now + dt, Samples: s.stepSamples}
	for _, vm := range s.vms {
		if vm.departed {
			// The VM's counter migrated with it; the husk produces
			// nothing.
			vm.lastSpeed = 0
			continue
		}
		var accesses, misses float64
		if st := states[vm.id]; st.active {
			d := delivered.Of(bus.Owner(vm.id))
			ratio := 1.0
			if st.requested > 0 {
				ratio = d / st.requested
			}
			speed := st.stall * ratio * (1 - s.hyperLoad) * st.thr
			if s.mc != nil {
				// DRAM contention slows progress two ways: undelivered
				// lines (delivery ratio) and slower lines (latency stretch
				// over the uncontended baseline). The issue-rate floor for
				// the *next* step dips much less than progress does — see
				// memIssueFloor.
				o := mem.Owner(vm.id)
				memFactor := memRes.RatioOf(o)
				if lat := memRes.LatencyOf(o); lat > s.memBaseLat {
					memFactor *= s.memBaseLat / lat
				}
				speed *= memFactor
				s.memStall[vm.id] = memIssueFloor + (1-memIssueFloor)*memFactor
			}
			vm.lastSpeed = speed
			vm.app.Advance(dt, speed)
			if !vm.Completed() && vm.app.Done() {
				vm.doneAt = now + dt
			}
			accesses = d
			misses = d * st.miss
		} else {
			vm.lastSpeed = 0
		}
		if s.mc != nil {
			o := mem.Owner(vm.id)
			if lines := memRes.LinesOf(o); lines > 0 {
				s.counters[vm.id].AddMem(lines*s.cfg.Mem.LineBytes, memRes.LatencySumOf(o), lines)
			}
		}
		if sample, ok := s.counters[vm.id].Observe(accesses, misses); ok {
			res.Samples[vm.id] = sample
		}
	}

	s.clock.Tick()
	return res
}

// RunUntil steps the server until simulated time t, invoking onStep (if
// non-nil) after every step. onStep may call back into the server (e.g. to
// throttle).
func (s *Server) RunUntil(t float64, onStep func(StepResult)) {
	for s.clock.Now() < t {
		res := s.Step()
		if onStep != nil {
			onStep(res)
		}
	}
}

// VMState is a VM's complete runtime state in flight between servers —
// the payload of a live migration. It carries the workload or attacker
// instance (including its private RNG stream), the PCM counter (so the
// sample timeline continues seamlessly on the destination), and the
// completion record. Per-host mitigation state (execution throttle,
// cache partition) deliberately does NOT travel: it belongs to the
// source hypervisor and a freshly admitted VM starts unmitigated.
type VMState struct {
	name     string
	app      *workload.Instance
	attacker *attack.Attacker
	counter  *pcm.Counter
	doneAt   float64

	exportTick uint64
	exportedAt float64
}

// Name returns the migrating VM's name.
func (st *VMState) Name() string { return st.name }

// IsAttacker reports whether the migrating VM runs an attack program.
func (st *VMState) IsAttacker() bool { return st.attacker != nil }

// ExportedAt returns the simulated time the state left its source host.
func (st *VMState) ExportedAt() float64 { return st.exportedAt }

// ExportVM removes the VM's runtime state from the server for migration
// and returns it. The slot is left as an inert, departed husk (VM ids
// are dense slice indices, so slots never shift); any execution throttle
// or cache partition applied to the VM is released.
func (s *Server) ExportVM(id VMID) (*VMState, error) {
	if int(id) < 0 || int(id) >= len(s.vms) {
		return nil, fmt.Errorf("vmm: no VM %d", id)
	}
	vm := s.vms[id]
	if vm.departed {
		return nil, fmt.Errorf("vmm: VM %d (%s) already departed", id, vm.name)
	}
	st := &VMState{
		name:       vm.name,
		app:        vm.app,
		attacker:   vm.attacker,
		counter:    s.counters[id],
		doneAt:     vm.doneAt,
		exportTick: s.clock.Ticks(),
		exportedAt: s.clock.Now(),
	}
	vm.app, vm.attacker, vm.departed = nil, nil, true
	vm.lastSpeed = 0
	s.counters[id] = nil
	s.execThrottle[id] = 0
	s.partitioned[id] = false
	s.memStall[id] = 1
	if s.mc != nil {
		// Mitigation state stays with the source hypervisor: the husk's
		// slot drops its bandwidth budget and NUMA overrides.
		_ = s.mc.SetBudget(mem.Owner(id), 0)
		_ = s.mc.SetRemoteFraction(mem.Owner(id), 0)
	}
	return st, nil
}

// AdmitVM installs a migrated VM's state on this server and returns the
// new VM. The destination must share the source's sampling interval, and
// its clock must be at or past the export tick (hosts stepping in
// lockstep admit at the same tick for a zero-downtime migration; a later
// tick models transit downtime, during which the VM made no progress and
// produced no samples). A state can be admitted exactly once.
func (s *Server) AdmitVM(st *VMState) (*VM, error) {
	if st == nil || st.counter == nil {
		return nil, fmt.Errorf("vmm: nil or already-admitted VM state")
	}
	// Both sides hold a TPCM copied verbatim from their configs, so exact
	// comparison is the intended integrity check.
	if st.counter.TPCM() != s.cfg.TPCM { //memdos:ignore floateq
		return nil, fmt.Errorf("vmm: sampling interval mismatch: migrating VM %s has TPCM %v, host %v",
			st.name, st.counter.TPCM(), s.cfg.TPCM)
	}
	if s.clock.Ticks() < st.exportTick {
		return nil, fmt.Errorf("vmm: destination clock (tick %d) behind export tick %d of VM %s",
			s.clock.Ticks(), st.exportTick, st.name)
	}
	vm := &VM{id: VMID(len(s.vms)), name: st.name, app: st.app, attacker: st.attacker, doneAt: st.doneAt, lastSpeed: 1}
	c := st.counter
	c.SetRetainHistory(!s.cfg.DisableHistory)
	// Transit downtime produced no samples; realign the counter's sample
	// timeline with the destination clock (counters run at one sample per
	// tick, see addVM). A lockstep zero-downtime admission is a no-op.
	c.SkipToSample(int(s.clock.Ticks()))
	s.vms = append(s.vms, vm)
	s.counters = append(s.counters, c)
	s.execThrottle = append(s.execThrottle, 0)
	s.partitioned = append(s.partitioned, false)
	s.memStall = append(s.memStall, 1)
	if s.mc != nil {
		_ = s.mc.SetHome(mem.Owner(vm.id), int(vm.id)%s.cfg.Mem.Sockets)
	}
	st.app, st.attacker, st.counter = nil, nil, nil
	return vm, nil
}

// HasMem reports whether the server runs the DRAM memory-controller
// model (Config.Mem was set).
func (s *Server) HasMem() bool { return s.mc != nil }

// errNoMem is the shared guard for memory-model-only operations.
func (s *Server) memCheck(id VMID) error {
	if s.mc == nil {
		return fmt.Errorf("vmm: server has no memory model (Config.Mem is nil)")
	}
	if int(id) < 0 || int(id) >= len(s.vms) {
		return fmt.Errorf("vmm: no VM %d", id)
	}
	return nil
}

// SetVMSocket pins the VM's NUMA home socket (default: VM id modulo
// socket count). Placement decides attack reach: a hog homed on the
// victim's socket contends for the victim's channels directly.
func (s *Server) SetVMSocket(id VMID, socket int) error {
	if err := s.memCheck(id); err != nil {
		return err
	}
	return s.mc.SetHome(mem.Owner(id), socket)
}

// VMSocket returns the VM's NUMA home socket (0 without a memory model).
func (s *Server) VMSocket(id VMID) int {
	if s.mc == nil {
		return 0
	}
	return s.mc.Home(mem.Owner(id))
}

// SetMemRemoteFraction declares what fraction of the VM's DRAM traffic
// targets remotely-homed pages — cross-socket reach for an attacker, or
// a poorly-placed victim's working set.
func (s *Server) SetMemRemoteFraction(id VMID, frac float64) error {
	if err := s.memCheck(id); err != nil {
		return err
	}
	return s.mc.SetRemoteFraction(mem.Owner(id), frac)
}

// SetMemBandwidthLimit applies a MemGuard-style DRAM bandwidth budget to
// the VM in bytes per second (0 clears it) — the reversible mitigation
// primitive behind the respond ladder's bandwidth rung (Zhang et al.,
// arXiv:1603.03404).
func (s *Server) SetMemBandwidthLimit(id VMID, bytesPerSec float64) error {
	if err := s.memCheck(id); err != nil {
		return err
	}
	return s.mc.SetBudget(mem.Owner(id), bytesPerSec)
}

// MemBandwidthLimit returns the VM's DRAM bandwidth budget (0 =
// unlimited or no memory model).
func (s *Server) MemBandwidthLimit(id VMID) float64 {
	if s.mc == nil {
		return 0
	}
	return s.mc.Budget(mem.Owner(id))
}

// MemStats returns the VM's accumulated DRAM statistics.
func (s *Server) MemStats(id VMID) (mem.Stats, error) {
	if err := s.memCheck(id); err != nil {
		return mem.Stats{}, err
	}
	return s.mc.Stats(mem.Owner(id)), nil
}
