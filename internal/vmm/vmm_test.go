package vmm

import (
	"math"
	"testing"

	"memdos/internal/attack"
	"memdos/internal/stats"
	"memdos/internal/workload"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{TPCM: 0}); err == nil {
		t.Error("TPCM=0 accepted")
	}
	if _, err := NewServer(Config{TPCM: 0.01, MissPenalty: -1}); err == nil {
		t.Error("negative penalty accepted")
	}
}

func TestAddVMsAssignIDs(t *testing.T) {
	s := newServer(t)
	v1, err := s.AddApp("victim", workload.MustByAbbrev("KM"))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := attack.NewBusLock(attack.Never{}, 0.7)
	v2, err := s.AddAttacker("attacker", a)
	if err != nil {
		t.Fatal(err)
	}
	if v1.ID() != 0 || v2.ID() != 1 {
		t.Errorf("ids = %d, %d", v1.ID(), v2.ID())
	}
	if len(s.VMs()) != 2 {
		t.Errorf("VMs() len = %d", len(s.VMs()))
	}
	if s.Counter(v1.ID()) == nil || s.Counter(v2.ID()) == nil {
		t.Error("counters missing")
	}
	if _, err := s.AddAttacker("nil", nil); err == nil {
		t.Error("nil attacker accepted")
	}
}

// runVictim builds a server with victim + attacker + one utility VM, runs
// it for dur seconds, and returns the victim VM.
func runVictim(t *testing.T, app string, atk *attack.Attacker, dur float64) (*Server, *VM) {
	t.Helper()
	s := newServer(t)
	victim, err := s.AddApp("victim", workload.MustByAbbrev(app))
	if err != nil {
		t.Fatal(err)
	}
	if atk != nil {
		if _, err := s.AddAttacker("attacker", atk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AddApp("util", workload.Utility()); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(dur, nil)
	return s, victim
}

func TestCleanRunProducesSamples(t *testing.T) {
	s, victim := runVictim(t, "KM", nil, 5)
	c := s.Counter(victim.ID())
	if got := c.Samples(); got != 500 {
		t.Errorf("samples after 5s at 10ms = %d, want 500", got)
	}
	if mean := stats.Mean(c.AccessSeries().Values); mean <= 0 {
		t.Errorf("mean AccessNum = %v", mean)
	}
}

func TestBusLockDropsAccessNum(t *testing.T) {
	atk, _ := attack.NewBusLock(attack.Window{Start: 30, End: 60}, 0.7)
	s, victim := runVictim(t, "KM", atk, 60)
	acc := s.Counter(victim.ID()).AccessSeries()
	before := acc.Window(5, 30).Mean()
	during := acc.Window(35, 60).Mean()
	// Observation (1): significant AccessNum decrease; with duty 0.7 the
	// victim should retain ~30% of its accesses.
	if during > 0.45*before {
		t.Errorf("bus lock AccessNum: before %v, during %v — insufficient drop", before, during)
	}
	if during < 0.15*before {
		t.Errorf("bus lock AccessNum collapsed too far: %v vs %v", during, before)
	}
}

func TestCleansingRaisesMissNum(t *testing.T) {
	atk, _ := attack.NewLLCCleansing(attack.Window{Start: 30, End: 60}, 0.6, 2e6)
	s, victim := runVictim(t, "KM", atk, 60)
	miss := s.Counter(victim.ID()).MissSeries()
	before := miss.Window(5, 30).Mean()
	during := miss.Window(35, 60).Mean()
	// Observation (1): significant MissNum increase (several-fold).
	if during < 2.5*before {
		t.Errorf("cleansing MissNum: before %v, during %v — insufficient rise", before, during)
	}
}

func TestAttackSlowsVictimProgress(t *testing.T) {
	atk, _ := attack.NewBusLock(attack.Always{}, 0.7)
	_, attacked := runVictim(t, "KM", atk, 30)
	_, clean := runVictim(t, "KM", nil, 30)
	ratio := clean.App().Work() / attacked.App().Work()
	// Duty 0.7 should slow the victim roughly 3x (paper reports up to
	// 3.7x for Hadoop workloads).
	if ratio < 2 || ratio > 5 {
		t.Errorf("bus lock slowdown = %vx, want ~3x", ratio)
	}
}

func TestThrottleOthersPausesAllButProtected(t *testing.T) {
	s := newServer(t)
	victim, _ := s.AddApp("victim", workload.MustByAbbrev("KM"))
	other, _ := s.AddApp("other", workload.MustByAbbrev("BA"))
	s.RunUntil(1, nil)
	if err := s.ThrottleOthers(victim.ID(), 1); err != nil {
		t.Fatal(err)
	}
	if !s.Throttled(other.ID()) || s.Throttled(victim.ID()) {
		t.Error("throttle state wrong")
	}
	otherWork := other.App().Work()
	victimWork := victim.App().Work()
	s.RunUntil(2, nil)
	if other.App().Work() != otherWork {
		t.Error("throttled VM made progress")
	}
	if victim.App().Work() <= victimWork {
		t.Error("protected VM made no progress")
	}
	// Throttle expires.
	s.RunUntil(3, nil)
	if other.App().Work() <= otherWork {
		t.Error("VM still paused after throttle expired")
	}
	if err := s.ThrottleOthers(victim.ID(), 0); err == nil {
		t.Error("zero-duration throttle accepted")
	}
}

func TestThrottlePausesAttacker(t *testing.T) {
	// Reference samples gathered under throttling must be attack-free.
	atk, _ := attack.NewBusLock(attack.Always{}, 0.7)
	s := newServer(t)
	victim, _ := s.AddApp("victim", workload.MustByAbbrev("KM"))
	attackVM, _ := s.AddAttacker("attacker", atk)
	s.RunUntil(2, nil)
	accDuringAttack := s.Counter(victim.ID()).AccessSeries().Window(1, 2).Mean()
	s.ThrottleOthers(victim.ID(), 1)
	s.RunUntil(3, nil)
	accDuringThrottle := s.Counter(victim.ID()).AccessSeries().Window(2.2, 3).Mean()
	if accDuringThrottle < 2*accDuringAttack {
		t.Errorf("throttling did not pause the attack: %v vs %v", accDuringThrottle, accDuringAttack)
	}
	if s.Throttled(victim.ID()) {
		t.Error("victim throttled")
	}
	_ = attackVM
}

func TestHypervisorLoadSlowsApps(t *testing.T) {
	sLoaded := newServer(t)
	vLoaded, _ := sLoaded.AddApp("v", workload.MustByAbbrev("KM"))
	if err := sLoaded.SetHypervisorLoad(0.05); err != nil {
		t.Fatal(err)
	}
	sLoaded.RunUntil(30, nil)

	sClean := newServer(t)
	vClean, _ := sClean.AddApp("v", workload.MustByAbbrev("KM"))
	sClean.RunUntil(30, nil)

	ratio := vClean.App().Work() / vLoaded.App().Work()
	if math.Abs(ratio-1/0.95) > 0.01 {
		t.Errorf("5%% load slowdown ratio = %v, want ~1.053", ratio)
	}
	if err := sLoaded.SetHypervisorLoad(-0.1); err == nil {
		t.Error("negative load accepted")
	}
	if err := sLoaded.SetHypervisorLoad(1); err == nil {
		t.Error("load=1 accepted")
	}
}

func TestFiniteAppCompletes(t *testing.T) {
	spec := workload.Spec{Name: "short", Abbrev: "short", BaseAccessRate: 1e6, WorkSeconds: 2}
	s := newServer(t)
	vm, err := s.AddApp("short", spec)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(5, nil)
	if vm.DoneAt() == 0 {
		t.Fatal("app never completed")
	}
	if math.Abs(vm.DoneAt()-2) > 0.1 {
		t.Errorf("completion at %v, want ~2", vm.DoneAt())
	}
	// Completed apps stop demanding memory.
	acc := s.Counter(vm.ID()).AccessSeries()
	if tail := acc.Window(3, 5).Mean(); tail != 0 {
		t.Errorf("completed app still shows accesses: %v", tail)
	}
}

func TestCompletionDelayedUnderAttack(t *testing.T) {
	spec := workload.Spec{Name: "short", Abbrev: "short", BaseAccessRate: 1e6, WorkSeconds: 5}
	mk := func(withAttack bool) float64 {
		s := newServer(t)
		vm, _ := s.AddApp("short", spec)
		if withAttack {
			atk, _ := attack.NewBusLock(attack.Always{}, 0.7)
			s.AddAttacker("attacker", atk)
		}
		s.RunUntil(60, nil)
		return vm.DoneAt()
	}
	clean, attacked := mk(false), mk(true)
	if clean == 0 || attacked == 0 {
		t.Fatal("apps did not finish")
	}
	if attacked < 2.5*clean {
		t.Errorf("attacked completion %v vs clean %v: expected ~3x stretch", attacked, clean)
	}
}

func TestOnStepCallback(t *testing.T) {
	s := newServer(t)
	s.AddApp("v", workload.MustByAbbrev("KM"))
	calls := 0
	samples := 0
	s.RunUntil(1, func(res StepResult) {
		calls++
		samples += len(res.Samples)
	})
	if calls != 100 {
		t.Errorf("onStep called %d times, want 100", calls)
	}
	if samples != 100 {
		t.Errorf("%d samples over 1s, want 100", samples)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []float64 {
		s := MustNewServer(DefaultConfig())
		vm, _ := s.AddApp("v", workload.MustByAbbrev("TS"))
		s.RunUntil(10, nil)
		return s.Counter(vm.ID()).AccessSeries().Values
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed servers diverged at sample %d", i)
		}
	}
}

func TestPeriodStretchUnderCleansing(t *testing.T) {
	// Observation (2) end-to-end: FaceNet's batch period elongates under
	// the cleansing attack.
	atk, _ := attack.NewLLCCleansing(attack.Window{Start: 60, End: 120}, 0.6, 2e6)
	s, victim := runVictim(t, "FN", atk, 120)
	acc := s.Counter(victim.ID()).AccessSeries()
	// Victim speed during attack must be < 1.
	if victim.LastSpeed() >= 0.9 {
		t.Errorf("victim speed under cleansing = %v, want < 0.9", victim.LastSpeed())
	}
	if acc.Len() != 12000 {
		t.Fatalf("expected 12000 samples, got %d", acc.Len())
	}
}

func TestExecThrottleValidation(t *testing.T) {
	s := newServer(t)
	vm, _ := s.AddApp("v", workload.MustByAbbrev("KM"))
	if err := s.SetExecThrottle(vm.ID(), -0.1); err == nil {
		t.Error("negative throttle accepted")
	}
	if err := s.SetExecThrottle(vm.ID(), 1); err == nil {
		t.Error("throttle of 1 accepted")
	}
	if err := s.SetExecThrottle(99, 0.5); err == nil {
		t.Error("unknown VM accepted")
	}
	if err := s.SetCachePartition(99, true); err == nil {
		t.Error("partition of unknown VM accepted")
	}
	if err := s.SetExecThrottle(vm.ID(), 0.5); err != nil {
		t.Fatal(err)
	}
	if got := s.ExecThrottle(vm.ID()); got != 0.5 {
		t.Errorf("ExecThrottle = %v, want 0.5", got)
	}
	if err := s.SetExecThrottle(vm.ID(), 0); err != nil {
		t.Fatal(err)
	}
	if got := s.ExecThrottle(vm.ID()); got != 0 {
		t.Errorf("cleared ExecThrottle = %v, want 0", got)
	}
	if err := s.SetCachePartition(vm.ID(), true); err != nil {
		t.Fatal(err)
	}
	if !s.CachePartitioned(vm.ID()) {
		t.Error("partition not recorded")
	}
	if err := s.SetCachePartition(vm.ID(), false); err != nil {
		t.Fatal(err)
	}
	if s.CachePartitioned(vm.ID()) {
		t.Error("partition not cleared")
	}
}

// TestExecThrottleRecoversVictim: throttling a bus-locking attacker gives
// the co-located victim most of its AccessNum and progress back — the
// mitigation primitive the respond ladder builds on.
func TestExecThrottleRecoversVictim(t *testing.T) {
	run := func(thr float64) (accessMean, work float64) {
		s := newServer(t)
		victim, _ := s.AddApp("victim", workload.MustByAbbrev("KM"))
		atk, _ := attack.NewBusLock(attack.Always{}, 0.7)
		atkVM, _ := s.AddAttacker("attacker", atk)
		if thr > 0 {
			if err := s.SetExecThrottle(atkVM.ID(), thr); err != nil {
				t.Fatal(err)
			}
		}
		s.RunUntil(30, nil)
		return s.Counter(victim.ID()).AccessSeries().Window(5, 30).Mean(), victim.App().Work()
	}
	accFull, workFull := run(0)
	accThr, workThr := run(0.75)
	if accThr <= accFull {
		t.Errorf("victim AccessNum did not recover: full %v, throttled %v", accFull, accThr)
	}
	if workThr <= workFull {
		t.Errorf("victim progress did not recover: full %v, throttled %v", workFull, workThr)
	}
	// Duty 0.7 * (1-0.75) leaves an effective duty of ~0.175 — the victim
	// should be close to clean speed.
	_, workClean := func() (float64, float64) {
		s := newServer(t)
		victim, _ := s.AddApp("victim", workload.MustByAbbrev("KM"))
		s.RunUntil(30, nil)
		return 0, victim.App().Work()
	}()
	if workThr < 0.6*workClean {
		t.Errorf("throttled-attacker victim work %v, want >= 60%% of clean %v", workThr, workClean)
	}
}

// TestExecThrottleSlowsTarget: throttling an application VM slows that
// VM itself (the cost side of misdirected mitigation).
func TestExecThrottleSlowsTarget(t *testing.T) {
	run := func(thr float64) float64 {
		s := newServer(t)
		vm, _ := s.AddApp("v", workload.MustByAbbrev("KM"))
		if thr > 0 {
			if err := s.SetExecThrottle(vm.ID(), thr); err != nil {
				t.Fatal(err)
			}
		}
		s.RunUntil(10, nil)
		return vm.App().Work()
	}
	full, half := run(0), run(0.5)
	ratio := half / full
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("0.5-throttled VM did %.0f%% of clean work, want ~50%%", 100*ratio)
	}
}

// TestCachePartitionContainsCleansing: partitioning the cleansing
// attacker keeps the victim's miss ratio near the clean baseline, but
// does nothing against bus locking.
func TestCachePartitionContainsCleansing(t *testing.T) {
	run := func(mkAtk func() *attack.Attacker, partition bool) (missMean, accMean float64) {
		s := newServer(t)
		victim, _ := s.AddApp("victim", workload.MustByAbbrev("KM"))
		atkVM, _ := s.AddAttacker("attacker", mkAtk())
		if partition {
			if err := s.SetCachePartition(atkVM.ID(), true); err != nil {
				t.Fatal(err)
			}
		}
		s.RunUntil(30, nil)
		c := s.Counter(victim.ID())
		return c.MissSeries().Window(5, 30).Mean(), c.AccessSeries().Window(5, 30).Mean()
	}
	cleansing := func() *attack.Attacker {
		a, _ := attack.NewLLCCleansing(attack.Always{}, 0.6, 2e6)
		return a
	}
	missOpen, _ := run(cleansing, false)
	missPart, _ := run(cleansing, true)
	if missPart > 0.5*missOpen {
		t.Errorf("partition did not contain cleansing: open %v, partitioned %v", missOpen, missPart)
	}

	buslock := func() *attack.Attacker {
		a, _ := attack.NewBusLock(attack.Always{}, 0.7)
		return a
	}
	_, accOpen := run(buslock, false)
	_, accPart := run(buslock, true)
	if math.Abs(accPart-accOpen) > 0.05*accOpen {
		t.Errorf("partition affected bus locking: open %v, partitioned %v", accOpen, accPart)
	}
}

func BenchmarkServerStep(b *testing.B) {
	// The testbed topology of the Scenario 1 runs: one victim, one
	// attacker, seven utility VMs. Run with -benchmem — the per-tick loop
	// should stay close to allocation-free (the only steady-state
	// allocations are inside workload demand sampling, if any).
	s := MustNewServer(DefaultConfig())
	if _, err := s.AddApp("victim", workload.MustByAbbrev("BA").Service()); err != nil {
		b.Fatal(err)
	}
	atk, err := attack.NewBusLock(attack.Always{}, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.AddAttacker("attacker", atk); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := s.AddApp("util", workload.Utility()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
