package vmm

import (
	"bytes"
	"encoding/json"
	"testing"

	"memdos/internal/attack"
	"memdos/internal/workload"
)

// TestServerRunsByteIdentical is the regression test for the map-order
// fixes behind memdos-vet's determinism contract: two servers built
// from the same seed must produce byte-for-byte identical sample
// streams and counter series, including under attack, throttling and a
// fractional hypervisor load (the float paths where accumulation order
// once leaked in).
func TestServerRunsByteIdentical(t *testing.T) {
	run := func() []byte {
		cfg := DefaultConfig()
		cfg.Seed = 42
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := workload.ByAbbrev("KM")
		if err != nil {
			t.Fatal(err)
		}
		victim, err := srv.AddApp("victim", spec.Service())
		if err != nil {
			t.Fatal(err)
		}
		atk, err := attack.NewBusLock(attack.Window{Start: 10, End: 60}, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.AddAttacker("attacker", atk); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := srv.AddApp("util", workload.Utility()); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.SetHypervisorLoad(0.031); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		srv.RunUntil(60, func(step StepResult) {
			if s, ok := step.Samples[victim.ID()]; ok {
				if err := enc.Encode(s); err != nil {
					t.Fatal(err)
				}
			}
			if step.Time > 30 {
				// Exercise the dense throttle/partition state mid-run.
				if err := srv.SetExecThrottle(victim.ID(), 0.25); err != nil {
					t.Fatal(err)
				}
			}
		})
		c := srv.Counter(victim.ID())
		if err := enc.Encode(c.AccessSeries()); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(c.MissSeries()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	first := run()
	for i := 0; i < 2; i++ {
		if next := run(); !bytes.Equal(first, next) {
			t.Fatalf("run %d diverged from run 0: %d vs %d bytes of sample stream", i+1, len(next), len(first))
		}
	}
	if len(first) == 0 {
		t.Fatal("runs produced no samples; the comparison is vacuous")
	}
}
