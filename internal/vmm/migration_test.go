package vmm

import (
	"reflect"
	"testing"

	"memdos/internal/pcm"
	"memdos/internal/workload"
)

// collectSamples steps the server n times and returns the given VM's
// completed samples.
func collectSamples(s *Server, id VMID, n int) []pcm.Sample {
	out := make([]pcm.Sample, 0, n)
	for i := 0; i < n; i++ {
		res := s.Step()
		if smp, ok := res.Samples[id]; ok {
			out = append(out, smp)
		}
	}
	return out
}

// TestMigrationZeroDowntimeByteIdentical is the migration contract: a VM
// exported from one host and admitted into another at the same lockstep
// tick produces a sample stream byte-identical to a never-migrated run.
// The destination uses a different server seed to prove the VM's state
// (workload instance, RNG stream, counter timeline) travels whole.
func TestMigrationZeroDowntimeByteIdentical(t *testing.T) {
	const half = 500
	spec := workload.MustByAbbrev("KM").Service()

	// Control: one VM on one host for 2*half steps.
	ctrl := MustNewServer(DefaultConfig())
	cvm, err := ctrl.AddApp("vm", spec)
	if err != nil {
		t.Fatal(err)
	}
	want := collectSamples(ctrl, cvm.ID(), 2*half)

	// Migrated: same VM runs half steps on src, migrates to dst (stepped
	// empty in lockstep), runs half more there.
	src := MustNewServer(DefaultConfig())
	svm, err := src.AddApp("vm", spec)
	if err != nil {
		t.Fatal(err)
	}
	dstCfg := DefaultConfig()
	dstCfg.Seed = 99
	dst := MustNewServer(dstCfg)
	got := collectSamples(src, svm.ID(), half)
	for i := 0; i < half; i++ {
		dst.Step()
	}
	st, err := src.ExportVM(svm.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "vm" || st.IsAttacker() {
		t.Fatalf("exported state = (%q, attacker=%v), want (vm, false)", st.Name(), st.IsAttacker())
	}
	dvm, err := dst.AdmitVM(st)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, collectSamples(dst, dvm.ID(), half)...)

	if len(want) != 2*half || !reflect.DeepEqual(want, got) {
		t.Fatalf("migrated sample stream differs from never-migrated control (%d vs %d samples)", len(got), len(want))
	}
}

// TestMigrationHuskAndStateReuse pins the bookkeeping around export: the
// source slot becomes an inert departed husk, double export/admit fail,
// and the source keeps stepping cleanly.
func TestMigrationHuskAndStateReuse(t *testing.T) {
	src := MustNewServer(DefaultConfig())
	vm, err := src.AddApp("vm", workload.MustByAbbrev("KM").Service())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.AddApp("other", workload.Utility()); err != nil {
		t.Fatal(err)
	}
	collectSamples(src, vm.ID(), 10)
	st, err := src.ExportVM(vm.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !vm.Departed() {
		t.Error("exported VM not marked departed")
	}
	if src.Counter(vm.ID()) != nil {
		t.Error("husk still owns a counter")
	}
	if _, err := src.ExportVM(vm.ID()); err == nil {
		t.Error("double export succeeded")
	}
	res := src.Step()
	if _, ok := res.Samples[vm.ID()]; ok {
		t.Error("departed husk produced a sample")
	}
	if vm.LastSpeed() != 0 {
		t.Errorf("departed husk has speed %v, want 0", vm.LastSpeed())
	}

	dst := MustNewServer(DefaultConfig())
	for dst.Now() < src.Now() {
		dst.Step()
	}
	if _, err := dst.AdmitVM(st); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.AdmitVM(st); err == nil {
		t.Error("double admit succeeded")
	}

	badCfg := DefaultConfig()
	badCfg.TPCM = 0.02
	bad := MustNewServer(badCfg)
	st2, err := src.ExportVM(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.AdmitVM(st2); err == nil {
		t.Error("TPCM-mismatched admit succeeded")
	}
}

// TestMigrationDowntimeSkipsTimeline verifies transit downtime: a VM
// admitted d ticks after export resumes its sample timeline at the
// destination's wall clock, with no samples for the transit interval.
func TestMigrationDowntimeSkipsTimeline(t *testing.T) {
	const before, transit, after = 100, 25, 50
	cfg := DefaultConfig()
	src := MustNewServer(cfg)
	vm, err := src.AddApp("vm", workload.MustByAbbrev("KM").Service())
	if err != nil {
		t.Fatal(err)
	}
	collectSamples(src, vm.ID(), before)
	st, err := src.ExportVM(vm.ID())
	if err != nil {
		t.Fatal(err)
	}
	dst := MustNewServer(cfg)
	for i := 0; i < before+transit; i++ {
		dst.Step()
	}
	dvm, err := dst.AdmitVM(st)
	if err != nil {
		t.Fatal(err)
	}
	got := collectSamples(dst, dvm.ID(), after)
	if len(got) != after {
		t.Fatalf("got %d post-transit samples, want %d", len(got), after)
	}
	wantFirst := float64(before+transit+1) * cfg.TPCM
	if diff := got[0].Time - wantFirst; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("first post-transit sample at t=%v, want %v", got[0].Time, wantFirst)
	}
}

// TestMigrationAdmitBehindClockRejected: a destination whose clock is
// behind the export tick cannot admit (lockstep violation).
func TestMigrationAdmitBehindClockRejected(t *testing.T) {
	src := MustNewServer(DefaultConfig())
	vm, err := src.AddApp("vm", workload.MustByAbbrev("KM").Service())
	if err != nil {
		t.Fatal(err)
	}
	collectSamples(src, vm.ID(), 10)
	st, err := src.ExportVM(vm.ID())
	if err != nil {
		t.Fatal(err)
	}
	dst := MustNewServer(DefaultConfig())
	if _, err := dst.AdmitVM(st); err == nil {
		t.Error("admit on a destination behind the export tick succeeded")
	}
}
