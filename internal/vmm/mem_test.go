package vmm

import (
	"bytes"
	"encoding/binary"
	"testing"

	"memdos/internal/attack"
	"memdos/internal/mem"
	"memdos/internal/workload"
)

// memConfig returns a server config with the DRAM model on an n-socket
// topology.
func memConfig(sockets int) Config {
	cfg := DefaultConfig()
	mc := mem.DefaultNUMAConfig(sockets)
	cfg.Mem = &mc
	return cfg
}

// memRun builds victim + hog + one utility on the given config, pins
// everyone to socket 0 unless remote is set (then the hog is homed on
// socket 1 streaming 100% remotely into socket 0), runs dur seconds and
// returns mean victim speed plus the victim's mean per-sample AccessNum
// and BWBytes.
func memRun(t *testing.T, cfg Config, hog *attack.Attacker, remote bool, dur float64) (speed, access, bw float64) {
	t.Helper()
	s := MustNewServer(cfg)
	victim, err := s.AddApp("victim", workload.MustByAbbrev("KM"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetVMSocket(victim.ID(), 0); err != nil {
		t.Fatal(err)
	}
	var atk *VM
	if hog != nil {
		atk, err = s.AddAttacker("hog", hog)
		if err != nil {
			t.Fatal(err)
		}
		sock := 0
		if remote {
			sock = 1
		}
		if err := s.SetVMSocket(atk.ID(), sock); err != nil {
			t.Fatal(err)
		}
		if remote {
			if err := s.SetMemRemoteFraction(atk.ID(), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	util, err := s.AddApp("util", workload.MustByAbbrev("PR"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetVMSocket(util.ID(), 0); err != nil {
		t.Fatal(err)
	}

	var speedSum, accSum, bwSum float64
	var steps, samples int
	s.RunUntil(dur, func(res StepResult) {
		speedSum += victim.LastSpeed()
		steps++
		if smp, ok := res.Samples[victim.ID()]; ok {
			accSum += smp.AccessNum
			bwSum += smp.BWBytes
			samples++
		}
	})
	if steps == 0 || samples == 0 {
		t.Fatal("no steps or samples")
	}
	return speedSum / float64(steps), accSum / float64(samples), bwSum / float64(samples)
}

func newHog(t *testing.T) *attack.Attacker {
	t.Helper()
	a, err := attack.NewMemBandwidth(attack.Always{}, 3.2e10, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// Without an attacker the memory model leaves the victim essentially at
// full speed, and its samples carry DRAM bandwidth telemetry.
func TestMemModelBenignBaseline(t *testing.T) {
	speed, _, bw := memRun(t, memConfig(1), nil, false, 5)
	if speed < 0.95 {
		t.Fatalf("benign victim speed %v under memory model, want ~1", speed)
	}
	if bw <= 0 {
		t.Fatalf("victim samples carry no BWBytes (%v)", bw)
	}
}

// The DRAM hog slows a co-resident victim substantially while the
// victim's AccessNum — the LLC-centric detector signal — dips far less:
// the evasion asymmetry of Bechtel & Yun (arXiv:2005.10864).
func TestMemBandwidthHogSlowsVictim(t *testing.T) {
	clean, cleanAcc, _ := memRun(t, memConfig(1), nil, false, 10)
	hot, hotAcc, _ := memRun(t, memConfig(1), newHog(t), false, 10)
	slowdown := clean / hot
	if slowdown < 1.5 {
		t.Fatalf("hog slowdown %vx, want >= 1.5x (clean %v, hot %v)", slowdown, clean, hot)
	}
	accDip := 1 - hotAcc/cleanAcc
	speedDip := 1 - hot/clean
	if accDip >= speedDip {
		t.Fatalf("AccessNum dips as much as progress (acc %v vs speed %v): no evasion asymmetry",
			accDip, speedDip)
	}
	if accDip > 0.6*speedDip {
		t.Fatalf("AccessNum dip %v too close to speed dip %v for an LLC-evading attack",
			accDip, speedDip)
	}
}

// A cross-socket hog still hurts, but strictly less than a co-resident
// one (interconnect + remote-efficiency blunting).
func TestMemNUMARemoteAttackWeaker(t *testing.T) {
	cfg := memConfig(2)
	clean, _, _ := memRun(t, cfg, nil, false, 10)
	local, _, _ := memRun(t, cfg, newHog(t), false, 10)
	remote, _, _ := memRun(t, cfg, newHog(t), true, 10)
	if local >= clean*0.95 {
		t.Fatalf("local hog had no effect: %v vs clean %v", local, clean)
	}
	if remote <= local {
		t.Fatalf("remote hog (victim speed %v) stronger than local (%v)", remote, local)
	}
	if remote >= clean*0.98 {
		t.Fatalf("remote hog had no effect at all: %v vs clean %v", remote, clean)
	}
}

// A MemGuard budget on the hog restores most of the victim's speed, and
// clearing it restores the attack — the rung is reversible.
func TestMemBandwidthLimitRecoversVictim(t *testing.T) {
	cfg := memConfig(1)
	s := MustNewServer(cfg)
	victim, err := s.AddApp("victim", workload.MustByAbbrev("KM"))
	if err != nil {
		t.Fatal(err)
	}
	hogVM, err := s.AddAttacker("hog", newHog(t))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.SetVMSocket(victim.ID(), 0)
	_ = s.SetVMSocket(hogVM.ID(), 0)

	meanSpeed := func(until float64) float64 {
		var sum float64
		var n int
		s.RunUntil(until, func(StepResult) {
			sum += victim.LastSpeed()
			n++
		})
		return sum / float64(n)
	}
	attacked := meanSpeed(10)
	if err := s.SetMemBandwidthLimit(hogVM.ID(), 2e9); err != nil {
		t.Fatal(err)
	}
	if got := s.MemBandwidthLimit(hogVM.ID()); got != 2e9 {
		t.Fatalf("MemBandwidthLimit = %v", got)
	}
	mitigated := meanSpeed(20)
	if mitigated < attacked*1.3 {
		t.Fatalf("budget recovered too little: attacked %v -> mitigated %v", attacked, mitigated)
	}
	if err := s.SetMemBandwidthLimit(hogVM.ID(), 0); err != nil {
		t.Fatal(err)
	}
	reattacked := meanSpeed(30)
	if reattacked > mitigated*0.9 {
		t.Fatalf("clearing the budget did not restore the attack: %v vs mitigated %v",
			reattacked, mitigated)
	}
	st, err := s.MemStats(hogVM.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered <= 0 || st.AvgLatency() <= 0 || st.DeliveryRatio() >= 1 {
		t.Fatalf("hog mem stats implausible: %+v", st)
	}
}

// Memory-model operations on a legacy server fail loudly instead of
// silently no-oping.
func TestMemOpsWithoutModel(t *testing.T) {
	s := newServer(t)
	vm, err := s.AddApp("victim", workload.MustByAbbrev("KM"))
	if err != nil {
		t.Fatal(err)
	}
	if s.HasMem() {
		t.Fatal("legacy server claims a memory model")
	}
	if err := s.SetVMSocket(vm.ID(), 0); err == nil {
		t.Error("SetVMSocket succeeded without memory model")
	}
	if err := s.SetMemRemoteFraction(vm.ID(), 0.5); err == nil {
		t.Error("SetMemRemoteFraction succeeded without memory model")
	}
	if err := s.SetMemBandwidthLimit(vm.ID(), 1e9); err == nil {
		t.Error("SetMemBandwidthLimit succeeded without memory model")
	}
	if _, err := s.MemStats(vm.ID()); err == nil {
		t.Error("MemStats succeeded without memory model")
	}
	if s.VMSocket(vm.ID()) != 0 || s.MemBandwidthLimit(vm.ID()) != 0 {
		t.Error("legacy reads not neutral")
	}
	// Out-of-range VM ids fail too, with a model present.
	ms := MustNewServer(memConfig(1))
	if err := ms.SetMemBandwidthLimit(99, 1e9); err == nil {
		t.Error("unknown VM accepted")
	}
}

// memFingerprint runs a 2-socket server with hog + victims and returns
// the exact bytes of every completed sample.
func memFingerprint(t *testing.T, seed uint64) []byte {
	t.Helper()
	cfg := memConfig(2)
	cfg.Seed = seed
	s := MustNewServer(cfg)
	if _, err := s.AddApp("victim", workload.MustByAbbrev("KM")); err != nil {
		t.Fatal(err)
	}
	hogVM, err := s.AddAttacker("hog", newHog(t))
	if err != nil {
		t.Fatal(err)
	}
	_ = s.SetMemRemoteFraction(hogVM.ID(), 0.3)
	if _, err := s.AddApp("util", workload.MustByAbbrev("PR")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s.RunUntil(5, func(res StepResult) {
		for id := VMID(0); int(id) < len(s.vms); id++ {
			if smp, ok := res.Samples[id]; ok {
				_ = binary.Write(&buf, binary.LittleEndian, smp)
			}
		}
	})
	return buf.Bytes()
}

// TestMemServerByteIdentical pins run-to-run determinism of the full
// memory-model server, including the BWBytes/AvgLatency sample fields.
func TestMemServerByteIdentical(t *testing.T) {
	a := memFingerprint(t, 7)
	b := memFingerprint(t, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("memory-model server not reproducible run to run")
	}
	if len(a) == 0 {
		t.Fatal("no samples recorded")
	}
	if bytes.Equal(a, memFingerprint(t, 8)) {
		t.Fatal("seed has no effect")
	}
}

// A migrated VM leaves its bandwidth budget and NUMA overrides behind.
func TestExportClearsMemState(t *testing.T) {
	s := MustNewServer(memConfig(2))
	vm, err := s.AddApp("victim", workload.MustByAbbrev("KM"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetMemBandwidthLimit(vm.ID(), 1e9); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMemRemoteFraction(vm.ID(), 0.7); err != nil {
		t.Fatal(err)
	}
	st, err := s.ExportVM(vm.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MemBandwidthLimit(vm.ID()); got != 0 {
		t.Fatalf("husk keeps bandwidth budget %v", got)
	}
	dst := MustNewServer(memConfig(2))
	adm, err := dst.AdmitVM(st)
	if err != nil {
		t.Fatal(err)
	}
	if dst.MemBandwidthLimit(adm.ID()) != 0 {
		t.Fatal("admitted VM inherited a bandwidth budget")
	}
	if dst.VMSocket(adm.ID()) != int(adm.ID())%2 {
		t.Fatalf("admitted VM socket %d, want default placement", dst.VMSocket(adm.ID()))
	}
}

// The nil-Mem server must remain bit-for-bit the pre-memory-model server:
// DefaultConfig fingerprints must not change shape (no BW fields, same
// samples). This is the back-compat contract for every existing study.
func TestLegacyServerSamplesHaveNoDRAMFields(t *testing.T) {
	s := newServer(t)
	if _, err := s.AddApp("victim", workload.MustByAbbrev("KM")); err != nil {
		t.Fatal(err)
	}
	var seen int
	s.RunUntil(2, func(res StepResult) {
		for _, smp := range res.Samples {
			seen++
			if smp.BWBytes != 0 || smp.AvgLatency != 0 {
				t.Fatalf("legacy sample carries DRAM fields: %+v", smp)
			}
		}
	})
	if seen == 0 {
		t.Fatal("no samples")
	}
}
