package cache

import (
	"fmt"

	"memdos/internal/sim"
)

// Policy selects the victim way on a miss. LRU is the paper's (and Intel's
// documented) baseline; Random and TreePLRU exist for the mitigation
// ablation: the LLC cleansing attack's probing relies on deterministic
// eviction order, so randomized replacement blunts it — at a hit-rate
// cost.
type Policy int

// Replacement policies.
const (
	// LRU evicts the least-recently-used way.
	LRU Policy = iota
	// Random evicts a uniformly random way.
	Random
	// TreePLRU approximates LRU with a binary decision tree per set
	// (the common hardware implementation).
	TreePLRU
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case Random:
		return "random"
	case TreePLRU:
		return "tree-PLRU"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// replacer picks victims and observes accesses for one cache.
type replacer interface {
	// touch records a hit or fill of the given way in the given set.
	touch(set, way int)
	// victim returns the way to evict in the set (only called when no
	// invalid way exists).
	victim(set int) int
}

// lruReplacer is the default recency-stamp implementation (state lives in
// the line structs, managed by Cache itself); this type only adapts it to
// the replacer interface for uniformity.
type lruReplacer struct{ c *Cache }

func (r lruReplacer) touch(set, way int) {
	r.c.lines[set*r.c.geom.Ways+way].lru = r.c.lruClock
}

func (r lruReplacer) victim(set int) int {
	base := set * r.c.geom.Ways
	best := 0
	for w := 1; w < r.c.geom.Ways; w++ {
		if r.c.lines[base+w].lru < r.c.lines[base+best].lru {
			best = w
		}
	}
	return best
}

// randomReplacer evicts uniformly at random.
type randomReplacer struct {
	ways int
	rng  *sim.RNG
}

func (r *randomReplacer) touch(int, int) {}
func (r *randomReplacer) victim(int) int { return r.rng.Intn(r.ways) }

// plruReplacer implements tree-PLRU: one bit per internal node of a binary
// tree over the ways; touching a way points the path away from it, and the
// victim is found by following the pointed-to path.
type plruReplacer struct {
	ways int
	// bits[set] holds ways-1 tree bits.
	bits [][]bool
}

func newPLRUReplacer(sets, ways int) (*plruReplacer, error) {
	if ways&(ways-1) != 0 {
		return nil, fmt.Errorf("cache: tree-PLRU needs power-of-two ways, got %d", ways)
	}
	r := &plruReplacer{ways: ways, bits: make([][]bool, sets)}
	for i := range r.bits {
		r.bits[i] = make([]bool, ways-1)
	}
	return r, nil
}

func (r *plruReplacer) touch(set, way int) {
	bits := r.bits[set]
	node := 0
	lo, hi := 0, r.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			bits[node] = true // point away: next victim search goes right
			node = 2*node + 1
			hi = mid
		} else {
			bits[node] = false
			node = 2*node + 2
			lo = mid
		}
	}
}

func (r *plruReplacer) victim(set int) int {
	bits := r.bits[set]
	node := 0
	lo, hi := 0, r.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bits[node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}
