package cache

import (
	"math"
	"testing"
	"testing/quick"

	"memdos/internal/sim"
)

func small() *Cache {
	return MustNew(Geometry{Sets: 8, Ways: 4, LineSize: 64})
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Sets: 0, Ways: 4, LineSize: 64},
		{Sets: 8, Ways: 0, LineSize: 64},
		{Sets: 8, Ways: 4, LineSize: 0},
		{Sets: 8, Ways: 4, LineSize: 48}, // not a power of two
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %+v should be invalid", g)
		}
		if _, err := New(g); err == nil {
			t.Errorf("New(%+v) should fail", g)
		}
	}
	if err := GeometryXeonE52660.Validate(); err != nil {
		t.Errorf("paper geometry invalid: %v", err)
	}
	if got := GeometryXeonE52660.Size(); got != 35*1024*1024 {
		t.Errorf("Xeon LLC size = %d, want 35 MiB", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad geometry did not panic")
		}
	}()
	MustNew(Geometry{})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if c.Access(1, 0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(1, 0x1000) {
		t.Error("second access should hit")
	}
	st := c.Stats(1)
	if st.Accesses != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 accesses 1 miss", st)
	}
}

func TestSameSetDifferentTags(t *testing.T) {
	c := small()
	a0 := c.AddrForSet(3, 0)
	a1 := c.AddrForSet(3, 1)
	c.Access(1, a0)
	c.Access(1, a1)
	if !c.Access(1, a0) || !c.Access(1, a1) {
		t.Error("both lines should fit in a 4-way set")
	}
	occ := c.SetOccupancy(3)
	if occ[1] != 2 {
		t.Errorf("set occupancy = %v, want owner 1 -> 2", occ)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 4 ways
	// Fill set 0 with 4 lines, then touch line 0 to refresh it, then
	// insert a 5th: the LRU victim must be line 1, not line 0.
	addrs := make([]uint64, 5)
	for i := range addrs {
		addrs[i] = c.AddrForSet(0, uint64(i))
	}
	for _, a := range addrs[:4] {
		c.Access(1, a)
	}
	c.Access(1, addrs[0]) // refresh
	c.Access(1, addrs[4]) // evicts addrs[1]
	if !c.Access(1, addrs[0]) {
		t.Error("refreshed line was evicted")
	}
	if c.Access(1, addrs[1]) {
		t.Error("LRU line should have been evicted")
	}
}

func TestCrossOwnerEvictionCounted(t *testing.T) {
	c := small()
	// Victim owner 1 fills set 0; attacker owner 2 cleanses it.
	for i := 0; i < 4; i++ {
		c.Access(1, c.AddrForSet(0, uint64(i)))
	}
	for i := 10; i < 14; i++ {
		c.Access(2, c.AddrForSet(0, uint64(i)))
	}
	st := c.Stats(1)
	if st.Evicted != 4 {
		t.Errorf("victim evicted count = %d, want 4", st.Evicted)
	}
	// Now every victim re-access misses: the cleansing signature.
	for i := 0; i < 4; i++ {
		if c.Access(1, c.AddrForSet(0, uint64(i))) {
			t.Error("cleansed line still resident")
		}
	}
}

func TestOccupancy(t *testing.T) {
	c := small()
	c.Access(1, c.AddrForSet(0, 0))
	c.Access(1, c.AddrForSet(1, 0))
	c.Access(2, c.AddrForSet(1, 1))
	occ := c.Occupancy()
	if occ[1] != 2 || occ[2] != 1 {
		t.Errorf("occupancy = %v", occ)
	}
}

func TestFlushClearsContentsKeepsStats(t *testing.T) {
	c := small()
	c.Access(1, 0x40)
	c.Flush()
	if len(c.Occupancy()) != 0 {
		t.Error("flush left valid lines")
	}
	if c.Stats(1).Accesses != 1 {
		t.Error("flush should preserve stats")
	}
	if c.Access(1, 0x40) {
		t.Error("access after flush should miss")
	}
}

func TestResetStats(t *testing.T) {
	c := small()
	c.Access(1, 0x40)
	c.ResetStats()
	if st := c.Stats(1); st.Accesses != 0 || st.Misses != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
	// Contents survive a stats reset.
	if !c.Access(1, 0x40) {
		t.Error("reset should not flush contents")
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Error("zero-access miss ratio should be 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRatio() != 0.25 {
		t.Errorf("miss ratio = %v", s.MissRatio())
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// The paper's geometry has 28672 sets (not a power of two); verify
	// the modulo path maps every address in range.
	c := MustNew(Geometry{Sets: 7, Ways: 2, LineSize: 64})
	r := sim.NewRNG(5)
	for i := 0; i < 1000; i++ {
		addr := r.Uint64() >> 8
		set := c.setIndex(addr)
		if set < 0 || set >= 7 {
			t.Fatalf("set index %d out of range for addr %x", set, addr)
		}
	}
}

func TestAddrForSetRoundTrip(t *testing.T) {
	check := func(setRaw, salt uint16) bool {
		c := small()
		set := int(setRaw) % c.Geometry().Sets
		addr := c.AddrForSet(set, uint64(salt))
		return c.setIndex(addr) == set
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrForSetDistinctTags(t *testing.T) {
	c := small()
	a := c.AddrForSet(2, 0)
	b := c.AddrForSet(2, 1)
	if c.tag(a) == c.tag(b) {
		t.Error("different salts should give different tags")
	}
}

func TestWorkingSetSmallerThanCacheAllHits(t *testing.T) {
	// Property: after a warmup pass, a working set no larger than the
	// cache never misses again (LRU with a fully resident set).
	c := MustNew(Geometry{Sets: 16, Ways: 4, LineSize: 64})
	capacity := 16 * 4
	addrs := make([]uint64, capacity)
	for i := range addrs {
		addrs[i] = c.AddrForSet(i%16, uint64(i/16))
	}
	for _, a := range addrs {
		c.Access(1, a)
	}
	c.ResetStats()
	for pass := 0; pass < 3; pass++ {
		for _, a := range addrs {
			c.Access(1, a)
		}
	}
	if st := c.Stats(1); st.Misses != 0 {
		t.Errorf("resident working set missed %d times", st.Misses)
	}
}

func TestWorkingSetLargerThanSetThrashes(t *testing.T) {
	// A working set of ways+1 lines in one set cycled in order under LRU
	// misses every time (the classic LRU pathological case).
	c := small()
	addrs := make([]uint64, 5)
	for i := range addrs {
		addrs[i] = c.AddrForSet(0, uint64(i))
	}
	for pass := 0; pass < 4; pass++ {
		for _, a := range addrs {
			c.Access(1, a)
		}
	}
	st := c.Stats(1)
	if st.Misses != st.Accesses {
		t.Errorf("cyclic over-capacity set: %d misses of %d accesses, want all misses", st.Misses, st.Accesses)
	}
}

func TestSetOccupancyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetOccupancy out of range did not panic")
		}
	}()
	small().SetOccupancy(99)
}

func TestStatsUnknownOwnerZero(t *testing.T) {
	c := small()
	if st := c.Stats(42); st != (Stats{}) {
		t.Errorf("unknown owner stats = %+v", st)
	}
}

func TestHitTransfersOwnership(t *testing.T) {
	// When two owners share a line (e.g. shared library page), a hit by a
	// second owner re-attributes the line; eviction is then charged to
	// the new owner.
	c := small()
	a := c.AddrForSet(0, 0)
	c.Access(1, a)
	c.Access(2, a) // hit, now owned by 2
	occ := c.SetOccupancy(0)
	if occ[2] != 1 || occ[1] != 0 {
		t.Errorf("ownership after shared hit = %v", occ)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || Random.String() != "random" || TreePLRU.String() != "tree-PLRU" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should format")
	}
}

func TestNewWithPolicyValidation(t *testing.T) {
	g := Geometry{Sets: 8, Ways: 4, LineSize: 64}
	if _, err := NewWithPolicy(g, Random, nil); err == nil {
		t.Error("random without RNG accepted")
	}
	if _, err := NewWithPolicy(Geometry{Sets: 8, Ways: 20, LineSize: 64}, TreePLRU, nil); err == nil {
		t.Error("tree-PLRU with non-power-of-two ways accepted")
	}
	if _, err := NewWithPolicy(g, Policy(9), nil); err == nil {
		t.Error("unknown policy accepted")
	}
	c, err := NewWithPolicy(g, TreePLRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Policy() != TreePLRU {
		t.Error("Policy() wrong")
	}
}

func TestRandomReplacementStillCaches(t *testing.T) {
	g := Geometry{Sets: 8, Ways: 4, LineSize: 64}
	c, err := NewWithPolicy(g, Random, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// A resident working set still hits 100% (invalid ways fill first).
	for s := 0; s < 8; s++ {
		for w := 0; w < 4; w++ {
			c.Access(1, c.AddrForSet(s, uint64(w)))
		}
	}
	c.ResetStats()
	for s := 0; s < 8; s++ {
		for w := 0; w < 4; w++ {
			if !c.Access(1, c.AddrForSet(s, uint64(w))) {
				t.Fatal("resident line missed under random replacement")
			}
		}
	}
}

func TestTreePLRUApproximatesLRU(t *testing.T) {
	g := Geometry{Sets: 4, Ways: 4, LineSize: 64}
	c, err := NewWithPolicy(g, TreePLRU, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fill a set, re-touch way-0's line, insert a new line: way 0 must
	// survive (PLRU protects the most recently used path).
	addrs := make([]uint64, 5)
	for i := range addrs {
		addrs[i] = c.AddrForSet(0, uint64(i))
	}
	for _, a := range addrs[:4] {
		c.Access(1, a)
	}
	c.Access(1, addrs[0])
	c.Access(1, addrs[4])
	if !c.Access(1, addrs[0]) {
		t.Error("PLRU evicted the most recently used line")
	}
}

func TestPLRUVictimConsistency(t *testing.T) {
	// Property: after touching way w, the immediate victim is never w.
	r, err := newPLRUReplacer(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		for i := 0; i < 100; i++ {
			w := rng.Intn(8)
			r.touch(0, w)
			if r.victim(0) == w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestLRUClockCrossesUint32Wrap(t *testing.T) {
	// Regression test for the recency clock width. A uint32 clock wraps
	// after ~4B accesses: lines touched after the wrap get tiny stamps and
	// look older than everything resident, so LRU evicts the most recently
	// used lines. Force stamps to straddle 2^32 and check ordering holds.
	c := small() // 4 ways
	addrs := make([]uint64, 5)
	for i := range addrs {
		addrs[i] = c.AddrForSet(0, uint64(i))
	}
	for _, a := range addrs[:4] {
		c.Access(1, a)
	}
	// Jump the clock so the next two touches land just below 2^32 and the
	// two after that just above it.
	c.lruClock = math.MaxUint32 - 2
	for _, a := range addrs[:4] {
		if !c.Access(1, a) {
			t.Fatal("resident line missed while re-touching")
		}
	}
	if c.lruClock <= math.MaxUint32 {
		t.Fatalf("clock %d did not cross 2^32; test is not exercising the wrap", c.lruClock)
	}
	// Insert a 5th line: the victim must be addrs[0] (oldest stamp, just
	// below the boundary), not one of the post-boundary lines.
	c.Access(1, addrs[4])
	for _, a := range addrs[1:] {
		if !c.Access(1, a) {
			t.Errorf("line %#x evicted despite being more recent than addrs[0]", a)
		}
	}
	if c.Access(1, addrs[0]) {
		t.Error("addrs[0] should have been the LRU victim")
	}
}

func TestAccessNoAllocs(t *testing.T) {
	// Access is the microsimulation's innermost loop; its steady state
	// (owners already seen) must not allocate.
	c := MustNew(GeometryScaled)
	for o := Owner(0); o < 4; o++ {
		c.Access(o, c.AddrForSet(0, uint64(o))) // grow the stats table
	}
	var i uint64
	avg := testing.AllocsPerRun(1000, func() {
		i++
		c.Access(Owner(i%4), c.AddrForSet(int(i)%c.Geometry().Sets, i%64))
	})
	if avg != 0 {
		t.Errorf("Access allocates %.2f objects/op in steady state, want 0", avg)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	// Mixed hit/miss stream over the scaled geometry with a handful of
	// owners, matching the microsimulation's access pattern. Run with
	// -benchmem: the acceptance bar is 0 allocs/op.
	c := MustNew(GeometryScaled)
	g := c.Geometry()
	for o := Owner(0); o < 4; o++ {
		c.Access(o, c.AddrForSet(0, uint64(o)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint64(i)
		c.Access(Owner(u%4), c.AddrForSet(int(u)%g.Sets, u%64))
	}
}

func TestOccupancyIntoMatchesMap(t *testing.T) {
	c := small()
	c.Access(1, c.AddrForSet(0, 0))
	c.Access(1, c.AddrForSet(1, 0))
	c.Access(2, c.AddrForSet(1, 1))
	dst := c.OccupancyInto(make([]int, 1)) // too short: must grow
	want := c.Occupancy()
	for o, n := range want {
		if dst[o] != n {
			t.Errorf("OccupancyInto[%d] = %d, want %d", o, dst[o], n)
		}
	}
	// Reuse without growth, after contents changed.
	c.Access(3, c.AddrForSet(2, 0))
	dst = c.OccupancyInto(dst)
	if dst[3] != 1 || dst[1] != 2 || dst[2] != 1 {
		t.Errorf("reused OccupancyInto = %v", dst)
	}
	if got := c.OwnerOccupancy(1); got != 2 {
		t.Errorf("OwnerOccupancy(1) = %d, want 2", got)
	}
	if got := c.OwnerOccupancy(9); got != 0 {
		t.Errorf("OwnerOccupancy(9) = %d, want 0", got)
	}
}

func TestSetOwnerOccupancyMatchesMap(t *testing.T) {
	c := small()
	c.Access(1, c.AddrForSet(3, 0))
	c.Access(1, c.AddrForSet(3, 1))
	c.Access(2, c.AddrForSet(3, 2))
	occ := c.SetOccupancy(3)
	for o, n := range occ {
		if got := c.SetOwnerOccupancy(3, o); got != n {
			t.Errorf("SetOwnerOccupancy(3,%d) = %d, want %d", o, got, n)
		}
	}
	if got := c.SetOwnerOccupancy(3, 7); got != 0 {
		t.Errorf("SetOwnerOccupancy(3,7) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetOwnerOccupancy out of range did not panic")
		}
	}()
	c.SetOwnerOccupancy(99, 1)
}

func TestRandomReplacementBluntsDeterministicCleansing(t *testing.T) {
	// Mitigation ablation: under LRU a cyclic over-capacity sweep evicts
	// a resident victim line deterministically; under random replacement
	// the victim line sometimes survives, so the same cleansing effort
	// yields fewer victim evictions.
	evictionsUnder := func(policy Policy) uint64 {
		g := Geometry{Sets: 1, Ways: 8, LineSize: 64}
		c, err := NewWithPolicy(g, policy, sim.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		const victim, attacker = 1, 2
		victimLine := c.AddrForSet(0, 999)
		c.Access(victim, victimLine)
		for sweep := 0; sweep < 200; sweep++ {
			// Attacker cycles 8 fresh lines through the set...
			for w := 0; w < 8; w++ {
				c.Access(attacker, c.AddrForSet(0, uint64(sweep*8+w)))
			}
			// ...and the victim re-touches its line each round.
			c.Access(victim, victimLine)
		}
		return c.Stats(victim).Evicted
	}
	lru := evictionsUnder(LRU)
	random := evictionsUnder(Random)
	if random >= lru {
		t.Errorf("victim evictions: LRU %d, random %d — randomization should blunt cleansing", lru, random)
	}
}
