// Package cache models a shared last-level cache (LLC) as a set-associative
// array with per-owner accounting. It is the substrate on which the LLC
// cleansing attack operates: the attacker and the victim contend for the
// same physical sets, so cleansing genuinely evicts victim lines and
// inflates the victim's miss counter, exactly the observable the paper's
// detectors consume.
//
// The geometry is configurable. The paper's testbed LLC (Xeon E5-2660 v4:
// 35 MB, 20-way, 64-byte lines) is available as GeometryXeonE52660; unit
// tests and the fast experiment path use a 1/64-scale geometry with the
// same associativity so set-conflict behaviour is preserved.
package cache

import (
	"fmt"

	"memdos/internal/sim"
)

// Geometry describes a set-associative cache.
type Geometry struct {
	Sets     int // number of sets
	Ways     int // associativity
	LineSize int // bytes per line
}

// GeometryXeonE52660 is the paper's LLC: 35 MB, 20-way, 64 B lines
// (28672 sets).
var GeometryXeonE52660 = Geometry{Sets: 28672, Ways: 20, LineSize: 64}

// GeometryScaled is the default reduced geometry used by tests and the fast
// experiment path: same 20-way associativity at 1/64 the capacity
// (448 sets x 20 ways x 64 B = 560 KiB).
var GeometryScaled = Geometry{Sets: 448, Ways: 20, LineSize: 64}

// Size returns the cache capacity in bytes.
func (g Geometry) Size() int { return g.Sets * g.Ways * g.LineSize }

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Sets <= 0 || g.Ways <= 0 || g.LineSize <= 0 {
		return fmt.Errorf("cache: invalid geometry %+v", g)
	}
	if g.LineSize&(g.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", g.LineSize)
	}
	return nil
}

// Owner identifies who loaded a cache line (e.g. a VM id). OwnerNone marks
// an invalid (empty) line.
type Owner int32

// OwnerNone marks an empty way.
const OwnerNone Owner = -1

// line is one cache way: the tag identifies the cached block, owner who
// loaded it, and lru its recency rank (higher = more recently used). The
// rank is 64-bit: a 32-bit clock silently wraps after ~4B accesses, at
// which point freshly-touched lines look ancient and LRU degenerates (see
// TestLRUClockCrossesUint32Wrap).
type line struct {
	tag   uint64
	owner Owner
	lru   uint64
	valid bool
}

// Stats counts accesses and misses attributed to one owner.
type Stats struct {
	Accesses uint64
	Misses   uint64
	// Evicted counts lines of this owner evicted by *other* owners —
	// the direct footprint of cleansing.
	Evicted uint64
}

// MissRatio returns Misses/Accesses, or 0 when no accesses occurred.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative LLC with LRU replacement and per-owner
// statistics. It is not safe for concurrent use; the simulation engine
// steps components sequentially.
//
// Per-owner statistics live in a dense slice indexed by Owner: owners are
// small non-negative VM ids, and Access is the innermost loop of the
// microsimulation (one call per simulated LLC access), so the steady state
// must stay free of map lookups and allocations.
type Cache struct {
	geom     Geometry
	lines    []line // sets*ways, set-major
	lruClock uint64
	stats    []Stats // dense, indexed by Owner; grown on first access
	setShift uint    // log2(LineSize)
	setMask  uint64
	setsPow2 bool // Sets is a power of two: setIndex masks instead of mods
	repl     replacer
	policy   Policy
}

// New returns an empty cache with the given geometry and LRU replacement.
func New(g Geometry) (*Cache, error) {
	return NewWithPolicy(g, LRU, nil)
}

// NewWithPolicy returns an empty cache with the given replacement policy.
// Random replacement requires an RNG; the other policies ignore it.
func NewWithPolicy(g Geometry, policy Policy, rng *sim.RNG) (*Cache, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift < g.LineSize {
		shift++
	}
	c := &Cache{
		geom:     g,
		lines:    make([]line, g.Sets*g.Ways),
		setShift: shift,
		setMask:  uint64(g.Sets - 1),
		setsPow2: g.Sets&(g.Sets-1) == 0,
		policy:   policy,
	}
	for i := range c.lines {
		c.lines[i].owner = OwnerNone
	}
	switch policy {
	case LRU:
		c.repl = lruReplacer{c}
	case Random:
		if rng == nil {
			return nil, fmt.Errorf("cache: random replacement requires an RNG")
		}
		c.repl = &randomReplacer{ways: g.Ways, rng: rng}
	case TreePLRU:
		r, err := newPLRUReplacer(g.Sets, g.Ways)
		if err != nil {
			return nil, err
		}
		c.repl = r
	default:
		return nil, fmt.Errorf("cache: unknown policy %v", policy)
	}
	return c, nil
}

// Policy returns the cache's replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// MustNew is New but panics on invalid geometry; for tests and tables of
// known-good geometries.
func MustNew(g Geometry) *Cache {
	c, err := New(g)
	if err != nil {
		panic(err)
	}
	return c
}

// Geometry returns the cache geometry.
func (c *Cache) Geometry() Geometry { return c.geom }

// setIndex maps an address to its set. Non-power-of-two set counts use a
// modulo; power-of-two counts use the usual mask (the branch is a
// precomputed flag, not re-derived per access).
func (c *Cache) setIndex(addr uint64) int {
	block := addr >> c.setShift
	if c.setsPow2 {
		return int(block & c.setMask)
	}
	return int(block % uint64(c.geom.Sets))
}

// tag returns the block tag for an address.
func (c *Cache) tag(addr uint64) uint64 { return addr >> c.setShift }

// statsFor returns (growing the dense table if needed) the stats record
// for owner. The grow path runs at most once per owner; the steady state
// is a bounds check and an index.
func (c *Cache) statsFor(o Owner) *Stats {
	if o < 0 {
		panic(fmt.Sprintf("cache: stats for invalid owner %d", o))
	}
	if int(o) >= len(c.stats) {
		grown := make([]Stats, int(o)+1) //memdos:ignore hotalloc grow-once stats table: steady state (owners already seen) allocates nothing, pinned by TestAccessNoAllocs
		copy(grown, c.stats)
		c.stats = grown
	}
	return &c.stats[o]
}

// Access simulates owner touching addr. It returns true on a hit. On a
// miss the line is filled, evicting the LRU way; if the evicted line
// belonged to a different owner, that owner's Evicted counter increments.
//
// This is the simulation's innermost loop: one fused pass over the set
// resolves both the hit way and the first invalid (fill) way, owner stats
// are a dense-slice index, and the steady state performs no allocations.
//
//memdos:hotpath bench=cache/access
func (c *Cache) Access(o Owner, addr uint64) bool {
	set := c.setIndex(addr)
	tag := addr >> c.setShift
	base := set * c.geom.Ways
	ways := c.lines[base : base+c.geom.Ways]
	st := c.statsFor(o)
	st.Accesses++
	c.lruClock++

	// Fused scan: find the hit way and remember the first invalid way in
	// the same pass.
	invalid := -1
	for i := range ways {
		l := &ways[i]
		if !l.valid {
			if invalid < 0 {
				invalid = i
			}
			continue
		}
		if l.tag == tag {
			l.owner = o
			c.repl.touch(set, i)
			return true
		}
	}
	// Miss: fill the invalid way if one exists, else ask the replacement
	// policy for a victim.
	way := invalid
	if way < 0 {
		way = c.repl.victim(set)
	}
	victim := &ways[way]
	st.Misses++
	if victim.valid && victim.owner != o && victim.owner != OwnerNone {
		// The victim owner's stats entry exists: it filled this line.
		c.stats[victim.owner].Evicted++
	}
	victim.tag = tag
	victim.owner = o
	victim.valid = true
	c.repl.touch(set, way)
	return false
}

// Stats returns a copy of the statistics for owner.
func (c *Cache) Stats(o Owner) Stats {
	if o >= 0 && int(o) < len(c.stats) {
		return c.stats[o]
	}
	return Stats{}
}

// ResetStats zeroes all per-owner counters without disturbing contents.
func (c *Cache) ResetStats() {
	for i := range c.stats {
		c.stats[i] = Stats{}
	}
}

// Occupancy returns, for each owner present, the number of valid lines it
// currently holds. It allocates its result; hot paths should use
// OccupancyInto or the per-owner counters below.
func (c *Cache) Occupancy() map[Owner]int {
	occ := make(map[Owner]int)
	for i := range c.lines {
		if c.lines[i].valid {
			occ[c.lines[i].owner]++
		}
	}
	return occ
}

// OccupancyInto counts each owner's valid lines into dst, which is indexed
// by owner and zeroed first. If dst is too short for the largest owner
// present it is grown (the only case that allocates); the possibly-grown
// slice is returned.
func (c *Cache) OccupancyInto(dst []int) []int {
	for i := range dst {
		dst[i] = 0
	}
	for i := range c.lines {
		l := &c.lines[i]
		if !l.valid {
			continue
		}
		if int(l.owner) >= len(dst) {
			grown := make([]int, int(l.owner)+1)
			copy(grown, dst)
			dst = grown
		}
		dst[l.owner]++
	}
	return dst
}

// OwnerOccupancy returns the number of valid lines owner currently holds,
// without allocating.
func (c *Cache) OwnerOccupancy(o Owner) int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].owner == o {
			n++
		}
	}
	return n
}

// SetOccupancy returns the number of valid lines each owner holds in one
// set. The LLC cleansing attacker uses this (via probing, see Prober) to
// find contested sets. It allocates; the prober's hot path uses
// SetOwnerOccupancy instead.
func (c *Cache) SetOccupancy(set int) map[Owner]int {
	if set < 0 || set >= c.geom.Sets {
		panic(fmt.Sprintf("cache: set %d out of range", set))
	}
	occ := make(map[Owner]int)
	base := set * c.geom.Ways
	for i := 0; i < c.geom.Ways; i++ {
		l := c.lines[base+i]
		if l.valid {
			occ[l.owner]++
		}
	}
	return occ
}

// SetOwnerOccupancy returns the number of valid lines owner holds in one
// set, without allocating — the prober calls this once per set per probe
// round.
func (c *Cache) SetOwnerOccupancy(set int, o Owner) int {
	if set < 0 || set >= c.geom.Sets {
		panic(fmt.Sprintf("cache: set %d out of range", set))
	}
	base := set * c.geom.Ways
	n := 0
	for i := 0; i < c.geom.Ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.owner == o {
			n++
		}
	}
	return n
}

// Flush invalidates every line. Statistics are preserved.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{owner: OwnerNone}
	}
}

// AddrForSet constructs an address that maps to the given set with the
// given tag salt; used by attackers to build eviction sets and by tests.
func (c *Cache) AddrForSet(set int, salt uint64) uint64 {
	if set < 0 || set >= c.geom.Sets {
		panic(fmt.Sprintf("cache: set %d out of range", set))
	}
	return (salt*uint64(c.geom.Sets)+uint64(set))<<c.setShift | 0
}
