// Package attack implements the two memory DoS attacks of the paper, a
// DRAM-bandwidth hog from the follow-on literature, and the schedules
// that drive them.
//
// Atomic bus locking: the attacker repeatedly issues atomic operations
// whose operands span cache lines, forcing the processor to lock all
// internal memory buses; co-located VMs lose bus time proportional to the
// attacker's lock duty cycle.
//
// LLC cleansing: the attacker first probes the shared LLC to find sets
// where other VMs hold lines (Prober), then repeatedly re-fills those sets,
// evicting the victims' lines and inflating their miss counters.
//
// DRAM bandwidth hogging: the attacker streams sequentially through a
// buffer larger than the LLC, saturating the memory controller's channels
// while keeping near-perfect row-buffer locality for itself (Bechtel &
// Yun, arXiv:2005.10864). The stream bypasses most cache-level signals,
// which is exactly why it interests the detection study.
//
// Schedules model the attack VM's enable/disable behaviour: Scenario 1 of
// the paper enables the attack for the second half of the run; Scenario 2
// toggles it on and off for random durations uniform in [10, 50] seconds.
package attack

import (
	"fmt"

	"memdos/internal/sim"
)

// Kind identifies the attack mechanism.
type Kind int

const (
	// BusLock is the atomic bus locking attack.
	BusLock Kind = iota
	// LLCCleansing is the LLC cleansing attack.
	LLCCleansing
	// MemBandwidth is the DRAM-bandwidth hog (sequential-stream attack).
	MemBandwidth
)

// String returns the paper's name for the attack kind.
func (k Kind) String() string {
	switch k {
	case BusLock:
		return "bus locking"
	case LLCCleansing:
		return "LLC cleansing"
	case MemBandwidth:
		return "DRAM bandwidth"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Schedule decides when the attack VM has its attack enabled.
type Schedule interface {
	// Active reports whether the attack is enabled at simulated time now.
	Active(now float64) bool
}

// Never is a schedule that never attacks (benign runs).
type Never struct{}

// Active always reports false.
func (Never) Active(float64) bool { return false }

// Always is a schedule that attacks continuously.
type Always struct{}

// Active always reports true.
func (Always) Active(float64) bool { return true }

// Window attacks during [Start, End).
type Window struct {
	Start, End float64
}

// Active reports whether now falls inside the window.
func (w Window) Active(now float64) bool { return now >= w.Start && now < w.End }

// Adaptive is the paper's Scenario 2 schedule: the attack toggles between
// enabled and disabled, each state lasting a random duration drawn
// uniformly from [MinDur, MaxDur) seconds. The realized schedule is
// deterministic given the RNG seed and is materialized lazily.
type Adaptive struct {
	MinDur, MaxDur float64

	rng *sim.RNG
	// toggles[i] is the time of the i-th state flip; the schedule starts
	// disabled at t=0.
	toggles []float64
	horizon float64
}

// NewAdaptive returns a Scenario 2 schedule with state durations uniform in
// [minDur, maxDur) seconds (the paper uses [10, 50)).
func NewAdaptive(rng *sim.RNG, minDur, maxDur float64) (*Adaptive, error) {
	if minDur <= 0 || maxDur <= minDur {
		return nil, fmt.Errorf("attack: invalid adaptive durations [%v, %v)", minDur, maxDur)
	}
	return &Adaptive{MinDur: minDur, MaxDur: maxDur, rng: rng}, nil
}

// extend materializes toggle times up to at least t.
func (a *Adaptive) extend(t float64) {
	for a.horizon <= t {
		d := a.rng.Uniform(a.MinDur, a.MaxDur)
		a.horizon += d
		a.toggles = append(a.toggles, a.horizon)
	}
}

// Active reports whether the attack is enabled at time now. The schedule
// begins disabled; each toggle flips the state.
func (a *Adaptive) Active(now float64) bool {
	if now < 0 {
		return false
	}
	a.extend(now)
	// Count toggles at or before now; odd count = enabled.
	flips := 0
	for _, t := range a.toggles {
		if t <= now {
			flips++
		} else {
			break
		}
	}
	return flips%2 == 1
}

// ActiveWindows returns the materialized attack-on intervals overlapping
// [0, until); useful for computing ground truth labels.
func (a *Adaptive) ActiveWindows(until float64) []Window {
	a.extend(until)
	var out []Window
	prev := 0.0
	active := false
	for _, t := range a.toggles {
		if active {
			w := Window{Start: prev, End: t}
			if w.Start < until {
				if w.End > until {
					w.End = until
				}
				out = append(out, w)
			}
		}
		prev = t
		active = !active
		if prev >= until {
			break
		}
	}
	if active && prev < until {
		out = append(out, Window{Start: prev, End: until})
	}
	return out
}

// Suppressor wraps a schedule with dynamically extendable suppression:
// after the victim migrates away, the attacker has lost co-residence and
// needs time to re-co-locate (shown feasible "in the order of minutes" by
// the placement studies the paper cites) before its schedule applies again.
type Suppressor struct {
	inner Schedule
	until float64
}

// NewSuppressor wraps the schedule; initially nothing is suppressed.
func NewSuppressor(inner Schedule) (*Suppressor, error) {
	if inner == nil {
		return nil, fmt.Errorf("attack: nil schedule")
	}
	return &Suppressor{inner: inner}, nil
}

// Active reports the inner schedule's state unless suppressed.
func (s *Suppressor) Active(now float64) bool {
	return now >= s.until && s.inner.Active(now)
}

// Suppress disables the attack until the given time (extending, never
// shortening, an existing suppression).
func (s *Suppressor) Suppress(until float64) {
	if until > s.until {
		s.until = until
	}
}

// SuppressedUntil returns the current suppression horizon.
func (s *Suppressor) SuppressedUntil() float64 { return s.until }

// Attacker is a configured attack program bound to a schedule.
type Attacker struct {
	kind     Kind
	schedule Schedule
	// intensity is the lock duty cycle for BusLock, or the cleansing
	// pressure (target miss-ratio inflation in [0,1]) for LLCCleansing.
	intensity float64
	// accessRate is the attacker's own bus demand in accesses per second
	// while attacking (cleansing issues a storm of accesses).
	accessRate float64
	// ramp is the seconds the attack takes to reach full intensity after
	// (re)activation — the cleansing attack's probing phase, during which
	// the attacker is still locating contested sets. 0 = instant.
	ramp float64
	// bwRate is the MemBandwidth hog's raw stream demand in bytes per
	// second at full duty; readFrac its read share in [0,1] (writes cost
	// more channel time: read-for-ownership + writeback).
	bwRate   float64
	readFrac float64
	// activeSince tracks the current activation edge for ramping.
	activeSince float64
	wasActive   bool
}

// NewBusLock returns a bus locking attacker holding the atomic lock for
// dutyCycle of each second (the paper's attack achieves ~0.6-0.8).
func NewBusLock(schedule Schedule, dutyCycle float64) (*Attacker, error) {
	if dutyCycle <= 0 || dutyCycle > 1 {
		return nil, fmt.Errorf("attack: bus lock duty cycle %v outside (0,1]", dutyCycle)
	}
	if schedule == nil {
		return nil, fmt.Errorf("attack: nil schedule")
	}
	return &Attacker{kind: BusLock, schedule: schedule, intensity: dutyCycle, accessRate: 2e5}, nil
}

// NewLLCCleansing returns an LLC cleansing attacker. pressure in (0,1] is
// the fraction of the victim's resident lines the attacker manages to keep
// evicted (it maps to the victim's miss-ratio inflation); accessRate is the
// attacker's own cleansing access storm in accesses per second.
func NewLLCCleansing(schedule Schedule, pressure, accessRate float64) (*Attacker, error) {
	if pressure <= 0 || pressure > 1 {
		return nil, fmt.Errorf("attack: cleansing pressure %v outside (0,1]", pressure)
	}
	if accessRate < 0 {
		return nil, fmt.Errorf("attack: negative access rate %v", accessRate)
	}
	if schedule == nil {
		return nil, fmt.Errorf("attack: nil schedule")
	}
	return &Attacker{kind: LLCCleansing, schedule: schedule, intensity: pressure, accessRate: accessRate}, nil
}

// NewMemBandwidth returns a DRAM-bandwidth hog: a sequential stream
// demanding bytesPerSec of raw DRAM traffic, with readFrac of it reads
// (the rest read-modify-write), active for dutyCycle of the time while
// the schedule enables it. The duty cycle maps onto the attacker's
// intensity, so ramps and adaptive schedules compose exactly as for the
// other attacks. The hog's stream misses the LLC by construction, so it
// also issues a fixed access storm on the bus/cache side — far smaller
// than the cleansing attack's, which is what lets it fly under
// LLC-centric detectors.
func NewMemBandwidth(schedule Schedule, bytesPerSec, readFrac, dutyCycle float64) (*Attacker, error) {
	if bytesPerSec <= 0 {
		return nil, fmt.Errorf("attack: non-positive stream bandwidth %v", bytesPerSec)
	}
	if readFrac < 0 || readFrac > 1 {
		return nil, fmt.Errorf("attack: read fraction %v outside [0,1]", readFrac)
	}
	if dutyCycle <= 0 || dutyCycle > 1 {
		return nil, fmt.Errorf("attack: duty cycle %v outside (0,1]", dutyCycle)
	}
	if schedule == nil {
		return nil, fmt.Errorf("attack: nil schedule")
	}
	return &Attacker{
		kind:       MemBandwidth,
		schedule:   schedule,
		intensity:  dutyCycle,
		accessRate: 4e5,
		bwRate:     bytesPerSec,
		readFrac:   readFrac,
	}, nil
}

// SetRamp configures a warm-up: after each (re)activation the attack's
// effective intensity rises linearly from 0 to full over ramp seconds,
// modelling the LLC cleansing attack's probing phase (the attacker must
// first find the contested sets). Negative ramps are rejected.
func (a *Attacker) SetRamp(ramp float64) error {
	if ramp < 0 {
		return fmt.Errorf("attack: negative ramp %v", ramp)
	}
	a.ramp = ramp
	return nil
}

// Kind returns the attack mechanism.
func (a *Attacker) Kind() Kind { return a.kind }

// Active reports whether the attack is enabled at time now. Callers that
// use ramping must call Active (or IntensityAt) with non-decreasing times,
// as the simulation loop does, so activation edges are tracked.
func (a *Attacker) Active(now float64) bool {
	active := a.schedule.Active(now)
	if active && !a.wasActive {
		a.activeSince = now
	}
	a.wasActive = active
	return active
}

// Intensity returns the full lock duty cycle (BusLock) or cleansing
// pressure (LLCCleansing), ignoring any ramp.
func (a *Attacker) Intensity() float64 { return a.intensity }

// IntensityAt returns the effective intensity at time now, accounting for
// the post-activation ramp. It returns 0 when the attack is inactive.
func (a *Attacker) IntensityAt(now float64) float64 {
	if !a.Active(now) {
		return 0
	}
	if a.ramp <= 0 {
		return a.intensity
	}
	frac := (now - a.activeSince) / a.ramp
	if frac >= 1 {
		return a.intensity
	}
	return a.intensity * frac
}

// AccessRate returns the attacker's own access demand while attacking.
func (a *Attacker) AccessRate() float64 { return a.accessRate }

// BWRate returns the MemBandwidth hog's raw stream demand in bytes per
// second at full duty (0 for other kinds).
func (a *Attacker) BWRate() float64 { return a.bwRate }

// ReadFraction returns the MemBandwidth hog's read share (0 for other
// kinds).
func (a *Attacker) ReadFraction() float64 { return a.readFrac }

// Schedule returns the attacker's schedule.
func (a *Attacker) Schedule() Schedule { return a.schedule }
