package attack

import (
	"fmt"

	"memdos/internal/cache"
)

// Prober implements the reconnaissance phase of the LLC cleansing attack
// against the cache substrate, using only the architectural interface an
// attacker has (issuing memory accesses and observing its own hits and
// misses — no privileged cache introspection).
//
// The protocol mirrors the paper: the attacker fills a set with its own
// lines, lets the rest of the system run, then re-accesses the same lines.
// If any re-access misses, some other VM touched the set in between and
// evicted attacker lines — the set is contested and worth cleansing.
type Prober struct {
	c     *cache.Cache
	owner cache.Owner
	salt  uint64
}

// NewProber returns a prober that issues accesses as owner on c.
func NewProber(c *cache.Cache, owner cache.Owner) *Prober {
	return &Prober{c: c, owner: owner, salt: 1 << 20}
}

// Fill occupies every way of the given set with attacker-owned lines.
func (p *Prober) Fill(set int) {
	g := p.c.Geometry()
	for w := 0; w < g.Ways; w++ {
		p.c.Access(p.owner, p.c.AddrForSet(set, p.salt+uint64(w)))
	}
}

// Recheck re-accesses the lines placed by the last Fill of the set and
// returns how many of them missed, i.e. how many were evicted by other
// owners in the interim.
func (p *Prober) Recheck(set int) int {
	g := p.c.Geometry()
	misses := 0
	for w := 0; w < g.Ways; w++ {
		if !p.c.Access(p.owner, p.c.AddrForSet(set, p.salt+uint64(w))) {
			misses++
		}
	}
	return misses
}

// FindContested runs the fill/interleave/recheck protocol over every cache
// set. interleave is called between the fill and recheck passes and should
// run the victim's activity (in the live attack this is simply elapsed
// time). Sets with at least minEvictions missing lines are reported.
func (p *Prober) FindContested(interleave func(), minEvictions int) []int {
	if minEvictions < 1 {
		minEvictions = 1
	}
	g := p.c.Geometry()
	for set := 0; set < g.Sets; set++ {
		p.Fill(set)
	}
	if interleave != nil {
		interleave()
	}
	var contested []int
	for set := 0; set < g.Sets; set++ {
		// Fill saturated the set with attacker lines, so any foreign access
		// since then must have evicted one: a set still fully occupied by
		// the prober is untouched, and rechecking it would be Ways all-hit
		// accesses. Skipping those leaves the contested list and all
		// per-set eviction decisions identical while shedding the bulk of
		// the probe's accesses on a mostly-idle cache.
		if p.c.SetOwnerOccupancy(set, p.owner) == g.Ways {
			continue
		}
		if p.Recheck(set) >= minEvictions {
			contested = append(contested, set)
		}
	}
	return contested
}

// Cleanser repeatedly re-fills a target list of contested sets, evicting
// whatever other owners load there. It is the execution phase of the LLC
// cleansing attack in the microsimulation.
type Cleanser struct {
	c       *cache.Cache
	owner   cache.Owner
	targets []int
	salt    uint64
	cursor  int
}

// NewCleanser returns a cleanser for the given target sets. It returns an
// error if there are no targets.
func NewCleanser(c *cache.Cache, owner cache.Owner, targets []int) (*Cleanser, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("attack: cleanser needs at least one target set")
	}
	g := c.Geometry()
	for _, s := range targets {
		if s < 0 || s >= g.Sets {
			return nil, fmt.Errorf("attack: target set %d out of range [0,%d)", s, g.Sets)
		}
	}
	return &Cleanser{c: c, owner: owner, targets: targets, salt: 1 << 30}, nil
}

// Cleanse issues up to budget accesses, walking the target sets round-robin
// and rotating line tags so each visit evicts the set's current contents.
// It returns the number of accesses issued.
func (cl *Cleanser) Cleanse(budget int) int {
	g := cl.c.Geometry()
	issued := 0
	for issued < budget {
		set := cl.targets[cl.cursor%len(cl.targets)]
		cl.cursor++
		for w := 0; w < g.Ways && issued < budget; w++ {
			cl.c.Access(cl.owner, cl.c.AddrForSet(set, cl.salt+uint64(w)))
			issued++
		}
		// Rotate tags every full sweep so re-visits always miss and evict
		// rather than hit on resident attacker lines.
		if cl.cursor%len(cl.targets) == 0 {
			cl.salt += uint64(g.Ways)
		}
	}
	return issued
}

// Targets returns the cleanser's target sets.
func (cl *Cleanser) Targets() []int {
	return append([]int(nil), cl.targets...)
}
