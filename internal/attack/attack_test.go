package attack

import (
	"math"
	"testing"
	"testing/quick"

	"memdos/internal/cache"
	"memdos/internal/sim"
)

func TestKindString(t *testing.T) {
	if BusLock.String() != "bus locking" || LLCCleansing.String() != "LLC cleansing" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestStaticSchedules(t *testing.T) {
	if (Never{}).Active(100) {
		t.Error("Never is active")
	}
	if !(Always{}).Active(0) {
		t.Error("Always is inactive")
	}
	w := Window{Start: 10, End: 20}
	for _, c := range []struct {
		t    float64
		want bool
	}{{5, false}, {10, true}, {15, true}, {20, false}, {25, false}} {
		if got := w.Active(c.t); got != c.want {
			t.Errorf("Window.Active(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	r := sim.NewRNG(1)
	if _, err := NewAdaptive(r, 0, 50); err == nil {
		t.Error("minDur=0 accepted")
	}
	if _, err := NewAdaptive(r, 50, 10); err == nil {
		t.Error("max<min accepted")
	}
}

func TestAdaptiveStartsDisabled(t *testing.T) {
	a, err := NewAdaptive(sim.NewRNG(2), 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Active(0) {
		t.Error("adaptive schedule should start disabled")
	}
	if a.Active(-1) {
		t.Error("negative time should be inactive")
	}
}

func TestAdaptiveTogglesWithinBounds(t *testing.T) {
	a, _ := NewAdaptive(sim.NewRNG(3), 10, 50)
	a.extend(600)
	prev := 0.0
	for _, tg := range a.toggles {
		d := tg - prev
		if d < 10 || d >= 50 {
			t.Fatalf("state duration %v outside [10,50)", d)
		}
		prev = tg
	}
	if len(a.toggles) < 600/50 {
		t.Errorf("too few toggles over 600s: %d", len(a.toggles))
	}
}

func TestAdaptiveWindowsMatchActive(t *testing.T) {
	check := func(seed uint64) bool {
		a, _ := NewAdaptive(sim.NewRNG(seed), 10, 50)
		wins := a.ActiveWindows(600)
		// Sample the schedule and cross-check against the windows.
		for ts := 0.5; ts < 600; ts += 7.3 {
			inWin := false
			for _, w := range wins {
				if w.Active(ts) {
					inWin = true
					break
				}
			}
			if inWin != a.Active(ts) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestAdaptiveWindowsClampedToHorizon(t *testing.T) {
	a, _ := NewAdaptive(sim.NewRNG(4), 10, 50)
	for _, w := range a.ActiveWindows(100) {
		if w.End > 100 || w.Start >= 100 {
			t.Errorf("window %+v exceeds horizon 100", w)
		}
		if w.End <= w.Start {
			t.Errorf("degenerate window %+v", w)
		}
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	a1, _ := NewAdaptive(sim.NewRNG(5), 10, 50)
	a2, _ := NewAdaptive(sim.NewRNG(5), 10, 50)
	for ts := 0.0; ts < 300; ts += 1.7 {
		if a1.Active(ts) != a2.Active(ts) {
			t.Fatalf("same-seed schedules diverge at %v", ts)
		}
	}
}

func TestAttackerConstructors(t *testing.T) {
	if _, err := NewBusLock(Always{}, 0); err == nil {
		t.Error("duty 0 accepted")
	}
	if _, err := NewBusLock(Always{}, 1.5); err == nil {
		t.Error("duty > 1 accepted")
	}
	if _, err := NewBusLock(nil, 0.5); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := NewLLCCleansing(Always{}, 0, 1e6); err == nil {
		t.Error("pressure 0 accepted")
	}
	if _, err := NewLLCCleansing(Always{}, 0.5, -1); err == nil {
		t.Error("negative rate accepted")
	}
	bl, err := NewBusLock(Window{Start: 60, End: 120}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Kind() != BusLock || bl.Intensity() != 0.7 {
		t.Errorf("bus lock attacker = %+v", bl)
	}
	if bl.Active(30) || !bl.Active(90) {
		t.Error("attacker schedule not honored")
	}
	cl, err := NewLLCCleansing(Always{}, 0.6, 3e6)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Kind() != LLCCleansing || cl.AccessRate() != 3e6 {
		t.Errorf("cleansing attacker = %+v", cl)
	}
	if cl.Schedule() == nil {
		t.Error("Schedule() nil")
	}
}

// --- Prober / Cleanser against the cache substrate ---

func microCache() *cache.Cache {
	return cache.MustNew(cache.Geometry{Sets: 32, Ways: 4, LineSize: 64})
}

func TestProberFindsVictimSets(t *testing.T) {
	c := microCache()
	const attacker, victim = 2, 1
	// Victim occupies sets 3, 7, 11 continuously.
	victimTouch := func() {
		for _, set := range []int{3, 7, 11} {
			for w := 0; w < 2; w++ {
				c.Access(victim, c.AddrForSet(set, uint64(w)))
			}
		}
	}
	victimTouch()
	p := NewProber(c, attacker)
	contested := p.FindContested(victimTouch, 1)
	want := map[int]bool{3: true, 7: true, 11: true}
	if len(contested) != 3 {
		t.Fatalf("contested sets = %v, want exactly {3,7,11}", contested)
	}
	for _, s := range contested {
		if !want[s] {
			t.Errorf("false contested set %d", s)
		}
	}
}

func TestProberQuietSystemFindsNothing(t *testing.T) {
	c := microCache()
	p := NewProber(c, 2)
	if contested := p.FindContested(nil, 1); len(contested) != 0 {
		t.Errorf("idle system reported contested sets %v", contested)
	}
}

func TestCleanserEvictsVictim(t *testing.T) {
	c := microCache()
	const attacker, victim = 2, 1
	// Victim loads its working set in sets 0..7.
	var victimAddrs []uint64
	for set := 0; set < 8; set++ {
		for w := 0; w < 3; w++ {
			a := c.AddrForSet(set, uint64(w))
			victimAddrs = append(victimAddrs, a)
			c.Access(victim, a)
		}
	}
	targets := []int{0, 1, 2, 3, 4, 5, 6, 7}
	cl, err := NewCleanser(c, attacker, targets)
	if err != nil {
		t.Fatal(err)
	}
	cl.Cleanse(8 * 4 * 2) // two full sweeps
	c.ResetStats()
	for _, a := range victimAddrs {
		c.Access(victim, a)
	}
	st := c.Stats(victim)
	if st.Misses != st.Accesses {
		t.Errorf("victim re-access: %d/%d misses, want all (cleansed)", st.Misses, st.Accesses)
	}
}

func TestCleanserRepeatSweepsKeepEvicting(t *testing.T) {
	// The salt rotation must make later sweeps evict, not hit.
	c := microCache()
	cl, _ := NewCleanser(c, 2, []int{5})
	cl.Cleanse(4)      // fill set 5
	n := cl.Cleanse(4) // second sweep: must still issue accesses
	if n != 4 {
		t.Errorf("second sweep issued %d", n)
	}
	st := c.Stats(2)
	// With rotating salts, the second sweep misses (and evicts) rather
	// than hitting resident lines.
	if st.Misses < 6 {
		t.Errorf("cleanser misses = %d of %d accesses; salts not rotating", st.Misses, st.Accesses)
	}
}

func TestCleanserValidation(t *testing.T) {
	c := microCache()
	if _, err := NewCleanser(c, 2, nil); err == nil {
		t.Error("empty targets accepted")
	}
	if _, err := NewCleanser(c, 2, []int{999}); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestCleanserBudgetRespected(t *testing.T) {
	c := microCache()
	cl, _ := NewCleanser(c, 2, []int{0, 1})
	if n := cl.Cleanse(13); n != 13 {
		t.Errorf("issued %d, want exactly 13", n)
	}
	if got := c.Stats(2).Accesses; got != 13 {
		t.Errorf("cache saw %d accesses", got)
	}
}

func TestTargetsCopied(t *testing.T) {
	c := microCache()
	cl, _ := NewCleanser(c, 2, []int{0, 1})
	ts := cl.Targets()
	ts[0] = 31
	if cl.Targets()[0] != 0 {
		t.Error("Targets() exposes internal slice")
	}
}

func TestAdaptiveMeanDuration(t *testing.T) {
	// Sanity: mean state duration approaches (10+50)/2 = 30.
	a, _ := NewAdaptive(sim.NewRNG(6), 10, 50)
	a.extend(100000)
	var prev, sum float64
	for _, tg := range a.toggles {
		sum += tg - prev
		prev = tg
	}
	mean := sum / float64(len(a.toggles))
	if math.Abs(mean-30) > 2 {
		t.Errorf("mean duration = %v, want ~30", mean)
	}
}

func TestRampedIntensity(t *testing.T) {
	a, _ := NewBusLock(Window{Start: 100, End: 200}, 0.8)
	if err := a.SetRamp(-1); err == nil {
		t.Error("negative ramp accepted")
	}
	if err := a.SetRamp(10); err != nil {
		t.Fatal(err)
	}
	if got := a.IntensityAt(50); got != 0 {
		t.Errorf("inactive intensity = %v", got)
	}
	if got := a.IntensityAt(100); got != 0 {
		t.Errorf("activation-edge intensity = %v, want 0 (ramp start)", got)
	}
	if got := a.IntensityAt(105); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("mid-ramp intensity = %v, want 0.4", got)
	}
	if got := a.IntensityAt(115); got != 0.8 {
		t.Errorf("post-ramp intensity = %v, want 0.8", got)
	}
	// Full Intensity() is unchanged by the ramp.
	if a.Intensity() != 0.8 {
		t.Error("Intensity() affected by ramp")
	}
}

func TestRampRestartsOnReactivation(t *testing.T) {
	sched, _ := NewSuppressor(Always{})
	a, _ := NewBusLock(sched, 0.6)
	a.SetRamp(10)
	a.IntensityAt(0)
	if got := a.IntensityAt(20); got != 0.6 {
		t.Fatalf("steady intensity = %v", got)
	}
	// Suppress (migration), then reactivate: the ramp must restart.
	sched.Suppress(30)
	if got := a.IntensityAt(25); got != 0 {
		t.Errorf("suppressed intensity = %v", got)
	}
	if got := a.IntensityAt(32); got > 0.13 {
		t.Errorf("re-activation intensity = %v, want ramping from 0", got)
	}
	if got := a.IntensityAt(45); got != 0.6 {
		t.Errorf("re-ramped intensity = %v", got)
	}
}

func TestNoRampIsInstant(t *testing.T) {
	a, _ := NewLLCCleansing(Window{Start: 10, End: 20}, 0.5, 1e6)
	if got := a.IntensityAt(10); got != 0.5 {
		t.Errorf("instant intensity = %v, want 0.5", got)
	}
}

func TestSuppressorValidation(t *testing.T) {
	if _, err := NewSuppressor(nil); err == nil {
		t.Error("nil schedule accepted")
	}
	s, _ := NewSuppressor(Always{})
	s.Suppress(10)
	s.Suppress(5) // never shortens
	if s.SuppressedUntil() != 10 {
		t.Errorf("suppression shortened to %v", s.SuppressedUntil())
	}
}

// TestSuppressorNeverShrinks is the regression test for overlapping
// Suppress calls: an earlier horizon must not re-arm the attack inside a
// longer suppression already in force (two mitigation responses racing —
// e.g. the respond engine migrating twice — must compose to the longer
// window).
func TestSuppressorNeverShrinks(t *testing.T) {
	s, err := NewSuppressor(Always{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Active(0) {
		t.Fatal("unsuppressed attack inactive")
	}
	s.Suppress(100)
	for _, earlier := range []float64{50, 99.999, 0, -10} {
		s.Suppress(earlier)
		if got := s.SuppressedUntil(); got != 100 {
			t.Fatalf("Suppress(%v) shrank horizon to %v", earlier, got)
		}
		if s.Active(99) {
			t.Fatalf("attack re-armed at t=99 after Suppress(%v)", earlier)
		}
	}
	// The window edge is half-open: suppressed strictly before until.
	if s.Active(99.999) || !s.Active(100) {
		t.Errorf("suppression edge wrong: Active(99.999)=%v Active(100)=%v",
			s.Active(99.999), s.Active(100))
	}
	// Extending remains possible after no-op shrink attempts.
	s.Suppress(200)
	if s.Active(150) || !s.Active(200) {
		t.Errorf("extension failed: Active(150)=%v Active(200)=%v", s.Active(150), s.Active(200))
	}
}

func TestNewMemBandwidth(t *testing.T) {
	a, err := NewMemBandwidth(Always{}, 3.2e10, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind() != MemBandwidth {
		t.Fatalf("kind = %v", a.Kind())
	}
	if a.Kind().String() != "DRAM bandwidth" {
		t.Fatalf("kind string = %q", a.Kind().String())
	}
	if a.BWRate() != 3.2e10 || a.ReadFraction() != 0.8 || a.Intensity() != 1.0 {
		t.Fatalf("accessors: bw=%v read=%v duty=%v", a.BWRate(), a.ReadFraction(), a.Intensity())
	}
	if a.AccessRate() <= 0 {
		t.Fatal("hog has no bus-side access storm")
	}
	// Duty cycle flows through IntensityAt (including ramps) like the
	// other attacks.
	if err := a.SetRamp(10); err != nil {
		t.Fatal(err)
	}
	a.Active(0) // activation edge
	if got := a.IntensityAt(5); got <= 0 || got >= 1.0 {
		t.Fatalf("ramped intensity at 5s = %v, want in (0,1)", got)
	}
	if got := a.IntensityAt(20); got != 1.0 {
		t.Fatalf("post-ramp intensity = %v, want 1", got)
	}
	// Other kinds read zero bandwidth accessors.
	bl, err := NewBusLock(Always{}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if bl.BWRate() != 0 || bl.ReadFraction() != 0 {
		t.Fatalf("bus-lock attacker has DRAM fields: %v/%v", bl.BWRate(), bl.ReadFraction())
	}

	bad := [][4]float64{{0, 0.5, 1, 0}, {-1, 0.5, 1, 0}, {1e9, -0.1, 1, 0}, {1e9, 1.1, 1, 0}, {1e9, 0.5, 0, 0}, {1e9, 0.5, 1.5, 0}}
	for i, c := range bad {
		if _, err := NewMemBandwidth(Always{}, c[0], c[1], c[2]); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	if _, err := NewMemBandwidth(nil, 1e9, 0.5, 1); err == nil {
		t.Error("nil schedule accepted")
	}
}
