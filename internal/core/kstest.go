package core

import (
	"fmt"

	"memdos/internal/pcm"
	"memdos/internal/stats"
)

// KSParams are the protocol parameters of the KStest baseline (Zhang et
// al., AsiaCCS'17), with the defaults the paper reuses in Section III-B.
type KSParams struct {
	// WR is the reference-collection window (seconds) during which all
	// other VMs are throttled.
	WR float64
	// WM is the monitored-sample window (seconds).
	WM float64
	// LM is the monitoring interval (seconds) between KS tests.
	LM float64
	// LR is the reference-refresh interval (seconds).
	LR float64
	// Alpha is the KS significance level.
	Alpha float64
	// Consecutive is how many consecutive rejections declare an attack
	// (4 in the original scheme).
	Consecutive int
	// ClearConsecutive is how many consecutive accepting tests withdraw
	// a declared attack (anti-flapping hysteresis; 0 means the same as
	// Consecutive).
	ClearConsecutive int
}

// DefaultKSParams returns the parameter set the paper's Section III-B uses
// to measure the scheme's false positives: W_R = W_M = 1 s, L_M = 2 s,
// L_R = 30 s, 4 consecutive rejections, and an alarm that withdraws on the
// first accepting test (no hysteresis).
func DefaultKSParams() KSParams {
	return KSParams{WR: 1, WM: 1, LM: 2, LR: 30, Alpha: 0.05, Consecutive: 4, ClearConsecutive: 1}
}

// EvaluationKSParams returns the cadence used for the Section VI detector
// comparison: the Section III-B protocol with monitoring rounds every 5 s.
// The paper notes the scheme's throttled reference collection "cannot be
// too frequent as it delays the execution of all applications, which
// indirectly increases the detection delay"; with L_M = 5 s the scheme's
// Fig. 13/14 envelope emerges: 4 consecutive rejections take at least
// 20 s, a rejection streak broken by a reference refresh slips detection
// into the next 30 s cycle (up to ~50 s), and throttling costs
// 1 s per 30 s (~3.3% before the tests' own CPU cost, within the paper's
// 3-8% overhead band).
func EvaluationKSParams() KSParams {
	return KSParams{WR: 1, WM: 1, LM: 5, LR: 30, Alpha: 0.05, Consecutive: 4, ClearConsecutive: 2}
}

// Validate reports whether the parameters are usable.
func (p KSParams) Validate() error {
	switch {
	case p.WR <= 0 || p.WM <= 0:
		return fmt.Errorf("core: KS windows must be positive (WR=%v WM=%v)", p.WR, p.WM)
	case p.LM < p.WM:
		return fmt.Errorf("core: KS monitoring interval LM=%v shorter than WM=%v", p.LM, p.WM)
	case p.LR < p.WR+p.LM:
		return fmt.Errorf("core: KS refresh interval LR=%v too short", p.LR)
	case p.Alpha <= 0 || p.Alpha >= 1:
		return fmt.Errorf("core: KS alpha %v outside (0,1)", p.Alpha)
	case p.Consecutive <= 0:
		return fmt.Errorf("core: KS consecutive threshold %d must be positive", p.Consecutive)
	}
	return nil
}

// Throttle is the hypervisor hook the KStest scheme needs: pause every VM
// except the protected one for dur seconds so reference samples are
// attack-free. It is the source of the scheme's performance overhead.
type Throttle func(dur float64)

// ksPhase is the protocol state.
type ksPhase int

const (
	ksCollectReference ksPhase = iota
	ksIdle
	ksCollectMonitored
)

// KSTestDetector reimplements the baseline detection scheme: periodically
// refresh attack-free reference samples under execution throttling, then
// every L_M seconds collect monitored samples and run a two-sample
// Kolmogorov-Smirnov test per counter channel; Consecutive successive
// rejections on either channel raise the alarm.
type KSTestDetector struct {
	params   KSParams
	throttle Throttle

	phase      ksPhase
	phaseStart float64
	cycleStart float64
	nextTest   float64
	started    bool

	refAccess, refMiss []float64
	monAccess, monMiss []float64

	viol violationCounter
	// clear counts consecutive accepting tests while the alarm is up.
	clear violationCounter
	// alarm latches between tests so per-instant evaluation sees the
	// current belief at every monitoring round.
	alarm bool
}

// NewKSTestDetector returns the baseline detector. throttle may be nil (the
// protocol still runs, but reference samples are then whatever arrives —
// useful for unit tests; experiments always wire the hypervisor hook).
func NewKSTestDetector(params KSParams, throttle Throttle) (*KSTestDetector, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	clearThreshold := params.ClearConsecutive
	if clearThreshold <= 0 {
		clearThreshold = params.Consecutive
	}
	return &KSTestDetector{
		params:   params,
		throttle: throttle,
		viol:     violationCounter{threshold: params.Consecutive},
		clear:    violationCounter{threshold: clearThreshold},
	}, nil
}

// Name returns "KStest".
func (d *KSTestDetector) Name() string { return "KStest" }

// Overhead returns the modelled CPU cost of running repeated KS tests on
// the hypervisor. The dominant cost of the scheme — execution throttling —
// is inflicted physically through the Throttle hook, not via this number.
func (d *KSTestDetector) Overhead() float64 { return 0.02 }

// Push feeds one PCM sample of the protected VM and advances the protocol
// state machine on the sample's timestamp.
func (d *KSTestDetector) Push(s pcm.Sample) []Decision {
	if !d.started {
		d.started = true
		d.beginReference(s.Time)
	}
	// A reference refresh starts as soon as the cycle elapses, but never
	// interrupts an in-flight monitored window (the round's test would be
	// lost).
	if s.Time >= d.cycleStart+d.params.LR && d.phase == ksIdle {
		d.beginReference(s.Time)
	}

	switch d.phase {
	case ksCollectReference:
		d.refAccess = append(d.refAccess, s.AccessNum)
		d.refMiss = append(d.refMiss, s.MissNum)
		if s.Time >= d.phaseStart+d.params.WR {
			d.phase = ksIdle
			d.nextTest = d.phaseStart + d.params.LM
		}
		return nil
	case ksIdle:
		if s.Time >= d.nextTest {
			d.phase = ksCollectMonitored
			d.phaseStart = s.Time
			d.monAccess = d.monAccess[:0]
			d.monMiss = d.monMiss[:0]
		}
		return nil
	case ksCollectMonitored:
		d.monAccess = append(d.monAccess, s.AccessNum)
		d.monMiss = append(d.monMiss, s.MissNum)
		if s.Time < d.phaseStart+d.params.WM {
			return nil
		}
		d.phase = ksIdle
		d.nextTest += d.params.LM
		reject := d.compare()
		if d.viol.observe(reject) {
			d.alarm = true
		}
		// Symmetric hysteresis: a declared attack is withdrawn only
		// after ClearConsecutive accepting tests, so the belief does not
		// flap on single borderline tests. The alarm also latches across
		// reference refreshes (which reset both streaks).
		if d.clear.observe(!reject) {
			d.alarm = false
		}
		return []Decision{{Time: s.Time, Alarm: d.alarm}}
	}
	return nil
}

// beginReference starts a reference-collection window at time now,
// throttling the co-located VMs for W_R seconds.
func (d *KSTestDetector) beginReference(now float64) {
	d.phase = ksCollectReference
	d.phaseStart = now
	d.cycleStart = now
	d.refAccess = d.refAccess[:0]
	d.refMiss = d.refMiss[:0]
	// A fresh reference starts a fresh comparison series: streaks
	// against the old reference do not carry over. (The alarm itself
	// stays latched until enough tests accept again.)
	d.viol.count = 0
	d.clear.count = 0
	if d.throttle != nil {
		d.throttle(d.params.WR)
	}
}

// compare runs the two-sample KS test on both channels and reports whether
// either rejects.
func (d *KSTestDetector) compare() bool {
	if len(d.refAccess) == 0 || len(d.monAccess) == 0 {
		return false
	}
	accRes, err := stats.KSTest(d.refAccess, d.monAccess, d.params.Alpha)
	if err != nil {
		return false
	}
	missRes, err := stats.KSTest(d.refMiss, d.monMiss, d.params.Alpha)
	if err != nil {
		return false
	}
	return accRes.Reject || missRes.Reject
}

// LastTestRejected reports the current consecutive-rejection count, for
// Fig. 1 style diagnostics.
func (d *KSTestDetector) ConsecutiveRejections() int { return d.viol.count }
