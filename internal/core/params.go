// Package core implements the paper's detection schemes: the
// boundary-based statistical detector SDS/B, the period-based detector
// SDS/P for periodic applications, the combined SDS, the KStest baseline of
// Zhang et al. (AsiaCCS'17), and a wrapper turning a trained LSTM-FCN
// cascade into a detector. All of them consume the per-VM PCM sample stream
// and emit boolean attack decisions.
package core

import (
	"fmt"

	"memdos/internal/stats"
)

// Params collects the detection parameters of the paper's Table I.
type Params struct {
	// TPCM is the PCM sampling interval in seconds.
	TPCM float64
	// W is the raw-data window size of the moving average.
	W int
	// DW is the moving-average sliding step size.
	DW int
	// Alpha is the EWMA smoothing factor.
	Alpha float64
	// K is the boundary factor: normal range [mu-K*sigma, mu+K*sigma].
	K float64
	// HC is the consecutive-violation threshold of SDS/B.
	HC int
	// WPFactor sets the SDS/P analysis window W_P = WPFactor * period.
	WPFactor int
	// DWP is the SDS/P sliding step in MA samples.
	DWP int
	// HP is the consecutive period-change threshold of SDS/P.
	HP int
	// HD is the consecutive anomaly-window threshold of the DNN detector.
	HD int
	// PeriodTolerance is the relative deviation beyond which a measured
	// period counts as changed (the paper describes "not the same as the
	// normal period"; a tolerance absorbs estimation jitter).
	PeriodTolerance float64
}

// DefaultParams returns the paper's Table I values.
func DefaultParams() Params {
	return Params{
		TPCM:            0.01,
		W:               200,
		DW:              50,
		Alpha:           0.2,
		K:               1.125,
		HC:              30,
		WPFactor:        2,
		DWP:             10,
		HP:              5,
		HD:              5,
		PeriodTolerance: 0.2,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.TPCM <= 0:
		return fmt.Errorf("core: TPCM %v must be positive", p.TPCM)
	case p.W <= 0 || p.DW <= 0 || p.DW > p.W:
		return fmt.Errorf("core: invalid W=%d, DW=%d", p.W, p.DW)
	case p.Alpha <= 0 || p.Alpha > 1:
		return fmt.Errorf("core: alpha %v outside (0,1]", p.Alpha)
	case p.K <= 0:
		return fmt.Errorf("core: boundary factor %v must be positive", p.K)
	case p.HC <= 0 || p.HP <= 0 || p.HD <= 0:
		return fmt.Errorf("core: thresholds must be positive (HC=%d HP=%d HD=%d)", p.HC, p.HP, p.HD)
	case p.WPFactor < 2:
		return fmt.Errorf("core: WPFactor %d must be at least 2", p.WPFactor)
	case p.DWP <= 0:
		return fmt.Errorf("core: DWP %d must be positive", p.DWP)
	case p.PeriodTolerance <= 0 || p.PeriodTolerance >= 1:
		return fmt.Errorf("core: period tolerance %v outside (0,1)", p.PeriodTolerance)
	}
	return nil
}

// Confidence returns the Chebyshev confidence level implied by K and HC:
// 1 - (1/K^2)^HC (Section IV-B.1). For K <= 1 the bound is vacuous and the
// confidence is 0.
func (p Params) Confidence() float64 {
	if p.K <= 1 {
		return 0
	}
	return 1 - stats.ChebyshevFalseAlarmBound(p.K, p.HC)
}

// MinDetectionDelayB returns SDS/B's analytic minimum detection delay,
// HC * DW * TPCM seconds (Section IV-B.1).
func (p Params) MinDetectionDelayB() float64 {
	return float64(p.HC) * float64(p.DW) * p.TPCM
}

// MinDetectionDelayP returns SDS/P's analytic minimum detection delay,
// HP * DWP * DW * TPCM seconds (Section IV-B.2).
func (p Params) MinDetectionDelayP() float64 {
	return float64(p.HP) * float64(p.DWP) * float64(p.DW) * p.TPCM
}
