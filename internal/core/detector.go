package core

import (
	"memdos/internal/metrics"
	"memdos/internal/pcm"
)

// Decision re-exports metrics.Decision: one dated alarm verdict.
type Decision = metrics.Decision

// Detector is a real-time memory-DoS detection scheme. Implementations
// consume the protected VM's PCM sample stream one sample at a time and
// emit decisions at their own cadence (every DW samples for SDS/B, every
// DWP MA values for SDS/P, every monitoring round for KStest).
type Detector interface {
	// Name identifies the scheme ("SDS/B", "SDS/P", "SDS", "KStest",
	// "DNN").
	Name() string
	// Push feeds one PCM sample and returns any decisions produced.
	Push(s pcm.Sample) []Decision
	// Overhead returns the hypervisor CPU fraction the scheme's
	// processing consumes (the paper's Fig. 14 cost model); execution
	// throttling costs are modelled physically by the hypervisor, not
	// here.
	Overhead() float64
}

// violationCounter tracks consecutive anomaly observations against a
// threshold, the alarm primitive shared by every scheme in the paper
// (H_C, H_P, H_D consecutive anomalies trigger and sustain the alarm).
type violationCounter struct {
	threshold int
	count     int
}

// observe folds one observation in and reports whether the alarm is
// currently raised.
func (v *violationCounter) observe(anomalous bool) bool {
	if anomalous {
		if v.count < v.threshold {
			v.count++
		}
	} else {
		v.count = 0
	}
	return v.count >= v.threshold
}
