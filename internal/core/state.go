package core

import "memdos/internal/dnn"

// This file makes detector pipelines reusable and inspectable: every
// detector in the package implements Resetter (return to the
// just-constructed state, keeping its configuration, profile and trained
// weights) and Snapshotter (a flat numeric view of the mutable state).
// The streaming hub relies on both — Reset lets a session pipeline be
// recycled for a reconnecting VM, StateSnapshot backs the per-session
// inspection endpoint.

// Resetter is implemented by detectors whose internal state can be
// cleared without rebuilding them.
type Resetter interface {
	// Reset returns the detector to its just-constructed state. Static
	// configuration (parameters, profiles, trained weights) is preserved.
	Reset()
}

// Snapshotter is implemented by detectors that can expose their mutable
// state as a flat name → value map. Booleans are encoded as 0/1 and
// enums as their integer value, keeping the map JSON-friendly.
type Snapshotter interface {
	StateSnapshot() map[string]float64
}

// ResetDetector resets d if it supports Resetter and reports whether it
// did.
func ResetDetector(d Detector) bool {
	r, ok := d.(Resetter)
	if ok {
		r.Reset()
	}
	return ok
}

// SnapshotDetector returns d's state snapshot, or nil when d does not
// support Snapshotter.
func SnapshotDetector(d Detector) map[string]float64 {
	if s, ok := d.(Snapshotter); ok {
		return s.StateSnapshot()
	}
	return nil
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Reset clears the violation streak.
func (v *violationCounter) reset() { v.count = 0 }

// Reset returns SDS/B to its just-constructed state; the profile and
// parameters are kept.
func (d *SDSB) Reset() {
	d.accMA.Reset()
	d.missMA.Reset()
	d.accEW.Reset()
	d.missEW.Reset()
	d.accViol.reset()
	d.missViol.reset()
}

// StateSnapshot exposes SDS/B's smoothing state, profiled bounds and
// violation streaks.
func (d *SDSB) StateSnapshot() map[string]float64 {
	accLo, accHi := d.profile.AccessBounds(d.params.K)
	missLo, missHi := d.profile.MissBounds(d.params.K)
	return map[string]float64{
		"access_ewma":       d.accEW.Value(),
		"miss_ewma":         d.missEW.Value(),
		"access_lo":         accLo,
		"access_hi":         accHi,
		"miss_lo":           missLo,
		"miss_hi":           missHi,
		"access_violations": float64(d.accViol.count),
		"miss_violations":   float64(d.missViol.count),
	}
}

// Reset returns SDS/P to its just-constructed state.
func (d *SDSP) Reset() {
	d.ma.Reset()
	d.maHistory = d.maHistory[:0]
	d.sinceEval = 0
	d.viol.reset()
	d.lastPeriod = 0
}

// StateSnapshot exposes SDS/P's period tracking state.
func (d *SDSP) StateSnapshot() map[string]float64 {
	return map[string]float64{
		"last_period":       d.lastPeriod,
		"normal_period":     d.profile.Period,
		"window_fill":       float64(len(d.maHistory)),
		"period_violations": float64(d.viol.count),
	}
}

// Reset returns the combined SDS to its just-constructed state.
func (d *SDS) Reset() {
	d.b.Reset()
	if d.p != nil {
		d.p.Reset()
	}
	d.bAlarm, d.pAlarm = false, false
}

// StateSnapshot merges the sub-schemes' snapshots under b_/p_ prefixes.
func (d *SDS) StateSnapshot() map[string]float64 {
	out := map[string]float64{
		"b_alarm": boolVal(d.bAlarm),
		"p_alarm": boolVal(d.pAlarm),
	}
	for k, v := range d.b.StateSnapshot() {
		out["b_"+k] = v
	}
	if d.p != nil {
		for k, v := range d.p.StateSnapshot() {
			out["p_"+k] = v
		}
	}
	return out
}

// Reset returns SDS/U to its just-constructed (uncalibrated) state: the
// warm-up calibration runs again on the next samples.
func (d *SDSU) Reset() {
	d.utilMA.Reset()
	d.missMA.Reset()
	d.utilEW.Reset()
	d.missEW.Reset()
	d.utilCal = d.utilCal[:0]
	d.missCal = d.missCal[:0]
	d.calibrated = false
	d.utilFloor, d.missCeil = 0, 0
	d.utilViol.reset()
	d.missViol.reset()
}

// StateSnapshot exposes SDS/U's calibration and violation state.
func (d *SDSU) StateSnapshot() map[string]float64 {
	return map[string]float64{
		"calibrated":      boolVal(d.calibrated),
		"util_floor":      d.utilFloor,
		"miss_ceiling":    d.missCeil,
		"util_ewma":       d.utilEW.Value(),
		"miss_ewma":       d.missEW.Value(),
		"util_violations": float64(d.utilViol.count),
		"miss_violations": float64(d.missViol.count),
	}
}

// Reset returns the KStest baseline to its just-constructed state: the
// next sample starts a fresh reference-collection cycle.
func (d *KSTestDetector) Reset() {
	d.phase = ksCollectReference
	d.phaseStart, d.cycleStart, d.nextTest = 0, 0, 0
	d.started = false
	d.refAccess = d.refAccess[:0]
	d.refMiss = d.refMiss[:0]
	d.monAccess = d.monAccess[:0]
	d.monMiss = d.monMiss[:0]
	d.viol.reset()
	d.clear.reset()
	d.alarm = false
}

// StateSnapshot exposes the protocol phase and test streaks.
func (d *KSTestDetector) StateSnapshot() map[string]float64 {
	return map[string]float64{
		"phase":                  float64(d.phase),
		"alarm":                  boolVal(d.alarm),
		"consecutive_rejections": float64(d.viol.count),
		"consecutive_accepts":    float64(d.clear.count),
		"reference_samples":      float64(len(d.refAccess)),
		"monitored_samples":      float64(len(d.monAccess)),
	}
}

// Reset returns the DNN detector to its just-constructed state; the
// trained cascade weights are untouched.
func (d *DNNDetector) Reset() {
	d.buf = d.buf[:0]
	d.sinceEval = 0
	d.viol.reset()
	d.lastApp = -1
	d.lastAttack = dnn.ClassNoAttack
}

// StateSnapshot exposes the window fill and latest classification.
func (d *DNNDetector) StateSnapshot() map[string]float64 {
	return map[string]float64{
		"window_fill":       float64(len(d.buf)),
		"last_app":          float64(d.lastApp),
		"last_attack_class": float64(d.lastAttack),
		"violations":        float64(d.viol.count),
	}
}

// Reset forgets the previous sample.
func (d *RawThreshold) Reset() { d.prev, d.hasPrev = 0, false }

// StateSnapshot exposes the reference sample.
func (d *RawThreshold) StateSnapshot() map[string]float64 {
	return map[string]float64{"prev": d.prev, "has_prev": boolVal(d.hasPrev)}
}

// Reset resets every member implementing Resetter and clears the vote
// state. It reports nothing about members that do not support Reset; use
// ResetDetector per member when that matters.
func (e *Ensemble) Reset() {
	for i, m := range e.members {
		ResetDetector(m)
		e.state[i] = false
		e.decided[i] = false
	}
}

// StateSnapshot exposes each member's latest alarm state.
func (e *Ensemble) StateSnapshot() map[string]float64 {
	out := make(map[string]float64, 2*len(e.members))
	for i, m := range e.members {
		out[m.Name()+"_alarm"] = boolVal(e.state[i])
		out[m.Name()+"_decided"] = boolVal(e.decided[i])
	}
	return out
}
