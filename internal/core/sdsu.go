package core

import (
	"fmt"

	"memdos/internal/pcm"
	"memdos/internal/stats"
)

// SDSU implements the extension sketched in the paper's future work
// (Section VIII): correlating resource utilization with the cache-related
// statistics to handle *dynamic* applications whose counter levels change
// too much for SDS/B's per-application profile.
//
// The scheme is profile-free. It monitors two self-normalizing channels:
//
//   - CPU efficiency (the fraction of CPU time making forward progress
//     rather than stalling on memory — observable by the hypervisor as
//     instructions-per-cycle / steal time). Workload phase changes move the
//     memory demand but keep efficiency high; both memory DoS attacks
//     depress it, because the victim's cycles drain into bus waits or
//     cache-miss stalls.
//   - The LLC miss ratio MissNum/AccessNum, which cleansing inflates
//     regardless of the application's current demand level.
//
// Both channels are smoothed exactly like SDS/B (MA then EWMA), calibrated
// online during a short assumed-safe warm-up, and alarmed after H_C
// consecutive violations.
type SDSU struct {
	params Params
	// util returns the victim's current CPU efficiency in [0, 1].
	util func() float64

	utilMA *stats.MAStream
	missMA *stats.MAStream
	utilEW *stats.EWMAStream
	missEW *stats.EWMAStream

	// Online calibration over the first CalibWindows windows.
	calibWindows int
	utilCal      []float64
	missCal      []float64
	calibrated   bool
	utilFloor    float64
	missCeil     float64

	utilViol violationCounter
	missViol violationCounter
}

// SDSU calibration constants: the warm-up length in MA windows, and the
// violation margins relative to the calibrated levels.
const (
	sdsuCalibWindows = 60 // 30 s at the default DW*TPCM = 0.5 s/window
	sdsuUtilMargin   = 0.85
	sdsuMissMargin   = 2.0
)

// NewSDSU returns the utilization-correlated detector. util must return
// the protected VM's current CPU efficiency; it is sampled once per PCM
// sample.
func NewSDSU(util func() float64, p Params) (*SDSU, error) {
	if util == nil {
		return nil, fmt.Errorf("core: SDSU requires a utilization source")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &SDSU{
		params:       p,
		util:         util,
		utilMA:       stats.NewMAStream(p.W, p.DW),
		missMA:       stats.NewMAStream(p.W, p.DW),
		utilEW:       stats.NewEWMAStream(p.Alpha),
		missEW:       stats.NewEWMAStream(p.Alpha),
		calibWindows: sdsuCalibWindows,
		utilViol:     violationCounter{threshold: p.HC},
		missViol:     violationCounter{threshold: p.HC},
	}, nil
}

// Name returns "SDS/U".
func (d *SDSU) Name() string { return "SDS/U" }

// Overhead returns the modelled CPU cost (comparable to SDS/B's — one
// extra division per sample).
func (d *SDSU) Overhead() float64 { return 0.013 }

// Push feeds one PCM sample; the utilization source is sampled alongside.
func (d *SDSU) Push(s pcm.Sample) []Decision {
	missRatio := 0.0
	if s.AccessNum > 0 {
		missRatio = s.MissNum / s.AccessNum
	}
	uAvg, ok := d.utilMA.Push(d.util())
	mAvg, ok2 := d.missMA.Push(missRatio)
	if !ok || !ok2 {
		return nil
	}
	uE := d.utilEW.Push(uAvg)
	mE := d.missEW.Push(mAvg)

	if !d.calibrated {
		d.utilCal = append(d.utilCal, uE)
		d.missCal = append(d.missCal, mE)
		if len(d.utilCal) >= d.calibWindows {
			uMean, _ := stats.MeanStd(d.utilCal)
			mMean, mStd := stats.MeanStd(d.missCal)
			d.utilFloor = uMean * sdsuUtilMargin
			d.missCeil = mMean*sdsuMissMargin + d.params.K*mStd
			d.calibrated = true
		}
		return []Decision{{Time: s.Time, Alarm: false}}
	}

	utilAlarm := d.utilViol.observe(uE < d.utilFloor)
	missAlarm := d.missViol.observe(mE > d.missCeil)
	return []Decision{{Time: s.Time, Alarm: utilAlarm || missAlarm}}
}

// Calibrated reports whether the warm-up has completed; Thresholds returns
// the calibrated floor/ceiling (0,0 before calibration).
func (d *SDSU) Calibrated() bool { return d.calibrated }

// Thresholds returns the calibrated utilization floor and miss-ratio
// ceiling.
func (d *SDSU) Thresholds() (utilFloor, missCeil float64) {
	return d.utilFloor, d.missCeil
}
