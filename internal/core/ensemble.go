package core

import (
	"fmt"

	"memdos/internal/pcm"
)

// Vote selects how an Ensemble combines member alarms.
type Vote int

// Voting rules.
const (
	// Any alarms when any member alarms (maximizes recall — the paper's
	// Section VII suggests DNN for adaptive attacks; pairing it with SDS
	// under Any keeps SDS's Scenario 1 strengths without losing DNN's
	// responsiveness).
	Any Vote = iota
	// All alarms only when every member agrees (maximizes specificity —
	// the rule SDS itself uses to combine SDS/B and SDS/P).
	All
	// Majority alarms when more than half the members agree.
	Majority
)

// String names the vote rule.
func (v Vote) String() string {
	switch v {
	case Any:
		return "any"
	case All:
		return "all"
	case Majority:
		return "majority"
	default:
		return fmt.Sprintf("Vote(%d)", int(v))
	}
}

// Ensemble combines several detectors into one, implementing the paper's
// Section VII deployment discussion ("when to use SDS and DNN-based
// detection schemes") as a first-class detector: members run side by side
// on the same sample stream and their latest alarm states are combined by
// the vote rule. Decisions are emitted whenever any member decides.
type Ensemble struct {
	members []Detector
	vote    Vote
	state   []bool
	decided []bool
}

// NewEnsemble combines the members under the vote rule.
func NewEnsemble(vote Vote, members ...Detector) (*Ensemble, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("core: ensemble needs at least 2 members, got %d", len(members))
	}
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("core: ensemble member %d is nil", i)
		}
	}
	if vote != Any && vote != All && vote != Majority {
		return nil, fmt.Errorf("core: unknown vote rule %v", vote)
	}
	return &Ensemble{
		members: members,
		vote:    vote,
		state:   make([]bool, len(members)),
		decided: make([]bool, len(members)),
	}, nil
}

// Name lists the members.
func (e *Ensemble) Name() string {
	name := "Ensemble(" + e.vote.String()
	for _, m := range e.members {
		name += "," + m.Name()
	}
	return name + ")"
}

// Overhead sums the members' costs (they all run).
func (e *Ensemble) Overhead() float64 {
	var sum float64
	for _, m := range e.members {
		sum += m.Overhead()
	}
	return sum
}

// Push feeds the sample to every member and combines their latest states.
// No decision is emitted until every member has decided at least once
// (members have different warm-up lengths).
func (e *Ensemble) Push(s pcm.Sample) []Decision {
	produced := false
	for i, m := range e.members {
		if ds := m.Push(s); len(ds) > 0 {
			e.state[i] = ds[len(ds)-1].Alarm
			e.decided[i] = true
			produced = true
		}
	}
	if !produced {
		return nil
	}
	for _, ok := range e.decided {
		if !ok {
			return nil
		}
	}
	alarms := 0
	for _, a := range e.state {
		if a {
			alarms++
		}
	}
	var alarm bool
	switch e.vote {
	case Any:
		alarm = alarms > 0
	case All:
		alarm = alarms == len(e.members)
	case Majority:
		alarm = 2*alarms > len(e.members)
	}
	return []Decision{{Time: s.Time, Alarm: alarm}}
}
