package core

import (
	"fmt"

	"memdos/internal/dnn"
	"memdos/internal/pcm"
)

// DNNDetector wraps a trained LSTM-FCN cascade (Section V) as a real-time
// detector: the raw two-channel sample stream is windowed exactly like
// SDS's input (window W, stride DW), each window is classified by the
// cascade, and H_D consecutive attack classifications raise the alarm.
//
// Unlike SDS, the detector needs no per-application profile: the cascade's
// first stage identifies the application and conditions the attack
// classifier.
type DNNDetector struct {
	cascade *dnn.Cascade
	params  Params

	buf       [][]float64
	sinceEval int
	viol      violationCounter

	lastApp    int
	lastAttack int
}

// NewDNNDetector returns a detector around a trained cascade.
func NewDNNDetector(cascade *dnn.Cascade, p Params) (*DNNDetector, error) {
	if cascade == nil {
		return nil, fmt.Errorf("core: nil cascade")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &DNNDetector{
		cascade:    cascade,
		params:     p,
		viol:       violationCounter{threshold: p.HD},
		lastApp:    -1,
		lastAttack: dnn.ClassNoAttack,
	}, nil
}

// Name returns "DNN".
func (d *DNNDetector) Name() string { return "DNN" }

// Overhead returns the modelled CPU cost of per-window inference (Fig. 14:
// DNN costs 2-5%, above SDS's simple arithmetic).
func (d *DNNDetector) Overhead() float64 { return 0.035 }

// Push feeds one PCM sample; a decision is produced every DW samples once
// a full window is available.
func (d *DNNDetector) Push(s pcm.Sample) []Decision {
	d.buf = append(d.buf, []float64{s.AccessNum, s.MissNum})
	if over := len(d.buf) - d.params.W; over > 0 {
		d.buf = d.buf[over:]
	}
	d.sinceEval++
	if len(d.buf) < d.params.W || d.sinceEval < d.params.DW {
		return nil
	}
	d.sinceEval = 0
	app, attackClass := d.cascade.Classify(d.buf)
	d.lastApp, d.lastAttack = app, attackClass
	alarm := d.viol.observe(attackClass != dnn.ClassNoAttack)
	return []Decision{{Time: s.Time, Alarm: alarm}}
}

// LastClassification returns the most recent (application, attack-class)
// pair, for diagnostics; the application is -1 before the first window.
func (d *DNNDetector) LastClassification() (app, attackClass int) {
	return d.lastApp, d.lastAttack
}
