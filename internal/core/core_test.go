package core

import (
	"math"
	"testing"

	"memdos/internal/attack"
	"memdos/internal/metrics"
	"memdos/internal/pcm"
	"memdos/internal/vmm"
	"memdos/internal/workload"
)

// profileApp runs a clean server for dur seconds and builds the app's
// profile — the "known safe right after VM start" assumption of the paper.
func profileApp(t *testing.T, app string, dur float64, p Params) Profile {
	t.Helper()
	srv := vmm.MustNewServer(vmm.DefaultConfig())
	vm, err := srv.AddApp("victim", workload.MustByAbbrev(app).Service())
	if err != nil {
		t.Fatal(err)
	}
	srv.RunUntil(dur, nil)
	c := srv.Counter(vm.ID())
	prof, err := BuildProfile(c.AccessSeries().Values, c.MissSeries().Values, p)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// runDetector builds a victim+attacker server, streams the victim's PCM
// samples through det, and returns the decision time-line.
func runDetector(t *testing.T, app string, atk *attack.Attacker, dur float64, det Detector) []Decision {
	t.Helper()
	cfg := vmm.DefaultConfig()
	cfg.Seed = 7
	srv := vmm.MustNewServer(cfg)
	victim, err := srv.AddApp("victim", workload.MustByAbbrev(app).Service())
	if err != nil {
		t.Fatal(err)
	}
	if atk != nil {
		if _, err := srv.AddAttacker("attacker", atk); err != nil {
			t.Fatal(err)
		}
	}
	var decisions []Decision
	srv.RunUntil(dur, func(res vmm.StepResult) {
		if s, ok := res.Samples[victim.ID()]; ok {
			decisions = append(decisions, det.Push(s)...)
		}
	})
	return decisions
}

func alarmRate(ds []Decision, from, to float64) float64 {
	n, alarms := 0, 0
	for _, d := range ds {
		if d.Time >= from && d.Time < to {
			n++
			if d.Alarm {
				alarms++
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return float64(alarms) / float64(n)
}

func firstAlarm(ds []Decision) float64 {
	for _, d := range ds {
		if d.Alarm {
			return d.Time
		}
	}
	return math.NaN()
}

func TestParamsDefaultsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table I: k=1.125, HC=30 gives 99.9% confidence.
	if conf := p.Confidence(); conf < 0.999 {
		t.Errorf("confidence = %v, want >= 0.999", conf)
	}
	// Analytic minimum delays: HC*DW*TPCM = 15 s, HP*DWP*DW*TPCM = 25 s.
	if d := p.MinDetectionDelayB(); math.Abs(d-15) > 1e-9 {
		t.Errorf("SDS/B min delay = %v, want 15", d)
	}
	if d := p.MinDetectionDelayP(); math.Abs(d-25) > 1e-9 {
		t.Errorf("SDS/P min delay = %v, want 25", d)
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.TPCM = 0 },
		func(p *Params) { p.W = 0 },
		func(p *Params) { p.DW = p.W + 1 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Alpha = 1.5 },
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.HC = 0 },
		func(p *Params) { p.HP = 0 },
		func(p *Params) { p.WPFactor = 1 },
		func(p *Params) { p.DWP = 0 },
		func(p *Params) { p.PeriodTolerance = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestConfidenceVacuousBelowOne(t *testing.T) {
	p := DefaultParams()
	p.K = 0.9
	if p.Confidence() != 0 {
		t.Error("k<1 should give zero confidence")
	}
}

func TestViolationCounter(t *testing.T) {
	v := violationCounter{threshold: 3}
	if v.observe(true) || v.observe(true) {
		t.Error("alarm before threshold")
	}
	if !v.observe(true) {
		t.Error("no alarm at threshold")
	}
	if !v.observe(true) {
		t.Error("alarm should persist under continued anomalies")
	}
	if v.observe(false) {
		t.Error("alarm should clear on normal observation")
	}
	if v.observe(true) || v.observe(true) {
		t.Error("counter should have reset")
	}
}

func TestBuildProfileValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := BuildProfile(make([]float64, 10), make([]float64, 10), p); err == nil {
		t.Error("short profiling data accepted")
	}
	bad := p
	bad.W = 0
	if _, err := BuildProfile(make([]float64, 300), make([]float64, 300), bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestProfileNonPeriodicApp(t *testing.T) {
	prof := profileApp(t, "KM", 60, DefaultParams())
	if prof.AccessMean <= 0 || prof.AccessStd <= 0 {
		t.Errorf("profile = %+v", prof)
	}
	if prof.Periodic {
		t.Errorf("KM profiled as periodic: %+v", prof)
	}
	lo, hi := prof.AccessBounds(1.125)
	if lo >= hi || lo >= prof.AccessMean || hi <= prof.AccessMean {
		t.Errorf("bounds [%v,%v] around mean %v", lo, hi, prof.AccessMean)
	}
}

func TestProfilePeriodicApp(t *testing.T) {
	prof := profileApp(t, "FN", 90, DefaultParams())
	if !prof.Periodic {
		t.Fatalf("FN not profiled as periodic: %+v", prof)
	}
	if math.Abs(prof.Period-17) > 3 {
		t.Errorf("FN profiled period = %v MA samples, want ~17", prof.Period)
	}
}

func TestSDSBCleanRunQuiet(t *testing.T) {
	p := DefaultParams()
	prof := profileApp(t, "KM", 300, p)
	det, err := NewSDSB(prof, p)
	if err != nil {
		t.Fatal(err)
	}
	ds := runDetector(t, "KM", nil, 300, det)
	if len(ds) == 0 {
		t.Fatal("no decisions")
	}
	if rate := alarmRate(ds, 0, 300); rate > 0.05 {
		t.Errorf("clean-run alarm rate = %v, want <= 0.05", rate)
	}
}

func TestSDSBDetectsBusLock(t *testing.T) {
	p := DefaultParams()
	prof := profileApp(t, "KM", 300, p)
	det, _ := NewSDSB(prof, p)
	atk, _ := attack.NewBusLock(attack.Window{Start: 150, End: 300}, 0.7)
	ds := runDetector(t, "KM", atk, 300, det)
	fa := firstAlarm(ds)
	if math.IsNaN(fa) {
		t.Fatal("bus lock never detected")
	}
	// The analytic minimum is HC*DW*TPCM = 15 s when the violation
	// counter starts empty; pre-charged counters can shave a few seconds.
	delay := fa - 150
	if delay < 5 {
		t.Errorf("delay %v implausibly short", delay)
	}
	if delay > 35 {
		t.Errorf("delay %v too long", delay)
	}
	// Alarm should persist through the attack (recall ~ 1).
	if rate := alarmRate(ds, 190, 300); rate < 0.95 {
		t.Errorf("alarm rate during attack = %v", rate)
	}
	// And be quiet before it.
	if rate := alarmRate(ds, 0, 150); rate > 0.05 {
		t.Errorf("alarm rate before attack = %v", rate)
	}
}

func TestSDSBDetectsCleansing(t *testing.T) {
	p := DefaultParams()
	prof := profileApp(t, "KM", 300, p)
	det, _ := NewSDSB(prof, p)
	atk, _ := attack.NewLLCCleansing(attack.Window{Start: 150, End: 300}, 0.6, 2e6)
	ds := runDetector(t, "KM", atk, 300, det)
	fa := firstAlarm(ds)
	if math.IsNaN(fa) || fa < 150 {
		t.Fatalf("first alarm at %v", fa)
	}
	if rate := alarmRate(ds, 190, 300); rate < 0.95 {
		t.Errorf("alarm rate during cleansing = %v", rate)
	}
}

func TestSDSBRejectsBadProfile(t *testing.T) {
	p := DefaultParams()
	if _, err := NewSDSB(Profile{AccessStd: -1}, p); err == nil {
		t.Error("negative std accepted")
	}
	bad := p
	bad.W = 0
	if _, err := NewSDSB(Profile{}, bad); err == nil {
		t.Error("bad params accepted")
	}
}

func TestSDSPRequiresPeriodicProfile(t *testing.T) {
	if _, err := NewSDSP(Profile{}, DefaultParams()); err == nil {
		t.Error("non-periodic profile accepted")
	}
}

func TestSDSPDetectsAttacksOnFaceNet(t *testing.T) {
	p := DefaultParams()
	prof := profileApp(t, "FN", 90, p)
	for _, tc := range []struct {
		name string
		mk   func() *attack.Attacker
	}{
		{"buslock", func() *attack.Attacker {
			a, _ := attack.NewBusLock(attack.Window{Start: 150, End: 300}, 0.7)
			return a
		}},
		{"cleansing", func() *attack.Attacker {
			a, _ := attack.NewLLCCleansing(attack.Window{Start: 150, End: 300}, 0.6, 2e6)
			return a
		}},
	} {
		det, err := NewSDSP(prof, p)
		if err != nil {
			t.Fatal(err)
		}
		ds := runDetector(t, "FN", tc.mk(), 300, det)
		fa := firstAlarm(ds)
		if math.IsNaN(fa) || fa < 150 {
			t.Errorf("%s: first alarm at %v", tc.name, fa)
			continue
		}
		if rate := alarmRate(ds, 0, 150); rate > 0.1 {
			t.Errorf("%s: pre-attack alarm rate %v", tc.name, rate)
		}
		if rate := alarmRate(ds, 200, 300); rate < 0.8 {
			t.Errorf("%s: during-attack alarm rate %v", tc.name, rate)
		}
	}
}

func TestSDSPCleanRunQuiet(t *testing.T) {
	p := DefaultParams()
	prof := profileApp(t, "FN", 90, p)
	det, _ := NewSDSP(prof, p)
	ds := runDetector(t, "FN", nil, 300, det)
	if rate := alarmRate(ds, 0, 300); rate > 0.1 {
		t.Errorf("clean FN alarm rate = %v", rate)
	}
}

func TestSDSCombined(t *testing.T) {
	p := DefaultParams()
	// Non-periodic app: SDS should behave as SDS/B alone.
	profKM := profileApp(t, "KM", 60, p)
	sdsKM, err := NewSDS(profKM, p)
	if err != nil {
		t.Fatal(err)
	}
	if sdsKM.Periodic() {
		t.Error("SDS engaged SDS/P for KM")
	}
	if sdsKM.Overhead() != sdsKM.b.Overhead() {
		t.Error("non-periodic SDS overhead should equal SDS/B's")
	}
	// Periodic app: both engaged, alarm is the conjunction.
	profFN := profileApp(t, "FN", 90, p)
	sdsFN, err := NewSDS(profFN, p)
	if err != nil {
		t.Fatal(err)
	}
	if !sdsFN.Periodic() {
		t.Fatal("SDS did not engage SDS/P for FN")
	}
	atk, _ := attack.NewBusLock(attack.Window{Start: 150, End: 300}, 0.7)
	ds := runDetector(t, "FN", atk, 300, sdsFN)
	fa := firstAlarm(ds)
	if math.IsNaN(fa) || fa < 150 {
		t.Fatalf("combined SDS first alarm at %v", fa)
	}
	if rate := alarmRate(ds, 0, 150); rate > 0.05 {
		t.Errorf("combined SDS pre-attack alarm rate %v", rate)
	}
	if rate := alarmRate(ds, 200, 300); rate < 0.85 {
		t.Errorf("combined SDS during-attack alarm rate %v", rate)
	}
}

func TestSDSNames(t *testing.T) {
	p := DefaultParams()
	prof := profileApp(t, "KM", 60, p)
	b, _ := NewSDSB(prof, p)
	s, _ := NewSDS(prof, p)
	if b.Name() != "SDS/B" || s.Name() != "SDS" {
		t.Error("names wrong")
	}
	profFN := profileApp(t, "FN", 90, p)
	pd, _ := NewSDSP(profFN, p)
	if pd.Name() != "SDS/P" {
		t.Error("SDS/P name wrong")
	}
}

func TestKSParamsValidation(t *testing.T) {
	if err := DefaultKSParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*KSParams){
		func(p *KSParams) { p.WR = 0 },
		func(p *KSParams) { p.WM = 0 },
		func(p *KSParams) { p.LM = 0.5 },
		func(p *KSParams) { p.LR = 1 },
		func(p *KSParams) { p.Alpha = 0 },
		func(p *KSParams) { p.Consecutive = 0 },
	}
	for i, mutate := range bad {
		p := DefaultKSParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := NewKSTestDetector(KSParams{}, nil); err == nil {
		t.Error("zero params accepted")
	}
}

func TestKSTestThrottlesOnSchedule(t *testing.T) {
	throttles := 0
	det, err := NewKSTestDetector(DefaultKSParams(), func(dur float64) {
		throttles++
		if dur != 1 {
			t.Errorf("throttle duration %v, want 1", dur)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Feed 90 seconds of samples at 10 ms: expect reference collection at
	// t=0, 30, 60 (3 refreshes).
	for i := 1; i <= 9000; i++ {
		det.Push(pcm.Sample{Time: float64(i) * 0.01, AccessNum: 100, MissNum: 10})
	}
	if throttles != 3 {
		t.Errorf("throttled %d times over 90s, want 3 (every LR=30s)", throttles)
	}
}

func TestKSTestStableStreamQuiet(t *testing.T) {
	det, _ := NewKSTestDetector(DefaultKSParams(), nil)
	var ds []Decision
	// Perfectly stationary stream: no alarms.
	for i := 1; i <= 12000; i++ {
		s := pcm.Sample{Time: float64(i) * 0.01, AccessNum: 100 + float64(i%7), MissNum: 10 + float64(i%3)}
		ds = append(ds, det.Push(s)...)
	}
	if len(ds) == 0 {
		t.Fatal("no decisions from KS detector")
	}
	for _, d := range ds {
		if d.Alarm {
			t.Fatalf("false alarm at %v on stationary stream", d.Time)
		}
	}
}

func TestKSTestDetectsLevelShift(t *testing.T) {
	det, _ := NewKSTestDetector(DefaultKSParams(), nil)
	var ds []Decision
	// Shift mid-cycle (references refresh at ~0/30/60/90 s) so the
	// reference stays pre-shift; without throttling a shift landing on a
	// refresh would contaminate the reference.
	for i := 1; i <= 12000; i++ {
		ts := float64(i) * 0.01
		level := 100.0
		if ts >= 70 {
			level = 30 // bus-lock style collapse
		}
		s := pcm.Sample{Time: ts, AccessNum: level + float64(i%7), MissNum: 10}
		ds = append(ds, det.Push(s)...)
	}
	fa := firstAlarm(ds)
	if math.IsNaN(fa) || fa < 70 {
		t.Fatalf("first alarm at %v", fa)
	}
	// The scheme needs 4 consecutive rejections at L_M=2s: >= ~8s delay.
	if fa > 90 {
		t.Errorf("KS detection too slow: %v", fa)
	}
}

func TestKSTestEndToEndDetectsAttack(t *testing.T) {
	// Full pipeline with physical throttling on the server.
	cfg := vmm.DefaultConfig()
	srv := vmm.MustNewServer(cfg)
	victim, _ := srv.AddApp("victim", workload.MustByAbbrev("KM").Service())
	atk, _ := attack.NewBusLock(attack.Window{Start: 150, End: 300}, 0.7)
	srv.AddAttacker("attacker", atk)
	det, _ := NewKSTestDetector(DefaultKSParams(), func(dur float64) {
		srv.ThrottleOthers(victim.ID(), dur)
	})
	var ds []Decision
	srv.RunUntil(300, func(res vmm.StepResult) {
		if s, ok := res.Samples[victim.ID()]; ok {
			ds = append(ds, det.Push(s)...)
		}
	})
	// KStest may raise false positives before the attack (Section III-B
	// measures ~20% for k-means); assert only that the attack itself is
	// detected reasonably promptly and held.
	delays := metrics.DetectionDelay(ds, []metrics.Interval{{Start: 150, End: 300}})
	if math.IsNaN(delays[0]) {
		t.Fatal("attack never detected")
	}
	if delays[0] > 60 {
		t.Errorf("KS end-to-end delay = %v s", delays[0])
	}
	if rate := alarmRate(ds, 220, 300); rate < 0.8 {
		t.Errorf("alarm rate late in attack = %v", rate)
	}
}

func TestDetectionDelayOrdering(t *testing.T) {
	// The paper's Fig. 13 headline: SDS responds faster than KStest.
	// Single runs are noisy (the KS delay depends on where the attack
	// lands in the reference cycle), so compare means over several seeds
	// and attack phases.
	p := DefaultParams()
	prof := profileApp(t, "KM", 300, p)

	mkRun := func(det Detector, seed uint64, start float64) float64 {
		cfg := vmm.DefaultConfig()
		cfg.Seed = seed
		srv := vmm.MustNewServer(cfg)
		victim, _ := srv.AddApp("victim", workload.MustByAbbrev("KM").Service())
		atk, _ := attack.NewBusLock(attack.Window{Start: start, End: start + 200}, 0.7)
		srv.AddAttacker("attacker", atk)
		if ks, ok := det.(*KSTestDetector); ok {
			ks.throttle = func(dur float64) { srv.ThrottleOthers(victim.ID(), dur) }
		}
		var ds []Decision
		srv.RunUntil(start+200, func(res vmm.StepResult) {
			if s, ok := res.Samples[victim.ID()]; ok {
				ds = append(ds, det.Push(s)...)
			}
		})
		return metrics.DetectionDelay(ds, []metrics.Interval{{Start: start, End: start + 200}})[0]
	}

	var sdsDelays, ksDelays []float64
	for i, start := range []float64{143, 150, 167} {
		seed := uint64(11 + i)
		sds, _ := NewSDS(prof, p)
		ks, _ := NewKSTestDetector(EvaluationKSParams(), nil)
		sdsDelays = append(sdsDelays, mkRun(sds, seed, start))
		ksDelays = append(ksDelays, mkRun(ks, seed, start))
	}
	sdsMean, ksMean := metrics.MeanDelay(sdsDelays), metrics.MeanDelay(ksDelays)
	if math.IsNaN(sdsMean) || math.IsNaN(ksMean) {
		t.Fatalf("delays: sds=%v ks=%v", sdsDelays, ksDelays)
	}
	if sdsMean >= ksMean {
		t.Errorf("mean SDS delay %v should beat mean KStest delay %v (%v vs %v)",
			sdsMean, ksMean, sdsDelays, ksDelays)
	}
}
