package core

import (
	"memdos/internal/pcm"
)

// SDS is the combined scheme the paper implements as its prototype
// (Section IV-C): SDS/B alone for non-periodic applications; for periodic
// applications SDS/B and SDS/P run together and the alarm requires both to
// agree, which eliminates false positives either scheme raises alone (the
// paper reports a 3-6% specificity improvement over the individual
// schemes).
type SDS struct {
	b *SDSB
	p *SDSP // nil for non-periodic applications

	bAlarm, pAlarm bool
}

// NewSDS builds the combined detector from an application profile: SDS/P is
// engaged only when the profile is periodic.
func NewSDS(profile Profile, params Params) (*SDS, error) {
	b, err := NewSDSB(profile, params)
	if err != nil {
		return nil, err
	}
	s := &SDS{b: b}
	if profile.Periodic {
		p, err := NewSDSP(profile, params)
		if err != nil {
			return nil, err
		}
		s.p = p
	}
	return s, nil
}

// Name returns "SDS".
func (d *SDS) Name() string { return "SDS" }

// Overhead returns the modelled CPU cost: SDS/B's, plus SDS/P's when it is
// engaged (the paper's Fig. 14 shows SDS costing 1-2%).
func (d *SDS) Overhead() float64 {
	if d.p != nil {
		// The two share the MA pipeline; the combined cost is below the
		// sum of the parts.
		return 0.018
	}
	return d.b.Overhead()
}

// Periodic reports whether SDS/P is engaged.
func (d *SDS) Periodic() bool { return d.p != nil }

// Push feeds one PCM sample to both sub-schemes. Decisions follow SDS/B's
// cadence (every DW samples); for periodic applications a decision's alarm
// state is the conjunction of SDS/B's and SDS/P's current states.
func (d *SDS) Push(s pcm.Sample) []Decision {
	bd := d.b.Push(s)
	if len(bd) > 0 {
		d.bAlarm = bd[len(bd)-1].Alarm
	}
	if d.p != nil {
		if pd := d.p.Push(s); len(pd) > 0 {
			d.pAlarm = pd[len(pd)-1].Alarm
		}
	}
	if len(bd) == 0 {
		return nil
	}
	alarm := d.bAlarm
	if d.p != nil {
		alarm = d.bAlarm && d.pAlarm
	}
	return []Decision{{Time: s.Time, Alarm: alarm}}
}
