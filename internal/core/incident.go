package core

import "fmt"

// Incident is one contiguous alarm episode reconstructed from a decision
// time-line: the operational unit a cloud provider acts on (ticket, VM
// migration, tenant notification).
type Incident struct {
	// Start is the first alarming decision's timestamp; End the first
	// non-alarming decision after it (or the final decision time for a
	// still-open incident).
	Start, End float64
	// Open reports an incident still alarming at the end of the stream.
	Open bool
}

// Duration returns the incident length in seconds.
func (in Incident) Duration() float64 { return in.End - in.Start }

// String formats the incident compactly.
func (in Incident) String() string {
	state := "closed"
	if in.Open {
		state = "open"
	}
	return fmt.Sprintf("[%.1f, %.1f) %s", in.Start, in.End, state)
}

// Incidents folds a decision time-line into alarm episodes. Decisions must
// be in chronological order (as every detector in this package emits
// them); out-of-order input returns an error.
func Incidents(decisions []Decision) ([]Incident, error) {
	var out []Incident
	var cur *Incident
	last := -1.0
	for _, d := range decisions {
		if d.Time < last {
			return nil, fmt.Errorf("core: decisions out of order at t=%v", d.Time)
		}
		last = d.Time
		switch {
		case d.Alarm && cur == nil:
			out = append(out, Incident{Start: d.Time, End: d.Time, Open: true})
			cur = &out[len(out)-1]
		case d.Alarm && cur != nil:
			cur.End = d.Time
		case !d.Alarm && cur != nil:
			cur.End = d.Time
			cur.Open = false
			cur = nil
		}
	}
	return out, nil
}

// MergeIncidents joins incidents separated by gaps of at most maxGap
// seconds — useful when a detector's alarm flaps briefly mid-attack and
// the operator wants one ticket, not three.
func MergeIncidents(incidents []Incident, maxGap float64) []Incident {
	if len(incidents) == 0 {
		return nil
	}
	out := []Incident{incidents[0]}
	for _, in := range incidents[1:] {
		lastIdx := len(out) - 1
		if in.Start-out[lastIdx].End <= maxGap {
			out[lastIdx].End = in.End
			out[lastIdx].Open = in.Open
			continue
		}
		out = append(out, in)
	}
	return out
}
