package core

import (
	"math"
	"reflect"
	"testing"

	"memdos/internal/dnn"
	"memdos/internal/pcm"
	"memdos/internal/sim"
)

// stateSamples is a deterministic stream: clean sinusoid around the
// synthetic profile, then a bus-locking style AccessNum collapse.
func stateSamples(n int) []pcm.Sample {
	r := sim.NewRNG(42)
	out := make([]pcm.Sample, n)
	for i := range out {
		access := 100 + 10*math.Sin(2*math.Pi*float64(i)/10) + r.Float64()
		miss := 10 + r.Float64()
		if i >= n/2 {
			access *= 0.3
		}
		out[i] = pcm.Sample{Time: 0.01 * float64(i+1), AccessNum: access, MissNum: miss}
	}
	return out
}

func stateParams() Params {
	p := DefaultParams()
	p.W, p.DW, p.HC, p.HP, p.HD, p.DWP = 20, 10, 2, 1, 1, 1
	return p
}

func replayAll(d Detector, samples []pcm.Sample) []Decision {
	var out []Decision
	for _, s := range samples {
		out = append(out, d.Push(s)...)
	}
	return out
}

// checkResetEquivalence verifies the Resetter contract: after Reset, the
// detector's output on a stream equals a freshly built detector's.
func checkResetEquivalence(t *testing.T, name string, build func() Detector, samples []pcm.Sample) {
	t.Helper()
	d := build()
	first := replayAll(d, samples)
	if len(first) == 0 {
		t.Fatalf("%s: stream produced no decisions", name)
	}
	if !ResetDetector(d) {
		t.Fatalf("%s does not implement Resetter", name)
	}
	second := replayAll(d, samples)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("%s: post-Reset decisions diverge (%d vs %d)", name, len(first), len(second))
	}
	fresh := replayAll(build(), samples)
	if !reflect.DeepEqual(first, fresh) {
		t.Errorf("%s: fresh-build decisions diverge", name)
	}
	if snap := SnapshotDetector(d); snap == nil || len(snap) == 0 {
		t.Errorf("%s: no state snapshot", name)
	}
}

func TestResetAndSnapshotAllDetectors(t *testing.T) {
	p := stateParams()
	prof := Profile{AccessMean: 100, AccessStd: 8, MissMean: 10, MissStd: 2}
	periodic := prof
	periodic.Periodic = true
	periodic.Period = 1 // MA of a period-10 sinusoid at W=20,DW=10
	samples := stateSamples(1600)

	rng := sim.NewRNG(7)
	cascade, err := dnn.NewCascade(2, dnn.CompactLSTMFCNConfig, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Untrained cascade: supply an identity normalization so Classify runs.
	cascade.Norm = dnn.ChannelNorm{Mean: []float64{0, 0}, Std: []float64{1, 1}}

	cases := []struct {
		name  string
		build func() Detector
	}{
		{"SDS/B", func() Detector { d, _ := NewSDSB(prof, p); return d }},
		{"SDS/P", func() Detector { d, _ := NewSDSP(periodic, p); return d }},
		{"SDS", func() Detector { d, _ := NewSDS(periodic, p); return d }},
		{"SDS/U", func() Detector { d, _ := NewSDSU(func() float64 { return 0.9 }, p); return d }},
		{"KStest", func() Detector { d, _ := NewKSTestDetector(DefaultKSParams(), nil); return d }},
		{"DNN", func() Detector { d, _ := NewDNNDetector(cascade, p); return d }},
		{"RawThreshold", func() Detector { d, _ := NewRawThreshold(0.5); return d }},
		{"Ensemble", func() Detector {
			a, _ := NewRawThreshold(0.5)
			b, _ := NewSDSB(prof, p)
			e, _ := NewEnsemble(Any, a, b)
			return e
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkResetEquivalence(t, tc.name, tc.build, samples)
		})
	}
}

func TestSnapshotContents(t *testing.T) {
	p := stateParams()
	prof := Profile{AccessMean: 100, AccessStd: 8, MissMean: 10, MissStd: 2}
	d, err := NewSDSB(prof, p)
	if err != nil {
		t.Fatal(err)
	}
	samples := stateSamples(1600)
	replayAll(d, samples)
	snap := d.StateSnapshot()
	lo, hi := prof.AccessBounds(p.K)
	if snap["access_lo"] != lo || snap["access_hi"] != hi {
		t.Errorf("bounds in snapshot = %v/%v, want %v/%v", snap["access_lo"], snap["access_hi"], lo, hi)
	}
	// The attacked tail keeps the EWMA below the floor: the violation
	// streak must sit at its cap.
	if snap["access_violations"] != float64(p.HC) {
		t.Errorf("access_violations = %v, want %v", snap["access_violations"], p.HC)
	}
	if snap["access_ewma"] >= lo {
		t.Errorf("access_ewma = %v, want < %v under attack", snap["access_ewma"], lo)
	}

	ks, _ := NewKSTestDetector(DefaultKSParams(), nil)
	replayAll(ks, samples)
	ksSnap := ks.StateSnapshot()
	for _, key := range []string{"phase", "alarm", "consecutive_rejections", "reference_samples"} {
		if _, ok := ksSnap[key]; !ok {
			t.Errorf("KStest snapshot missing %q: %v", key, ksSnap)
		}
	}
}
