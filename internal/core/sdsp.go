package core

import (
	"fmt"
	"math"

	"memdos/internal/pcm"
	"memdos/internal/period"
	"memdos/internal/stats"
)

// SDSP is the Period-based Statistical Detection Scheme for periodic
// applications (Section IV-B.2).
//
// It maintains the moving average of the AccessNum channel and, every DWP
// new MA values, estimates the period of the latest W_P = WPFactor*p MA
// values with the DFT-ACF method. H_P consecutive estimates that deviate
// from the profiled normal period (or fail to find a period at all) raise
// the alarm — capturing the paper's Observation (2) that both attacks
// prolong the victim's period.
type SDSP struct {
	params  Params
	profile Profile

	ma        *stats.MAStream
	maHistory []float64
	sinceEval int

	estimator *period.Estimator
	viol      violationCounter

	lastPeriod float64
	overhead   float64
}

// NewSDSP returns an SDS/P detector. The profile must be periodic.
func NewSDSP(profile Profile, p Params) (*SDSP, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !profile.Periodic || profile.Period <= 0 {
		return nil, fmt.Errorf("core: SDS/P requires a periodic profile (got %+v)", profile)
	}
	return &SDSP{
		params:    p,
		profile:   profile,
		ma:        stats.NewMAStream(p.W, p.DW),
		estimator: period.NewEstimator(period.DefaultEstimatorConfig()),
		viol:      violationCounter{threshold: p.HP},
		overhead:  0.015,
	}, nil
}

// Name returns "SDS/P".
func (d *SDSP) Name() string { return "SDS/P" }

// Overhead returns the modelled CPU cost (slightly above SDS/B's: the
// DFT-ACF recomputation is the scheme's dominant cost).
func (d *SDSP) Overhead() float64 { return d.overhead }

// windowSize returns W_P in MA samples.
func (d *SDSP) windowSize() int {
	wp := int(math.Round(float64(d.params.WPFactor) * d.profile.Period))
	if wp < 8 {
		wp = 8
	}
	return wp
}

// Push feeds one PCM sample. A decision is produced each time DWP new MA
// values have accumulated and a full W_P window is available.
func (d *SDSP) Push(s pcm.Sample) []Decision {
	avg, ok := d.ma.Push(s.AccessNum)
	if !ok {
		return nil
	}
	wp := d.windowSize()
	d.maHistory = append(d.maHistory, avg)
	if over := len(d.maHistory) - wp; over > 0 {
		d.maHistory = d.maHistory[over:]
	}
	d.sinceEval++
	if d.sinceEval < d.params.DWP || len(d.maHistory) < wp {
		return nil
	}
	d.sinceEval = 0

	est := d.estimator.Estimate(d.maHistory)
	deviant := true
	if est.Periodic {
		d.lastPeriod = est.Period
		rel := math.Abs(est.Period-d.profile.Period) / d.profile.Period
		deviant = rel > d.params.PeriodTolerance
	} else {
		d.lastPeriod = 0
	}
	alarm := d.viol.observe(deviant)
	return []Decision{{Time: s.Time, Alarm: alarm}}
}

// LastPeriod returns the most recent period estimate in MA samples (0 when
// the last window showed no credible period), for Fig. 8 style plots.
func (d *SDSP) LastPeriod() float64 { return d.lastPeriod }
