package core

import (
	"testing"
	"testing/quick"

	"memdos/internal/sim"
)

func decisions(pairs ...interface{}) []Decision {
	var out []Decision
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Decision{Time: pairs[i].(float64), Alarm: pairs[i+1].(bool)})
	}
	return out
}

func TestIncidentsBasic(t *testing.T) {
	ds := decisions(
		1.0, false,
		2.0, true,
		3.0, true,
		4.0, false,
		5.0, false,
		6.0, true,
	)
	incs, err := Incidents(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 2 {
		t.Fatalf("incidents = %v", incs)
	}
	if incs[0].Start != 2 || incs[0].End != 4 || incs[0].Open {
		t.Errorf("first incident = %+v", incs[0])
	}
	if incs[1].Start != 6 || !incs[1].Open {
		t.Errorf("second incident = %+v", incs[1])
	}
	if incs[0].Duration() != 2 {
		t.Errorf("duration = %v", incs[0].Duration())
	}
	if incs[0].String() == "" || incs[1].String() == "" {
		t.Error("empty String()")
	}
}

func TestIncidentsEmptyAndQuiet(t *testing.T) {
	if incs, err := Incidents(nil); err != nil || len(incs) != 0 {
		t.Errorf("nil decisions: %v, %v", incs, err)
	}
	quiet := decisions(1.0, false, 2.0, false)
	if incs, _ := Incidents(quiet); len(incs) != 0 {
		t.Errorf("quiet stream produced incidents %v", incs)
	}
}

func TestIncidentsOutOfOrder(t *testing.T) {
	ds := decisions(2.0, true, 1.0, false)
	if _, err := Incidents(ds); err == nil {
		t.Error("out-of-order decisions accepted")
	}
}

func TestMergeIncidents(t *testing.T) {
	incs := []Incident{
		{Start: 10, End: 20},
		{Start: 22, End: 30},   // 2s gap: merge at maxGap>=2
		{Start: 100, End: 110}, // far: never merged
	}
	merged := MergeIncidents(incs, 5)
	if len(merged) != 2 {
		t.Fatalf("merged = %v", merged)
	}
	if merged[0].Start != 10 || merged[0].End != 30 {
		t.Errorf("merged[0] = %+v", merged[0])
	}
	// With zero gap tolerance nothing merges.
	if got := MergeIncidents(incs, 0); len(got) != 3 {
		t.Errorf("maxGap=0 merged to %v", got)
	}
	if MergeIncidents(nil, 1) != nil {
		t.Error("nil incidents should merge to nil")
	}
}

func TestIncidentsCoverAlarms(t *testing.T) {
	// Property: every alarming decision falls inside some incident, and
	// incidents never overlap.
	check := func(seed uint64) bool {
		r := newTestRNG(seed)
		var ds []Decision
		tm := 0.0
		for i := 0; i < 100; i++ {
			tm += 0.5
			ds = append(ds, Decision{Time: tm, Alarm: r.Bool(0.3)})
		}
		incs, err := Incidents(ds)
		if err != nil {
			return false
		}
		for _, d := range ds {
			if !d.Alarm {
				continue
			}
			inside := false
			for _, in := range incs {
				if d.Time >= in.Start && (d.Time <= in.End || in.Open) {
					inside = true
					break
				}
			}
			if !inside {
				return false
			}
		}
		for i := 1; i < len(incs); i++ {
			if incs[i].Start < incs[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// newTestRNG avoids importing sim at every call site in this file.
func newTestRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed) }

func TestIncidentsAllAlarm(t *testing.T) {
	// A stream that alarms on every decision is one incident, still open,
	// spanning first to last decision.
	ds := decisions(1.0, true, 2.0, true, 3.0, true, 4.0, true)
	incs, err := Incidents(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 1 {
		t.Fatalf("all-alarm stream: %v", incs)
	}
	if incs[0].Start != 1 || incs[0].End != 4 || !incs[0].Open {
		t.Errorf("all-alarm incident = %+v", incs[0])
	}
}

func TestIncidentsSingleAlarm(t *testing.T) {
	// One alarming decision with nothing after it: a zero-duration open
	// incident, not a lost alarm.
	incs, err := Incidents(decisions(1.0, false, 2.0, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 1 || incs[0].Start != 2 || incs[0].End != 2 || !incs[0].Open {
		t.Fatalf("single-alarm incidents = %v", incs)
	}
	if incs[0].Duration() != 0 {
		t.Errorf("duration = %v", incs[0].Duration())
	}
}

func TestMergeIncidentsEdgeCases(t *testing.T) {
	// Empty (non-nil) input behaves like nil.
	if got := MergeIncidents([]Incident{}, 5); got != nil {
		t.Errorf("empty slice merged to %v", got)
	}

	// maxGap=0 still merges back-to-back episodes (gap exactly zero).
	touching := []Incident{{Start: 1, End: 2}, {Start: 2, End: 3}}
	if got := MergeIncidents(touching, 0); len(got) != 1 || got[0].Start != 1 || got[0].End != 3 {
		t.Errorf("touching episodes at maxGap=0: %v", got)
	}

	// A chain of small gaps collapses transitively into one incident.
	chain := []Incident{
		{Start: 0, End: 10},
		{Start: 11, End: 20},
		{Start: 21, End: 30},
		{Start: 31, End: 40},
	}
	if got := MergeIncidents(chain, 1); len(got) != 1 || got[0].Start != 0 || got[0].End != 40 {
		t.Errorf("chain merge: %v", got)
	}

	// An open trailing incident keeps its Open flag through a merge...
	open := []Incident{{Start: 0, End: 5}, {Start: 6, End: 9, Open: true}}
	got := MergeIncidents(open, 2)
	if len(got) != 1 || !got[0].Open || got[0].End != 9 {
		t.Errorf("open trailing merge: %v", got)
	}
	// ...and a closed trailing incident clears it.
	closed := []Incident{{Start: 0, End: 5, Open: true}, {Start: 6, End: 9}}
	if got := MergeIncidents(closed, 2); len(got) != 1 || got[0].Open {
		t.Errorf("closed trailing merge: %v", got)
	}

	// Merging must not mutate the input slice.
	orig := []Incident{{Start: 0, End: 1}, {Start: 2, End: 3}}
	MergeIncidents(orig, 10)
	if orig[0].End != 1 {
		t.Errorf("input mutated: %v", orig)
	}
}
