package core

import (
	"testing"
	"testing/quick"

	"memdos/internal/sim"
)

func decisions(pairs ...interface{}) []Decision {
	var out []Decision
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Decision{Time: pairs[i].(float64), Alarm: pairs[i+1].(bool)})
	}
	return out
}

func TestIncidentsBasic(t *testing.T) {
	ds := decisions(
		1.0, false,
		2.0, true,
		3.0, true,
		4.0, false,
		5.0, false,
		6.0, true,
	)
	incs, err := Incidents(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 2 {
		t.Fatalf("incidents = %v", incs)
	}
	if incs[0].Start != 2 || incs[0].End != 4 || incs[0].Open {
		t.Errorf("first incident = %+v", incs[0])
	}
	if incs[1].Start != 6 || !incs[1].Open {
		t.Errorf("second incident = %+v", incs[1])
	}
	if incs[0].Duration() != 2 {
		t.Errorf("duration = %v", incs[0].Duration())
	}
	if incs[0].String() == "" || incs[1].String() == "" {
		t.Error("empty String()")
	}
}

func TestIncidentsEmptyAndQuiet(t *testing.T) {
	if incs, err := Incidents(nil); err != nil || len(incs) != 0 {
		t.Errorf("nil decisions: %v, %v", incs, err)
	}
	quiet := decisions(1.0, false, 2.0, false)
	if incs, _ := Incidents(quiet); len(incs) != 0 {
		t.Errorf("quiet stream produced incidents %v", incs)
	}
}

func TestIncidentsOutOfOrder(t *testing.T) {
	ds := decisions(2.0, true, 1.0, false)
	if _, err := Incidents(ds); err == nil {
		t.Error("out-of-order decisions accepted")
	}
}

func TestMergeIncidents(t *testing.T) {
	incs := []Incident{
		{Start: 10, End: 20},
		{Start: 22, End: 30},   // 2s gap: merge at maxGap>=2
		{Start: 100, End: 110}, // far: never merged
	}
	merged := MergeIncidents(incs, 5)
	if len(merged) != 2 {
		t.Fatalf("merged = %v", merged)
	}
	if merged[0].Start != 10 || merged[0].End != 30 {
		t.Errorf("merged[0] = %+v", merged[0])
	}
	// With zero gap tolerance nothing merges.
	if got := MergeIncidents(incs, 0); len(got) != 3 {
		t.Errorf("maxGap=0 merged to %v", got)
	}
	if MergeIncidents(nil, 1) != nil {
		t.Error("nil incidents should merge to nil")
	}
}

func TestIncidentsCoverAlarms(t *testing.T) {
	// Property: every alarming decision falls inside some incident, and
	// incidents never overlap.
	check := func(seed uint64) bool {
		r := newTestRNG(seed)
		var ds []Decision
		tm := 0.0
		for i := 0; i < 100; i++ {
			tm += 0.5
			ds = append(ds, Decision{Time: tm, Alarm: r.Bool(0.3)})
		}
		incs, err := Incidents(ds)
		if err != nil {
			return false
		}
		for _, d := range ds {
			if !d.Alarm {
				continue
			}
			inside := false
			for _, in := range incs {
				if d.Time >= in.Start && (d.Time <= in.End || in.Open) {
					inside = true
					break
				}
			}
			if !inside {
				return false
			}
		}
		for i := 1; i < len(incs); i++ {
			if incs[i].Start < incs[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// newTestRNG avoids importing sim at every call site in this file.
func newTestRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed) }
