package core

import (
	"testing"

	"memdos/internal/pcm"
)

// scriptedDetector emits a fixed alarm sequence, one decision per push.
type scriptedDetector struct {
	name   string
	alarms []bool
	i      int
	// warmup pushes produce no decision.
	warmup int
}

func (d *scriptedDetector) Name() string      { return d.name }
func (d *scriptedDetector) Overhead() float64 { return 0.01 }
func (d *scriptedDetector) Push(s pcm.Sample) []Decision {
	if d.warmup > 0 {
		d.warmup--
		return nil
	}
	a := false
	if d.i < len(d.alarms) {
		a = d.alarms[d.i]
		d.i++
	}
	return []Decision{{Time: s.Time, Alarm: a}}
}

func pushN(t *testing.T, e *Ensemble, n int) []Decision {
	t.Helper()
	var out []Decision
	for i := 0; i < n; i++ {
		out = append(out, e.Push(pcm.Sample{Time: float64(i)})...)
	}
	return out
}

func TestEnsembleValidation(t *testing.T) {
	d := &scriptedDetector{name: "a"}
	if _, err := NewEnsemble(Any, d); err == nil {
		t.Error("single member accepted")
	}
	if _, err := NewEnsemble(Any, d, nil); err == nil {
		t.Error("nil member accepted")
	}
	if _, err := NewEnsemble(Vote(9), d, &scriptedDetector{name: "b"}); err == nil {
		t.Error("unknown vote accepted")
	}
}

func TestEnsembleVoteRules(t *testing.T) {
	mk := func(vote Vote) *Ensemble {
		a := &scriptedDetector{name: "a", alarms: []bool{true, true, false, false}}
		b := &scriptedDetector{name: "b", alarms: []bool{true, false, true, false}}
		c := &scriptedDetector{name: "c", alarms: []bool{true, false, false, false}}
		e, err := NewEnsemble(vote, a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	wants := map[Vote][]bool{
		Any:      {true, true, true, false},
		All:      {true, false, false, false},
		Majority: {true, false, false, false},
	}
	for vote, want := range wants {
		ds := pushN(t, mk(vote), 4)
		if len(ds) != 4 {
			t.Fatalf("%v: %d decisions", vote, len(ds))
		}
		for i := range want {
			if ds[i].Alarm != want[i] {
				t.Errorf("%v decision %d = %v, want %v", vote, i, ds[i].Alarm, want[i])
			}
		}
	}
	// Majority with 2-of-3 alarming.
	a := &scriptedDetector{name: "a", alarms: []bool{true}}
	b := &scriptedDetector{name: "b", alarms: []bool{true}}
	c := &scriptedDetector{name: "c", alarms: []bool{false}}
	e, _ := NewEnsemble(Majority, a, b, c)
	if ds := pushN(t, e, 1); !ds[0].Alarm {
		t.Error("2-of-3 majority should alarm")
	}
}

func TestEnsembleWaitsForAllMembers(t *testing.T) {
	fast := &scriptedDetector{name: "fast", alarms: []bool{true, true, true}}
	slow := &scriptedDetector{name: "slow", alarms: []bool{true, true}, warmup: 1}
	e, err := NewEnsemble(Any, fast, slow)
	if err != nil {
		t.Fatal(err)
	}
	ds := pushN(t, e, 3)
	// First push: only fast decided -> no ensemble decision.
	if len(ds) != 2 {
		t.Fatalf("decisions = %d, want 2 (first push swallowed by warm-up)", len(ds))
	}
}

func TestEnsembleNameAndOverhead(t *testing.T) {
	a := &scriptedDetector{name: "A"}
	b := &scriptedDetector{name: "B"}
	e, _ := NewEnsemble(All, a, b)
	if e.Name() != "Ensemble(all,A,B)" {
		t.Errorf("name = %q", e.Name())
	}
	if e.Overhead() != 0.02 {
		t.Errorf("overhead = %v", e.Overhead())
	}
	if Any.String() != "any" || All.String() != "all" || Majority.String() != "majority" {
		t.Error("vote names wrong")
	}
	if Vote(9).String() == "" {
		t.Error("unknown vote should format")
	}
}
