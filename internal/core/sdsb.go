package core

import (
	"fmt"

	"memdos/internal/pcm"
	"memdos/internal/stats"
)

// SDSB is the Boundary-based Statistical Detection Scheme (Section IV-B.1).
//
// It smooths each counter channel with a sliding-window moving average
// followed by an EWMA, and checks every EWMA value against the profiled
// normal range [mu_E - k*sigma_E, mu_E + k*sigma_E]. H_C consecutive
// out-of-range values raise the alarm; by Chebyshev's inequality the
// false-alarm probability is bounded by (1/k^2)^H_C regardless of the
// application's counter distribution.
//
// Both channels are monitored because the two attacks leave different
// footprints: bus locking depresses AccessNum, LLC cleansing inflates
// MissNum. An excursion on either channel is anomalous.
type SDSB struct {
	params  Params
	profile Profile

	accMA  *stats.MAStream
	missMA *stats.MAStream
	accEW  *stats.EWMAStream
	missEW *stats.EWMAStream

	accViol  violationCounter
	missViol violationCounter

	// overhead is the modelled hypervisor CPU cost of the EWMA/bounds
	// arithmetic (Fig. 14: SDS costs 1-2%).
	overhead float64
}

// NewSDSB returns an SDS/B detector for an application with the given
// attack-free profile.
func NewSDSB(profile Profile, p Params) (*SDSB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if profile.AccessStd < 0 || profile.MissStd < 0 {
		return nil, fmt.Errorf("core: negative profile deviations %+v", profile)
	}
	return &SDSB{
		params:   p,
		profile:  profile,
		accMA:    stats.NewMAStream(p.W, p.DW),
		missMA:   stats.NewMAStream(p.W, p.DW),
		accEW:    stats.NewEWMAStream(p.Alpha),
		missEW:   stats.NewEWMAStream(p.Alpha),
		accViol:  violationCounter{threshold: p.HC},
		missViol: violationCounter{threshold: p.HC},
		overhead: 0.012,
	}, nil
}

// Name returns "SDS/B".
func (d *SDSB) Name() string { return "SDS/B" }

// Overhead returns the modelled CPU cost.
func (d *SDSB) Overhead() float64 { return d.overhead }

// Push feeds one PCM sample. A decision is produced whenever a new MA
// window completes (every DW samples).
func (d *SDSB) Push(s pcm.Sample) []Decision {
	accAvg, ok := d.accMA.Push(s.AccessNum)
	missAvg, ok2 := d.missMA.Push(s.MissNum)
	if !ok || !ok2 {
		// The two streams share cadence; they fill in lockstep.
		return nil
	}
	accE := d.accEW.Push(accAvg)
	missE := d.missEW.Push(missAvg)

	accLo, accHi := d.profile.AccessBounds(d.params.K)
	missLo, missHi := d.profile.MissBounds(d.params.K)

	accAlarm := d.accViol.observe(accE < accLo || accE > accHi)
	missAlarm := d.missViol.observe(missE < missLo || missE > missHi)

	return []Decision{{Time: s.Time, Alarm: accAlarm || missAlarm}}
}

// EWMAValues returns the latest EWMA of each channel, for diagnostics and
// the Fig. 7 style detection-example plots.
func (d *SDSB) EWMAValues() (access, miss float64) {
	return d.accEW.Value(), d.missEW.Value()
}
