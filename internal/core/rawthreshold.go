package core

import (
	"fmt"

	"memdos/internal/pcm"
)

// RawThreshold is the naive detector Section IV-A argues against: alarm
// whenever a raw sample drops (or rises) by more than a relative threshold
// of the immediately preceding sample. It exists for the ablation study
// demonstrating why SDS smooths with MA+EWMA first — raw counter samples
// vary enough that direct thresholding false-alarms constantly.
type RawThreshold struct {
	// Threshold is the relative single-step change that triggers an
	// alarm (the paper's example uses 0.5).
	Threshold float64

	prev    float64
	hasPrev bool
}

// NewRawThreshold returns the naive detector.
func NewRawThreshold(threshold float64) (*RawThreshold, error) {
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("core: raw threshold %v outside (0,1)", threshold)
	}
	return &RawThreshold{Threshold: threshold}, nil
}

// Name returns "RawThreshold".
func (d *RawThreshold) Name() string { return "RawThreshold" }

// Overhead returns a negligible cost.
func (d *RawThreshold) Overhead() float64 { return 0.001 }

// Push compares each sample with its predecessor.
func (d *RawThreshold) Push(s pcm.Sample) []Decision {
	if !d.hasPrev {
		d.prev = s.AccessNum
		d.hasPrev = true
		return nil
	}
	prev := d.prev
	d.prev = s.AccessNum
	if prev <= 0 {
		return []Decision{{Time: s.Time, Alarm: s.AccessNum > 0}}
	}
	rel := (s.AccessNum - prev) / prev
	alarm := rel < -d.Threshold || rel > d.Threshold
	return []Decision{{Time: s.Time, Alarm: alarm}}
}
