package core

import (
	"fmt"

	"memdos/internal/period"
	"memdos/internal/stats"
)

// Profile is the per-application "ground truth" SDS gathers while a VM is
// known to be safe (immediately after it starts or migrates, before an
// adversary can co-locate — Section IV-B.1).
type Profile struct {
	// AccessMean/AccessStd summarize the EWMA of the AccessNum channel.
	AccessMean, AccessStd float64
	// MissMean/MissStd summarize the EWMA of the MissNum channel.
	MissMean, MissStd float64
	// Periodic reports whether the application shows a stable periodic
	// pattern; Period is its period in MA samples.
	Periodic bool
	Period   float64
}

// BuildProfile derives a Profile from attack-free raw PCM samples of the
// two counter channels. It needs at least one full MA window of samples.
func BuildProfile(access, miss []float64, p Params) (Profile, error) {
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	if len(access) < p.W || len(miss) < p.W {
		return Profile{}, fmt.Errorf("core: profiling needs at least W=%d samples (got %d/%d)", p.W, len(access), len(miss))
	}
	accMA := stats.MA(access, p.W, p.DW)
	missMA := stats.MA(miss, p.W, p.DW)
	accE := stats.EWMA(accMA, p.Alpha)
	missE := stats.EWMA(missMA, p.Alpha)

	var prof Profile
	prof.AccessMean, prof.AccessStd = stats.MeanStd(accE)
	prof.MissMean, prof.MissStd = stats.MeanStd(missE)

	if p, ok := stablePeriod(accMA); ok {
		prof.Periodic = true
		prof.Period = p
	}
	return prof, nil
}

// stablePeriod implements the paper's periodicity check: an application is
// periodic only if a "relatively constant period" exists in its MA series.
// The series is split into halves that must independently show a credible
// (well-correlated) period, and the two estimates must agree.
func stablePeriod(ma []float64) (float64, bool) {
	if len(ma) < 16 {
		return 0, false
	}
	est := period.NewEstimator(period.DefaultEstimatorConfig())
	whole := est.Estimate(ma)
	if !whole.Periodic || whole.Correlation < 0.4 {
		return 0, false
	}
	half := len(ma) / 2
	first := est.Estimate(ma[:half])
	second := est.Estimate(ma[half:])
	if !first.Periodic || !second.Periodic {
		return 0, false
	}
	if relDiff(first.Period, whole.Period) > 0.2 || relDiff(second.Period, whole.Period) > 0.2 {
		return 0, false
	}
	return whole.Period, true
}

// relDiff returns |a-b| / b.
func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// AccessBounds returns SDS/B's normal range for the AccessNum channel.
func (pr Profile) AccessBounds(k float64) (lo, hi float64) {
	return pr.AccessMean - k*pr.AccessStd, pr.AccessMean + k*pr.AccessStd
}

// MissBounds returns SDS/B's normal range for the MissNum channel.
func (pr Profile) MissBounds(k float64) (lo, hi float64) {
	return pr.MissMean - k*pr.MissStd, pr.MissMean + k*pr.MissStd
}
