package core

import (
	"math"
	"testing"

	"memdos/internal/attack"
	"memdos/internal/vmm"
	"memdos/internal/workload"
)

// runDynamic streams a dynamic-application run through a detector built by
// mk, which receives the victim VM (for the utilization source).
func runDynamic(t *testing.T, atk *attack.Attacker, dur float64, seed uint64, mk func(*vmm.VM) Detector) []Decision {
	t.Helper()
	cfg := vmm.DefaultConfig()
	cfg.Seed = seed
	srv := vmm.MustNewServer(cfg)
	victim, err := srv.AddApp("victim", workload.Dynamic())
	if err != nil {
		t.Fatal(err)
	}
	if atk != nil {
		if _, err := srv.AddAttacker("attacker", atk); err != nil {
			t.Fatal(err)
		}
	}
	det := mk(victim)
	var ds []Decision
	srv.RunUntil(dur, func(res vmm.StepResult) {
		if s, ok := res.Samples[victim.ID()]; ok {
			ds = append(ds, det.Push(s)...)
		}
	})
	return ds
}

func TestSDSUValidation(t *testing.T) {
	if _, err := NewSDSU(nil, DefaultParams()); err == nil {
		t.Error("nil utilization source accepted")
	}
	bad := DefaultParams()
	bad.W = 0
	if _, err := NewSDSU(func() float64 { return 1 }, bad); err == nil {
		t.Error("bad params accepted")
	}
}

func TestSDSUCalibration(t *testing.T) {
	d, err := NewSDSU(func() float64 { return 1 }, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if d.Calibrated() {
		t.Error("calibrated before any data")
	}
	ds := runDynamic(t, nil, 120, 3, func(vm *vmm.VM) Detector {
		d2, _ := NewSDSU(vm.LastSpeed, DefaultParams())
		d = d2
		return d2
	})
	if !d.Calibrated() {
		t.Fatal("not calibrated after 120s")
	}
	floor, ceil := d.Thresholds()
	if floor <= 0 || floor >= 1 {
		t.Errorf("utilization floor = %v", floor)
	}
	if ceil <= 0 {
		t.Errorf("miss ceiling = %v", ceil)
	}
	if len(ds) == 0 {
		t.Error("no decisions")
	}
}

func TestSDSUQuietOnDynamicApp(t *testing.T) {
	// The point of the extension: no false alarms on a workload whose
	// levels jump 0.5x..1.7x — where SDS/B's profile-based bounds break.
	var alarms, total int
	ds := runDynamic(t, nil, 600, 5, func(vm *vmm.VM) Detector {
		d, _ := NewSDSU(vm.LastSpeed, DefaultParams())
		return d
	})
	for _, d := range ds {
		total++
		if d.Alarm {
			alarms++
		}
	}
	if frac := float64(alarms) / float64(total); frac > 0.02 {
		t.Errorf("SDS/U false alarm rate on dynamic app = %v", frac)
	}
}

func TestSDSBBreaksOnDynamicApp(t *testing.T) {
	// Counterpart: the profiled SDS/B cannot cover the dynamic app's
	// range without false positives (this is what motivates SDS/U).
	cfg := vmm.DefaultConfig()
	srv := vmm.MustNewServer(cfg)
	vm, _ := srv.AddApp("victim", workload.Dynamic())
	srv.RunUntil(300, nil)
	c := srv.Counter(vm.ID())
	prof, err := BuildProfile(c.AccessSeries().Values, c.MissSeries().Values, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	det, _ := NewSDSB(prof, DefaultParams())
	ds := runDynamic(t, nil, 600, 5, func(*vmm.VM) Detector { return det })
	alarms := 0
	for _, d := range ds {
		if d.Alarm {
			alarms++
		}
	}
	if frac := float64(alarms) / float64(len(ds)); frac < 0.05 {
		t.Skipf("SDS/B coped with the dynamic app this seed (fp=%v); motivation weaker but not wrong", frac)
	}
}

func TestSDSUDetectsAttacksOnDynamicApp(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *attack.Attacker
	}{
		{"buslock", func() *attack.Attacker {
			a, _ := attack.NewBusLock(attack.Window{Start: 300, End: 600}, 0.7)
			return a
		}},
		{"cleansing", func() *attack.Attacker {
			a, _ := attack.NewLLCCleansing(attack.Window{Start: 300, End: 600}, 0.6, 2e6)
			return a
		}},
	} {
		ds := runDynamic(t, tc.mk(), 600, 7, func(vm *vmm.VM) Detector {
			d, _ := NewSDSU(vm.LastSpeed, DefaultParams())
			return d
		})
		first := math.NaN()
		for _, d := range ds {
			if d.Alarm {
				first = d.Time
				break
			}
		}
		if math.IsNaN(first) {
			t.Errorf("%s: never detected", tc.name)
			continue
		}
		if first < 300 {
			t.Errorf("%s: false alarm at %v before attack", tc.name, first)
		}
		if first > 340 {
			t.Errorf("%s: detection at %v too slow", tc.name, first)
		}
		// Alarm holds through the attack.
		held, n := 0, 0
		for _, d := range ds {
			if d.Time > 350 {
				n++
				if d.Alarm {
					held++
				}
			}
		}
		if frac := float64(held) / float64(n); frac < 0.9 {
			t.Errorf("%s: alarm held %v of the attack", tc.name, frac)
		}
	}
}

func TestSDSUNameAndOverhead(t *testing.T) {
	d, _ := NewSDSU(func() float64 { return 1 }, DefaultParams())
	if d.Name() != "SDS/U" {
		t.Error("name wrong")
	}
	if o := d.Overhead(); o <= 0 || o > 0.05 {
		t.Errorf("overhead = %v", o)
	}
}
