package stats

import "math"

// ApproxEqual reports whether a and b agree to within tol, scaled by
// the larger magnitude (relative for large values, absolute near zero).
// It is the epsilon comparison memdos-vet's floateq check points to:
// exact == between computed floats encodes an accumulation-order
// assumption, while ApproxEqual makes the intended tolerance explicit.
// NaN equals nothing; infinities equal only themselves.
func ApproxEqual(a, b, tol float64) bool {
	if a == b { //memdos:ignore floateq exact match short-circuits equal infinities, which would otherwise produce NaN below
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
