package stats

import (
	"math"
	"testing"
	"testing/quick"

	"memdos/internal/sim"
)

func TestMABasic(t *testing.T) {
	raw := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	got := MA(raw, 4, 2)
	want := []float64{2.5, 4.5, 6.5}
	if len(got) != len(want) {
		t.Fatalf("MA len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMAShortInput(t *testing.T) {
	if got := MA([]float64{1, 2}, 4, 2); got != nil {
		t.Errorf("MA on short input = %v, want nil", got)
	}
}

func TestMAPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MA with w=0 did not panic")
		}
	}()
	MA([]float64{1}, 0, 1)
}

func TestMAWindowEqualsStep(t *testing.T) {
	raw := []float64{2, 4, 6, 8}
	got := MA(raw, 2, 2)
	want := []float64{3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMAMatchesNaive(t *testing.T) {
	// Property: incremental MA equals the direct per-window mean.
	check := func(seed uint64, wRaw, dwRaw uint8) bool {
		w := int(wRaw%20) + 1
		dw := int(dwRaw%10) + 1
		r := sim.NewRNG(seed)
		raw := make([]float64, 100)
		for i := range raw {
			raw[i] = r.Normal(0, 10)
		}
		fast := MA(raw, w, dw)
		for n := range fast {
			var sum float64
			for _, v := range raw[n*dw : n*dw+w] {
				sum += v
			}
			if math.Abs(fast[n]-sum/float64(w)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMAAlphaOne(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	got := EWMA(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("EWMA alpha=1 should be identity, got %v", got)
		}
	}
}

func TestEWMARecurrence(t *testing.T) {
	xs := []float64{10, 20, 30}
	got := EWMA(xs, 0.5)
	want := []float64{10, 15, 22.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("EWMA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEWMASmoothsMoreWithSmallAlpha(t *testing.T) {
	r := sim.NewRNG(11)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Normal(100, 15)
	}
	varOf := func(v []float64) float64 { s := Std(v); return s * s }
	if varOf(EWMA(xs, 0.1)) >= varOf(EWMA(xs, 0.9)) {
		t.Error("smaller alpha should reduce variance more")
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EWMA alpha=%v did not panic", alpha)
				}
			}()
			EWMA([]float64{1}, alpha)
		}()
	}
}

func TestMAStreamMatchesBatch(t *testing.T) {
	r := sim.NewRNG(21)
	raw := make([]float64, 400)
	for i := range raw {
		raw[i] = r.Float64() * 100
	}
	const w, dw = 50, 20
	batch := MA(raw, w, dw)
	s := NewMAStream(w, dw)
	var stream []float64
	for _, v := range raw {
		if avg, ok := s.Push(v); ok {
			stream = append(stream, avg)
		}
	}
	if len(stream) != len(batch) {
		t.Fatalf("stream emitted %d values, batch %d", len(stream), len(batch))
	}
	for i := range batch {
		if math.Abs(stream[i]-batch[i]) > 1e-9 {
			t.Errorf("stream[%d] = %v, batch %v", i, stream[i], batch[i])
		}
	}
}

func TestEWMAStreamMatchesBatch(t *testing.T) {
	xs := []float64{5, 1, 9, 2, 6, 8}
	batch := EWMA(xs, 0.3)
	s := NewEWMAStream(0.3)
	for i, v := range xs {
		got := s.Push(v)
		if math.Abs(got-batch[i]) > 1e-12 {
			t.Errorf("stream EWMA[%d] = %v, batch %v", i, got, batch[i])
		}
	}
	if s.Value() != batch[len(batch)-1] {
		t.Error("Value() mismatch")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, s := MeanStd(xs)
	if m != 5 || math.Abs(s-2) > 1e-12 {
		t.Errorf("MeanStd = %v, %v; want 5, 2", m, s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Error("empty input should give zeros")
	}
	if Std([]float64{42}) != 0 {
		t.Error("single sample std should be 0")
	}
}

func TestChebyshevPaperParameters(t *testing.T) {
	// The paper selects k=1.125, H_C=30 for 99.9% confidence.
	h, err := ChebyshevH(1.125, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if h != 30 {
		t.Errorf("ChebyshevH(1.125, 0.999) = %d, want 30", h)
	}
	// The paper also mentions k=2, H_C=6 as a valid choice; the minimal H
	// meeting the bound is 5 ((1/4)^5 = 0.00098 <= 0.001), so 6 must also
	// satisfy it while 4 must not.
	h2, err := ChebyshevH(2, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != 5 {
		t.Errorf("ChebyshevH(2, 0.999) = %d, want 5", h2)
	}
	if ChebyshevFalseAlarmBound(2, 6) > 0.001 {
		t.Error("paper's (k=2, H=6) should satisfy the 99.9%% bound")
	}
	if ChebyshevFalseAlarmBound(2, 4) <= 0.001 {
		t.Error("(k=2, H=4) should not satisfy the 99.9%% bound")
	}
}

func TestChebyshevRoundTrip(t *testing.T) {
	check := func(kRaw, confRaw uint16) bool {
		k := 1.01 + float64(kRaw%300)/100 // 1.01..4.01
		conf := 0.9 + float64(confRaw%99)/1000
		h, err := ChebyshevH(k, conf)
		if err != nil {
			return false
		}
		// The derived H must actually satisfy the bound.
		return ChebyshevFalseAlarmBound(k, h) <= 1-conf+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestChebyshevKInverse(t *testing.T) {
	k, err := ChebyshevK(30, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-1.122) > 0.01 {
		t.Errorf("ChebyshevK(30, 0.999) = %v, want ~1.122", k)
	}
}

func TestChebyshevErrors(t *testing.T) {
	if _, err := ChebyshevH(1.0, 0.999); err == nil {
		t.Error("ChebyshevH with k=1 should error")
	}
	if _, err := ChebyshevH(2, 1.5); err == nil {
		t.Error("ChebyshevH with confidence>1 should error")
	}
	if _, err := ChebyshevK(0, 0.9); err == nil {
		t.Error("ChebyshevK with H=0 should error")
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	r := sim.NewRNG(31)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Normal(0, 1)
	}
	res, err := KSTest(xs, xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 {
		t.Errorf("KS D on identical samples = %v, want 0", res.D)
	}
	if res.Reject {
		t.Error("KS should not reject identical samples")
	}
}

func TestKSSameDistribution(t *testing.T) {
	// Samples from the same distribution should rarely be rejected.
	r := sim.NewRNG(32)
	rejects := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 100)
		b := make([]float64, 100)
		for i := range a {
			a[i] = r.Normal(10, 2)
			b[i] = r.Normal(10, 2)
		}
		res, err := KSTest(a, b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject {
			rejects++
		}
	}
	// Expected rejection rate ~5%; allow generous slack.
	if frac := float64(rejects) / trials; frac > 0.12 {
		t.Errorf("same-distribution rejection rate = %v, want <= 0.12", frac)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	r := sim.NewRNG(33)
	detected := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 100)
		b := make([]float64, 100)
		for i := range a {
			a[i] = r.Normal(10, 2)
			b[i] = r.Normal(13, 2) // shifted mean
		}
		res, err := KSTest(a, b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject {
			detected++
		}
	}
	if frac := float64(detected) / trials; frac < 0.95 {
		t.Errorf("shifted-distribution detection rate = %v, want >= 0.95", frac)
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// a entirely below b: the empirical CDFs separate fully, D = 1.
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	res, err := KSTest(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 1 {
		t.Errorf("fully separated samples D = %v, want 1", res.D)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}, 0.05); err == nil {
		t.Error("KS with empty sample should error")
	}
	if _, err := KSTest([]float64{1}, []float64{2}, 0); err == nil {
		t.Error("KS with alpha=0 should error")
	}
}

func TestKSSymmetry(t *testing.T) {
	check := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		a := make([]float64, 50)
		b := make([]float64, 70)
		for i := range a {
			a[i] = r.Float64()
		}
		for i := range b {
			b[i] = r.Float64() * 1.3
		}
		r1, err1 := KSTest(a, b, 0.05)
		r2, err2 := KSTest(b, a, 0.05)
		return err1 == nil && err2 == nil &&
			math.Abs(r1.D-r2.D) < 1e-12 && math.Abs(r1.PValue-r2.PValue) < 1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestKSPValueMonotonicity(t *testing.T) {
	// Larger lambda must not increase the p-value.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		p := ksPValue(l)
		if p > prev+1e-12 {
			t.Fatalf("ksPValue not monotone at lambda=%v", l)
		}
		prev = p
	}
	if ksPValue(0) != 1 {
		t.Error("ksPValue(0) should be 1")
	}
}
