// Package stats implements the statistical primitives used by the detection
// schemes: sliding-window moving averages (MA), exponentially weighted
// moving averages (EWMA), summary statistics, Chebyshev-inequality
// parameter derivation, and the two-sample Kolmogorov-Smirnov test used by
// the KStest baseline detector.
package stats

import (
	"fmt"
	"math"
)

// MA computes the sliding-window moving average of raw with window size w
// and step dw, per Eq. (1) of the paper: the n-th output is the mean of
// raw[n*dw : n*dw+w]. Windows that would run past the end of raw are not
// emitted.
func MA(raw []float64, w, dw int) []float64 {
	if w <= 0 || dw <= 0 {
		panic(fmt.Sprintf("stats: MA with non-positive window %d or step %d", w, dw))
	}
	if len(raw) < w {
		return nil
	}
	n := (len(raw)-w)/dw + 1
	out := make([]float64, n)
	// Initial window sum, then slide by dw using incremental updates.
	var sum float64
	for _, v := range raw[:w] {
		sum += v
	}
	out[0] = sum / float64(w)
	for i := 1; i < n; i++ {
		lo := (i - 1) * dw
		for j := lo; j < lo+dw; j++ {
			sum -= raw[j]
		}
		for j := lo + w; j < lo+w+dw; j++ {
			sum += raw[j]
		}
		out[i] = sum / float64(w)
	}
	return out
}

// EWMA computes the exponentially weighted moving average of xs with
// smoothing factor alpha in (0, 1], per Eq. (2) of the paper:
// S_0 = x_0, S_n = (1-alpha)*S_{n-1} + alpha*x_n.
// alpha == 1 reproduces xs itself.
func EWMA(xs []float64, alpha float64) []float64 {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v outside (0,1]", alpha))
	}
	if len(xs) == 0 {
		return nil
	}
	out := make([]float64, len(xs))
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = (1-alpha)*out[i-1] + alpha*xs[i]
	}
	return out
}

// MAStream incrementally computes the MA of a raw sample stream. It is the
// online counterpart of MA: feed raw samples with Push; each time a full
// window is available it emits one averaged value and then slides by the
// step size.
type MAStream struct {
	w, dw int
	buf   []float64
}

// NewMAStream returns a streaming moving-average with window w and step dw.
func NewMAStream(w, dw int) *MAStream {
	if w <= 0 || dw <= 0 {
		panic(fmt.Sprintf("stats: MAStream with non-positive window %d or step %d", w, dw))
	}
	return &MAStream{w: w, dw: dw}
}

// Reset discards all buffered samples, returning the stream to its
// just-constructed state.
func (m *MAStream) Reset() { m.buf = m.buf[:0] }

// Push appends one raw sample and returns (avg, true) when a new window
// average becomes available, else (0, false).
func (m *MAStream) Push(v float64) (float64, bool) {
	m.buf = append(m.buf, v)
	if len(m.buf) < m.w {
		return 0, false
	}
	var sum float64
	for _, x := range m.buf[len(m.buf)-m.w:] {
		sum += x
	}
	// Slide: drop dw oldest samples so the next window starts dw later.
	m.buf = m.buf[m.dw:]
	return sum / float64(m.w), true
}

// EWMAStream incrementally computes the EWMA of a value stream.
type EWMAStream struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMAStream returns a streaming EWMA with smoothing factor alpha.
func NewEWMAStream(alpha float64) *EWMAStream {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMAStream alpha %v outside (0,1]", alpha))
	}
	return &EWMAStream{alpha: alpha}
}

// Push folds one value into the stream and returns the updated EWMA.
func (e *EWMAStream) Push(v float64) float64 {
	if !e.init {
		e.value = v
		e.init = true
		return v
	}
	e.value = (1-e.alpha)*e.value + e.alpha*v
	return e.value
}

// Value returns the current EWMA (0 before the first Push).
func (e *EWMAStream) Value() float64 { return e.value }

// Reset discards the accumulated average, returning the stream to its
// just-constructed state.
func (e *EWMAStream) Reset() { e.value, e.init = 0, false }

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs, or 0 for fewer than
// two samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MeanStd returns both the mean and population standard deviation in one
// pass over xs.
func MeanStd(xs []float64) (mean, std float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}
