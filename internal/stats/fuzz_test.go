package stats

import (
	"math"
	"testing"

	"memdos/internal/sim"
)

// FuzzKSTest hammers the KS test with arbitrary sample shapes: it must
// never panic, and its outputs must stay within their mathematical ranges.
func FuzzKSTest(f *testing.F) {
	f.Add(uint64(1), 10, 20, 1.5, 0.0)
	f.Add(uint64(2), 100, 100, 0.0, 5.0)
	f.Add(uint64(3), 1, 1, -3.0, 3.0)
	f.Fuzz(func(t *testing.T, seed uint64, n1, n2 int, shift, scale float64) {
		if n1 <= 0 || n2 <= 0 || n1 > 500 || n2 > 500 {
			t.Skip()
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.IsNaN(scale) || math.IsInf(scale, 0) {
			t.Skip()
		}
		r := newFuzzRNG(seed)
		a := make([]float64, n1)
		b := make([]float64, n2)
		for i := range a {
			a[i] = r.Normal(0, 1)
		}
		for i := range b {
			b[i] = r.Normal(shift, 1+math.Abs(scale))
		}
		res, err := KSTest(a, b, 0.05)
		if err != nil {
			t.Fatalf("KSTest error on valid input: %v", err)
		}
		if res.D < 0 || res.D > 1 {
			t.Fatalf("D = %v outside [0,1]", res.D)
		}
		if res.PValue < 0 || res.PValue > 1 {
			t.Fatalf("p = %v outside [0,1]", res.PValue)
		}
		// Symmetry must hold for any input.
		rev, err := KSTest(b, a, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rev.D-res.D) > 1e-9 {
			t.Fatalf("KS not symmetric: %v vs %v", res.D, rev.D)
		}
	})
}

// FuzzMA checks the incremental moving average against the direct
// computation for arbitrary window/step shapes.
func FuzzMA(f *testing.F) {
	f.Add(uint64(1), 10, 3, 50)
	f.Add(uint64(2), 1, 1, 5)
	f.Fuzz(func(t *testing.T, seed uint64, w, dw, n int) {
		if w <= 0 || dw <= 0 || n < 0 || w > 200 || dw > 200 || n > 2000 {
			t.Skip()
		}
		r := newFuzzRNG(seed)
		raw := make([]float64, n)
		for i := range raw {
			raw[i] = r.Normal(0, 100)
		}
		got := MA(raw, w, dw)
		for i, v := range got {
			var sum float64
			for _, x := range raw[i*dw : i*dw+w] {
				sum += x
			}
			if math.Abs(v-sum/float64(w)) > 1e-6 {
				t.Fatalf("MA[%d] = %v, direct %v", i, v, sum/float64(w))
			}
		}
	})
}

// newFuzzRNG keeps the fuzz file self-contained.
func newFuzzRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed) }
