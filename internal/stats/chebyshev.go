package stats

import (
	"fmt"
	"math"
)

// ChebyshevFalseAlarmBound returns the Chebyshev upper bound on the
// probability that H consecutive independent samples all fall more than
// k standard deviations from the mean: (1/k^2)^H, per Eq. (4) of the paper.
// The bound is clamped to 1.
func ChebyshevFalseAlarmBound(k float64, h int) float64 {
	if k <= 0 || h <= 0 {
		panic(fmt.Sprintf("stats: invalid Chebyshev parameters k=%v h=%d", k, h))
	}
	p := math.Pow(1/(k*k), float64(h))
	if p > 1 {
		return 1
	}
	return p
}

// ChebyshevH returns the smallest consecutive-violation threshold H such
// that the false-alarm bound (1/k^2)^H is at most 1-confidence. For
// example, k=1.125 and confidence 0.999 yields H=30 (within rounding of the
// paper's choice). k must exceed 1 or no finite H exists, in which case
// ChebyshevH returns an error.
func ChebyshevH(k, confidence float64) (int, error) {
	if k <= 1 {
		return 0, fmt.Errorf("stats: Chebyshev boundary factor k=%v must exceed 1", k)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	target := 1 - confidence
	// (1/k^2)^H <= target  =>  H >= log(target)/log(1/k^2).
	h := math.Log(target) / math.Log(1/(k*k))
	n := int(math.Ceil(h))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// ChebyshevK returns the boundary factor k needed to reach the requested
// confidence with a fixed consecutive-violation threshold H.
func ChebyshevK(h int, confidence float64) (float64, error) {
	if h <= 0 {
		return 0, fmt.Errorf("stats: non-positive H %d", h)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	// (1/k^2)^H = 1-confidence  =>  k = (1-confidence)^(-1/(2H)).
	return math.Pow(1-confidence, -1/(2*float64(h))), nil
}
