package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult reports a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the two
	// empirical CDFs.
	D float64
	// PValue is the asymptotic two-sided p-value (Kolmogorov distribution
	// approximation with the Stephens effective-n correction).
	PValue float64
	// Reject reports whether the null hypothesis (same distribution) was
	// rejected at the significance level passed to KSTest.
	Reject bool
}

// KSTest performs the two-sample Kolmogorov-Smirnov test on samples a and b
// at significance level alpha (e.g. 0.05). It reports whether the two
// samples are consistent with having been drawn from the same distribution.
// This is the statistical core of the KStest baseline detector from
// Zhang et al. (AsiaCCS'17), reimplemented per Massey (1951).
func KSTest(a, b []float64, alpha float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, fmt.Errorf("stats: KS test requires non-empty samples (got %d, %d)", len(a), len(b))
	}
	if alpha <= 0 || alpha >= 1 {
		return KSResult{}, fmt.Errorf("stats: KS significance %v outside (0,1)", alpha)
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	d := ksStatistic(as, bs)
	n1, n2 := float64(len(as)), float64(len(bs))
	ne := n1 * n2 / (n1 + n2)
	// Stephens' correction improves the asymptotic approximation for
	// moderate sample sizes.
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	p := ksPValue(lambda)
	return KSResult{D: d, PValue: p, Reject: p < alpha}, nil
}

// ksStatistic computes sup |F1 - F2| over sorted samples.
func ksStatistic(a, b []float64) float64 {
	var d float64
	i, j := 0, 0
	n1, n2 := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		x := a[i]
		if b[j] < x {
			x = b[j]
		}
		for i < len(a) && a[i] <= x {
			i++
		}
		for j < len(b) && b[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/n1 - float64(j)/n2)
		if diff > d {
			d = diff
		}
	}
	return d
}

// ksPValue evaluates the Kolmogorov distribution tail
// Q(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
