package experiments

import (
	"reflect"
	"testing"
)

func TestClosedLoopValidation(t *testing.T) {
	if _, err := ClosedLoop(ClosedLoopSpec{App: "KM", Mode: NoAttack, AttackStart: 1, RelocationDelay: 1}); err == nil {
		t.Error("NoAttack accepted")
	}
	spec := DefaultClosedLoopSpec("KM", BusLock, 1)
	spec.RelocationDelay = 0
	if _, err := ClosedLoop(spec); err == nil {
		t.Error("zero relocation delay accepted")
	}
	if _, err := ClosedLoop(DefaultClosedLoopSpec("nope", BusLock, 1)); err == nil {
		t.Error("unknown app accepted")
	}
}

// TestClosedLoopRecoversPerformance is the acceptance experiment: with
// the respond engine in the loop, the victim's normalized execution time
// under a bus-locking attack improves over the unmitigated run.
func TestClosedLoopRecoversPerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop simulation is seconds-long")
	}
	res, err := ClosedLoop(DefaultClosedLoopSpec("KM", BusLock, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackedNormalized <= 1.05 {
		t.Fatalf("attack did not slow the victim: normalized %v", res.AttackedNormalized)
	}
	if res.MitigatedNormalized >= res.AttackedNormalized {
		t.Fatalf("mitigation did not help: attacked %v, mitigated %v",
			res.AttackedNormalized, res.MitigatedNormalized)
	}
	if res.Recovered <= 0.2 {
		t.Errorf("recovered only %.0f%% of the slowdown", 100*res.Recovered)
	}
	if res.Alarms == 0 || res.PeakLevel == 0 {
		t.Errorf("loop never engaged: alarms %d, peak %d", res.Alarms, res.PeakLevel)
	}
	if res.Stats.Throttles == 0 {
		t.Errorf("no throttle actions: %+v", res.Stats)
	}
}

// TestClosedLoopDeterministic: the whole closed loop — server, hub,
// detector, engine — is bit-reproducible under a fixed seed.
func TestClosedLoopDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop simulation is seconds-long")
	}
	spec := DefaultClosedLoopSpec("KM", Cleansing, 3)
	a, err := ClosedLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClosedLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("closed-loop runs diverged:\n%+v\n%+v", a, b)
	}
}
