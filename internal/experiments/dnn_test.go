package experiments

import (
	"math"
	"sync"
	"testing"

	"memdos/internal/core"
	"memdos/internal/dnn"
)

// testCascade trains one reduced cascade shared by the DNN tests in this
// file (3 apps keeps training around 15 s).
var (
	testCascadeOnce sync.Once
	testCascadeVal  *dnn.Cascade
	testCascadeErr  error
)

func testCascade(t *testing.T) *dnn.Cascade {
	t.Helper()
	if testing.Short() {
		t.Skip("DNN training skipped in -short mode")
	}
	testCascadeOnce.Do(func() {
		spec := DefaultTrainingSpec()
		spec.Apps = dnnSweepApps // KM, BA, TS
		spec.RunSeconds = 90
		spec.Train.Epochs = 10
		testCascadeVal, testCascadeErr = TrainCascade(spec)
	})
	if testCascadeErr != nil {
		t.Fatal(testCascadeErr)
	}
	return testCascadeVal
}

func testDNNFactory(t *testing.T) DetectorFactory {
	cascade := testCascade(t)
	return func(env *Env) (core.Detector, error) {
		return core.NewDNNDetector(cascade, env.Params)
	}
}

func TestDNNDetectorScenario1(t *testing.T) {
	factory := testDNNFactory(t)
	params := core.DefaultParams()
	for _, mode := range []AttackMode{BusLock, Cleansing} {
		res, err := Run(DefaultRunSpec("KM", mode, 21), params, map[string]DetectorFactory{"DNN": factory})
		if err != nil {
			t.Fatal(err)
		}
		a := Score(res, "DNN", EvalGrace)
		if math.IsNaN(a.Recall) || a.Recall < 0.85 {
			t.Errorf("%v: DNN recall = %v, want >= 0.85 (paper 90-95%%)", mode, a.Recall)
		}
		if a.Specificity < 0.8 {
			t.Errorf("%v: DNN specificity = %v, want >= 0.8 (paper 85-95%%)", mode, a.Specificity)
		}
		// Fig. 13: DNN detects within 5-10 s, faster than SDS's 15-30 s.
		if math.IsNaN(a.MeanDelay) || a.MeanDelay > 12 {
			t.Errorf("%v: DNN delay = %v, want <= ~10", mode, a.MeanDelay)
		}
	}
}

func TestDNNFasterThanSDS(t *testing.T) {
	factory := testDNNFactory(t)
	params := core.DefaultParams()
	res, err := Run(DefaultRunSpec("KM", BusLock, 22), params, map[string]DetectorFactory{"DNN": factory})
	if err != nil {
		t.Fatal(err)
	}
	dnnDelay := Score(res, "DNN", EvalGrace).MeanDelay

	res, err = Run(DefaultRunSpec("KM", BusLock, 22), params, map[string]DetectorFactory{"SDS": SDSFactory})
	if err != nil {
		t.Fatal(err)
	}
	sdsDelay := Score(res, "SDS", EvalGrace).MeanDelay
	if !(dnnDelay < sdsDelay) {
		t.Errorf("DNN delay %v should beat SDS %v", dnnDelay, sdsDelay)
	}
}

func TestScenario2DNNMoreRobust(t *testing.T) {
	// Figs. 15-16: under the adaptive schedule (attack states 10-50 s)
	// DNN's faster response yields higher recall than SDS and KStest.
	factory := testDNNFactory(t)
	params := core.DefaultParams()
	score := func(name string, f DetectorFactory) Accuracy {
		t.Helper()
		var recs, spcs []float64
		for _, seed := range []uint64{31, 32} {
			spec := DefaultRunSpec("KM", BusLock, seed)
			spec.Adaptive = true
			res, err := Run(spec, params, map[string]DetectorFactory{name: f})
			if err != nil {
				t.Fatal(err)
			}
			a := Score(res, name, Scenario2Grace)
			recs = append(recs, a.Recall)
			spcs = append(spcs, a.Specificity)
		}
		return Accuracy{Recall: mean(recs), Specificity: mean(spcs)}
	}
	dnnAcc := score("DNN", factory)
	sdsAcc := score("SDS", SDSFactory)
	ksAcc := score("KStest", KSFactory)

	if dnnAcc.Recall < 0.7 {
		t.Errorf("scenario 2 DNN recall = %v, want >= 0.7 (paper 80-95%%)", dnnAcc.Recall)
	}
	if !(dnnAcc.Recall > sdsAcc.Recall) {
		t.Errorf("DNN recall %v should beat SDS %v in scenario 2", dnnAcc.Recall, sdsAcc.Recall)
	}
	if !(dnnAcc.Recall > ksAcc.Recall) {
		t.Errorf("DNN recall %v should beat KStest %v in scenario 2", dnnAcc.Recall, ksAcc.Recall)
	}
}

func mean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
