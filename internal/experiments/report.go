package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"memdos/internal/trace"
)

// ReportConfig scales the one-shot report.
type ReportConfig struct {
	// Seeds per experiment (1 = fastest).
	Seeds []uint64
	// Apps for the detector comparison (subset keeps the report quick).
	Apps []string
	// WithDNN includes the DNN detector (trains the shared cascade on
	// first use — minutes of CPU).
	WithDNN bool
}

// DefaultReportConfig returns a configuration that finishes in well under
// a minute without the DNN.
func DefaultReportConfig() ReportConfig {
	return ReportConfig{
		Seeds: []uint64{1},
		Apps:  []string{"KM", "TS", "FN"},
	}
}

// WriteReport runs the core experiment set and writes a self-contained
// markdown report to w. It is the programmatic face of `memdos report`.
// elapsed supplies the wall time consumed so far (nil omits the
// footer timing): experiments is a deterministic package, so the clock
// read stays with the caller.
func WriteReport(w io.Writer, cfg ReportConfig, elapsed func() time.Duration) error {
	if len(cfg.Seeds) == 0 || len(cfg.Apps) == 0 {
		return fmt.Errorf("experiments: report needs seeds and apps")
	}
	p := func(format string, args ...interface{}) {
		fmt.Fprintf(w, format, args...)
	}
	p("# memdos experiment report\n\n")
	p("Apps: %v · seeds: %v · DNN: %v\n\n", cfg.Apps, cfg.Seeds, cfg.WithDNN)

	// 1. KStest false positives (Fig. 1).
	fig1, err := Fig1KStestFalsePositives(600, cfg.Seeds)
	if err != nil {
		return err
	}
	p("## KStest false positives, no attack (Fig. 1 / §III-B)\n\n")
	p("| App | false-alarm rate |\n|---|---|\n")
	for _, r := range fig1.Rows {
		p("| %s | %.0f%% |\n", r.App, 100*r.FalseAlarmRate)
	}
	p("\n")

	// 2. Measurement traces (Figs. 2-6), with sparklines.
	p("## Attack impact traces (Figs. 2–6)\n\n")
	for _, app := range cfg.Apps {
		for _, mode := range []AttackMode{BusLock, Cleansing} {
			tr, err := MeasurementTrace(app, mode, cfg.Seeds[0])
			if err != nil {
				return err
			}
			channel, label := tr.Access, "AccessNum"
			if mode == Cleansing {
				channel, label = tr.Miss, "MissNum"
			}
			p("`%-5s %-13v` %s `%s` %.0f → %.0f (%.2fx)\n\n",
				app, mode, label, trace.Sparkline(channel, 60),
				tr.BeforeMean, tr.DuringMean, tr.DuringMean/tr.BeforeMean)
		}
	}

	// 3. Detector comparison, both scenarios (Figs. 11-13, 15-16).
	factories := StandardFactories(cfg.WithDNN)
	for _, adaptive := range []bool{false, true} {
		scenario := "Scenario 1 (Figs. 11–13)"
		if adaptive {
			scenario = "Scenario 2, adaptive (Figs. 15–16)"
		}
		p("## Detector comparison — %s\n\n", scenario)
		p("| App | Scheme | Recall | Specificity | Delay (s) |\n|---|---|---|---|---|\n")
		cells, err := CompareDetectors(cfg.Apps, factories, BusLock, adaptive, cfg.Seeds)
		if err != nil {
			return err
		}
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].App != cells[j].App {
				return cells[i].App < cells[j].App
			}
			return cells[i].Detector < cells[j].Detector
		})
		for _, c := range cells {
			p("| %s | %s | %.3f | %.3f | %.1f |\n",
				c.App, c.Detector, c.Recall.Median, c.Spec.Median, c.Delay)
		}
		p("\n")
	}

	// 4. Overhead (Fig. 14).
	p("## Performance overhead (Fig. 14)\n\n")
	p("| App | Scheme | Normalized exec time |\n|---|---|---|\n")
	overheadApps := cfg.Apps
	if len(overheadApps) > 2 {
		overheadApps = overheadApps[:2]
	}
	rows, err := Fig14Overhead(overheadApps)
	if err != nil {
		return err
	}
	for _, r := range rows {
		p("| %s | %s | %.3f |\n", r.App, r.Detector, r.Normalized)
	}
	p("\n")

	// 5. Extensions.
	p("## Extensions\n\n")
	mig, err := MigrationStudy("KM", 60, 600, cfg.Seeds[0])
	if err != nil {
		return err
	}
	p("* **Migration response**: %d migrations; time under attack %.0f%% → %.0f%%; migration mitigates but cannot defeat the attack.\n",
		mig.Migrations, 100*mig.AttackedFractionNoResponse, 100*mig.AttackedFraction)
	cont, err := ContainerStudy(BusLock, 600, cfg.Seeds[0])
	if err != nil {
		return err
	}
	p("* **Containers (Sec. VIII)**: invocation throughput %.2f/s → %.2f/s under bus locking; SDS/U on the per-function aggregate: recall %.2f, specificity %.2f.\n",
		cont.CleanThroughput, cont.AttackedThroughput, cont.Accuracy.Recall, cont.Accuracy.Specificity)
	micro, fast, err := MicrosimCalibration()
	if err != nil {
		return err
	}
	p("* **Substrate calibration**: cleansing miss inflation %.1fx (microsim) vs %.1fx (fast model).\n", micro, fast)

	if elapsed != nil {
		p("\n_Generated in %s by `memdos report`; every number is deterministic given the seeds._\n",
			elapsed().Round(time.Millisecond))
	}
	return nil
}
