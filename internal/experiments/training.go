package experiments

import (
	"fmt"
	"sync"

	"memdos/internal/attack"
	"memdos/internal/core"
	"memdos/internal/dnn"
	"memdos/internal/sim"
	"memdos/internal/vmm"
	"memdos/internal/workload"
)

// TrainingSpec controls DNN training-data generation (Section V-B: the
// paper collects windows from every application with and without attack;
// its sample count is 20137 and it trains 3000 epochs on GPU — see
// DESIGN.md for the CPU-scale substitution).
type TrainingSpec struct {
	// Apps to include (Table II abbreviations).
	Apps []string
	// RunSeconds of counter stream per (app, attack-state) pair.
	RunSeconds float64
	// Window and Stride slice the stream into labelled windows.
	Window, Stride int
	// Seed drives the generation runs.
	Seed uint64
	// Arch picks the per-stage architecture.
	Arch func(channels, classes int) LSTMFCNConfigAlias
	// Train is the optimizer configuration.
	Train dnn.TrainConfig
}

// LSTMFCNConfigAlias keeps the dnn dependency out of most call sites.
type LSTMFCNConfigAlias = dnn.LSTMFCNConfig

// DefaultTrainingSpec returns the configuration used by the shared cascade:
// all ten applications, compact architecture, CPU-scale epochs.
func DefaultTrainingSpec() TrainingSpec {
	cfg := dnn.DefaultTrainConfig()
	cfg.Epochs = 12
	cfg.BatchSize = 32
	return TrainingSpec{
		Apps:       workload.Abbrevs(),
		RunSeconds: 120,
		Window:     200,
		Stride:     200,
		Seed:       1,
		Arch:       dnn.CompactLSTMFCNConfig,
		Train:      cfg,
	}
}

// attackLabel maps an AttackMode to the cascade's class label.
func attackLabel(mode AttackMode) int {
	switch mode {
	case BusLock:
		return dnn.ClassBusLock
	case Cleansing:
		return dnn.ClassCleansing
	default:
		return dnn.ClassNoAttack
	}
}

// collectWindows runs one (app, mode) pair with the attack active for the
// whole run and slices the victim's counter stream into windows.
func collectWindows(app string, mode AttackMode, dur float64, seed uint64, w, stride int) ([][][]float64, error) {
	cfg := vmm.DefaultConfig()
	cfg.Seed = seed
	srv, err := vmm.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	spec, err := workload.ByAbbrev(app)
	if err != nil {
		return nil, err
	}
	victim, err := srv.AddApp("victim", spec.Service())
	if err != nil {
		return nil, err
	}
	switch mode {
	case BusLock:
		atk, err := attack.NewBusLock(attack.Always{}, BusLockDuty)
		if err != nil {
			return nil, err
		}
		if _, err := srv.AddAttacker("attacker", atk); err != nil {
			return nil, err
		}
	case Cleansing:
		atk, err := attack.NewLLCCleansing(attack.Always{}, CleansingPressure, CleansingRate)
		if err != nil {
			return nil, err
		}
		if _, err := srv.AddAttacker("attacker", atk); err != nil {
			return nil, err
		}
	}
	srv.RunUntil(dur, nil)
	c := srv.Counter(victim.ID())
	acc := c.AccessSeries().Values
	miss := c.MissSeries().Values

	var out [][][]float64
	for lo := 0; lo+w <= len(acc); lo += stride {
		win := make([][]float64, w)
		for t := 0; t < w; t++ {
			win[t] = []float64{acc[lo+t], miss[lo+t]}
		}
		out = append(out, win)
	}
	return out, nil
}

// GenerateCascadeSamples produces the labelled training corpus for the
// cascade across all apps and attack states. Each (app, attack-state)
// collection run is one parallel cell; the corpus is concatenated in cell
// order, so the sample sequence is identical to a serial generation pass.
func GenerateCascadeSamples(spec TrainingSpec) ([]dnn.CascadeSample, error) {
	if len(spec.Apps) < 2 {
		return nil, fmt.Errorf("experiments: training needs at least 2 apps")
	}
	modes := []AttackMode{NoAttack, BusLock, Cleansing}
	chunks, err := MapCells(DefaultRunner(), len(spec.Apps)*len(modes), func(i int) ([]dnn.CascadeSample, error) {
		appIdx := i / len(modes)
		mode := modes[i%len(modes)]
		wins, err := collectWindows(spec.Apps[appIdx], mode, spec.RunSeconds,
			spec.Seed+uint64(appIdx)*31+uint64(mode), spec.Window, spec.Stride)
		if err != nil {
			return nil, err
		}
		out := make([]dnn.CascadeSample, 0, len(wins))
		for _, w := range wins {
			out = append(out, dnn.CascadeSample{
				Window:      w,
				AppLabel:    appIdx,
				AttackLabel: attackLabel(mode),
			})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var samples []dnn.CascadeSample
	for _, chunk := range chunks {
		samples = append(samples, chunk...)
	}
	return samples, nil
}

// TrainCascade generates the corpus and trains a cascade per the spec.
func TrainCascade(spec TrainingSpec) (*dnn.Cascade, error) {
	samples, err := GenerateCascadeSamples(spec)
	if err != nil {
		return nil, err
	}
	rng := simRNG(spec.Seed + 7)
	c, err := dnn.NewCascade(len(spec.Apps), spec.Arch, rng)
	if err != nil {
		return nil, err
	}
	if _, _, err := dnn.TrainCascade(c, samples, spec.Train); err != nil {
		return nil, err
	}
	return c, nil
}

var (
	sharedOnce    sync.Once
	sharedCascade *dnn.Cascade
	sharedErr     error
)

// SharedCascade trains (once per process) the cascade used by every DNN
// experiment. Training is deterministic, so all callers observe the same
// model.
func SharedCascade() (*dnn.Cascade, error) {
	sharedOnce.Do(func() {
		sharedCascade, sharedErr = TrainCascade(DefaultTrainingSpec())
	})
	return sharedCascade, sharedErr
}

// AttackClassOf exposes the mode -> cascade-class mapping for callers
// scoring classifications directly.
func AttackClassOf(mode AttackMode) int { return attackLabel(mode) }

// HeldOutWindows generates fresh windows for the (app, mode) pair from a
// seed disjoint from the training runs, for held-out evaluation.
func HeldOutWindows(app string, mode AttackMode, spec TrainingSpec) ([][][]float64, error) {
	return collectWindows(app, mode, spec.RunSeconds/2,
		spec.Seed+0x5eed0000+uint64(mode), spec.Window, spec.Stride)
}

// DNNFactory builds the DNN detector around the shared cascade. Each
// detector gets its own clone: LSTM-FCN forward passes cache layer state,
// so concurrent runs must not share one model instance.
func DNNFactory(env *Env) (core.Detector, error) {
	c, err := SharedCascade()
	if err != nil {
		return nil, err
	}
	own, err := c.Clone()
	if err != nil {
		return nil, err
	}
	return core.NewDNNDetector(own, env.Params)
}

// simRNG is a tiny indirection so training.go does not import sim at every
// call site.
func simRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed) }
