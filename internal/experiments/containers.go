package experiments

import (
	"fmt"

	"memdos/internal/attack"
	"memdos/internal/container"
	"memdos/internal/core"
	"memdos/internal/metrics"
	"memdos/internal/workload"
)

// ContainerResult is the outcome of the Section VIII container study.
type ContainerResult struct {
	// CleanThroughput / AttackedThroughput are completed invocations per
	// second before and during the attack.
	CleanThroughput, AttackedThroughput float64
	// Accuracy scores the SDS/U detector on the per-function aggregate
	// counter stream.
	Accuracy Accuracy
	// SamplesPerInstance documents why per-instance profiling is
	// infeasible (compare with Params.W = 200).
	SamplesPerInstance int
}

// ContainerStudy runs the paper's future-work scenario: a serverless-style
// function (short-lived instances, aggressive churn) under a memory DoS
// attack on a container host. Per-instance profiling is impossible — an
// instance's whole life yields about one MA window of samples — so
// detection runs on the per-function aggregate stream with the
// profile-free SDS/U scheme.
func ContainerStudy(mode AttackMode, dur float64, seed uint64) (*ContainerResult, error) {
	if mode == NoAttack {
		return nil, fmt.Errorf("experiments: container study needs an attack mode")
	}
	if dur < 120 {
		return nil, fmt.Errorf("experiments: container study needs >= 120s, got %v", dur)
	}
	cfg := container.DefaultConfig()
	cfg.Seed = seed
	plat, err := container.NewPlatform(cfg)
	if err != nil {
		return nil, err
	}
	inv, err := workload.NewBuilder("image thumbnailer", "THUMB").
		AccessRate(1.5e6).
		MissRatio(0.07).
		Noise(0.1).
		Runtime(2).
		Build()
	if err != nil {
		return nil, err
	}
	fn, err := plat.Deploy(container.FunctionSpec{
		Name: "thumbnailer", Invocation: inv, ColdStart: 0.2, Concurrency: 4,
	})
	if err != nil {
		return nil, err
	}
	attackStart := dur / 2
	atk, err := newAttacker(mode, attack.Window{Start: attackStart, End: dur})
	if err != nil {
		return nil, err
	}
	if err := plat.AddAttacker(atk); err != nil {
		return nil, err
	}

	params := core.DefaultParams()
	det, err := core.NewSDSU(fn.MeanSpeed, params)
	if err != nil {
		return nil, err
	}

	var decisions []core.Decision
	completedAtAttack := 0
	plat.RunUntil(dur, func(step container.StepResult) {
		if step.Time <= attackStart {
			completedAtAttack = fn.Completed()
		}
		if s, ok := step.Samples["thumbnailer"]; ok {
			decisions = append(decisions, det.Push(s)...)
		}
	})

	truth := []metrics.Interval{{Start: attackStart, End: dur}}
	conf := metrics.Evaluate(decisions, truth, EvalGrace)
	res := &ContainerResult{
		CleanThroughput:    float64(completedAtAttack) / attackStart,
		AttackedThroughput: float64(fn.Completed()-completedAtAttack) / (dur - attackStart),
		Accuracy: Accuracy{
			Recall:      conf.Recall(),
			Specificity: conf.Specificity(),
			MeanDelay:   metrics.MeanDelay(metrics.DetectionDelay(decisions, truth)),
		},
		SamplesPerInstance: int(inv.WorkSeconds / cfg.TPCM),
	}
	return res, nil
}
