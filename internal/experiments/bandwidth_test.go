package experiments

import (
	"math"
	"reflect"
	"testing"

	"memdos/internal/core"
	"memdos/internal/mem"
)

func TestBandwidthSpecValidation(t *testing.T) {
	if _, err := BandwidthStudy(BandwidthSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := BandwidthStudy(BandwidthSpec{App: "KM", Seeds: []uint64{1}, Sockets: []int{0}}); err == nil {
		t.Error("zero-socket topology accepted")
	}
	// The MemBW attack cannot run without the memory-controller model.
	if _, err := Run(DefaultRunSpec("KM", MemBW, 1), core.DefaultParams(), nil); err == nil {
		t.Error("MemBW run without RunSpec.Mem accepted")
	}
	if _, err := ClosedLoop(DefaultClosedLoopSpec("KM", MemBW, 1)); err == nil {
		t.Error("MemBW closed loop without Mem accepted")
	}
}

// shortBandwidthSpec keeps the study small enough for CI: one app, one
// seed, quarter-length runs.
func shortBandwidthSpec() BandwidthSpec {
	spec := DefaultBandwidthSpec("KM")
	spec.Duration = 120
	return spec
}

// TestBandwidthStudySmoke runs the full study at reduced duration: the
// detection matrix covers both topologies and placements, and every
// closed-loop arm shows the hog slowing the victim with the mitigated
// arm recovering part of it.
func TestBandwidthStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth study is seconds-long")
	}
	res, err := BandwidthStudy(shortBandwidthSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Arms: (1,local), (2,local), (2,remote); detectors: SDS, KStest.
	if len(res.Cells) != 6 {
		t.Fatalf("cells = %d, want 6: %+v", len(res.Cells), res.Cells)
	}
	if len(res.Loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(res.Loops))
	}
	for _, c := range res.Cells {
		if !math.IsNaN(c.Specificity) && c.Specificity < 0.5 {
			t.Errorf("cell %+v: implausible specificity", c)
		}
	}
	for _, l := range res.Loops {
		for _, lp := range []*ClosedLoopResult{l.Full, l.Contained, l.ThrottleOnly} {
			if lp.AttackedNormalized <= 1.02 {
				t.Errorf("loop %d-socket remote=%v: hog did not slow the victim (%v)",
					l.Sockets, l.Remote, lp.AttackedNormalized)
			}
			if lp.MitigatedNormalized > lp.AttackedNormalized {
				t.Errorf("loop %d-socket remote=%v: mitigation made it worse (%v vs %v)",
					l.Sockets, l.Remote, lp.MitigatedNormalized, lp.AttackedNormalized)
			}
		}
		// The rung's raison d'être: contained recovery with the budget
		// beats throttle-only containment.
		if l.Contained.MitigatedNormalized > l.ThrottleOnly.MitigatedNormalized {
			t.Errorf("loop %d-socket remote=%v: membw rung did not beat throttle-only (%v vs %v)",
				l.Sockets, l.Remote, l.Contained.MitigatedNormalized, l.ThrottleOnly.MitigatedNormalized)
		}
		if l.Contained.Stats.BandwidthLimits == 0 {
			t.Errorf("loop %d-socket remote=%v: membw rung never actuated", l.Sockets, l.Remote)
		}
	}
}

// TestBandwidthStudyWorkerDeterminism pins the study's output at any
// worker count — the memdos-vet determinism contract for internal/mem
// composed all the way up through experiments.
func TestBandwidthStudyWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth study is seconds-long")
	}
	spec := shortBandwidthSpec()
	spec.Sockets = []int{2}
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	a, err := BandwidthStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(8)
	b, err := BandwidthStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("study diverged across worker counts:\n%+v\n%+v", a, b)
	}
}

// TestMemBWRunEvadesLLCCounters pins the study's headline at the Run
// level: under the DRAM hog the victim's AccessNum mean dips far less
// than its progress, so an LLC-centric detector has little to see.
func TestMemBWRunEvadesLLCCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long simulation")
	}
	mc := mem.DefaultNUMAConfig(1)
	spec := DefaultRunSpec("KM", MemBW, 3)
	spec.Duration = 120
	spec.AttackStart = 60
	spec.Mem = &mc
	res, err := Run(spec, core.DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before, during := meanSplit(res.Access.Values, res.Access.Len()/2)
	if during <= 0 || before <= 0 {
		t.Fatalf("degenerate access means %v / %v", before, during)
	}
	if dip := 1 - during/before; dip > 0.5 {
		t.Errorf("AccessNum dipped %.0f%% under the hog — not an LLC-evading attack", 100*dip)
	}
}

// meanSplit averages vs[:k] and vs[k:].
func meanSplit(vs []float64, k int) (a, b float64) {
	for i, v := range vs {
		if i < k {
			a += v
		} else {
			b += v
		}
	}
	return a / float64(k), b / float64(len(vs)-k)
}
