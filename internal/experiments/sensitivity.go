package experiments

import (
	"fmt"
	"math"

	"memdos/internal/core"
	"memdos/internal/dnn"
	"memdos/internal/stats"
)

// SweepPoint is one sensitivity-curve sample: the parameter value and the
// resulting accuracy and delay (aggregated over seeds).
type SweepPoint struct {
	Value       float64
	Recall      float64
	Specificity float64
	Delay       float64
}

// sweepCell is one Scenario 1 bus-locking run of the app with the given
// parameters and factory under one seed.
func sweepCell(app string, params core.Params, factory DetectorFactory, seed uint64) (Accuracy, error) {
	spec := DefaultRunSpec(app, BusLock, seed)
	res, err := Run(spec, params, map[string]DetectorFactory{"det": factory})
	if err != nil {
		return Accuracy{}, err
	}
	return Score(res, "det", EvalGrace), nil
}

// mergeSweepPoint aggregates the per-seed accuracies of one sweep point,
// in seed order, exactly as the serial loop did.
func mergeSweepPoint(accs []Accuracy) SweepPoint {
	var rec, spc, dly []float64
	for _, a := range accs {
		if !math.IsNaN(a.Recall) {
			rec = append(rec, a.Recall)
		}
		if !math.IsNaN(a.Specificity) {
			spc = append(spc, a.Specificity)
		}
		if !math.IsNaN(a.MeanDelay) {
			dly = append(dly, a.MeanDelay)
		}
	}
	return SweepPoint{
		Recall:      stats.Mean(rec),
		Specificity: stats.Mean(spc),
		Delay:       stats.Mean(dly),
	}
}

// sweepRun executes Scenario 1 bus-locking runs of the app with the given
// parameters and factory, fanning the seeds across the Runner, and
// aggregates.
func sweepRun(app string, params core.Params, factory DetectorFactory, seeds []uint64) (SweepPoint, error) {
	accs, err := MapCells(DefaultRunner(), len(seeds), func(i int) (Accuracy, error) {
		return sweepCell(app, params, factory, seeds[i])
	})
	if err != nil {
		return SweepPoint{}, err
	}
	return mergeSweepPoint(accs), nil
}

// sweepParams runs one sweep over parameter variants for a detector bound
// to the varied params. The whole (variant x seed) grid is flattened into
// one parallel fan-out so a sweep saturates the pool even with one seed
// per point.
func sweepParams(app string, variants []core.Params, values []float64, factory func(core.Params) DetectorFactory, seeds []uint64) ([]SweepPoint, error) {
	if len(variants) != len(values) {
		return nil, fmt.Errorf("experiments: %d variants vs %d values", len(variants), len(values))
	}
	for _, p := range variants {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	accs, err := MapCells(DefaultRunner(), len(variants)*len(seeds), func(i int) (Accuracy, error) {
		p := variants[i/len(seeds)]
		return sweepCell(app, p, factory(p), seeds[i%len(seeds)])
	})
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(variants))
	for vi := range variants {
		pt := mergeSweepPoint(accs[vi*len(seeds) : (vi+1)*len(seeds)])
		pt.Value = values[vi]
		out[vi] = pt
	}
	return out, nil
}

// sdsFactoryWith builds an SDS factory whose detector uses exactly the
// varied parameters. Run re-profiles per parameter set (the profile cache
// keys on the smoothing parameters), so env.Profile already matches p.
func sdsFactoryWith(p core.Params) DetectorFactory {
	return func(env *Env) (core.Detector, error) {
		return core.NewSDS(env.Profile, p)
	}
}

// Fig17AlphaSweep varies the EWMA smoothing factor alpha (paper range
// [0, 1]; alpha = 1 degenerates to the MA series).
func Fig17AlphaSweep(app string, alphas []float64, seeds []uint64) ([]SweepPoint, error) {
	var variants []core.Params
	for _, a := range alphas {
		p := core.DefaultParams()
		p.Alpha = a
		variants = append(variants, p)
	}
	return sweepParams(app, variants, alphas, sdsFactoryWith, seeds)
}

// Fig18KSweep varies the boundary factor k, re-deriving H_C for the 99.9%
// Chebyshev confidence as the paper does.
func Fig18KSweep(app string, ks []float64, seeds []uint64) ([]SweepPoint, error) {
	var variants []core.Params
	for _, k := range ks {
		p := core.DefaultParams()
		p.K = k
		h, err := stats.ChebyshevH(k, 0.999)
		if err != nil {
			return nil, err
		}
		p.HC = h
		variants = append(variants, p)
	}
	return sweepParams(app, variants, ks, sdsFactoryWith, seeds)
}

// Fig19WSweep varies the MA window size W for SDS.
func Fig19WSweep(app string, ws []int, seeds []uint64) ([]SweepPoint, error) {
	var variants []core.Params
	var values []float64
	for _, w := range ws {
		p := core.DefaultParams()
		p.W = w
		if p.DW > w {
			p.DW = w
		}
		variants = append(variants, p)
		values = append(values, float64(w))
	}
	return sweepParams(app, variants, values, sdsFactoryWith, seeds)
}

// Fig21DWSweep varies the MA sliding step for SDS.
func Fig21DWSweep(app string, dws []int, seeds []uint64) ([]SweepPoint, error) {
	var variants []core.Params
	var values []float64
	for _, dw := range dws {
		p := core.DefaultParams()
		p.DW = dw
		variants = append(variants, p)
		values = append(values, float64(dw))
	}
	return sweepParams(app, variants, values, sdsFactoryWith, seeds)
}

// Fig23WPSweep varies SDS/P's analysis window W_P (in multiples of the
// profiled period) on a periodic app.
func Fig23WPSweep(app string, factors []int, seeds []uint64) ([]SweepPoint, error) {
	var variants []core.Params
	var values []float64
	for _, f := range factors {
		p := core.DefaultParams()
		p.WPFactor = f
		variants = append(variants, p)
		values = append(values, float64(f))
	}
	factory := func(p core.Params) DetectorFactory {
		return func(env *Env) (core.Detector, error) {
			return core.NewSDSP(env.Profile, p)
		}
	}
	return sweepParams(app, variants, values, factory, seeds)
}

// Fig24DWPSweep varies SDS/P's evaluation stride DW_P.
func Fig24DWPSweep(app string, dwps []int, seeds []uint64) ([]SweepPoint, error) {
	var variants []core.Params
	var values []float64
	for _, d := range dwps {
		p := core.DefaultParams()
		p.DWP = d
		variants = append(variants, p)
		values = append(values, float64(d))
	}
	factory := func(p core.Params) DetectorFactory {
		return func(env *Env) (core.Detector, error) {
			return core.NewSDSP(env.Profile, p)
		}
	}
	return sweepParams(app, variants, values, factory, seeds)
}

// dnnSweepApps are the applications used to train the reduced sweep
// cascades (Figs. 20/22 present k-means results).
var dnnSweepApps = []string{"KM", "BA", "TS"}

// dnnCascadeForW trains a reduced cascade with window size w. Sweep
// cascades are throwaway models retrained per sweep point, so they use
// data-parallel minibatch gradients (a fixed shard count keeps the result
// deterministic and core-count-independent); the shared cascade keeps the
// serial trajectory the accuracy experiments were tuned against.
func dnnCascadeForW(w int) (*dnn.Cascade, error) {
	spec := DefaultTrainingSpec()
	spec.Apps = dnnSweepApps
	spec.Window = w
	spec.Stride = w
	spec.RunSeconds = 90
	spec.Train.Epochs = 8
	spec.Train.GradShards = 4
	return TrainCascade(spec)
}

// Fig20WSweepDNN varies the window size for the DNN detector, retraining
// the (reduced) cascade per window length.
func Fig20WSweepDNN(ws []int, seeds []uint64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, w := range ws {
		cascade, err := dnnCascadeForW(w)
		if err != nil {
			return nil, err
		}
		p := core.DefaultParams()
		p.W = w
		if p.DW > w {
			p.DW = w
		}
		factory := func(env *Env) (core.Detector, error) {
			return core.NewDNNDetector(cascade, p)
		}
		pt, err := sweepRun("KM", p, factory, seeds)
		if err != nil {
			return nil, err
		}
		pt.Value = float64(w)
		out = append(out, pt)
	}
	return out, nil
}

// Fig22DWSweepDNN varies the decision stride for the DNN detector; the
// model is unchanged (the stride only affects evaluation cadence).
func Fig22DWSweepDNN(dws []int, seeds []uint64) ([]SweepPoint, error) {
	cascade, err := dnnCascadeForW(200)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, dw := range dws {
		p := core.DefaultParams()
		p.DW = dw
		factory := func(env *Env) (core.Detector, error) {
			return core.NewDNNDetector(cascade, p)
		}
		pt, err := sweepRun("KM", p, factory, seeds)
		if err != nil {
			return nil, err
		}
		pt.Value = float64(dw)
		out = append(out, pt)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md Section 5).
// ---------------------------------------------------------------------------

// AblationRawThreshold compares the naive raw-threshold detector of
// Section IV-A with SDS on the same runs. The naive detector fails both
// ways: with the paper's example threshold (50%) it only fires on the
// single transition sample, so it cannot *hold* an alarm through an attack
// (near-zero recall); with a threshold low enough to react to the attacked
// level, raw sample noise floods it with false positives. SDS's MA+EWMA
// smoothing plus profiled bounds avoid both failure modes.
// The returned map has keys "naive-coarse" (threshold 0.5),
// "naive-fine" (threshold 0.15) and "SDS".
func AblationRawThreshold(app string, seeds []uint64) (map[string]Accuracy, error) {
	params := core.DefaultParams()
	factories := map[string]DetectorFactory{
		"naive-coarse": func(env *Env) (core.Detector, error) { return core.NewRawThreshold(0.5) },
		"naive-fine":   func(env *Env) (core.Detector, error) { return core.NewRawThreshold(0.15) },
		"SDS":          SDSFactory,
	}
	names := []string{"naive-coarse", "naive-fine", "SDS"}
	accs, err := MapCells(DefaultRunner(), len(names)*len(seeds), func(i int) (Accuracy, error) {
		name := names[i/len(seeds)]
		seed := seeds[i%len(seeds)]
		res, err := Run(DefaultRunSpec(app, BusLock, seed), params, map[string]DetectorFactory{name: factories[name]})
		if err != nil {
			return Accuracy{}, err
		}
		return Score(res, name, EvalGrace), nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]Accuracy{}
	for ni, name := range names {
		var rec, spc []float64
		for si := range seeds {
			a := accs[ni*len(seeds)+si]
			rec = append(rec, a.Recall)
			spc = append(spc, a.Specificity)
		}
		out[name] = Accuracy{Recall: stats.Mean(rec), Specificity: stats.Mean(spc)}
	}
	return out, nil
}

// PeriodEstimatorAblation compares DFT-only, ACF-only and DFT-ACF period
// estimates against the known ground-truth period of a periodic app's MA
// series; it returns the mean absolute relative error of each estimator.
func PeriodEstimatorAblation(app string, seeds []uint64) (dftErr, acfErr, dftacfErr float64, err error) {
	spec, err2 := appPeriodTruth(app)
	if err2 != nil {
		return 0, 0, 0, err2
	}
	params := core.DefaultParams()
	type cell struct{ dft, acf, both float64 }
	cells, err2 := MapCells(DefaultRunner(), len(seeds), func(i int) (cell, error) {
		run := DefaultRunSpec(app, NoAttack, seeds[i])
		run.Duration = 120
		res, err := Run(run, params, nil)
		if err != nil {
			return cell{}, err
		}
		ma := stats.MA(res.Access.Values, params.W, params.DW)
		truth := spec
		relErr := func(p float64) float64 {
			if math.IsNaN(p) {
				return 1
			}
			return math.Abs(p-truth) / truth
		}
		return cell{
			dft:  relErr(periodOrNaN(periodDFTOnly(ma))),
			acf:  relErr(periodOrNaN(periodACFOnly(ma))),
			both: relErr(periodOrNaN(periodDFTACF(ma))),
		}, nil
	})
	if err2 != nil {
		return 0, 0, 0, err2
	}
	var eDFT, eACF, eBoth []float64
	for _, c := range cells {
		eDFT = append(eDFT, c.dft)
		eACF = append(eACF, c.acf)
		eBoth = append(eBoth, c.both)
	}
	return stats.Mean(eDFT), stats.Mean(eACF), stats.Mean(eBoth), nil
}

// appPeriodTruth returns the app's nominal period in MA samples.
func appPeriodTruth(app string) (float64, error) {
	s, err := workloadByAbbrev(app)
	if err != nil {
		return 0, err
	}
	if !s.Periodic {
		return 0, fmt.Errorf("experiments: %s is not periodic", app)
	}
	params := core.DefaultParams()
	return s.PeriodSec / (float64(params.DW) * params.TPCM), nil
}

// MicrosimCalibration cross-checks the fast counter model against the
// set-associative cache microsimulation: it runs the cleansing attack in
// both and returns the victim miss-ratio inflation factor observed in each.
func MicrosimCalibration() (microFactor, fastFactor float64, err error) {
	microFactor, err = microsimCleansingFactor()
	if err != nil {
		return 0, 0, err
	}
	// Fast counter model: k-means with cleansing in the second half.
	spec := RunSpec{App: "KM", Mode: Cleansing, Duration: 120, Seed: 3, UtilityVMs: 0, Service: true}
	srv, victim, _, err := buildServerWithWindow(spec, 60, 120)
	if err != nil {
		return 0, 0, err
	}
	srv.RunUntil(120, nil)
	c := srv.Counter(victim.ID())
	access, miss := c.AccessSeries(), c.MissSeries()
	ratio := func(t0, t1 float64) float64 {
		acc := access.Window(t0, t1).Mean()
		if stats.ApproxEqual(acc, 0, 1e-12) {
			return 0
		}
		return miss.Window(t0, t1).Mean() / acc
	}
	before := ratio(10, 60)
	during := ratio(70, 120)
	if stats.ApproxEqual(before, 0, 1e-12) {
		return 0, 0, fmt.Errorf("experiments: zero baseline miss ratio")
	}
	fastFactor = during / before
	return microFactor, fastFactor, nil
}

// periodOrNaN converts (estimate, ok) period results.
func periodOrNaN(p float64, ok bool) float64 {
	if !ok {
		return math.NaN()
	}
	return p
}
