package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"memdos/internal/core"
	"memdos/internal/trace"
	"memdos/internal/workload"
)

func TestAttackModeString(t *testing.T) {
	if NoAttack.String() != "none" || BusLock.String() != "bus locking" ||
		Cleansing.String() != "LLC cleansing" {
		t.Error("mode names wrong")
	}
	if AttackMode(9).String() == "" {
		t.Error("unknown mode should format")
	}
}

func TestRunSpecValidation(t *testing.T) {
	if _, err := Run(DefaultRunSpec("NOPE", NoAttack, 1), core.DefaultParams(), nil); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRunCleanScenario(t *testing.T) {
	spec := DefaultRunSpec("KM", NoAttack, 1)
	spec.Duration = 60
	res, err := Run(spec, core.DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Access.Len() != 6000 {
		t.Errorf("samples = %d", res.Access.Len())
	}
	if len(res.Truth) != 0 {
		t.Errorf("clean run has truth intervals %v", res.Truth)
	}
}

func TestRunScenario1Truth(t *testing.T) {
	spec := DefaultRunSpec("KM", BusLock, 1)
	spec.Duration = Scenario1Duration
	res, err := Run(spec, core.DefaultParams(), map[string]DetectorFactory{"SDS": SDSFactory})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truth) != 1 || res.Truth[0].Start != Scenario1AttackStart {
		t.Fatalf("truth = %v", res.Truth)
	}
	a := Score(res, "SDS", EvalGrace)
	if a.Recall < 0.95 {
		t.Errorf("SDS recall = %v", a.Recall)
	}
	if a.Specificity < 0.9 {
		t.Errorf("SDS specificity = %v", a.Specificity)
	}
	if math.IsNaN(a.MeanDelay) || a.MeanDelay > 35 {
		t.Errorf("SDS delay = %v", a.MeanDelay)
	}
}

func TestRunAdaptiveTruth(t *testing.T) {
	spec := DefaultRunSpec("KM", BusLock, 2)
	spec.Adaptive = true
	spec.Duration = 120
	res, err := Run(spec, core.DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truth) == 0 {
		t.Fatal("adaptive run has no attack intervals")
	}
	for _, iv := range res.Truth {
		if iv.End <= iv.Start || iv.End > 120 {
			t.Errorf("bad interval %v", iv)
		}
	}
}

func TestProfileCacheStable(t *testing.T) {
	p := core.DefaultParams()
	a, err := profileFor("BA", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := profileFor("BA", p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cached profile differs")
	}
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1KStestFalsePositives(600, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, r := range res.Rows {
		rates[r.App] = r.FalseAlarmRate
	}
	if len(rates) != 10 {
		t.Fatalf("rows = %d", len(rates))
	}
	// Paper Section III-B: TS and PCA worst (~60%), KM best (~20%).
	if rates["KM"] >= rates["TS"] || rates["KM"] >= rates["PCA"] {
		t.Errorf("KM rate %v should be lowest (TS %v, PCA %v)", rates["KM"], rates["TS"], rates["PCA"])
	}
	if rates["TS"] < 0.4 {
		t.Errorf("TS rate %v, want >= 0.4 (paper ~0.6)", rates["TS"])
	}
	if rates["KM"] > 0.35 {
		t.Errorf("KM rate %v, want <= 0.35 (paper ~0.2)", rates["KM"])
	}
	// All apps show substantial false positives — the paper's point.
	for app, r := range rates {
		if r < 0.05 {
			t.Errorf("%s rate %v implausibly low", app, r)
		}
	}
	if len(res.TeraSortFlags) == 0 {
		t.Error("no TeraSort flag timeline")
	}
}

func TestMeasurementTracesObservations(t *testing.T) {
	// Observation (1) and (2) across all apps, one seed.
	for _, app := range workload.Abbrevs() {
		bl, err := MeasurementTrace(app, BusLock, 4)
		if err != nil {
			t.Fatal(err)
		}
		if bl.DuringMean > 0.55*bl.BeforeMean {
			t.Errorf("%s bus lock: AccessNum %v -> %v, insufficient drop", app, bl.BeforeMean, bl.DuringMean)
		}
		cl, err := MeasurementTrace(app, Cleansing, 4)
		if err != nil {
			t.Fatal(err)
		}
		if cl.DuringMean < 2*cl.BeforeMean {
			t.Errorf("%s cleansing: MissNum %v -> %v, insufficient rise", app, cl.BeforeMean, cl.DuringMean)
		}
	}
	// Periodic apps: period elongates (Observation 2).
	for _, app := range []string{"PCA", "FN"} {
		tr, err := MeasurementTrace(app, Cleansing, 4)
		if err != nil {
			t.Fatal(err)
		}
		if tr.CleanPeriod == 0 {
			t.Errorf("%s: no clean period", app)
			continue
		}
		if tr.AttackedPeriod != 0 && tr.AttackedPeriod <= tr.CleanPeriod {
			t.Errorf("%s: period %v -> %v, expected elongation", app, tr.CleanPeriod, tr.AttackedPeriod)
		}
	}
}

func TestFig7Example(t *testing.T) {
	res, err := Fig7SDSBExample()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EWMA) == 0 {
		t.Fatal("no EWMA series")
	}
	if res.Lower >= res.Upper {
		t.Errorf("bounds [%v, %v]", res.Lower, res.Upper)
	}
	if res.AlarmWindow < res.AttackWindow {
		t.Errorf("alarm window %d before attack window %d", res.AlarmWindow, res.AttackWindow)
	}
	// Post-attack EWMA sits below the lower bound.
	tail := res.EWMA[len(res.EWMA)-10:]
	for _, v := range tail {
		if v > res.Lower {
			t.Errorf("post-attack EWMA %v above lower bound %v", v, res.Lower)
		}
	}
}

func TestFig8Example(t *testing.T) {
	res, err := Fig8SDSPExample()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.NormalPeriod-17) > 3 {
		t.Errorf("FN normal period = %v, want ~17", res.NormalPeriod)
	}
	if res.AlarmWindow < res.AttackWindow {
		t.Errorf("alarm window %d before attack %d", res.AlarmWindow, res.AttackWindow)
	}
	// Pre-attack estimates cluster near the normal period; post-attack
	// evaluations are anomalous — either an elongated period or no
	// credible period at all (the stretched pattern no longer fits the
	// W_P analysis window).
	pre, post, postAnomalous := 0, 0, 0
	var preDev float64
	for i, w := range res.EvalWindows {
		p := res.Periods[i]
		switch {
		case w < res.AttackWindow:
			if p == 0 {
				continue
			}
			pre++
			preDev += math.Abs(p-res.NormalPeriod) / res.NormalPeriod
		case w > res.AttackWindow+20:
			post++
			if p == 0 || math.Abs(p-res.NormalPeriod)/res.NormalPeriod > 0.2 {
				postAnomalous++
			}
		}
	}
	if pre == 0 || post == 0 {
		t.Fatalf("period estimates: %d pre, %d post", pre, post)
	}
	if preDev/float64(pre) > 0.15 {
		t.Errorf("pre-attack period deviation = %v", preDev/float64(pre))
	}
	if frac := float64(postAnomalous) / float64(post); frac < 0.8 {
		t.Errorf("only %v of post-attack evaluations anomalous", frac)
	}
}

func TestScenario1ComparisonShape(t *testing.T) {
	// The Figs. 11-13 headline on a subset: SDS specificity beats KStest,
	// both recall ~1, SDS delay shorter.
	cells, err := CompareDetectors([]string{"KM", "TS"}, StandardFactories(false), BusLock, false, []uint64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ComparisonCell{}
	for _, c := range cells {
		byKey[c.App+"/"+c.Detector] = c
	}
	var sdsDelaySum, ksDelaySum float64
	for _, app := range []string{"KM", "TS"} {
		sds := byKey[app+"/SDS"]
		ks := byKey[app+"/KStest"]
		if sds.Recall.Median < 0.95 {
			t.Errorf("%s SDS recall = %v", app, sds.Recall.Median)
		}
		if sds.Spec.Median < 0.9 {
			t.Errorf("%s SDS specificity = %v", app, sds.Spec.Median)
		}
		// Fig. 13 envelope: SDS within ~15-30 s; KStest's protocol floor
		// is 4 tests at L_M = 5 s, but a latched false positive can
		// shortcut an individual run, so per-run lower bounds stay loose.
		if sds.Delay < 10 || sds.Delay > 32 {
			t.Errorf("%s SDS delay = %v, want ~15-30", app, sds.Delay)
		}
		if ks.Delay < 5 || ks.Delay > 55 {
			t.Errorf("%s KStest delay = %v, want within (5, 55)", app, ks.Delay)
		}
		sdsDelaySum += sds.Delay
		ksDelaySum += ks.Delay
	}
	// Aggregate ordering (the "40% shorter detection delay" headline):
	// SDS responds no slower than KStest overall.
	if sdsDelaySum > ksDelaySum+2 {
		t.Errorf("aggregate delays: SDS %v vs KStest %v", sdsDelaySum/2, ksDelaySum/2)
	}
	// Fig. 12's false-positive gap is strongest on the phase-heavy apps;
	// KM is the paper's mildest case and our KStest round protocol keeps
	// it clean (documented deviation in EXPERIMENTS.md), so the strict
	// ordering is asserted on TeraSort.
	if ks, sds := byKey["TS/KStest"], byKey["TS/SDS"]; ks.Spec.Median >= sds.Spec.Median {
		t.Errorf("TS KStest specificity %v should trail SDS %v", ks.Spec.Median, sds.Spec.Median)
	}
}

func TestFig14OverheadShape(t *testing.T) {
	rows, err := Fig14Overhead([]string{"KM"})
	if err != nil {
		t.Fatal(err)
	}
	norm := map[string]float64{}
	for _, r := range rows {
		norm[r.Detector] = r.Normalized
	}
	// Paper Fig. 14: SDS 1-2%, DNN 2-5%, KStest 3-8%.
	if o := norm["SDS"] - 1; o < 0.005 || o > 0.03 {
		t.Errorf("SDS overhead = %v, want 1-2%%", o)
	}
	if o := norm["DNN"] - 1; o < 0.02 || o > 0.06 {
		t.Errorf("DNN overhead = %v, want 2-5%%", o)
	}
	if o := norm["KStest"] - 1; o < 0.03 || o > 0.09 {
		t.Errorf("KStest overhead = %v, want 3-8%%", o)
	}
	if !(norm["SDS"] < norm["DNN"] && norm["DNN"] < norm["KStest"]) {
		t.Errorf("overhead ordering violated: %v", norm)
	}
}

func TestSweepAlphaSmoke(t *testing.T) {
	pts, err := Fig17AlphaSweep("KM", []float64{0.2, 0.8}, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Recall < 0.9 || p.Specificity < 0.85 {
			t.Errorf("alpha=%v accuracy degraded: %+v", p.Value, p)
		}
	}
}

func TestSweepKShape(t *testing.T) {
	pts, err := Fig18KSweep("KM", []float64{1.125, 1.5}, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	// Larger k -> smaller HC -> shorter delay (Fig. 18b).
	if !(pts[1].Delay < pts[0].Delay) {
		t.Errorf("delay should shrink with k: %v vs %v", pts[0].Delay, pts[1].Delay)
	}
}

func TestSweepDWShape(t *testing.T) {
	pts, err := Fig21DWSweep("KM", []int{20, 200}, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 21b: delay grows with the sliding step.
	if !(pts[0].Delay < pts[1].Delay) {
		t.Errorf("delay should grow with DW: %v vs %v", pts[0].Delay, pts[1].Delay)
	}
}

func TestSweepWPShape(t *testing.T) {
	pts, err := Fig23WPSweep("FN", []int{2, 6}, []uint64{7})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 23b: delay grows with W_P.
	if !(pts[0].Delay < pts[1].Delay) {
		t.Errorf("delay should grow with WP: %v vs %v", pts[0].Delay, pts[1].Delay)
	}
}

func TestAblationRawThreshold(t *testing.T) {
	accs, err := AblationRawThreshold("TS", []uint64{8})
	if err != nil {
		t.Fatal(err)
	}
	// The coarse threshold only sees the attack transition, never the
	// attacked steady state: near-zero recall.
	if a := accs["naive-coarse"]; a.Recall > 0.2 {
		t.Errorf("coarse naive recall = %v, expected near zero", a.Recall)
	}
	// The fine threshold reacts to raw noise: poor specificity.
	if a := accs["naive-fine"]; a.Specificity > 0.7 {
		t.Errorf("fine naive specificity = %v, expected poor", a.Specificity)
	}
	if a := accs["SDS"]; a.Recall < 0.95 || a.Specificity < 0.9 {
		t.Errorf("SDS accuracy = %+v", a)
	}
}

func TestPeriodEstimatorAblation(t *testing.T) {
	dftErr, acfErr, bothErr, err := PeriodEstimatorAblation("FN", []uint64{9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if bothErr > 0.15 {
		t.Errorf("DFT-ACF error = %v", bothErr)
	}
	// The combination should not be worse than both constituents.
	if bothErr > dftErr+0.05 && bothErr > acfErr+0.05 {
		t.Errorf("DFT-ACF (%v) worse than both DFT (%v) and ACF (%v)", bothErr, dftErr, acfErr)
	}
}

func TestMicrosimCalibration(t *testing.T) {
	micro, fast, err := MicrosimCalibration()
	if err != nil {
		t.Fatal(err)
	}
	// Both substrates must agree on direction (severalfold miss
	// inflation) and rough magnitude.
	if micro < 2 {
		t.Errorf("microsim inflation = %v, want >= 2", micro)
	}
	if fast < 2 {
		t.Errorf("fast-model inflation = %v, want >= 2", fast)
	}
	ratio := micro / fast
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("substrates disagree: micro %v vs fast %v", micro, fast)
	}
}

func TestMigrationStudyShape(t *testing.T) {
	res, err := MigrationStudy("KM", 60, 600, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Without a response the attack runs ~95% of the time; with
	// detect-and-migrate it is reduced but far from eliminated, because
	// the attacker re-co-locates (the paper's Section II argument).
	if res.AttackedFractionNoResponse < 0.9 {
		t.Errorf("no-response attacked fraction = %v", res.AttackedFractionNoResponse)
	}
	if res.Migrations < 3 {
		t.Errorf("only %d migrations over 600s", res.Migrations)
	}
	if res.AttackedFraction >= res.AttackedFractionNoResponse {
		t.Errorf("migration did not reduce attacked time: %v vs %v",
			res.AttackedFraction, res.AttackedFractionNoResponse)
	}
	if res.AttackedFraction < 0.1 {
		t.Errorf("attacked fraction %v: migration should NOT defeat the attack", res.AttackedFraction)
	}
	if res.MeanSpeedWithResponse <= res.MeanSpeedNoResponse {
		t.Errorf("speeds: with %v, without %v", res.MeanSpeedWithResponse, res.MeanSpeedNoResponse)
	}
}

func TestMigrationStudyValidation(t *testing.T) {
	if _, err := MigrationStudy("KM", 0, 600, 1); err == nil {
		t.Error("zero relocation delay accepted")
	}
	if _, err := MigrationStudy("KM", 60, 30, 1); err == nil {
		t.Error("dur < delay accepted")
	}
}

func TestReplayMatchesLiveRun(t *testing.T) {
	// Replaying the recorded trace through an identical detector must
	// reproduce the live decisions exactly.
	params := core.DefaultParams()
	prof, err := profileFor("KM", params)
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultRunSpec("KM", BusLock, 9)
	live, err := Run(spec, params, map[string]DetectorFactory{"SDS": SDSFactory})
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewSDS(prof, params)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(det, live.Access, live.Miss)
	if err != nil {
		t.Fatal(err)
	}
	liveDs := live.Decisions["SDS"]
	if len(replayed) != len(liveDs) {
		t.Fatalf("replay produced %d decisions, live %d", len(replayed), len(liveDs))
	}
	for i := range liveDs {
		if replayed[i] != liveDs[i] {
			t.Fatalf("decision %d differs: live %+v, replay %+v", i, liveDs[i], replayed[i])
		}
	}
}

func TestReplayLengthMismatch(t *testing.T) {
	det, _ := core.NewRawThreshold(0.5)
	a := trace.NewSeries("a", 0, 0.01)
	b := trace.NewSeries("b", 0, 0.01)
	a.Append(1)
	if _, err := Replay(det, a, b); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestContainerStudy(t *testing.T) {
	for _, mode := range []AttackMode{BusLock, Cleansing} {
		res, err := ContainerStudy(mode, 600, 7)
		if err != nil {
			t.Fatal(err)
		}
		if res.AttackedThroughput >= 0.7*res.CleanThroughput {
			t.Errorf("%v: throughput %v -> %v, insufficient impact", mode, res.CleanThroughput, res.AttackedThroughput)
		}
		if res.Accuracy.Recall < 0.85 {
			t.Errorf("%v: SDS/U recall on function aggregate = %v", mode, res.Accuracy.Recall)
		}
		if res.Accuracy.Specificity < 0.95 {
			t.Errorf("%v: SDS/U specificity = %v", mode, res.Accuracy.Specificity)
		}
		if res.SamplesPerInstance > 200 {
			t.Errorf("premise: %d samples per instance should be <= W", res.SamplesPerInstance)
		}
	}
}

func TestContainerStudyValidation(t *testing.T) {
	if _, err := ContainerStudy(NoAttack, 600, 1); err == nil {
		t.Error("no-attack study accepted")
	}
	if _, err := ContainerStudy(BusLock, 60, 1); err == nil {
		t.Error("too-short study accepted")
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	cfg := ReportConfig{Seeds: []uint64{1}, Apps: []string{"KM"}}
	if err := WriteReport(&buf, cfg, func() time.Duration { return time.Second }); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# memdos experiment report",
		"KStest false positives",
		"Attack impact traces",
		"Scenario 1",
		"Scenario 2",
		"Performance overhead",
		"Migration response",
		"Containers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	if err := WriteReport(&buf, ReportConfig{}, nil); err == nil {
		t.Error("empty config accepted")
	}
}
