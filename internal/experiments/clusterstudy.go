package experiments

import (
	"fmt"
	"math"

	"memdos/internal/attack"
	"memdos/internal/cluster"
	"memdos/internal/core"
)

// ClusterStudySpec sizes the datacenter placement study.
type ClusterStudySpec struct {
	// Hosts is the number of simulated physical machines.
	Hosts int
	// Victims / Attackers / Utilities are the VM population by role.
	// Each attacker targets victim i mod Victims.
	Victims, Attackers, Utilities int
	// App is the victims' workload (Table II abbreviation).
	App string
	// Duration is the simulated run length in seconds.
	Duration float64
	// RelocationDelay is the targeted attacker's re-co-location cost.
	RelocationDelay float64
	// ChurnInterval is the churn attacker's relocation period.
	ChurnInterval float64
	// Seed seeds every arm.
	Seed uint64
}

// DefaultClusterStudySpec returns a small-but-meaningful study; the
// memdos cluster subcommand scales it to datacenter size.
func DefaultClusterStudySpec() ClusterStudySpec {
	return ClusterStudySpec{
		Hosts:           16,
		Victims:         8,
		Attackers:       4,
		Utilities:       52,
		App:             "KM",
		Duration:        240,
		RelocationDelay: 60,
		ChurnInterval:   30,
		Seed:            7,
	}
}

// Validate checks the spec.
func (s ClusterStudySpec) Validate() error {
	if s.Hosts < 2 || s.Victims < 1 || s.Attackers < 1 || s.Utilities < 0 {
		return fmt.Errorf("experiments: invalid cluster population (%d hosts, %d victims, %d attackers, %d utilities)",
			s.Hosts, s.Victims, s.Attackers, s.Utilities)
	}
	if s.Duration <= 0 || s.RelocationDelay <= 0 || s.RelocationDelay >= s.Duration {
		return fmt.Errorf("experiments: invalid cluster study times (dur %v, relocation %v)", s.Duration, s.RelocationDelay)
	}
	return nil
}

// ClusterCell is one attacker-placement-policy x scheduler-policy
// outcome of the study grid.
type ClusterCell struct {
	Scheduler cluster.SchedulerPolicy
	Placement cluster.AttackerPolicy
	// CleanSpeed / AttackedSpeed / MitigatedSpeed are the victims' mean
	// execution speeds in the three arms (clean has no attackers and
	// depends only on the scheduler).
	CleanSpeed, AttackedSpeed, MitigatedSpeed float64
	// Recovered is the fraction of attack-induced slowdown the closed
	// loop gave back: (mitigated - attacked) / (clean - attacked).
	Recovered float64
	// Migrations counts defender migrations, AttackerMoves the attacker
	// self-relocations, both in the mitigated arm.
	Migrations, AttackerMoves int
	// Colocation is the targeted-attacker co-residence fraction in the
	// mitigated arm (0 for non-targeted placements).
	Colocation float64
	// AlarmFraction is the fraction of victim-time under a raised alarm
	// in the mitigated arm.
	AlarmFraction float64
}

// ClusterStudyResult is the full placement x scheduling grid.
type ClusterStudyResult struct {
	Spec ClusterStudySpec
	// Cells holds the 9 policy combinations, scheduler-major in
	// (RoundRobin, BinPack, Spread) x (Random, Targeted, Churn) order.
	Cells []ClusterCell
}

// clusterArm identifies one simulation run of the study grid.
type clusterArm struct {
	sched cluster.SchedulerPolicy
	place cluster.AttackerPolicy
	// kind: 0 clean (no attackers), 1 attacked, 2 mitigated.
	kind int
}

// buildStudyCluster constructs and populates one arm's cluster.
func buildStudyCluster(spec ClusterStudySpec, arm clusterArm, prof core.Profile, params core.Params, overhead float64) (*cluster.Cluster, error) {
	cfg := cluster.DefaultConfig()
	cfg.Hosts = spec.Hosts
	cfg.Seed = spec.Seed
	cfg.Scheduler = arm.sched
	cfg.Placement = arm.place
	cfg.RelocationDelay = spec.RelocationDelay
	cfg.ChurnInterval = spec.ChurnInterval
	// Hosts run serially inside an arm; the arms are the parallel cells.
	cfg.Workers = 1
	// Size bin-packing to the population (with ~25% headroom) so the
	// policy consolidates instead of degenerating to host 0.
	total := spec.Victims + spec.Attackers + spec.Utilities
	cfg.HostCapacity = (total + spec.Hosts - 1) / spec.Hosts
	cfg.HostCapacity += (cfg.HostCapacity + 3) / 4
	if arm.kind == 2 {
		cfg.Detector = func(string) (core.Detector, error) { return core.NewSDS(prof, params) }
		cfg.Respond = migrationLadder()
		cfg.HypervisorLoad = overhead
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < spec.Victims; i++ {
		if err := c.AddVictim(fmt.Sprintf("victim%03d", i), spec.App); err != nil {
			return nil, err
		}
	}
	if arm.kind > 0 {
		for i := 0; i < spec.Attackers; i++ {
			atk, err := attack.NewBusLock(attack.Window{Start: 0, End: math.Inf(1)}, BusLockDuty)
			if err != nil {
				return nil, err
			}
			target := fmt.Sprintf("victim%03d", i%spec.Victims)
			if err := c.AddAttacker(fmt.Sprintf("attacker%03d", i), atk, target); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < spec.Utilities; i++ {
		if err := c.AddUtility(fmt.Sprintf("util%03d", i)); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// ClusterStudy runs the attacker-placement-policy x scheduler-policy
// grid: for every combination it measures the victims' mean speed clean,
// under attack, and under the full closed loop (SDS detection -> respond
// ladder -> real VM migration to a clean host), and reports how much of
// the induced slowdown the loop recovered. All arms are independent
// cells on the shared worker pool; each arm's cluster runs single-worker
// inside its cell, so the study is byte-identical at any worker count.
func ClusterStudy(spec ClusterStudySpec) (*ClusterStudyResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	params := core.DefaultParams()
	prof, err := profileFor(spec.App, params)
	if err != nil {
		return nil, err
	}
	overheadDet, err := core.NewSDS(prof, params)
	if err != nil {
		return nil, err
	}
	overhead := overheadDet.Overhead()

	scheds := []cluster.SchedulerPolicy{cluster.RoundRobin, cluster.BinPack, cluster.Spread}
	places := []cluster.AttackerPolicy{cluster.AttackRandom, cluster.AttackTargeted, cluster.AttackChurn}

	// Enumerate the arms: one clean run per scheduler (attacker policy
	// is irrelevant without attackers), then attacked and mitigated runs
	// per (scheduler, placement) combination.
	var arms []clusterArm
	for _, s := range scheds {
		arms = append(arms, clusterArm{sched: s, place: cluster.AttackRandom, kind: 0})
		for _, p := range places {
			arms = append(arms, clusterArm{sched: s, place: p, kind: 1}, clusterArm{sched: s, place: p, kind: 2})
		}
	}
	results, err := MapCells(DefaultRunner(), len(arms), func(i int) (*cluster.Result, error) {
		c, err := buildStudyCluster(spec, arms[i], prof, params, overhead)
		if err != nil {
			return nil, err
		}
		return c.Run(spec.Duration)
	})
	if err != nil {
		return nil, err
	}
	byArm := make(map[clusterArm]*cluster.Result, len(arms))
	for i, a := range arms {
		byArm[a] = results[i]
	}

	out := &ClusterStudyResult{Spec: spec}
	for _, s := range scheds {
		clean := byArm[clusterArm{sched: s, place: cluster.AttackRandom, kind: 0}]
		for _, p := range places {
			atk := byArm[clusterArm{sched: s, place: p, kind: 1}]
			mit := byArm[clusterArm{sched: s, place: p, kind: 2}]
			cell := ClusterCell{
				Scheduler:      s,
				Placement:      p,
				CleanSpeed:     clean.MeanVictimSpeed,
				AttackedSpeed:  atk.MeanVictimSpeed,
				MitigatedSpeed: mit.MeanVictimSpeed,
				Migrations:     mit.Migrations,
				AttackerMoves:  mit.AttackerMoves,
				Colocation:     mit.ColocationFraction,
				AlarmFraction:  mit.AlarmFraction,
			}
			if gap := cell.CleanSpeed - cell.AttackedSpeed; gap > 1e-9 {
				cell.Recovered = (cell.MitigatedSpeed - cell.AttackedSpeed) / gap
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}
