// Package experiments reproduces the paper's evaluation: the measurement
// study (Figs. 1-8), the Scenario 1 and Scenario 2 detector comparisons
// (Figs. 11-16), the performance-overhead experiment (Fig. 14), the
// sensitivity sweeps (Figs. 17-24), and the ablation studies called out in
// DESIGN.md. Each public function regenerates the data behind one table or
// figure; cmd/memdos renders them and bench_test.go wraps them as
// benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"memdos/internal/attack"
	"memdos/internal/core"
	"memdos/internal/mem"
	"memdos/internal/metrics"
	"memdos/internal/sim"
	"memdos/internal/trace"
	"memdos/internal/vmm"
	"memdos/internal/workload"
)

// Scenario 1 timing (Section VI-A3): 600 s runs, attack during the second
// half.
const (
	Scenario1Duration    = 600.0
	Scenario1AttackStart = 300.0
	// ProfileDuration is how long the provider profiles a fresh VM before
	// admitting co-location (Section IV-B.1's safe-start assumption).
	ProfileDuration = 300.0
	// EvalGrace is the post-transition grace the per-instant scorer
	// allows for detector reaction time in Scenario 1 (Section VI-B
	// reports recall/specificity that do not penalize inherent delay).
	EvalGrace = 30.0
	// Scenario2Grace is the tighter grace for the adaptive scenario,
	// whose attack states last only 10-50 s.
	Scenario2Grace = 5.0
)

// Attack intensities used throughout (matching the measurement study's
// observed impact: AccessNum collapse to ~30%, severalfold MissNum rise).
const (
	BusLockDuty       = 0.7
	CleansingPressure = 0.6
	CleansingRate     = 2e6
	// MemBW attack intensities: a sequential streaming hog pushing
	// ~32 GB/s of mostly-read traffic at full duty — enough to saturate
	// a socket's DRAM channels while barely moving the LLC counters.
	MemBWBytesPerSec = 3.2e10
	MemBWReadFrac    = 0.8
	MemBWDuty        = 1.0
	// MemBWBudget is the MemGuard-style per-VM budget the closed loop's
	// membw-limit rung applies — a small fraction of a socket's capacity,
	// enough for a benign VM but crippling for the hog.
	MemBWBudget = 2e9
)

// AttackMode selects the attack (or none) for a run.
type AttackMode int

// Attack modes.
const (
	NoAttack AttackMode = iota
	BusLock
	Cleansing
	// MemBW is the DRAM bandwidth hog (Bechtel & Yun, arXiv:2005.10864):
	// it saturates the memory channels rather than the bus or LLC, so
	// runs using it need a memory-controller model (RunSpec.Mem).
	MemBW
)

// String names the mode.
func (m AttackMode) String() string {
	switch m {
	case NoAttack:
		return "none"
	case BusLock:
		return "bus locking"
	case Cleansing:
		return "LLC cleansing"
	case MemBW:
		return "DRAM bandwidth"
	default:
		return fmt.Sprintf("AttackMode(%d)", int(m))
	}
}

// Env hands detector factories everything they may need.
type Env struct {
	Server  *vmm.Server
	Victim  *vmm.VM
	Params  core.Params
	Profile core.Profile
}

// Throttle returns the hypervisor hook bound to the protected VM, for the
// KStest baseline.
func (e *Env) Throttle() core.Throttle {
	return func(dur float64) { e.Server.ThrottleOthers(e.Victim.ID(), dur) }
}

// DetectorFactory builds a detector for a concrete run environment.
type DetectorFactory func(*Env) (core.Detector, error)

// RunSpec describes one experiment run.
type RunSpec struct {
	App      string
	Mode     AttackMode
	Adaptive bool // Scenario 2 on/off schedule instead of half-run window
	Duration float64
	Seed     uint64
	// UtilityVMs co-locates this many benign utility VMs (the paper uses
	// 7).
	UtilityVMs int
	// Service keeps the victim running for the whole run (detection
	// scenarios); false lets it complete (overhead runs).
	Service bool
	// HyperLoad models the active detector's CPU cost on the hypervisor.
	HyperLoad float64
	// AttackStart overrides the non-adaptive attack window's start
	// (0 = Scenario1AttackStart). Shorter studies place the transition
	// mid-run so both regimes are observed.
	AttackStart float64
	// Mem, when set, runs the testbed on a server with the DRAM
	// memory-controller model on this topology. Required for MemBW.
	Mem *mem.NUMAConfig
	// AttackerSocket homes the attacker on this socket (the victim and
	// utility VMs stay on socket 0). Non-zero on a multi-socket
	// topology makes the attack a remote, cross-socket stream.
	AttackerSocket int
}

// DefaultRunSpec returns a Scenario 1 run of the given app and mode.
func DefaultRunSpec(app string, mode AttackMode, seed uint64) RunSpec {
	return RunSpec{
		App:        app,
		Mode:       mode,
		Duration:   Scenario1Duration,
		Seed:       seed,
		UtilityVMs: 7,
		Service:    true,
	}
}

// RunResult is the outcome of one run.
type RunResult struct {
	// Decisions per detector name.
	Decisions map[string][]core.Decision
	// Truth is the ground-truth attack interval set.
	Truth []metrics.Interval
	// Access and Miss are the victim's PCM series.
	Access, Miss *trace.Series
	// VictimDoneAt is when a finite victim completed (0 if still running).
	VictimDoneAt float64
}

// buildServer assembles the testbed of Section VI-A1: one victim VM, one
// attack VM, and UtilityVMs benign VMs.
func buildServer(spec RunSpec) (*vmm.Server, *vmm.VM, []metrics.Interval, error) {
	if spec.Mode == MemBW && spec.Mem == nil {
		return nil, nil, nil, fmt.Errorf("experiments: the %v attack needs a memory-controller model (RunSpec.Mem)", MemBW)
	}
	cfg := vmm.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.Mem = spec.Mem
	srv, err := vmm.NewServer(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	appSpec, err := workload.ByAbbrev(spec.App)
	if err != nil {
		return nil, nil, nil, err
	}
	if spec.Service {
		appSpec = appSpec.Service()
	}
	victim, err := srv.AddApp("victim", appSpec)
	if err != nil {
		return nil, nil, nil, err
	}
	if spec.Mem != nil {
		if err := srv.SetVMSocket(victim.ID(), 0); err != nil {
			return nil, nil, nil, err
		}
	}

	var truth []metrics.Interval
	if spec.Mode != NoAttack {
		var sched attack.Schedule
		if spec.Adaptive {
			ad, err := attack.NewAdaptive(sim.NewRNG(spec.Seed^0xadada), 10, 50)
			if err != nil {
				return nil, nil, nil, err
			}
			for _, w := range ad.ActiveWindows(spec.Duration) {
				truth = append(truth, metrics.Interval{Start: w.Start, End: w.End})
			}
			sched = ad
		} else {
			start := spec.AttackStart
			if start <= 0 {
				start = Scenario1AttackStart
			}
			sched = attack.Window{Start: start, End: spec.Duration}
			truth = []metrics.Interval{{Start: start, End: spec.Duration}}
		}
		atk, err := newAttacker(spec.Mode, sched)
		if err != nil {
			return nil, nil, nil, err
		}
		atkVM, err := srv.AddAttacker("attacker", atk)
		if err != nil {
			return nil, nil, nil, err
		}
		if spec.Mem != nil {
			if err := srv.SetVMSocket(atkVM.ID(), spec.AttackerSocket); err != nil {
				return nil, nil, nil, err
			}
			if spec.AttackerSocket != 0 {
				// A cross-socket hog streams entirely into the victim's
				// memory, so all its traffic is remote.
				if err := srv.SetMemRemoteFraction(atkVM.ID(), 1); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	for i := 0; i < spec.UtilityVMs; i++ {
		util, err := srv.AddApp(fmt.Sprintf("util%d", i), workload.Utility())
		if err != nil {
			return nil, nil, nil, err
		}
		if spec.Mem != nil {
			if err := srv.SetVMSocket(util.ID(), 0); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	if spec.HyperLoad > 0 {
		if err := srv.SetHypervisorLoad(spec.HyperLoad); err != nil {
			return nil, nil, nil, err
		}
	}
	return srv, victim, truth, nil
}

// newAttacker builds the attacker for a mode with the standard
// intensities.
func newAttacker(mode AttackMode, sched attack.Schedule) (*attack.Attacker, error) {
	switch mode {
	case BusLock:
		return attack.NewBusLock(sched, BusLockDuty)
	case Cleansing:
		return attack.NewLLCCleansing(sched, CleansingPressure, CleansingRate)
	case MemBW:
		return attack.NewMemBandwidth(sched, MemBWBytesPerSec, MemBWReadFrac, MemBWDuty)
	default:
		return nil, fmt.Errorf("experiments: no attacker for mode %v", mode)
	}
}

// Run executes the spec, streaming the victim's samples through every
// detector built by the factories.
func Run(spec RunSpec, params core.Params, factories map[string]DetectorFactory) (*RunResult, error) {
	srv, victim, truth, err := buildServer(spec)
	if err != nil {
		return nil, err
	}
	prof, err := profileFor(spec.App, params)
	if err != nil {
		return nil, err
	}
	env := &Env{Server: srv, Victim: victim, Params: params, Profile: prof}

	// Iterate factories in sorted-name order: the overhead sum is a
	// float accumulation (order changes the low bits, and through
	// SetHypervisorLoad those bits feed every VM's progress), and the
	// first build error must not depend on map iteration order.
	names := make([]string, 0, len(factories))
	for name := range factories { //memdos:ignore maporder keys are sorted on the next line before any use
		names = append(names, name)
	}
	sort.Strings(names)
	detectors := make([]core.Detector, len(names))
	var totalOverhead float64
	for i, name := range names {
		det, err := factories[name](env)
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s: %w", name, err)
		}
		detectors[i] = det
		totalOverhead += det.Overhead()
	}
	if spec.HyperLoad == 0 && totalOverhead > 0 { //memdos:ignore floateq HyperLoad 0 is the literal "caller did not choose" sentinel
		// When the caller did not fix a load explicitly, charge the
		// combined detector processing cost.
		if err := srv.SetHypervisorLoad(totalOverhead); err != nil {
			return nil, err
		}
	}

	res := &RunResult{Decisions: make(map[string][]core.Decision), Truth: truth}
	srv.RunUntil(spec.Duration, func(step vmm.StepResult) {
		s, ok := step.Samples[victim.ID()]
		if !ok {
			return
		}
		for i, det := range detectors {
			res.Decisions[names[i]] = append(res.Decisions[names[i]], det.Push(s)...)
		}
	})
	c := srv.Counter(victim.ID())
	res.Access = c.AccessSeries()
	res.Miss = c.MissSeries()
	res.VictimDoneAt = victim.DoneAt()
	return res, nil
}

// profileCache memoizes per-(app, params-ish) profiles; profiling runs are
// deterministic so one profile per app suffices. Entries carry a sync.Once
// so that when many parallel sweep cells need the same profile, exactly one
// of them runs the (expensive) profiling simulation and the rest wait on it
// instead of duplicating the work.
var profileCache sync.Map

type profileKey struct {
	app    string
	w, dw  int
	alpha  float64
	wpFact int
}

type profileEntry struct {
	once sync.Once
	prof core.Profile
	err  error
}

// profileFor returns the attack-free profile of the app under the given
// parameters (Section IV-B.1's safe-start profiling).
func profileFor(app string, params core.Params) (core.Profile, error) {
	key := profileKey{app: app, w: params.W, dw: params.DW, alpha: params.Alpha, wpFact: params.WPFactor}
	v, _ := profileCache.LoadOrStore(key, &profileEntry{})
	e := v.(*profileEntry)
	e.once.Do(func() {
		e.prof, e.err = ProfileApp(app, ProfileDuration, params)
		if e.err != nil {
			// Let a later caller retry a failed profiling run.
			profileCache.Delete(key)
		}
	})
	return e.prof, e.err
}

// ProfileApp runs the app alone on a clean server for dur seconds and
// builds its profile.
func ProfileApp(app string, dur float64, params core.Params) (core.Profile, error) {
	cfg := vmm.DefaultConfig()
	srv, err := vmm.NewServer(cfg)
	if err != nil {
		return core.Profile{}, err
	}
	spec, err := workload.ByAbbrev(app)
	if err != nil {
		return core.Profile{}, err
	}
	vm, err := srv.AddApp("victim", spec.Service())
	if err != nil {
		return core.Profile{}, err
	}
	srv.RunUntil(dur, nil)
	c := srv.Counter(vm.ID())
	return core.BuildProfile(c.AccessSeries().Values, c.MissSeries().Values, params)
}

// Standard detector factories.

// SDSFactory builds the combined SDS detector.
func SDSFactory(env *Env) (core.Detector, error) {
	return core.NewSDS(env.Profile, env.Params)
}

// SDSBFactory builds SDS/B alone.
func SDSBFactory(env *Env) (core.Detector, error) {
	return core.NewSDSB(env.Profile, env.Params)
}

// SDSPFactory builds SDS/P alone (periodic applications only).
func SDSPFactory(env *Env) (core.Detector, error) {
	return core.NewSDSP(env.Profile, env.Params)
}

// KSFactory builds the KStest baseline with the Section VI evaluation
// cadence, wired to the hypervisor's execution throttling.
func KSFactory(env *Env) (core.Detector, error) {
	return core.NewKSTestDetector(core.EvaluationKSParams(), env.Throttle())
}

// Accuracy scores one detector's decision time-line.
type Accuracy struct {
	Recall      float64
	Specificity float64
	// MeanDelay is the mean detection delay over the run's attacks (NaN
	// if never detected or no attacks).
	MeanDelay float64
}

// Score evaluates decisions against the run's ground truth with the given
// grace.
func Score(res *RunResult, detector string, grace float64) Accuracy {
	ds := res.Decisions[detector]
	conf := metrics.Evaluate(ds, res.Truth, grace)
	return Accuracy{
		Recall:      conf.Recall(),
		Specificity: conf.Specificity(),
		MeanDelay:   metrics.MeanDelay(metrics.DetectionDelay(ds, res.Truth)),
	}
}
