package experiments

import (
	"fmt"

	"memdos/internal/attack"
	"memdos/internal/core"
	"memdos/internal/vmm"
	"memdos/internal/workload"
)

// MigrationResult quantifies the paper's Section II argument that VM
// migration alone cannot defeat memory DoS attacks: the malicious tenant
// simply re-co-locates with the migrated victim, so the attack resumes
// after every migration.
type MigrationResult struct {
	// Migrations is how many times the victim was migrated in response
	// to an SDS alarm.
	Migrations int
	// AttackedFraction is the fraction of the run the victim spent under
	// an active attack *with* the detect-and-migrate response.
	AttackedFraction float64
	// AttackedFractionNoResponse is the same fraction with no response
	// at all (the attack simply runs).
	AttackedFractionNoResponse float64
	// MeanSpeedWithResponse / MeanSpeedNoResponse are the victim's mean
	// execution speeds (1.0 = unimpeded) under each policy.
	MeanSpeedWithResponse, MeanSpeedNoResponse float64
}

// MigrationStudy runs a continuous bus-locking attacker against the app
// for dur seconds under a detect-and-migrate policy: every SDS alarm
// migrates the victim to a fresh host, which buys relocationDelay seconds
// until the attacker re-co-locates (modelled by suppressing the attack and
// resetting the detector, whose profile remains valid on the new host).
func MigrationStudy(app string, relocationDelay, dur float64, seed uint64) (*MigrationResult, error) {
	if relocationDelay <= 0 || dur <= relocationDelay {
		return nil, fmt.Errorf("experiments: invalid migration study times (%v, %v)", relocationDelay, dur)
	}
	params := core.DefaultParams()
	prof, err := profileFor(app, params)
	if err != nil {
		return nil, err
	}

	run := func(respond bool) (migrations int, attackedFrac, meanSpeed float64, err error) {
		cfg := vmm.DefaultConfig()
		cfg.Seed = seed
		srv, err := vmm.NewServer(cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		spec, err := workload.ByAbbrev(app)
		if err != nil {
			return 0, 0, 0, err
		}
		victim, err := srv.AddApp("victim", spec.Service())
		if err != nil {
			return 0, 0, 0, err
		}
		// The attack begins once the attacker first co-locates, 30 s in.
		sched, err := attack.NewSuppressor(attack.Window{Start: 30, End: dur})
		if err != nil {
			return 0, 0, 0, err
		}
		atk, err := attack.NewBusLock(sched, BusLockDuty)
		if err != nil {
			return 0, 0, 0, err
		}
		if _, err := srv.AddAttacker("attacker", atk); err != nil {
			return 0, 0, 0, err
		}

		det, err := core.NewSDS(prof, params)
		if err != nil {
			return 0, 0, 0, err
		}
		var attackedSteps, totalSteps int
		var speedSum float64
		srv.RunUntil(dur, func(step vmm.StepResult) {
			now := step.Time
			totalSteps++
			speedSum += victim.LastSpeed()
			if sched.Active(now - srv.TPCM()) {
				attackedSteps++
			}
			s, ok := step.Samples[victim.ID()]
			if !ok {
				return
			}
			for _, d := range det.Push(s) {
				if !respond || !d.Alarm {
					continue
				}
				// Migrate: the attacker loses co-residence and needs
				// relocationDelay to find the victim's new host. The
				// detector restarts cleanly on the new host.
				if now >= sched.SuppressedUntil() {
					migrations++
					sched.Suppress(now + relocationDelay)
					det, err = core.NewSDS(prof, params)
					if err != nil {
						return
					}
				}
			}
		})
		return migrations, float64(attackedSteps) / float64(totalSteps), speedSum / float64(totalSteps), nil
	}

	res := &MigrationResult{}
	if res.Migrations, res.AttackedFraction, res.MeanSpeedWithResponse, err = run(true); err != nil {
		return nil, err
	}
	if _, res.AttackedFractionNoResponse, res.MeanSpeedNoResponse, err = run(false); err != nil {
		return nil, err
	}
	return res, nil
}
