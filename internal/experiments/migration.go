package experiments

import (
	"fmt"
	"math"

	"memdos/internal/attack"
	"memdos/internal/cluster"
	"memdos/internal/core"
	"memdos/internal/respond"
)

// MigrationResult quantifies the paper's Section II argument that VM
// migration alone cannot defeat memory DoS attacks: the malicious tenant
// simply re-co-locates with the migrated victim, so the attack resumes
// after every migration.
type MigrationResult struct {
	// Migrations is how many times the victim was migrated in response
	// to an SDS alarm.
	Migrations int
	// AttackedFraction is the fraction of the run the attacker spent
	// co-resident with the victim *with* the detect-and-migrate
	// response.
	AttackedFraction float64
	// AttackedFractionNoResponse is the same fraction with no response
	// at all (the attacker stays co-resident throughout).
	AttackedFractionNoResponse float64
	// MeanSpeedWithResponse / MeanSpeedNoResponse are the victim's mean
	// execution speeds (1.0 = unimpeded) under each policy.
	MeanSpeedWithResponse, MeanSpeedNoResponse float64
}

// migrationLadder is the detect-and-migrate respond config the migration
// studies share: one weak throttle rung that cannot quiet a bus-locking
// attacker (so the alarm stays raised), then escalate to migration.
func migrationLadder() respond.Config {
	return respond.Config{
		ThrottleDuties:  []float64{0.25},
		EnableMigration: true,
		EscalateAfter:   10,
		ClearAfter:      10,
		Cooldown:        60,
	}
}

// MigrationStudy runs a continuous bus-locking attacker against the app
// for dur seconds under a detect-and-migrate policy on a real multi-host
// cluster (internal/cluster): every sustained SDS alarm live-migrates
// the victim to a contention-aware-chosen clean host, and the targeted
// attacker re-co-locates relocationDelay seconds later (Section III-B's
// probing cost). The single-host Suppressor model this study once used
// is gone — the migration here is the same ExportVM/AdmitVM state
// transfer the respond ladder's migrate rung performs.
func MigrationStudy(app string, relocationDelay, dur float64, seed uint64) (*MigrationResult, error) {
	if relocationDelay <= 0 || dur <= relocationDelay {
		return nil, fmt.Errorf("experiments: invalid migration study times (%v, %v)", relocationDelay, dur)
	}
	params := core.DefaultParams()
	prof, err := profileFor(app, params)
	if err != nil {
		return nil, err
	}
	overheadDet, err := core.NewSDS(prof, params)
	if err != nil {
		return nil, err
	}

	run := func(withResponse bool) (*cluster.Result, error) {
		cfg := cluster.DefaultConfig()
		cfg.Seed = seed
		cfg.Scheduler = cluster.Spread
		cfg.Placement = cluster.AttackTargeted
		cfg.RelocationDelay = relocationDelay
		// Both arms of one study run serially inside their cell; the two
		// arms themselves are the parallel cells.
		cfg.Workers = 1
		if withResponse {
			cfg.Detector = func(string) (core.Detector, error) { return core.NewSDS(prof, params) }
			cfg.Respond = migrationLadder()
			cfg.HypervisorLoad = overheadDet.Overhead()
		}
		c, err := cluster.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := c.AddVictim("victim", app); err != nil {
			return nil, err
		}
		atk, err := attack.NewBusLock(attack.Window{Start: 0, End: math.Inf(1)}, BusLockDuty)
		if err != nil {
			return nil, err
		}
		if err := c.AddAttacker("attacker", atk, "victim"); err != nil {
			return nil, err
		}
		for i := 0; i < 6; i++ {
			if err := c.AddUtility(fmt.Sprintf("util%d", i)); err != nil {
				return nil, err
			}
		}
		return c.Run(dur)
	}

	arms, err := MapCells(DefaultRunner(), 2, func(i int) (*cluster.Result, error) {
		return run(i == 0)
	})
	if err != nil {
		return nil, err
	}
	with, without := arms[0], arms[1]
	return &MigrationResult{
		Migrations:                 with.Migrations,
		AttackedFraction:           with.ColocationFraction,
		AttackedFractionNoResponse: without.ColocationFraction,
		MeanSpeedWithResponse:      with.MeanVictimSpeed,
		MeanSpeedNoResponse:        without.MeanVictimSpeed,
	}, nil
}
