package experiments

import (
	"encoding/json"
	"testing"

	"memdos/internal/cluster"
)

// quickClusterSpec is a small grid that still exercises every policy
// combination: 8 hosts, 32 VMs, 2 minutes simulated.
func quickClusterSpec() ClusterStudySpec {
	return ClusterStudySpec{
		Hosts:           8,
		Victims:         4,
		Attackers:       2,
		Utilities:       26,
		App:             "KM",
		Duration:        120,
		RelocationDelay: 45,
		ChurnInterval:   30,
		Seed:            7,
	}
}

func TestClusterStudyGrid(t *testing.T) {
	res, err := ClusterStudy(quickClusterSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 9 {
		t.Fatalf("got %d cells, want 9", len(res.Cells))
	}
	scheds := []cluster.SchedulerPolicy{cluster.RoundRobin, cluster.BinPack, cluster.Spread}
	places := []cluster.AttackerPolicy{cluster.AttackRandom, cluster.AttackTargeted, cluster.AttackChurn}
	for i, c := range res.Cells {
		if c.Scheduler != scheds[i/3] || c.Placement != places[i%3] {
			t.Errorf("cell %d is %v/%v, want scheduler-major order", i, c.Scheduler, c.Placement)
		}
		if c.CleanSpeed <= 0 || c.CleanSpeed > 1 {
			t.Errorf("%v/%v clean speed %v out of range", c.Scheduler, c.Placement, c.CleanSpeed)
		}
		if c.Placement == cluster.AttackTargeted {
			// A targeted attacker must actually slow the victims down and
			// force the closed loop to migrate them away.
			if c.AttackedSpeed >= c.CleanSpeed {
				t.Errorf("%v/targeted: attacked %v not below clean %v", c.Scheduler, c.AttackedSpeed, c.CleanSpeed)
			}
			if c.Migrations == 0 {
				t.Errorf("%v/targeted: no defensive migrations", c.Scheduler)
			}
			if c.Recovered <= 0 {
				t.Errorf("%v/targeted: recovered %v, want > 0", c.Scheduler, c.Recovered)
			}
		}
	}
}

func TestClusterStudyDeterministic(t *testing.T) {
	spec := quickClusterSpec()
	spec.Duration = 60
	spec.RelocationDelay = 20
	run := func(workers int) []byte {
		prev := SetParallelism(workers)
		defer SetParallelism(prev)
		res, err := ClusterStudy(spec)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial, parallel := run(1), run(4)
	if string(serial) != string(parallel) {
		t.Errorf("study differs across worker counts:\nserial   %s\nparallel %s", serial, parallel)
	}
}

func TestClusterStudyValidation(t *testing.T) {
	bad := quickClusterSpec()
	bad.Hosts = 1
	if _, err := ClusterStudy(bad); err == nil {
		t.Error("1-host cluster accepted")
	}
	bad = quickClusterSpec()
	bad.RelocationDelay = bad.Duration
	if _, err := ClusterStudy(bad); err == nil {
		t.Error("relocation delay >= duration accepted")
	}
}
