package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"memdos/internal/core"
)

// These tests pin the Runner's central guarantee: results merged by cell
// index are byte-identical to a serial run for any worker count. They run
// each sweep at workers=1 and workers=8 and compare the JSON-encoded
// outputs, so any shared mutable state between cells shows up either here
// or (raced) under -race in CI.

// withWorkers runs fn with the process-wide parallelism forced to w and
// returns the result marshalled to JSON.
func withWorkers(t *testing.T, w int, fn func() (any, error)) []byte {
	t.Helper()
	prev := SetParallelism(w)
	defer SetParallelism(prev)
	v, err := fn()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestCompareDetectorsParallelDeterminism(t *testing.T) {
	run := func() (any, error) {
		return CompareDetectors([]string{"KM", "TS"}, StandardFactories(false), BusLock, false, []uint64{5, 6})
	}
	serial := withWorkers(t, 1, run)
	parallel := withWorkers(t, 8, run)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("CompareDetectors output differs between workers=1 and workers=8:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

func TestAlphaSweepParallelDeterminism(t *testing.T) {
	run := func() (any, error) {
		return Fig17AlphaSweep("KM", []float64{0.2, 0.8}, []uint64{7, 8})
	}
	serial := withWorkers(t, 1, run)
	parallel := withWorkers(t, 8, run)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("Fig17AlphaSweep output differs between workers=1 and workers=8:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

func TestFig1ParallelDeterminism(t *testing.T) {
	run := func() (any, error) {
		return Fig1KStestFalsePositives(120, []uint64{3, 4, 5})
	}
	serial := withWorkers(t, 1, run)
	parallel := withWorkers(t, 8, run)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("Fig1KStestFalsePositives output differs between workers=1 and workers=8:\nserial:   %s\nparallel: %s", serial, parallel)
	}
}

func TestRunnerErrorMatchesSerial(t *testing.T) {
	// The lowest-index failure wins regardless of scheduling, matching
	// what a serial loop would have returned first.
	fail := func(i int) error {
		if i%3 == 0 {
			return errAt(i)
		}
		return nil
	}
	serialErr := Runner{Workers: 1}.Do(10, fail)
	for _, w := range []int{2, 8} {
		if err := (Runner{Workers: w}).Do(10, fail); err == nil || serialErr == nil || err.Error() != serialErr.Error() {
			t.Errorf("workers=%d error = %v, serial = %v", w, err, serialErr)
		}
	}
}

type errAt int

func (e errAt) Error() string { return fmt.Sprintf("cell %d failed", int(e)) }

// TestRunRepeatedByteIdentical pins the determinism contract at the
// single-run layer: Run with multiple detector factories (whose
// overhead sum is a float accumulation that once depended on map
// iteration order) must produce byte-for-byte identical JSON across
// repeated executions in one process.
func TestRunRepeatedByteIdentical(t *testing.T) {
	execute := func() []byte {
		spec := DefaultRunSpec("KM", BusLock, 7)
		spec.Duration = 120
		spec.UtilityVMs = 2
		factories := map[string]DetectorFactory{
			"SDS":    SDSFactory,
			"SDS/B":  SDSBFactory,
			"KStest": KSFactory,
		}
		res, err := Run(spec, core.DefaultParams(), factories)
		if err != nil {
			t.Fatal(err)
		}
		// encoding/json emits map keys sorted, so this serializes the
		// whole result deterministically iff the values are.
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	first := execute()
	if len(first) == 0 {
		t.Fatal("empty result encoding; the comparison is vacuous")
	}
	for i := 0; i < 2; i++ {
		if next := execute(); !bytes.Equal(first, next) {
			t.Fatalf("execution %d diverged from execution 0 (%d vs %d bytes)", i+1, len(next), len(first))
		}
	}
}
