package experiments

import (
	"fmt"
	"math"
	"sort"

	"memdos/internal/core"
	"memdos/internal/mem"
)

// The DRAM bandwidth study: the memory-DoS variant the paper's LLC-centric
// detectors were never aimed at. A sequential streaming hog (attack.
// MemBandwidth) saturates the victim's memory channels while keeping its
// own — and, through the issue-rate floor, the victim's — LLC access
// counters comparatively healthy, the evasion observed by Bechtel & Yun
// ("Memory-Aware Denial-of-Service Attacks on Shared Cache in Multicore
// Real-Time Systems", arXiv:2005.10864). BandwidthStudy scores the
// standard detector set against this hog on 1- and 2-socket topologies
// (local and remote attacker placements) and then closes the loop with
// the respond engine's MemGuard-style membw-limit rung enabled.

// BandwidthSpec configures the study.
type BandwidthSpec struct {
	// App is the victim workload abbreviation.
	App string
	// Seeds are the per-cell simulation seeds.
	Seeds []uint64
	// Sockets lists the topologies to run (e.g. {1, 2}).
	Sockets []int
	// Duration of each detection run (0 = Scenario1Duration).
	Duration float64
	// WithDNN adds the DNN detector (trains the shared cascade on first
	// use).
	WithDNN bool
	// Budget is the closed loop's membw-limit rung budget in bytes/s
	// (0 = MemBWBudget).
	Budget float64
}

// DefaultBandwidthSpec returns the standard study of the given app.
func DefaultBandwidthSpec(app string) BandwidthSpec {
	return BandwidthSpec{
		App:     app,
		Seeds:   []uint64{1},
		Sockets: []int{1, 2},
	}
}

// BandwidthCell is one (topology, placement, detector) detection score,
// aggregated over the seeds.
type BandwidthCell struct {
	Sockets  int
	Remote   bool // attacker homed on the far socket
	Detector string
	// Recall / Specificity / Delay are means over the seeds (NaN seeds
	// dropped; Delay NaN if the detector never fired).
	Recall, Specificity, Delay float64
}

// BandwidthLoop is one topology/placement closed-loop arm, run three
// ways to isolate what the membw-limit rung buys.
type BandwidthLoop struct {
	Sockets int
	Remote  bool
	// Full is the default ladder: throttles → membw-limit → migrate.
	Full *ClosedLoopResult
	// Contained disables migration (a single-host deployment that must
	// contain the hog in place) but keeps the membw-limit rung.
	Contained *ClosedLoopResult
	// ThrottleOnly disables migration and the membw-limit rung — the
	// pre-MemGuard ladder. The gap to Contained is the rung's value.
	ThrottleOnly *ClosedLoopResult
}

// BandwidthResult is the full study output.
type BandwidthResult struct {
	App   string
	Cells []BandwidthCell
	Loops []BandwidthLoop
}

// placements expands the socket list into (sockets, remote) arms: a
// 1-socket topology only has a local attacker; multi-socket topologies
// get a local and a remote arm.
func placements(sockets []int) [][2]int {
	var out [][2]int
	for _, s := range sockets {
		out = append(out, [2]int{s, 0})
		if s > 1 {
			out = append(out, [2]int{s, 1})
		}
	}
	return out
}

// BandwidthStudy runs the detection matrix and the closed-loop arms.
// With a fixed spec the result is bit-reproducible at any worker count:
// the matrix cells are independent deterministic runs merged in index
// order, and the closed-loop arms run serially after the fan-out
// (ClosedLoop fans its own arms on the shared pool).
func BandwidthStudy(spec BandwidthSpec) (*BandwidthResult, error) {
	if spec.App == "" || len(spec.Seeds) == 0 || len(spec.Sockets) == 0 {
		return nil, fmt.Errorf("experiments: bandwidth study needs an app, seeds and sockets")
	}
	for _, s := range spec.Sockets {
		if s < 1 {
			return nil, fmt.Errorf("experiments: invalid socket count %d", s)
		}
	}
	dur := spec.Duration
	if dur <= 0 {
		dur = Scenario1Duration
	}
	budget := spec.Budget
	if budget <= 0 {
		budget = MemBWBudget
	}
	params := core.DefaultParams()
	factories := StandardFactories(spec.WithDNN)
	if _, isDNN := factories["DNN"]; isDNN {
		// Resolve the shared cascade up front: its training fans out on
		// the same pool the matrix cells run on.
		if _, err := SharedCascade(); err != nil {
			return nil, err
		}
	}
	// The victim's profile is memoized behind a sync.Once; resolve it
	// before the fan-out for the same reason.
	if _, err := profileFor(spec.App, params); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(factories))
	for name := range factories { //memdos:ignore maporder keys are sorted on the next line before any use
		names = append(names, name)
	}
	sort.Strings(names)

	arms := placements(spec.Sockets)
	type job struct {
		sockets, atkSocket int
		name               string
		seed               uint64
	}
	var jobs []job
	for _, arm := range arms {
		for _, name := range names {
			for _, seed := range spec.Seeds {
				jobs = append(jobs, job{sockets: arm[0], atkSocket: arm[1], name: name, seed: seed})
			}
		}
	}
	accs, err := MapCells(DefaultRunner(), len(jobs), func(i int) (Accuracy, error) {
		j := jobs[i]
		rs := DefaultRunSpec(spec.App, MemBW, j.seed)
		rs.Duration = dur
		rs.AttackStart = dur / 2
		mc := mem.DefaultNUMAConfig(j.sockets)
		rs.Mem = &mc
		rs.AttackerSocket = j.atkSocket
		res, err := Run(rs, params, map[string]DetectorFactory{j.name: factories[j.name]})
		if err != nil {
			return Accuracy{}, err
		}
		return Score(res, j.name, EvalGrace), nil
	})
	if err != nil {
		return nil, err
	}

	out := &BandwidthResult{App: spec.App}
	for ai, arm := range arms {
		for ni, name := range names {
			cell := BandwidthCell{Sockets: arm[0], Remote: arm[1] != 0, Detector: name}
			var rec, spc, dly []float64
			for si := range spec.Seeds {
				a := accs[(ai*len(names)+ni)*len(spec.Seeds)+si]
				if !math.IsNaN(a.Recall) {
					rec = append(rec, a.Recall)
				}
				if !math.IsNaN(a.Specificity) {
					spc = append(spc, a.Specificity)
				}
				if !math.IsNaN(a.MeanDelay) {
					dly = append(dly, a.MeanDelay)
				}
			}
			cell.Recall = meanOrNaN(rec)
			cell.Specificity = meanOrNaN(spc)
			cell.Delay = meanOrNaN(dly)
			out.Cells = append(out.Cells, cell)
		}
	}

	// Closed-loop arms, serial: each ClosedLoop fans its three arms out
	// on the shared pool itself.
	for _, arm := range arms {
		base := DefaultClosedLoopSpec(spec.App, MemBW, spec.Seeds[0])
		base.Respond.BandwidthBudget = budget
		mc := mem.DefaultNUMAConfig(arm[0])
		base.Mem = &mc
		base.AttackerSocket = arm[1]
		loop := BandwidthLoop{Sockets: arm[0], Remote: arm[1] != 0}
		variants := []struct {
			dst                **ClosedLoopResult
			migration, membwOn bool
		}{
			{&loop.Full, true, true},
			{&loop.Contained, false, true},
			{&loop.ThrottleOnly, false, false},
		}
		for _, v := range variants {
			ls := base
			ls.Respond.EnableMigration = v.migration
			ls.Respond.EnableBandwidth = v.membwOn
			res, err := ClosedLoop(ls)
			if err != nil {
				return nil, err
			}
			*v.dst = res
		}
		out.Loops = append(out.Loops, loop)
	}
	return out, nil
}

// meanOrNaN averages vs, NaN when empty.
func meanOrNaN(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}
