package experiments

import (
	"fmt"
	"math"

	"memdos/internal/attack"
	"memdos/internal/core"
	"memdos/internal/mem"
	"memdos/internal/pcm"
	"memdos/internal/respond"
	"memdos/internal/stream"
	"memdos/internal/vmm"
	"memdos/internal/workload"
)

// The closed-loop mitigation experiment: the defender-daemon counterpart
// of Fig. 14. Where Fig. 14 quantifies what always-on *detection* costs a
// clean victim, ClosedLoop quantifies what detection-driven *response*
// recovers for an attacked one. It co-locates a finite victim with a
// persistent attacker, streams the victim's PCM samples through an SDS
// session on a stream.Hub, and lets a respond.Engine drive the
// hypervisor's graduated mitigation (throttle the suspect, partition,
// migrate). The headline metric is the victim's normalized execution
// time — completion time divided by the attack-free completion time —
// with and without mitigation.

// ClosedLoopSpec configures one closed-loop study.
type ClosedLoopSpec struct {
	App  string
	Mode AttackMode
	Seed uint64
	// AttackStart is when the attacker first co-locates (seconds).
	AttackStart float64
	// RelocationDelay is how long a migration buys before the attacker
	// re-co-locates (seconds).
	RelocationDelay float64
	// UtilityVMs co-locates this many benign utility VMs.
	UtilityVMs int
	// Respond parameterizes the mitigation ladder.
	Respond respond.Config
	// MaxDuration caps each run (0 = 20x the app's nominal runtime).
	MaxDuration float64
	// Mem, when set, runs every arm on a server with the DRAM
	// memory-controller model on this topology. Required for MemBW
	// attacks and for the ladder's membw-limit rung to actuate.
	Mem *mem.NUMAConfig
	// AttackerSocket homes the attacker on this socket (victim and
	// utility VMs stay on socket 0). On a multi-socket topology a
	// non-zero value makes the attack a remote, cross-socket stream.
	AttackerSocket int
}

// DefaultClosedLoopSpec returns a study of the given app and attack with
// the default mitigation ladder. The partition rung is only enabled for
// LLC cleansing — partitioning cannot contain a bus-locking attacker.
func DefaultClosedLoopSpec(app string, mode AttackMode, seed uint64) ClosedLoopSpec {
	rc := respond.DefaultConfig()
	rc.EnablePartition = mode == Cleansing
	if mode == MemBW {
		// Execution throttling only dents a streaming hog; the MemGuard
		// budget rung is what contains it. Callers must still set Mem.
		rc.EnableBandwidth = true
		rc.BandwidthBudget = MemBWBudget
	}
	return ClosedLoopSpec{
		App:             app,
		Mode:            mode,
		Seed:            seed,
		AttackStart:     30,
		RelocationDelay: 120,
		UtilityVMs:      3,
		Respond:         rc,
	}
}

// ClosedLoopResult reports the recovered performance.
type ClosedLoopResult struct {
	App  string
	Mode AttackMode
	// CleanTime is the victim's attack-free completion time.
	CleanTime float64
	// AttackedTime / MitigatedTime are completion times under attack
	// with mitigation off / on. MitigatedTime includes the detector's
	// hypervisor CPU cost (Fig. 14's overhead model), so the recovery is
	// net of what the defense itself costs.
	AttackedTime, MitigatedTime float64
	// AttackedNormalized / MitigatedNormalized are the Fig. 14-style
	// normalized execution times (1.0 = attack-free).
	AttackedNormalized, MitigatedNormalized float64
	// Recovered is the fraction of the attack-induced slowdown the
	// closed loop gave back: (attacked - mitigated) / (attacked - 1).
	Recovered float64
	// Alarms counts alarm raise events during the mitigated run.
	Alarms int
	// PeakLevel is the highest mitigation rung reached.
	PeakLevel int
	// Engine counters from the mitigated run.
	Stats respond.Stats
}

// loopActuator maps the respond engine's session-addressed actions onto
// the simulated hypervisor: the suspect resolution is exact here (the
// co-located attack VM); on real hardware it would come from per-VM
// counter attribution.
type loopActuator struct {
	srv     *vmm.Server
	suspect vmm.VMID
	sched   *attack.Suppressor
	delay   float64
}

func (a *loopActuator) Throttle(_ string, duty float64) error {
	return a.srv.SetExecThrottle(a.suspect, duty)
}

// LimitBandwidth applies the MemGuard-style DRAM budget to the suspect.
// On a server without the memory-controller model this reports an error,
// which the engine records and climbs past.
func (a *loopActuator) LimitBandwidth(_ string, bytesPerSec float64) error {
	return a.srv.SetMemBandwidthLimit(a.suspect, bytesPerSec)
}

func (a *loopActuator) Partition(_ string, on bool) error {
	return a.srv.SetCachePartition(a.suspect, on)
}

// Migrate moves the victim to a fresh host: the attacker loses
// co-residence and needs the relocation delay to find it again. The
// detector keeps running — the profile remains valid on the new host.
// This single-host study has no real destination; internal/cluster's
// actuator performs the physical move and reports the landing host.
func (a *loopActuator) Migrate(_ string) (respond.MigrateResult, error) {
	a.sched.Suppress(a.srv.Now() + a.delay)
	return respond.MigrateResult{Dest: "fresh-host"}, nil
}

// ClosedLoop runs the three-arm study (clean, attacked, attacked with
// mitigation) and reports the recovered performance. All three arms use
// the same seed; with a fixed spec the result is bit-reproducible — the
// hub runs one shard with Block backpressure and the engine is driven
// only by simulated-time events.
func ClosedLoop(spec ClosedLoopSpec) (*ClosedLoopResult, error) {
	if spec.AttackStart < 0 || spec.RelocationDelay <= 0 {
		return nil, fmt.Errorf("experiments: invalid closed-loop times (start %v, delay %v)", spec.AttackStart, spec.RelocationDelay)
	}
	if spec.Mode == NoAttack {
		return nil, fmt.Errorf("experiments: closed loop needs an attack mode")
	}
	if spec.Mode == MemBW && spec.Mem == nil {
		return nil, fmt.Errorf("experiments: the %v attack needs a memory-controller model (ClosedLoopSpec.Mem)", MemBW)
	}
	ws, err := workload.ByAbbrev(spec.App)
	if err != nil {
		return nil, err
	}
	maxDur := spec.MaxDuration
	if maxDur <= 0 {
		maxDur = 20 * ws.WorkSeconds
	}

	res := &ClosedLoopResult{App: spec.App, Mode: spec.Mode}
	// The three arms share nothing but the spec — each builds its own
	// server, hub and engine — so they run as parallel cells. Only the
	// mitigated arm writes the engine-side fields of res.
	arms := []struct {
		attacked, mitigate bool
		out                *ClosedLoopResult
		dst                *float64
	}{
		{false, false, nil, &res.CleanTime},
		{true, false, nil, &res.AttackedTime},
		{true, true, res, &res.MitigatedTime},
	}
	err = DefaultRunner().Do(len(arms), func(i int) error {
		t, err := closedLoopRun(spec, maxDur, arms[i].attacked, arms[i].mitigate, arms[i].out)
		if err != nil {
			return err
		}
		*arms[i].dst = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.AttackedNormalized = res.AttackedTime / res.CleanTime
	res.MitigatedNormalized = res.MitigatedTime / res.CleanTime
	if res.AttackedNormalized > 1 {
		res.Recovered = (res.AttackedNormalized - res.MitigatedNormalized) / (res.AttackedNormalized - 1)
	}
	return res, nil
}

// closedLoopRun executes one arm and returns the victim's completion
// time. With mitigate set it wires server → hub → engine → server and
// fills the result's engine-side fields.
func closedLoopRun(spec ClosedLoopSpec, maxDur float64, attacked, mitigate bool, out *ClosedLoopResult) (float64, error) {
	cfg := vmm.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.Mem = spec.Mem
	srv, err := vmm.NewServer(cfg)
	if err != nil {
		return 0, err
	}
	appSpec, err := workload.ByAbbrev(spec.App)
	if err != nil {
		return 0, err
	}
	victim, err := srv.AddApp("victim", appSpec)
	if err != nil {
		return 0, err
	}
	if spec.Mem != nil {
		if err := srv.SetVMSocket(victim.ID(), 0); err != nil {
			return 0, err
		}
	}
	var sched *attack.Suppressor
	var atkVM *vmm.VM
	if attacked {
		if sched, err = attack.NewSuppressor(attack.Window{Start: spec.AttackStart, End: math.Inf(1)}); err != nil {
			return 0, err
		}
		atk, err := newAttacker(spec.Mode, sched)
		if err != nil {
			return 0, err
		}
		if atkVM, err = srv.AddAttacker("attacker", atk); err != nil {
			return 0, err
		}
		if spec.Mem != nil {
			if err := srv.SetVMSocket(atkVM.ID(), spec.AttackerSocket); err != nil {
				return 0, err
			}
			if spec.AttackerSocket != 0 {
				// A cross-socket hog streams entirely into the victim's
				// memory, so all its traffic is remote.
				if err := srv.SetMemRemoteFraction(atkVM.ID(), 1); err != nil {
					return 0, err
				}
			}
		}
	}
	for i := 0; i < spec.UtilityVMs; i++ {
		util, err := srv.AddApp(fmt.Sprintf("util%d", i), workload.Utility())
		if err != nil {
			return 0, err
		}
		if spec.Mem != nil {
			if err := srv.SetVMSocket(util.ID(), 0); err != nil {
				return 0, err
			}
		}
	}

	const sessionID = "victim"
	var hub *stream.Hub
	var events <-chan stream.AlarmEvent
	var eng *respond.Engine
	if mitigate {
		params := core.DefaultParams()
		prof, err := profileFor(spec.App, params)
		if err != nil {
			return 0, err
		}
		det, err := core.NewSDS(prof, params)
		if err != nil {
			return 0, err
		}
		// Charge the detector's hypervisor CPU cost, as Fig. 14 does.
		if err := srv.SetHypervisorLoad(det.Overhead()); err != nil {
			return 0, err
		}
		// One shard + Block backpressure keeps the hub bit-deterministic.
		hcfg := stream.Config{Shards: 1, QueueCap: 1 << 14, ShardBuffer: 64, Policy: stream.Block}
		hub = stream.NewHub(hcfg)
		defer hub.Close()
		if err := hub.RegisterProfile("sds", func() (core.Detector, error) {
			return core.NewSDS(prof, params)
		}); err != nil {
			return 0, err
		}
		if err := hub.Open(sessionID, "sds"); err != nil {
			return 0, err
		}
		ch, cancel := hub.Subscribe(256)
		defer cancel()
		events = ch
		act := &loopActuator{srv: srv, suspect: atkVM.ID(), sched: sched, delay: spec.RelocationDelay}
		if eng, err = respond.New(spec.Respond, act); err != nil {
			return 0, err
		}
	}

	for !victim.Completed() && srv.Now() < maxDur {
		step := srv.Step()
		if !mitigate {
			continue
		}
		if smp, ok := step.Samples[victim.ID()]; ok {
			if _, err := hub.Ingest(sessionID, []pcm.Sample{smp}); err != nil {
				return 0, err
			}
		}
		// Drain is a barrier: after it, every alarm transition of this
		// step sits in the subscription buffer, so consuming the channel
		// non-blockingly here is deterministic.
		if err := hub.Drain(); err != nil {
			return 0, err
		}
	drained:
		for {
			select {
			case ev, ok := <-events:
				if !ok {
					break drained
				}
				if ev.Raised && out != nil {
					out.Alarms++
				}
				if err := eng.Observe(ev.Session, ev.Time, ev.Raised); err != nil {
					return 0, err
				}
			default:
				break drained
			}
		}
		eng.Tick(step.Time)
	}
	if !victim.Completed() {
		return 0, fmt.Errorf("experiments: victim did not complete %s within %.0fs (attacked=%v mitigate=%v)",
			spec.App, maxDur, attacked, mitigate)
	}
	if mitigate && out != nil {
		out.Stats = eng.Stats()
		if st, ok := eng.State(sessionID); ok {
			out.PeakLevel = st.PeakLevel
		}
	}
	return victim.DoneAt(), nil
}
