package experiments

import "memdos/internal/par"

// Runner fans independent experiment cells across a bounded worker pool.
// Every paper figure is a sweep over (app x attack x seed x detector)
// cells; each cell builds its own server from its own seed, so cells can
// run on any worker in any order without affecting each other's output.
//
// The pool implementation lives in internal/par so the datacenter
// simulator (internal/cluster) can shard hosts across the same pool;
// this alias keeps the experiments API unchanged.
type Runner = par.Runner

// SetParallelism sets the process-wide default worker count used by
// DefaultRunner (0 restores the NumCPU default) and returns the previous
// value, so tests can restore it. It is shared with internal/cluster's
// host sharding via internal/par.
func SetParallelism(n int) int { return par.SetParallelism(n) }

// Parallelism returns the effective default worker count.
func Parallelism() int { return par.Parallelism() }

// DefaultRunner returns a runner with the process-wide default pool size.
func DefaultRunner() Runner { return par.DefaultRunner() }

// MapCells runs fn over n cells on the runner's pool and returns the
// results indexed by cell, so the merged slice is identical to a serial
// loop's output for any worker count.
func MapCells[T any](r Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	return par.MapCells(r, n, fn)
}
