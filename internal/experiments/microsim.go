package experiments

import (
	"fmt"

	"memdos/internal/attack"
	"memdos/internal/cache"
	"memdos/internal/period"
	"memdos/internal/sim"
	"memdos/internal/workload"
)

// Thin wrappers keeping sensitivity.go readable.

func periodDFTOnly(ma []float64) (float64, bool) {
	e := period.EstimateDFTOnly(ma)
	return e.Period, e.Periodic
}

func periodACFOnly(ma []float64) (float64, bool) {
	e := period.EstimateACFOnly(ma, 0.2)
	return e.Period, e.Periodic
}

func periodDFTACF(ma []float64) (float64, bool) {
	e := period.NewEstimator(period.DefaultEstimatorConfig()).Estimate(ma)
	return e.Period, e.Periodic
}

func workloadByAbbrev(app string) (workload.Spec, error) {
	return workload.ByAbbrev(app)
}

// microVictim is the microsimulation victim: a working set resident in the
// scaled LLC, accessed with high locality plus a small streaming component
// that misses by construction (setting the intrinsic miss ratio).
type microVictim struct {
	c       *cache.Cache
	owner   cache.Owner
	working []uint64
	rng     *sim.RNG
	stream  uint64
}

func newMicroVictim(c *cache.Cache, owner cache.Owner, setFrac float64, linesPerSet int, rng *sim.RNG) *microVictim {
	g := c.Geometry()
	v := &microVictim{c: c, owner: owner, rng: rng, stream: 1 << 40}
	nSets := int(setFrac * float64(g.Sets))
	for s := 0; s < nSets; s++ {
		for w := 0; w < linesPerSet; w++ {
			v.working = append(v.working, c.AddrForSet(s, uint64(w)))
		}
	}
	return v
}

// step issues accesses accesses: a fraction streamFrac touch fresh
// streaming lines (cold misses), the rest re-touch the working set.
func (v *microVictim) step(accesses int, streamFrac float64) {
	for i := 0; i < accesses; i++ {
		if v.rng.Float64() < streamFrac {
			v.stream += uint64(v.c.Geometry().LineSize)
			v.c.Access(v.owner, v.stream)
			continue
		}
		v.c.Access(v.owner, v.working[v.rng.Intn(len(v.working))])
	}
}

// missRatioOver runs the victim for steps steps and returns its measured
// miss ratio, optionally with the cleanser running.
func missRatioOver(c *cache.Cache, v *microVictim, cl *attack.Cleanser, steps, accessesPerStep, cleanseBudget int) float64 {
	c.ResetStats()
	for i := 0; i < steps; i++ {
		v.step(accessesPerStep, 0.05)
		if cl != nil {
			cl.Cleanse(cleanseBudget)
		}
	}
	return c.Stats(v.owner).MissRatio()
}

// microsimCleansingFactor runs the full cleansing attack — probe phase then
// cleanse phase — against a victim on the set-associative cache model, and
// returns the victim's miss-ratio inflation factor.
func microsimCleansingFactor() (float64, error) {
	c, err := cache.New(cache.GeometryScaled)
	if err != nil {
		return 0, err
	}
	const victimOwner, attackerOwner = 1, 2
	rng := sim.NewRNG(99)
	victim := newMicroVictim(c, victimOwner, 0.5, 8, rng)

	// Warm the victim's working set.
	for i := 0; i < 50; i++ {
		victim.step(2000, 0)
	}
	baseline := missRatioOver(c, victim, nil, 100, 2000, 0)
	if baseline <= 0 {
		return 0, fmt.Errorf("experiments: microsim baseline miss ratio is zero")
	}

	// Probe: the attacker fills each set, lets the victim run, and
	// rechecks, exactly the paper's reconnaissance procedure.
	prober := attack.NewProber(c, attackerOwner)
	contested := prober.FindContested(func() {
		for i := 0; i < 20; i++ {
			victim.step(2000, 0.05)
		}
	}, 2)
	if len(contested) == 0 {
		return 0, fmt.Errorf("experiments: probing found no contested sets")
	}
	cl, err := attack.NewCleanser(c, attackerOwner, contested)
	if err != nil {
		return 0, err
	}
	// Re-warm (probing polluted the cache), then measure under attack.
	for i := 0; i < 50; i++ {
		victim.step(2000, 0)
	}
	during := missRatioOver(c, victim, cl, 100, 2000, 8000)
	return during / baseline, nil
}
