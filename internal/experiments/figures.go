package experiments

import (
	"fmt"
	"math"
	"sort"

	"memdos/internal/attack"
	"memdos/internal/core"
	"memdos/internal/metrics"
	"memdos/internal/pcm"
	"memdos/internal/period"
	"memdos/internal/stats"
	"memdos/internal/trace"
	"memdos/internal/vmm"
	"memdos/internal/workload"
)

// ---------------------------------------------------------------------------
// Fig. 1 + Section III-B: KStest false positives with no attack.
// ---------------------------------------------------------------------------

// Fig1Row is one application's no-attack KStest false-alarm rate.
type Fig1Row struct {
	App string
	// FalseAlarmRate is the fraction of L_R intervals in which KStest
	// declared an attack despite none running.
	FalseAlarmRate float64
}

// Fig1Result reproduces Fig. 1 and the Section III-B rates.
type Fig1Result struct {
	Rows []Fig1Row
	// TeraSortFlags is the per-test KS rejection flag time-line for
	// TeraSort (the four-panel Fig. 1 plot): one entry per KS test, true
	// when the test rejected.
	TeraSortFlags []bool
	// FlagTimes are the matching test timestamps.
	FlagTimes []float64
}

// Fig1KStestFalsePositives runs every application for dur seconds with no
// attack under the Section III-B KStest protocol and measures per-interval
// false alarms, averaged over seeds. The (app, seed) cells run on the
// parallel Runner; each cell owns its server and seed, so the merged rows
// are identical to a serial sweep.
func Fig1KStestFalsePositives(dur float64, seeds []uint64) (*Fig1Result, error) {
	if dur < 60 {
		return nil, fmt.Errorf("experiments: Fig1 needs at least 60s runs")
	}
	ksParams := core.DefaultKSParams()
	intervalsPerRun := int(dur / ksParams.LR)
	apps := workload.Abbrevs()

	type cell struct {
		alarmed int
		// flags/times are only filled by the TeraSort first-seed cell
		// (the four-panel Fig. 1 time-line).
		flags []bool
		times []float64
	}
	cells, err := MapCells(DefaultRunner(), len(apps)*len(seeds), func(i int) (cell, error) {
		app := apps[i/len(seeds)]
		seed := seeds[i%len(seeds)]
		recordFlags := app == "TS" && seed == seeds[0]
		var out cell
		cfg := vmm.DefaultConfig()
		cfg.Seed = seed
		srv, err := vmm.NewServer(cfg)
		if err != nil {
			return out, err
		}
		spec := workload.MustByAbbrev(app).Service()
		victim, err := srv.AddApp("victim", spec)
		if err != nil {
			return out, err
		}
		det, err := core.NewKSTestDetector(ksParams, func(d float64) {
			srv.ThrottleOthers(victim.ID(), d)
		})
		if err != nil {
			return out, err
		}
		intervalAlarmed := make(map[int]bool)
		srv.RunUntil(dur, func(step vmm.StepResult) {
			s, ok := step.Samples[victim.ID()]
			if !ok {
				return
			}
			for _, d := range det.Push(s) {
				if recordFlags {
					out.flags = append(out.flags, det.ConsecutiveRejections() > 0)
					out.times = append(out.times, d.Time)
				}
				if d.Alarm {
					intervalAlarmed[int(d.Time/ksParams.LR)] = true
				}
			}
		})
		out.alarmed = len(intervalAlarmed)
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig1Result{}
	for ai, app := range apps {
		alarmed, total := 0, 0
		for si := range seeds {
			c := cells[ai*len(seeds)+si]
			alarmed += c.alarmed
			total += intervalsPerRun
			if len(c.flags) > 0 {
				res.TeraSortFlags = c.flags
				res.FlagTimes = c.times
			}
		}
		res.Rows = append(res.Rows, Fig1Row{App: app, FalseAlarmRate: float64(alarmed) / float64(total)})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figs. 2-6: 120-second counter traces, attack starting at 60 s.
// ---------------------------------------------------------------------------

// TraceResult is one measurement-study trace.
type TraceResult struct {
	App  string
	Mode AttackMode
	// Access and Miss are the raw PCM series over the 120 s run.
	Access, Miss *trace.Series
	// BeforeMean/DuringMean summarize the attack-relevant channel
	// (AccessNum for bus locking, MissNum for cleansing) before and
	// during the attack.
	BeforeMean, DuringMean float64
	// Periods are the DFT-ACF period estimates (in MA samples) of the
	// clean and attacked halves, 0 when not periodic.
	CleanPeriod, AttackedPeriod float64
}

// MeasurementTrace reproduces one panel of Figs. 2-6: 60 s clean + 60 s
// under the given attack.
func MeasurementTrace(app string, mode AttackMode, seed uint64) (*TraceResult, error) {
	if mode == NoAttack {
		return nil, fmt.Errorf("experiments: trace needs an attack mode")
	}
	spec := RunSpec{
		App: app, Mode: mode, Duration: 120, Seed: seed,
		UtilityVMs: 7, Service: true,
	}
	srv, victim, _, err := buildServerWithWindow(spec, 60, 120)
	if err != nil {
		return nil, err
	}
	srv.RunUntil(120, nil)
	c := srv.Counter(victim.ID())
	res := &TraceResult{App: app, Mode: mode, Access: c.AccessSeries(), Miss: c.MissSeries()}

	channel := res.Access
	if mode == Cleansing {
		channel = res.Miss
	}
	res.BeforeMean = channel.Window(5, 60).Mean()
	res.DuringMean = channel.Window(65, 120).Mean()

	params := core.DefaultParams()
	est := period.NewEstimator(period.DefaultEstimatorConfig())
	cleanMA := stats.MA(res.Access.Window(0, 60).Values, params.W, params.DW)
	attackedMA := stats.MA(res.Access.Window(60, 120).Values, params.W, params.DW)
	if p := est.Estimate(cleanMA); p.Periodic {
		res.CleanPeriod = p.Period
	}
	if p := est.Estimate(attackedMA); p.Periodic {
		res.AttackedPeriod = p.Period
	}
	return res, nil
}

// buildServerWithWindow is buildServer with an explicit attack window.
func buildServerWithWindow(spec RunSpec, attackStart, attackEnd float64) (*vmm.Server, *vmm.VM, []metrics.Interval, error) {
	if spec.Mode == NoAttack {
		return buildServer(spec)
	}
	// Reuse buildServer by shifting the Scenario 1 constants: run the
	// generic path, then replace the attacker's schedule. Simpler: build
	// here directly.
	saved := spec
	saved.Mode = NoAttack
	srv, victim, _, err := buildServer(saved)
	if err != nil {
		return nil, nil, nil, err
	}
	atk, err := newAttacker(spec.Mode, attack.Window{Start: attackStart, End: attackEnd})
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := srv.AddAttacker("attacker", atk); err != nil {
		return nil, nil, nil, err
	}
	truth := []metrics.Interval{{Start: attackStart, End: attackEnd}}
	return srv, victim, truth, nil
}

// AllMeasurementTraces regenerates every panel of Figs. 2-6, fanning the
// (app, attack) panels across the parallel Runner.
func AllMeasurementTraces(seed uint64) ([]*TraceResult, error) {
	apps := workload.Abbrevs()
	modes := []AttackMode{BusLock, Cleansing}
	return MapCells(DefaultRunner(), len(apps)*len(modes), func(i int) (*TraceResult, error) {
		return MeasurementTrace(apps[i/len(modes)], modes[i%len(modes)], seed)
	})
}

// ---------------------------------------------------------------------------
// Fig. 7: SDS/B detection example on k-means.
// ---------------------------------------------------------------------------

// Fig7Result is the SDS/B detection example.
type Fig7Result struct {
	// EWMA is the monitored EWMA time series (one value per MA window).
	EWMA []float64
	// Lower and Upper are the profiled normal range.
	Lower, Upper float64
	// AlarmWindow is the index of the EWMA window at which the alarm
	// first fired (-1 if never).
	AlarmWindow int
	// AttackWindow is the window index at which the attack started.
	AttackWindow int
}

// Fig7SDSBExample reproduces the k-means bus-locking detection example.
func Fig7SDSBExample() (*Fig7Result, error) {
	params := core.DefaultParams()
	prof, err := profileFor("KM", params)
	if err != nil {
		return nil, err
	}
	spec := DefaultRunSpec("KM", BusLock, 5)
	spec.Duration = 160
	srv, victim, _, err := buildServerWithWindow(spec, 75, 160)
	if err != nil {
		return nil, err
	}
	det, err := core.NewSDSB(prof, params)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{AlarmWindow: -1}
	res.Lower, res.Upper = prof.AccessBounds(params.K)
	widx := 0
	srv.RunUntil(spec.Duration, func(step vmm.StepResult) {
		s, ok := step.Samples[victim.ID()]
		if !ok {
			return
		}
		for _, d := range det.Push(s) {
			acc, _ := det.EWMAValues()
			res.EWMA = append(res.EWMA, acc)
			if d.Time >= 75 && res.AttackWindow == 0 {
				res.AttackWindow = widx
			}
			if d.Alarm && res.AlarmWindow < 0 {
				res.AlarmWindow = widx
			}
			widx++
		}
	})
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 8: SDS/P detection example on FaceNet.
// ---------------------------------------------------------------------------

// Fig8Result is the SDS/P detection example.
type Fig8Result struct {
	// MA is the monitored moving-average series.
	MA []float64
	// Periods are SDS/P's period estimates (MA samples; 0 = no period
	// found), one per evaluation, with EvalWindows their window indices.
	Periods     []float64
	EvalWindows []int
	// NormalPeriod is the profiled period.
	NormalPeriod float64
	// AlarmWindow is the MA-window index of the first alarm (-1 never).
	AlarmWindow int
	// AttackWindow is the MA-window index when the attack started.
	AttackWindow int
}

// Fig8SDSPExample reproduces the FaceNet period-detection example.
func Fig8SDSPExample() (*Fig8Result, error) {
	params := core.DefaultParams()
	prof, err := profileFor("FN", params)
	if err != nil {
		return nil, err
	}
	if !prof.Periodic {
		return nil, fmt.Errorf("experiments: FaceNet profile not periodic: %+v", prof)
	}
	spec := DefaultRunSpec("FN", BusLock, 6)
	spec.Duration = 240
	srv, victim, _, err := buildServerWithWindow(spec, 120, 240)
	if err != nil {
		return nil, err
	}
	det, err := core.NewSDSP(prof, params)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{NormalPeriod: prof.Period, AlarmWindow: -1}
	ma := stats.NewMAStream(params.W, params.DW)
	widx := 0
	srv.RunUntil(spec.Duration, func(step vmm.StepResult) {
		s, ok := step.Samples[victim.ID()]
		if !ok {
			return
		}
		if avg, ok := ma.Push(s.AccessNum); ok {
			res.MA = append(res.MA, avg)
			if s.Time >= 120 && res.AttackWindow == 0 {
				res.AttackWindow = widx
			}
			widx++
		}
		for _, d := range det.Push(s) {
			res.Periods = append(res.Periods, det.LastPeriod())
			res.EvalWindows = append(res.EvalWindows, widx)
			if d.Alarm && res.AlarmWindow < 0 {
				res.AlarmWindow = widx
			}
		}
	})
	return res, nil
}

// ---------------------------------------------------------------------------
// Figs. 11-13 (Scenario 1) and Figs. 15-16 (Scenario 2).
// ---------------------------------------------------------------------------

// ComparisonCell is one (app, detector) accuracy summary over seeds.
type ComparisonCell struct {
	App      string
	Detector string
	Recall   metrics.Summary
	Spec     metrics.Summary
	// Delay is the mean detection delay across seeds (seconds; NaN if
	// never detected).
	Delay float64
}

// CompareDetectors runs the given apps x detectors under one attack mode
// and scenario, over the seeds, and aggregates accuracy like the paper's
// box plots (median, 10th, 90th percentile). Each detector gets its own
// run, as in the paper: the schemes are alternative deployments, and the
// KStest baseline's execution throttling must not contaminate the others'
// sample streams (nor their overheads stack).
func CompareDetectors(apps []string, factories map[string]DetectorFactory, mode AttackMode, adaptive bool, seeds []uint64) ([]ComparisonCell, error) {
	params := core.DefaultParams()
	grace := EvalGrace
	if adaptive {
		grace = Scenario2Grace
	}
	// The (app, detector, seed) runs are independent and deterministic,
	// so fan them out on the shared Runner. Profiles and the shared DNN
	// cascade are memoized behind sync primitives; the first DNN run
	// trains the cascade, so it is resolved once up front rather than
	// racing inside the pool.
	if _, isDNN := factories["DNN"]; isDNN {
		if _, err := SharedCascade(); err != nil {
			return nil, err
		}
	}
	names := make([]string, 0, len(factories))
	for name := range factories { //memdos:ignore maporder keys are sorted on the next line before any use
		names = append(names, name)
	}
	sort.Strings(names)

	type job struct {
		app, name string
		seed      uint64
	}
	var jobs []job
	for _, app := range apps {
		for _, name := range names {
			for _, seed := range seeds {
				jobs = append(jobs, job{app: app, name: name, seed: seed})
			}
		}
	}
	accs, err := MapCells(DefaultRunner(), len(jobs), func(i int) (Accuracy, error) {
		j := jobs[i]
		spec := DefaultRunSpec(j.app, mode, j.seed)
		spec.Adaptive = adaptive
		res, err := Run(spec, params, map[string]DetectorFactory{j.name: factories[j.name]})
		if err != nil {
			return Accuracy{}, err
		}
		return Score(res, j.name, grace), nil
	})
	if err != nil {
		return nil, err
	}

	// Merge in job order: cells come out sorted (app order, then detector
	// name), independent of how the pool scheduled the runs.
	var cells []ComparisonCell
	for ai, app := range apps {
		for ni, name := range names {
			var acc, spc, dly []float64
			for si := range seeds {
				a := accs[(ai*len(names)+ni)*len(seeds)+si]
				if !math.IsNaN(a.Recall) {
					acc = append(acc, a.Recall)
				}
				if !math.IsNaN(a.Specificity) {
					spc = append(spc, a.Specificity)
				}
				if !math.IsNaN(a.MeanDelay) {
					dly = append(dly, a.MeanDelay)
				}
			}
			cell := ComparisonCell{App: app, Detector: name}
			if len(acc) > 0 {
				cell.Recall = metrics.Summarize(acc)
			}
			if len(spc) > 0 {
				cell.Spec = metrics.Summarize(spc)
			}
			cell.Delay = metrics.MeanDelay(dly)
			if len(dly) == 0 {
				cell.Delay = math.NaN()
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// ---------------------------------------------------------------------------
// Fig. 14: performance overhead.
// ---------------------------------------------------------------------------

// Fig14Row is the normalized execution time of one app under one detection
// scheme.
type Fig14Row struct {
	App        string
	Detector   string
	Normalized float64
}

// detectorLoad describes each scheme's overhead mechanism for the Fig. 14
// experiment: a hypervisor CPU fraction, plus execution throttling for
// KStest.
type detectorLoad struct {
	name      string
	cpu       float64
	throttled bool
}

// Fig14Overhead measures normalized execution times (victim runs to
// completion; no attack) under each detection scheme. Every (app, load)
// completion run — including each app's baseline — is one parallel cell.
func Fig14Overhead(apps []string) ([]Fig14Row, error) {
	params := core.DefaultParams()
	loads := []detectorLoad{
		{name: "SDS", cpu: 0.018},
		{name: "SDS/B", cpu: 0.012},
		{name: "SDS/P", cpu: 0.015},
		{name: "DNN", cpu: 0.035},
		{name: "KStest", cpu: 0.02, throttled: true},
	}
	// Cell layout per app: index 0 is the no-detector baseline, then one
	// cell per load.
	perApp := 1 + len(loads)
	times, err := MapCells(DefaultRunner(), len(apps)*perApp, func(i int) (float64, error) {
		app := apps[i/perApp]
		j := i % perApp
		if j == 0 {
			return completionTime(app, 0, false, params)
		}
		ld := loads[j-1]
		return completionTime(app, ld.cpu, ld.throttled, params)
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig14Row
	for ai, app := range apps {
		baseline := times[ai*perApp]
		for li, ld := range loads {
			norm, err := metrics.NormalizedExecTime(baseline, times[ai*perApp+1+li])
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig14Row{App: app, Detector: ld.name, Normalized: norm})
		}
	}
	return rows, nil
}

// completionTime runs the app to completion on a server carrying the given
// detector load and returns the finish time.
func completionTime(app string, cpu float64, throttled bool, params core.Params) (float64, error) {
	cfg := vmm.DefaultConfig()
	cfg.Seed = 17
	srv, err := vmm.NewServer(cfg)
	if err != nil {
		return 0, err
	}
	spec := workload.MustByAbbrev(app) // finite WorkSeconds
	victim, err := srv.AddApp("victim", spec)
	if err != nil {
		return 0, err
	}
	// The protected VM is a *different* VM: the measured app is a benign
	// co-located neighbour, which is who throttling and detector load
	// hurt (Fig. 14 measures "applications running on the VMs" while the
	// hypervisor runs detection for a protected VM).
	protected, err := srv.AddApp("protected", workload.MustByAbbrev("KM").Service())
	if err != nil {
		return 0, err
	}
	for i := 0; i < 6; i++ {
		if _, err := srv.AddApp(fmt.Sprintf("util%d", i), workload.Utility()); err != nil {
			return 0, err
		}
	}
	if cpu > 0 {
		if err := srv.SetHypervisorLoad(cpu); err != nil {
			return 0, err
		}
	}
	var ks *core.KSTestDetector
	if throttled {
		ks, err = core.NewKSTestDetector(core.EvaluationKSParams(), func(d float64) {
			srv.ThrottleOthers(protected.ID(), d)
		})
		if err != nil {
			return 0, err
		}
	}
	const horizon = 4000.0
	srv.RunUntil(horizon, func(step vmm.StepResult) {
		if ks == nil {
			return
		}
		if s, ok := step.Samples[protected.ID()]; ok {
			ks.Push(s)
		}
	})
	if !victim.Completed() {
		return 0, fmt.Errorf("experiments: %s did not complete within %v s", app, horizon)
	}
	return victim.DoneAt(), nil
}

// ---------------------------------------------------------------------------
// Helpers shared with the CLI.
// ---------------------------------------------------------------------------

// StandardFactories returns the detector set of the Section VI comparison.
// DNN training is triggered lazily on first use.
func StandardFactories(withDNN bool) map[string]DetectorFactory {
	fs := map[string]DetectorFactory{
		"SDS":    SDSFactory,
		"KStest": KSFactory,
	}
	if withDNN {
		fs["DNN"] = DNNFactory
	}
	return fs
}

// PeriodicFactories adds the stand-alone SDS/B and SDS/P detectors used on
// the periodic applications in Figs. 11-13.
func PeriodicFactories(withDNN bool) map[string]DetectorFactory {
	fs := StandardFactories(withDNN)
	fs["SDS/B"] = SDSBFactory
	fs["SDS/P"] = SDSPFactory
	return fs
}

// Replay runs a recorded counter trace through a detector offline — e.g.
// to re-analyze an exported CSV trace with different detector parameters,
// or to score a detector against archived incidents. The two series must
// share length and timing.
func Replay(det core.Detector, access, miss *trace.Series) ([]core.Decision, error) {
	if access.Len() != miss.Len() {
		return nil, fmt.Errorf("experiments: access/miss length mismatch (%d vs %d)", access.Len(), miss.Len())
	}
	var out []core.Decision
	for i := range access.Values {
		s := pcm.Sample{Time: access.TimeAt(i), AccessNum: access.Values[i], MissNum: miss.Values[i]}
		out = append(out, det.Push(s)...)
	}
	return out, nil
}
