// Package par provides the bounded worker pool shared by the experiment
// harness (internal/experiments) and the datacenter simulator
// (internal/cluster). It owns the process-wide default parallelism knob
// (the CLI's -parallel flag) so both layers honor the same setting.
//
// The pool's central guarantee is determinism by construction: Do hands
// out cell indices and callers merge results by index, so the merged
// output is byte-identical to a serial run regardless of the worker
// count or goroutine scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner fans independent cells across a bounded worker pool. Each cell
// must be self-contained (no shared mutable state with other cells), so
// cells can run on any worker in any order without affecting each
// other's output. Results are merged by cell index, which makes the
// merged output byte-identical to a serial run regardless of the worker
// count or scheduling — the property the determinism tests pin down.
type Runner struct {
	// Workers caps the pool size; 0 means Parallelism() (which defaults
	// to runtime.NumCPU()).
	Workers int
}

// parallelism is the process-wide default worker count; 0 means
// runtime.NumCPU(). Tests and the CLI override it via SetParallelism.
var parallelism atomic.Int32

// SetParallelism sets the process-wide default worker count used by
// DefaultRunner (0 restores the NumCPU default) and returns the previous
// value, so tests can restore it.
func SetParallelism(n int) int {
	old := parallelism.Swap(int32(n))
	return int(old)
}

// Parallelism returns the effective default worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// DefaultRunner returns a runner with the process-wide default pool size.
func DefaultRunner() Runner { return Runner{} }

// workers resolves the effective pool size for n cells.
func (r Runner) workers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = Parallelism()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Do runs fn(i) for every cell i in [0, n) on the pool and waits for all
// of them. If any cell fails, the error of the lowest-index failing cell
// is returned (the same error a serial loop would have hit first), and
// cells that have not started yet are skipped.
func (r Runner) Do(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := r.workers(n)
	if w == 1 {
		// Inline fast path: no goroutines, exactly the serial loop.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		failed  atomic.Bool
		mu      sync.Mutex
		errIdx  = -1
		firstEr error
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// MapCells runs fn over n cells on the runner's pool and returns the
// results indexed by cell, so the merged slice is identical to a serial
// loop's output for any worker count.
func MapCells[T any](r Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := r.Do(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
