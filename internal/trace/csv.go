package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes one or more series sharing the same timing grid as a CSV
// table with a leading "time" column. Series of unequal length are padded
// with empty cells.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("trace: WriteCSV requires at least one series")
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, "time")
	maxLen := 0
	for _, s := range series {
		header = append(header, s.Name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(series)+1)
	for i := 0; i < maxLen; i++ {
		row[0] = strconv.FormatFloat(series[0].TimeAt(i), 'g', -1, 64)
		for j, s := range series {
			if i < s.Len() {
				row[j+1] = strconv.FormatFloat(s.Values[i], 'g', -1, 64)
			} else {
				row[j+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table written by WriteCSV and reconstructs the series.
// The time column must be uniformly spaced; the reconstructed interval is
// inferred from the first two rows (or 1.0 for single-row tables).
func ReadCSV(r io.Reader) ([]*Series, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	header := records[0]
	if len(header) < 2 || header[0] != "time" {
		return nil, fmt.Errorf("trace: malformed CSV header %q", header)
	}
	start, interval := 0.0, 1.0
	if len(records) > 1 {
		start, err = strconv.ParseFloat(records[1][0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad time cell: %w", err)
		}
	}
	if len(records) > 2 {
		t1, err := strconv.ParseFloat(records[2][0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad time cell: %w", err)
		}
		interval = t1 - start
	}
	out := make([]*Series, len(header)-1)
	for j := range out {
		out[j] = NewSeries(header[j+1], start, interval)
	}
	for _, rec := range records[1:] {
		for j := range out {
			cell := rec[j+1]
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad value cell %q: %w", cell, err)
			}
			out[j].Append(v)
		}
	}
	return out, nil
}
