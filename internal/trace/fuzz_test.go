package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV reader: it must never
// panic, and everything it accepts must round-trip through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("time,x\n0,1\n0.5,2\n")
	f.Add("time,a,b\n0,1,\n1,2,3\n")
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		series, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if len(series) == 0 {
			t.Fatal("accepted input produced zero series")
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, series...); err != nil {
			t.Fatalf("accepted series failed to re-encode: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-encoded CSV rejected: %v", err)
		}
		if len(again) != len(series) {
			t.Fatalf("round trip changed series count: %d -> %d", len(series), len(again))
		}
	})
}
