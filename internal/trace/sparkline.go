package trace

import "strings"

// sparkTicks are the eight block-element levels of a terminal sparkline.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as a fixed-width terminal sparkline by
// bucketing samples into width columns (mean per bucket) and mapping each
// bucket onto eight block levels between the series min and max. A flat or
// empty series renders as mid-level blocks.
func Sparkline(s *Series, width int) string {
	if width <= 0 || s == nil || s.Len() == 0 {
		return ""
	}
	if width > s.Len() {
		width = s.Len()
	}
	buckets := make([]float64, width)
	counts := make([]int, width)
	for i, v := range s.Values {
		b := i * width / s.Len()
		buckets[b] += v
		counts[b]++
	}
	lo, hi := buckets[0]/float64(counts[0]), buckets[0]/float64(counts[0])
	for b := range buckets {
		buckets[b] /= float64(counts[b])
		if buckets[b] < lo {
			lo = buckets[b]
		}
		if buckets[b] > hi {
			hi = buckets[b]
		}
	}
	var sb strings.Builder
	span := hi - lo
	for _, v := range buckets {
		idx := len(sparkTicks) / 2
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkTicks)-1))
		}
		sb.WriteRune(sparkTicks[idx])
	}
	return sb.String()
}
