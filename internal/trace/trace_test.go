package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func mkSeries(vals ...float64) *Series {
	s := NewSeries("x", 0, 0.5)
	s.Values = vals
	return s
}

func TestTimeAtAndEnd(t *testing.T) {
	s := mkSeries(1, 2, 3, 4)
	if got := s.TimeAt(2); got != 1.0 {
		t.Errorf("TimeAt(2) = %v, want 1.0", got)
	}
	if got := s.End(); got != 2.0 {
		t.Errorf("End = %v, want 2.0", got)
	}
}

func TestIndexAt(t *testing.T) {
	s := mkSeries(1, 2, 3, 4)
	cases := []struct {
		t    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.49, 0}, {0.5, 1}, {1.6, 3}, {99, 3},
	}
	for _, c := range cases {
		if got := s.IndexAt(c.t); got != c.want {
			t.Errorf("IndexAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	var empty Series
	if empty.IndexAt(0) != -1 {
		t.Error("IndexAt on empty series should be -1")
	}
}

func TestSliceSharesStorageAndShiftsStart(t *testing.T) {
	s := mkSeries(1, 2, 3, 4, 5)
	sub := s.Slice(2, 4)
	if sub.Start != 1.0 {
		t.Errorf("sub.Start = %v, want 1.0", sub.Start)
	}
	if sub.Len() != 2 || sub.Values[0] != 3 {
		t.Errorf("sub = %+v", sub.Values)
	}
	sub.Values[0] = 99
	if s.Values[2] != 99 {
		t.Error("Slice should share storage")
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Slice out of range did not panic")
		}
	}()
	mkSeries(1, 2).Slice(0, 3)
}

func TestWindow(t *testing.T) {
	s := mkSeries(1, 2, 3, 4, 5, 6) // times 0,0.5,...,2.5
	w := s.Window(0.5, 2.0)
	if w.Len() != 3 || w.Values[0] != 2 || w.Values[2] != 4 {
		t.Errorf("Window(0.5,2.0) = %v", w.Values)
	}
	// Out-of-range windows clamp.
	if got := s.Window(-10, 100).Len(); got != 6 {
		t.Errorf("clamped window len = %d, want 6", got)
	}
	if got := s.Window(10, 20).Len(); got != 0 {
		t.Errorf("disjoint window len = %d, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := mkSeries(1, 2, 3)
	c := s.Clone()
	c.Values[0] = 42
	if s.Values[0] != 1 {
		t.Error("Clone should not share storage")
	}
}

func TestStats(t *testing.T) {
	s := mkSeries(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Std(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestStatsDegenerate(t *testing.T) {
	var empty Series
	if empty.Mean() != 0 || empty.Std() != 0 {
		t.Error("empty series should have zero mean/std")
	}
	one := mkSeries(7)
	if one.Std() != 0 {
		t.Error("single-sample std should be 0")
	}
}

func TestZip(t *testing.T) {
	a := mkSeries(1, 2, 3)
	b := mkSeries(10, 20, 30)
	sum, err := Zip(a, b, "sum", func(x, y float64) float64 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Values[2] != 33 {
		t.Errorf("Zip sum = %v", sum.Values)
	}
	_, err = Zip(a, mkSeries(1), "bad", func(x, y float64) float64 { return 0 })
	if err != ErrLengthMismatch {
		t.Errorf("Zip length mismatch error = %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	a := NewSeries("access", 0, 0.01)
	b := NewSeries("miss", 0, 0.01)
	for i := 0; i < 50; i++ {
		a.Append(float64(i) * 1.5)
		b.Append(float64(i) * -0.25)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d series", len(got))
	}
	for i := range a.Values {
		if got[0].Values[i] != a.Values[i] || got[1].Values[i] != b.Values[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	if math.Abs(got[0].Interval-0.01) > 1e-12 {
		t.Errorf("interval = %v, want 0.01", got[0].Interval)
	}
}

func TestCSVUnequalLengths(t *testing.T) {
	a := mkSeries(1, 2, 3)
	b := mkSeries(9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Len() != 3 || got[1].Len() != 1 {
		t.Errorf("lens = %d,%d want 3,1", got[0].Len(), got[1].Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, bad := range []string{"", "a,b\n1,2\n", "time,x\nzzz,1\n", "time,x\n0,zzz\n"} {
		if _, err := ReadCSV(bytes.NewBufferString(bad)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", bad)
		}
	}
}

func TestWindowSliceConsistencyProperty(t *testing.T) {
	// Property: Window(t0,t1) values are always a contiguous subsequence.
	check := func(seed int64, n uint8) bool {
		s := NewSeries("p", 0, 0.1)
		for i := 0; i < int(n); i++ {
			s.Append(float64(i))
		}
		t0 := float64(seed%40) / 10
		t1 := t0 + float64(n)/20
		w := s.Window(t0, t1)
		for i := 1; i < w.Len(); i++ {
			if w.Values[i] != w.Values[i-1]+1 {
				return false
			}
		}
		return w.Len() <= s.Len()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSparkline(t *testing.T) {
	s := NewSeries("x", 0, 1)
	for i := 0; i < 100; i++ {
		s.Append(float64(i))
	}
	line := Sparkline(s, 10)
	runes := []rune(line)
	if len(runes) != 10 {
		t.Fatalf("sparkline width = %d, want 10", len(runes))
	}
	// Monotone series: first rune lowest, last highest.
	if runes[0] != '▁' || runes[9] != '█' {
		t.Errorf("sparkline = %q", line)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("monotone series gave non-monotone sparkline %q", line)
		}
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("nil series should render empty")
	}
	empty := NewSeries("e", 0, 1)
	if Sparkline(empty, 10) != "" {
		t.Error("empty series should render empty")
	}
	flat := mkSeries(5, 5, 5, 5)
	line := []rune(Sparkline(flat, 4))
	if len(line) != 4 {
		t.Fatalf("flat sparkline = %q", string(line))
	}
	for _, r := range line {
		if r != line[0] {
			t.Error("flat series should render uniformly")
		}
	}
	// Width larger than series clamps.
	short := mkSeries(1, 2)
	if got := len([]rune(Sparkline(short, 10))); got != 2 {
		t.Errorf("clamped width = %d, want 2", got)
	}
	if Sparkline(short, 0) != "" {
		t.Error("zero width should render empty")
	}
}
