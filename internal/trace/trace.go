// Package trace provides the time-series containers shared by the PCM
// monitor, the detectors, and the experiment harness, along with CSV
// encoding for exporting figures.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// Series is a uniformly sampled time series: Values[i] was observed at time
// Start + i*Interval (simulated seconds).
type Series struct {
	Name     string
	Start    float64
	Interval float64
	Values   []float64
}

// NewSeries returns an empty series with the given name and sampling
// interval, starting at time start.
func NewSeries(name string, start, interval float64) *Series {
	if interval <= 0 {
		panic(fmt.Sprintf("trace: non-positive interval %v", interval))
	}
	return &Series{Name: name, Start: start, Interval: interval}
}

// Append adds one sample to the end of the series.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of sample i.
func (s *Series) TimeAt(i int) float64 { return s.Start + float64(i)*s.Interval }

// End returns the timestamp one interval past the final sample, i.e. the
// time the series covers up to. An empty series ends at Start.
func (s *Series) End() float64 { return s.Start + float64(len(s.Values))*s.Interval }

// IndexAt returns the index of the sample covering time t, clamped to the
// valid range. It returns -1 for an empty series.
func (s *Series) IndexAt(t float64) int {
	if len(s.Values) == 0 {
		return -1
	}
	i := int(math.Floor((t - s.Start) / s.Interval))
	if i < 0 {
		i = 0
	}
	if i >= len(s.Values) {
		i = len(s.Values) - 1
	}
	return i
}

// Slice returns a view of samples [i, j). The returned series shares the
// underlying storage.
func (s *Series) Slice(i, j int) *Series {
	if i < 0 || j > len(s.Values) || i > j {
		panic(fmt.Sprintf("trace: slice bounds [%d,%d) out of range (len %d)", i, j, len(s.Values)))
	}
	return &Series{
		Name:     s.Name,
		Start:    s.TimeAt(i),
		Interval: s.Interval,
		Values:   s.Values[i:j],
	}
}

// Window returns the samples whose timestamps fall in [t0, t1). Both bounds
// are clamped to the series extent.
func (s *Series) Window(t0, t1 float64) *Series {
	i := int(math.Ceil((t0 - s.Start) / s.Interval))
	j := int(math.Ceil((t1 - s.Start) / s.Interval))
	if i < 0 {
		i = 0
	}
	if j < 0 {
		j = 0
	}
	if j > len(s.Values) {
		j = len(s.Values)
	}
	if i > j {
		i = j
	}
	return s.Slice(i, j)
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	c := *s
	c.Values = append([]float64(nil), s.Values...)
	return &c
}

// Mean returns the arithmetic mean of the series, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Std returns the population standard deviation, or 0 for series shorter
// than two samples.
func (s *Series) Std() float64 {
	n := len(s.Values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.Values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the minimum value; it panics on an empty series.
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		panic("trace: Min of empty series")
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum value; it panics on an empty series.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		panic("trace: Max of empty series")
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ErrLengthMismatch is returned when combining series of different lengths.
var ErrLengthMismatch = errors.New("trace: series length mismatch")

// Zip returns a new series whose i-th value is f(a[i], b[i]). The result
// inherits a's timing metadata.
func Zip(a, b *Series, name string, f func(x, y float64) float64) (*Series, error) {
	if len(a.Values) != len(b.Values) {
		return nil, ErrLengthMismatch
	}
	out := &Series{Name: name, Start: a.Start, Interval: a.Interval, Values: make([]float64, len(a.Values))}
	for i := range a.Values {
		out.Values[i] = f(a.Values[i], b.Values[i])
	}
	return out, nil
}
