package sim

import (
	"fmt"
	"time"
)

// Seconds is the unit of simulated time throughout the repository.
type Seconds = float64

// Clock is a fixed-step simulated clock. Substrates advance it with Tick;
// the step size is fixed at construction so every component observes the
// same discretization.
type Clock struct {
	step Seconds
	tick uint64
}

// NewClock returns a clock with the given step size in simulated seconds.
// It panics if step is not positive.
func NewClock(step Seconds) *Clock {
	if step <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock step %v", step))
	}
	return &Clock{step: step}
}

// Step returns the step size in simulated seconds.
func (c *Clock) Step() Seconds { return c.step }

// Now returns the current simulated time in seconds.
func (c *Clock) Now() Seconds { return float64(c.tick) * c.step }

// Ticks returns the number of elapsed steps.
func (c *Clock) Ticks() uint64 { return c.tick }

// Tick advances the clock by one step and returns the new time.
func (c *Clock) Tick() Seconds {
	c.tick++
	return c.Now()
}

// Duration converts a simulated-seconds span to a time.Duration, useful for
// human-readable reporting only (simulated time never sleeps).
func Duration(s Seconds) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Stepper is implemented by every component that evolves with the clock.
// Step is called exactly once per clock tick with the tick's start time and
// the step duration.
type Stepper interface {
	Step(now Seconds, dt Seconds)
}

// Engine drives a set of Steppers against one clock in registration order.
// Registration order is significant: producers (workloads, attackers)
// should be registered before consumers (bus, cache, monitors).
type Engine struct {
	clock    *Clock
	steppers []Stepper
}

// NewEngine returns an engine around the given clock.
func NewEngine(clock *Clock) *Engine {
	return &Engine{clock: clock}
}

// Clock returns the engine's clock.
func (e *Engine) Clock() *Clock { return e.clock }

// Register appends s to the step order.
func (e *Engine) Register(s Stepper) {
	e.steppers = append(e.steppers, s)
}

// Run advances the simulation until the clock reaches at least until
// simulated seconds, stepping every registered component each tick.
func (e *Engine) Run(until Seconds) {
	for e.clock.Now() < until {
		now := e.clock.Now()
		dt := e.clock.Step()
		for _, s := range e.steppers {
			s.Step(now, dt)
		}
		e.clock.Tick()
	}
}

// RunSteps advances the simulation by exactly n ticks.
func (e *Engine) RunSteps(n int) {
	for i := 0; i < n; i++ {
		now := e.clock.Now()
		dt := e.clock.Step()
		for _, s := range e.steppers {
			s.Step(now, dt)
		}
		e.clock.Tick()
	}
}
