// Package sim provides the deterministic simulation primitives shared by
// every substrate in this repository: a fixed-step simulated clock and a
// seeded, splittable random number generator.
//
// All experiments in the paper reproduction run against simulated time, so
// a run is reproducible bit-for-bit given its seed.
package sim

import "math"

// RNG is a small, fast, deterministic random number generator based on
// splitmix64. It is intentionally not safe for concurrent use; give each
// goroutine (or each simulated component) its own RNG via Split.
type RNG struct {
	state uint64
	// cached spare normal deviate for Marsaglia polar method
	spare    float64
	hasSpare bool
}

// NewRNG returns an RNG seeded with seed. Distinct seeds yield
// independent-looking streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, independently-seeded RNG from r. The derived stream
// is decorrelated from r's future output, so components can be given their
// own generators without sharing state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// Exponential returns an exponentially distributed float64 with the given
// mean (i.e., rate 1/mean).
func (r *RNG) Exponential(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes n elements using the swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
