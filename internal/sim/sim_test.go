package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 1000", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child must not replay the parent's stream.
	p := NewRNG(7)
	p.Uint64() // consume the draw Split used
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatal("split child replays parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		f := r.Uniform(10, 50)
		if f < 10 || f >= 50 {
			t.Fatalf("Uniform out of [10,50): %v", f)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("normal mean = %v, want ~3", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exponential(4)
		if x < 0 {
			t.Fatalf("exponential draw negative: %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Errorf("exponential mean = %v, want ~4", mean)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		p := NewRNG(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) hit rate = %v", frac)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0.01)
	if c.Now() != 0 {
		t.Fatalf("new clock Now = %v, want 0", c.Now())
	}
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	if math.Abs(c.Now()-1.0) > 1e-9 {
		t.Errorf("after 100 ticks of 0.01, Now = %v, want 1.0", c.Now())
	}
	if c.Ticks() != 100 {
		t.Errorf("Ticks = %d, want 100", c.Ticks())
	}
}

func TestClockPanicsOnBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

type countingStepper struct {
	calls int
	last  Seconds
}

func (c *countingStepper) Step(now, dt Seconds) {
	c.calls++
	c.last = now
}

func TestEngineRun(t *testing.T) {
	e := NewEngine(NewClock(0.1))
	s := &countingStepper{}
	e.Register(s)
	e.Run(1.0)
	if s.calls != 10 {
		t.Errorf("stepper called %d times, want 10", s.calls)
	}
	if math.Abs(s.last-0.9) > 1e-9 {
		t.Errorf("last step at %v, want 0.9", s.last)
	}
}

func TestEngineRunSteps(t *testing.T) {
	e := NewEngine(NewClock(0.5))
	a := &countingStepper{}
	b := &countingStepper{}
	e.Register(a)
	e.Register(b)
	e.RunSteps(7)
	if a.calls != 7 || b.calls != 7 {
		t.Errorf("steppers called %d/%d times, want 7/7", a.calls, b.calls)
	}
}

func TestDuration(t *testing.T) {
	if d := Duration(1.5); d != 1500*time.Millisecond {
		t.Errorf("Duration(1.5) = %v", d)
	}
}
