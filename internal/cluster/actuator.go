package cluster

import (
	"fmt"

	"memdos/internal/respond"
	"memdos/internal/vmm"
)

// actuator maps the respond engine's session-addressed actions onto the
// cluster. A session is a victim VM name; throttle and partition resolve
// to the attack VMs currently co-resident with that victim (exact suspect
// resolution, as in the single-host studies — a real hypervisor would
// attribute suspects from per-VM counters), and migrate performs a real
// cluster migration of the victim to a scheduler-chosen host.
//
// Applied mitigation is recorded per session as concrete (host, vm)
// pairs, so a release issued after the victim migrated away still undoes
// the throttles on the *old* host — resolving the release against the
// victim's new (clean) host would strand the old host's attackers
// throttled forever. When two victims on one host throttle the same
// attacker the last writer wins, and either session's release clears it;
// the graduated ladder re-raises within seconds if contention persists.
//
// All methods run on the serial control plane (the engine is only ever
// driven from Cluster.Step), so no locking is needed.
type actuator struct {
	c *Cluster
	// applied records the mitigation each session currently holds.
	applied map[string][]appliedEntry
}

// mitKind distinguishes the concrete mitigation an appliedEntry records.
type mitKind int

const (
	mitThrottle mitKind = iota
	mitBandwidth
	mitPartition
)

// appliedEntry is one concrete mitigation applied on behalf of a session.
type appliedEntry struct {
	host int
	id   vmm.VMID
	kind mitKind
}

// suspects returns the attack VMs co-resident with the session's victim,
// in record order. Empty while the victim is in transit.
func (a *actuator) suspects(session string) ([]appliedEntry, error) {
	rec, ok := a.c.byName[session]
	if !ok {
		return nil, fmt.Errorf("cluster: no VM for session %q", session)
	}
	if rec.inTransit {
		return nil, nil
	}
	var out []appliedEntry
	for _, r := range a.c.recs {
		if r.kind == kindAttacker && !r.inTransit && r.host == rec.host {
			out = append(out, appliedEntry{host: r.host, id: r.id})
		}
	}
	return out, nil
}

// undo releases the session's recorded mitigation of the given kind on
// whatever host it was applied. Departed husk slots accept the release
// as a no-op, so an attacker that churned away meanwhile is harmless.
func (a *actuator) undo(session string, kind mitKind) error {
	kept := a.applied[session][:0]
	for _, e := range a.applied[session] {
		if e.kind != kind {
			kept = append(kept, e)
			continue
		}
		srv := a.c.hosts[e.host].srv
		var err error
		switch kind {
		case mitPartition:
			err = srv.SetCachePartition(e.id, false)
		case mitBandwidth:
			err = srv.SetMemBandwidthLimit(e.id, 0)
		default:
			err = srv.SetExecThrottle(e.id, 0)
		}
		if err != nil {
			return err
		}
	}
	a.applied[session] = kept
	return nil
}

// Throttle applies (or with duty 0 releases) the execution throttle on
// the suspects co-resident with the session's victim.
func (a *actuator) Throttle(session string, duty float64) error {
	if a.applied == nil {
		a.applied = make(map[string][]appliedEntry)
	}
	// A rung change re-resolves suspects: undo the old throttles first so
	// an attacker that moved since is not left behind at a stale duty.
	if err := a.undo(session, mitThrottle); err != nil {
		return err
	}
	if duty <= 0 {
		return nil
	}
	sus, err := a.suspects(session)
	if err != nil {
		return err
	}
	for _, e := range sus {
		if err := a.c.hosts[e.host].srv.SetExecThrottle(e.id, duty); err != nil {
			return err
		}
		a.applied[session] = append(a.applied[session], e)
	}
	return nil
}

// LimitBandwidth applies (or with 0 releases) a MemGuard-style DRAM
// bandwidth budget on the suspects co-resident with the session's
// victim. On a cluster whose hosts run without a memory-controller model
// the underlying call fails and the engine logs the error and keeps
// climbing the ladder.
func (a *actuator) LimitBandwidth(session string, bytesPerSec float64) error {
	if a.applied == nil {
		a.applied = make(map[string][]appliedEntry)
	}
	if err := a.undo(session, mitBandwidth); err != nil {
		return err
	}
	if bytesPerSec <= 0 {
		return nil
	}
	sus, err := a.suspects(session)
	if err != nil {
		return err
	}
	for _, e := range sus {
		e.kind = mitBandwidth
		if err := a.c.hosts[e.host].srv.SetMemBandwidthLimit(e.id, bytesPerSec); err != nil {
			return err
		}
		a.applied[session] = append(a.applied[session], e)
	}
	return nil
}

// Partition toggles pseudo cache-partitioning around the suspects
// co-resident with the session's victim.
func (a *actuator) Partition(session string, on bool) error {
	if a.applied == nil {
		a.applied = make(map[string][]appliedEntry)
	}
	if err := a.undo(session, mitPartition); err != nil {
		return err
	}
	if !on {
		return nil
	}
	sus, err := a.suspects(session)
	if err != nil {
		return err
	}
	for _, e := range sus {
		e.kind = mitPartition
		if err := a.c.hosts[e.host].srv.SetCachePartition(e.id, true); err != nil {
			return err
		}
		a.applied[session] = append(a.applied[session], e)
	}
	return nil
}

// Migrate drains the session's victim to a scheduler-chosen clean host
// and reports the destination. The engine releases the session's local
// mitigation right after this returns; the recorded (host, vm) pairs
// make that release land on the host the victim just left.
func (a *actuator) Migrate(session string) (respond.MigrateResult, error) {
	dest, err := a.c.MigrateVM(session)
	if err != nil {
		return respond.MigrateResult{}, err
	}
	return respond.MigrateResult{Dest: dest}, nil
}
