package cluster

import "fmt"

// SchedulerPolicy selects the cluster's placement scheduler: where new
// VMs land and where migrating victims are evacuated to.
type SchedulerPolicy int

// Placement scheduler policies.
const (
	// RoundRobin rotates placements across hosts in id order.
	RoundRobin SchedulerPolicy = iota
	// BinPack fills the lowest-id host up to Config.HostCapacity before
	// opening the next — the consolidation-first policy real clouds use
	// to keep hosts busy, and the one that maximizes co-residence.
	BinPack
	// Spread is contention-aware: it places onto the host with the
	// highest recent mean application speed (an observable proxy for
	// "not under attack"), breaking ties toward fewer residents, then
	// lower id. It never consults ground-truth attacker locations — only
	// what a real scheduler could measure.
	Spread
)

// String names the policy.
func (p SchedulerPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case BinPack:
		return "bin-pack"
	case Spread:
		return "spread"
	default:
		return fmt.Sprintf("SchedulerPolicy(%d)", int(p))
	}
}

// AttackerPolicy selects how attack VMs place themselves and move — the
// adversary's co-location strategy from the paper's threat model
// (Section III: attackers must first achieve co-residence).
type AttackerPolicy int

// Attacker placement policies.
const (
	// AttackRandom lands each attacker on a random host and stays.
	AttackRandom AttackerPolicy = iota
	// AttackTargeted places each attacker on its target victim's host
	// and, whenever the victim escapes (migration), re-co-locates after
	// Config.RelocationDelay — the probing delay of Section III-B.
	AttackTargeted
	// AttackChurn relocates each attacker to a random host every
	// Config.ChurnInterval, sweeping the cluster.
	AttackChurn
)

// String names the policy.
func (p AttackerPolicy) String() string {
	switch p {
	case AttackRandom:
		return "random"
	case AttackTargeted:
		return "targeted"
	case AttackChurn:
		return "churn"
	default:
		return fmt.Sprintf("AttackerPolicy(%d)", int(p))
	}
}

// scheduler is the internal placement strategy interface. Methods run
// only on the serial control plane and may mutate policy state.
type scheduler interface {
	// place returns the host for a newly created VM.
	place(c *Cluster) int
	// migrationTarget returns the host a victim evacuating `from` should
	// land on (never `from` itself on a multi-host cluster).
	migrationTarget(c *Cluster, from int) int
}

// newScheduler builds the scheduler for a policy.
func newScheduler(p SchedulerPolicy) (scheduler, error) {
	switch p {
	case RoundRobin:
		return &roundRobin{}, nil
	case BinPack:
		return binPack{}, nil
	case Spread:
		return spread{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown scheduler policy %v", p)
	}
}

// roundRobin rotates across hosts in id order.
type roundRobin struct{ next int }

func (r *roundRobin) place(c *Cluster) int {
	h := r.next % len(c.hosts)
	r.next++
	return h
}

func (r *roundRobin) migrationTarget(c *Cluster, from int) int {
	for i := 0; i < len(c.hosts); i++ {
		h := r.next % len(c.hosts)
		r.next++
		if h != from {
			return h
		}
	}
	return from
}

// binPack fills hosts in id order up to Config.HostCapacity.
type binPack struct{}

func (binPack) place(c *Cluster) int { return binPick(c, -1) }

func (binPack) migrationTarget(c *Cluster, from int) int { return binPick(c, from) }

// binPick returns the lowest-id host (excluding `exclude`) with capacity
// headroom, falling back to the least-loaded one when all are full.
func binPick(c *Cluster, exclude int) int {
	best := -1
	for i, h := range c.hosts {
		if i == exclude {
			continue
		}
		if h.residents() < c.cfg.HostCapacity {
			return i
		}
		if best < 0 || h.residents() < c.hosts[best].residents() {
			best = i
		}
	}
	return best
}

// spread is the contention-aware policy: prefer the host whose resident
// applications recently ran fastest.
type spread struct{}

func (spread) place(c *Cluster) int { return spreadPick(c, -1) }

func (spread) migrationTarget(c *Cluster, from int) int { return spreadPick(c, from) }

// spreadPick returns the host (excluding `exclude`) with the highest
// recent mean application speed, breaking ties toward fewer residents,
// then lower id. An empty host scores speed 1 (uncontended), so clean
// hosts win over attacked ones whose residents are visibly stalled.
func spreadPick(c *Cluster, exclude int) int {
	best := -1
	for i, h := range c.hosts {
		if i == exclude {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := c.hosts[best]
		switch {
		case h.speed > b.speed:
			best = i
		case h.speed < b.speed:
			// keep best
		case h.residents() < b.residents():
			best = i
		}
	}
	return best
}
