package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"testing"

	"memdos/internal/attack"
	"memdos/internal/core"
	"memdos/internal/pcm"
	"memdos/internal/respond"
	"memdos/internal/workload"
)

// thresholdDetector is a minimal deterministic detector for cluster
// tests: it alarms after `need` consecutive samples whose AccessNum
// collapsed below 60% of the clean expectation (the bus-lock signature)
// and clears after `need` consecutive recovered samples.
type thresholdDetector struct {
	expect       float64
	need         int
	below, above int
	raised       bool
}

func (d *thresholdDetector) Name() string      { return "threshold" }
func (d *thresholdDetector) Overhead() float64 { return 0.02 }

func (d *thresholdDetector) Push(s pcm.Sample) []core.Decision {
	if s.AccessNum < 0.6*d.expect {
		d.below++
		d.above = 0
	} else {
		d.above++
		d.below = 0
	}
	switch {
	case !d.raised && d.below >= d.need:
		d.raised = true
		return []core.Decision{{Time: s.Time, Alarm: true}}
	case d.raised && d.above >= d.need:
		d.raised = false
		return []core.Decision{{Time: s.Time, Alarm: false}}
	}
	return nil
}

// testDetectorFactory builds thresholdDetectors from workload specs.
func testDetectorFactory(tpcm float64) func(app string) (core.Detector, error) {
	return func(app string) (core.Detector, error) {
		spec, err := workload.ByAbbrev(app)
		if err != nil {
			return nil, err
		}
		return &thresholdDetector{expect: spec.BaseAccessRate * tpcm, need: 5}, nil
	}
}

// busLock returns an always-on bus-locking attacker.
func busLock(t *testing.T) *attack.Attacker {
	t.Helper()
	atk, err := attack.NewBusLock(attack.Window{Start: 0, End: math.Inf(1)}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	return atk
}

// populate fills the cluster with victims, targeted attackers and
// utilities in a fixed order.
func populate(t *testing.T, c *Cluster, victims, attackers, utilities int) {
	t.Helper()
	for i := 0; i < victims; i++ {
		if err := c.AddVictim(fmt.Sprintf("victim%02d", i), "KM"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < attackers; i++ {
		target := fmt.Sprintf("victim%02d", i%victims)
		if err := c.AddAttacker(fmt.Sprintf("attacker%02d", i), busLock(t), target); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < utilities; i++ {
		if err := c.AddUtility(fmt.Sprintf("util%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

// snapshot serializes everything observable about a finished run: the
// result plus every VM's final location.
func snapshot(t *testing.T, c *Cluster, res *Result) []byte {
	t.Helper()
	locs := make(map[string]string)
	names := make([]string, 0, len(c.recs))
	for _, rec := range c.recs {
		names = append(names, rec.name)
	}
	sort.Strings(names)
	for _, n := range names {
		h, ok := c.Locate(n)
		if !ok {
			t.Fatalf("VM %s has no location", n)
		}
		locs[n] = c.HostName(h)
	}
	b, err := json.Marshal(struct {
		Res  *Result
		Locs map[string]string
	}{res, locs})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterDeterminismAcrossWorkers is the cluster's determinism
// contract: a full closed-loop run — parallel host stepping, detector
// sessions, respond ladder driving real migrations, targeted attacker
// chases — is byte-identical at any worker count.
func TestClusterDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Scheduler = Spread
		cfg.Placement = AttackTargeted
		cfg.RelocationDelay = 10
		cfg.Detector = testDetectorFactory(cfg.Host.TPCM)
		cfg.Respond = quickLadder()
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		populate(t, c, 4, 2, 8)
		res, err := c.Run(45)
		if err != nil {
			t.Fatal(err)
		}
		return snapshot(t, c, res)
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("cluster run differs between 1 and 8 workers:\n 1: %s\n 8: %s", serial, parallel)
	}
	if !json.Valid(serial) {
		t.Fatalf("snapshot is not valid JSON: %s", serial)
	}
}

// TestPlacementPolicies pins each scheduler's placement shape.
func TestPlacementPolicies(t *testing.T) {
	build := func(p SchedulerPolicy, capacity int) *Cluster {
		cfg := DefaultConfig()
		cfg.Hosts = 4
		cfg.Scheduler = p
		cfg.HostCapacity = capacity
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := c.AddUtility(fmt.Sprintf("u%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	counts := func(c *Cluster) []int {
		out := make([]int, len(c.hosts))
		for i, h := range c.hosts {
			out[i] = h.residents()
		}
		return out
	}

	// Round-robin and spread both yield an even 2/2/2/2 (spread ties
	// break toward the emptiest host).
	for _, p := range []SchedulerPolicy{RoundRobin, Spread} {
		c := build(p, 0)
		for i, n := range counts(c) {
			if n != 2 {
				t.Errorf("%v: host %d has %d residents, want 2", p, i, n)
			}
		}
	}
	// Bin-pack with capacity 3 fills hosts in order: 3/3/2/0.
	c := build(BinPack, 3)
	if got, want := fmt.Sprint(counts(c)), "[3 3 2 0]"; got != want {
		t.Errorf("bin-pack residents = %s, want %s", got, want)
	}
}

// TestMigrateVMDowntime checks in-flight accounting: with transit
// downtime the VM leaves its source immediately but lands only at the
// first sync quantum past the downtime.
func TestMigrateVMDowntime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 2
	cfg.Scheduler = RoundRobin
	cfg.Downtime = 1.0
	cfg.SyncEvery = 50 // 0.5 s quanta
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddVictim("v", "KM"); err != nil {
		t.Fatal(err)
	}
	src, _ := c.Locate("v")
	dest, err := c.MigrateVM("v")
	if err != nil {
		t.Fatal(err)
	}
	if dest == c.HostName(src) {
		t.Fatalf("migrated to source host %s", dest)
	}
	if _, ok := c.Locate("v"); ok {
		t.Fatal("VM located while in transit")
	}
	if _, err := c.MigrateVM("v"); err == nil {
		t.Fatal("second migration of in-flight VM succeeded")
	}
	if _, err := c.Run(0.5); err != nil { // downtime not yet elapsed
		t.Fatal(err)
	}
	if _, ok := c.Locate("v"); ok {
		t.Fatal("VM landed before downtime elapsed")
	}
	if _, err := c.Run(1.5); err != nil {
		t.Fatal(err)
	}
	h, ok := c.Locate("v")
	if !ok || c.HostName(h) != dest {
		t.Fatalf("VM at %v (ok=%v), want %s", h, ok, dest)
	}
}

// TestActuatorReleasesOnOldHost pins the stale-host release hazard: a
// throttle applied on host A must be undone on host A even after the
// victim migrated to host B in between.
func TestActuatorReleasesOnOldHost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 3
	cfg.Scheduler = RoundRobin
	cfg.Placement = AttackTargeted
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddVictim("v", "KM"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddAttacker("a", busLock(t), "v"); err != nil {
		t.Fatal(err)
	}
	act := &actuator{c: c}
	if err := act.Throttle("v", 0.5); err != nil {
		t.Fatal(err)
	}
	aRec := c.byName["a"]
	oldHost := aRec.host
	if got := c.hosts[oldHost].srv.ExecThrottle(aRec.id); got != 0.5 { //memdos:ignore floateq duty stored verbatim
		t.Fatalf("attacker throttle = %v, want 0.5", got)
	}
	// Victim leaves; the engine then releases the session's mitigation.
	if _, err := act.Migrate("v"); err != nil {
		t.Fatal(err)
	}
	if err := act.Throttle("v", 0); err != nil {
		t.Fatal(err)
	}
	if got := c.hosts[oldHost].srv.ExecThrottle(aRec.id); got != 0 { //memdos:ignore floateq release writes literal 0
		t.Fatalf("attacker still throttled at %v on old host after release", got)
	}
}

// quickLadder is a fast-escalating respond config for short test runs:
// one throttle rung, then migrate.
func quickLadder() respond.Config {
	cfg := respond.DefaultConfig()
	cfg.ThrottleDuties = []float64{0.5}
	cfg.EnablePartition = false
	cfg.EnableMigration = true
	cfg.EscalateAfter = 2
	cfg.ClearAfter = 5
	cfg.Cooldown = 30
	return cfg
}

// TestClosedLoopMigratesVictimToCleanHost is the tentpole end-to-end
// check: detect on host A, drain the victim to a clean host B, recover
// its speed. The attacker's re-co-location is pushed past the horizon so
// the escape is decisive.
func TestClosedLoopMigratesVictimToCleanHost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 4
	cfg.Scheduler = Spread
	cfg.Placement = AttackTargeted
	cfg.RelocationDelay = 1e6
	cfg.Detector = testDetectorFactory(cfg.Host.TPCM)
	cfg.Respond = quickLadder()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddVictim("v", "KM"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddAttacker("a", busLock(t), "v"); err != nil {
		t.Fatal(err)
	}
	origin, _ := c.Locate("v")
	res, err := c.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations < 1 {
		t.Fatalf("no defender migration happened: %+v", res)
	}
	vHost, ok := c.Locate("v")
	if !ok {
		t.Fatal("victim in transit at end of run")
	}
	aHost, _ := c.Locate("a")
	if vHost == aHost {
		t.Fatalf("victim still co-resident with attacker on host %d", vHost)
	}
	if vHost == origin {
		t.Fatalf("victim still on original host %d", origin)
	}
	// The victim spent most of the run on a clean host at full speed.
	if res.MeanVictimSpeed < 0.8 {
		t.Errorf("mean victim speed %.3f, want >= 0.8 after escape", res.MeanVictimSpeed)
	}
	if res.Respond.Migrations == 0 {
		t.Errorf("respond stats recorded no migration: %+v", res.Respond)
	}
}

// TestChurnAttackersMove checks the churn policy relocates attackers on
// schedule without any detector in the loop.
func TestChurnAttackersMove(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 8
	cfg.Placement = AttackChurn
	cfg.ChurnInterval = 5
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, c, 2, 3, 4)
	res, err := c.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackerMoves == 0 {
		t.Fatalf("churn produced no attacker moves: %+v", res)
	}
}
