// Package cluster simulates a multi-host datacenter built from the
// single-server model of internal/vmm: many hosts stepping in lockstep,
// a placement scheduler deciding where VMs land, attacker VMs pursuing
// co-residence (the paper's Section III threat model at cloud scale),
// and real VM migration — a victim's runtime state is serialized out of
// one host's hypervisor and admitted into another's — as the terminal
// rung of the respond ladder: detect on host A, drain the victim to a
// clean host B.
//
// Hosts advance in sync quanta of Config.SyncEvery ticks. Within a
// quantum every host steps independently (sharded across the bounded
// worker pool of internal/par; all state touched is host-local, with
// alarm transitions buffered per host), then a serial control plane
// admits due migrations, merges the buffered detector events in
// (time, host, order) order into the respond engine, and drives the
// attacker placement dynamics. Because the merge order is fixed and the
// control plane is serial, a run is byte-identical at any worker count —
// the same determinism-by-construction contract the experiment harness
// pins down (see TestClusterDeterminismAcrossWorkers).
package cluster

import (
	"fmt"
	"math"
	"sort"

	"memdos/internal/attack"
	"memdos/internal/core"
	"memdos/internal/metrics"
	"memdos/internal/par"
	"memdos/internal/respond"
	"memdos/internal/sim"
	"memdos/internal/vmm"
	"memdos/internal/workload"
)

// Config configures a Cluster.
type Config struct {
	// Hosts is the number of simulated physical machines (>= 2, so
	// migration always has somewhere to go).
	Hosts int
	// Host is the per-host hypervisor configuration template. Each
	// host's RNG seed is derived from Seed; the template's own Seed is
	// ignored. DisableHistory is forced on — a cluster's thousands of
	// VMs would otherwise retain trace history nothing reads.
	Host vmm.Config
	// Seed seeds the cluster RNG; host seeds and all placement
	// randomness derive from it.
	Seed uint64
	// Scheduler is the placement policy for victim/utility VMs and for
	// migration targets.
	Scheduler SchedulerPolicy
	// Placement is the attacker co-location strategy.
	Placement AttackerPolicy
	// SyncEvery is the sync-quantum length in ticks: hosts step this
	// many ticks in parallel between control-plane syncs. Migrations,
	// alarm processing and attacker moves happen at quantum granularity.
	// 0 means 50 ticks (0.5 s at the paper's T_PCM).
	SyncEvery int
	// Downtime is the victim migration transit time in seconds: the VM
	// makes no progress and produces no samples while in flight, and is
	// admitted at the first sync quantum after the downtime elapses.
	// 0 models live migration with negligible blackout.
	Downtime float64
	// RelocationDelay is how long a targeted attacker needs to re-achieve
	// co-residence after its victim migrates away (Section III-B's
	// probing cost). 0 means 120 s.
	RelocationDelay float64
	// ChurnInterval is how often a churn attacker relocates. 0 means 60 s.
	ChurnInterval float64
	// HostCapacity is the resident-VM budget bin-packing fills to.
	// 0 means 16.
	HostCapacity int
	// Workers caps the host-sharding worker pool (0 = the process-wide
	// default, shared with the experiment harness).
	Workers int
	// Detector, when non-nil, builds one detection session per victim
	// (keyed by the victim's workload abbreviation) and wires alarms
	// through a respond engine whose migrate rung performs real
	// cluster migration. Nil disables the closed loop (clean and
	// attacked-only arms).
	Detector func(app string) (core.Detector, error)
	// Respond parameterizes the mitigation ladder (used only with
	// Detector set).
	Respond respond.Config
	// HypervisorLoad charges every host's hypervisor the given CPU
	// fraction for detector processing (the Fig. 14 cost model, paid
	// cluster-wide because every host samples its tenants).
	HypervisorLoad float64
}

// DefaultConfig returns a cluster of 8 paper-testbed hosts with
// contention-aware placement and targeted attackers.
func DefaultConfig() Config {
	return Config{
		Hosts:     8,
		Host:      vmm.DefaultConfig(),
		Seed:      1,
		Scheduler: Spread,
		Placement: AttackTargeted,
	}
}

// vmKind distinguishes the cluster's VM roles.
type vmKind uint8

const (
	kindVictim vmKind = iota
	kindAttacker
	kindUtility
)

// vmRec is the cluster-level record of one VM: where it lives now, what
// it is, and the placement-dynamics state attached to it. VM identity is
// the (unique) name; host/id change on migration.
type vmRec struct {
	name string
	kind vmKind
	app  string // workload abbreviation (victims/utilities)

	host      int
	id        vmm.VMID
	inTransit bool

	// watch is the victim's detection/accounting session (nil for
	// attackers and utilities). It travels with the VM across hosts.
	watch *watch

	// Attacker dynamics state.
	target    string  // victim name a targeted attacker pursues
	chaseAt   float64 // when a pending re-co-location fires (0 = none)
	nextChurn float64 // next churn relocation time
}

// watch is a victim's per-tick accounting and (optionally) its detection
// session. It is owned by exactly one host at a time and is only touched
// by that host's step loop during a quantum, so parallel host stepping
// never shares it.
type watch struct {
	rec *vmRec
	vm  *vmm.VM
	det core.Detector // nil: speed accounting only

	raised     bool
	speedSum   float64
	alarmTicks uint64
}

// alarmEvent is one buffered detector alarm transition.
type alarmEvent struct {
	time    float64
	session string
	raised  bool
}

// host is one simulated physical machine plus the cluster's host-local
// bookkeeping. During a quantum only its own step loop touches it.
type host struct {
	id   int
	name string
	srv  *vmm.Server

	// watches are the victim sessions resident here, in admission order.
	watches []*watch
	// events buffers this quantum's alarm transitions for the serial
	// control-plane merge.
	events []alarmEvent
	// resVMs are the resident, non-departed VMs (for the contention
	// signal); apps/attackers are the resident counts by role.
	resVMs    []*vmm.VM
	apps      int
	attackers int
	// speed is the EWMA of resident application speed — the observable
	// contention signal the Spread scheduler reads. 1 = uncontended.
	speed float64
}

// residents returns the number of VMs currently living on the host.
func (h *host) residents() int { return h.apps + h.attackers }

// run steps the host q ticks, feeding resident victims' samples to their
// detectors and buffering alarm transitions. Everything it touches is
// host-local.
func (h *host) run(q int) {
	for i := 0; i < q; i++ {
		res := h.srv.Step()
		for _, w := range h.watches {
			w.speedSum += w.vm.LastSpeed()
			if w.raised {
				w.alarmTicks++
			}
			if w.det == nil {
				continue
			}
			smp, ok := res.Samples[w.vm.ID()]
			if !ok {
				continue
			}
			for _, d := range w.det.Push(smp) {
				if d.Alarm != w.raised {
					w.raised = d.Alarm
					h.events = append(h.events, alarmEvent{time: d.Time, session: w.rec.name, raised: d.Alarm})
				}
			}
		}
	}
	// Refresh the contention EWMA from the quantum's final tick: the
	// mean speed of resident applications, 1 when the host is empty.
	sum, n := 0.0, 0
	for _, vm := range h.resVMs {
		if vm.App() != nil {
			sum += vm.LastSpeed()
			n++
		}
	}
	mean := 1.0
	if n > 0 {
		mean = sum / float64(n)
	}
	h.speed = 0.5*h.speed + 0.5*mean
}

// removeResident drops the VM from the host's resident bookkeeping.
func (h *host) removeResident(vm *vmm.VM, kind vmKind) {
	for i, r := range h.resVMs {
		if r == vm {
			h.resVMs = append(h.resVMs[:i], h.resVMs[i+1:]...)
			break
		}
	}
	if kind == kindAttacker {
		h.attackers--
	} else {
		h.apps--
	}
}

// addResident registers the VM in the host's resident bookkeeping.
func (h *host) addResident(vm *vmm.VM, kind vmKind) {
	h.resVMs = append(h.resVMs, vm)
	if kind == kindAttacker {
		h.attackers++
	} else {
		h.apps++
	}
}

// detachWatch removes the watch from the host's session list.
func (h *host) detachWatch(w *watch) {
	for i, x := range h.watches {
		if x == w {
			h.watches = append(h.watches[:i], h.watches[i+1:]...)
			return
		}
	}
}

// transit is one VM state in flight between hosts.
type transit struct {
	st   *vmm.VMState
	rec  *vmRec
	dest int
	due  uint64
}

// Cluster is a lockstep multi-host datacenter simulation.
type Cluster struct {
	cfg    Config
	hosts  []*host
	sched  scheduler
	rng    *sim.RNG
	runner par.Runner

	eng *respond.Engine
	act *actuator

	recs   []*vmRec
	byName map[string]*vmRec

	inflight []*transit
	eventBuf []alarmEvent

	tick uint64
	tpcm float64

	// colocOn / colocAll accumulate targeted-attacker co-residence time
	// (numerator / denominator, in attacker-ticks).
	colocOn, colocAll uint64

	started bool

	migrations    metrics.Counter
	attackerMoves metrics.Counter
	alarmEvents   metrics.Counter
}

// New builds an empty cluster. Populate it with AddVictim / AddAttacker /
// AddUtility, then Run it.
func New(cfg Config) (*Cluster, error) {
	if cfg.Hosts < 2 {
		return nil, fmt.Errorf("cluster: need >= 2 hosts for migration, got %d", cfg.Hosts)
	}
	if cfg.Downtime < 0 {
		return nil, fmt.Errorf("cluster: negative migration downtime %v", cfg.Downtime)
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 50
	}
	if cfg.RelocationDelay <= 0 {
		cfg.RelocationDelay = 120
	}
	if cfg.ChurnInterval <= 0 {
		cfg.ChurnInterval = 60
	}
	if cfg.HostCapacity <= 0 {
		cfg.HostCapacity = 16
	}
	sched, err := newScheduler(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:    cfg,
		sched:  sched,
		rng:    sim.NewRNG(cfg.Seed),
		runner: par.Runner{Workers: cfg.Workers},
		byName: make(map[string]*vmRec),
		tpcm:   cfg.Host.TPCM,
	}
	for i := 0; i < cfg.Hosts; i++ {
		hcfg := cfg.Host
		hcfg.Seed = c.rng.Uint64()
		// Thousands of VMs stepping for minutes would otherwise retain
		// trace history nothing reads; the cluster always disables it.
		hcfg.DisableHistory = true
		srv, err := vmm.NewServer(hcfg)
		if err != nil {
			return nil, err
		}
		if cfg.HypervisorLoad > 0 {
			if err := srv.SetHypervisorLoad(cfg.HypervisorLoad); err != nil {
				return nil, err
			}
		}
		c.hosts = append(c.hosts, &host{id: i, name: fmt.Sprintf("host%03d", i), srv: srv, speed: 1})
	}
	if cfg.Detector != nil {
		c.act = &actuator{c: c}
		if c.eng, err = respond.New(cfg.Respond, c.act); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// HostName returns the display name of host i.
func (c *Cluster) HostName(i int) string { return c.hosts[i].name }

// Locate returns the host the named VM currently resides on. ok is
// false for unknown VMs and for VMs in migration transit.
func (c *Cluster) Locate(name string) (hostID int, ok bool) {
	rec, found := c.byName[name]
	if !found || rec.inTransit {
		return 0, false
	}
	return rec.host, true
}

// Hosts returns the number of hosts.
func (c *Cluster) Hosts() int { return len(c.hosts) }

// Now returns the cluster's lockstep simulated time.
func (c *Cluster) Now() float64 { return float64(c.tick) * c.tpcm }

// addRec validates the name, registers the record, and creates the VM on
// the chosen host.
func (c *Cluster) addRec(rec *vmRec, h int, build func(srv *vmm.Server) (*vmm.VM, error)) (*vmm.VM, error) {
	if c.started {
		return nil, fmt.Errorf("cluster: cannot add %q after Run started", rec.name)
	}
	if rec.name == "" {
		return nil, fmt.Errorf("cluster: empty VM name")
	}
	if _, dup := c.byName[rec.name]; dup {
		return nil, fmt.Errorf("cluster: duplicate VM name %q", rec.name)
	}
	if h < 0 || h >= len(c.hosts) {
		return nil, fmt.Errorf("cluster: placement returned invalid host %d", h)
	}
	vm, err := build(c.hosts[h].srv)
	if err != nil {
		return nil, err
	}
	rec.host, rec.id = h, vm.ID()
	c.hosts[h].addResident(vm, rec.kind)
	c.recs = append(c.recs, rec)
	c.byName[rec.name] = rec
	return vm, nil
}

// AddVictim places a protected VM running the given application (by
// Table II abbreviation, as a recurring service) via the scheduler, and
// opens its detection session when the cluster has a detector factory.
func (c *Cluster) AddVictim(name, app string) error {
	spec, err := workload.ByAbbrev(app)
	if err != nil {
		return err
	}
	rec := &vmRec{name: name, kind: kindVictim, app: app}
	vm, err := c.addRec(rec, c.sched.place(c), func(srv *vmm.Server) (*vmm.VM, error) {
		return srv.AddApp(name, spec.Service())
	})
	if err != nil {
		return err
	}
	w := &watch{rec: rec, vm: vm}
	if c.cfg.Detector != nil {
		if w.det, err = c.cfg.Detector(app); err != nil {
			return err
		}
	}
	rec.watch = w
	c.hosts[rec.host].watches = append(c.hosts[rec.host].watches, w)
	return nil
}

// AddUtility places a benign background VM via the scheduler.
func (c *Cluster) AddUtility(name string) error {
	_, err := c.addRec(&vmRec{name: name, kind: kindUtility, app: "UTIL"}, c.sched.place(c), func(srv *vmm.Server) (*vmm.VM, error) {
		return srv.AddApp(name, workload.Utility())
	})
	return err
}

// AddAttacker places an attack VM according to the attacker placement
// policy. target names the victim a targeted attacker pursues (must
// exist; ignored by the other policies, where it may be empty).
func (c *Cluster) AddAttacker(name string, atk *attack.Attacker, target string) error {
	rec := &vmRec{name: name, kind: kindAttacker, target: target, nextChurn: c.cfg.ChurnInterval}
	var h int
	switch c.cfg.Placement {
	case AttackTargeted:
		t, ok := c.byName[target]
		if !ok || t.kind != kindVictim {
			return fmt.Errorf("cluster: targeted attacker %q has unknown target victim %q", name, target)
		}
		h = t.host
	case AttackRandom, AttackChurn:
		h = c.rng.Intn(len(c.hosts))
	default:
		return fmt.Errorf("cluster: unknown attacker policy %v", c.cfg.Placement)
	}
	_, err := c.addRec(rec, h, func(srv *vmm.Server) (*vmm.VM, error) {
		return srv.AddAttacker(name, atk)
	})
	return err
}

// ticksFor converts a duration to whole ticks.
func (c *Cluster) ticksFor(dur float64) uint64 {
	return uint64(math.Round(dur / c.tpcm))
}

// MigrateVM moves the named VM to the scheduler-chosen target host,
// applying the configured transit downtime for victims/utilities
// (attacker self-relocations are instant: their cost is modelled by the
// relocation delay, not the move). It is the cluster-level entry point
// the respond actuator and the attacker dynamics share.
func (c *Cluster) MigrateVM(name string) (string, error) {
	rec, ok := c.byName[name]
	if !ok {
		return "", fmt.Errorf("cluster: unknown VM %q", name)
	}
	dest := c.sched.migrationTarget(c, rec.host)
	if err := c.moveVM(rec, dest, c.ticksFor(c.cfg.Downtime)); err != nil {
		return "", err
	}
	c.migrations.Inc()
	return c.hosts[dest].name, nil
}

// moveVM exports the VM from its host and either admits it at the
// destination immediately (downTicks 0: lockstep live migration) or
// queues the admission for the first sync quantum past the downtime.
func (c *Cluster) moveVM(rec *vmRec, dest int, downTicks uint64) error {
	if rec.inTransit {
		return fmt.Errorf("cluster: VM %q already in transit", rec.name)
	}
	if dest < 0 || dest >= len(c.hosts) || dest == rec.host {
		return fmt.Errorf("cluster: invalid migration target %d for VM %q on host %d", dest, rec.name, rec.host)
	}
	h := c.hosts[rec.host]
	vm := h.srv.VMs()[rec.id]
	st, err := h.srv.ExportVM(rec.id)
	if err != nil {
		return err
	}
	h.removeResident(vm, rec.kind)
	if rec.watch != nil {
		h.detachWatch(rec.watch)
	}
	rec.inTransit = true
	tr := &transit{st: st, rec: rec, dest: dest, due: c.tick + downTicks}
	if downTicks == 0 {
		return c.admit(tr)
	}
	c.inflight = append(c.inflight, tr)
	return nil
}

// admit lands an in-flight VM on its destination host.
func (c *Cluster) admit(tr *transit) error {
	h := c.hosts[tr.dest]
	vm, err := h.srv.AdmitVM(tr.st)
	if err != nil {
		return err
	}
	rec := tr.rec
	rec.host, rec.id, rec.inTransit = tr.dest, vm.ID(), false
	h.addResident(vm, rec.kind)
	if rec.watch != nil {
		rec.watch.vm = vm
		h.watches = append(h.watches, rec.watch)
	}
	return nil
}

// Step advances the whole cluster by one sync quantum of q ticks: all
// hosts step in parallel (sharded across the worker pool), then the
// serial control plane lands due migrations, feeds buffered alarm
// transitions to the respond engine, and drives attacker placement
// dynamics. Exposed for the benchmark harness; Run is the main loop.
func (c *Cluster) Step(q int) error {
	if q <= 0 {
		return fmt.Errorf("cluster: non-positive quantum %d", q)
	}
	c.started = true
	// Parallel phase: hosts are independent; everything run() touches is
	// host-local, and the per-host event buffers are merged below in a
	// fixed order, so any worker count produces identical state.
	if err := c.runner.Do(len(c.hosts), func(i int) error {
		c.hosts[i].run(q)
		return nil
	}); err != nil {
		return err
	}
	c.tick += uint64(q)
	now := c.Now()

	// Serial control plane, in fixed order.
	// 1. Land due migrations, FIFO.
	kept := c.inflight[:0]
	for _, tr := range c.inflight {
		if tr.due <= c.tick {
			if err := c.admit(tr); err != nil {
				return err
			}
		} else {
			kept = append(kept, tr)
		}
	}
	c.inflight = kept

	// 2. Merge alarm transitions by time; ties resolve by host id then
	// emission order (the concatenation order), keeping the merge
	// independent of goroutine scheduling.
	c.eventBuf = c.eventBuf[:0]
	for _, h := range c.hosts {
		c.eventBuf = append(c.eventBuf, h.events...)
		h.events = h.events[:0]
	}
	sort.SliceStable(c.eventBuf, func(i, j int) bool { return c.eventBuf[i].time < c.eventBuf[j].time })
	if c.eng != nil {
		for _, ev := range c.eventBuf {
			c.alarmEvents.Inc()
			if err := c.eng.Observe(ev.session, ev.time, ev.raised); err != nil {
				return err
			}
		}
		c.eng.Tick(now)
	}

	// 3. Attacker placement dynamics.
	if err := c.driveAttackers(now); err != nil {
		return err
	}

	// 4. Co-location accounting, at quantum granularity.
	for _, rec := range c.recs {
		if rec.kind != kindAttacker || rec.target == "" {
			continue
		}
		c.colocAll += uint64(q)
		t, ok := c.byName[rec.target]
		if ok && !rec.inTransit && !t.inTransit && t.host == rec.host {
			c.colocOn += uint64(q)
		}
	}
	return nil
}

// driveAttackers advances the attacker co-location strategies. Runs on
// the serial control plane in record order, so RNG draws are identical
// at any worker count.
func (c *Cluster) driveAttackers(now float64) error {
	for _, rec := range c.recs {
		if rec.kind != kindAttacker || rec.inTransit {
			continue
		}
		switch c.cfg.Placement {
		case AttackTargeted:
			t, ok := c.byName[rec.target]
			if !ok {
				continue
			}
			if !t.inTransit && t.host == rec.host {
				rec.chaseAt = 0
				continue
			}
			if rec.chaseAt <= 0 {
				// Victim escaped: start probing for its new host.
				rec.chaseAt = now + c.cfg.RelocationDelay
				continue
			}
			if now >= rec.chaseAt && !t.inTransit {
				if err := c.moveVM(rec, t.host, 0); err != nil {
					return err
				}
				c.attackerMoves.Inc()
				rec.chaseAt = 0
			}
		case AttackChurn:
			if now >= rec.nextChurn {
				// The draw always happens so the RNG stream does not
				// depend on the current location.
				dest := c.rng.Intn(len(c.hosts))
				if dest != rec.host {
					if err := c.moveVM(rec, dest, 0); err != nil {
						return err
					}
					c.attackerMoves.Inc()
				}
				rec.nextChurn = now + c.cfg.ChurnInterval
			}
		}
	}
	return nil
}

// Result summarizes one cluster run.
type Result struct {
	// Duration is the simulated run length in seconds.
	Duration float64
	// Hosts and VMs describe the population.
	Hosts, VMs int
	// MeanVictimSpeed is the victims' mean effective execution speed
	// over the whole run (1 = full speed; in-flight ticks count as 0).
	MeanVictimSpeed float64
	// Migrations counts defender-initiated victim migrations.
	Migrations int
	// AttackerMoves counts attacker self-relocations (chases + churn).
	AttackerMoves int
	// AlarmTransitions counts detector alarm raise/clear events.
	AlarmTransitions int
	// AlarmFraction is the fraction of victim-time spent under a raised
	// alarm.
	AlarmFraction float64
	// ColocationFraction is the fraction of attacker-time that targeted
	// attackers spent co-resident with their target (quantum
	// granularity; 0 when no attacker has a target).
	ColocationFraction float64
	// Respond carries the engine counters (zero value without a
	// detector).
	Respond respond.Stats
}

// Run steps the cluster until simulated time dur and returns the run
// summary. It may be called repeatedly to extend a run; the result
// always covers the whole simulation so far.
func (c *Cluster) Run(dur float64) (*Result, error) {
	end := c.ticksFor(dur)
	q := c.cfg.SyncEvery
	for c.tick < end {
		step := q
		if rem := end - c.tick; uint64(step) > rem {
			step = int(rem)
		}
		if err := c.Step(step); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Duration:         c.Now(),
		Hosts:            len(c.hosts),
		VMs:              len(c.recs),
		Migrations:       int(c.migrations.Value()),
		AttackerMoves:    int(c.attackerMoves.Value()),
		AlarmTransitions: int(c.alarmEvents.Value()),
	}
	var speedSum, alarmSum float64
	victims := 0
	for _, rec := range c.recs {
		if rec.kind != kindVictim || rec.watch == nil {
			continue
		}
		victims++
		speedSum += rec.watch.speedSum / float64(c.tick)
		alarmSum += float64(rec.watch.alarmTicks) / float64(c.tick)
	}
	if victims > 0 {
		res.MeanVictimSpeed = speedSum / float64(victims)
		res.AlarmFraction = alarmSum / float64(victims)
	}
	if c.colocAll > 0 {
		res.ColocationFraction = float64(c.colocOn) / float64(c.colocAll)
	}
	if c.eng != nil {
		res.Respond = c.eng.Stats()
	}
	return res, nil
}

// RegisterMetrics exposes the cluster's counters on a registry.
func (c *Cluster) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("memdos_cluster_migrations_total",
		"Defender-initiated victim migrations.", &c.migrations)
	reg.RegisterCounter("memdos_cluster_attacker_moves_total",
		"Attacker self-relocations (chases and churn).", &c.attackerMoves)
	reg.RegisterCounter("memdos_cluster_alarm_transitions_total",
		"Detector alarm raise/clear transitions observed by the control plane.", &c.alarmEvents)
	reg.RegisterGaugeFunc("memdos_cluster_hosts",
		"Number of simulated hosts.", func() []metrics.Point {
			return []metrics.Point{{Value: float64(len(c.hosts))}}
		})
	reg.RegisterGaugeFunc("memdos_cluster_vms",
		"Number of cluster VMs (resident plus in transit).", func() []metrics.Point {
			return []metrics.Point{{Value: float64(len(c.recs))}}
		})
	reg.RegisterGaugeFunc("memdos_cluster_inflight_migrations",
		"VM states currently in transit between hosts.", func() []metrics.Point {
			return []metrics.Point{{Value: float64(len(c.inflight))}}
		})
}
