// Package bus models the socket-internal memory buses that the atomic bus
// locking attack abuses. Modern processors serialize certain atomic
// operations by locking all internal memory buses; an attacker that issues
// such operations continuously denies bus time to every co-located VM.
//
// The model is a per-step arbiter: components request ordinary accesses
// and/or atomic-lock hold time each simulation step; Resolve then computes
// how many of each owner's accesses were actually delivered given the lock
// time claimed by *other* owners and the bus bandwidth cap.
package bus

import "fmt"

// Owner identifies a bus client (a VM id); it matches cache.Owner
// numerically but is declared separately so the packages stay decoupled.
type Owner int32

// Stats accumulates per-owner delivered/requested access counts.
type Stats struct {
	Requested float64
	Delivered float64
	// LockTime is the total simulated seconds of atomic bus lock this
	// owner has held.
	LockTime float64
}

// DeliveryRatio returns Delivered/Requested, or 1 when nothing was
// requested (an idle client is not considered throttled).
func (s Stats) DeliveryRatio() float64 {
	if s.Requested == 0 { //memdos:ignore floateq exact zero means no request was ever recorded; division guard
		return 1
	}
	return s.Delivered / s.Requested
}

// Deliveries is the per-owner delivered access counts of one Resolve. It
// is a view over the bus's scratch buffer: valid until the next Resolve
// call, which is the lifetime every per-step caller needs. Owners that
// requested nothing read as 0.
type Deliveries struct {
	d []float64
}

// Of returns the accesses delivered to owner this step.
func (d Deliveries) Of(o Owner) float64 {
	if o >= 0 && int(o) < len(d.d) {
		return d.d[o]
	}
	return 0
}

// Bus is the shared-bus arbiter. It is not safe for concurrent use.
//
// Per-owner state lives in dense slices indexed by Owner (owners are small
// VM ids): Resolve runs once per simulation step, and with maps it was a
// measurable share of the step's allocations.
type Bus struct {
	// capacity caps total delivered accesses per simulated second. Zero or
	// negative means uncapped.
	capacity float64

	requests  []float64 // per-owner accesses wanted this step
	locks     []float64 // per-owner lock seconds wanted this step
	stats     []Stats
	delivered []float64 // scratch returned (as a view) by Resolve
}

// New returns a bus with the given total bandwidth in accesses per
// simulated second (<= 0 means uncapped).
func New(capacityPerSecond float64) *Bus {
	return &Bus{capacity: capacityPerSecond}
}

// grow extends s with zeros so index n is addressable.
func grow(s []float64, n int) []float64 {
	for len(s) <= n {
		s = append(s, 0)
	}
	return s
}

// RequestAccesses records that owner wants to perform n memory accesses in
// the current step. Calls accumulate.
func (b *Bus) RequestAccesses(o Owner, n float64) {
	if n < 0 {
		panic(fmt.Sprintf("bus: negative access request %v", n))
	}
	if o < 0 {
		panic(fmt.Sprintf("bus: invalid owner %d", o))
	}
	b.requests = grow(b.requests, int(o))
	b.requests[o] += n
}

// RequestLock records that owner wants to hold the atomic bus lock for d
// simulated seconds during the current step. Calls accumulate.
func (b *Bus) RequestLock(o Owner, d float64) {
	if d < 0 {
		panic(fmt.Sprintf("bus: negative lock request %v", d))
	}
	if o < 0 {
		panic(fmt.Sprintf("bus: invalid owner %d", o))
	}
	b.locks = grow(b.locks, int(o))
	b.locks[o] += d
}

// lockOf returns owner o's pending lock time without growing the slice.
func (b *Bus) lockOf(o int) float64 {
	if o < len(b.locks) {
		return b.locks[o]
	}
	return 0
}

// Resolve arbitrates the current step of length dt seconds and returns the
// delivered access count per owner. Per-owner availability is
// 1 - (lock time held by others)/dt, clamped to [0,1]; total lock demand is
// first clamped to dt (the bus cannot be locked for longer than the step,
// so competing lockers scale down proportionally). After lock scaling, if
// aggregate demand exceeds the bandwidth cap for the unlocked fraction of
// the step, deliveries scale down proportionally. Request and lock state
// are cleared for the next step; the returned view is valid until the next
// Resolve.
//
//memdos:hotpath bench=bus/resolve
func (b *Bus) Resolve(dt float64) Deliveries {
	if dt <= 0 {
		panic(fmt.Sprintf("bus: non-positive step %v", dt))
	}
	var totalLock float64
	for _, d := range b.locks {
		totalLock += d
	}
	lockScale := 1.0
	if totalLock > dt {
		lockScale = dt / totalLock
	}

	if cap(b.delivered) < len(b.requests) {
		b.delivered = make([]float64, len(b.requests)) //memdos:ignore hotalloc grow-once scratch: capacity tracks the owner count and is reused every step
	}
	b.delivered = b.delivered[:len(b.requests)]
	var totalDelivered float64
	for o, req := range b.requests {
		othersLock := (totalLock - b.lockOf(o)) * lockScale
		avail := 1 - othersLock/dt
		if avail < 0 {
			avail = 0
		}
		d := req * avail
		b.delivered[o] = d
		totalDelivered += d
	}

	// Bandwidth cap applies to the fraction of the step the bus is not
	// held by atomic locks.
	if b.capacity > 0 {
		freeFrac := 1 - (totalLock*lockScale)/dt
		if freeFrac < 0 {
			freeFrac = 0
		}
		budget := b.capacity * dt * freeFrac
		if totalDelivered > budget && totalDelivered > 0 {
			scale := budget / totalDelivered
			for o := range b.delivered {
				b.delivered[o] *= scale
			}
		}
	}

	for o, req := range b.requests {
		st := b.statsFor(Owner(o))
		st.Requested += req
		st.Delivered += b.delivered[o]
	}
	for o, d := range b.locks {
		if d != 0 { //memdos:ignore floateq exact-zero sparsity fast path: skip owners that never locked
			b.statsFor(Owner(o)).LockTime += d * lockScale
		}
	}

	clear(b.requests)
	clear(b.locks)
	return Deliveries{d: b.delivered}
}

func (b *Bus) statsFor(o Owner) *Stats {
	for len(b.stats) <= int(o) {
		b.stats = append(b.stats, Stats{})
	}
	return &b.stats[o]
}

// Stats returns a copy of the accumulated statistics for owner.
func (b *Bus) Stats(o Owner) Stats {
	if o >= 0 && int(o) < len(b.stats) {
		return b.stats[o]
	}
	return Stats{}
}

// ResetStats zeroes the accumulated statistics.
func (b *Bus) ResetStats() {
	for i := range b.stats {
		b.stats[i] = Stats{}
	}
}
