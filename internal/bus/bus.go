// Package bus models the socket-internal memory buses that the atomic bus
// locking attack abuses. Modern processors serialize certain atomic
// operations by locking all internal memory buses; an attacker that issues
// such operations continuously denies bus time to every co-located VM.
//
// The model is a per-step arbiter: components request ordinary accesses
// and/or atomic-lock hold time each simulation step; Resolve then computes
// how many of each owner's accesses were actually delivered given the lock
// time claimed by *other* owners and the bus bandwidth cap.
package bus

import "fmt"

// Owner identifies a bus client (a VM id); it matches cache.Owner
// numerically but is declared separately so the packages stay decoupled.
type Owner int32

// Stats accumulates per-owner delivered/requested access counts.
type Stats struct {
	Requested float64
	Delivered float64
	// LockTime is the total simulated seconds of atomic bus lock this
	// owner has held.
	LockTime float64
}

// DeliveryRatio returns Delivered/Requested, or 1 when nothing was
// requested (an idle client is not considered throttled).
func (s Stats) DeliveryRatio() float64 {
	if s.Requested == 0 {
		return 1
	}
	return s.Delivered / s.Requested
}

// Bus is the shared-bus arbiter. It is not safe for concurrent use.
type Bus struct {
	// CapacityPerSecond caps total delivered accesses per simulated
	// second. Zero or negative means uncapped.
	capacity float64

	requests map[Owner]float64
	locks    map[Owner]float64
	stats    map[Owner]*Stats
}

// New returns a bus with the given total bandwidth in accesses per
// simulated second (<= 0 means uncapped).
func New(capacityPerSecond float64) *Bus {
	return &Bus{
		capacity: capacityPerSecond,
		requests: make(map[Owner]float64),
		locks:    make(map[Owner]float64),
		stats:    make(map[Owner]*Stats),
	}
}

// RequestAccesses records that owner wants to perform n memory accesses in
// the current step. Calls accumulate.
func (b *Bus) RequestAccesses(o Owner, n float64) {
	if n < 0 {
		panic(fmt.Sprintf("bus: negative access request %v", n))
	}
	b.requests[o] += n
}

// RequestLock records that owner wants to hold the atomic bus lock for d
// simulated seconds during the current step. Calls accumulate.
func (b *Bus) RequestLock(o Owner, d float64) {
	if d < 0 {
		panic(fmt.Sprintf("bus: negative lock request %v", d))
	}
	b.locks[o] += d
}

// Resolve arbitrates the current step of length dt seconds and returns the
// delivered access count per owner. Per-owner availability is
// 1 - (lock time held by others)/dt, clamped to [0,1]; total lock demand is
// first clamped to dt (the bus cannot be locked for longer than the step,
// so competing lockers scale down proportionally). After lock scaling, if
// aggregate demand exceeds the bandwidth cap for the unlocked fraction of
// the step, deliveries scale down proportionally. Request and lock state
// are cleared for the next step.
func (b *Bus) Resolve(dt float64) map[Owner]float64 {
	if dt <= 0 {
		panic(fmt.Sprintf("bus: non-positive step %v", dt))
	}
	var totalLock float64
	for _, d := range b.locks {
		totalLock += d
	}
	lockScale := 1.0
	if totalLock > dt {
		lockScale = dt / totalLock
	}

	delivered := make(map[Owner]float64, len(b.requests))
	var totalDelivered float64
	for o, req := range b.requests {
		othersLock := (totalLock - b.locks[o]) * lockScale
		avail := 1 - othersLock/dt
		if avail < 0 {
			avail = 0
		}
		d := req * avail
		delivered[o] = d
		totalDelivered += d
	}

	// Bandwidth cap applies to the fraction of the step the bus is not
	// held by atomic locks.
	if b.capacity > 0 {
		freeFrac := 1 - (totalLock*lockScale)/dt
		if freeFrac < 0 {
			freeFrac = 0
		}
		budget := b.capacity * dt * freeFrac
		if totalDelivered > budget && totalDelivered > 0 {
			scale := budget / totalDelivered
			for o := range delivered {
				delivered[o] *= scale
			}
		}
	}

	for o, req := range b.requests {
		st := b.statsFor(o)
		st.Requested += req
		st.Delivered += delivered[o]
	}
	for o, d := range b.locks {
		b.statsFor(o).LockTime += d * lockScale
	}

	b.requests = make(map[Owner]float64)
	b.locks = make(map[Owner]float64)
	return delivered
}

func (b *Bus) statsFor(o Owner) *Stats {
	s := b.stats[o]
	if s == nil {
		s = &Stats{}
		b.stats[o] = s
	}
	return s
}

// Stats returns a copy of the accumulated statistics for owner.
func (b *Bus) Stats(o Owner) Stats {
	if s := b.stats[o]; s != nil {
		return *s
	}
	return Stats{}
}

// ResetStats zeroes the accumulated statistics.
func (b *Bus) ResetStats() {
	for _, s := range b.stats {
		*s = Stats{}
	}
}
