package bus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUncontendedDelivery(t *testing.T) {
	b := New(0)
	b.RequestAccesses(1, 1000)
	got := b.Resolve(0.01)
	if got.Of(1) != 1000 {
		t.Errorf("uncontended delivery = %v, want 1000", got.Of(1))
	}
	if r := b.Stats(1).DeliveryRatio(); r != 1 {
		t.Errorf("delivery ratio = %v, want 1", r)
	}
}

func TestLockThrottlesOthers(t *testing.T) {
	b := New(0)
	// Attacker (2) locks the bus for 70% of the step; victim (1) should
	// get only ~30% of its accesses through.
	b.RequestAccesses(1, 1000)
	b.RequestLock(2, 0.007)
	got := b.Resolve(0.01)
	if math.Abs(got.Of(1)-300) > 1e-9 {
		t.Errorf("victim delivery under 70%% lock = %v, want 300", got.Of(1))
	}
}

func TestLockDoesNotThrottleSelf(t *testing.T) {
	b := New(0)
	b.RequestAccesses(2, 500)
	b.RequestLock(2, 0.008)
	got := b.Resolve(0.01)
	if got.Of(2) != 500 {
		t.Errorf("locker's own delivery = %v, want 500 (own lock time does not block self)", got.Of(2))
	}
}

func TestLockDemandClampedToStep(t *testing.T) {
	b := New(0)
	// Two owners each want the lock for the full step: each effectively
	// holds it half the time, so a third owner gets nothing.
	b.RequestLock(2, 0.01)
	b.RequestLock(3, 0.01)
	b.RequestAccesses(1, 100)
	got := b.Resolve(0.01)
	if got.Of(1) != 0 {
		t.Errorf("victim delivery under saturated lock = %v, want 0", got.Of(1))
	}
	// Each locker is blocked only by the other's (scaled) half.
	if lt := b.Stats(2).LockTime; math.Abs(lt-0.005) > 1e-12 {
		t.Errorf("scaled lock time = %v, want 0.005", lt)
	}
}

func TestBandwidthCap(t *testing.T) {
	b := New(100000) // 100k accesses/s -> 1000 per 10ms step
	b.RequestAccesses(1, 800)
	b.RequestAccesses(2, 800)
	got := b.Resolve(0.01)
	total := got.Of(1) + got.Of(2)
	if math.Abs(total-1000) > 1e-6 {
		t.Errorf("capped total = %v, want 1000", total)
	}
	// Proportional sharing.
	if math.Abs(got.Of(1)-got.Of(2)) > 1e-9 {
		t.Errorf("equal demands should split equally: %v vs %v", got.Of(1), got.Of(2))
	}
}

func TestBandwidthCapShrinksUnderLock(t *testing.T) {
	b := New(100000)
	b.RequestAccesses(1, 2000)
	b.RequestLock(2, 0.005) // half the step locked
	got := b.Resolve(0.01)
	// Victim availability 0.5 -> 1000 requested through arbitration, but
	// the free-fraction budget is 100000*0.01*0.5 = 500.
	if math.Abs(got.Of(1)-500) > 1e-6 {
		t.Errorf("delivery = %v, want 500", got.Of(1))
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := New(0)
	for i := 0; i < 5; i++ {
		b.RequestAccesses(1, 100)
		b.RequestLock(2, 0.002)
		b.Resolve(0.01)
	}
	s1 := b.Stats(1)
	if s1.Requested != 500 {
		t.Errorf("requested = %v, want 500", s1.Requested)
	}
	if math.Abs(s1.Delivered-400) > 1e-9 { // 20% locked each step
		t.Errorf("delivered = %v, want 400", s1.Delivered)
	}
	if lt := b.Stats(2).LockTime; math.Abs(lt-0.01) > 1e-12 {
		t.Errorf("lock time = %v, want 0.01", lt)
	}
	b.ResetStats()
	if b.Stats(1).Requested != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestStateClearedBetweenSteps(t *testing.T) {
	b := New(0)
	b.RequestLock(2, 0.01)
	b.RequestAccesses(1, 100)
	b.Resolve(0.01)
	// Next step: no lock request, full delivery.
	b.RequestAccesses(1, 100)
	got := b.Resolve(0.01)
	if got.Of(1) != 100 {
		t.Errorf("lock leaked across steps: delivery = %v", got.Of(1))
	}
}

func TestIdleOwnerDeliveryRatio(t *testing.T) {
	var s Stats
	if s.DeliveryRatio() != 1 {
		t.Error("idle owner should have delivery ratio 1")
	}
}

func TestNegativeRequestsPanic(t *testing.T) {
	b := New(0)
	for _, f := range []func(){
		func() { b.RequestAccesses(1, -1) },
		func() { b.RequestLock(1, -1) },
		func() { b.Resolve(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDeliveryNeverExceedsRequest(t *testing.T) {
	check := func(req1, req2 uint16, lockMs uint8) bool {
		b := New(50000)
		r1, r2 := float64(req1), float64(req2)
		b.RequestAccesses(1, r1)
		b.RequestAccesses(2, r2)
		b.RequestLock(3, float64(lockMs%12)/1000)
		got := b.Resolve(0.01)
		return got.Of(1) <= r1+1e-9 && got.Of(2) <= r2+1e-9 && got.Of(1) >= 0 && got.Of(2) >= 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestMoreLockMoreThrottle(t *testing.T) {
	// Monotonicity: increasing attacker lock time never increases the
	// victim's delivered accesses.
	prev := math.Inf(1)
	for lock := 0.0; lock <= 0.01; lock += 0.001 {
		b := New(0)
		b.RequestAccesses(1, 1000)
		b.RequestLock(2, lock)
		got := b.Resolve(0.01)
		if got.Of(1) > prev+1e-9 {
			t.Fatalf("delivery increased with more lock time at %v", lock)
		}
		prev = got.Of(1)
	}
}
